(** .cmt discovery/loading and the name normalization shared by the
    typedtree passes. *)

type unit_info = {
  cmt_path : string;
  lib : string option;  (** owning dune library, from the [.lib.objs] path *)
  modname : string;  (** compilation unit name, e.g. [Nimbus_dsp__Spectrum] *)
  source : string;  (** source file as recorded by the compiler *)
  imports : string list;  (** imported compilation unit names *)
  str : Typedtree.structure option;  (** [None] for non-implementation cmts *)
}

val scan : string list -> unit_info list * Finding.t list
(** Walk the roots for [*.cmt] files (sorted, deterministic order).
    Unreadable cmts surface as [cmt-read-error] findings. *)

val lib_of_modname : string -> string
(** ["Nimbus_dsp__Spectrum"] and ["Nimbus_dsp"] -> ["nimbus_dsp"]. *)

val alias_module_of_lib : string -> string
(** ["nimbus_dsp"] -> ["Nimbus_dsp"]. *)

val alias_mods : unit_info list -> (string, unit) Hashtbl.t
(** The wrapped-library alias modules present in a scan. *)

val normalize_name : (string, unit) Hashtbl.t -> string -> string
(** Canonical spelling: strips [Stdlib.] / [Stdlib__] prefixes and fuses a
    leading alias module with the next component
    ([Nimbus_dsp.Fft.Plan.execute] -> [Nimbus_dsp__Fft.Plan.execute]). *)

val normalize_path : (string, unit) Hashtbl.t -> Path.t -> string
