(** Allocation pass: verify [@@alloc_free] function bodies never heap-allocate.

    Escape hatches: [@alloc_ok] on an expression exempts that subtree;
    [@alloc_ok] on a whole binding marks it assumed-safe for callers without
    checking the body.  Float boxing at call boundaries is out of scope
    (dynamic minor-words slope tests cover it). *)

type result = {
  findings : Finding.t list;
  verified : string list;  (** [@@alloc_free] definitions that checked clean *)
}

val check : ?sup:Suppress.tracker -> Defs.t -> result
(** [check ?sup defs] analyzes every [@@alloc_free] definition in the
    collected tables, resolving statically-known callees recursively;
    [sup] tracks [@alloc_ok] staleness. *)
