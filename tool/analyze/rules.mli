(** Parsetree-level lint rules (migrated from the original tool/lint):
    missing-mli under lib/, Obj.magic, polymorphic comparison against float
    literals, and raw labelled-float unit parameters in interfaces. *)

val normalize_source : string -> string
(** Strip a UTF-8 BOM and convert CRLF / lone-CR line endings to LF, so
    lexing positions match the on-disk file. *)

val check_ml : path:string -> string -> Finding.t list
(** Lint an implementation given as source text. *)

val check_mli : path:string -> string -> Finding.t list
(** Lint an interface given as source text. *)

val check_missing_mli : lib_root:string -> Finding.t list
(** Flag .ml files under [lib_root] without a sibling .mli. *)

val check_tree : string list -> Finding.t list
(** Lint every .ml/.mli under the given roots; roots containing a [lib]
    path component additionally get the missing-mli check. *)
