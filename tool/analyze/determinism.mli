(** Determinism pass: bans wall-clock/entropy/ambient-state escapes,
    order-dependent Hashtbl iteration, and polymorphic compare/hash on
    float-bearing types ([det-poly-compare]) inside the scoped libraries.
    Exempt an expression with [@det_ok "reason"]. *)

val default_scope : string list
(** nimbus_sim, nimbus_core, nimbus_dsp, nimbus_faults — everything
    reachable from an engine run. *)

val check :
  ?sup:Suppress.tracker ->
  scope:string list ->
  Defs.t ->
  Cmt_scan.unit_info list ->
  Finding.t list
(** [check ?sup ~scope defs units] checks every implementation unit whose
    owning library is in [scope]; [defs] supplies alias normalization and
    the type declarations det-poly-compare resolves through; [sup] tracks
    [@det_ok] staleness. *)
