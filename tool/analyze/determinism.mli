(** Determinism pass: bans wall-clock/entropy/ambient-state escapes and
    order-dependent Hashtbl iteration inside the scoped libraries.
    Exempt an expression with [@det_ok "reason"]. *)

val default_scope : string list
(** nimbus_sim, nimbus_core, nimbus_dsp, nimbus_faults — everything
    reachable from an engine run. *)

val check :
  ?sup:Suppress.tracker ->
  scope:string list ->
  (string, unit) Hashtbl.t ->
  Cmt_scan.unit_info list ->
  Finding.t list
(** [check ?sup ~scope aliases units] checks every implementation unit whose
    owning library is in [scope]; [sup] tracks [@det_ok] staleness. *)
