(** Race / domain-safety pass.

    Capture analysis at every pool entry point ([Pool.map] / [try_map] /
    [map_reduce] / [submit], [Common.map_cases] / [run_seeds],
    [Domain.spawn]), transitive [@@domain_safe] function certification,
    and a sweep for module-level mutable state in the simulation-reachable
    libraries.  Suppressed with reasoned [@shared_ok "why"] attributes,
    tracked by {!Suppress}. *)

type result = {
  findings : Finding.t list;
  certified : string list;
      (** [@@domain_safe] definitions that verified clean, sorted *)
  sites : int;  (** pool entry-point call sites capture-checked *)
}

(** [check ?sup ~scope defs units] runs all three sub-rules; [scope] is the
    library list swept for module-level mutable state. *)
val check :
  ?sup:Suppress.tracker ->
  scope:string list ->
  Defs.t ->
  Cmt_scan.unit_info list ->
  result

val default_scope : string list
