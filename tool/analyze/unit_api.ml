(* Dimension registry for the units pass.

   Three name tables drive the dataflow: [accessors] (calls that strip a
   lib/units carrier down to a raw float, tainting the result with the
   carrier's dimension), [ctors] (calls that wrap a raw float back into a
   carrier, where a taint of a *different* dimension is a unit-rewrap), and
   [convs] (declared conversion helpers whose results legitimately change
   dimension and therefore leave the analysis untracked).

   The four in-tree carriers are built in under both their canonical
   ([Units__Time.to_secs]) and unscanned-library ([Units.Time.to_secs])
   spellings.  On top of that, any scanned definition may declare itself
   with a registry attribute — [@@unit_accessor "time"],
   [@@unit_ctor "rate"], [@@unit_conv "why"] — which is how the fixture
   libraries carry their own miniature carriers and how future helper
   modules join the registry without touching this table. *)

type t = {
  accessors : (string, Dim.t) Hashtbl.t;
  ctors : (string, Dim.t) Hashtbl.t;
  convs : (string, unit) Hashtbl.t;
}

(* --- builtins --------------------------------------------------------------- *)

let carriers =
  [
    ( "Time",
      Dim.Time,
      [ "secs"; "ms"; "us"; "mins"; "secs_exn"; "of_float" ],
      [ "to_secs"; "to_ms"; "to_float" ] );
    ( "Rate",
      Dim.Rate,
      [ "bps"; "kbps"; "mbps"; "gbps"; "bps_exn"; "of_float" ],
      [ "to_bps"; "to_mbps"; "to_float" ] );
    ("Freq", Dim.Freq, [ "hz"; "hz_exn"; "of_float" ], [ "to_hz"; "to_float" ]);
    ( "Bytes",
      Dim.Bytes,
      [ "bytes"; "of_bits"; "kib"; "mib"; "of_float" ],
      [ "to_float"; "to_bits" ] );
  ]

(* the typed cross-unit operators encode their dimensional identities in
   their signatures; they only appear here so a [@unit_conv]-style lookup
   of a registry name never falls through to "unknown call" heuristics *)
let builtin_convs =
  [ "Rate.of_volume"; "Rate.volume"; "Rate.tx_time"; "Freq.period";
    "Freq.of_period" ]

let spellings modname fn =
  [ "Units__" ^ modname ^ "." ^ fn; "Units." ^ modname ^ "." ^ fn ]

(* --- construction ----------------------------------------------------------- *)

let create (defs : Defs.t) =
  let t =
    {
      accessors = Hashtbl.create 64;
      ctors = Hashtbl.create 64;
      convs = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (m, dim, ctors, accessors) ->
      List.iter
        (fun fn ->
          List.iter (fun s -> Hashtbl.replace t.ctors s dim) (spellings m fn))
        ctors;
      List.iter
        (fun fn ->
          List.iter
            (fun s -> Hashtbl.replace t.accessors s dim)
            (spellings m fn))
        accessors)
    carriers;
  List.iter
    (fun fn ->
      Hashtbl.replace t.convs ("Units__" ^ fn) ();
      Hashtbl.replace t.convs ("Units." ^ fn) ())
    builtin_convs;
  (* attribute-declared registry entries out of the scanned definitions *)
  let findings = ref [] in
  let bad (d : Defs.vdef) attr =
    findings :=
      Finding.v ~pass_:"units" ~rule:"unit-bad-registry" ~file:d.Defs.d_source
        ~line:d.Defs.d_line
        (Printf.sprintf
           "[@@%s] on %s needs a dimension payload out of \
            time/rate/freq/bytes/scalar"
           attr d.Defs.d_key)
      :: !findings
  in
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) defs.Defs.defs [] in
  List.iter
    (fun key ->
      let d = Hashtbl.find defs.Defs.defs key in
      (match Defs.find_attr "unit_accessor" d.Defs.d_attrs with
      | Some a -> (
        match Option.bind (Defs.attr_reason a) Dim.of_string with
        | Some dim -> Hashtbl.replace t.accessors d.Defs.d_key dim
        | None -> bad d "unit_accessor")
      | None -> ());
      (match Defs.find_attr "unit_ctor" d.Defs.d_attrs with
      | Some a -> (
        match Option.bind (Defs.attr_reason a) Dim.of_string with
        | Some dim -> Hashtbl.replace t.ctors d.Defs.d_key dim
        | None -> bad d "unit_ctor")
      | None -> ());
      if Defs.has_attr "unit_conv" d.Defs.d_attrs then
        Hashtbl.replace t.convs d.Defs.d_key ())
    (List.sort String.compare keys);
  (t, List.rev !findings)

(* --- lookup ----------------------------------------------------------------- *)

(* Resolve [name] as written at a call site inside [modpath] against one of
   the tables: try the raw spelling, the enclosing-scope-qualified and
   module-alias-expanded spellings (so [module T = Units.Time; T.secs …]
   still matches), and finally full value resolution back to a canonical
   definition key.  Mirrors {!Race.entry_of}. *)
let lookup tbl (defs : Defs.t) ~modpath name =
  let candidates =
    name :: List.map (fun s -> s ^ "." ^ name) (Defs.scopes_of modpath)
  in
  let rec go = function
    | [] -> (
      match Defs.resolve defs ~modpath name with
      | Some d -> Hashtbl.find_opt tbl d.Defs.d_key
      | None -> None)
    | c :: rest -> (
      match Hashtbl.find_opt tbl c with
      | Some v -> Some v
      | None -> (
        match Hashtbl.find_opt tbl (Defs.expand_aliases defs 5 c) with
        | Some v -> Some v
        | None -> go rest))
  in
  go candidates

let accessor_dim t defs ~modpath name = lookup t.accessors defs ~modpath name

let ctor_dim t defs ~modpath name = lookup t.ctors defs ~modpath name

let is_conv t defs ~modpath name =
  lookup t.convs defs ~modpath name |> Option.is_some

(* the carrier types themselves, for type-directed tainting of values that
   reach a raw-float context through a coercion *)
let type_dim (defs : Defs.t) ~modpath (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> (
    let name = Cmt_scan.normalize_name defs.Defs.aliases (Path.name p) in
    let direct = function
      | "Units__Time.t" | "Units.Time.t" -> Some Dim.Time
      | "Units__Rate.t" | "Units.Rate.t" -> Some Dim.Rate
      | "Units__Freq.t" | "Units.Freq.t" -> Some Dim.Freq
      | "Units__Bytes.t" | "Units.Bytes.t" -> Some Dim.Bytes
      | _ -> None
    in
    match direct name with
    | Some d -> Some d
    | None -> (
      match direct (Defs.expand_aliases defs 5 name) with
      | Some d -> Some d
      | None -> (
        (* [module Time = Units.Time] makes call-site types print as
           Time.t; resolve the declaration back to its canonical key *)
        match Defs.resolve_type defs ~modpath name with
        | Some td -> direct td.Defs.t_key
        | None -> None)))
  | _ -> None
