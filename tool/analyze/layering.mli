(** Layering pass: extract the inter-library dependency DAG from recorded
    cmt imports and check it against the declared layers.sexp contract. *)

type layers = string list list
(** Ordered bottom-first; each layer lists dune library names. *)

val parse_layers : Sexp.t list -> (layers, string) result
(** Parse the contents of layers.sexp: one top-level list of layers. *)

val extract_edges :
  Cmt_scan.unit_info list -> (string * string * string) list * string list
(** [(from, to, example source)] dependency edges between scanned libraries
    (deduplicated, sorted), and the sorted list of scanned library names. *)

val check :
  layers ->
  Cmt_scan.unit_info list ->
  Finding.t list * (string * string * string) list
(** Findings ([layer-undeclared-lib], [layer-upward-dep]) plus the extracted
    edges for DOT rendering. *)

val to_dot : layers -> (string * string * string) list -> string
(** Graphviz digraph of the extracted DAG grouped by declared layer. *)
