(** Shared definition/type-declaration tables and name resolution for the
    typedtree passes (alloc, race).  Collected once per driver run from the
    scanned cmt units. *)

(** One module-level value binding. *)
type vdef = {
  d_key : string;  (** "Modpath.name", e.g. "Nimbus_sim__Rng.split" *)
  d_expr : Typedtree.expression;
  d_attrs : Parsetree.attributes;
  d_source : string;
  d_modpath : string;
  d_line : int;
}

(** One type declaration, kept structurally so the race pass can classify
    types without reconstructing compiler environments. *)
type tdecl = {
  t_key : string;  (** "Modpath.name", e.g. "Nimbus_sim__Rng.t" *)
  t_params : Types.type_expr list;
  t_kind : Typedtree.type_kind;
  t_manifest : Types.type_expr option;
  t_attrs : Parsetree.attributes;
  t_source : string;
  t_line : int;
}

type t = {
  defs : (string, vdef) Hashtbl.t;
  types : (string, tdecl) Hashtbl.t;
  mod_aliases : (string, string) Hashtbl.t;
  aliases : (string, unit) Hashtbl.t;
  module_level : (string, unit) Hashtbl.t;
}

(** [has_attr name attrs] is true iff an attribute named [name] is present. *)
val has_attr : string -> Parsetree.attributes -> bool

(** [find_attr name attrs] returns the attribute named [name], if present. *)
val find_attr : string -> Parsetree.attributes -> Parsetree.attribute option

(** [attr_reason a] extracts the conventional [@attr "reason"] string
    payload, if the attribute carries one. *)
val attr_reason : Parsetree.attribute -> string option

(** The name a value binding binds, seeing through the alias wrapper a
    [let x : t = e] constraint introduces. *)
val binding_name : Typedtree.pattern -> string option

(** [collect aliases units] builds the tables from every scanned unit. *)
val collect : (string, unit) Hashtbl.t -> Cmt_scan.unit_info list -> t

(** Enclosing scopes of a module path, innermost first — used to resolve an
    unqualified name from inside a (possibly nested) module. *)
val scopes_of : string -> string list

(** [expand_aliases t fuel name] rewrites leading module-alias prefixes
    ([module X = Y]) to their targets, at most [fuel] times. *)
val expand_aliases : t -> int -> string -> string

(** [resolve t ~modpath name] finds the value definition [name] refers to
    from inside module [modpath], trying enclosing scopes innermost-first
    and seeing through module aliases. *)
val resolve : t -> modpath:string -> string -> vdef option

(** [resolve_type t ~modpath name] — like {!resolve}, for type declarations. *)
val resolve_type : t -> modpath:string -> string -> tdecl option

(** [is_module_level t id] is true iff [id] is a module-level value ident of
    some scanned unit (as opposed to a function-local binding). *)
val is_module_level : t -> Ident.t -> bool
