(** Suppression accounting shared by the determinism, alloc, race, and
    units passes: which [@det_ok]/[@alloc_ok]/[@shared_ok]/[@unit_ok]
    escapes were visited, which actually suppressed a finding, and which
    are stale. *)

type tracker

val create : unit -> tracker

(** Canonical line of a suppression attribute (its own location, falling
    back to the carrying node's line for ghost locations).  Passes and
    {!collect} must agree on this for staleness to line up. *)
val attr_line : fallback:int -> Parsetree.attribute -> int

(** [see t ~attr ~file ~line ~reason] records that a pass visited a
    suppression, i.e. its effect was decidable this run. *)
val see :
  tracker -> attr:string -> file:string -> line:int -> reason:string option ->
  unit

(** [use t ~attr ~file ~line] records that the suppression prevented at
    least one finding. *)
val use : tracker -> attr:string -> file:string -> line:int -> unit

(** [visited t ... ~fired] is [see] followed by [use] when [fired]. *)
val visited :
  tracker -> attr:string -> file:string -> line:int ->
  reason:string option -> fired:bool -> unit

(** Visited suppressions that suppressed nothing, as findings
    (pass ["suppress"], rule ["suppress-stale"]). *)
val stale : tracker -> Finding.t list

(** The escape-hatch attribute names the audit listing recognises, in
    display order. *)
val suppression_attrs : string list

(** One suppression attribute found in the scanned units (for the
    [--suppressions] audit listing). *)
type listed = {
  l_attr : string;
  l_file : string;
  l_line : int;
  l_reason : string option;
}

(** Every suppression attribute in the scanned units, sorted and deduped. *)
val collect : Cmt_scan.unit_info list -> listed list

type status = Used | Stale | Unvisited

val status : tracker -> listed -> status

val status_string : status -> string
