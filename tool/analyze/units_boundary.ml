(* unit-raw-boundary: the typedtree-level completion of PR 1's parsetree
   lint.  A module-level function in the unit-bearing libraries that takes
   a raw [float] parameter whose every use is immediately wrapping it in a
   single dimension's constructor — or returns a raw [float] that every
   tail of the body produces by unwrapping a single dimension — should
   move the carrier type into its signature instead: the raw float crosses
   the API boundary unprotected for no reason.

   Mixed uses (the parameter also feeds plain arithmetic, tails of several
   dimensions, …) are not findings; the function genuinely works on raw
   floats and the dataflow pass polices what it does with them.  Escapes
   are binding-level [@unit_ok "why"] attributes with staleness
   accounting. *)

let default_scope =
  [ "nimbus_core"; "nimbus_cc"; "nimbus_sim"; "nimbus_topology";
    "nimbus_dsp" ]

type state = {
  defs : Defs.t;
  api : Unit_api.t;
  sup : Suppress.tracker option;
  emit : (Finding.t -> unit) ref;
}

let finding st ~file ~line message =
  !(st.emit)
    (Finding.v ~pass_:"units" ~rule:"unit-raw-boundary" ~file ~line message)

let trial st f =
  let saved = !(st.emit) in
  let n = ref 0 in
  st.emit := (fun _ -> incr n);
  Fun.protect ~finally:(fun () -> st.emit := saved) f;
  !n

let sup_visited st ~file ~fallback ~fired (a : Parsetree.attribute) =
  let line = Suppress.attr_line ~fallback a in
  (match st.sup with
  | Some t ->
    Suppress.visited t ~attr:a.attr_name.txt ~file ~line
      ~reason:(Defs.attr_reason a) ~fired
  | None -> ());
  if Defs.attr_reason a = None then
    !(st.emit)
      (Finding.v ~pass_:"units" ~rule:"unit-bare-suppression" ~file ~line
         "[@unit_ok] must carry a reason string: [@unit_ok \"why this raw \
          float boundary is deliberate\"]")

let is_float_ty (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

(* the curried parameters of a definition, plus the body left after them *)
let rec params_of acc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> (
    match c.c_lhs.pat_desc with
    | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
      params_of ((id, c.c_lhs) :: acc) c.c_rhs
    | _ -> params_of acc c.c_rhs)
  | _ -> (List.rev acc, e)

(* --- parameter direction ---------------------------------------------------- *)

(* Every use of [id] in [body] that is the sole bare argument of a
   registered constructor counts as wrapped (with its dimension); any other
   occurrence is a raw use that disqualifies the parameter. *)
let param_uses st ~modpath id body =
  let wrapped = ref [] and raw = ref 0 in
  let expr self (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply
        ( { exp_desc = Texp_ident (p, _, _); _ },
          [ (Asttypes.Nolabel,
             Some { exp_desc = Texp_ident (Path.Pident id', _, _); _ })
          ] )
      when Ident.same id' id -> (
      let name = Cmt_scan.normalize_path st.defs.Defs.aliases p in
      match Unit_api.ctor_dim st.api st.defs ~modpath name with
      | Some d -> wrapped := d :: !wrapped
      | None -> incr raw)
    | Texp_ident (Path.Pident id', _, _) when Ident.same id' id -> incr raw
    | _ -> Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  (!wrapped, !raw)

(* --- return direction ------------------------------------------------------- *)

let rec tails (e : Typedtree.expression) acc =
  match e.exp_desc with
  | Texp_let (_, _, b) -> tails b acc
  | Texp_sequence (_, b) -> tails b acc
  | Texp_open (_, b) -> tails b acc
  | Texp_ifthenelse (_, t, Some e2) -> tails t (tails e2 acc)
  | Texp_match (_, cases, _) ->
    List.fold_left
      (fun acc (c : Typedtree.computation Typedtree.case) ->
        tails c.c_rhs acc)
      acc cases
  | _ -> e :: acc

let tail_unwrap_dim st ~modpath (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
    Unit_api.accessor_dim st.api st.defs ~modpath
      (Cmt_scan.normalize_path st.defs.Defs.aliases p)
  | _ -> None

let single_dim = function
  | [] -> None
  | d :: rest -> if List.for_all (Dim.equal d) rest then Some d else None

(* --- per-definition check --------------------------------------------------- *)

let check_def st (d : Defs.vdef) =
  let modpath = d.Defs.d_modpath in
  let params, body = params_of [] d.Defs.d_expr in
  if params = [] then ()
  else begin
    List.iter
      (fun ((id : Ident.t), (pat : Typedtree.pattern)) ->
        if is_float_ty pat.pat_type then
          let wrapped, raw = param_uses st ~modpath id body in
          if raw = 0 && wrapped <> [] then
            match single_dim wrapped with
            | Some dim ->
              finding st ~file:d.Defs.d_source
                ~line:pat.pat_loc.loc_start.pos_lnum
                (Printf.sprintf
                   "%s takes raw float %s only to wrap it as %s; take %s \
                    in the signature instead, or annotate the binding \
                    [@unit_ok \"why\"]"
                   d.Defs.d_key (Ident.name id) (Dim.describe dim)
                   (Dim.carrier dim))
            | None -> ())
      params;
    if is_float_ty body.exp_type then
      let dims =
        List.map (tail_unwrap_dim st ~modpath) (tails body [])
      in
      if List.for_all Option.is_some dims then
        match single_dim (List.filter_map Fun.id dims) with
        | Some dim ->
          finding st ~file:d.Defs.d_source ~line:d.Defs.d_line
            (Printf.sprintf
               "%s returns a raw float it produces by unwrapping %s; \
                return %s instead, or annotate the binding [@unit_ok \
                \"why\"]"
               d.Defs.d_key (Dim.describe dim) (Dim.carrier dim))
        | None -> ()
  end

(* --- entry point ------------------------------------------------------------ *)

let lib_of_def (d : Defs.vdef) =
  let head =
    match String.index_opt d.Defs.d_modpath '.' with
    | Some i -> String.sub d.Defs.d_modpath 0 i
    | None -> d.Defs.d_modpath
  in
  Cmt_scan.lib_of_modname head

let check ?sup ~scope (api : Unit_api.t) (defs : Defs.t) =
  let collected = ref [] in
  let st =
    { defs; api; sup; emit = ref (fun f -> collected := f :: !collected) }
  in
  let scoped =
    Hashtbl.fold
      (fun _ (d : Defs.vdef) acc ->
        if List.mem (lib_of_def d) scope then d :: acc else acc)
      defs.Defs.defs []
    |> List.sort (fun (a : Defs.vdef) b ->
           let c = String.compare a.d_source b.d_source in
           if c <> 0 then c
           else
             let c = Int.compare a.d_line b.d_line in
             if c <> 0 then c else String.compare a.d_key b.d_key)
  in
  List.iter
    (fun (d : Defs.vdef) ->
      match Defs.find_attr "unit_ok" d.Defs.d_attrs with
      | Some a ->
        let n = trial st (fun () -> check_def st d) in
        sup_visited st ~file:d.Defs.d_source ~fallback:d.Defs.d_line
          ~fired:(n > 0) a
      | None -> check_def st d)
    scoped;
  List.rev !collected
