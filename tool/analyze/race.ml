(* Race / domain-safety pass.

   Everything that crosses the domain pool must be certified, not trusted
   to a doc comment.  Three sub-rules:

   1. Capture analysis at every pool entry point — [Pool.map] /
      [Pool.try_map] / [Pool.map_reduce] / [Pool.submit],
      [Common.map_cases] / [Common.run_seeds], and [Domain.spawn].  A task
      closure passed there runs on an arbitrary domain; any *free* variable
      it captures from an enclosing function must classify domain-safe
      ({!Type_class}), or carry an in-source
      [(x [@shared_ok "why"])] suppression whose reason is auditable.
      Values created inside the task body are by construction unshared and
      never flagged; module-level values are the business of sub-rule 3.
      A task that is not a literal closure cannot be capture-checked: it
      must resolve to a [@@domain_safe] function or carry [@shared_ok].

   2. Function certification: a binding annotated [@@domain_safe "why"?]
      must transitively avoid module-level mutable state — its body may not
      read or write a module-level value of domain-unsafe type, may not
      call ambient-state stdlib entry points (Random/Sys/Unix/printing to
      the shared std channels), and every statically-known callee must be
      certified, verify recursively clean (memoized, cycle-safe), or be a
      stdlib function that only touches its arguments.  Indirect calls
      through closure values are deliberately allowed: the values those
      closures captured were checked at the pool boundary by sub-rule 1,
      and this keeps certification tractable in callback-heavy code — the
      documented soundness trade-off of this pass.

   3. Global sweep: every module-level non-function binding of
      domain-unsafe type inside the simulation-reachable libraries
      (nimbus_sim/core/dsp/faults) is a finding — those libraries run on
      pool domains, so a mutable global there is a latent cross-domain
      race even before anyone writes to it.  A deliberate, synchronised
      global carries a binding-level [@@shared_ok "why"].

   All [@shared_ok] suppressions must carry a reason string and are
   tracked by {!Suppress} so stale ones surface as findings. *)

let default_scope =
  [ "nimbus_sim"; "nimbus_topology"; "nimbus_core"; "nimbus_dsp";
    "nimbus_faults" ]

(* --- entry points ----------------------------------------------------------- *)

type task_filter = Labelled_f | Any_arrow

let canonical_entries =
  [
    ("Nimbus_parallel__Pool.map", ("Pool.map", Labelled_f));
    ("Nimbus_parallel__Pool.try_map", ("Pool.try_map", Labelled_f));
    ("Nimbus_parallel__Pool.map_reduce", ("Pool.map_reduce", Labelled_f));
    ("Nimbus_parallel__Pool.submit", ("Pool.submit", Any_arrow));
    ("Nimbus_experiments__Common.map_cases", ("Common.map_cases", Labelled_f));
    ("Nimbus_experiments__Common.run_seeds", ("Common.run_seeds", Any_arrow));
  ]

(* spellings seen when the defining library is not in the scanned set (the
   fixture libraries reference the wrapped alias module directly), plus the
   stdlib domain spawn *)
let external_entries =
  [
    ("Domain.spawn", ("Domain.spawn", Any_arrow));
    ("Nimbus_parallel.Pool.map", ("Pool.map", Labelled_f));
    ("Nimbus_parallel.Pool.try_map", ("Pool.try_map", Labelled_f));
    ("Nimbus_parallel.Pool.map_reduce", ("Pool.map_reduce", Labelled_f));
    ("Nimbus_parallel.Pool.submit", ("Pool.submit", Any_arrow));
    ("Nimbus_experiments.Common.map_cases", ("Common.map_cases", Labelled_f));
    ("Nimbus_experiments.Common.run_seeds", ("Common.run_seeds", Any_arrow));
  ]

(* --- stdlib call classification for certification --------------------------- *)

(* stdlib entry points that read or write ambient process state; calling
   one from a certified body is a finding no matter the arguments *)
let banned_exact =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun n -> Hashtbl.replace tbl n ())
    [
      "exit"; "at_exit"; "print_string"; "print_bytes"; "print_int";
      "print_float"; "print_char"; "print_endline"; "print_newline";
      "prerr_string"; "prerr_bytes"; "prerr_int"; "prerr_float";
      "prerr_char"; "prerr_endline"; "prerr_newline"; "read_line";
      "read_int"; "read_int_opt"; "read_float"; "read_float_opt";
    ];
  tbl

let banned_prefixes =
  [
    "Random."; "Unix."; "Sys."; "Printf.printf"; "Printf.eprintf";
    "Format.printf"; "Format.eprintf"; "Format.std_formatter";
    "Format.err_formatter";
  ]

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let is_banned name =
  Hashtbl.mem banned_exact name
  || (List.exists (fun p -> starts_with p name) banned_prefixes
     (* explicit-state Random.State is fine; only self-seeding is ambient *)
     && not
          (starts_with "Random.State." name
          && name <> "Random.State.make_self_init"))

(* stdlib modules whose functions only touch their arguments: shared-state
   trouble can only come in through an argument, and arguments are covered
   by the module-level-ident rule *)
let stdlib_modules =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun n -> Hashtbl.replace tbl n ())
    [
      "Array"; "ArrayLabels"; "Bytes"; "BytesLabels"; "String";
      "StringLabels"; "List"; "ListLabels"; "Option"; "Result"; "Either";
      "Int"; "Float"; "Bool"; "Char"; "Uchar"; "Int32"; "Int64";
      "Nativeint"; "Hashtbl"; "Buffer"; "Queue"; "Stack"; "Map"; "Set";
      "Seq"; "Fun"; "Atomic"; "Mutex"; "Condition"; "Semaphore"; "Domain";
      "Printexc"; "Lazy"; "Gc"; "Digest"; "Complex"; "Printf"; "Format";
      "Filename"; "Marshal"; "Scanf"; "Arg"; "In_channel"; "Out_channel";
      "Bigarray"; "Stdlib";
    ];
  tbl

(* --- state ------------------------------------------------------------------ *)

type state = {
  defs : Defs.t;
  sup : Suppress.tracker option;
  emit : (Finding.t -> unit) ref;
  cert_verdicts : (string, Finding.t list) Hashtbl.t;
  cert_in_progress : (string, unit) Hashtbl.t;
}

let finding st ~rule ~file ~line message =
  !(st.emit) (Finding.v ~pass_:"race" ~rule ~file ~line message)

(* run [f] with findings counted but discarded; returns how many fired *)
let trial st f =
  let saved = !(st.emit) in
  let n = ref 0 in
  st.emit := (fun _ -> incr n);
  Fun.protect ~finally:(fun () -> st.emit := saved) f;
  !n

let sup_visited st ~file ~fallback ~fired (a : Parsetree.attribute) =
  let line = Suppress.attr_line ~fallback a in
  (match st.sup with
  | Some t ->
    Suppress.visited t ~attr:a.attr_name.txt ~file ~line
      ~reason:(Defs.attr_reason a) ~fired
  | None -> ());
  if Defs.attr_reason a = None then
    finding st ~rule:"race-bare-suppression" ~file ~line
      "[@shared_ok] must carry a reason string: [@shared_ok \"why this \
       sharing is safe\"]"

let shared_ok attrs = Defs.find_attr "shared_ok" attrs

(* --- type helpers ----------------------------------------------------------- *)

let rec is_arrowish st ~modpath fuel (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Tarrow _ -> true
  | Tpoly (ty, _) -> is_arrowish st ~modpath fuel ty
  | Tconstr (p, _, _) when fuel > 0 -> (
    let name = Cmt_scan.normalize_name st.defs.Defs.aliases (Path.name p) in
    match Defs.resolve_type st.defs ~modpath name with
    | Some { Defs.t_manifest = Some m; _ } ->
      is_arrowish st ~modpath (fuel - 1) m
    | _ -> false)
  | _ -> false

let type_str ty = Format.asprintf "%a" Printtyp.type_expr ty

(* --- sub-rule 1: capture analysis ------------------------------------------- *)

let check_task st ~(u : Cmt_scan.unit_info) ~entry (te : Typedtree.expression)
    =
  let file = u.source in
  match te.exp_desc with
  | Texp_function _ ->
    List.iter
      (fun occs ->
        let o = List.hd occs in
        let suppression () =
          List.find_map
            (fun (oc : Freevars.occ) ->
              Option.map (fun a -> (oc, a)) (shared_ok oc.Freevars.o_attrs))
            occs
        in
        (* a suppression on a capture the pass finds harmless anyway is
           stale, and must be reported as such rather than silently kept *)
        let stale_visit () =
          match suppression () with
          | Some (oc, a) ->
            sup_visited st ~file ~fallback:oc.Freevars.o_line ~fired:false a
          | None -> ()
        in
        if Defs.is_module_level st.defs o.Freevars.o_id then stale_visit ()
        else
          match
            Type_class.classify st.defs ~modpath:u.modname o.Freevars.o_type
          with
          | Type_class.Safe -> stale_visit ()
          | Type_class.Unsafe why -> (
            match suppression () with
            | Some (oc, a) ->
              sup_visited st ~file ~fallback:oc.Freevars.o_line ~fired:true a
            | None ->
              finding st ~rule:"race-unsafe-capture" ~file
                ~line:o.Freevars.o_line
                (Printf.sprintf
                   "task passed to %s captures %s : %s — %s; create it \
                    inside the task body, make it domain-safe, or annotate \
                    the capture (%s [@shared_ok \"why\"])"
                   entry
                   (Ident.name o.Freevars.o_id)
                   (type_str o.Freevars.o_type)
                   why
                   (Ident.name o.Freevars.o_id))))
      (Freevars.free te)
  | Texp_ident (p, _, _) -> (
    let name = Cmt_scan.normalize_path st.defs.Defs.aliases p in
    match Defs.resolve st.defs ~modpath:u.modname name with
    | Some d when Defs.has_attr "domain_safe" d.Defs.d_attrs -> ()
    | _ ->
      finding st ~rule:"race-opaque-task" ~file
        ~line:te.exp_loc.loc_start.pos_lnum
        (Printf.sprintf
           "task %s passed to %s is not a literal closure, so its captures \
            cannot be checked here; certify it [@@domain_safe] or annotate \
            it (%s [@shared_ok \"why\"])"
           name entry name))
  | _ ->
    finding st ~rule:"race-opaque-task" ~file
      ~line:te.exp_loc.loc_start.pos_lnum
      (Printf.sprintf
         "task passed to %s is not a literal closure, so its captures \
          cannot be checked; bind it to a [@@domain_safe] function or \
          annotate it [@shared_ok \"why\"]"
         entry)

let entry_of st ~modpath name =
  let lookup n =
    match List.assoc_opt n external_entries with
    | Some e -> Some e
    | None -> List.assoc_opt n canonical_entries
  in
  (* try the name as written, then scoped and module-alias-expanded forms
     (so [module P = Nimbus_parallel.Pool; P.map ...] still matches), then
     full value resolution back to a canonical definition *)
  let candidates =
    name :: List.map (fun s -> s ^ "." ^ name) (Defs.scopes_of modpath)
  in
  let rec go = function
    | [] -> (
      match Defs.resolve st.defs ~modpath name with
      | Some d -> List.assoc_opt d.Defs.d_key canonical_entries
      | None -> None)
    | c :: rest -> (
      match lookup c with
      | Some e -> Some e
      | None -> (
        match lookup (Defs.expand_aliases st.defs 5 c) with
        | Some e -> Some e
        | None -> go rest))
  in
  go candidates

let scan_sites st (u : Cmt_scan.unit_info) =
  let sites = ref 0 in
  (match u.str with
  | None -> ()
  | Some str ->
    let expr self (e : Typedtree.expression) =
      (match e.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        let name = Cmt_scan.normalize_path st.defs.Defs.aliases p in
        match entry_of st ~modpath:u.modname name with
        | None -> ()
        | Some (entry, filter) ->
          incr sites;
          List.iter
            (fun ((label : Asttypes.arg_label), arg) ->
              match arg with
              | Some (a : Typedtree.expression) ->
                let is_task =
                  match filter with
                  | Labelled_f -> label = Asttypes.Labelled "f"
                  | Any_arrow ->
                    label = Asttypes.Nolabel
                    && is_arrowish st ~modpath:u.modname 5 a.exp_type
                in
                if is_task then (
                  match shared_ok a.exp_attributes with
                  | Some at ->
                    let n =
                      trial st (fun () -> check_task st ~u ~entry a)
                    in
                    sup_visited st ~file:u.source
                      ~fallback:a.exp_loc.loc_start.pos_lnum
                      ~fired:(n > 0) at
                  | None -> check_task st ~u ~entry a)
              | None -> ())
            args)
      | _ -> ());
      Tast_iterator.default_iterator.expr self e
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.structure it str);
  !sites

(* --- sub-rule 2: [@@domain_safe] certification ------------------------------ *)

let rec cert_verdict st (d : Defs.vdef) =
  match Hashtbl.find_opt st.cert_verdicts d.Defs.d_key with
  | Some fs -> fs
  | None ->
    if Hashtbl.mem st.cert_in_progress d.Defs.d_key then []
    else begin
      Hashtbl.replace st.cert_in_progress d.Defs.d_key ();
      let fs = check_cert st d in
      Hashtbl.remove st.cert_in_progress d.Defs.d_key;
      Hashtbl.replace st.cert_verdicts d.Defs.d_key fs;
      fs
    end

and check_cert st (d : Defs.vdef) =
  let acc = ref [] in
  let saved = !(st.emit) in
  st.emit := (fun f -> acc := f :: !acc);
  let file = d.Defs.d_source and modpath = d.Defs.d_modpath in
  let bound = Freevars.bound_idents d.Defs.d_expr in
  let rec visit (e : Typedtree.expression) =
    match shared_ok e.exp_attributes with
    | Some a ->
      let n = trial st (fun () -> visit_core e) in
      sup_visited st ~file ~fallback:e.exp_loc.loc_start.pos_lnum
        ~fired:(n > 0) a
    | None -> visit_core e
  and visit_core (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args) ->
      (match shared_ok fn.exp_attributes with
      | Some a ->
        let n = trial st (fun () -> visit_call fn p) in
        sup_visited st ~file ~fallback:fn.exp_loc.loc_start.pos_lnum
          ~fired:(n > 0) a
      | None -> visit_call fn p);
      List.iter (function _, Some a -> visit a | _, None -> ()) args
    | Texp_ident (p, _, _) -> visit_ident e p
    | _ -> descend e
  and visit_call (fn : Typedtree.expression) p =
    let name = Cmt_scan.normalize_path st.defs.Defs.aliases p in
    let line = fn.exp_loc.loc_start.pos_lnum in
    if is_banned name then
      finding st ~rule:"race-callee" ~file ~line
        (Printf.sprintf
           "%s reads or writes ambient process state; a [@@domain_safe] \
            body may not reach it"
           name)
    else
      match Defs.resolve st.defs ~modpath name with
      | Some callee ->
        if Defs.has_attr "domain_safe" callee.Defs.d_attrs then ()
        else (
          match cert_verdict st callee with
          | [] -> ()
          | f0 :: _ ->
            finding st ~rule:"race-callee" ~file ~line
              (Printf.sprintf
                 "callee %s is not domain-safe (%s:%d %s); certify it \
                  [@@domain_safe] once fixed"
                 callee.Defs.d_key f0.Finding.file f0.Finding.line
                 f0.Finding.message))
      | None ->
        if not (String.contains name '.') then ()
          (* unresolved bare name: a Stdlib primitive; ambient ones are in
             the ban table, the rest only touch their arguments *)
        else
          let head = List.hd (String.split_on_char '.' name) in
          if Hashtbl.mem stdlib_modules head then ()
          else
            finding st ~rule:"race-callee" ~file ~line
              (Printf.sprintf
                 "call to %s cannot be statically verified domain-safe; \
                  certify it [@@domain_safe] or annotate the call \
                  [@shared_ok \"why\"]"
                 name)
  and visit_ident (e : Typedtree.expression) p =
    let local =
      match p with
      | Path.Pident id -> Hashtbl.mem bound (Ident.unique_name id)
      | _ -> false
    in
    if local then ()
    else if is_arrowish st ~modpath 5 e.exp_type then ()
      (* a module-level function used as a value: its applications are
         covered by the callee rule; as data it is immutable code *)
    else
      match Type_class.classify st.defs ~modpath e.exp_type with
      | Type_class.Safe -> ()
      | Type_class.Unsafe why ->
        finding st ~rule:"race-global-access" ~file
          ~line:e.exp_loc.loc_start.pos_lnum
          (Printf.sprintf
             "certified function %s reaches module-level mutable state %s \
              : %s — %s; pass the state in explicitly or annotate the \
              access [@shared_ok \"why\"]"
             d.Defs.d_key
             (Cmt_scan.normalize_path st.defs.Defs.aliases p)
             (type_str e.exp_type) why)
  and descend e =
    let it =
      { Tast_iterator.default_iterator with expr = (fun _ e -> visit e) }
    in
    Tast_iterator.default_iterator.expr it e
  in
  visit d.Defs.d_expr;
  st.emit := saved;
  List.rev !acc

(* --- sub-rule 3: module-level mutable state sweep --------------------------- *)

let sweep st ~scope (units : Cmt_scan.unit_info list) =
  List.iter
    (fun (u : Cmt_scan.unit_info) ->
      match (u.lib, u.str) with
      | Some lib, Some str when List.mem lib scope ->
        let rec str_items modpath (s : Typedtree.structure) =
          List.iter (item modpath) s.str_items
        and item modpath (it : Typedtree.structure_item) =
          match it.str_desc with
          | Tstr_value (_, vbs) -> List.iter (vb modpath) vbs
          | Tstr_module
              {
                mb_name = { txt = Some name; _ };
                mb_expr = { mod_desc = Tmod_structure s; _ };
                _;
              } ->
            str_items (modpath ^ "." ^ name) s
          | _ -> ()
        and vb modpath (v : Typedtree.value_binding) =
          match Defs.binding_name v.vb_pat with
          | Some txt -> (
            let ty = v.vb_pat.pat_type in
            if is_arrowish st ~modpath 5 ty then ()
            else
              match Type_class.classify st.defs ~modpath ty with
              | Type_class.Safe -> (
                match shared_ok v.vb_attributes with
                | Some a ->
                  sup_visited st ~file:u.source
                    ~fallback:v.vb_loc.loc_start.pos_lnum ~fired:false a
                | None -> ())
              | Type_class.Unsafe why -> (
                match shared_ok v.vb_attributes with
                | Some a ->
                  sup_visited st ~file:u.source
                    ~fallback:v.vb_loc.loc_start.pos_lnum ~fired:true a
                | None ->
                  finding st ~rule:"race-mutable-global" ~file:u.source
                    ~line:v.vb_loc.loc_start.pos_lnum
                    (Printf.sprintf
                       "module-level mutable state %s.%s : %s — %s; this \
                        library runs on pool domains, so thread the state \
                        through explicitly, or synchronise it and annotate \
                        the binding [@@shared_ok \"why\"]"
                       modpath txt (type_str ty) why)))
          | _ -> ()
        in
        str_items u.modname str
      | _ -> ())
    units

(* --- entry point ------------------------------------------------------------ *)

type result = {
  findings : Finding.t list;
  certified : string list;  (* [@@domain_safe] definitions that verified *)
  sites : int;  (* pool entry-point call sites capture-checked *)
}

let check ?sup ~scope (defs : Defs.t) (units : Cmt_scan.unit_info list) =
  let collected = ref [] in
  let st =
    {
      defs;
      sup;
      emit = ref (fun f -> collected := f :: !collected);
      cert_verdicts = Hashtbl.create 64;
      cert_in_progress = Hashtbl.create 16;
    }
  in
  let sites = List.fold_left (fun n u -> n + scan_sites st u) 0 units in
  sweep st ~scope units;
  let annotated =
    Hashtbl.fold
      (fun _ (d : Defs.vdef) acc ->
        if Defs.has_attr "domain_safe" d.Defs.d_attrs then d :: acc else acc)
      defs.Defs.defs []
    |> List.sort (fun (a : Defs.vdef) b -> String.compare a.d_key b.d_key)
  in
  let certified =
    List.filter_map
      (fun (d : Defs.vdef) ->
        match cert_verdict st d with
        | [] -> Some d.Defs.d_key
        | fs ->
          collected := fs @ !collected;
          None)
      annotated
  in
  { findings = List.rev !collected; certified; sites }
