(* Suppression accounting, shared by the determinism, alloc, race, and
   units passes.

   Every pass that honours an escape-hatch attribute ([@det_ok] /
   [@alloc_ok] / [@shared_ok] / [@unit_ok]) reports two events here: [see] when the pass
   *visits* a suppression (so its effect is decidable this run) and [use]
   when the suppression actually prevented at least one finding.  A visited
   suppression that suppressed nothing is *stale* — dead weight that would
   hide a future regression — and is reported as a finding of its own, so
   the escape hatches cannot rot.

   Separately, [collect] scans every unit for all suppression attributes
   (whether or not any pass visited them) to power `analyze
   --suppressions`, the audit listing of every escape hatch with its
   file:line and reason. *)

type entry = {
  s_attr : string;
  s_file : string;
  s_line : int;
  s_reason : string option;
  mutable s_used : bool;
}

type tracker = { seen : (string * string * int, entry) Hashtbl.t }

let create () = { seen = Hashtbl.create 64 }

(* the canonical line of a suppression is the attribute's own location (the
   carrying expression may span several lines); both the passes and
   [collect] must use this so their records line up *)
let attr_line ~fallback (a : Parsetree.attribute) =
  let l = a.attr_loc.loc_start.pos_lnum in
  if l > 0 then l else fallback

let see t ~attr ~file ~line ~reason =
  let key = (attr, file, line) in
  if not (Hashtbl.mem t.seen key) then
    Hashtbl.replace t.seen key
      { s_attr = attr; s_file = file; s_line = line; s_reason = reason;
        s_used = false }

let use t ~attr ~file ~line =
  match Hashtbl.find_opt t.seen (attr, file, line) with
  | Some e -> e.s_used <- true
  | None ->
    Hashtbl.replace t.seen (attr, file, line)
      { s_attr = attr; s_file = file; s_line = line; s_reason = None;
        s_used = true }

(* convenience: record a visited suppression and mark it used iff it
   prevented at least one finding *)
let visited t ~attr ~file ~line ~reason ~fired =
  see t ~attr ~file ~line ~reason;
  if fired then use t ~attr ~file ~line

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.seen []
  |> List.sort (fun a b ->
         match String.compare a.s_file b.s_file with
         | 0 -> Int.compare a.s_line b.s_line
         | c -> c)

let stale t =
  List.filter_map
    (fun e ->
      if e.s_used then None
      else
        Some
          (Finding.v ~pass_:"suppress" ~rule:"suppress-stale" ~file:e.s_file
             ~line:e.s_line
             (Printf.sprintf
                "[@%s%s] no longer suppresses any finding; remove it"
                e.s_attr
                (match e.s_reason with
                | Some r -> Printf.sprintf " %S" r
                | None -> ""))))
    (entries t)

(* --- the audit listing ------------------------------------------------------ *)

let suppression_attrs = [ "det_ok"; "alloc_ok"; "shared_ok"; "unit_ok" ]

type listed = {
  l_attr : string;
  l_file : string;
  l_line : int;
  l_reason : string option;
}

let collect (units : Cmt_scan.unit_info list) =
  let out = ref [] in
  let add ~file ~line (a : Parsetree.attribute) =
    if List.mem a.attr_name.txt suppression_attrs then
      out :=
        { l_attr = a.attr_name.txt; l_file = file;
          l_line = attr_line ~fallback:line a;
          l_reason = Defs.attr_reason a }
        :: !out
  in
  List.iter
    (fun (u : Cmt_scan.unit_info) ->
      match u.str with
      | None -> ()
      | Some str ->
        let file = u.source in
        let expr self (e : Typedtree.expression) =
          List.iter (add ~file ~line:e.exp_loc.loc_start.pos_lnum)
            e.exp_attributes;
          Tast_iterator.default_iterator.expr self e
        in
        let value_binding self (vb : Typedtree.value_binding) =
          List.iter (add ~file ~line:vb.vb_loc.loc_start.pos_lnum)
            vb.vb_attributes;
          Tast_iterator.default_iterator.value_binding self vb
        in
        let it =
          { Tast_iterator.default_iterator with expr; value_binding }
        in
        it.structure it str)
    units;
  List.sort_uniq
    (fun a b ->
      match String.compare a.l_file b.l_file with
      | 0 -> (
        match Int.compare a.l_line b.l_line with
        | 0 -> String.compare a.l_attr b.l_attr
        | c -> c)
      | c -> c)
    !out

type status = Used | Stale | Unvisited

let status t (l : listed) =
  match Hashtbl.find_opt t.seen (l.l_attr, l.l_file, l.l_line) with
  | Some e -> if e.s_used then Used else Stale
  | None -> Unvisited

let status_string = function
  | Used -> "used"
  | Stale -> "STALE"
  | Unvisited -> "unvisited"
