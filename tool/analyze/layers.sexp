; Declared layer contract for the nimbus libraries, bottom layer first.
; A library may depend only on libraries in strictly lower layers.
; Checked by tool/analyze's layering pass against the real cmt-imports DAG;
; the extracted graph is promoted to docs/deps.dot for review.
((units nimbus_trace nimbus_parallel)
 (nimbus_dsp)
 (nimbus_sim)
 (nimbus_topology)
 (nimbus_cc)
 (nimbus_core nimbus_faults nimbus_traffic)
 (nimbus_metrics)
 (nimbus_experiments))
