(** Dimension registry for the units pass: which calls unwrap a lib/units
    carrier to a raw float (accessors), which wrap one back up (ctors), and
    which helpers legitimately convert between dimensions (convs).

    The four in-tree carriers are built in under both their canonical
    ([Units__Time.to_secs]) and library ([Units.Time.to_secs]) spellings;
    scanned code extends the registry with [@@unit_accessor "dim"],
    [@@unit_ctor "dim"] and [@@unit_conv "why"] attributes. *)

type t = {
  accessors : (string, Dim.t) Hashtbl.t;
  ctors : (string, Dim.t) Hashtbl.t;
  convs : (string, unit) Hashtbl.t;
}

(** Build the registry: builtins plus attribute-declared entries scanned
    out of [defs].  Malformed registry attributes (missing or unknown
    dimension payload) come back as [unit-bad-registry] findings. *)
val create : Defs.t -> t * Finding.t list

(** [accessor_dim t defs ~modpath name] — the dimension [name] unwraps, if
    [name] (as written at a call site inside [modpath]) resolves to a
    registered accessor. *)
val accessor_dim : t -> Defs.t -> modpath:string -> string -> Dim.t option

(** [ctor_dim t defs ~modpath name] — the dimension [name] wraps, if it
    resolves to a registered constructor. *)
val ctor_dim : t -> Defs.t -> modpath:string -> string -> Dim.t option

(** Whether [name] resolves to a declared conversion helper. *)
val is_conv : t -> Defs.t -> modpath:string -> string -> bool

(** The dimension of a carrier type ([Units.Time.t] &c., through aliases),
    used to taint values whose static type still names the carrier — e.g.
    the operand of a [(x :> float)] coercion. *)
val type_dim : Defs.t -> modpath:string -> Types.type_expr -> Dim.t option
