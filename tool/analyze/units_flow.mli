(** Units dataflow: follow dimension taints on raw floats after they leave
    the lib/units carriers, reporting [unit-mix] (different dimensions meet
    additively or in a comparison) and [unit-rewrap] (a tainted float enters
    a constructor of a different dimension).  [@unit_ok "why"] escapes are
    accounted through the shared suppression tracker. *)

(** Libraries swept by default (the unit-arithmetic surface of the
    simulator: core, cc, sim, topology, dsp, faults, metrics, traffic,
    experiments). *)
val default_scope : string list

type result = {
  findings : Finding.t list;
  checked : int;  (** module-level definitions the dataflow evaluated *)
}

val check :
  ?sup:Suppress.tracker -> scope:string list -> Unit_api.t -> Defs.t -> result
