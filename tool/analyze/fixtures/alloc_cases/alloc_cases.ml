(* Allocation-pass fixture (test-only).  clean_* must verify; bad_* must
   each be flagged with the rule named in the comment. *)

(* verifies: scalar arithmetic, array stores, local non-escaping ref *)
let clean_sum xs =
  let acc = ref 0. in
  for i = 0 to Array.length xs - 1 do
    acc := !acc +. xs.(i)
  done;
  !acc
[@@alloc_free]

(* verifies: calls another visible definition that is itself clean *)
let clean_caller xs = clean_sum xs +. 1.
[@@alloc_free]

(* verifies: the allocation is acknowledged with [@alloc_ok] *)
let clean_suppressed n = Array.length ((Array.make n 0) [@alloc_ok])
[@@alloc_free]

(* alloc-tuple *)
let bad_tuple x = (x, x + 1)
[@@alloc_free]

(* alloc-closure: the local function captures k *)
let bad_closure k =
  let add x = x + k in
  add 1
[@@alloc_free]

(* alloc-call: Array.make is known-allocating *)
let bad_array_make n = Array.make n 0
[@@alloc_free]

(* alloc-construct *)
let bad_some x = Some x
[@@alloc_free]

(* alloc-ref-escape: the ref itself is returned *)
let bad_ref_escape x =
  let r = ref x in
  r
[@@alloc_free]

(* alloc-callee: calls a visible definition that allocates *)
let helper_allocates x = [ x ]

let bad_caller x = helper_allocates x
[@@alloc_free]
