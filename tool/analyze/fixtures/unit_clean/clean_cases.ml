(* Everything the units pass must stay silent on (test fixture). *)

module U = struct
  type tsec = float
  type tbps = float

  let secs (x : float) : tsec = x [@@unit_ctor "time"]

  let bps (x : float) : tbps = x [@@unit_ctor "rate"]

  let to_secs (x : tsec) : float = x [@@unit_accessor "time"]

  let to_bps (x : tbps) : float = x [@@unit_accessor "rate"]

  (* a declared dimension-changing helper: its results are untracked *)
  let bits_of (r : tbps) (t : tsec) = to_bps r *. to_secs t
  [@@unit_conv "rate x time = bits"]
end

let t0 = U.secs 2.0

let t1 = U.secs 3.0

let r0 = U.bps 1e6

(* same dimension: fine *)
let good_add = U.to_secs t0 +. U.to_secs t1

(* scalar scaling keeps the dimension *)
let good_scale = (2.0 *. U.to_secs t0) +. U.to_secs t1

(* a dimensioned product leaves the lattice without a finding *)
let good_product = U.to_bps r0 *. U.to_secs t0

(* a same-dimension ratio is a scalar, usable against plain numbers *)
let good_ratio = (U.to_secs t0 /. U.to_secs t1) +. 0.5

(* the declared conversion helper unlocks cross-dimension arithmetic *)
let good_conv = U.bits_of r0 t0 +. 1.0

(* a reasoned suppression over a genuine mix: used, not stale *)
let good_suppressed =
  (U.to_secs t0 +. U.to_bps r0)
  [@unit_ok "fixture: deliberate mix proving suppressions are accounted"]

(* re-wrapping into the same dimension is a round trip, not a rewrap *)
let good_roundtrip = U.secs (U.to_secs t0)

(* typed-carrier parameters keep the boundary rule silent *)
let span (a : U.tsec) (b : U.tsec) = U.secs (U.to_secs b -. U.to_secs a)
