(* Deliberate det-global-random / det-wall-clock violations (test fixture). *)

let seed_everything () = Random.self_init ()

let draw () = Random.float 1.0

let stamp () = Sys.time ()
