(* Deliberate det-poly-compare violations: polymorphic structural
   compare/hash on float-bearing types (test fixture). *)

type sample = { at : float; value : int }

let bad_eq (a : sample) (b : sample) = a = b

let bad_compare (x : float) (y : float) = compare x y

let bad_hash (s : sample) = Hashtbl.hash s
