(* Deliberate det-hashtbl-order violation (test fixture). *)

let sum_values tbl =
  let total = ref 0 in
  Hashtbl.iter (fun _ v -> total := !total + v) tbl;
  !total
