(* The race pass must stay silent on everything here, and certify both
   clean_pure and clean_calls. *)

module Pool = Nimbus_parallel.Pool

(* immutable toplevel constant: the mutable-global sweep must stay silent *)
let base = 17

(* a mutex-guarded wrapper, trusted via the type-level attribute *)
type guarded = {
  gm : Mutex.t;
  mutable count : int;
}
[@@domain_safe "count is only ever touched under gm"]

let bump g =
  Mutex.lock g.gm;
  g.count <- g.count + 1;
  Mutex.unlock g.gm

let clean_pure i = (i * 31) + base
[@@domain_safe "pure arithmetic over its argument and an immutable constant"]

let clean_calls i = clean_pure i + 1
[@@domain_safe "only calls certified code"]

(* captures: an int (safe), a guarded value (trusted type), and two
   module-level functions (exempt here; covered by certification) *)
let clean_capture pool (g : guarded) =
  let scale = 3 in
  Pool.map pool
    ~f:(fun i ->
      bump g;
      clean_pure (scale * i))
    4

(* an unsafe capture carrying an auditable reason *)
let clean_reasoned pool (xs : int array) =
  Pool.map pool
    ~f:(fun i ->
      (xs [@shared_ok "read-only here; each task reads a disjoint index"]).(i))
    (Array.length xs)
