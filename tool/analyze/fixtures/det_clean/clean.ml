(* Deterministic by construction: explicit state threaded everywhere, and a
   suppressed escape to prove [@det_ok] works (test fixture). *)

let step state = (state * 48271) mod 0x7fffffff

(* typed float comparisons never trip det-poly-compare *)
let same_reading a b = Float.equal a b

let newer a b = Float.compare a b > 0

(* polymorphic = on float-free data stays allowed *)
let is_origin p = p = (0, 0)

let sorted_sum tbl =
  let keys =
    (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []) [@det_ok "sorted below"]
  in
  List.fold_left
    (fun acc k -> acc + Hashtbl.find tbl k)
    0
    (List.sort compare keys)
