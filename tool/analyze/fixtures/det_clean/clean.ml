(* Deterministic by construction: explicit state threaded everywhere, and a
   suppressed escape to prove [@det_ok] works (test fixture). *)

let step state = (state * 48271) mod 0x7fffffff

let sorted_sum tbl =
  let keys =
    (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []) [@det_ok "sorted below"]
  in
  List.fold_left
    (fun acc k -> acc + Hashtbl.find tbl k)
    0
    (List.sort compare keys)
