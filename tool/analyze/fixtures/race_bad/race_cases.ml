(* Each bad_* definition must produce the race-pass finding named in its
   comment; the test suite checks the exact rule multiset. *)

module Pool = Nimbus_parallel.Pool

(* race-mutable-global: module-level mutable state in a swept library *)
let shared_table : (int, int) Hashtbl.t = Hashtbl.create 16

(* race-unsafe-capture: the task closure captures a local ref *)
let bad_capture pool =
  let acc = ref 0 in
  Pool.map pool
    ~f:(fun i ->
      acc := !acc + i;
      !acc)
    4

(* race-unsafe-capture through Domain.spawn as well *)
let bad_spawn () =
  let cell = ref 0 in
  Domain.spawn (fun () -> incr cell)

let helper i = Hashtbl.length shared_table + i

(* race-opaque-task: the task is not a literal closure and helper is not
   certified [@@domain_safe] *)
let bad_opaque pool = Pool.map pool ~f:helper 4

(* race-global-access: a certified body reaches the mutable global *)
let bad_global i =
  Hashtbl.replace shared_table i i
[@@domain_safe "wrongly claimed: writes shared_table without a lock"]

(* race-callee: a certified body calls an uncertified, unsafe callee *)
let bad_callee i = helper i [@@domain_safe "wrongly claimed: helper is not"]

(* race-bare-suppression: [@shared_ok] without a reason string *)
let bad_bare pool =
  let buf = Buffer.create 8 in
  Pool.map pool
    ~f:(fun i ->
      Buffer.add_char (buf [@shared_ok]) 'x';
      i)
    2

(* suppress-stale: the suppression suppresses nothing (k is an int) *)
let bad_stale pool =
  let k = 5 in
  Pool.map pool ~f:(fun i -> i * (k [@shared_ok "k is immutable"])) 2
