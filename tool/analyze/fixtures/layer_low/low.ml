(* Layering fixture: af_layer_high depends on this library. *)

let base = 7
