(* Deliberate unit-mix / unit-rewrap / unit-raw-boundary violations (test
   fixture).  The miniature carrier below declares itself to the registry
   with the unit_* attributes, so the pass needs no knowledge of lib/units
   to check this file. *)

module U = struct
  type tsec = float
  type tbps = float
  type thz = float

  let secs (x : float) : tsec = x [@@unit_ctor "time"]

  let bps (x : float) : tbps = x [@@unit_ctor "rate"]

  let hz (x : float) : thz = x [@@unit_ctor "freq"]

  let to_secs (x : tsec) : float = x [@@unit_accessor "time"]

  let to_bps (x : tbps) : float = x [@@unit_accessor "rate"]

  let to_hz (x : thz) : float = x [@@unit_accessor "freq"]
end

let r0 = U.bps 1e6

let t0 = U.secs 1.0

let f0 = U.hz 5.0

(* unit-mix: rate + time *)
let bad_add = U.to_bps r0 +. U.to_secs t0

(* unit-mix: taints survive let-bindings *)
let bad_let =
  let a = U.to_secs t0 in
  let b = U.to_hz f0 in
  a -. b

(* unit-mix: min/max are meets too *)
let bad_min = Float.min (U.to_secs t0) (U.to_bps r0)

(* unit-mix: comparing across dimensions *)
let bad_cmp = U.to_hz f0 < U.to_secs t0

(* unit-mix: taints survive tuple construction and destructuring *)
let bad_tuple =
  let pair = (U.to_secs t0, U.to_bps r0) in
  let s, b = pair in
  s +. b

(* unit-rewrap: a rate float wrapped as seconds *)
let bad_rewrap = U.secs (U.to_bps r0)

(* unit-rewrap: the taint flows through a let first *)
let bad_rewrap2 =
  let raw = U.to_hz f0 in
  U.secs raw

(* unit-rewrap: the taint flows through a local helper's summary *)
let half x = x /. 2.

let bad_call = U.hz (half (U.to_secs t0))

(* unit-raw-boundary: the parameter exists only to be wrapped as time *)
let bad_boundary_param dt = U.to_secs (U.secs dt) *. 2.

(* unit-raw-boundary: returns a raw float that is just an unwrap *)
let samples = [ U.bps 1e6; U.bps 2e6 ]

let bad_boundary_ret (n : int) = U.to_bps (List.nth samples n)

(* a bare [@unit_ok] (no reason) is itself a finding, though it still
   swallows the mix underneath *)
let bad_bare = (U.to_secs t0 +. U.to_hz f0) [@unit_ok]

(* a reasoned suppression over clean arithmetic must come back stale *)
let bad_stale = (U.to_secs t0 +. 1.0) [@unit_ok "nothing to suppress"]
