(* Layering fixture: the af_layer_high -> af_layer_low edge under test. *)

let doubled = 2 * Af_layer_low.Low.base
