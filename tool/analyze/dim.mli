(** Dimensions tracked by the units pass: the four lib/units carriers plus
    dimensionless scalars.  Compound dimensions (products/quotients of
    distinct bases) are deliberately not modelled; they degrade to the
    pass's untracked top element instead of producing findings. *)

type t =
  | Time
  | Rate
  | Freq
  | Bytes
  | Scalar

val equal : t -> t -> bool

(** [is_base d] is false only for {!Scalar}. *)
val is_base : t -> bool

(** Parse a registry-attribute payload ("time"/"rate"/"freq"/"bytes"/
    "scalar"). *)
val of_string : string -> t option

val to_string : t -> string

(** Human spelling for findings, e.g. ["rate (bits/s)"]. *)
val describe : t -> string

(** The typed carrier to recommend, e.g. ["Units.Time.t"]. *)
val carrier : t -> string
