(* Loading of .cmt files out of dune's _build tree and the path/name
   normalization shared by the typedtree passes.

   Dune compiles library [foo] into [.foo.objs/byte/Foo__Module.cmt]; the
   owning library is recovered from that path segment.  References inside a
   wrapped library go through the generated alias module (the typedtree
   records [Nimbus_dsp.Fft.Plan.execute], not [Nimbus_dsp__Fft.Plan.execute]),
   so [normalize_path] fuses a leading known-alias module with the next
   component to produce one canonical spelling for definition lookup. *)

type unit_info = {
  cmt_path : string;
  lib : string option;
  modname : string;
  source : string;
  imports : string list;
  str : Typedtree.structure option;
}

let rec walk dir f =
  match Sys.readdir dir with
  | entries ->
    Array.sort String.compare entries;
    Array.iter
      (fun entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk path f else f path)
      entries
  | exception Sys_error _ -> ()

(* ".../.nimbus_dsp.objs/byte/x.cmt" -> Some "nimbus_dsp" *)
let lib_of_cmt_path path =
  let parts = String.split_on_char '/' path in
  List.find_map
    (fun part ->
      if
        String.length part > 6
        && part.[0] = '.'
        && Filename.check_suffix part ".objs"
      then Some (String.sub part 1 (String.length part - 6))
      else None)
    parts

(* "Nimbus_dsp__Spectrum" and "Nimbus_dsp" both belong to lib nimbus_dsp *)
let lib_of_modname modname =
  let stem =
    match String.index_opt modname '_' with
    | None -> modname
    | Some _ -> (
      let rec find i =
        if i + 1 >= String.length modname then modname
        else if modname.[i] = '_' && modname.[i + 1] = '_' then
          String.sub modname 0 i
        else find (i + 1)
      in
      find 0)
  in
  String.lowercase_ascii stem

let alias_module_of_lib lib = String.capitalize_ascii lib

let load path =
  match Cmt_format.read_cmt path with
  | info ->
    let str =
      match info.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str -> Some str
      | _ -> None
    in
    Ok
      {
        cmt_path = path;
        lib = lib_of_cmt_path path;
        modname = info.Cmt_format.cmt_modname;
        source =
          (match info.Cmt_format.cmt_sourcefile with
          | Some s -> s
          | None -> path);
        imports = List.map fst info.Cmt_format.cmt_imports;
        str;
      }
  | exception exn -> Error (Printexc.to_string exn)

let scan roots =
  (* a library built in both modes leaves the same unit's .cmt under
     .objs/byte/ and .objs/native/; scanning both would double every
     finding, so each module name is kept once (byte sorts first) *)
  let seen = Hashtbl.create 256 in
  let units = ref [] and errors = ref [] in
  List.iter
    (fun root ->
      walk root (fun path ->
          if Filename.check_suffix path ".cmt" then
            match load path with
            | Ok u ->
              if not (Hashtbl.mem seen u.modname) then begin
                Hashtbl.add seen u.modname ();
                units := u :: !units
              end
            | Error msg ->
              errors :=
                Finding.v ~pass_:"analyze" ~rule:"cmt-read-error" ~file:path
                  ~line:1 msg
                :: !errors))
    roots;
  (List.rev !units, List.rev !errors)

let alias_mods units =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun u ->
      match u.lib with
      | Some lib -> Hashtbl.replace tbl (alias_module_of_lib lib) ()
      | None -> ())
    units;
  tbl

let normalize_name aliases name =
  match String.split_on_char '.' name with
  | [] -> name
  | head :: rest ->
    let stdlib_prefix = "Stdlib__" in
    if
      String.length head > String.length stdlib_prefix
      && String.sub head 0 (String.length stdlib_prefix) = stdlib_prefix
    then
      String.concat "."
        (String.sub head (String.length stdlib_prefix)
           (String.length head - String.length stdlib_prefix)
        :: rest)
    else if head = "Stdlib" && rest <> [] then String.concat "." rest
    else if Hashtbl.mem aliases head then
      match rest with
      | sub :: tail -> String.concat "." ((head ^ "__" ^ sub) :: tail)
      | [] -> name
    else name

let normalize_path aliases p = normalize_name aliases (Path.name p)
