(* Units dataflow pass.

   The phantom types in lib/units protect quantities only while they stay
   wrapped; the moment code calls an accessor ([Rate.to_bps], coercion to
   float, …) the value is a bare float.  This pass follows those bare
   floats through the typedtree:

   - a value produced by a registered accessor is tainted with that
     accessor's dimension ({!Dim.t});
   - taints propagate through let-bindings, tuples, conditionals,
     arithmetic and [Float.*] calls, and locally-resolvable function calls
     (via memoized parameter summaries over the shared {!Defs} tables);
   - two *different* base dimensions meeting in an additive operator or a
     comparison is a [unit-mix] finding;
   - a tainted float entering a constructor of a different dimension
     ([Time.secs (Rate.to_bps r)]) is a [unit-rewrap] finding.

   The lattice is deliberately shallow: compound dimensions (rate × time,
   bytes / seconds) and anything the pass cannot prove degrade to an
   untracked top element that never fires findings.  Declared conversion
   helpers ({!Unit_api.is_conv}) return untracked values by design.
   Escapes are per-expression [@unit_ok "why"] attributes, wired into the
   shared suppression tracker so stale ones surface as findings. *)

let default_scope =
  [ "nimbus_core"; "nimbus_cc"; "nimbus_sim"; "nimbus_topology";
    "nimbus_dsp"; "nimbus_faults"; "nimbus_metrics"; "nimbus_traffic";
    "nimbus_experiments" ]

(* --- taint lattice ---------------------------------------------------------- *)

type taint =
  | Dim of Dim.t  (* a float known to carry exactly this dimension *)
  | Param of int  (* the i-th parameter of the function being summarized *)
  | Tuple of taint list
  | Top  (* untracked: never fires findings *)

let join a b = if a = b then a else Top

let base_of = function Dim d when Dim.is_base d -> Some d | _ -> None

let rec subst args = function
  | Param i -> if i < Array.length args then args.(i) else Top
  | Tuple ts -> Tuple (List.map (subst args) ts)
  | (Dim _ | Top) as t -> t

(* --- operator classification ------------------------------------------------ *)

type op =
  | Additive  (* both operands must share a dimension; result keeps it *)
  | Compare  (* same meet rule; result is dimensionless *)
  | Mul  (* scalar is neutral; dimensioned products leave the lattice *)
  | Div  (* scalar divisor is neutral; same-dimension ratio is scalar *)
  | Preserve  (* unary, keeps its operand's taint *)
  | To_scalar  (* result is dimensionless whatever the argument *)

let op_table =
  let tbl = Hashtbl.create 64 in
  let reg names op = List.iter (fun n -> Hashtbl.replace tbl n op) names in
  reg
    [ "+."; "-."; "min"; "max"; "Float.add"; "Float.sub"; "Float.min";
      "Float.max"; "Float.min_num"; "Float.max_num"; "mod_float";
      "Float.rem"; "copysign"; "Float.copy_sign"; "hypot"; "Float.hypot" ]
    Additive;
  reg
    [ "="; "<>"; "<"; ">"; "<="; ">="; "compare"; "Float.compare";
      "Float.equal" ]
    Compare;
  reg [ "*."; "Float.mul" ] Mul;
  reg [ "/."; "Float.div" ] Div;
  reg
    [ "~-."; "~+."; "Float.neg"; "abs_float"; "Float.abs"; "Float.round";
      "Float.trunc"; "floor"; "Float.floor"; "ceil"; "Float.ceil";
      "Float.succ"; "Float.pred" ]
    Preserve;
  reg [ "float_of_int"; "Float.of_int" ] To_scalar;
  tbl

(* --- state ------------------------------------------------------------------ *)

type summary = { s_params : int; s_taint : taint }

type ctx = { file : string; modpath : string }

type state = {
  defs : Defs.t;
  api : Unit_api.t;
  sup : Suppress.tracker option;
  emit : (Finding.t -> unit) ref;
  summaries : (string, summary) Hashtbl.t;
  in_progress : (string, unit) Hashtbl.t;
}

let finding st ~rule ~file ~line message =
  !(st.emit) (Finding.v ~pass_:"units" ~rule ~file ~line message)

(* run [f] with findings counted but discarded; returns how many fired *)
let trial st f =
  let saved = !(st.emit) in
  let n = ref 0 in
  st.emit := (fun _ -> incr n);
  Fun.protect ~finally:(fun () -> st.emit := saved) f;
  !n

let sup_visited st ~file ~fallback ~fired (a : Parsetree.attribute) =
  let line = Suppress.attr_line ~fallback a in
  (match st.sup with
  | Some t ->
    Suppress.visited t ~attr:a.attr_name.txt ~file ~line
      ~reason:(Defs.attr_reason a) ~fired
  | None -> ());
  if Defs.attr_reason a = None then
    finding st ~rule:"unit-bare-suppression" ~file ~line
      "[@unit_ok] must carry a reason string: [@unit_ok \"why these \
       dimensions may meet\"]"

let unit_ok attrs = Defs.find_attr "unit_ok" attrs

(* --- pattern binding / parameter stripping ---------------------------------- *)

let rec bind_pat :
    type k. _ -> k Typedtree.general_pattern -> taint -> unit =
 fun env (p : _ Typedtree.general_pattern) t ->
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> Hashtbl.replace env (Ident.unique_name id) t
  | Typedtree.Tpat_alias (p', id, _) ->
    Hashtbl.replace env (Ident.unique_name id) t;
    bind_pat env p' t
  | Typedtree.Tpat_tuple ps -> (
    match t with
    | Tuple ts when List.length ts = List.length ps ->
      List.iter2 (bind_pat env) ps ts
    | _ -> List.iter (fun p -> bind_pat env p Top) ps)
  | Typedtree.Tpat_value arg ->
    bind_pat env (arg :> Typedtree.value Typedtree.general_pattern) t
  | _ -> ()
(* variables under any other pattern stay unbound and evaluate to Top *)

(* Strip the outermost curried-parameter chain, binding each simple
   parameter to [Param i]; stops at the first multi-case [function] (its
   cases are checked by normal evaluation). *)
let rec strip_params env idx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } ->
    bind_pat env c.c_lhs (Param idx);
    strip_params env (idx + 1) c.c_rhs
  | _ -> (idx, e)

(* --- evaluation ------------------------------------------------------------- *)

let rec eval st ctx env (e : Typedtree.expression) : taint =
  match unit_ok e.exp_attributes with
  | Some a ->
    let r = ref Top in
    let n = trial st (fun () -> r := eval_core st ctx env e) in
    sup_visited st ~file:ctx.file ~fallback:e.exp_loc.loc_start.pos_lnum
      ~fired:(n > 0) a;
    !r
  | None -> eval_core st ctx env e

and eval_core st ctx env (e : Typedtree.expression) : taint =
  match e.exp_desc with
  | Texp_constant _ -> Dim Dim.Scalar
  | Texp_ident (p, _, vd) -> ident_taint st ctx env p vd
  | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args) ->
    eval_apply st ctx env fn p args
  | Texp_apply (fn, args) ->
    ignore (eval st ctx env fn);
    List.iter
      (function _, Some a -> ignore (eval st ctx env a) | _, None -> ())
      args;
    Top
  | Texp_let (_, vbs, body) ->
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        let t =
          match unit_ok vb.vb_attributes with
          | Some a ->
            let r = ref Top in
            let n = trial st (fun () -> r := eval st ctx env vb.vb_expr) in
            sup_visited st ~file:ctx.file
              ~fallback:vb.vb_loc.loc_start.pos_lnum ~fired:(n > 0) a;
            !r
          | None -> eval st ctx env vb.vb_expr
        in
        bind_pat env vb.vb_pat t)
      vbs;
    eval st ctx env body
  | Texp_sequence (a, b) ->
    ignore (eval st ctx env a);
    eval st ctx env b
  | Texp_ifthenelse (c, t, e_opt) -> (
    ignore (eval st ctx env c);
    let tt = eval st ctx env t in
    match e_opt with
    | Some e2 -> join tt (eval st ctx env e2)
    | None -> tt)
  | Texp_match (scrut, cases, _) ->
    let ts = eval st ctx env scrut in
    List.fold_left
      (fun acc (c : Typedtree.computation Typedtree.case) ->
        bind_pat env c.c_lhs ts;
        Option.iter (fun g -> ignore (eval st ctx env g)) c.c_guard;
        let t = eval st ctx env c.c_rhs in
        match acc with None -> Some t | Some a -> Some (join a t))
      None cases
    |> Option.value ~default:Top
  | Texp_function { cases; _ } ->
    List.iter
      (fun (c : Typedtree.value Typedtree.case) ->
        Option.iter (fun g -> ignore (eval st ctx env g)) c.c_guard;
        ignore (eval st ctx env c.c_rhs))
      cases;
    Top
  | Texp_tuple es -> Tuple (List.map (eval st ctx env) es)
  | Texp_open (_, body) -> eval st ctx env body
  | _ ->
    (* everything else: check the children, degrade to untracked *)
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ e -> ignore (eval st ctx env e));
      }
    in
    Tast_iterator.default_iterator.expr it e;
    Top

and ident_taint st ctx env p (vd : Types.value_description) =
  let local =
    match p with
    | Path.Pident id -> Hashtbl.find_opt env (Ident.unique_name id)
    | _ -> None
  in
  match local with
  | Some t -> t
  | None -> (
    let name = Cmt_scan.normalize_path st.defs.Defs.aliases p in
    match Defs.resolve st.defs ~modpath:ctx.modpath name with
    | Some d -> (
      match summarize st d with
      | { s_params = 0; s_taint } -> s_taint
      | _ -> Top (* a function used as a value *))
    | None -> (
      (* [vd.val_type] is the declaration's type, which still names the
         carrier even under a [(x :> float)] coercion on this use *)
      match Unit_api.type_dim st.defs ~modpath:ctx.modpath vd.val_type with
      | Some d -> Dim d
      | None -> Top))

and eval_apply st ctx env fn p args =
  let name = Cmt_scan.normalize_path st.defs.Defs.aliases p in
  let modpath = ctx.modpath in
  let line = fn.exp_loc.loc_start.pos_lnum in
  let arg_taints =
    List.map
      (fun ((lbl : Asttypes.arg_label), a) ->
        (lbl, Option.map (fun a -> eval st ctx env a) a))
      args
  in
  let positional =
    List.filter_map
      (function Asttypes.Nolabel, Some t -> Some t | _ -> None)
      arg_taints
  in
  let all_positional =
    List.for_all (fun (lbl, _) -> lbl = Asttypes.Nolabel) arg_taints
  in
  match Unit_api.ctor_dim st.api st.defs ~modpath name with
  | Some d ->
    (match positional with
    | [ t ] when all_positional -> (
      match base_of t with
      | Some d' when not (Dim.equal d d') ->
        finding st ~rule:"unit-rewrap" ~file:ctx.file ~line
          (Printf.sprintf
             "%s wraps a float carrying %s as %s; convert through the \
              typed Units API instead of rewrapping, or annotate the \
              argument [@unit_ok \"why\"]"
             name (Dim.describe d') (Dim.describe d))
      | _ -> ())
    | _ -> ());
    Dim d
  | None -> (
    match Unit_api.accessor_dim st.api st.defs ~modpath name with
    | Some d -> Dim d
    | None ->
      if Unit_api.is_conv st.api st.defs ~modpath name then Top
      else (
        match Hashtbl.find_opt op_table name with
        | Some op -> eval_op st ctx ~name ~line op positional all_positional
        | None -> (
          (* locally-resolvable callee: substitute argument taints into
             its memoized parameter summary *)
          match Defs.resolve st.defs ~modpath name with
          | Some d when all_positional ->
            let s = summarize st d in
            if s.s_params > 0 && s.s_params = List.length positional then
              subst (Array.of_list positional) s.s_taint
            else Top
          | _ -> Top)))

and eval_op st ctx ~name ~line op positional all_positional =
  let binary f =
    match positional with
    | [ a; b ] when all_positional -> f a b
    | _ -> Top (* partial application or labelled arguments *)
  in
  let mix_check a b keep =
    match (base_of a, base_of b) with
    | Some da, Some db when not (Dim.equal da db) ->
      finding st ~rule:"unit-mix" ~file:ctx.file ~line
        (Printf.sprintf
           "operands of %s mix %s with %s; stay inside the typed Units \
            API, convert explicitly, or annotate the expression [@unit_ok \
            \"why\"]"
           name (Dim.describe da) (Dim.describe db));
      Top
    | _ -> keep a b
  in
  match op with
  | Additive ->
    binary (fun a b ->
        mix_check a b (fun a b ->
            match (a, b) with
            | Dim Dim.Scalar, t | t, Dim Dim.Scalar -> t
            | Dim da, Dim db when Dim.equal da db -> Dim da
            | Param i, Param j when i = j -> Param i
            | _ -> Top))
  | Compare -> binary (fun a b -> mix_check a b (fun _ _ -> Dim Dim.Scalar))
  | Mul ->
    binary (fun a b ->
        match (a, b) with
        | Dim Dim.Scalar, t | t, Dim Dim.Scalar -> t
        | _ -> Top (* dimensioned products leave the lattice, no finding *))
  | Div ->
    binary (fun a b ->
        match (a, b) with
        | t, Dim Dim.Scalar -> t
        | Dim da, Dim db when Dim.is_base da && Dim.equal da db ->
          Dim Dim.Scalar
        | _ -> Top)
  | Preserve -> (
    match positional with [ t ] when all_positional -> t | _ -> Top)
  | To_scalar -> Dim Dim.Scalar

(* Result taint of a definition as a function of its parameters, computed
   with findings discarded (the definition's own findings are emitted once,
   by its direct check).  Cycles summarize to untracked. *)
and summarize st (d : Defs.vdef) =
  match Hashtbl.find_opt st.summaries d.Defs.d_key with
  | Some s -> s
  | None ->
    if Hashtbl.mem st.in_progress d.Defs.d_key then
      { s_params = 0; s_taint = Top }
    else begin
      Hashtbl.replace st.in_progress d.Defs.d_key ();
      let ctx = { file = d.Defs.d_source; modpath = d.Defs.d_modpath } in
      let env = Hashtbl.create 8 in
      let params, body = strip_params env 0 d.Defs.d_expr in
      let saved = !(st.emit) in
      st.emit := (fun _ -> ());
      let t =
        Fun.protect
          ~finally:(fun () -> st.emit := saved)
          (fun () -> eval st ctx env body)
      in
      Hashtbl.remove st.in_progress d.Defs.d_key;
      let s = { s_params = params; s_taint = t } in
      Hashtbl.replace st.summaries d.Defs.d_key s;
      s
    end

(* --- entry point ------------------------------------------------------------ *)

type result = {
  findings : Finding.t list;
  checked : int;  (* module-level definitions the dataflow evaluated *)
}

let lib_of_def (d : Defs.vdef) =
  let head =
    match String.index_opt d.Defs.d_modpath '.' with
    | Some i -> String.sub d.Defs.d_modpath 0 i
    | None -> d.Defs.d_modpath
  in
  Cmt_scan.lib_of_modname head

let check ?sup ~scope (api : Unit_api.t) (defs : Defs.t) =
  let collected = ref [] in
  let st =
    {
      defs;
      api;
      sup;
      emit = ref (fun f -> collected := f :: !collected);
      summaries = Hashtbl.create 256;
      in_progress = Hashtbl.create 16;
    }
  in
  let scoped =
    Hashtbl.fold
      (fun _ (d : Defs.vdef) acc ->
        if List.mem (lib_of_def d) scope then d :: acc else acc)
      defs.Defs.defs []
    |> List.sort (fun (a : Defs.vdef) b ->
           let c = String.compare a.d_source b.d_source in
           if c <> 0 then c
           else
             let c = Int.compare a.d_line b.d_line in
             if c <> 0 then c else String.compare a.d_key b.d_key)
  in
  List.iter
    (fun (d : Defs.vdef) ->
      let ctx = { file = d.Defs.d_source; modpath = d.Defs.d_modpath } in
      let env = Hashtbl.create 16 in
      let _, body = strip_params env 0 d.Defs.d_expr in
      match unit_ok d.Defs.d_attrs with
      | Some a ->
        let n = trial st (fun () -> ignore (eval st ctx env body)) in
        sup_visited st ~file:d.Defs.d_source ~fallback:d.Defs.d_line
          ~fired:(n > 0) a
      | None -> ignore (eval st ctx env body))
    scoped;
  { findings = List.rev !collected; checked = List.length scoped }
