(* Minimal s-expression reader for the layers.sexp contract.  Atoms are
   unquoted tokens; `;` starts a line comment.  Hand-rolled so the driver
   depends on nothing outside compiler-libs. *)

type t =
  | Atom of string
  | List of t list

exception Parse_error of string

let is_atom_char = function
  | '(' | ')' | ';' | ' ' | '\t' | '\n' | '\r' -> false
  | _ -> true

let parse_string src =
  let n = String.length src in
  let pos = ref 0 in
  let rec skip_ws () =
    if !pos < n then
      match src.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done;
        skip_ws ()
      | _ -> ()
  in
  let rec parse_one () =
    skip_ws ();
    if !pos >= n then raise (Parse_error "unexpected end of input")
    else if src.[!pos] = '(' then begin
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        if !pos >= n then raise (Parse_error "unclosed parenthesis")
        else if src.[!pos] = ')' then incr pos
        else begin
          items := parse_one () :: !items;
          loop ()
        end
      in
      loop ();
      List (List.rev !items)
    end
    else if src.[!pos] = ')' then raise (Parse_error "unexpected )")
    else begin
      let start = !pos in
      while !pos < n && is_atom_char src.[!pos] do
        incr pos
      done;
      Atom (String.sub src start (!pos - start))
    end
  in
  let sexps = ref [] in
  let rec top () =
    skip_ws ();
    if !pos < n then begin
      sexps := parse_one () :: !sexps;
      top ()
    end
  in
  top ();
  List.rev !sexps

let load path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string src
