(* Free-variable computation over typedtree expressions.

   Idents carry globally unique stamps, so "free" is exact: collect every
   ident bound by a pattern (or a for-loop header) anywhere inside the
   expression, collect every [Texp_ident (Pident _)] occurrence, and keep
   the occurrences whose ident is not in the bound set.  The race pass uses
   this to find what a task closure captures from its environment. *)

type occ = {
  o_id : Ident.t;
  o_type : Types.type_expr;
  o_line : int;
  o_attrs : Parsetree.attributes;
}

let bound_idents (e : Typedtree.expression) =
  let tbl = Hashtbl.create 32 in
  let add id = Hashtbl.replace tbl (Ident.unique_name id) () in
  let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern -> unit
      =
   fun self p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> add id
    | Tpat_alias (_, id, _) -> add id
    | _ -> ());
    Tast_iterator.default_iterator.pat self p
  in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_for (id, _, _, _, _, _) -> add id
    | Texp_letop { let_; ands; param; _ } ->
      add param;
      ignore let_;
      ignore ands
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.expr it e;
  tbl

let occurrences (e : Typedtree.expression) =
  let occs = ref [] in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
      occs :=
        {
          o_id = id;
          o_type = e.exp_type;
          o_line = e.exp_loc.loc_start.pos_lnum;
          o_attrs = e.exp_attributes;
        }
        :: !occs
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  List.rev !occs

(* Free occurrences, in traversal order, grouped by ident (first occurrence
   first); each group keeps every occurrence so suppression attributes on
   any one of them can be honoured. *)
let free (e : Typedtree.expression) =
  let bound = bound_idents e in
  let free_occs =
    List.filter
      (fun o -> not (Hashtbl.mem bound (Ident.unique_name o.o_id)))
      (occurrences e)
  in
  let seen = Hashtbl.create 16 in
  let groups = ref [] in
  List.iter
    (fun o ->
      let key = Ident.unique_name o.o_id in
      match Hashtbl.find_opt seen key with
      | Some cell -> cell := o :: !cell
      | None ->
        let cell = ref [ o ] in
        Hashtbl.replace seen key cell;
        groups := (key, cell) :: !groups)
    free_occs;
  List.rev_map (fun (_, cell) -> List.rev !cell) !groups
