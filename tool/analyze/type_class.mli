(** Domain-safety type classifier for the race pass.

    Labels a type domain-safe (sharable across pool domains) or
    domain-unsafe, structurally: immutable records/variants over safe
    components, [Atomic.t], and synchronisation primitives are safe;
    [ref]/[array]/[Bytes.t]/[Hashtbl.t]/[Buffer.t], mutable record fields,
    function types, and unresolvable abstract types are unsafe.  A type
    declaration annotated [@@domain_safe "why"] (a mutex-guarded wrapper)
    is trusted as safe. *)

type verdict =
  | Safe
  | Unsafe of string  (** human-readable reason *)

(** [classify defs ~modpath ty] classifies [ty] as seen from inside module
    [modpath] (used to resolve unqualified type names). *)
val classify : Defs.t -> modpath:string -> Types.type_expr -> verdict

val to_string : verdict -> string
