(** The finding record shared by every analysis pass. *)

type t = {
  pass_ : string;  (** producing pass: parsetree / determinism / layering / alloc *)
  rule : string;  (** stable machine-readable rule id *)
  file : string;
  line : int;
  message : string;
}

val v : pass_:string -> rule:string -> file:string -> line:int -> string -> t

val key : t -> string
(** Baseline matching key: [pass|rule|file].  Line numbers are deliberately
    excluded so suppressions survive unrelated edits above the finding. *)

val compare : t -> t -> int
(** Order by file, line, rule, message — the report order. *)

val pp : Format.formatter -> t -> unit

val json_escape : string -> string

val to_json : ?baselined:bool -> t -> string
(** One JSONL object per finding. *)
