(** [unit-raw-boundary]: module-level functions in the unit-bearing
    libraries that take a raw float only to immediately wrap it as a single
    dimension, or return a raw float every tail of the body unwraps from a
    single dimension — the carrier type belongs in the signature. *)

(** Libraries checked by default (the exported unit-API surface:
    core, cc, sim, topology, dsp). *)
val default_scope : string list

val check :
  ?sup:Suppress.tracker ->
  scope:string list ->
  Unit_api.t ->
  Defs.t ->
  Finding.t list
