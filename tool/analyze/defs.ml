(* Shared definition and type-declaration tables for the typedtree passes.

   The allocation and race passes both need the same machinery: collect every
   module-level value binding and type declaration out of the scanned cmts
   (keyed "Modpath.name"), resolve a referenced name from inside some module
   back to its definition (trying enclosing scopes innermost-first), and see
   through dune's wrapped-library alias modules as well as in-source
   [module X = Y] aliases.  This module factors that out of the original
   alloc pass so the race pass reuses it verbatim. *)

type vdef = {
  d_key : string;
  d_expr : Typedtree.expression;
  d_attrs : Parsetree.attributes;
  d_source : string;
  d_modpath : string;
  d_line : int;
}

type tdecl = {
  t_key : string;
  t_params : Types.type_expr list;
  t_kind : Typedtree.type_kind;
  t_manifest : Types.type_expr option;
  t_attrs : Parsetree.attributes;
  t_source : string;
  t_line : int;
}

type t = {
  defs : (string, vdef) Hashtbl.t;
  types : (string, tdecl) Hashtbl.t;
  (* module-alias paths, e.g. "Nimbus_sim__Engine.Time" -> "Units__Time" *)
  mod_aliases : (string, string) Hashtbl.t;
  aliases : (string, unit) Hashtbl.t;  (* wrapped-library alias modules *)
  (* unique names of every module-level value ident, across all scanned
     units: a free Pident NOT in here is a local of some enclosing function *)
  module_level : (string, unit) Hashtbl.t;
}

let has_attr name attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

let find_attr name attrs =
  List.find_opt
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

(* the conventional payload of a suppression/certification attribute:
   [@attr "reason"] *)
let attr_reason (a : Parsetree.attribute) =
  match a.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

(* --- collection ------------------------------------------------------------ *)

let rec pat_idents : type k. (Ident.t -> unit) -> k Typedtree.general_pattern -> unit =
 fun add p ->
  (match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> add id
  | Typedtree.Tpat_alias (_, id, _) -> add id
  | _ -> ());
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k2) _ (q : k2 Typedtree.general_pattern) ->
          pat_idents add q);
    }
  in
  Tast_iterator.default_iterator.pat it p

(* [let x : t = e] typechecks the constrained pattern as an alias over the
   constraint, so a named binding is Tpat_var or Tpat_alias *)
let binding_name (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (_, { txt; _ }) -> Some txt
  | Typedtree.Tpat_alias (_, _, { txt; _ }) -> Some txt
  | _ -> None

let collect aliases (units : Cmt_scan.unit_info list) =
  let t =
    {
      defs = Hashtbl.create 512;
      types = Hashtbl.create 256;
      mod_aliases = Hashtbl.create 64;
      aliases;
      module_level = Hashtbl.create 1024;
    }
  in
  let rec collect_str ~modpath ~source (str : Typedtree.structure) =
    List.iter (collect_item ~modpath ~source) str.str_items
  and collect_item ~modpath ~source (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          pat_idents
            (fun id -> Hashtbl.replace t.module_level (Ident.unique_name id) ())
            vb.vb_pat;
          match binding_name vb.vb_pat with
          | Some txt ->
            let d_key = modpath ^ "." ^ txt in
            Hashtbl.replace t.defs d_key
              {
                d_key;
                d_expr = vb.vb_expr;
                d_attrs = vb.vb_attributes;
                d_source = source;
                d_modpath = modpath;
                d_line = vb.vb_loc.loc_start.pos_lnum;
              }
          | None -> ())
        vbs
    | Tstr_type (_, decls) ->
      List.iter
        (fun (td : Typedtree.type_declaration) ->
          let t_key = modpath ^ "." ^ td.typ_name.txt in
          Hashtbl.replace t.types t_key
            {
              t_key;
              t_params = List.map (fun (ct, _) -> ct.Typedtree.ctyp_type) td.typ_params;
              t_kind = td.typ_kind;
              t_manifest =
                Option.map (fun ct -> ct.Typedtree.ctyp_type) td.typ_manifest;
              t_attrs = td.typ_attributes;
              t_source = source;
              t_line = td.typ_loc.loc_start.pos_lnum;
            })
        decls
    | Tstr_module mb -> collect_mb ~modpath ~source mb
    | Tstr_recmodule mbs -> List.iter (collect_mb ~modpath ~source) mbs
    | _ -> ()
  and collect_mb ~modpath ~source (mb : Typedtree.module_binding) =
    match mb.mb_name.txt with
    | Some name -> collect_mod ~modpath:(modpath ^ "." ^ name) ~source mb.mb_expr
    | None -> ()
  and collect_mod ~modpath ~source (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> collect_str ~modpath ~source str
    | Tmod_constraint (me, _, _, _) -> collect_mod ~modpath ~source me
    | Tmod_ident (p, _) ->
      Hashtbl.replace t.mod_aliases modpath
        (Cmt_scan.normalize_name aliases (Path.name p))
    | _ -> ()
  in
  List.iter
    (fun (u : Cmt_scan.unit_info) ->
      match u.str with
      | Some str -> collect_str ~modpath:u.modname ~source:u.source str
      | None -> ())
    units;
  t

(* --- resolution ------------------------------------------------------------ *)

let scopes_of modpath =
  let parts = String.split_on_char '.' modpath in
  let rec prefixes acc = function
    | [] -> acc
    | parts ->
      let prefix = String.concat "." parts in
      prefixes (prefix :: acc)
        (match List.rev parts with _ :: tl -> List.rev tl | [] -> [])
  in
  (* longest (innermost) scope first *)
  List.rev (prefixes [] parts)

let rec expand_aliases t fuel name =
  if fuel = 0 then name
  else
    let parts = String.split_on_char '.' name in
    let n = List.length parts in
    let rec try_prefix k =
      if k <= 0 then name
      else
        let prefix = String.concat "." (List.filteri (fun i _ -> i < k) parts) in
        match Hashtbl.find_opt t.mod_aliases prefix with
        | Some target ->
          let rest = List.filteri (fun i _ -> i >= k) parts in
          expand_aliases t (fuel - 1) (String.concat "." (target :: rest))
        | None -> try_prefix (k - 1)
    in
    try_prefix (n - 1)

let resolve_in : 'a. t -> (string, 'a) Hashtbl.t -> modpath:string -> string -> 'a option =
 fun t tbl ~modpath name ->
  let candidates = name :: List.map (fun s -> s ^ "." ^ name) (scopes_of modpath) in
  let rec go = function
    | [] -> None
    | c :: rest -> (
      match Hashtbl.find_opt tbl c with
      | Some d -> Some d
      | None -> (
        let expanded = expand_aliases t 5 c in
        if not (String.equal expanded c) then
          match Hashtbl.find_opt tbl expanded with
          | Some d -> Some d
          | None -> go rest
        else go rest))
  in
  go candidates

let resolve t ~modpath name = resolve_in t t.defs ~modpath name

let resolve_type t ~modpath name = resolve_in t t.types ~modpath name

let is_module_level t id = Hashtbl.mem t.module_level (Ident.unique_name id)
