(* Determinism pass: inside the scoped libraries (everything reachable from
   an engine run — lib/sim, lib/core, lib/dsp, lib/faults), wall-clock reads,
   ambient process state, the global Random state, and order-dependent
   Hashtbl iteration are banned.  Simulated time must come from Engine and
   randomness from Rng.split, or traces stop being byte-identical across
   repeats and --jobs fan-out.

   Sub-rule det-poly-compare: the polymorphic structural operations
   ([=]/[<>]/[compare]/[Hashtbl.hash]) applied to a float-bearing type are
   banned in the same scope.  Structural float comparison disagrees with
   IEEE semantics exactly where traces are most fragile ([nan = nan] is
   false but [compare nan nan] is 0, and two boxed NaN payloads can hash
   apart), so these must go through [Float.equal]/[Float.compare] or a
   typed comparator.

   An expression can be exempted with [@det_ok "reason"]. *)

let banned : (string, string * string) Hashtbl.t = Hashtbl.create 64

let () =
  let add rule msg names =
    List.iter (fun n -> Hashtbl.replace banned n (rule, msg)) names
  in
  add "det-wall-clock"
    "wall-clock read; simulated components must take time from Engine.now"
    [
      "Sys.time";
      "Unix.gettimeofday";
      "Unix.time";
      "Unix.gmtime";
      "Unix.localtime";
    ];
  add "det-global-random"
    "global Random state; draw from a run-scoped Rng.split stream instead"
    [
      "Random.self_init";
      "Random.init";
      "Random.full_init";
      "Random.bits";
      "Random.bits32";
      "Random.bits64";
      "Random.int";
      "Random.int32";
      "Random.int64";
      "Random.nativeint";
      "Random.float";
      "Random.bool";
      "Random.get_state";
      "Random.set_state";
      "Random.State.make_self_init";
    ];
  add "det-hashtbl-order"
    "Hashtbl iteration order depends on hashing/insertion history; iterate \
     over sorted keys (or a deterministic structure) before feeding outputs"
    [
      "Hashtbl.iter";
      "Hashtbl.fold";
      "Hashtbl.to_seq";
      "Hashtbl.to_seq_keys";
      "Hashtbl.to_seq_values";
    ];
  add "det-ambient-env"
    "ambient process state; thread configuration in explicitly from the \
     entry point"
    [ "Sys.getenv"; "Sys.getenv_opt"; "Sys.argv" ]

(* the polymorphic structural operations det-poly-compare polices *)
let poly_ops = [ "="; "<>"; "compare"; "Hashtbl.hash"; "Hashtbl.seeded_hash" ]

let default_scope =
  [ "nimbus_sim"; "nimbus_topology"; "nimbus_core"; "nimbus_dsp";
    "nimbus_faults" ]

(* --- float-bearing type test for det-poly-compare --------------------------- *)

(* Whether a value of [ty] can contain a float anywhere structural
   comparison would reach: float/floatarray directly, through tuples and
   type arguments, and through scanned type declarations (manifest, record
   fields, variant payloads).  Abstract types with no visible declaration
   count as float-free: flagging them would make every opaque comparison a
   finding. *)
let bears_float (defs : Defs.t) ~modpath ty0 =
  let rec go fuel (ty : Types.type_expr) =
    if fuel <= 0 then false
    else
      let fuel = fuel - 1 in
      match Types.get_desc ty with
      | Tconstr (p, args, _) ->
        Path.same p Predef.path_float
        ||
        let name = Cmt_scan.normalize_name defs.Defs.aliases (Path.name p) in
        name = "floatarray"
        || (match Defs.resolve_type defs ~modpath name with
           | Some td -> decl fuel td
           | None -> List.exists (go fuel) args)
      | Ttuple tys -> List.exists (go fuel) tys
      | Tpoly (ty, _) -> go fuel ty
      | _ -> false
  and decl fuel (td : Defs.tdecl) =
    (match td.Defs.t_manifest with Some m -> go fuel m | None -> false)
    ||
    match td.Defs.t_kind with
    | Ttype_record labels ->
      List.exists
        (fun (ld : Typedtree.label_declaration) ->
          go fuel ld.ld_type.ctyp_type)
        labels
    | Ttype_variant cstrs ->
      List.exists
        (fun (cd : Typedtree.constructor_declaration) ->
          match cd.cd_args with
          | Cstr_tuple cts ->
            List.exists (fun ct -> go fuel ct.Typedtree.ctyp_type) cts
          | Cstr_record labels ->
            List.exists
              (fun (ld : Typedtree.label_declaration) ->
                go fuel ld.ld_type.ctyp_type)
              labels)
        cstrs
    | _ -> false
  in
  go 30 ty0

let check_unit ?sup (defs : Defs.t) (u : Cmt_scan.unit_info) =
  let aliases = defs.Defs.aliases in
  match u.str with
  | None -> []
  | Some str ->
    let findings = ref [] in
    (* stack of active [@det_ok] frames; a banned ident under one marks the
       innermost frame as having suppressed something *)
    let frames = ref [] in
    let report ~rule ~line msg =
      match !frames with
      | fired :: _ -> fired := true
      | [] ->
        findings :=
          Finding.v ~pass_:"determinism" ~rule ~file:u.source ~line msg
          :: !findings
    in
    let expr self (e : Typedtree.expression) =
      let frame =
        match Defs.find_attr "det_ok" e.exp_attributes with
        | Some a ->
          let fired = ref false in
          frames := fired :: !frames;
          Some (a, e.exp_loc.loc_start.pos_lnum, fired)
        | None -> None
      in
      (match e.exp_desc with
      | Texp_ident (p, _, _) -> (
        let name = Cmt_scan.normalize_path aliases p in
        match Hashtbl.find_opt banned name with
        | Some (rule, msg) ->
          report ~rule ~line:e.exp_loc.loc_start.pos_lnum
            (Printf.sprintf "%s: %s" name msg)
        | None -> ())
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
        let name = Cmt_scan.normalize_path aliases p in
        if List.mem name poly_ops then (
          let offending =
            List.find_map
              (function
                | _, Some (a : Typedtree.expression)
                  when bears_float defs ~modpath:u.modname a.exp_type ->
                  Some a.exp_type
                | _ -> None)
              args
          in
          match offending with
          | Some ty ->
            report ~rule:"det-poly-compare"
              ~line:e.exp_loc.loc_start.pos_lnum
              (Printf.sprintf
                 "polymorphic %s on float-bearing type %s; structural \
                  compare/hash disagrees with IEEE float semantics on NaN, \
                  so use Float.equal/Float.compare (or a typed comparator) \
                  to keep traces byte-identical"
                 name
                 (Format.asprintf "%a" Printtyp.type_expr ty))
          | None -> ())
      | _ -> ());
      Tast_iterator.default_iterator.expr self e;
      match frame with
      | Some (a, fallback, fired) ->
        frames := List.tl !frames;
        Option.iter
          (fun t ->
            Suppress.visited t ~attr:"det_ok" ~file:u.source
              ~line:(Suppress.attr_line ~fallback a)
              ~reason:(Defs.attr_reason a) ~fired:!fired)
          sup
      | None -> ()
    in
    let iter = { Tast_iterator.default_iterator with expr } in
    iter.structure iter str;
    List.rev !findings

let check ?sup ~scope (defs : Defs.t) units =
  List.concat_map
    (fun (u : Cmt_scan.unit_info) ->
      match u.lib with
      | Some lib when List.mem lib scope -> check_unit ?sup defs u
      | _ -> [])
    units
