(* Determinism pass: inside the scoped libraries (everything reachable from
   an engine run — lib/sim, lib/core, lib/dsp, lib/faults), wall-clock reads,
   ambient process state, the global Random state, and order-dependent
   Hashtbl iteration are banned.  Simulated time must come from Engine and
   randomness from Rng.split, or traces stop being byte-identical across
   repeats and --jobs fan-out.

   An expression can be exempted with [@det_ok "reason"]. *)

let banned : (string, string * string) Hashtbl.t = Hashtbl.create 64

let () =
  let add rule msg names =
    List.iter (fun n -> Hashtbl.replace banned n (rule, msg)) names
  in
  add "det-wall-clock"
    "wall-clock read; simulated components must take time from Engine.now"
    [
      "Sys.time";
      "Unix.gettimeofday";
      "Unix.time";
      "Unix.gmtime";
      "Unix.localtime";
    ];
  add "det-global-random"
    "global Random state; draw from a run-scoped Rng.split stream instead"
    [
      "Random.self_init";
      "Random.init";
      "Random.full_init";
      "Random.bits";
      "Random.bits32";
      "Random.bits64";
      "Random.int";
      "Random.int32";
      "Random.int64";
      "Random.nativeint";
      "Random.float";
      "Random.bool";
      "Random.get_state";
      "Random.set_state";
      "Random.State.make_self_init";
    ];
  add "det-hashtbl-order"
    "Hashtbl iteration order depends on hashing/insertion history; iterate \
     over sorted keys (or a deterministic structure) before feeding outputs"
    [
      "Hashtbl.iter";
      "Hashtbl.fold";
      "Hashtbl.to_seq";
      "Hashtbl.to_seq_keys";
      "Hashtbl.to_seq_values";
    ];
  add "det-ambient-env"
    "ambient process state; thread configuration in explicitly from the \
     entry point"
    [ "Sys.getenv"; "Sys.getenv_opt"; "Sys.argv" ]

let default_scope =
  [ "nimbus_sim"; "nimbus_topology"; "nimbus_core"; "nimbus_dsp";
    "nimbus_faults" ]

let check_unit ?sup aliases (u : Cmt_scan.unit_info) =
  match u.str with
  | None -> []
  | Some str ->
    let findings = ref [] in
    (* stack of active [@det_ok] frames; a banned ident under one marks the
       innermost frame as having suppressed something *)
    let frames = ref [] in
    let expr self (e : Typedtree.expression) =
      let frame =
        match Defs.find_attr "det_ok" e.exp_attributes with
        | Some a ->
          let fired = ref false in
          frames := fired :: !frames;
          Some (a, e.exp_loc.loc_start.pos_lnum, fired)
        | None -> None
      in
      (match e.exp_desc with
      | Texp_ident (p, _, _) -> (
        let name = Cmt_scan.normalize_path aliases p in
        match Hashtbl.find_opt banned name with
        | Some (rule, msg) -> (
          match !frames with
          | fired :: _ -> fired := true
          | [] ->
            findings :=
              Finding.v ~pass_:"determinism" ~rule ~file:u.source
                ~line:e.exp_loc.loc_start.pos_lnum
                (Printf.sprintf "%s: %s" name msg)
              :: !findings)
        | None -> ())
      | _ -> ());
      Tast_iterator.default_iterator.expr self e;
      match frame with
      | Some (a, fallback, fired) ->
        frames := List.tl !frames;
        Option.iter
          (fun t ->
            Suppress.visited t ~attr:"det_ok" ~file:u.source
              ~line:(Suppress.attr_line ~fallback a)
              ~reason:(Defs.attr_reason a) ~fired:!fired)
          sup
      | None -> ()
    in
    let iter = { Tast_iterator.default_iterator with expr } in
    iter.structure iter str;
    List.rev !findings

let check ?sup ~scope aliases units =
  List.concat_map
    (fun (u : Cmt_scan.unit_info) ->
      match u.lib with
      | Some lib when List.mem lib scope -> check_unit ?sup aliases u
      | _ -> [])
    units
