(** Minimal s-expression reader (atoms, lists, `;` line comments) for the
    layers.sexp contract. *)

type t =
  | Atom of string
  | List of t list

exception Parse_error of string

val parse_string : string -> t list
(** Every top-level s-expression in the input.  @raise Parse_error *)

val load : string -> t list
(** [parse_string] over a file's contents. *)
