(* Driver for the analysis suite.

   Runs seven passes and merges their findings:
     - parsetree : source-text lint rules (migrated from tool/lint)
     - determinism : banned ambient-state escapes in simulation-reachable
       libs, plus det-poly-compare on float-bearing types
     - layering : cmt-imports DAG checked against tool/analyze/layers.sexp
     - alloc : [@@alloc_free] bodies verified allocation-free
     - race : pool-boundary capture checks, [@@domain_safe] certification,
       module-level mutable-state sweep
     - units : dimension taints on raw floats after they leave the
       lib/units carriers (unit-mix / unit-rewrap / unit-raw-boundary)
     - suppress : visited [@det_ok]/[@alloc_ok]/[@shared_ok]/[@unit_ok]
       suppressions that no longer suppress anything

   --pass NAME (repeatable, comma-separable) runs a subset; the suppress
   pass only reports on suppressions the selected passes actually visited.
   --suppressions lists every suppression attribute grouped by kind with
   its status and exits 0.

   Exit code is 1 iff any finding is not covered by the baseline file.
   --json writes the machine-readable JSONL report; --dot writes the
   dependency graph extracted by the layering pass; --summary-md writes a
   per-pass markdown table (for CI step summaries). *)

open Nimbus_analyze

let usage =
  "analyze [--src-root DIR]... [--cmt-root DIR]... [--layers FILE] \
   [--baseline FILE] [--json FILE] [--dot FILE] [--summary-md FILE] \
   [--det-libs a,b] [--race-libs a,b] [--units-libs a,b] \
   [--pass NAME[,NAME...]]... [--suppressions] [--quiet]\n\n\
   pass names: parsetree determinism layering alloc race units suppress"

let pass_names =
  [ "parsetree"; "determinism"; "layering"; "alloc"; "race"; "units";
    "suppress" ]

let () =
  let src_roots = ref [] in
  let cmt_roots = ref [] in
  let layers_file = ref "" in
  let baseline_file = ref "" in
  let json_file = ref "" in
  let dot_file = ref "" in
  let det_libs = ref Determinism.default_scope in
  let race_libs = ref Race.default_scope in
  let units_libs = ref None in
  let summary_md = ref "" in
  let passes = ref [] in
  let list_suppressions = ref false in
  let quiet = ref false in
  let spec =
    [
      ("--src-root", Arg.String (fun d -> src_roots := d :: !src_roots),
       "DIR source tree root for the parsetree pass (repeatable)");
      ("--cmt-root", Arg.String (fun d -> cmt_roots := d :: !cmt_roots),
       "DIR build tree root scanned for .cmt files (repeatable)");
      ("--layers", Arg.Set_string layers_file,
       "FILE declared layer contract (layers.sexp)");
      ("--baseline", Arg.Set_string baseline_file,
       "FILE JSONL baseline of accepted findings");
      ("--json", Arg.Set_string json_file,
       "FILE write the JSONL findings report here");
      ("--dot", Arg.Set_string dot_file,
       "FILE write the layering-pass dependency graph here");
      ("--det-libs",
       Arg.String
         (fun s -> det_libs := String.split_on_char ',' s
                               |> List.filter (fun l -> l <> "")),
       "a,b override the determinism-pass library scope");
      ("--race-libs",
       Arg.String
         (fun s -> race_libs := String.split_on_char ',' s
                                |> List.filter (fun l -> l <> "")),
       "a,b override the race-pass mutable-global sweep scope");
      ("--units-libs",
       Arg.String
         (fun s ->
           units_libs :=
             Some
               (String.split_on_char ',' s
               |> List.filter (fun l -> l <> ""))),
       "a,b override the units-pass library scope (dataflow and boundary)");
      ("--summary-md", Arg.Set_string summary_md,
       "FILE write a per-pass findings/runtime markdown table here");
      ("--pass",
       Arg.String
         (fun arg ->
           List.iter
             (fun p ->
               if p = "" then ()
               else if not (List.mem p pass_names) then
                 raise
                   (Arg.Bad
                      (Printf.sprintf "unknown pass %S (expected one of: %s)"
                         p
                         (String.concat " " pass_names)))
               else passes := p :: !passes)
             (String.split_on_char ',' arg)),
       "NAME[,NAME...] run only the named passes (repeatable, \
        comma-separable); stale-baseline reporting is disabled under a \
        filter");
      ("--suppressions", Arg.Set list_suppressions,
       " list every [@det_ok]/[@alloc_ok]/[@shared_ok]/[@unit_ok] grouped \
        by kind with file:line, reason, and status, then exit 0");
      ("--quiet", Arg.Set quiet, " only print the summary lines");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    usage;
  let src_roots = List.rev !src_roots and cmt_roots = List.rev !cmt_roots in
  let filtered = !passes <> [] in
  let enabled p = (not filtered) || List.mem p !passes in

  let pass_stats = ref [] in
  let timed name f =
    let t0 = Sys.time () in
    let r, count = f () in
    pass_stats := (name, count, Sys.time () -. t0) :: !pass_stats;
    r
  in

  (* parsetree pass *)
  let parsetree_findings =
    if not (enabled "parsetree") then []
    else
      timed "parsetree" (fun () ->
          let fs = Rules.check_tree src_roots in
          (fs, List.length fs))
  in

  (* cmt-backed passes *)
  let units, scan_findings = Cmt_scan.scan cmt_roots in
  let aliases = Cmt_scan.alias_mods units in
  let defs = Defs.collect aliases units in
  let sup = Suppress.create () in
  let det_findings =
    if not (enabled "determinism") then []
    else
      timed "determinism" (fun () ->
          let fs = Determinism.check ~sup ~scope:!det_libs defs units in
          (fs, List.length fs))
  in
  let layer_findings, edges, layers =
    if (not (enabled "layering")) || !layers_file = "" then ([], [], [])
    else
      timed "layering" (fun () ->
          let r =
            match Layering.parse_layers (Sexp.load !layers_file) with
            | Ok layers ->
              let fs, edges = Layering.check layers units in
              (fs, edges, layers)
            | Error msg ->
              ( [
                  Finding.v ~pass_:"layering" ~rule:"layer-bad-contract"
                    ~file:!layers_file ~line:1 msg;
                ],
                [], [] )
            | exception Sexp.Parse_error msg ->
              ( [
                  Finding.v ~pass_:"layering" ~rule:"layer-bad-contract"
                    ~file:!layers_file ~line:1 msg;
                ],
                [], [] )
          in
          let fs, _, _ = r in
          (r, List.length fs))
  in
  let alloc_result =
    if not (enabled "alloc") then { Alloc.findings = []; verified = [] }
    else
      timed "alloc" (fun () ->
          let r = Alloc.check ~sup defs in
          (r, List.length r.Alloc.findings))
  in
  let race_result =
    if not (enabled "race") then
      { Race.findings = []; certified = []; sites = 0 }
    else
      timed "race" (fun () ->
          let r = Race.check ~sup ~scope:!race_libs defs units in
          (r, List.length r.Race.findings))
  in
  let units_result, registry_findings =
    if not (enabled "units") then ({ Units_flow.findings = []; checked = 0 }, [])
    else
      timed "units" (fun () ->
          let api, registry_findings = Unit_api.create defs in
          let flow_scope =
            Option.value !units_libs ~default:Units_flow.default_scope
          in
          let boundary_scope =
            Option.value !units_libs ~default:Units_boundary.default_scope
          in
          let flow = Units_flow.check ~sup ~scope:flow_scope api defs in
          let boundary =
            Units_boundary.check ~sup ~scope:boundary_scope api defs
          in
          let r =
            {
              Units_flow.findings = flow.Units_flow.findings @ boundary;
              checked = flow.Units_flow.checked;
            }
          in
          ( (r, registry_findings),
            List.length r.Units_flow.findings + List.length registry_findings
          ))
  in
  let suppress_findings =
    if not (enabled "suppress") then []
    else
      timed "suppress" (fun () ->
          let fs = Suppress.stale sup in
          (fs, List.length fs))
  in

  if !list_suppressions then begin
    let listed = Suppress.collect units in
    List.iter
      (fun attr ->
        match
          List.filter (fun (l : Suppress.listed) -> l.l_attr = attr) listed
        with
        | [] -> ()
        | group ->
          Printf.printf "[@%s] — %d suppression(s)\n" attr
            (List.length group);
          List.iter
            (fun (l : Suppress.listed) ->
              Printf.printf "  %s:%d:%s %s\n" l.l_file l.l_line
                (match l.l_reason with
                | Some r -> Printf.sprintf " %S" r
                | None -> " <no reason>")
                (Suppress.status_string (Suppress.status sup l)))
            group)
      Suppress.suppression_attrs;
    exit 0
  end;

  let findings =
    List.sort Finding.compare
      (parsetree_findings @ scan_findings @ det_findings @ layer_findings
     @ alloc_result.Alloc.findings @ race_result.Race.findings
     @ registry_findings @ units_result.Units_flow.findings
     @ suppress_findings)
  in

  (* baseline split *)
  let entries =
    if !baseline_file = "" then []
    else
      match Baseline.load !baseline_file with
      | Ok es -> es
      | Error msg ->
        Printf.eprintf "analyze: %s\n" msg;
        exit 2
  in
  let { Baseline.fresh; accepted; stale } = Baseline.apply entries findings in

  (* reports *)
  (if !dot_file <> "" then
     let oc = open_out !dot_file in
     output_string oc (Layering.to_dot layers edges);
     close_out oc);
  (if !json_file <> "" then begin
     let oc = open_out !json_file in
     List.iter
       (fun f -> output_string oc (Finding.to_json ~baselined:false f ^ "\n"))
       fresh;
     List.iter
       (fun f -> output_string oc (Finding.to_json ~baselined:true f ^ "\n"))
       accepted;
     close_out oc
   end);
  if not !quiet then begin
    List.iter (fun f -> Format.printf "%a@." Finding.pp f) fresh;
    if not filtered then
      List.iter
        (fun (e : Baseline.entry) ->
          Format.printf
            "analyze: stale baseline entry (no matching finding): %s@." e.key)
        stale
  end;
  List.iter
    (fun (name, count, secs) ->
      Printf.printf "analyze: pass %-11s %3d finding(s) in %.2fs\n" name count
        secs)
    (List.rev !pass_stats);
  (if !summary_md <> "" then begin
     let oc = open_out !summary_md in
     output_string oc "### analyze per-pass summary\n\n";
     output_string oc "| pass | findings | runtime (s) |\n";
     output_string oc "| --- | ---: | ---: |\n";
     List.iter
       (fun (name, count, secs) ->
         Printf.fprintf oc "| %s | %d | %.2f |\n" name count secs)
       (List.rev !pass_stats);
     Printf.fprintf oc "| **total** | **%d** | **%.2f** |\n"
       (List.fold_left (fun n (_, c, _) -> n + c) 0 !pass_stats)
       (List.fold_left (fun s (_, _, t) -> s +. t) 0. !pass_stats);
     close_out oc
   end);
  Printf.printf
    "analyze: %d finding(s) (%d baselined, %d alloc-free function(s) \
     verified, %d domain-safe function(s) certified, %d pool site(s) \
     checked, %d definition(s) unit-checked)\n"
    (List.length findings) (List.length accepted)
    (List.length alloc_result.Alloc.verified)
    (List.length race_result.Race.certified)
    race_result.Race.sites units_result.Units_flow.checked;
  if fresh <> [] then exit 1
