(* Driver for the analysis suite.

   Runs four passes and merges their findings:
     - parsetree : source-text lint rules (migrated from tool/lint)
     - determinism : banned ambient-state escapes in simulation-reachable libs
     - layering : cmt-imports DAG checked against tool/analyze/layers.sexp
     - alloc : [@@alloc_free] bodies verified allocation-free

   Exit code is 1 iff any finding is not covered by the baseline file.
   --json writes the machine-readable JSONL report; --dot writes the
   dependency graph extracted by the layering pass. *)

open Nimbus_analyze

let usage =
  "analyze [--src-root DIR]... [--cmt-root DIR]... [--layers FILE] \
   [--baseline FILE] [--json FILE] [--dot FILE] [--det-libs a,b] [--quiet]"

let () =
  let src_roots = ref [] in
  let cmt_roots = ref [] in
  let layers_file = ref "" in
  let baseline_file = ref "" in
  let json_file = ref "" in
  let dot_file = ref "" in
  let det_libs = ref Determinism.default_scope in
  let quiet = ref false in
  let spec =
    [
      ("--src-root", Arg.String (fun d -> src_roots := d :: !src_roots),
       "DIR source tree root for the parsetree pass (repeatable)");
      ("--cmt-root", Arg.String (fun d -> cmt_roots := d :: !cmt_roots),
       "DIR build tree root scanned for .cmt files (repeatable)");
      ("--layers", Arg.Set_string layers_file,
       "FILE declared layer contract (layers.sexp)");
      ("--baseline", Arg.Set_string baseline_file,
       "FILE JSONL baseline of accepted findings");
      ("--json", Arg.Set_string json_file,
       "FILE write the JSONL findings report here");
      ("--dot", Arg.Set_string dot_file,
       "FILE write the layering-pass dependency graph here");
      ("--det-libs",
       Arg.String
         (fun s -> det_libs := String.split_on_char ',' s
                               |> List.filter (fun l -> l <> "")),
       "a,b override the determinism-pass library scope");
      ("--quiet", Arg.Set quiet, " only print the summary line");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    usage;
  let src_roots = List.rev !src_roots and cmt_roots = List.rev !cmt_roots in

  (* parsetree pass *)
  let parsetree_findings = Rules.check_tree src_roots in

  (* cmt-backed passes *)
  let units, scan_findings = Cmt_scan.scan cmt_roots in
  let aliases = Cmt_scan.alias_mods units in
  let det_findings = Determinism.check ~scope:!det_libs aliases units in
  let layer_findings, edges, layers =
    if !layers_file = "" then ([], [], [])
    else
      match Layering.parse_layers (Sexp.load !layers_file) with
      | Ok layers ->
        let fs, edges = Layering.check layers units in
        (fs, edges, layers)
      | Error msg ->
        ( [
            Finding.v ~pass_:"layering" ~rule:"layer-bad-contract"
              ~file:!layers_file ~line:1 msg;
          ],
          [], [] )
      | exception Sexp.Parse_error msg ->
        ( [
            Finding.v ~pass_:"layering" ~rule:"layer-bad-contract"
              ~file:!layers_file ~line:1 msg;
          ],
          [], [] )
  in
  let alloc_result = Alloc.check aliases units in

  let findings =
    List.sort Finding.compare
      (parsetree_findings @ scan_findings @ det_findings @ layer_findings
     @ alloc_result.Alloc.findings)
  in

  (* baseline split *)
  let entries =
    if !baseline_file = "" then []
    else
      match Baseline.load !baseline_file with
      | Ok es -> es
      | Error msg ->
        Printf.eprintf "analyze: %s\n" msg;
        exit 2
  in
  let { Baseline.fresh; accepted; stale } = Baseline.apply entries findings in

  (* reports *)
  (if !dot_file <> "" then
     let oc = open_out !dot_file in
     output_string oc (Layering.to_dot layers edges);
     close_out oc);
  (if !json_file <> "" then begin
     let oc = open_out !json_file in
     List.iter
       (fun f -> output_string oc (Finding.to_json ~baselined:false f ^ "\n"))
       fresh;
     List.iter
       (fun f -> output_string oc (Finding.to_json ~baselined:true f ^ "\n"))
       accepted;
     close_out oc
   end);
  if not !quiet then begin
    List.iter (fun f -> Format.printf "%a@." Finding.pp f) fresh;
    List.iter
      (fun (e : Baseline.entry) ->
        Format.printf "analyze: stale baseline entry (no matching finding): %s@."
          e.key)
      stale
  end;
  Printf.printf
    "analyze: %d finding(s) (%d baselined, %d alloc-free function(s) \
     verified)\n"
    (List.length findings) (List.length accepted)
    (List.length alloc_result.Alloc.verified);
  if fresh <> [] then exit 1
