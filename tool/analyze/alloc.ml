(* Allocation pass.

   Functions annotated [@@alloc_free] must not heap-allocate: the checker
   walks their typedtree bodies flagging allocating constructs — closures,
   tuples, non-constant constructors, records, array literals, lazy values,
   escaping refs, partial applications — and resolves statically-known
   callees: a call to another function whose definition is in the scanned
   cmt set is analyzed recursively (memoized, cycle-safe); a call to a
   function annotated [@@alloc_free] or [@alloc_ok] is trusted; calls to a
   small whitelist of non-allocating stdlib primitives are allowed; anything
   else is flagged.  [@alloc_ok] on an expression exempts that subtree.

   Two deliberate blind spots, documented in DESIGN.md §13: float/int64
   boxing at non-inlined call boundaries is invisible in the typedtree (the
   PR 2 dynamic minor-words slope tests remain the ground truth for that),
   and local refs are allowed when used only through !/:=/incr/decr because
   the compiler compiles non-escaping refs to mutable stack slots.

   Calls to raising entry points (invalid_arg, failwith, raise) are treated
   as cold: their argument expressions (typically Printf.sprintf) are not
   checked, since they only run on the error path. *)

type def = {
  d_key : string;
  d_expr : Typedtree.expression;
  d_attrs : string list;
  d_source : string;
  d_modpath : string;
}

let has_attr name attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

let attr_names attrs =
  List.map (fun (a : Parsetree.attribute) -> a.attr_name.txt) attrs

(* --- callee classification ------------------------------------------------- *)

let cold_raisers = [ "invalid_arg"; "failwith"; "raise"; "raise_notrace" ]

let ref_ops = [ "!"; ":="; "incr"; "decr" ]

let whitelist =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun n -> Hashtbl.replace tbl n ())
    [
      (* integer / boolean / polymorphic primitives *)
      "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
      "abs"; "succ"; "pred"; "min"; "max"; "="; "<"; ">"; "<="; ">="; "<>";
      "=="; "!="; "compare"; "not"; "&&"; "||"; "&"; "or"; "ignore"; "fst";
      "snd"; "~-"; "~+";
      (* float primitives (results may be boxed at call boundaries; boxing
         is out of scope here, see above) *)
      "+."; "-."; "*."; "/."; "~-."; "~+."; "**"; "sqrt"; "exp"; "log";
      "log10"; "log1p"; "expm1"; "cos"; "sin"; "tan"; "acos"; "asin"; "atan";
      "atan2"; "cosh"; "sinh"; "tanh"; "ceil"; "floor"; "abs_float";
      "mod_float"; "copysign"; "ldexp"; "classify_float"; "float_of_int";
      "int_of_float"; "truncate"; "char_of_int"; "int_of_char";
      "Sys.opaque_identity";
      (* in-place array/bytes/string access *)
      "Array.length"; "Array.get"; "Array.set"; "Array.unsafe_get";
      "Array.unsafe_set"; "Array.fill"; "Array.blit"; "Array.unsafe_blit";
      "Bytes.length"; "Bytes.get"; "Bytes.set"; "Bytes.unsafe_get";
      "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit"; "Bytes.unsafe_blit";
      "String.length"; "String.get"; "String.unsafe_get";
      (* scalar module functions *)
      "Char.code"; "Char.chr"; "Char.unsafe_chr"; "Int.min"; "Int.max";
      "Int.abs"; "Int.equal"; "Int.compare"; "Int.succ"; "Int.pred";
      "Float.equal"; "Float.compare"; "Float.hypot"; "Float.abs";
      "Float.min"; "Float.max"; "Float.min_num"; "Float.max_num";
      "Float.is_finite"; "Float.is_nan"; "Float.is_integer"; "Float.of_int";
      "Float.to_int"; "Float.round"; "Float.trunc"; "Float.rem";
      "Float.succ"; "Float.pred"; "Float.sign_bit"; "Float.copy_sign";
      "Float.fma"; "Option.value"; "Option.is_some"; "Option.is_none";
      "Bool.not"; "Bool.equal"; "Bool.compare";
    ];
  tbl

let allocating_exact =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun n -> Hashtbl.replace tbl n ())
    [ "^"; "@"; "string_of_int"; "string_of_float"; "string_of_bool";
      "float_of_string"; "int_of_string"; "frexp"; "modf"; "Sys.time" ];
  tbl

let allocating_prefixes =
  [
    "List."; "Printf."; "Format."; "Buffer."; "Int64."; "Int32.";
    "Nativeint."; "Seq."; "Queue."; "Stack."; "Hashtbl."; "Map."; "Set.";
    "Result."; "Either."; "Lazy."; "Array."; "String."; "Bytes.";
    "Option."; "Digest."; "Scanf."; "Marshal.";
  ]

let is_known_allocating name =
  Hashtbl.mem allocating_exact name
  || List.exists
       (fun p ->
         String.length name > String.length p
         && String.sub name 0 (String.length p) = p)
       allocating_prefixes

(* --- definition collection ------------------------------------------------- *)

type tables = {
  defs : (string, def) Hashtbl.t;
  (* module-alias paths, e.g. "Nimbus_sim__Engine.Time" -> "Units__Time" *)
  mod_aliases : (string, string) Hashtbl.t;
  aliases : (string, unit) Hashtbl.t;  (* wrapped-library alias modules *)
}

let collect aliases (units : Cmt_scan.unit_info list) =
  let t =
    { defs = Hashtbl.create 512; mod_aliases = Hashtbl.create 64; aliases }
  in
  let rec collect_str ~modpath ~source (str : Typedtree.structure) =
    List.iter (collect_item ~modpath ~source) str.str_items
  and collect_item ~modpath ~source (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match vb.vb_pat.pat_desc with
          | Tpat_var (_, { txt; _ }) ->
            let d_key = modpath ^ "." ^ txt in
            Hashtbl.replace t.defs d_key
              {
                d_key;
                d_expr = vb.vb_expr;
                d_attrs = attr_names vb.vb_attributes;
                d_source = source;
                d_modpath = modpath;
              }
          | _ -> ())
        vbs
    | Tstr_module mb -> collect_mb ~modpath ~source mb
    | Tstr_recmodule mbs -> List.iter (collect_mb ~modpath ~source) mbs
    | _ -> ()
  and collect_mb ~modpath ~source (mb : Typedtree.module_binding) =
    match mb.mb_name.txt with
    | Some name -> collect_mod ~modpath:(modpath ^ "." ^ name) ~source mb.mb_expr
    | None -> ()
  and collect_mod ~modpath ~source (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> collect_str ~modpath ~source str
    | Tmod_constraint (me, _, _, _) -> collect_mod ~modpath ~source me
    | Tmod_ident (p, _) ->
      Hashtbl.replace t.mod_aliases modpath
        (Cmt_scan.normalize_name aliases (Path.name p))
    | _ -> ()
  in
  List.iter
    (fun (u : Cmt_scan.unit_info) ->
      match u.str with
      | Some str -> collect_str ~modpath:u.modname ~source:u.source str
      | None -> ())
    units;
  t

(* --- resolution ------------------------------------------------------------ *)

let scopes_of modpath =
  let parts = String.split_on_char '.' modpath in
  let rec prefixes acc = function
    | [] -> acc
    | parts ->
      let prefix = String.concat "." parts in
      prefixes (prefix :: acc)
        (match List.rev parts with _ :: tl -> List.rev tl | [] -> [])
  in
  (* longest (innermost) scope first *)
  List.rev (prefixes [] parts)

let rec expand_aliases t fuel name =
  if fuel = 0 then name
  else
    let parts = String.split_on_char '.' name in
    let n = List.length parts in
    let rec try_prefix k =
      if k <= 0 then name
      else
        let prefix = String.concat "." (List.filteri (fun i _ -> i < k) parts) in
        match Hashtbl.find_opt t.mod_aliases prefix with
        | Some target ->
          let rest = List.filteri (fun i _ -> i >= k) parts in
          expand_aliases t (fuel - 1) (String.concat "." (target :: rest))
        | None -> try_prefix (k - 1)
    in
    try_prefix (n - 1)

let resolve t ~modpath name =
  let candidates = name :: List.map (fun s -> s ^ "." ^ name) (scopes_of modpath) in
  let rec go = function
    | [] -> None
    | c :: rest -> (
      match Hashtbl.find_opt t.defs c with
      | Some d -> Some d
      | None -> (
        let expanded = expand_aliases t 5 c in
        if not (String.equal expanded c) then
          match Hashtbl.find_opt t.defs expanded with
          | Some d -> Some d
          | None -> go rest
        else go rest))
  in
  go candidates

(* --- the checker ----------------------------------------------------------- *)

type state = {
  tables : tables;
  verdicts : (string, Finding.t list) Hashtbl.t;
  in_progress : (string, unit) Hashtbl.t;
}

let finding ~rule ~source (e : Typedtree.expression) message =
  Finding.v ~pass_:"alloc" ~rule ~file:source
    ~line:e.exp_loc.loc_start.pos_lnum message

let rec verdict st (d : def) =
  match Hashtbl.find_opt st.verdicts d.d_key with
  | Some fs -> fs
  | None ->
    if Hashtbl.mem st.in_progress d.d_key then []
    else begin
      Hashtbl.replace st.in_progress d.d_key ();
      let fs = check_def st d in
      Hashtbl.remove st.in_progress d.d_key;
      Hashtbl.replace st.verdicts d.d_key fs;
      fs
    end

and check_def st (d : def) =
  let findings = ref [] in
  let local_refs = Hashtbl.create 8 in
  let add f = findings := f :: !findings in
  let source = d.d_source in
  let rec visit (e : Typedtree.expression) =
    if has_attr "alloc_ok" e.exp_attributes then ()
    else
      match e.exp_desc with
      | Texp_apply (fn, args) -> visit_apply e fn args
      | Texp_let (Nonrecursive, vbs, body) ->
        (* [let x = ref e in ...] (also [let a = ref _ and b = ref _]):
           allowed as long as the ref never escapes (used only through
           ! / := / incr / decr), matching the compiler's
           mutable-stack-slot optimization for local refs *)
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match vb with
            | {
             vb_pat = { pat_desc = Tpat_var (id, _); _ };
             vb_expr =
               {
                 exp_desc =
                   Texp_apply
                     ( { exp_desc = Texp_ident (rp, _, _); _ },
                       [ (_, Some init) ] );
                 _;
               };
             _;
            }
              when String.equal
                     (Cmt_scan.normalize_path st.tables.aliases rp)
                     "ref" ->
              visit init;
              Hashtbl.replace local_refs (Ident.unique_name id) ()
            | _ -> visit vb.vb_expr)
          vbs;
        visit body
      | Texp_ident (Path.Pident id, _, _)
        when Hashtbl.mem local_refs (Ident.unique_name id) ->
        add
          (finding ~rule:"alloc-ref-escape" ~source e
             (Printf.sprintf
                "local ref %s escapes (used other than through !/:=); it \
                 will be heap-allocated"
                (Ident.name id)))
      | Texp_function _ ->
        add
          (finding ~rule:"alloc-closure" ~source e
             "closure allocation inside an [@@alloc_free] body; hoist the \
              function to the top level")
      | Texp_tuple _ ->
        add (finding ~rule:"alloc-tuple" ~source e "tuple allocation");
        descend e
      | Texp_construct (_, cd, args) -> (
        match (cd.cstr_tag, args) with
        | _, [] -> descend e
        | Types.Cstr_unboxed, _ -> descend e
        | _ ->
          add
            (finding ~rule:"alloc-construct" ~source e
               (Printf.sprintf "constructor %s allocates a block"
                  cd.cstr_name));
          descend e)
      | Texp_variant (_, Some _) ->
        add
          (finding ~rule:"alloc-construct" ~source e
             "polymorphic variant with argument allocates");
        descend e
      | Texp_record { representation = Types.Record_unboxed _; _ } ->
        descend e
      | Texp_record _ ->
        add (finding ~rule:"alloc-record" ~source e "record allocation");
        descend e
      | Texp_array [] -> ()
      | Texp_array _ ->
        add (finding ~rule:"alloc-array" ~source e "array literal allocation");
        descend e
      | Texp_lazy _ ->
        add (finding ~rule:"alloc-lazy" ~source e "lazy value allocation");
        descend e
      | Texp_object _ | Texp_new _ | Texp_pack _ | Texp_letop _ ->
        add
          (finding ~rule:"alloc-other" ~source e
             "allocating construct (object/first-class module/letop)")
      | _ -> descend e
  and descend e =
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ e -> visit e);
      }
    in
    Tast_iterator.default_iterator.expr it e
  and visit_args args =
    List.iter (function _, Some a -> visit a | _, None -> ()) args
  and visit_apply e fn args =
    if List.exists (fun (_, a) -> a = None) args then
      add
        (finding ~rule:"alloc-partial-app" ~source e
           "partial application allocates a closure");
    match fn.exp_desc with
    | Texp_ident (p, _, _) -> (
      let name = Cmt_scan.normalize_path st.tables.aliases p in
      if List.mem name ref_ops then
        match args with
        | (_, Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ }) :: rest
          when Hashtbl.mem local_refs (Ident.unique_name id) ->
          visit_args rest
        | _ -> visit_args args
      else if List.mem name cold_raisers then
        (* cold path: the raise only runs on errors, so its message
           construction is exempt *)
        ()
      else if String.equal name "ref" then begin
        add
          (finding ~rule:"alloc-ref" ~source e
             "ref allocation (escaping or non-local ref)");
        visit_args args
      end
      else if Hashtbl.mem whitelist name then visit_args args
      else begin
        (match resolve st.tables ~modpath:d.d_modpath name with
        | Some callee ->
          if
            List.mem "alloc_free" callee.d_attrs
            || List.mem "alloc_ok" callee.d_attrs
          then ()
          else (
            match verdict st callee with
            | [] -> ()
            | f0 :: _ ->
              add
                (finding ~rule:"alloc-callee" ~source e
                   (Printf.sprintf
                      "callee %s allocates (%s:%d [%s] %s); annotate it \
                       [@@alloc_free] once fixed"
                      callee.d_key f0.Finding.file f0.Finding.line
                      f0.Finding.rule f0.Finding.message)))
        | None ->
          if is_known_allocating name then
            add
              (finding ~rule:"alloc-call" ~source e
                 (Printf.sprintf "%s allocates" name))
          else
            add
              (finding ~rule:"alloc-unknown-call" ~source e
                 (Printf.sprintf
                    "call to %s is not known to be allocation-free; \
                     annotate it [@@alloc_free], or wrap the call in \
                     [@alloc_ok] if the allocation is intended"
                    name)));
        visit_args args
      end)
    | _ ->
      add
        (finding ~rule:"alloc-indirect-call" ~source e
           "indirect call through a closure value; the target cannot be \
            checked statically");
      visit fn;
      visit_args args
  (* Strip the curried-parameter chain: the outermost Texp_function nodes
     are the annotated function itself, not closure allocations.  An
     optional argument with a default desugars to
     [fun *opt* -> let x = match *opt* ... in fun ...]; the interposed let
     is still part of the parameter chain (its default expression runs per
     call, so it is visited), and stripping continues below it. *)
  and analyze_fn ~after_opt (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { cases = [ c ]; _ } ->
      Option.iter visit c.c_guard;
      let opt_param =
        match c.c_lhs.pat_desc with
        | Tpat_var (id, _) ->
          let n = Ident.name id in
          String.length n >= 5 && String.sub n 0 5 = "*opt*"
        | _ -> false
      in
      analyze_fn ~after_opt:opt_param c.c_rhs
    | Texp_function { cases; _ } ->
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          Option.iter visit c.c_guard;
          visit c.c_rhs)
        cases
    | Texp_let (Nonrecursive, vbs, body) when after_opt ->
      List.iter (fun (vb : Typedtree.value_binding) -> visit vb.vb_expr) vbs;
      analyze_fn ~after_opt:false body
    | _ -> visit e
  in
  analyze_fn ~after_opt:false d.d_expr;
  List.rev !findings

(* --- entry point ----------------------------------------------------------- *)

type result = {
  findings : Finding.t list;
  verified : string list;  (* [@@alloc_free] definitions that checked clean *)
}

let check aliases units =
  let tables = collect aliases units in
  let st =
    { tables; verdicts = Hashtbl.create 64; in_progress = Hashtbl.create 16 }
  in
  let annotated =
    Hashtbl.fold
      (fun _ d acc -> if List.mem "alloc_free" d.d_attrs then d :: acc else acc)
      tables.defs []
    |> List.sort (fun a b -> String.compare a.d_key b.d_key)
  in
  List.fold_left
    (fun acc d ->
      match verdict st d with
      | [] -> { acc with verified = d.d_key :: acc.verified }
      | fs -> { acc with findings = acc.findings @ fs })
    { findings = []; verified = [] }
    annotated
  |> fun r -> { r with verified = List.rev r.verified }
