(* Allocation pass.

   Functions annotated [@@alloc_free] must not heap-allocate: the checker
   walks their typedtree bodies flagging allocating constructs — closures,
   tuples, non-constant constructors, records, array literals, lazy values,
   escaping refs, partial applications — and resolves statically-known
   callees: a call to another function whose definition is in the scanned
   cmt set is analyzed recursively (memoized, cycle-safe); a call to a
   function annotated [@@alloc_free] or [@alloc_ok] is trusted; calls to a
   small whitelist of non-allocating stdlib primitives are allowed; anything
   else is flagged.  [@alloc_ok] on an expression exempts that subtree.

   Two deliberate blind spots, documented in DESIGN.md §13: float/int64
   boxing at non-inlined call boundaries is invisible in the typedtree (the
   PR 2 dynamic minor-words slope tests remain the ground truth for that),
   and local refs are allowed when used only through !/:=/incr/decr because
   the compiler compiles non-escaping refs to mutable stack slots.

   Calls to raising entry points (invalid_arg, failwith, raise) are treated
   as cold: their argument expressions (typically Printf.sprintf) are not
   checked, since they only run on the error path. *)

(* --- callee classification ------------------------------------------------- *)

let cold_raisers = [ "invalid_arg"; "failwith"; "raise"; "raise_notrace" ]

let ref_ops = [ "!"; ":="; "incr"; "decr" ]

let whitelist =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun n -> Hashtbl.replace tbl n ())
    [
      (* integer / boolean / polymorphic primitives *)
      "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lnot"; "lsl"; "lsr";
      "asr";
      "abs"; "succ"; "pred"; "min"; "max"; "="; "<"; ">"; "<="; ">="; "<>";
      "=="; "!="; "compare"; "not"; "&&"; "||"; "&"; "or"; "ignore"; "fst";
      "snd"; "~-"; "~+";
      (* float primitives (results may be boxed at call boundaries; boxing
         is out of scope here, see above) *)
      "+."; "-."; "*."; "/."; "~-."; "~+."; "**"; "sqrt"; "exp"; "log";
      "log10"; "log1p"; "expm1"; "cos"; "sin"; "tan"; "acos"; "asin"; "atan";
      "atan2"; "cosh"; "sinh"; "tanh"; "ceil"; "floor"; "abs_float";
      "mod_float"; "copysign"; "ldexp"; "classify_float"; "float_of_int";
      "int_of_float"; "truncate"; "char_of_int"; "int_of_char";
      "Sys.opaque_identity";
      (* in-place array/bytes/string access *)
      "Array.length"; "Array.get"; "Array.set"; "Array.unsafe_get";
      "Array.unsafe_set"; "Array.fill"; "Array.blit"; "Array.unsafe_blit";
      "Bytes.length"; "Bytes.get"; "Bytes.set"; "Bytes.unsafe_get";
      "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit"; "Bytes.unsafe_blit";
      "String.length"; "String.get"; "String.unsafe_get";
      (* scalar module functions *)
      "Char.code"; "Char.chr"; "Char.unsafe_chr"; "Int.min"; "Int.max";
      "Int.abs"; "Int.equal"; "Int.compare"; "Int.succ"; "Int.pred";
      "Float.equal"; "Float.compare"; "Float.hypot"; "Float.abs";
      "Float.min"; "Float.max"; "Float.min_num"; "Float.max_num";
      "Float.is_finite"; "Float.is_nan"; "Float.is_integer"; "Float.of_int";
      "Float.to_int"; "Float.round"; "Float.trunc"; "Float.rem";
      "Float.succ"; "Float.pred"; "Float.sign_bit"; "Float.copy_sign";
      "Float.fma"; "Option.value"; "Option.is_some"; "Option.is_none";
      "Bool.not"; "Bool.equal"; "Bool.compare";
    ];
  tbl

let allocating_exact =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun n -> Hashtbl.replace tbl n ())
    [ "^"; "@"; "string_of_int"; "string_of_float"; "string_of_bool";
      "float_of_string"; "int_of_string"; "frexp"; "modf"; "Sys.time" ];
  tbl

let allocating_prefixes =
  [
    "List."; "Printf."; "Format."; "Buffer."; "Int64."; "Int32.";
    "Nativeint."; "Seq."; "Queue."; "Stack."; "Hashtbl."; "Map."; "Set.";
    "Result."; "Either."; "Lazy."; "Array."; "String."; "Bytes.";
    "Option."; "Digest."; "Scanf."; "Marshal.";
  ]

let is_known_allocating name =
  Hashtbl.mem allocating_exact name
  || List.exists
       (fun p ->
         String.length name > String.length p
         && String.sub name 0 (String.length p) = p)
       allocating_prefixes

(* --- the checker ----------------------------------------------------------- *)

(* definition collection and name resolution live in {!Defs}, shared with
   the race pass *)

type state = {
  tables : Defs.t;
  sup : Suppress.tracker option;
  verdicts : (string, Finding.t list) Hashtbl.t;
  in_progress : (string, unit) Hashtbl.t;
}

let finding ~rule ~source (e : Typedtree.expression) message =
  Finding.v ~pass_:"alloc" ~rule ~file:source
    ~line:e.exp_loc.loc_start.pos_lnum message

let rec verdict st (d : Defs.vdef) =
  match Hashtbl.find_opt st.verdicts d.d_key with
  | Some fs -> fs
  | None ->
    if Hashtbl.mem st.in_progress d.d_key then []
    else begin
      Hashtbl.replace st.in_progress d.d_key ();
      let fs = check_def st d in
      Hashtbl.remove st.in_progress d.d_key;
      Hashtbl.replace st.verdicts d.d_key fs;
      fs
    end

and check_def st (d : Defs.vdef) =
  let findings = ref [] in
  let local_refs = Hashtbl.create 8 in
  let sink = ref (fun f -> findings := f :: !findings) in
  let add f = !sink f in
  (* count the findings a subtree would produce, without emitting them *)
  let trial f =
    let saved = !sink in
    let n = ref 0 in
    sink := (fun _ -> incr n);
    Fun.protect ~finally:(fun () -> sink := saved) f;
    !n
  in
  let sup_visited ~fallback ~fired (a : Parsetree.attribute) =
    Option.iter
      (fun t ->
        Suppress.visited t ~attr:a.attr_name.txt ~file:d.d_source
          ~line:(Suppress.attr_line ~fallback a)
          ~reason:(Defs.attr_reason a) ~fired)
      st.sup
  in
  let source = d.d_source in
  let rec visit (e : Typedtree.expression) =
    match Defs.find_attr "alloc_ok" e.exp_attributes with
    | Some a ->
      (* trial-visit the exempted subtree so a suppression that no longer
         suppresses anything is reported stale *)
      let n = trial (fun () -> visit_core e) in
      sup_visited ~fallback:e.exp_loc.loc_start.pos_lnum ~fired:(n > 0) a
    | None -> visit_core e
  and visit_core (e : Typedtree.expression) =
    match e.exp_desc with
      | Texp_apply (fn, args) -> visit_apply e fn args
      | Texp_let (Nonrecursive, vbs, body) ->
        (* [let x = ref e in ...] (also [let a = ref _ and b = ref _]):
           allowed as long as the ref never escapes (used only through
           ! / := / incr / decr), matching the compiler's
           mutable-stack-slot optimization for local refs *)
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match vb with
            | {
             vb_pat = { pat_desc = Tpat_var (id, _); _ };
             vb_expr =
               {
                 exp_desc =
                   Texp_apply
                     ( { exp_desc = Texp_ident (rp, _, _); _ },
                       [ (_, Some init) ] );
                 _;
               };
             _;
            }
              when String.equal
                     (Cmt_scan.normalize_path st.tables.aliases rp)
                     "ref" ->
              visit init;
              Hashtbl.replace local_refs (Ident.unique_name id) ()
            | _ -> visit vb.vb_expr)
          vbs;
        visit body
      | Texp_ident (Path.Pident id, _, _)
        when Hashtbl.mem local_refs (Ident.unique_name id) ->
        add
          (finding ~rule:"alloc-ref-escape" ~source e
             (Printf.sprintf
                "local ref %s escapes (used other than through !/:=); it \
                 will be heap-allocated"
                (Ident.name id)))
      | Texp_function _ ->
        add
          (finding ~rule:"alloc-closure" ~source e
             "closure allocation inside an [@@alloc_free] body; hoist the \
              function to the top level")
      | Texp_tuple _ ->
        add (finding ~rule:"alloc-tuple" ~source e "tuple allocation");
        descend e
      | Texp_construct (_, cd, args) -> (
        match (cd.cstr_tag, args) with
        | _, [] -> descend e
        | Types.Cstr_unboxed, _ -> descend e
        | _ ->
          add
            (finding ~rule:"alloc-construct" ~source e
               (Printf.sprintf "constructor %s allocates a block"
                  cd.cstr_name));
          descend e)
      | Texp_variant (_, Some _) ->
        add
          (finding ~rule:"alloc-construct" ~source e
             "polymorphic variant with argument allocates");
        descend e
      | Texp_record { representation = Types.Record_unboxed _; _ } ->
        descend e
      | Texp_record _ ->
        add (finding ~rule:"alloc-record" ~source e "record allocation");
        descend e
      | Texp_array [] -> ()
      | Texp_array _ ->
        add (finding ~rule:"alloc-array" ~source e "array literal allocation");
        descend e
      | Texp_lazy _ ->
        add (finding ~rule:"alloc-lazy" ~source e "lazy value allocation");
        descend e
      | Texp_object _ | Texp_new _ | Texp_pack _ | Texp_letop _ ->
        add
          (finding ~rule:"alloc-other" ~source e
             "allocating construct (object/first-class module/letop)")
      | _ -> descend e
  and descend e =
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ e -> visit e);
      }
    in
    Tast_iterator.default_iterator.expr it e
  and visit_args args =
    List.iter (function _, Some a -> visit a | _, None -> ()) args
  and visit_apply e fn args =
    if List.exists (fun (_, a) -> a = None) args then
      add
        (finding ~rule:"alloc-partial-app" ~source e
           "partial application allocates a closure");
    match fn.exp_desc with
    | Texp_ident (p, _, _) -> (
      let name = Cmt_scan.normalize_path st.tables.aliases p in
      if List.mem name ref_ops then
        match args with
        | (_, Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ }) :: rest
          when Hashtbl.mem local_refs (Ident.unique_name id) ->
          visit_args rest
        | _ -> visit_args args
      else if List.mem name cold_raisers then
        (* cold path: the raise only runs on errors, so its message
           construction is exempt *)
        ()
      else if String.equal name "ref" then begin
        add
          (finding ~rule:"alloc-ref" ~source e
             "ref allocation (escaping or non-local ref)");
        visit_args args
      end
      else if Hashtbl.mem whitelist name then visit_args args
      else begin
        (match Defs.resolve st.tables ~modpath:d.d_modpath name with
        | Some callee ->
          if Defs.has_attr "alloc_free" callee.d_attrs then ()
          else if Defs.has_attr "alloc_ok" callee.d_attrs then
            (* binding-level [@@alloc_ok]: trusted without checking the
               body; the trust itself counts as a use of the suppression *)
            Option.iter
              (fun a ->
                Option.iter
                  (fun t ->
                    Suppress.visited t ~attr:"alloc_ok" ~file:callee.d_source
                      ~line:(Suppress.attr_line ~fallback:callee.d_line a)
                      ~reason:(Defs.attr_reason a) ~fired:true)
                  st.sup)
              (Defs.find_attr "alloc_ok" callee.d_attrs)
          else (
            match verdict st callee with
            | [] -> ()
            | f0 :: _ ->
              add
                (finding ~rule:"alloc-callee" ~source e
                   (Printf.sprintf
                      "callee %s allocates (%s:%d [%s] %s); annotate it \
                       [@@alloc_free] once fixed"
                      callee.d_key f0.Finding.file f0.Finding.line
                      f0.Finding.rule f0.Finding.message)))
        | None ->
          if is_known_allocating name then
            add
              (finding ~rule:"alloc-call" ~source e
                 (Printf.sprintf "%s allocates" name))
          else
            add
              (finding ~rule:"alloc-unknown-call" ~source e
                 (Printf.sprintf
                    "call to %s is not known to be allocation-free; \
                     annotate it [@@alloc_free], or wrap the call in \
                     [@alloc_ok] if the allocation is intended"
                    name)));
        visit_args args
      end)
    | _ ->
      add
        (finding ~rule:"alloc-indirect-call" ~source e
           "indirect call through a closure value; the target cannot be \
            checked statically");
      visit fn;
      visit_args args
  (* Strip the curried-parameter chain: the outermost Texp_function nodes
     are the annotated function itself, not closure allocations.  An
     optional argument with a default desugars to
     [fun *opt* -> let x = match *opt* ... in fun ...]; the interposed let
     is still part of the parameter chain (its default expression runs per
     call, so it is visited), and stripping continues below it. *)
  and analyze_fn ~after_opt (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { cases = [ c ]; _ } ->
      Option.iter visit c.c_guard;
      let opt_param =
        match c.c_lhs.pat_desc with
        | Tpat_var (id, _) ->
          let n = Ident.name id in
          String.length n >= 5 && String.sub n 0 5 = "*opt*"
        | _ -> false
      in
      analyze_fn ~after_opt:opt_param c.c_rhs
    | Texp_function { cases; _ } ->
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          Option.iter visit c.c_guard;
          visit c.c_rhs)
        cases
    | Texp_let (Nonrecursive, vbs, body) when after_opt ->
      List.iter (fun (vb : Typedtree.value_binding) -> visit vb.vb_expr) vbs;
      analyze_fn ~after_opt:false body
    | _ -> visit e
  in
  analyze_fn ~after_opt:false d.d_expr;
  List.rev !findings

(* --- entry point ----------------------------------------------------------- *)

type result = {
  findings : Finding.t list;
  verified : string list;  (* [@@alloc_free] definitions that checked clean *)
}

let check ?sup (tables : Defs.t) =
  let st =
    {
      tables;
      sup;
      verdicts = Hashtbl.create 64;
      in_progress = Hashtbl.create 16;
    }
  in
  let annotated =
    Hashtbl.fold
      (fun _ (d : Defs.vdef) acc ->
        if Defs.has_attr "alloc_free" d.d_attrs then d :: acc else acc)
      tables.defs []
    |> List.sort (fun (a : Defs.vdef) b -> String.compare a.d_key b.d_key)
  in
  List.fold_left
    (fun acc d ->
      match verdict st d with
      | [] -> { acc with verified = d.d_key :: acc.verified }
      | fs -> { acc with findings = acc.findings @ fs })
    { findings = []; verified = [] }
    annotated
  |> fun r -> { r with verified = List.rev r.verified }
