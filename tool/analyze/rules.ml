(* Parsetree-level lint rules, migrated from the original tool/lint driver:
   missing-mli, Obj.magic, float-compare, raw-float-param.  These re-lex
   files from source (no build artifacts needed), so the input is
   normalized first: a UTF-8 BOM would derail the parser and CRLF/CR line
   endings would skew reported positions relative to the on-disk file. *)

let pass_ = "parsetree"

let finding ~loc ~path rule message =
  Finding.v ~pass_ ~rule ~file:path
    ~line:loc.Location.loc_start.Lexing.pos_lnum message

(* --- source normalization -------------------------------------------------- *)

let normalize_source src =
  let src =
    if
      String.length src >= 3
      && src.[0] = '\xEF'
      && src.[1] = '\xBB'
      && src.[2] = '\xBF'
    then String.sub src 3 (String.length src - 3)
    else src
  in
  if not (String.contains src '\r') then src
  else begin
    let n = String.length src in
    let b = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      (match src.[!i] with
      | '\r' ->
        (* CRLF collapses to LF; a lone CR is itself a line break *)
        Buffer.add_char b '\n';
        if !i + 1 < n && src.[!i + 1] = '\n' then incr i
      | c -> Buffer.add_char b c);
      incr i
    done;
    Buffer.contents b
  end

let parse_with ~path parser src =
  let lexbuf = Lexing.from_string (normalize_source src) in
  Lexing.set_filename lexbuf path;
  parser lexbuf

(* --- helpers -------------------------------------------------------------- *)

let suffix_matches name =
  List.exists
    (fun suf -> Filename.check_suffix name suf)
    [ "_rate"; "_bps"; "_hz"; "_secs"; "_seconds" ]

let under_lib_units path =
  (* normalise away leading ./ and backslashes *)
  let parts = String.split_on_char '/' path in
  let rec scan = function
    | "lib" :: "units" :: _ -> true
    | _ :: tl -> scan tl
    | [] -> false
  in
  scan parts

let poly_compare_names = [ "="; "=="; "<>"; "!="; "compare" ]

let is_poly_compare_ident (id : Longident.t) =
  match id with
  | Lident name | Ldot (Lident "Stdlib", name) ->
    List.mem name poly_compare_names
  | _ -> false

let is_float_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

(* --- implementation rules ------------------------------------------------- *)

let check_structure ~path (str : Parsetree.structure) =
  let violations = ref [] in
  let add ~loc rule message =
    violations := finding ~loc ~path rule message :: !violations
  in
  let expr_rule (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt = Ldot (Lident "Obj", "magic"); _ } ->
      add ~loc:e.pexp_loc "obj-magic"
        "Obj.magic defeats the type system; restructure instead"
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when is_poly_compare_ident txt
           && List.exists (fun (_, a) -> is_float_literal a) args ->
      add ~loc:e.pexp_loc "float-compare"
        "polymorphic comparison against a float literal; use Float.equal / \
         Float.compare (or the Units comparison operators)"
    | _ -> ()
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          expr_rule e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iterator.structure iterator str;
  List.rev !violations

(* --- interface rules ------------------------------------------------------ *)

let check_signature ~path (sg : Parsetree.signature) =
  if under_lib_units path then []
  else begin
    let violations = ref [] in
    let add ~loc rule message =
      violations := finding ~loc ~path rule message :: !violations
    in
    let typ_rule (t : Parsetree.core_type) =
      match t.ptyp_desc with
      | Ptyp_arrow
          ( (Labelled name | Optional name),
            { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ },
            _ )
        when suffix_matches name ->
        add ~loc:t.ptyp_loc "raw-float-param"
          (Printf.sprintf
             "labelled float parameter ~%s; use Units.Rate.t / Units.Time.t \
              / Units.Freq.t so the unit is carried by the type"
             name)
      | _ -> ()
    in
    let iterator =
      {
        Ast_iterator.default_iterator with
        typ =
          (fun self t ->
            typ_rule t;
            Ast_iterator.default_iterator.typ self t);
      }
    in
    iterator.signature iterator sg;
    List.rev !violations
  end

(* --- entry points --------------------------------------------------------- *)

let parse_error ~path exn =
  let message = Printexc.to_string exn in
  [ Finding.v ~pass_ ~rule:"parse-error" ~file:path ~line:1 message ]

let check_ml ~path src =
  match parse_with ~path Parse.implementation src with
  | str -> check_structure ~path str
  | exception exn -> parse_error ~path exn

let check_mli ~path src =
  match parse_with ~path Parse.interface src with
  | sg -> check_signature ~path sg
  | exception exn -> parse_error ~path exn

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file path =
  if Filename.check_suffix path ".mli" then check_mli ~path (read_file path)
  else if Filename.check_suffix path ".ml" then check_ml ~path (read_file path)
  else []

let rec walk dir f =
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then walk path f else f path)
    (Sys.readdir dir)

let check_missing_mli ~lib_root =
  let violations = ref [] in
  walk lib_root (fun path ->
      if
        Filename.check_suffix path ".ml"
        && not (Sys.file_exists (path ^ "i"))
      then
        violations :=
          Finding.v ~pass_ ~rule:"missing-mli" ~file:path ~line:1
            "library modules need an explicit interface (add a sibling .mli)"
          :: !violations);
  List.rev !violations

let has_lib_component root =
  List.exists
    (fun part -> String.equal part "lib")
    (String.split_on_char '/' root)
  || String.equal (Filename.basename root) "lib"

let check_tree roots =
  List.concat_map
    (fun root ->
      let per_file = ref [] in
      walk root (fun path -> per_file := check_file path :: !per_file);
      let missing =
        if has_lib_component root then check_missing_mli ~lib_root:root
        else []
      in
      missing @ List.concat (List.rev !per_file))
    roots
