(** Checked-in JSONL baseline of accepted findings. *)

type entry = { key : string; raw : string }

val load : string -> (entry list, string) result
(** Missing file = empty baseline.  Lines starting with [//] are comments. *)

type split = {
  fresh : Finding.t list;
  accepted : Finding.t list;
  stale : entry list;
}

val apply : entry list -> Finding.t list -> split
(** Match findings against baseline entries on the [Finding.key]
    (pass|rule|file, line-insensitive). *)
