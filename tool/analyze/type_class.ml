(* Domain-safety type classifier.

   A value may be shared across domains only if its type is *domain-safe*:
   built from immutables (int/float/string/immutable records and variants),
   [Atomic.t] over a safe payload, synchronisation primitives themselves
   (Mutex/Condition/Semaphore), or a type whose declaration is explicitly
   certified [@@domain_safe "why"] (the escape hatch for mutex-guarded
   wrappers the checker cannot see through).  Everything else — [ref],
   [array], [Bytes.t], [Hashtbl.t], [Buffer.t], mutable record fields, and
   anything transitively built from those (a [Rng.t], an [Fft.Plan.t], the
   trace ring) — is *domain-unsafe*.

   Classification is structural, not environment-based: project type
   declarations come from the scanned cmts via {!Defs.resolve_type} (so no
   compiler environments have to be reconstructed), and a name table covers
   the stdlib.  Function types classify unsafe: a closure may capture
   arbitrary mutable state, and nothing about an arrow type bounds it.
   Abstract types whose declaration is not in the scanned set classify
   unsafe too — opacity is not a safety argument. *)

type verdict =
  | Safe
  | Unsafe of string  (* human-readable reason *)

let stdlib_safe =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun n -> Hashtbl.replace tbl n ())
    [
      "int"; "float"; "bool"; "char"; "unit"; "string"; "int32"; "int64";
      "nativeint"; "exn"; "Mutex.t"; "Condition.t"; "Semaphore.Counting.t";
      "Semaphore.Binary.t"; "Domain.id"; "Printexc.raw_backtrace";
      "Complex.t"; "Uchar.t"; "Format.formatter";
    ];
  tbl

let stdlib_unsafe =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (n, why) -> Hashtbl.replace tbl n why)
    [
      ("ref", "mutable reference cell");
      ("array", "mutable array");
      ("floatarray", "mutable float array");
      ("bytes", "mutable byte buffer");
      ("Hashtbl.t", "unsynchronised hash table");
      ("Buffer.t", "unsynchronised buffer");
      ("Queue.t", "unsynchronised queue");
      ("Stack.t", "unsynchronised stack");
      ("Random.State.t", "mutable PRNG state");
      ("Seq.t", "suspended computation (may capture mutable state)");
      ("Lazy.t", "lazy cell (forcing from two domains races)");
      ("lazy_t", "lazy cell (forcing from two domains races)");
      ("in_channel", "shared I/O channel");
      ("out_channel", "shared I/O channel");
      ("Ephemeron.K1.t", "ephemeron");
      ("Weak.t", "weak array");
    ];
  tbl

(* containers safe iff every type argument is safe *)
let stdlib_per_arg =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun n -> Hashtbl.replace tbl n ())
    [ "list"; "option"; "result"; "Either.t"; "Atomic.t" ];
  tbl

let fuel_limit = 60

let classify (defs : Defs.t) ~modpath (ty0 : Types.type_expr) =
  (* [visited] breaks recursive declarations coinductively: re-entering a
     declaration already on the stack contributes no new unsafety *)
  let visited = Hashtbl.create 8 in
  let rec go ~fuel subst ty =
    if fuel <= 0 then Unsafe "type too deep to classify"
    else
      let fuel = fuel - 1 in
      match Types.get_desc ty with
      | Tvar _ | Tunivar _ -> (
        match
          List.assq_opt (Types.Transient_expr.repr ty) subst
        with
        | Some arg -> go ~fuel [] arg
        | None -> Unsafe "polymorphic value of statically unknown type")
      | Tarrow _ ->
        Unsafe "function value; it may close over unsynchronised mutable state"
      | Ttuple tys -> first ~fuel subst tys
      | Tpoly (ty, _) -> go ~fuel subst ty
      | Tconstr (p, args, _) -> constr ~fuel subst p args
      | Tvariant row ->
        first ~fuel subst
          (List.concat_map
             (fun (_, (f : Types.row_field)) ->
               match Types.row_field_repr f with
               | Types.Rpresent (Some ty) -> [ ty ]
               | Types.Reither (_, tys, _) -> tys
               | _ -> [])
             (Types.row_fields row))
      | Tobject _ | Tfield _ | Tnil -> Unsafe "object (mutable by nature)"
      | Tpackage _ -> Unsafe "first-class module of unknown content"
      | Tlink _ | Tsubst _ -> assert false (* collapsed by get_desc *)
  and first ~fuel subst = function
    | [] -> Safe
    | ty :: rest -> (
      match go ~fuel subst ty with
      | Safe -> first ~fuel subst rest
      | Unsafe _ as u -> u)
  and constr ~fuel subst p args =
    (* instance arguments may themselves mention outer params *)
    let args = List.map (subst_shallow subst) args in
    let name = Cmt_scan.normalize_name defs.Defs.aliases (Path.name p) in
    if Hashtbl.mem stdlib_safe name then Safe
    else
      match Hashtbl.find_opt stdlib_unsafe name with
      | Some why -> Unsafe (Printf.sprintf "%s is a %s" name why)
      | None ->
        if Hashtbl.mem stdlib_per_arg name then first ~fuel subst args
        else (
          match Defs.resolve_type defs ~modpath name with
          | None ->
            Unsafe
              (Printf.sprintf
                 "type %s has no declaration in the scanned set and cannot \
                  be proven domain-safe"
                 name)
          | Some td -> decl ~fuel td args)
  and subst_shallow subst ty =
    match Types.get_desc ty with
    | Tvar _ -> (
      match List.assq_opt (Types.Transient_expr.repr ty) subst with
      | Some arg -> arg
      | None -> ty)
    | _ -> ty
  and decl ~fuel (td : Defs.tdecl) args =
    if Defs.has_attr "domain_safe" td.t_attrs then Safe
    else if Hashtbl.mem visited td.t_key then Safe
    else begin
      Hashtbl.replace visited td.t_key ();
      let subst =
        if List.length td.t_params = List.length args then
          List.map2
            (fun p a -> (Types.Transient_expr.repr p, a))
            td.t_params args
        else []
      in
      let v =
        match td.t_kind with
        | Ttype_record labels -> record ~fuel ~key:td.t_key subst labels
        | Ttype_variant cstrs ->
          let payloads =
            List.concat_map
              (fun (cd : Typedtree.constructor_declaration) ->
                match cd.cd_args with
                | Cstr_tuple cts ->
                  List.map (fun ct -> `Ty ct.Typedtree.ctyp_type) cts
                | Cstr_record labels -> [ `Labels labels ])
              cstrs
          in
          List.fold_left
            (fun acc payload ->
              match acc with
              | Unsafe _ -> acc
              | Safe -> (
                match payload with
                | `Ty ty -> go ~fuel subst ty
                | `Labels labels -> record ~fuel ~key:td.t_key subst labels))
            Safe payloads
        | Ttype_open -> Unsafe (td.t_key ^ " is an open (extensible) type")
        | Ttype_abstract -> (
          match td.t_manifest with
          | Some ty -> go ~fuel subst ty
          | None ->
            Unsafe
              (Printf.sprintf "abstract type %s has no visible structure"
                 td.t_key))
      in
      Hashtbl.remove visited td.t_key;
      v
    end
  and record ~fuel ~key subst (labels : Typedtree.label_declaration list) =
    let rec check = function
      | [] -> Safe
      | (ld : Typedtree.label_declaration) :: rest -> (
        match ld.ld_mutable with
        | Mutable ->
          Unsafe
            (Printf.sprintf "%s has a mutable field %s" key ld.ld_name.txt)
        | Immutable -> (
          match go ~fuel subst ld.ld_type.ctyp_type with
          | Safe -> check rest
          | Unsafe why ->
            Unsafe
              (Printf.sprintf "field %s.%s: %s" key ld.ld_name.txt why)))
    in
    check labels
  in
  go ~fuel:fuel_limit [] ty0

let to_string = function
  | Safe -> "domain-safe"
  | Unsafe why -> "domain-unsafe (" ^ why ^ ")"
