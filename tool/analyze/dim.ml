(* The dimension half-lattice of the units pass.

   A tracked float is either dimensionless (a scalar: literals, counts,
   ratios) or carries exactly one of the four physical dimensions the
   lib/units carriers encode.  Products and quotients of distinct
   dimensions (rate × time, bits / seconds, …) leave the lattice — the
   pass deliberately does not model compound dimensions, so dimensioned
   products degrade to "untracked" rather than producing findings. *)

type t =
  | Time  (* seconds *)
  | Rate  (* bits per second *)
  | Freq  (* hertz *)
  | Bytes  (* bytes of volume *)
  | Scalar  (* dimensionless *)

let equal (a : t) b = a = b

let is_base = function Scalar -> false | Time | Rate | Freq | Bytes -> true

let of_string = function
  | "time" -> Some Time
  | "rate" -> Some Rate
  | "freq" -> Some Freq
  | "bytes" -> Some Bytes
  | "scalar" -> Some Scalar
  | _ -> None

let to_string = function
  | Time -> "time"
  | Rate -> "rate"
  | Freq -> "freq"
  | Bytes -> "bytes"
  | Scalar -> "scalar"

(* how a finding spells the dimension: name plus carrier unit *)
let describe = function
  | Time -> "time (seconds)"
  | Rate -> "rate (bits/s)"
  | Freq -> "frequency (Hz)"
  | Bytes -> "volume (bytes)"
  | Scalar -> "a dimensionless scalar"

(* the typed carrier a finding should steer the author towards *)
let carrier = function
  | Time -> "Units.Time.t"
  | Rate -> "Units.Rate.t"
  | Freq -> "Units.Freq.t"
  | Bytes -> "Units.Bytes.t"
  | Scalar -> "float"
