(* Baseline file: one JSONL object per accepted finding.  Matching is on the
   pass|rule|file key (line-insensitive), so baselined findings survive edits
   elsewhere in the file.  Entries that no longer match any current finding
   are reported as stale so the baseline shrinks monotonically. *)

type entry = { key : string; raw : string }

(* Tolerant field extraction: the baseline is machine-written by --json, so
   fields appear as "name":"value" with json_escape applied.  We unescape
   only what json_escape produces. *)
let field name raw =
  let pat = Printf.sprintf "\"%s\":\"" name in
  let plen = String.length pat in
  let rec find i =
    if i + plen > String.length raw then None
    else if String.sub raw i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let b = Buffer.create 32 in
    let rec scan i =
      if i >= String.length raw then None
      else
        match raw.[i] with
        | '"' -> Some (Buffer.contents b)
        | '\\' when i + 1 < String.length raw ->
          (match raw.[i + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | c -> Buffer.add_char b c);
          scan (i + 2)
        | c ->
          Buffer.add_char b c;
          scan (i + 1)
    in
    scan start

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    let lines =
      String.split_on_char '\n' content
      |> List.map String.trim
      |> List.filter (fun l ->
             String.length l > 0 && not (String.length l >= 2 && l.[0] = '/'))
    in
    let rec build acc lineno = function
      | [] -> Ok (List.rev acc)
      | l :: rest -> (
        match (field "pass" l, field "rule" l, field "file" l) with
        | Some p, Some r, Some f ->
          build ({ key = p ^ "|" ^ r ^ "|" ^ f; raw = l } :: acc) (lineno + 1) rest
        | _ ->
          Error
            (Printf.sprintf
               "baseline line %d: expected a JSON object with pass/rule/file \
                fields"
               lineno))
    in
    build [] 1 lines
  end

type split = {
  fresh : Finding.t list;  (* findings not covered by the baseline *)
  accepted : Finding.t list;  (* findings matched by a baseline entry *)
  stale : entry list;  (* baseline entries matching no current finding *)
}

let apply entries findings =
  let keys = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace keys e.key ()) entries;
  let used = Hashtbl.create 16 in
  let fresh, accepted =
    List.partition
      (fun f ->
        let k = Finding.key f in
        if Hashtbl.mem keys k then begin
          Hashtbl.replace used k ();
          false
        end
        else true)
      findings
  in
  let stale = List.filter (fun e -> not (Hashtbl.mem used e.key)) entries in
  { fresh; accepted; stale }
