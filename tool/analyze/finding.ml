(* One finding, shared by every pass.  [pass_] names the pass that produced
   it (parsetree / determinism / layering / alloc), [rule] is the stable
   machine-readable id the baseline and the tests key on. *)

type t = {
  pass_ : string;
  rule : string;
  file : string;
  line : int;
  message : string;
}

let v ~pass_ ~rule ~file ~line message = { pass_; rule; file; line; message }

(* Baseline entries match on pass|rule|file, not line: a suppression must
   survive unrelated edits above the offending code. *)
let key f = String.concat "|" [ f.pass_; f.rule; f.file ]

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare a.rule b.rule in
      if c <> 0 then c else String.compare a.message b.message

let pp ppf f =
  Format.fprintf ppf "%s:%d: [%s/%s] %s" f.file f.line f.pass_ f.rule f.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(baselined = false) f =
  Printf.sprintf
    {|{"pass":"%s","rule":"%s","file":"%s","line":%d,"baselined":%b,"message":"%s"}|}
    (json_escape f.pass_) (json_escape f.rule) (json_escape f.file) f.line
    baselined (json_escape f.message)
