(** Free-variable computation over typedtree expressions (exact, by ident
    stamp).  Used by the race pass to find what a task closure captures. *)

(** One occurrence of a free ident. *)
type occ = {
  o_id : Ident.t;
  o_type : Types.type_expr;  (** instantiated type at the occurrence *)
  o_line : int;
  o_attrs : Parsetree.attributes;
}

(** [bound_idents e] is the set (by [Ident.unique_name]) of every ident
    bound by a pattern or for-loop header inside [e]. *)
val bound_idents : Typedtree.expression -> (string, unit) Hashtbl.t

(** [free e] groups the free-ident occurrences of [e] by ident, in first-
    occurrence order; each group is non-empty and ordered by position. *)
val free : Typedtree.expression -> occ list list
