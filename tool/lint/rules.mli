(** Repo lint rules, shared by the [dune build @lint] driver and the test
    suite.  The checks run over the compiler's own parsetree (compiler-libs),
    so they track the exact grammar the build uses.

    Rules:
    - [obj-magic]: any use of [Obj.magic].
    - [float-compare]: polymorphic [=], [==], [<>], [!=] or [compare]
      applied to a float literal operand.  (Type-directed detection needs
      the typedtree; the literal heuristic catches the real-world cases and
      never false-positives on non-floats.)
    - [raw-float-param]: a labelled [float] parameter named [*_rate],
      [*_bps], [*_hz], [*_secs] or [*_seconds] in an [.mli] — such values
      must be carried by [Units.Rate.t] / [Units.Freq.t] / [Units.Time.t].
      Not applied under [lib/units], which defines the carriers.
    - [missing-mli]: a module under [lib/] with no interface file. *)

type violation = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** [check_ml ~path src] parses [src] as an implementation and returns
    [obj-magic] and [float-compare] violations.  A syntax error is reported
    as a single [parse-error] violation rather than an exception. *)
val check_ml : path:string -> string -> violation list

(** [check_mli ~path src] parses [src] as an interface and returns
    [raw-float-param] violations ([obj-magic] cannot occur in signatures).
    Interfaces under [lib/units] are exempt. *)
val check_mli : path:string -> string -> violation list

(** [check_missing_mli ~lib_root] walks [lib_root] recursively and flags
    every [.ml] without a sibling [.mli]. *)
val check_missing_mli : lib_root:string -> violation list

(** [check_file path] dispatches on the extension and reads the file;
    [.ml] files also get the interface rules skipped, and vice versa. *)
val check_file : string -> violation list

(** [check_tree roots] runs [check_file] over every [.ml]/[.mli] under the
    given directories and [check_missing_mli] over each root named [lib]
    (or containing a [lib] component). *)
val check_tree : string list -> violation list
