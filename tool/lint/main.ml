(* Lint driver: `main.exe DIR...` checks every .ml/.mli under the given
   directories and exits non-zero if any rule fires.  Wired into
   `dune build @lint` from the root dune file. *)

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ ->
      prerr_endline "usage: lint DIR...";
      exit 2
  in
  match Lint_rules.Rules.check_tree roots with
  | [] -> ()
  | violations ->
    List.iter
      (fun v -> Format.eprintf "%a@." Lint_rules.Rules.pp_violation v)
      violations;
    Format.eprintf "lint: %d violation(s)@." (List.length violations);
    exit 1
