(* Three Nimbus flows sharing one bottleneck with no explicit coordination
   (§6): one elects itself pulser, the others watch its pulse frequency to
   learn the mode, and everyone keeps the queue short.
   Run with: dune exec examples/multi_flow_sharing.exe *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Time = Units.Time
module Rate = Units.Rate

let () =
  let engine = Engine.create Engine.Config.default in
  let mu = Rate.mbps 96. in
  let qdisc =
    Qdisc.droptail
      ~capacity_bytes:(int_of_float (Rate.to_bps mu *. 0.1 /. 8.))
  in
  let bottleneck =
    Bottleneck.create engine (Bottleneck.Config.default ~rate:mu ~qdisc)
  in
  let flows =
    List.init 3 (fun i ->
        let nim =
          Nimbus.create
            { (Nimbus.Config.default ~mu:(Z.Mu.known mu)) with
              multi_flow = true; seed = 1000 + (31 * i) }
        in
        let flow =
          Flow.create engine bottleneck
            ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now engine))
            ~prop_rtt:(Time.ms 50.)
            ~start:(Time.secs (float_of_int i *. 15.))
            ()
        in
        (i, nim, flow, ref 0))
  in
  Engine.every engine ~dt:(Time.secs 5.0) (fun () ->
      Printf.printf "t=%3.0fs  queue=%5.1f ms |"
        (Time.to_secs (Engine.now engine))
        (Time.to_ms (Bottleneck.queue_delay bottleneck));
      List.iter
        (fun (i, nim, flow, last) ->
          let bytes = Flow.received_bytes flow in
          Printf.printf " f%d: %5.1f Mbps %s/%s" i
            (float_of_int ((bytes - !last) * 8) /. 5. /. 1e6)
            (Nimbus.role_to_string (Nimbus.role nim))
            (Nimbus.mode_to_string (Nimbus.mode nim));
          last := bytes)
        flows;
      print_newline ());
  Engine.run_until engine (Time.secs 120.);
  print_endline
    "done: expect at most one pulser, roughly equal shares, and delay mode \
     for most of the run (transient competitive episodes during arrivals \
     are normal)."
