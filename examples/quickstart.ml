(* Quickstart: the smallest end-to-end use of the library.

   Build a 48 Mbit/s bottleneck, attach one Nimbus flow, throw first elastic
   then inelastic cross traffic at it, and watch the elasticity detector
   drive the mode.  Run with:  dune exec examples/quickstart.exe *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Source = Nimbus_traffic.Source
module Time = Units.Time
module Rate = Units.Rate

let () =
  let engine = Engine.create Engine.Config.default in
  let mu = Rate.mbps 48. in
  (* 100 ms of buffering, the paper's default *)
  let qdisc =
    Qdisc.droptail
      ~capacity_bytes:(int_of_float (Rate.to_bps mu *. 0.1 /. 8.))
  in
  let bottleneck =
    Bottleneck.create engine (Bottleneck.Config.default ~rate:mu ~qdisc)
  in

  (* the Nimbus flow: Cubic when cross traffic is elastic, BasicDelay
     otherwise, switching on the FFT elasticity metric *)
  let nimbus = Nimbus.create (Nimbus.Config.default ~mu:(Z.Mu.known mu)) in
  let flow =
    Flow.create engine bottleneck
      ~cc:(Nimbus.cc nimbus ~now:(fun () -> Engine.now engine))
      ~prop_rtt:(Time.ms 50.) ()
  in

  (* cross traffic: a Cubic flow from t=20..60, then 24 Mbit/s Poisson *)
  Engine.schedule_at engine (Time.secs 20.) (fun () ->
      let cross =
        Flow.create engine bottleneck ~cc:(Nimbus_cc.Cubic.make ())
          ~prop_rtt:(Time.ms 50.) ()
      in
      Engine.schedule_at engine (Time.secs 60.) (fun () -> Flow.apply cross Flow.Control.Stop));
  ignore
    (Source.poisson engine bottleneck ~rng:(Rng.create 7) ~rate:(Rate.mbps 24.)
       ~start:(Time.secs 60.) ());

  (* report once per second *)
  let last = ref 0 in
  Engine.every engine ~dt:(Time.secs 1.0) (fun () ->
      let bytes = Flow.received_bytes flow in
      Printf.printf "t=%3.0fs  tput=%5.1f Mbps  queue=%5.1f ms  mode=%-11s eta=%.2f\n"
        (Time.to_secs (Engine.now engine))
        (float_of_int ((bytes - !last) * 8) /. 1e6)
        (Time.to_ms (Bottleneck.queue_delay bottleneck))
        (Nimbus.mode_to_string (Nimbus.mode nimbus))
        (Nimbus.last_eta nimbus);
      last := bytes);
  Engine.run_until engine (Time.secs 100.);
  print_endline "done: expect delay mode (low queue) except during 20-60s."
