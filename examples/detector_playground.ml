(* The elasticity detector as a standalone building block, no Nimbus: feed
   it a synthetic cross-traffic rate signal and read eta back.  This is the
   "measurement and diagnostic tool" use the paper's introduction suggests.
   Run with: dune exec examples/detector_playground.exe *)

module Elasticity = Nimbus_core.Elasticity
module Pulse = Nimbus_core.Pulse
module Time = Units.Time
module Freq = Units.Freq
module Rate = Units.Rate

let pi = 4.0 *. atan 1.0

let () =
  let fp = 5.0 in
  let dt = 0.01 in
  let describe label make_sample =
    let det = Elasticity.create ~sample_interval:(Time.secs dt) () in
    for i = 0 to 499 do
      Elasticity.add_sample det (make_sample (float_of_int i *. dt))
    done;
    let eta = Elasticity.eta det ~freq:(Freq.hz fp) in
    let verdict =
      match Elasticity.classify det ~freq:(Freq.hz fp) with
      | Some Elasticity.Elastic -> "elastic"
      | Some Elasticity.Inelastic -> "inelastic"
      | None -> "undecided"
    in
    Printf.printf "%-34s eta=%6.2f  -> %s\n" label eta verdict
  in
  (* 1: cross traffic echoing the pulse frequency (elastic reaction) *)
  describe "echoes 5 Hz pulses" (fun t ->
      24e6 +. (4e6 *. sin (2. *. pi *. fp *. t)));
  (* 2: white noise (inelastic) *)
  let rng = Nimbus_sim.Rng.create 9 in
  describe "white noise" (fun _ ->
      24e6 +. (4e6 *. (Nimbus_sim.Rng.uniform rng -. 0.5)));
  (* 3: oscillation at an unrelated frequency *)
  describe "oscillates at 7.4 Hz" (fun t ->
      24e6 +. (4e6 *. sin (2. *. pi *. 7.4 *. t)));
  (* 4: echo + noise + ramp, the realistic case *)
  let rng2 = Nimbus_sim.Rng.create 10 in
  describe "echo + noise + ramp" (fun t ->
      (t *. 2e6) +. 20e6
      +. (3e6 *. sin (2. *. pi *. fp *. t))
      +. (2e6 *. (Nimbus_sim.Rng.uniform rng2 -. 0.5)));
  (* and the pulse waveform itself *)
  Printf.printf "pulse mean over one period: %.3g bps (should be ~0)\n"
    (Rate.to_bps
       (Pulse.mean ~shape:Pulse.Asymmetric ~amplitude:(Rate.mbps 12.)
          ~freq:(Freq.hz fp) ~samples:1000))
