(* A bulk transfer sharing a home link with a DASH video stream (the paper's
   Fig. 11 scenario).  With 1080p video the stream is application-limited,
   so Nimbus keeps the queue short; the video's playback buffer stays
   healthy either way.  Run with: dune exec examples/video_streaming.exe *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Video = Nimbus_traffic.Video
module Time = Units.Time
module Rate = Units.Rate

let () =
  let engine = Engine.create Engine.Config.default in
  let mu = Rate.mbps 48. in
  let qdisc =
    Qdisc.droptail
      ~capacity_bytes:(int_of_float (Rate.to_bps mu *. 0.1 /. 8.))
  in
  let bottleneck =
    Bottleneck.create engine (Bottleneck.Config.default ~rate:mu ~qdisc)
  in
  let video = Video.create engine bottleneck ~ladder:Video.ladder_1080p () in
  let nimbus = Nimbus.create (Nimbus.Config.default ~mu:(Z.Mu.known mu)) in
  let flow =
    Flow.create engine bottleneck
      ~cc:(Nimbus.cc nimbus ~now:(fun () -> Engine.now engine))
      ~prop_rtt:(Time.ms 50.) ()
  in
  let last = ref 0 in
  Engine.every engine ~dt:(Time.secs 5.0) (fun () ->
      let bytes = Flow.received_bytes flow in
      Printf.printf
        "t=%3.0fs  bulk=%5.1f Mbps  queue=%5.1f ms  mode=%-11s | video: %4.1f \
         Mbps rung, %4.1f s buffered, %d chunks, %.1f s stalled\n"
        (Time.to_secs (Engine.now engine))
        (float_of_int ((bytes - !last) * 8) /. 5. /. 1e6)
        (Time.to_ms (Bottleneck.queue_delay bottleneck))
        (Nimbus.mode_to_string (Nimbus.mode nimbus))
        (Rate.to_mbps (Video.current_bitrate video))
        (Time.to_secs (Video.buffer video))
        (Video.chunks_fetched video)
        (Time.to_secs (Video.rebuffer video));
      last := bytes);
  Engine.run_until engine (Time.secs 120.);
  print_endline
    "done: expect mostly delay mode, short queue, and a stable video buffer."
