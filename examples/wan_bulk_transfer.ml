(* A long transfer through a busy wide-area bottleneck: heavy-tailed cross
   traffic at 50% load (the paper's trace-driven setup, Fig. 9/12).  Shows
   the detector's verdict tracking the true elastic byte share.
   Run with: dune exec examples/wan_bulk_transfer.exe *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Wan = Nimbus_traffic.Wan
module Time = Units.Time
module Rate = Units.Rate

let () =
  let engine = Engine.create Engine.Config.default in
  let mu = Rate.mbps 96. in
  let qdisc =
    Qdisc.droptail
      ~capacity_bytes:(int_of_float (Rate.to_bps mu *. 0.1 /. 8.))
  in
  let bottleneck =
    Bottleneck.create engine (Bottleneck.Config.default ~rate:mu ~qdisc)
  in
  let wan =
    Wan.create engine bottleneck ~rng:(Rng.create 42) ~load:(Rate.scale 0.5 mu)
      ()
  in
  let nimbus = Nimbus.create (Nimbus.Config.default ~mu:(Z.Mu.known mu)) in
  let flow =
    Flow.create engine bottleneck
      ~cc:(Nimbus.cc nimbus ~now:(fun () -> Engine.now engine))
      ~prop_rtt:(Time.ms 50.) ()
  in
  let last = ref 0 and prev_elastic = ref 0 and prev_total = ref 0 in
  Engine.every engine ~dt:(Time.secs 2.0) (fun () ->
      let bytes = Flow.received_bytes flow in
      let elastic, total = Wan.bytes_split wan in
      let de = elastic - !prev_elastic and dt = total - !prev_total in
      let frac =
        if dt > 0 then float_of_int de /. float_of_int dt else 0.
      in
      prev_elastic := elastic;
      prev_total := total;
      Printf.printf
        "t=%3.0fs  tput=%5.1f Mbps  rtt=%5.1f ms  mode=%-11s  true elastic \
         share=%3.0f%%  active cross flows=%d\n"
        (Time.to_secs (Engine.now engine))
        (float_of_int ((bytes - !last) * 8) /. 2. /. 1e6)
        (Time.to_ms (Flow.last_rtt flow))
        (Nimbus.mode_to_string (Nimbus.mode nimbus))
        (100. *. frac) (Wan.active_count wan);
      last := bytes);
  Engine.run_until engine (Time.secs 120.);
  print_endline
    "done: competitive mode should appear when persistent elastic flows \
     dominate; short slow-start flows count as elastic bytes but are \
     invisible to the detector by design (paper 3.2).";
  Printf.printf "cross flows completed: %d, skipped at cap: %d\n"
    (Array.length (Wan.fcts wan)) (Wan.skipped wan)
