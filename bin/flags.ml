(* Shared CLI plumbing: the flags every subcommand should spell the same way
   (--full, --jobs, --seeds, --trace, --trace-filter) plus the pool and trace
   helpers that interpret them.  Subcommands compose these terms instead of
   re-declaring their own. *)

module Common = Nimbus_experiments.Common
module Trace = Nimbus_trace.Trace
module Sink = Nimbus_trace.Sink

open Cmdliner

let profile full = if full then Common.full else Common.quick

(* [with_pool jobs f] installs the ambient case pool around [f]; tables are
   byte-identical whatever the pool size, since cases are independently
   seeded and merged in input order *)
let with_pool jobs f =
  let domains =
    match jobs with
    | Some j ->
      if j < 1 then begin
        Printf.eprintf "--jobs must be >= 1\n";
        exit 2
      end;
      j
    | None -> Domain.recommended_domain_count ()
  in
  Nimbus_parallel.Pool.run ~domains (fun pool ->
      Common.set_pool (Some pool);
      Fun.protect ~finally:(fun () -> Common.set_pool None) f)

let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale profile.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan experiment cases out over $(docv) domains (default: the \
           recommended domain count). Output is byte-identical for any N.")

let seeds =
  Arg.(
    value
    & opt (some int) None
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Run each case under $(docv) seeds (default: profile).")

let seeds_profile p = function
  | None -> p
  | Some s ->
    if s < 1 then begin
      Printf.eprintf "--seeds must be >= 1\n";
      exit 2
    end;
    { p with Common.seeds = s }

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured event trace to $(docv). The format follows \
           the extension: .csv and .bin select CSV and compact binary, \
           anything else JSONL. Summarize with `nimbus_cli trace FILE'.")

let trace_filter =
  Arg.(
    value
    & opt string "all"
    & info [ "trace-filter" ] ~docv:"CATS"
        ~doc:
          "Comma-separated trace categories (engine, packet, bottleneck, \
           fault, flow, detector, spectrum, pulse, mode, election, \
           invariant) or 'all'.")

(* exit 2 on a bad filter, like any other argv error *)
let trace_mask filter =
  match Trace.parse_filter filter with
  | Ok mask -> mask
  | Error msg ->
    Printf.eprintf "bad --trace-filter: %s\n" msg;
    exit 2

let sink_for_path path oc =
  if Filename.check_suffix path ".csv" then Sink.csv oc
  else if Filename.check_suffix path ".bin" then Sink.binary oc
  else Sink.jsonl oc

(* [with_trace ?out ~filter f] builds the run's collector: a sink on [out]
   (or a disabled collector when absent), handed to [f] together with a
   [flush] the caller should schedule off the hot path (e.g. on a 1 s engine
   event).  The trace is flushed and closed when [f] returns. *)
let with_trace ?out ~filter f =
  match out with
  | None -> f Trace.disabled (fun () -> ())
  | Some path ->
    let mask = trace_mask filter in
    let tr = Trace.create ~mask () in
    let oc = open_out_bin path in
    Trace.attach tr (sink_for_path path oc);
    Fun.protect
      ~finally:(fun () -> Trace.close tr)
      (fun () -> f tr (fun () -> Trace.flush tr))
