(* nimbus_cli: run reproduction experiments and ad-hoc simulations from the
   command line.

   Subcommands:
     run        run one experiment (or all) and print its tables
     csv        run one experiment and dump its tables as CSV
     sweep      fleet-scale Monte-Carlo path sweep with checkpointed
                resume, watchdog/retry, and worst-k auto-triage; exits 3
                when interrupted by --stop-after, 2 on an incompatible
                checkpoint
     simulate   one Nimbus flow vs configurable cross traffic, with a
                per-second timeline of throughput / queue delay / mode
     faults     the fault matrix under the invariant monitor; exits 1 on
                any violation (the CI smoke gate)
     parking    the parking-lot chain (Nimbus populations on K bottlenecks)
                under the invariant monitor; exits 1 on any violation (the
                topology CI smoke gate)
     trace      summarize a trace file recorded with --trace

   Flags shared across subcommands (--full, --jobs, --seeds, --trace,
   --trace-filter) live in Flags, so they are spelled and documented once. *)

module Registry = Nimbus_experiments.Registry
module Table = Nimbus_experiments.Table
module Common = Nimbus_experiments.Common
module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Source = Nimbus_traffic.Source
module Fault = Nimbus_faults.Fault
module Invariant = Nimbus_metrics.Invariant
module Exp_faults = Nimbus_experiments.Exp_faults
module Exp_parking_lot = Nimbus_experiments.Exp_parking_lot
module Time = Units.Time
module Rate = Units.Rate

let profile = Flags.profile

let with_pool = Flags.with_pool

let run_cmd id full jobs =
  let todo =
    match id with
    | None -> Registry.all
    | Some id -> (
      match Registry.find id with
      | Some e -> [ e ]
      | None ->
        Printf.eprintf "unknown experiment %S (try `nimbus_cli list`)\n" id;
        exit 2)
  in
  with_pool jobs (fun () ->
      List.iter
        (fun (e : Registry.experiment) ->
          Printf.printf "\n### [%s] %s\n%!" e.Registry.id e.Registry.title;
          List.iter Table.print (e.Registry.run (profile full)))
        todo);
  0

let csv_cmd id full jobs =
  match Registry.find id with
  | None ->
    Printf.eprintf "unknown experiment %S\n" id;
    2
  | Some e ->
    with_pool jobs (fun () ->
        List.iter
          (fun t -> print_string (Table.to_csv t))
          (e.Registry.run (profile full)));
    0

let list_cmd () =
  List.iter
    (fun (e : Registry.experiment) ->
      Printf.printf "%-10s %s\n" e.Registry.id e.Registry.title)
    Registry.all;
  0

let simulate_cmd mbps rtt_ms duration cross_kind cross_mbps seed faults
    trace_out trace_filter =
  Flags.with_trace ?out:trace_out ~filter:trace_filter @@ fun trace flush ->
  let l = Common.link ~mbps ~rtt_ms () in
  let net = Common.setup ~trace ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  (* drain the ring into the sink off the hot path, once a simulated second *)
  Engine.every engine ~dt:(Time.secs 1.0) (fun () -> flush ());
  (match cross_kind with
   | "none" -> ()
   | "cubic" ->
     ignore
       (Flow.create engine bn ~cc:(Nimbus_cc.Cubic.make ())
          ~prop_rtt:l.Common.prop_rtt ())
   | "poisson" ->
     ignore
       (Source.poisson engine bn ~rng:(Rng.split rng)
          ~rate:(Rate.mbps cross_mbps) ())
   | "cbr" -> ignore (Source.cbr engine bn ~rate:(Rate.mbps cross_mbps) ())
   | other ->
     Printf.eprintf "unknown cross traffic %S (none|cubic|poisson|cbr)\n" other;
     exit 2);
  let running = (Common.nimbus ()).Common.start_flow net () in
  let nim = Option.get running.Common.nimbus in
  let monitor =
    Invariant.create engine ~bottleneck:bn ~nimbus:[ ("nimbus", nim) ] ()
  in
  (match faults with
   | None -> ()
   | Some spec -> (
     match Fault.parse spec with
     | Ok plan ->
       Fault.attach ~engine ~bottleneck:bn
         ~flows:[| running.Common.flow |]
         ~rng:(Rng.split rng) plan
     | Error msg ->
       Printf.eprintf "bad --faults spec: %s\n" msg;
       exit 2));
  let last = ref 0 in
  Printf.printf "%6s %10s %10s %8s %12s %8s\n" "t(s)" "tput(Mbps)"
    "qdelay(ms)" "eta" "mode" "z(Mbps)";
  Engine.every engine ~dt:(Time.secs 1.0) (fun () ->
      let b = Flow.received_bytes running.Common.flow in
      Printf.printf "%6.0f %10.1f %10.1f %8.2f %12s %8.1f\n%!"
        (Time.to_secs (Engine.now engine))
        (float_of_int ((b - !last) * 8) /. 1e6)
        (Time.to_ms (Nimbus_sim.Bottleneck.queue_delay bn))
        (Nimbus.last_eta nim)
        (Nimbus.mode_to_string (Nimbus.mode nim))
        (Rate.to_mbps (Nimbus.last_z nim));
      last := b);
  Engine.run_until engine (Time.secs duration);
  print_string (Invariant.report monitor);
  if Invariant.ok monitor then 0 else 1

let faults_cmd full jobs seeds report_file trace_out trace_filter =
  let p = Flags.seeds_profile (profile full) seeds in
  let trace_mask =
    match trace_out with
    | None -> 0
    | Some _ -> Flags.trace_mask trace_filter
  in
  let outcome =
    with_pool jobs (fun () -> Exp_faults.run_matrix ~trace_mask p)
  in
  List.iter Table.print outcome.Exp_faults.tables;
  print_string outcome.Exp_faults.report;
  (match report_file with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc outcome.Exp_faults.report;
     close_out oc);
  (match trace_out with
   | None -> ()
   | Some path ->
     let oc = open_out_bin path in
     output_string oc outcome.Exp_faults.traces;
     close_out oc);
  if outcome.Exp_faults.violations > 0 then 1 else 0

(* reduced-scale CI entry point for the topology fabric: run the parking-lot
   chain under the invariant monitor, exit 1 on any violation, and record a
   trace artifact when asked *)
let parking_cmd links flows mbps duration seed trace_out trace_filter =
  Flags.with_trace ?out:trace_out ~filter:trace_filter @@ fun trace _flush ->
  let p =
    try Exp_parking_lot.scaled_params ~mbps ~duration ~seed ~links ~flows ()
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let o = Exp_parking_lot.run_custom ~trace p in
  List.iter Table.print o.Exp_parking_lot.tables;
  print_string o.Exp_parking_lot.report;
  if o.Exp_parking_lot.violations > 0 then 1 else 0

module Sweep = Nimbus_experiments.Sweep

(* tables on stdout, progress on stderr: interrupted-then-resumed runs must
   diff byte-identical against uninterrupted ones (the CI smoke job does) *)
let sweep_cmd full jobs paths seed schemes shard_size budget retries
    checkpoint resume stop_after triage_k triage_dir triage_only =
  let schemes =
    List.map
      (fun name ->
        match Sweep.scheme_of_name name with
        | Some s -> s
        | None ->
          Printf.eprintf
            "unknown scheme %S (nimbus, nimbus-delay, cubic, reno, vegas, \
             copa, bbr, vivace, compound)\n"
            name;
          exit 2)
      schemes
  in
  let cfg =
    try
      Sweep.config ~paths ~seed
        ?schemes:(if schemes = [] then None else Some schemes)
        ~profile:(profile full) ~shard_size ~budget ~retries ?checkpoint
        ~resume ?stop_after ~triage_k ?triage_dir ~triage_only
        ~log:(fun msg -> Printf.eprintf "[sweep] %s\n%!" msg)
        ()
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  match with_pool jobs (fun () -> Sweep.run cfg) with
  | exception Sweep.Checkpoint_incompatible msg ->
    Printf.eprintf "%s\n" msg;
    2
  | exception Sweep.Checkpoint_incomplete msg ->
    Printf.eprintf "%s\n" msg;
    2
  | outcome when outcome.Sweep.interrupted ->
    Printf.eprintf "[sweep] interrupted at %d/%d shard(s); resume with \
                    --resume\n%!"
      outcome.Sweep.completed_shards outcome.Sweep.total_shards;
    3
  | outcome ->
    List.iter Table.print outcome.Sweep.tables;
    0

let trace_cmd file =
  match Nimbus_trace.Sink.summarize_file file with
  | Ok summary ->
    print_string summary;
    0
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    2

open Cmdliner

let full = Flags.full

let jobs = Flags.jobs

let run_t =
  let id =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run experiment(s) and print tables.")
    Term.(const run_cmd $ id $ full $ jobs)

let csv_t =
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  Cmd.v (Cmd.info "csv" ~doc:"Run one experiment, dump CSV.")
    Term.(const csv_cmd $ id $ full $ jobs)

let list_t =
  Cmd.v (Cmd.info "list" ~doc:"List experiments.") Term.(const list_cmd $ const ())

let simulate_t =
  let mbps =
    Arg.(value & opt float 48. & info [ "rate" ] ~docv:"MBPS" ~doc:"Link rate.")
  in
  let rtt =
    Arg.(value & opt float 50. & info [ "rtt" ] ~docv:"MS" ~doc:"Propagation RTT.")
  in
  let dur =
    Arg.(value & opt float 60. & info [ "duration" ] ~docv:"S" ~doc:"Duration.")
  in
  let kind =
    Arg.(value & opt string "cubic"
         & info [ "cross" ] ~docv:"KIND" ~doc:"none|cubic|poisson|cbr.")
  in
  let cmbps =
    Arg.(value & opt float 24. & info [ "cross-rate" ] ~docv:"MBPS"
         ~doc:"Cross rate for poisson/cbr.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Seed.") in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Inject faults, e.g. \
             'burst@30:0.05/0.4/0.3;flap@50:2;delay@40:20'. Clauses: \
             burst@T:PENTER/PEXIT[/LGOOD]/LBAD, lossoff@T, step@T:MBPS, \
             flap@T:DUR, delay@T:MS, jitter@T1-T2:AMPMS/PERIODMS, acks@T:P, \
             acksoff@T, kill@T:IDX. Exits 1 if an invariant is violated.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Timeline of one Nimbus flow vs cross traffic.")
    Term.(
      const simulate_cmd $ mbps $ rtt $ dur $ kind $ cmbps $ seed $ faults
      $ Flags.trace_out $ Flags.trace_filter)

let faults_t =
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the violation report to $(docv) (CI artifact).")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run the fault matrix under the invariant monitor; exit 1 on any \
          violation.")
    Term.(
      const faults_cmd $ full $ jobs $ Flags.seeds $ report $ Flags.trace_out
      $ Flags.trace_filter)

let sweep_t =
  let paths =
    Arg.(
      value & opt int 200
      & info [ "paths" ] ~docv:"N"
          ~doc:"Number of sampled path profiles (the fleet size).")
  in
  let seed =
    Arg.(
      value & opt int 1819
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Path-population seed. The default matches the 25-path figure, \
             so its paths are the sweep's first 25.")
  in
  let schemes =
    Arg.(
      value
      & opt (list string) []
      & info [ "schemes" ] ~docv:"A,B,.."
          ~doc:
            "Comma-separated protocol matrix (default \
             nimbus,cubic,bbr,vegas). The first scheme is the subject of \
             the paired comparison and the outlier score.")
  in
  let shard_size =
    Arg.(
      value & opt int 32
      & info [ "shard-size" ] ~docv:"N"
          ~doc:"Paths per shard — the checkpoint/restart granularity.")
  in
  let budget =
    Arg.(
      value & opt float 0.
      & info [ "budget" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget per case attempt; over-budget cases are \
             retried on rekeyed seeds, then recorded as timeout cells. 0 \
             disables (and keeps the sweep fully deterministic).")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retries per failed case (capped exponential backoff between \
             attempts) before it becomes a failure cell.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Append each completed shard to $(docv) (atomic \
             tmp-write+rename). Without --resume an existing file is \
             truncated.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restore completed shards from --checkpoint before running the \
             rest; the final tables are byte-identical to an uninterrupted \
             run. Exit 2 if the checkpoint was written with different sweep \
             parameters.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"SHARDS"
          ~doc:
            "Stop (exit 3) once $(docv) shards are complete — interrupt \
             injection for tests/CI.")
  in
  let triage_k =
    Arg.(
      value & opt int 3
      & info [ "triage-k" ] ~docv:"K"
          ~doc:
            "Re-run the $(docv) worst outlier paths with tracing and the \
             invariant monitor. 0 disables triage.")
  in
  let triage_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "triage-dir" ] ~docv:"DIR"
          ~doc:"Archive triage traces (JSONL, one file per case) in $(docv).")
  in
  let triage_only =
    Arg.(
      value & flag
      & info [ "triage-only" ]
          ~doc:
            "Skip the shard runs: restore every shard from --checkpoint \
             (implies --resume) and go straight to the worst-k triage \
             re-runs. The tables are byte-identical to the run that wrote \
             the checkpoint. Exit 2 if the checkpoint is incomplete.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Fleet-scale Monte-Carlo path sweep: the Fig 18/19 population at \
          10^4+ paths, sharded over the pool, with checkpointed resume, \
          per-case watchdog/retry, streaming P2 aggregation, and worst-k \
          auto-triage.")
    Term.(
      const sweep_cmd $ full $ jobs $ paths $ seed $ schemes $ shard_size
      $ budget $ retries $ checkpoint $ resume $ stop_after $ triage_k
      $ triage_dir $ triage_only)

let parking_t =
  let links =
    Arg.(
      value & opt int 3
      & info [ "links" ] ~docv:"K" ~doc:"Chained bottleneck links (>= 2).")
  in
  let flows =
    Arg.(
      value & opt int 60
      & info [ "flows" ] ~docv:"N"
          ~doc:
            "Total congestion-controlled flows (one Nimbus per link, the \
             rest cubic cross traffic over adjacent link pairs).")
  in
  let mbps =
    Arg.(
      value & opt float 48.
      & info [ "rate" ] ~docv:"MBPS" ~doc:"Per-link rate.")
  in
  let dur =
    Arg.(
      value & opt float 5.
      & info [ "duration" ] ~docv:"S" ~doc:"Simulated duration.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Seed.")
  in
  Cmd.v
    (Cmd.info "parking"
       ~doc:
         "Run the parking-lot chain (Nimbus populations on K bottlenecks \
          with shared cross traffic) under the invariant monitor; exit 1 on \
          any violation (the topology CI smoke gate).")
    Term.(
      const parking_cmd $ links $ flows $ mbps $ dur $ seed $ Flags.trace_out
      $ Flags.trace_filter)

let trace_t =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Summarize a trace file (JSONL or .bin) recorded with --trace: \
          event counts per kind, time span, and notable events (mode \
          switches, elections, faults, violations).")
    Term.(const trace_cmd $ file)

let () =
  let doc = "Nimbus elasticity-detection reproduction CLI" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "nimbus_cli" ~doc)
          [ run_t; csv_t; list_t; sweep_t; simulate_t; faults_t; parking_t;
            trace_t ]))
