(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (quick profile by default; --full for paper-scale runs), plus
   Bechamel micro-benchmarks of the core primitives (--micro).

   Usage:
     bench/main.exe                 run all experiments, quick profile
     bench/main.exe --full          paper durations and repetitions
     bench/main.exe --only fig8     one experiment
     bench/main.exe --jobs 4        fan cases out over 4 domains
     bench/main.exe --micro         only the Bechamel primitives
     bench/main.exe --micro --json BENCH_micro.json
                                    also dump machine-readable results
     bench/main.exe --compare OLD,NEW
                                    markdown delta table of two JSON dumps
     bench/main.exe --list          list experiment ids

   Tables are byte-identical whatever --jobs is: cases are seeded
   independently and results are merged in input order.  Only the timing
   trailer lines vary. *)

module Registry = Nimbus_experiments.Registry
module Table = Nimbus_experiments.Table
module Common = Nimbus_experiments.Common
module Pool = Nimbus_parallel.Pool

let wall_secs () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let run_experiment profile (e : Registry.experiment) =
  Printf.printf "\n### [%s] %s\n%!" e.Registry.id e.Registry.title;
  let cpu0 = Sys.time () in
  let wall0 = wall_secs () in
  let tables = e.Registry.run profile in
  List.iter Table.print tables;
  Printf.printf "  (%.1f s wall, %.1f s cpu)\n%!"
    (wall_secs () -. wall0)
    (Sys.time () -. cpu0)

let main compare full only micro list_ids jobs json assert_trace_overhead =
  if list_ids then begin
    List.iter print_endline Registry.ids;
    0
  end
  else begin
    match compare with
    | Some (old_file, new_file) -> Compare.run ~old_file ~new_file
    | None ->
    let profile = if full then Common.full else Common.quick in
    if micro then Micro.run ?json ?assert_trace_overhead ()
    else begin
      let todo =
        match only with
        | Some id -> (
          match Registry.find id with
          | Some e -> [ e ]
          | None ->
            Printf.eprintf "unknown experiment %S; try --list\n" id;
            exit 2)
        | None -> Registry.all
      in
      let jobs =
        match jobs with
        | Some j ->
          if j < 1 then begin
            Printf.eprintf "--jobs must be >= 1\n";
            exit 2
          end;
          j
        | None -> Domain.recommended_domain_count ()
      in
      Printf.printf
        "nimbus reproduction bench: %d experiment(s), %s profile, %d job(s)\n%!"
        (List.length todo)
        (if full then "full" else "quick")
        jobs;
      Pool.run ~domains:jobs (fun pool ->
          Common.set_pool (Some pool);
          Fun.protect
            ~finally:(fun () -> Common.set_pool None)
            (fun () -> List.iter (run_experiment profile) todo));
      if only = None && not full then ignore (Micro.run ?json ());
      0
    end
  end

open Cmdliner

let compare =
  Arg.(
    value
    & opt (some (pair ~sep:',' file file)) None
    & info [ "compare" ] ~docv:"OLD,NEW"
        ~doc:
          "Print a markdown table of per-benchmark deltas between two \
           $(b,--micro --json) dumps and exit (CI appends it to the step \
           summary).")

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale durations and seeds.")

let only =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment.")

let micro =
  Arg.(value & flag & info [ "micro" ] ~doc:"Only Bechamel micro-benchmarks.")

let list_ids =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan experiment cases out over $(docv) domains (default: the \
           recommended domain count). Tables are byte-identical for any N.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"With $(b,--micro): also write results as JSON to $(docv).")

let assert_trace_overhead =
  Arg.(
    value
    & opt (some float) None
    & info
        [ "assert-trace-overhead" ]
        ~docv:"PCT"
        ~doc:
          "With $(b,--micro): exit nonzero if full-mask tracing slows the \
           Nimbus controller tick (nimbus.tick.traced vs nimbus.tick.plain) \
           by more than $(docv) percent AND by more than an absolute \
           per-tick floor (the fixed record cost; see bench/micro.ml).")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "nimbus-bench" ~doc)
    Term.(
      const main $ compare $ full $ only $ micro $ list_ids $ jobs $ json
      $ assert_trace_overhead)

let () = exit (Cmd.eval' cmd)
