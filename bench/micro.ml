(* Bechamel micro-benchmarks of the primitives every experiment leans on:
   FFT kernels (planless and plan-cached), the spectrum pipeline (one-shot
   and reusable-state), the Goertzel single-bin filter, the elasticity
   detector tick, the ẑ estimator, event-queue churn, and one simulated
   packet-second of a Cubic flow.  Each benchmark is measured against both
   the monotonic clock and the minor allocator, and the results can be
   dumped as JSON for per-PR perf tracking. *)

(* aliased before the opens: Toolkit also exposes a [Monotonic_clock]
   measure, which would otherwise shadow the raw clock *)
module Clock = Monotonic_clock

open Bechamel
open Toolkit

let pi = 4.0 *. atan 1.0

let signal n =
  Array.init n (fun i ->
      sin (2. *. pi *. 5. *. float_of_int i /. 100.)
      +. (0.3 *. sin (2. *. pi *. 17.3 *. float_of_int i /. 100.)))

let fft_radix2_512 =
  let xs = signal 512 in
  Test.make ~name:"fft.radix2.512"
    (Staged.stage (fun () ->
         let b = Nimbus_dsp.Cbuf.of_real xs in
         Nimbus_dsp.Fft.radix2 b))

let fft_bluestein_500 =
  let xs = signal 500 in
  Test.make ~name:"fft.bluestein.500"
    (Staged.stage (fun () ->
         ignore (Nimbus_dsp.Fft.bluestein (Nimbus_dsp.Cbuf.of_real xs))))

(* the plan-based transforms refill the buffer from a pristine signal each
   run, so they time the same work as the planless kernels above minus the
   table building and allocation *)
let fft_plan n =
  let xs = signal n in
  let plan = Nimbus_dsp.Fft.Plan.create n in
  let buf = Nimbus_dsp.Cbuf.create n in
  Test.make
    ~name:(Printf.sprintf "fft.plan.%d" n)
    (Staged.stage (fun () ->
         Array.blit xs 0 buf.Nimbus_dsp.Cbuf.re 0 n;
         Array.fill buf.Nimbus_dsp.Cbuf.im 0 n 0.;
         Nimbus_dsp.Fft.Plan.execute plan buf))

let spectrum_analyze_500 =
  let xs = signal 500 in
  Test.make ~name:"spectrum.analyze.500"
    (Staged.stage (fun () ->
         ignore
           (Nimbus_dsp.Spectrum.analyze ~window:Nimbus_dsp.Window.Hann
              ~detrend:`Linear xs ~sample_rate:(Units.Freq.hz 100.))))

let spectrum_analyze_into_500 =
  let xs = signal 500 in
  let st =
    Nimbus_dsp.Spectrum.create_state ~window:Nimbus_dsp.Window.Hann
      ~detrend:`Linear ~n:500 ~sample_rate:(Units.Freq.hz 100.) ()
  in
  Test.make ~name:"spectrum.analyze_into.500"
    (Staged.stage (fun () -> ignore (Nimbus_dsp.Spectrum.analyze_into st xs)))

let goertzel_500 =
  let xs = signal 500 in
  Test.make ~name:"goertzel.500"
    (Staged.stage (fun () ->
         ignore (Nimbus_dsp.Goertzel.magnitude xs ~sample_rate:(Units.Freq.hz 100.)
              ~freq:5.)))

(* the steady-state detector tick: one new sample plus one eta readout *)
let elasticity_eta =
  let det = Nimbus_core.Elasticity.create () in
  let xs = signal 500 in
  Array.iter (fun x -> Nimbus_core.Elasticity.add_sample det x) xs;
  Test.make ~name:"elasticity.eta.500"
    (Staged.stage (fun () ->
         Nimbus_core.Elasticity.add_sample det 0.1;
         ignore (Nimbus_core.Elasticity.eta det ~freq:(Units.Freq.hz 5.))))

let z_estimate =
  Test.make ~name:"z_estimator.estimate"
    (Staged.stage (fun () ->
         ignore
           (Nimbus_core.Z_estimator.estimate ~mu:(Units.Rate.bps 96e6)
              ~send_rate:(Units.Rate.bps 24e6)
              ~recv_rate:(Units.Rate.bps 20e6))))

let event_queue =
  Test.make ~name:"engine.schedule+run.1000"
    (Staged.stage (fun () ->
         let e = Nimbus_sim.Engine.create () in
         for i = 0 to 999 do
           Nimbus_sim.Engine.schedule_in e
             (Units.Time.secs (float_of_int (i mod 97) /. 100.))
             (fun () -> ())
         done;
         Nimbus_sim.Engine.run_until e (Units.Time.secs 1.)))

let sim_packet_second =
  Test.make ~name:"sim.cubic-flow.1s@48Mbps"
    (Staged.stage (fun () ->
         let e = Nimbus_sim.Engine.create () in
         let qdisc = Nimbus_sim.Qdisc.droptail ~capacity_bytes:600_000 in
         let bn =
           Nimbus_sim.Bottleneck.create e
             (Nimbus_sim.Bottleneck.Config.default ~rate:(Units.Rate.bps 48e6)
                ~qdisc)
         in
         let _f =
           Nimbus_cc.Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ())
             ~prop_rtt:(Units.Time.ms 50.) ()
         in
         Nimbus_sim.Engine.run_until e (Units.Time.secs 1.0)))

(* the full Nimbus controller tick (ẑ sample + detector + pulse bookkeeping)
   driven synthetically at 10 ms cadence, with tracing off vs. on — the pair
   the --assert-trace-overhead gate compares.  The traced collector has
   every category enabled and no sink, so the measured cost is pure
   record-into-ring plus the values computed only to be recorded. *)
let make_tick ~traced =
  let module Nimbus = Nimbus_core.Nimbus in
  let trace =
    if traced then
      Nimbus_trace.Trace.create ~mask:Nimbus_trace.Trace.mask_all ()
    else Nimbus_trace.Trace.disabled
  in
  let now = ref 0. in
  let nim =
    Nimbus.create
      { (Nimbus.Config.default
           ~mu:(Nimbus_core.Z_estimator.Mu.known (Units.Rate.bps 96e6)))
        with trace }
  in
  let cc = Nimbus.cc nim ~now:(fun () -> Units.Time.secs !now) in
  let tick = Option.get cc.Nimbus_cc.Cc_types.on_tick in
  fun () ->
    now := !now +. 0.01;
    tick
      { Nimbus_cc.Cc_types.now = Units.Time.secs !now;
        send_rate = Units.Rate.bps 48e6; recv_rate = Units.Rate.bps 46e6;
        rtt = Units.Time.ms 55.; srtt = Units.Time.ms 55.;
        min_rtt = Units.Time.ms 50.; inflight_bytes = 300_000;
        delivered_bytes = 0; lost_packets = 0 }

let nimbus_tick ~traced =
  let tick = make_tick ~traced in
  Test.make
    ~name:(if traced then "nimbus.tick.traced" else "nimbus.tick.plain")
    (Staged.stage tick)

let benchmarks =
  Test.make_grouped ~name:"nimbus"
    [ fft_radix2_512; fft_bluestein_500; fft_plan 500; fft_plan 512;
      spectrum_analyze_500; spectrum_analyze_into_500; goertzel_500;
      elasticity_eta; z_estimate; event_queue; sim_packet_second;
      nimbus_tick ~traced:false; nimbus_tick ~traced:true ]

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some r -> (
    match Analyze.OLS.estimates r with
    | Some (t :: _) -> t
    | Some [] | None -> nan)

(* span profile of one representative simulated run: a Nimbus flow against
   the 48 Mbit/s link for 10 simulated seconds, with Span scopes (FFT,
   spectrum, detector tick, engine drain, flow tick) enabled *)
let span_profile () =
  Nimbus_trace.Span.reset ();
  Nimbus_trace.Span.enable ();
  Fun.protect ~finally:Nimbus_trace.Span.disable (fun () ->
      let module Nimbus = Nimbus_core.Nimbus in
      let e = Nimbus_sim.Engine.create () in
      let qdisc = Nimbus_sim.Qdisc.droptail ~capacity_bytes:600_000 in
      let bn =
        Nimbus_sim.Bottleneck.create e
          (Nimbus_sim.Bottleneck.Config.default ~rate:(Units.Rate.bps 48e6)
             ~qdisc)
      in
      let nim =
        Nimbus.create
          (Nimbus.Config.default
             ~mu:(Nimbus_core.Z_estimator.Mu.known (Units.Rate.bps 48e6)))
      in
      let _f =
        Nimbus_cc.Flow.create e bn
          ~cc:(Nimbus.cc nim ~now:(fun () -> Nimbus_sim.Engine.now e))
          ~prop_rtt:(Units.Time.ms 50.) ()
      in
      Nimbus_sim.Engine.run_until e (Units.Time.secs 10.));
  let report = Nimbus_trace.Span.report () in
  Nimbus_trace.Span.reset ();
  report

let run ?json ?assert_trace_overhead () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let clock = Instance.monotonic_clock in
  let alloc = Instance.minor_allocated in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ clock; alloc ] benchmarks in
  let times = Analyze.all ols clock raw in
  let allocs = Analyze.all ols alloc raw in
  let names =
    List.sort String.compare
      (Hashtbl.fold (fun name _ acc -> name :: acc) times [])
  in
  print_endline "== Bechamel micro-benchmarks ==";
  Printf.printf "%-36s %14s %18s\n" "" "ns/run" "minor words/run";
  List.iter
    (fun name ->
      Printf.printf "%-36s %14.1f %18.1f\n" name (estimate times name)
        (estimate allocs name))
    names;
  print_newline ();
  print_endline "== Span profile (nimbus flow, 10 simulated seconds) ==";
  let profile = span_profile () in
  print_string (if String.equal profile "" then "(no spans fired)\n" else profile);
  (match json with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     let num v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null" in
     output_string oc "{\n  \"benchmarks\": [\n";
     let last = List.length names - 1 in
     List.iteri
       (fun i name ->
         Printf.fprintf oc
           "    {\"name\": %S, \"ns_per_run\": %s, \"minor_words_per_run\": \
            %s}%s\n"
           name
           (num (estimate times name))
           (num (estimate allocs name))
           (if i = last then "" else ","))
       names;
     output_string oc "  ]\n}\n";
     close_out oc;
     Printf.printf "wrote %s\n%!" path);
  (* the tracing-cost gate: full-mask (sinkless) tracing of the controller
     tick must stay within the given percentage of the untraced tick.  The
     tick costs ~6 µs and a single sequential measurement carries ±10%
     noise from CPU-frequency drift (the later side always loses) and from
     per-instance memory-layout luck, so the gate hand-rolls a robust
     comparison: several independent instances per side, measured in
     interleaved batches, taking the best batch each side ever achieves —
     and one whole-measurement retry before failing, so a single unlucky
     layout draw cannot flake the gate while a genuine regression still
     fails both attempts. *)
  match assert_trace_overhead with
  | None -> 0
  | Some pct ->
    let measure () =
      let instances = 4 and batch = 10_000 and rounds = 6 in
      let plains = List.init instances (fun _ -> make_tick ~traced:false) in
      let traceds = List.init instances (fun _ -> make_tick ~traced:true) in
      List.iter (fun f -> for _ = 1 to batch do f () done) (plains @ traceds);
      let time_batch f =
        let t0 = Clock.now () in
        for _ = 1 to batch do f () done;
        Int64.to_float (Int64.sub (Clock.now ()) t0) /. float_of_int batch
      in
      let plain = ref infinity and traced = ref infinity in
      for _ = 1 to rounds do
        List.iter (fun f -> plain := Float.min !plain (time_batch f)) plains;
        List.iter (fun f -> traced := Float.min !traced (time_batch f)) traceds
      done;
      (!plain, !traced)
    in
    let verdict attempt =
      let plain, traced = measure () in
      if not (Float.is_finite plain && Float.is_finite traced) || plain <= 0.
      then begin
        Printf.printf "trace overhead: tick measurements unavailable\n%!";
        None
      end
      else begin
        let overhead = (traced -. plain) /. plain *. 100. in
        Printf.printf
          "trace overhead%s: plain %.1f ns, traced %.1f ns -> %+.1f%% \
           (budget %.1f%%)\n%!"
          attempt plain traced overhead pct;
        Some overhead
      end
    in
    (match verdict "" with
     | None -> 1
     | Some o when o <= pct -> 0
     | Some _ -> (
       match verdict " (retry)" with
       | Some o when o <= pct -> 0
       | Some _ | None -> 1))
