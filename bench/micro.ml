(* Bechamel micro-benchmarks of the primitives every experiment leans on:
   FFT kernels (planless and plan-cached), the spectrum pipeline (one-shot
   and reusable-state), the Goertzel single-bin filter, the elasticity
   detector tick, the ẑ estimator, event-queue churn, and one simulated
   packet-second of a Cubic flow.  Each benchmark is measured against both
   the monotonic clock and the minor allocator, and the results can be
   dumped as JSON for per-PR perf tracking. *)

(* aliased before the opens: Toolkit also exposes a [Monotonic_clock]
   measure, which would otherwise shadow the raw clock *)
module Clock = Monotonic_clock

open Bechamel
open Toolkit

let pi = 4.0 *. atan 1.0

let signal n =
  Array.init n (fun i ->
      sin (2. *. pi *. 5. *. float_of_int i /. 100.)
      +. (0.3 *. sin (2. *. pi *. 17.3 *. float_of_int i /. 100.)))

let fft_radix2_512 =
  let xs = signal 512 in
  Test.make ~name:"fft.radix2.512"
    (Staged.stage (fun () ->
         let b = Nimbus_dsp.Cbuf.of_real xs in
         Nimbus_dsp.Fft.radix2 b))

let fft_bluestein_500 =
  let xs = signal 500 in
  Test.make ~name:"fft.bluestein.500"
    (Staged.stage (fun () ->
         ignore (Nimbus_dsp.Fft.bluestein (Nimbus_dsp.Cbuf.of_real xs))))

(* the plan-based transforms refill the buffer from a pristine signal each
   run, so they time the same work as the planless kernels above minus the
   table building and allocation *)
let fft_plan n =
  let xs = signal n in
  let plan = Nimbus_dsp.Fft.Plan.create n in
  let buf = Nimbus_dsp.Cbuf.create n in
  Test.make
    ~name:(Printf.sprintf "fft.plan.%d" n)
    (Staged.stage (fun () ->
         Array.blit xs 0 buf.Nimbus_dsp.Cbuf.re 0 n;
         Array.fill buf.Nimbus_dsp.Cbuf.im 0 n 0.;
         Nimbus_dsp.Fft.Plan.execute plan buf))

let spectrum_analyze_500 =
  let xs = signal 500 in
  Test.make ~name:"spectrum.analyze.500"
    (Staged.stage (fun () ->
         ignore
           (Nimbus_dsp.Spectrum.analyze ~window:Nimbus_dsp.Window.Hann
              ~detrend:`Linear xs ~sample_rate:(Units.Freq.hz 100.))))

let spectrum_analyze_into_500 =
  let xs = signal 500 in
  let st =
    Nimbus_dsp.Spectrum.create_state ~window:Nimbus_dsp.Window.Hann
      ~detrend:`Linear ~n:500 ~sample_rate:(Units.Freq.hz 100.) ()
  in
  Test.make ~name:"spectrum.analyze_into.500"
    (Staged.stage (fun () -> ignore (Nimbus_dsp.Spectrum.analyze_into st xs)))

let goertzel_500 =
  let xs = signal 500 in
  Test.make ~name:"goertzel.500"
    (Staged.stage (fun () ->
         ignore (Nimbus_dsp.Goertzel.magnitude xs ~sample_rate:(Units.Freq.hz 100.)
              ~freq:5.)))

(* the steady-state detector tick: one new sample plus one eta readout.
   The detector is pre-tuned (one eta call before measurement) so every
   measured run takes the streaming sliding-bank path; what the first call
   costs is timed separately by elasticity.eta.fft.500 below. *)
let filled_detector () =
  let det = Nimbus_core.Elasticity.create () in
  let xs = signal 500 in
  Array.iter (fun x -> Nimbus_core.Elasticity.add_sample det x) xs;
  det

let elasticity_eta =
  let det = filled_detector () in
  ignore (Nimbus_core.Elasticity.eta det ~freq:(Units.Freq.hz 5.));
  Test.make ~name:"elasticity.eta.500"
    (Staged.stage (fun () ->
         Nimbus_core.Elasticity.add_sample det 0.1;
         ignore (Nimbus_core.Elasticity.eta det ~freq:(Units.Freq.hz 5.))))

(* the same tick under its leaderboard name, so the JSON trajectory carries
   an explicitly-streaming entry alongside the historical elasticity.eta.500
   (which measured the Plan-FFT path before the sliding bank existed) *)
let elasticity_eta_streaming =
  let det = filled_detector () in
  ignore (Nimbus_core.Elasticity.eta det ~freq:(Units.Freq.hz 5.));
  Test.make ~name:"elasticity.eta.streaming.500"
    (Staged.stage (fun () ->
         Nimbus_core.Elasticity.add_sample det 0.1;
         ignore (Nimbus_core.Elasticity.eta det ~freq:(Units.Freq.hz 5.))))

(* the same tick forced down the full Plan-FFT reference path — the cost
   every eta readout used to pay, kept for the old-vs-new delta table *)
let elasticity_eta_fft =
  let det = filled_detector () in
  Test.make ~name:"elasticity.eta.fft.500"
    (Staged.stage (fun () ->
         Nimbus_core.Elasticity.add_sample det 0.1;
         ignore
           (Nimbus_core.Elasticity.eta_reference det ~freq:(Units.Freq.hz 5.))))

let z_estimate =
  Test.make ~name:"z_estimator.estimate"
    (Staged.stage (fun () ->
         ignore
           (Nimbus_core.Z_estimator.estimate ~mu:(Units.Rate.bps 96e6)
              ~send_rate:(Units.Rate.bps 24e6)
              ~recv_rate:(Units.Rate.bps 20e6))))

(* the engine is created once and reused across runs, so what this measures
   is the steady-state churn of scheduling and draining 1000 events — which
   the calendar queue and the unboxed-key overflow heap keep allocation-free
   once their slot arrays have grown (the old binary heap's boxed keys made
   this a steady source of minor words).  Simulated time keeps advancing
   across runs; each run drains everything it scheduled. *)
let event_queue =
  let e = Nimbus_sim.Engine.create Nimbus_sim.Engine.Config.default in
  (* delays precomputed so the loop does not time the boxing of its own
     [Units.Time.secs] arguments *)
  let delays = Array.init 97 (fun i -> Units.Time.secs (float_of_int i /. 100.)) in
  Test.make ~name:"engine.schedule+run.1000"
    (Staged.stage (fun () ->
         for i = 0 to 999 do
           Nimbus_sim.Engine.schedule_in e delays.(i mod 97) (fun () -> ())
         done;
         let stop =
           Units.Time.add (Nimbus_sim.Engine.now e) (Units.Time.secs 1.)
         in
         Nimbus_sim.Engine.run_until e stop))

let sim_packet_second =
  Test.make ~name:"sim.cubic-flow.1s@48Mbps"
    (Staged.stage (fun () ->
         let e = Nimbus_sim.Engine.create Nimbus_sim.Engine.Config.default in
         let qdisc = Nimbus_sim.Qdisc.droptail ~capacity_bytes:600_000 in
         let bn =
           Nimbus_sim.Bottleneck.create e
             (Nimbus_sim.Bottleneck.Config.default ~rate:(Units.Rate.bps 48e6)
                ~qdisc)
         in
         let _f =
           Nimbus_cc.Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ())
             ~prop_rtt:(Units.Time.ms 50.) ()
         in
         Nimbus_sim.Engine.run_until e (Units.Time.secs 1.0)))

(* the full Nimbus controller tick (ẑ sample + detector + pulse bookkeeping)
   driven synthetically at 10 ms cadence, with tracing off vs. on — the pair
   the --assert-trace-overhead gate compares.  The traced collector has
   every category enabled and no sink, so the measured cost is pure
   record-into-ring plus the values computed only to be recorded. *)
let make_tick ~traced =
  let module Nimbus = Nimbus_core.Nimbus in
  let trace =
    if traced then
      Nimbus_trace.Trace.create ~mask:Nimbus_trace.Trace.mask_all ()
    else Nimbus_trace.Trace.disabled
  in
  let now = ref 0. in
  let nim =
    Nimbus.create
      { (Nimbus.Config.default
           ~mu:(Nimbus_core.Z_estimator.Mu.known (Units.Rate.bps 96e6)))
        with trace }
  in
  let cc = Nimbus.cc nim ~now:(fun () -> Units.Time.secs !now) in
  let tick = Option.get cc.Nimbus_cc.Cc_types.on_tick in
  fun () ->
    now := !now +. 0.01;
    tick
      { Nimbus_cc.Cc_types.now = Units.Time.secs !now;
        send_rate = Units.Rate.bps 48e6; recv_rate = Units.Rate.bps 46e6;
        rtt = Units.Time.ms 55.; srtt = Units.Time.ms 55.;
        min_rtt = Units.Time.ms 50.; inflight_bytes = 300_000;
        delivered_bytes = 0; lost_packets = 0 }

let nimbus_tick ~traced =
  let tick = make_tick ~traced in
  Test.make
    ~name:(if traced then "nimbus.tick.traced" else "nimbus.tick.plain")
    (Staged.stage tick)

let benchmarks =
  Test.make_grouped ~name:"nimbus"
    [ fft_radix2_512; fft_bluestein_500; fft_plan 500; fft_plan 512;
      spectrum_analyze_500; spectrum_analyze_into_500; goertzel_500;
      elasticity_eta; elasticity_eta_streaming; elasticity_eta_fft; z_estimate;
      event_queue; sim_packet_second; nimbus_tick ~traced:false;
      nimbus_tick ~traced:true ]

(* End-to-end speed leaderboard: simulated packets delivered per second of
   wall-clock time, on the same Cubic-vs-48Mbit/s scenario as
   sim.cubic-flow.1s but run for 20 simulated seconds.  Reported as a rate
   over one long run (best of three) rather than a Bechamel fit: the figure
   of merit is the throughput of the whole event core — calendar-queue
   scheduling included — not the latency of one short run. *)
let pkts_per_wall_sec () =
  let once () =
    let e = Nimbus_sim.Engine.create Nimbus_sim.Engine.Config.default in
    let qdisc = Nimbus_sim.Qdisc.droptail ~capacity_bytes:600_000 in
    let bn =
      Nimbus_sim.Bottleneck.create e
        (Nimbus_sim.Bottleneck.Config.default ~rate:(Units.Rate.bps 48e6)
           ~qdisc)
    in
    let _f =
      Nimbus_cc.Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ())
        ~prop_rtt:(Units.Time.ms 50.) ()
    in
    let t0 = Clock.now () in
    Nimbus_sim.Engine.run_until e (Units.Time.secs 20.0);
    let wall = Int64.to_float (Int64.sub (Clock.now ()) t0) /. 1e9 in
    float_of_int (Nimbus_sim.Bottleneck.delivered_packets bn) /. wall
  in
  let best = ref 0. in
  for _ = 1 to 3 do
    best := Float.max !best (once ())
  done;
  !best

(* the same figure of merit for `nimbus_cli sweep`: complete sweep paths per
   wall second on a small cubic-only fleet (quick profile, no checkpoint, no
   triage), best of two.  Run without an ambient pool, so the number tracks
   per-case cost — the shard/aggregation machinery rides along for free and
   a regression in either shows up here. *)
let sweep_paths_per_wall_sec () =
  let module Sweep = Nimbus_experiments.Sweep in
  let once () =
    let cfg =
      Sweep.config ~paths:4 ~schemes:[ Nimbus_experiments.Common.cubic ]
        ~shard_size:4 ~triage_k:0 ()
    in
    let t0 = Clock.now () in
    let o = Sweep.run cfg in
    let wall = Int64.to_float (Int64.sub (Clock.now ()) t0) /. 1e9 in
    float_of_int o.Sweep.paths_done /. wall
  in
  let best = ref 0. in
  for _ = 1 to 2 do
    best := Float.max !best (once ())
  done;
  !best

(* the same figure of merit for the multi-bottleneck fabric: packets
   finishing serialisation per wall second, summed over the parking-lot
   chain's links (3 bottlenecks, ~300 flows, 5 simulated s), best of 2.
   Hop-to-hop forwarding, the fabric conservation counters, and the
   per-link invariant monitor are all on the measured path. *)
let parking_pkts_per_wall_sec () =
  let module P = Nimbus_experiments.Exp_parking_lot in
  let once () =
    let p = P.scaled_params ~links:3 ~flows:300 ~duration:5. () in
    let t0 = Clock.now () in
    let o = P.run_custom p in
    let wall = Int64.to_float (Int64.sub (Clock.now ()) t0) /. 1e9 in
    float_of_int o.P.delivered /. wall
  in
  let best = ref 0. in
  for _ = 1 to 2 do
    best := Float.max !best (once ())
  done;
  !best

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some r -> (
    match Analyze.OLS.estimates r with
    | Some (t :: _) -> t
    | Some [] | None -> nan)

(* span profile of one representative simulated run: a Nimbus flow against
   the 48 Mbit/s link for 10 simulated seconds, with Span scopes (FFT,
   spectrum, detector tick, engine drain, flow tick) enabled *)
let span_profile () =
  Nimbus_trace.Span.reset ();
  Nimbus_trace.Span.enable ();
  Fun.protect ~finally:Nimbus_trace.Span.disable (fun () ->
      let module Nimbus = Nimbus_core.Nimbus in
      let e = Nimbus_sim.Engine.create Nimbus_sim.Engine.Config.default in
      let qdisc = Nimbus_sim.Qdisc.droptail ~capacity_bytes:600_000 in
      let bn =
        Nimbus_sim.Bottleneck.create e
          (Nimbus_sim.Bottleneck.Config.default ~rate:(Units.Rate.bps 48e6)
             ~qdisc)
      in
      let nim =
        Nimbus.create
          (Nimbus.Config.default
             ~mu:(Nimbus_core.Z_estimator.Mu.known (Units.Rate.bps 48e6)))
      in
      let _f =
        Nimbus_cc.Flow.create e bn
          ~cc:(Nimbus.cc nim ~now:(fun () -> Nimbus_sim.Engine.now e))
          ~prop_rtt:(Units.Time.ms 50.) ()
      in
      Nimbus_sim.Engine.run_until e (Units.Time.secs 10.));
  let report = Nimbus_trace.Span.report () in
  Nimbus_trace.Span.reset ();
  report

let run ?json ?assert_trace_overhead () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let clock = Instance.monotonic_clock in
  let alloc = Instance.minor_allocated in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ clock; alloc ] benchmarks in
  let times = Analyze.all ols clock raw in
  let allocs = Analyze.all ols alloc raw in
  let names =
    List.sort String.compare
      (Hashtbl.fold (fun name _ acc -> name :: acc) times [])
  in
  print_endline "== Bechamel micro-benchmarks ==";
  Printf.printf "%-36s %14s %18s\n" "" "ns/run" "minor words/run";
  List.iter
    (fun name ->
      Printf.printf "%-36s %14.1f %18.1f\n" name (estimate times name)
        (estimate allocs name))
    names;
  print_newline ();
  print_endline "== Span profile (nimbus flow, 10 simulated seconds) ==";
  let profile = span_profile () in
  print_string (if String.equal profile "" then "(no spans fired)\n" else profile);
  print_newline ();
  print_endline "== End-to-end leaderboard ==";
  let pkts = pkts_per_wall_sec () in
  Printf.printf
    "sim.pkts_per_wall_sec %33.0f   (cubic @48Mbps, 20 simulated s, best of \
     3)\n%!"
    pkts;
  let sweep_rate = sweep_paths_per_wall_sec () in
  Printf.printf
    "sweep.paths_per_wall_sec %30.2f   (4-path cubic fleet, quick profile, \
     best of 2)\n%!"
    sweep_rate;
  let parking = parking_pkts_per_wall_sec () in
  Printf.printf
    "sim.parking_lot.pkts_per_wall_sec %21.0f   (3-link chain, ~300 flows, \
     5 simulated s, best of 2)\n%!"
    parking;
  (match json with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     let num v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null" in
     output_string oc "{\n  \"benchmarks\": [\n";
     let last = List.length names - 1 in
     List.iteri
       (fun i name ->
         Printf.fprintf oc
           "    {\"name\": %S, \"ns_per_run\": %s, \"minor_words_per_run\": \
            %s}%s\n"
           name
           (num (estimate times name))
           (num (estimate allocs name))
           (if i = last then "" else ","))
       names;
     output_string oc "  ],\n";
     Printf.fprintf oc
       "  \"end_to_end\": {\"sim.pkts_per_wall_sec\": %s, \
        \"sweep.paths_per_wall_sec\": %s, \
        \"sim.parking_lot.pkts_per_wall_sec\": %s}\n"
       (num pkts) (num sweep_rate) (num parking);
     output_string oc "}\n";
     close_out oc;
     Printf.printf "wrote %s\n%!" path);
  (* the tracing-cost gate: full-mask (sinkless) tracing of the controller
     tick must stay within the given percentage of the untraced tick.  A
     single sequential measurement carries ±10% noise from CPU-frequency
     drift (the later side always loses) and from per-instance memory-layout
     luck, so the gate hand-rolls a robust comparison: several independent
     instances per side, measured in interleaved batches, taking the best
     batch each side ever achieves — and one whole-measurement retry before
     failing, so a single unlucky layout draw cannot flake the gate while a
     genuine regression still fails both attempts.

     The percentage budget alone stopped being meaningful once the streaming
     detector dropped the plain tick under a microsecond: full-mask tracing
     records a fixed set of events per tick (~1 µs of ring writes), and a
     fixed absolute cost over a shrinking base is a growing percentage that
     signals nothing.  So the gate fails only when the traced tick exceeds
     the plain tick by more than [pct] percent AND by more than an absolute
     per-tick floor covering that fixed record cost. *)
  match assert_trace_overhead with
  | None -> 0
  | Some pct ->
    let floor_ns = 1500. in
    let measure () =
      let instances = 4 and batch = 10_000 and rounds = 6 in
      let plains = List.init instances (fun _ -> make_tick ~traced:false) in
      let traceds = List.init instances (fun _ -> make_tick ~traced:true) in
      List.iter (fun f -> for _ = 1 to batch do f () done) (plains @ traceds);
      let time_batch f =
        let t0 = Clock.now () in
        for _ = 1 to batch do f () done;
        Int64.to_float (Int64.sub (Clock.now ()) t0) /. float_of_int batch
      in
      let plain = ref infinity and traced = ref infinity in
      for _ = 1 to rounds do
        List.iter (fun f -> plain := Float.min !plain (time_batch f)) plains;
        List.iter (fun f -> traced := Float.min !traced (time_batch f)) traceds
      done;
      (!plain, !traced)
    in
    let verdict attempt =
      let plain, traced = measure () in
      if not (Float.is_finite plain && Float.is_finite traced) || plain <= 0.
      then begin
        Printf.printf "trace overhead: tick measurements unavailable\n%!";
        None
      end
      else begin
        let delta = traced -. plain in
        let overhead = delta /. plain *. 100. in
        Printf.printf
          "trace overhead%s: plain %.1f ns, traced %.1f ns -> %+.1f%% \
           (+%.0f ns; budget %.1f%% or %.0f ns)\n%!"
          attempt plain traced overhead delta pct floor_ns;
        Some (overhead, delta)
      end
    in
    let ok (overhead, delta) = overhead <= pct || delta <= floor_ns in
    (match verdict "" with
     | None -> 1
     | Some v when ok v -> 0
     | Some _ -> (
       match verdict " (retry)" with
       | Some v when ok v -> 0
       | Some _ | None -> 1))
