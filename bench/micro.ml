(* Bechamel micro-benchmarks of the primitives every experiment leans on:
   FFT kernels, the Goertzel single-bin filter, the elasticity metric, the
   ẑ estimator, event-queue churn, and one simulated packet-second of a
   Cubic flow. *)

open Bechamel
open Toolkit

let pi = 4.0 *. atan 1.0

let signal n =
  Array.init n (fun i ->
      sin (2. *. pi *. 5. *. float_of_int i /. 100.)
      +. (0.3 *. sin (2. *. pi *. 17.3 *. float_of_int i /. 100.)))

let fft_radix2_512 =
  let xs = signal 512 in
  Test.make ~name:"fft.radix2.512"
    (Staged.stage (fun () ->
         let b = Nimbus_dsp.Cbuf.of_real xs in
         Nimbus_dsp.Fft.radix2 b))

let fft_bluestein_500 =
  let xs = signal 500 in
  Test.make ~name:"fft.bluestein.500"
    (Staged.stage (fun () ->
         ignore (Nimbus_dsp.Fft.bluestein (Nimbus_dsp.Cbuf.of_real xs))))

let goertzel_500 =
  let xs = signal 500 in
  Test.make ~name:"goertzel.500"
    (Staged.stage (fun () ->
         ignore (Nimbus_dsp.Goertzel.magnitude xs ~sample_rate:(Units.Freq.hz 100.)
              ~freq:5.)))

let elasticity_eta =
  let det = Nimbus_core.Elasticity.create () in
  let xs = signal 500 in
  Array.iter (fun x -> Nimbus_core.Elasticity.add_sample det x) xs;
  Test.make ~name:"elasticity.eta.500"
    (Staged.stage (fun () ->
         Nimbus_core.Elasticity.add_sample det 0.1;
         ignore (Nimbus_core.Elasticity.eta det ~freq:(Units.Freq.hz 5.))))

let z_estimate =
  Test.make ~name:"z_estimator.estimate"
    (Staged.stage (fun () ->
         ignore
           (Nimbus_core.Z_estimator.estimate ~mu:(Units.Rate.bps 96e6)
              ~send_rate:(Units.Rate.bps 24e6)
              ~recv_rate:(Units.Rate.bps 20e6))))

let event_queue =
  Test.make ~name:"engine.schedule+run.1000"
    (Staged.stage (fun () ->
         let e = Nimbus_sim.Engine.create () in
         for i = 0 to 999 do
           Nimbus_sim.Engine.schedule_in e
             (Units.Time.secs (float_of_int (i mod 97) /. 100.))
             (fun () -> ())
         done;
         Nimbus_sim.Engine.run_until e (Units.Time.secs 1.)))

let sim_packet_second =
  Test.make ~name:"sim.cubic-flow.1s@48Mbps"
    (Staged.stage (fun () ->
         let e = Nimbus_sim.Engine.create () in
         let qdisc = Nimbus_sim.Qdisc.droptail ~capacity_bytes:600_000 in
         let bn =
           Nimbus_sim.Bottleneck.create e ~rate:(Units.Rate.bps 48e6) ~qdisc ()
         in
         let _f =
           Nimbus_cc.Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ())
             ~prop_rtt:(Units.Time.ms 50.) ()
         in
         Nimbus_sim.Engine.run_until e (Units.Time.secs 1.0)))

let benchmarks =
  Test.make_grouped ~name:"nimbus"
    [ fft_radix2_512; fft_bluestein_500; goertzel_500; elasticity_eta;
      z_estimate; event_queue; sim_packet_second ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances benchmarks in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "== Bechamel micro-benchmarks (monotonic clock) ==";
  Hashtbl.iter
    (fun _measure per_test ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (t :: _) -> rows := (name, t) :: !rows
          | _ -> ())
        per_test;
      List.iter
        (fun (name, t) -> Printf.printf "%-36s %14.1f ns/run\n" name t)
        (List.sort compare !rows))
    merged
