(* Old-vs-new comparison of two --micro --json dumps (the BENCH_micro.json
   shape written by Micro.run).  Prints a GitHub-flavoured markdown table of
   per-benchmark deltas — CI appends it to GITHUB_STEP_SUMMARY so every PR
   shows its perf trajectory without downloading artifacts.  Negative ns
   deltas mean the new run is faster; sim.pkts_per_wall_sec is
   higher-is-better and gets its own table.

   The parser is a deliberately small line scanner for exactly the shape
   micro.ml writes (one benchmark object per line, one end_to_end line):
   there is no JSON library in the dependency set, and round-tripping our
   own writer does not justify adding one. *)

let substr_end line needle =
  let n = String.length line and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = needle then Some (i + m)
    else go (i + 1)
  in
  go 0

let skip_ws line i =
  let n = String.length line in
  let rec go i =
    if i < n && (line.[i] = ' ' || line.[i] = '\t') then go (i + 1) else i
  in
  go i

(* value of ["key": "..."] on this line, if present *)
let string_field line key =
  match substr_end line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
    let i = skip_ws line i in
    if i >= String.length line || line.[i] <> '"' then None
    else (
      match String.index_from_opt line (i + 1) '"' with
      | None -> None
      | Some j -> Some (String.sub line (i + 1) (j - i - 1)))

(* value of ["key": 12.3] on this line, if present; JSON null parses as nan
   (micro.ml writes null for estimates Bechamel could not produce) *)
let num_field line key =
  match substr_end line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
    let i = skip_ws line i in
    let n = String.length line in
    let j = ref i in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | 'n' | 'u' | 'l' -> true (* null *)
      | _ -> false
    in
    while !j < n && num_char line.[!j] do
      incr j
    done;
    if !j = i then None
    else
      let tok = String.sub line i (!j - i) in
      if String.equal tok "null" then Some nan else float_of_string_opt tok

type row = {
  ns : float;
  words : float;
}

(* (benchmark rows in file order, end-to-end rates if present) *)
let load path =
  let ic = open_in path in
  let rows = ref [] in
  let pkts = ref nan in
  let sweep = ref nan in
  let parking = ref nan in
  (try
     while true do
       let line = input_line ic in
       (match string_field line "name" with
       | Some name ->
         let field key = Option.value ~default:nan (num_field line key) in
         let row =
           { ns = field "ns_per_run"; words = field "minor_words_per_run" }
         in
         rows := (name, row) :: !rows
       | None -> ());
       (match num_field line "sim.pkts_per_wall_sec" with
       | Some v -> pkts := v
       | None -> ());
       (match num_field line "sweep.paths_per_wall_sec" with
       | Some v -> sweep := v
       | None -> ());
       match num_field line "sim.parking_lot.pkts_per_wall_sec" with
       | Some v -> parking := v
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  (List.rev !rows, !pkts, !sweep, !parking)

let fnum v = if Float.is_finite v then Printf.sprintf "%.1f" v else "—"

(* relative change, rendered "+4.2%" / "-98.1%"; dashed when either side is
   missing or the base is zero (a 0→0 words delta is just "—") *)
let fdelta ~old_ ~new_ =
  if Float.is_finite old_ && Float.is_finite new_ && Float.abs old_ > 0. then
    Printf.sprintf "%+.1f%%" ((new_ -. old_) /. old_ *. 100.)
  else "—"

let run ~old_file ~new_file =
  match (load old_file, load new_file) with
  | exception Sys_error msg ->
    Printf.eprintf "compare: %s\n" msg;
    2
  | ( (old_rows, old_pkts, old_sweep, old_parking),
      (new_rows, new_pkts, new_sweep, new_parking) ) ->
    (* every name from either file: new-file order first, then old-only *)
    let names =
      List.map fst new_rows
      @ List.filter
          (fun n -> not (List.mem_assoc n new_rows))
          (List.map fst old_rows)
    in
    let get rows name =
      Option.value ~default:{ ns = nan; words = nan } (List.assoc_opt name rows)
    in
    Printf.printf "Micro-benchmark deltas: %s -> %s\n\n" old_file new_file;
    print_endline
      "| benchmark | ns/run (old) | ns/run (new) | Δ ns/run | words/run \
       (old) | words/run (new) |";
    print_endline "|---|---:|---:|---:|---:|---:|";
    List.iter
      (fun name ->
        let o = get old_rows name and n = get new_rows name in
        Printf.printf "| %s | %s | %s | %s | %s | %s |\n" name (fnum o.ns)
          (fnum n.ns)
          (fdelta ~old_:o.ns ~new_:n.ns)
          (fnum o.words) (fnum n.words))
      names;
    if
      Float.is_finite old_pkts || Float.is_finite new_pkts
      || Float.is_finite old_sweep || Float.is_finite new_sweep
      || Float.is_finite old_parking || Float.is_finite new_parking
    then begin
      print_newline ();
      print_endline "| end-to-end (higher is better) | old | new | Δ |";
      print_endline "|---|---:|---:|---:|";
      Printf.printf "| sim.pkts_per_wall_sec | %s | %s | %s |\n"
        (fnum old_pkts) (fnum new_pkts)
        (fdelta ~old_:old_pkts ~new_:new_pkts);
      if Float.is_finite old_sweep || Float.is_finite new_sweep then
        Printf.printf "| sweep.paths_per_wall_sec | %s | %s | %s |\n"
          (fnum old_sweep) (fnum new_sweep)
          (fdelta ~old_:old_sweep ~new_:new_sweep);
      if Float.is_finite old_parking || Float.is_finite new_parking then
        Printf.printf "| sim.parking_lot.pkts_per_wall_sec | %s | %s | %s |\n"
          (fnum old_parking) (fnum new_parking)
          (fdelta ~old_:old_parking ~new_:new_parking)
    end;
    0
