(** Descriptive statistics used throughout the evaluation harness.

    NaN is the repo-wide "not measured" sentinel, so every aggregate here
    treats NaN entries as absent samples instead of silently propagating
    them: means and variances skip them, order statistics raise when nothing
    measurable remains. *)

(** [mean xs] ignores NaN entries; [nan] on empty or all-NaN input. *)
val mean : float array -> float

(** [variance xs] is the population variance of the non-NaN entries; [nan]
    on empty or all-NaN input. *)
val variance : float array -> float

(** [stddev xs] is [sqrt (variance xs)]. *)
val stddev : float array -> float

(** [percentile xs p] for [p] in [0..100], linear interpolation between the
    order statistics of the non-NaN entries. Does not modify [xs].
    @raise Invalid_argument on empty input, all-NaN input, or [p] outside
    [0, 100]. *)
val percentile : float array -> float -> float

(** [median xs] = [percentile xs 50.]. *)
val median : float array -> float

(** [minimum xs], [maximum xs]. @raise Invalid_argument on empty input. *)
val minimum : float array -> float

val maximum : float array -> float

(** [cdf_points xs ~points] samples the empirical CDF of the non-NaN entries
    at [points] evenly spaced quantiles, returning
    [(value, cumulative_probability)] pairs in ascending order — the series
    behind the paper's CDF figures. [[||]] on empty or all-NaN input. *)
val cdf_points : float array -> points:int -> (float * float) array

(** [correlation xs ys] is the Pearson correlation coefficient.
    @raise Invalid_argument on mismatched lengths or fewer than 2 samples. *)
val correlation : float array -> float array -> float

(** [cross_correlation xs ys ~max_lag] is the array of normalized
    cross-correlations of [xs] against [ys] delayed by lag k, for k in
    [0 .. max_lag]: element k correlates [xs.(i)] with [ys.(i+k)]. This is
    the paper's rejected time-domain detector, kept for the ablation bench. *)
val cross_correlation : float array -> float array -> max_lag:int -> float array

(** [relative_error ~actual ~expected] is [|actual − expected| / |expected|];
    [infinity] when [expected = 0.] and [actual <> 0.], else [0.]. *)
val relative_error : actual:float -> expected:float -> float

(** Streaming (online) accumulators for fleet-scale aggregation: O(1) memory
    in sample count, bit-for-bit deterministic in insertion order — feeding
    the same sample sequence always reproduces the same state, which is what
    lets a checkpoint-resumed sweep emit a byte-identical table. *)

(** Welford's online mean/variance. *)
module Welford : sig
  type t

  val create : unit -> t

  (** [add t x] folds one sample in.
      @raise Invalid_argument on a non-finite sample. *)
  val add : t -> float -> unit

  val count : t -> int

  (** [mean t] / [variance t] (population) / [stddev t] — [nan] while
      empty. *)
  val mean : t -> float

  val variance : t -> float

  val stddev : t -> float
end

(** The P² online quantile estimator (Jain & Chlamtac 1985): five markers
    nudged toward their ideal positions by a piecewise-parabolic rule.
    Exact for the first five samples, approximate (typically within a
    percent of the sample range for unimodal data) after that. *)
module P2 : sig
  type t

  (** [create p] targets quantile [p].
      @raise Invalid_argument unless [0 < p < 1]. *)
  val create : float -> t

  (** [add t x] folds one sample in.
      @raise Invalid_argument on a non-finite sample. *)
  val add : t -> float -> unit

  val count : t -> int

  (** [quantile t] is the current estimate; [nan] while empty, the exact
      order statistic while five or fewer samples have been seen. *)
  val quantile : t -> float
end
