let pi = 4.0 *. atan 1.0

let power xs ~sample_rate ~freq =
  let sample_rate = Units.Freq.to_hz sample_rate in
  let n = Array.length xs in
  if n = 0 then invalid_arg "Goertzel.power: empty signal";
  if sample_rate <= 0. then invalid_arg "Goertzel.power: sample_rate <= 0";
  let k = freq /. sample_rate *. float_of_int n in
  let omega = 2.0 *. pi *. k /. float_of_int n in
  let coeff = 2.0 *. cos omega in
  let s_prev = ref 0.0 and s_prev2 = ref 0.0 in
  for i = 0 to n - 1 do
    let s = xs.(i) +. (coeff *. !s_prev) -. !s_prev2 in
    s_prev2 := !s_prev;
    s_prev := s
  done;
  (!s_prev *. !s_prev) +. (!s_prev2 *. !s_prev2)
  -. (coeff *. !s_prev *. !s_prev2)
[@@alloc_free]

let magnitude xs ~sample_rate ~freq = sqrt (power xs ~sample_rate ~freq)

module Sliding = struct
  type t = {
    buf : float array;
    mutable head : int; (* next write slot *)
    mutable count : int;
    sample_rate : float;
    freq : float;
  }

  let create ~window ~sample_rate ~freq =
    let sample_rate = Units.Freq.to_hz sample_rate in
    if window <= 0 then invalid_arg "Goertzel.Sliding.create: window <= 0";
    { buf = Array.make window 0.; head = 0; count = 0; sample_rate; freq }

  let push t x =
    t.buf.(t.head) <- x;
    t.head <- (t.head + 1) mod Array.length t.buf;
    if t.count < Array.length t.buf then t.count <- t.count + 1
  [@@alloc_free]

  let filled t = t.count = Array.length t.buf

  (* Materialise in chronological order so the phase reference is stable. *)
  let magnitude t =
    let n = Array.length t.buf in
    let ordered = Array.make n 0. in
    let start = (t.head - t.count + n) mod n in
    for i = 0 to t.count - 1 do
      ordered.(i) <- t.buf.((start + i) mod n)
    done;
    magnitude ordered ~sample_rate:(Units.Freq.hz t.sample_rate) ~freq:t.freq
end
