let pi = 4.0 *. atan 1.0

let power xs ~sample_rate ~freq =
  let sample_rate = Units.Freq.to_hz sample_rate in
  let n = Array.length xs in
  if n = 0 then invalid_arg "Goertzel.power: empty signal";
  if sample_rate <= 0. then invalid_arg "Goertzel.power: sample_rate <= 0";
  let k = freq /. sample_rate *. float_of_int n in
  let omega = 2.0 *. pi *. k /. float_of_int n in
  let coeff = 2.0 *. cos omega in
  let s_prev = ref 0.0 and s_prev2 = ref 0.0 in
  for i = 0 to n - 1 do
    let s = xs.(i) +. (coeff *. !s_prev) -. !s_prev2 in
    s_prev2 := !s_prev;
    s_prev := s
  done;
  (!s_prev *. !s_prev) +. (!s_prev2 *. !s_prev2)
  -. (coeff *. !s_prev *. !s_prev2)
[@@alloc_free]

let magnitude xs ~sample_rate ~freq = sqrt (power xs ~sample_rate ~freq)

module Bank = struct
  (* A bank of sliding-DFT recurrences that tracks the *windowed, detrended*
     amplitude of a fixed set of DFT bins in O(1) per sample — the streaming
     replacement for the per-tick Plan-FFT in the elasticity detector.

     Let V^w(t) = sum_{i=0}^{n-1} x_{t-n+1+i} e^{-jwi} be the window sum at
     angular step [w] with *relative* phase (oldest sample at phase 0).  On
     pushing x_new and evicting x_old it slides exactly:

       V' = e^{jw} (V - x_old) + x_new e^{-jw(n-1)}

     The analyzer's tapers are the *symmetric* variants (denominator n-1),
     so the textbook 3-bin periodic-Hann convolution does not apply.
     Instead each taper is its exact cosine series
     w_i = sum_m a_m cos(m * alpha * i) with alpha = 2*pi/(n-1), giving

       sum_i x_i w_i e^{-jw_k i}
         = a_0 V^{w_k} + sum_{m>=1} (a_m / 2) (V^{w_k - m*alpha}
                                               + V^{w_k + m*alpha})

     so one tracked bin costs 2*order+1 recurrences (order 0 for
     rectangular, 1 for Hann/Hamming, 2 for Blackman).  Linear/mean
     detrending commutes with the DFT: with sliding sums S = sum x_i and
     T = sum i*x_i the analyzer's least-squares intercept b and slope a
     are recovered in O(1), and the detrended bin is

       X_k = raw_k - b*C_k - a*D_k,   C_k = sum_i w_i e^{-jw_k i},
                                      D_k = sum_i w_i i e^{-jw_k i}

     with C/D precomputed from the very coefficient arrays the FFT path
     multiplies by.  The recurrences accumulate O(eps) rounding per push,
     so every [8n] pushes the bank recomputes all state directly from its
     window copy (a few hundred microseconds amortized over seconds),
     bounding drift far below the QCheck agreement tolerance. *)

  let resync_mult = 8

  (* cosine-series weights of Window.coefficients' symmetric tapers *)
  let series = function
    | Window.Rectangular -> [| 1.0 |]
    | Window.Hann -> [| 0.5; -0.5 |]
    | Window.Hamming -> [| 0.54; -0.46 |]
    | Window.Blackman -> [| 0.42; -0.5; 0.08 |]

  type t = {
    n : int;
    bins : int array; (* tracked DFT bins; amplitudes are read by slot *)
    ncomp : int;
    cpb : int; (* components per bin: 2*order + 1 *)
    wt : float array; (* per-component-offset series weight, length cpb *)
    omega : float array; (* angular step of each component *)
    rot_re : float array; (* e^{j omega}: slide rotation *)
    rot_im : float array;
    inj_re : float array; (* e^{-j omega (n-1)}: new-sample injection *)
    inj_im : float array;
    vre : float array; (* running component sums *)
    vim : float array;
    cre : float array; (* detrend corrections C_k, D_k per slot *)
    cim : float array;
    dre : float array;
    dim : float array;
    win : float array; (* own window copy, for load and resync *)
    mutable head : int;
    mutable count : int;
    mutable until_resync : int;
    detrend : [ `None | `Mean | `Linear ];
    (* sliding detrend sums live in a float array: mutable float fields in
       this mixed record would box on every write *)
    sums : float array; (* [0] = S = sum x_i; [1] = T = sum i * x_i *)
    nf : float; (* immutable float fields: reads never allocate *)
    sx : float; (* sum i = n(n-1)/2 *)
    denom : float; (* least-squares denominator n*sxx - sx^2 *)
  }

  let create ~window:n ~taper ~detrend ~bins () =
    if n <= 0 then invalid_arg "Goertzel.Bank.create: window <= 0";
    Array.iter
      (fun k ->
        if k < 0 || k > n / 2 then
          invalid_arg "Goertzel.Bank.create: bin out of [0, window/2]")
      bins;
    let series = if n < 2 then [| 1.0 |] else series taper in
    let order = Array.length series - 1 in
    let cpb = (2 * order) + 1 in
    let nbins = Array.length bins in
    let ncomp = nbins * cpb in
    let alpha = if n < 2 then 0. else 2. *. pi /. float_of_int (n - 1) in
    let wt = Array.make cpb series.(0) in
    for m = 1 to order do
      wt.((2 * m) - 1) <- series.(m) /. 2.;
      wt.(2 * m) <- series.(m) /. 2.
    done;
    let omega = Array.make (max 1 ncomp) 0. in
    for b = 0 to nbins - 1 do
      let wk = 2. *. pi *. float_of_int bins.(b) /. float_of_int n in
      omega.(b * cpb) <- wk;
      for m = 1 to order do
        let off = float_of_int m *. alpha in
        omega.((b * cpb) + (2 * m) - 1) <- wk -. off;
        omega.((b * cpb) + (2 * m)) <- wk +. off
      done
    done;
    let rot_re = Array.make (max 1 ncomp) 0. in
    let rot_im = Array.make (max 1 ncomp) 0. in
    let inj_re = Array.make (max 1 ncomp) 0. in
    let inj_im = Array.make (max 1 ncomp) 0. in
    for c = 0 to ncomp - 1 do
      rot_re.(c) <- cos omega.(c);
      rot_im.(c) <- sin omega.(c);
      let ph = omega.(c) *. float_of_int (n - 1) in
      inj_re.(c) <- cos ph;
      inj_im.(c) <- -.sin ph
    done;
    (* detrend corrections from the exact coefficient arrays the FFT path
       multiplies by, so the two paths agree to rounding *)
    let coeffs = Window.coefficients taper n in
    let cre = Array.make (max 1 nbins) 0. in
    let cim = Array.make (max 1 nbins) 0. in
    let dre = Array.make (max 1 nbins) 0. in
    let dim = Array.make (max 1 nbins) 0. in
    for b = 0 to nbins - 1 do
      let wk = 2. *. pi *. float_of_int bins.(b) /. float_of_int n in
      let sr = ref 0. and si = ref 0. and tr = ref 0. and ti = ref 0. in
      for i = 0 to n - 1 do
        let ph = wk *. float_of_int i in
        let c0 = cos ph and s0 = sin ph in
        let w = coeffs.(i) in
        sr := !sr +. (w *. c0);
        si := !si -. (w *. s0);
        tr := !tr +. (w *. float_of_int i *. c0);
        ti := !ti -. (w *. float_of_int i *. s0)
      done;
      cre.(b) <- !sr;
      cim.(b) <- !si;
      dre.(b) <- !tr;
      dim.(b) <- !ti
    done;
    let nf = float_of_int n in
    let sx = nf *. (nf -. 1.) /. 2. in
    let sxx = nf *. (nf -. 1.) *. ((2. *. nf) -. 1.) /. 6. in
    {
      n;
      bins = Array.copy bins;
      ncomp;
      cpb;
      wt;
      omega;
      rot_re;
      rot_im;
      inj_re;
      inj_im;
      vre = Array.make (max 1 ncomp) 0.;
      vim = Array.make (max 1 ncomp) 0.;
      cre;
      cim;
      dre;
      dim;
      win = Array.make n 0.;
      head = 0;
      count = 0;
      until_resync = resync_mult * n;
      detrend;
      sums = Array.make 2 0.;
      nf;
      sx;
      denom = (nf *. sxx) -. (sx *. sx);
    }

  let nbins t = Array.length t.bins

  let bin t i = t.bins.(i)

  let filled t = t.count = t.n

  (* Recompute every component and the detrend sums directly from the window
     copy.  Chronological sample i is win.((head + i) mod n) — before fill
     that yields the implicit leading zeros, after fill the true window.
     The sum loop mirrors the FFT path's accumulation order so b and a match
     it to rounding. *)
  let resync t =
    let n = t.n in
    let s = ref 0. and ti = ref 0. in
    for i = 0 to n - 1 do
      let x = t.win.((t.head + i) mod n) in
      s := !s +. x;
      ti := !ti +. (float_of_int i *. x)
    done;
    t.sums.(0) <- !s;
    t.sums.(1) <- !ti;
    for c = 0 to t.ncomp - 1 do
      let w = t.omega.(c) in
      let sr = ref 0. and si = ref 0. in
      for i = 0 to n - 1 do
        let x = t.win.((t.head + i) mod n) in
        let ph = w *. float_of_int i in
        sr := !sr +. (x *. cos ph);
        si := !si -. (x *. sin ph)
      done;
      t.vre.(c) <- !sr;
      t.vim.(c) <- !si
    done;
    t.until_resync <- resync_mult * n
  [@@alloc_free]

  let push t x =
    let n = t.n in
    let x_old = t.win.(t.head) in
    t.win.(t.head) <- x;
    t.head <- (t.head + 1) mod n;
    if t.count < n then t.count <- t.count + 1;
    (* T before S: the T recurrence needs the pre-update S *)
    let s = t.sums.(0) in
    t.sums.(1) <-
      t.sums.(1) -. s +. x_old +. (float_of_int (n - 1) *. x);
    t.sums.(0) <- s -. x_old +. x;
    for c = 0 to t.ncomp - 1 do
      let vr = t.vre.(c) -. x_old and vi = t.vim.(c) in
      t.vre.(c) <-
        (t.rot_re.(c) *. vr) -. (t.rot_im.(c) *. vi) +. (x *. t.inj_re.(c));
      t.vim.(c) <-
        (t.rot_re.(c) *. vi) +. (t.rot_im.(c) *. vr) +. (x *. t.inj_im.(c))
    done;
    t.until_resync <- t.until_resync - 1;
    if t.until_resync <= 0 then resync t
  [@@alloc_free]

  let load t xs =
    if Array.length xs <> t.n then
      invalid_arg "Goertzel.Bank.load: length <> window";
    Array.blit xs 0 t.win 0 t.n;
    t.head <- 0;
    t.count <- t.n;
    resync t

  let amplitude t slot =
    let base = slot * t.cpb in
    let rr = ref 0. and ii = ref 0. in
    for c = 0 to t.cpb - 1 do
      rr := !rr +. (t.wt.(c) *. t.vre.(base + c));
      ii := !ii +. (t.wt.(c) *. t.vim.(base + c))
    done;
    (* analyzer's detrend coefficients from the sliding sums *)
    let b = ref 0. and a = ref 0. in
    (match t.detrend with
    | `None -> ()
    | `Mean -> b := t.sums.(0) /. t.nf
    | `Linear ->
      if t.n < 2 then b := t.sums.(0) /. t.nf
      else begin
        let s = t.sums.(0) and tt = t.sums.(1) in
        a := ((t.nf *. tt) -. (t.sx *. s)) /. t.denom;
        b := (s -. (!a *. t.sx)) /. t.nf
      end);
    Float.hypot
      (!rr -. (!b *. t.cre.(slot)) -. (!a *. t.dre.(slot)))
      (!ii -. (!b *. t.cim.(slot)) -. (!a *. t.dim.(slot)))
  [@@alloc_free]
end

module Sliding = struct
  type t = {
    buf : float array;
    mutable head : int; (* next write slot *)
    mutable count : int;
    sample_rate : float;
    freq : float;
  }

  let create ~window ~sample_rate ~freq =
    let sample_rate = Units.Freq.to_hz sample_rate in
    if window <= 0 then invalid_arg "Goertzel.Sliding.create: window <= 0";
    { buf = Array.make window 0.; head = 0; count = 0; sample_rate; freq }

  let push t x =
    t.buf.(t.head) <- x;
    t.head <- (t.head + 1) mod Array.length t.buf;
    if t.count < Array.length t.buf then t.count <- t.count + 1
  [@@alloc_free]

  let filled t = t.count = Array.length t.buf

  (* Materialise in chronological order so the phase reference is stable. *)
  let magnitude t =
    let n = Array.length t.buf in
    let ordered = Array.make n 0. in
    let start = (t.head - t.count + n) mod n in
    for i = 0 to t.count - 1 do
      ordered.(i) <- t.buf.((start + i) mod n)
    done;
    magnitude ordered ~sample_rate:(Units.Freq.hz t.sample_rate) ~freq:t.freq
end
