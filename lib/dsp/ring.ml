type t = {
  buf : float array;
  mutable head : int; (* next write position *)
  mutable count : int;
}

let create n =
  if n <= 0 then invalid_arg "Ring.create: capacity <= 0";
  { buf = Array.make n 0.; head = 0; count = 0 }

let capacity t = Array.length t.buf

let count t = t.count

let is_full t = t.count = Array.length t.buf

let push t x =
  t.buf.(t.head) <- x;
  t.head <- (t.head + 1) mod Array.length t.buf;
  if t.count < Array.length t.buf then t.count <- t.count + 1

let to_array t =
  let n = Array.length t.buf in
  let start = (t.head - t.count + n) mod n in
  Array.init t.count (fun i -> t.buf.((start + i) mod n))

let blit_to t dst =
  if Array.length dst < t.count then invalid_arg "Ring.blit_to: dst too small";
  let n = Array.length t.buf in
  let start = (t.head - t.count + n) mod n in
  let first = min t.count (n - start) in
  Array.blit t.buf start dst 0 first;
  if first < t.count then Array.blit t.buf 0 dst first (t.count - first)

let sum t =
  let n = Array.length t.buf in
  let start = (t.head - t.count + n) mod n in
  let acc = ref 0. in
  for i = 0 to t.count - 1 do
    acc := !acc +. t.buf.((start + i) mod n)
  done;
  !acc

let last t =
  if t.count = 0 then invalid_arg "Ring.last: empty";
  t.buf.((t.head - 1 + Array.length t.buf) mod Array.length t.buf)

let nth_from_end t k =
  if k < 0 || k >= t.count then invalid_arg "Ring.nth_from_end: out of range";
  let n = Array.length t.buf in
  t.buf.(((t.head - 1 - k) mod n + n) mod n)

let clear t =
  t.head <- 0;
  t.count <- 0

let fold t ~init ~f =
  let n = Array.length t.buf in
  let start = (t.head - t.count + n) mod n in
  let acc = ref init in
  for i = 0 to t.count - 1 do
    acc := f !acc t.buf.((start + i) mod n)
  done;
  !acc
