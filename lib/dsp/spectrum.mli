(** Single-sided amplitude spectra of real, uniformly sampled signals, with
    frequency-indexed access.

    The elasticity metric (Eq. 3 of the paper) is a ratio of values read off
    such a spectrum: the amplitude at the pulse frequency over the largest
    amplitude strictly inside the band (f_p, 2·f_p). *)

type t = {
  amplitudes : float array; (* |X(k)| for k in 0 .. n/2 *)
  sample_rate : float;      (* Hz *)
  n : int;                  (* original signal length *)
}

type detrend =
  [ `None
  | `Mean    (** subtract the mean (kills DC leakage) *)
  | `Linear  (** subtract the least-squares line — also removes ramps, the
                 dominant contamination when the signal is a cross-traffic
                 rate mid-transition *)
  ]

(** Reusable analysis state for a fixed signal length.

    A [state] preallocates everything {!analyze} otherwise rebuilds per call —
    the window coefficients, the complex FFT buffer, the {!Fft.Plan.t}, and
    the result record with its amplitude array — so that {!analyze_into} runs
    without heap allocation.  A state owns mutable scratch: do not share one
    between domains, and note that the [t] returned by {!analyze_into} aliases
    the state's amplitude array (it is overwritten by the next call). *)
type state

(** [create_state ?window ?detrend ~n ~sample_rate ()] builds reusable state
    for signals of exactly [n] samples.  Defaults match {!analyze}.
    @raise Invalid_argument if [n <= 0] or the rate is non-positive. *)
val create_state :
  ?window:Window.kind ->
  ?detrend:detrend ->
  n:int ->
  sample_rate:Units.Freq.t ->
  unit ->
  state

(** [state_size st] is the signal length [st] was built for. *)
val state_size : state -> int

(** [analyze_into st xs] computes the spectrum of [xs] into [st]'s reused
    buffers.  The returned [t] is valid until the next [analyze_into] on the
    same state.
    @raise Invalid_argument if [Array.length xs <> state_size st]. *)
val analyze_into : state -> float array -> t

(** [analyze ?window ?detrend xs ~sample_rate] computes the spectrum of [xs].
    [detrend] defaults to [`Mean]; [window] defaults to rectangular.
    One-shot convenience over {!create_state} + {!analyze_into}.
    @raise Invalid_argument on an empty signal or non-positive rate. *)
val analyze :
  ?window:Window.kind ->
  ?detrend:detrend ->
  float array ->
  sample_rate:Units.Freq.t ->
  t

(** [bin_width s] is the frequency spacing between adjacent bins, in Hz. *)
val bin_width : t -> float

(** [bin_of_freq s f] is the index of the bin nearest to [f] Hz, clamped to
    the valid range. *)
val bin_of_freq : t -> float -> int

(** [freq_of_bin s k] is the centre frequency of bin [k]. *)
val freq_of_bin : t -> int -> float

(** [amplitude_at s f] is the amplitude of the bin nearest [f]. *)
val amplitude_at : t -> float -> float

(** [band_max s ~lo ~hi] is the largest amplitude over bins whose centre
    frequency lies strictly inside the open interval [(lo, hi)]; [0.] if the
    interval contains no bin. *)
val band_max : t -> lo:float -> hi:float -> float

(** [dominant s ~above] is [(freq, amplitude)] of the largest bin with centre
    frequency strictly greater than [above] (use [~above:0.] to skip DC). *)
val dominant : t -> above:float -> float * float
