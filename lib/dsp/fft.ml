let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* The largest representable power of two is max_int/2 + 1 (= 2^61 on 64-bit);
   doubling past it overflows and the search would never terminate. *)
let max_power_of_two = (max_int / 2) + 1

let next_power_of_two n =
  if n > max_power_of_two then
    invalid_arg "Fft.next_power_of_two: no representable power of two >= n";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let pi = 4.0 *. atan 1.0

(* Bit-reversal permutation, then iterative butterflies.  Twiddles are
   recomputed per stage with the recurrence trick to stay allocation-free. *)
let radix2 ?(inverse = false) (b : Cbuf.t) =
  let n = Cbuf.length b in
  if not (is_power_of_two n) then
    invalid_arg "Fft.radix2: length must be a power of two";
  let re = b.Cbuf.re and im = b.Cbuf.im in
  (* bit reversal *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) and ti = im.(i) in
      re.(i) <- re.(!j);
      im.(i) <- im.(!j);
      re.(!j) <- tr;
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* butterflies *)
  let sign = if inverse then 1.0 else -1.0 in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = sign *. 2.0 *. pi /. float_of_int !len in
    let wstep_re = cos theta and wstep_im = sin theta in
    let i = ref 0 in
    while !i < n do
      let w_re = ref 1.0 and w_im = ref 0.0 in
      for k = !i to !i + half - 1 do
        let k2 = k + half in
        let tr = (re.(k2) *. !w_re) -. (im.(k2) *. !w_im) in
        let ti = (re.(k2) *. !w_im) +. (im.(k2) *. !w_re) in
        re.(k2) <- re.(k) -. tr;
        im.(k2) <- im.(k) -. ti;
        re.(k) <- re.(k) +. tr;
        im.(k) <- im.(k) +. ti;
        let nw_re = (!w_re *. wstep_re) -. (!w_im *. wstep_im) in
        let nw_im = (!w_re *. wstep_im) +. (!w_im *. wstep_re) in
        w_re := nw_re;
        w_im := nw_im
      done;
      i := !i + !len
    done;
    len := !len * 2
  done;
  if inverse then Cbuf.scale b (1.0 /. float_of_int n)

(* --- plans ----------------------------------------------------------------- *)

module Plan = struct
  (* Precomputed tables for one power-of-two size: the bit-reversal
     permutation and every stage's twiddle factors (forward convention;
     the inverse conjugates at use).  Stage [len = 2^s] stores its
     [half = len/2] twiddles at offset [half - 1], so the flat arrays hold
     exactly [n - 1] entries. *)
  type pow2 = {
    p_n : int;
    bitrev : int array;
    tw_re : float array;
    tw_im : float array;
  }

  type bluestein_tables = {
    m_plan : pow2;              (* inner power-of-two plan, size m >= 2n-1 *)
    chirp_re : float array;     (* forward chirp exp(-i·pi·q/n), length n *)
    chirp_im : float array;
    filt_fwd : Cbuf.t;          (* FFT of the chirp filter, forward variant *)
    filt_inv : Cbuf.t;          (* same for the inverse transform *)
    scratch : Cbuf.t;           (* length m, reused by every execute *)
  }

  type kind =
    | Pow2 of pow2
    | Bluestein of bluestein_tables

  type t = {
    n : int;
    kind : kind;
  }

  let make_pow2 n =
    let bits =
      let b = ref 0 and v = ref n in
      while !v > 1 do
        incr b;
        v := !v lsr 1
      done;
      !b
    in
    let bitrev =
      Array.init n (fun i ->
          let j = ref 0 and x = ref i in
          for _ = 1 to bits do
            j := (!j lsl 1) lor (!x land 1);
            x := !x lsr 1
          done;
          !j)
    in
    let tw_re = Array.make (max 0 (n - 1)) 1.0 in
    let tw_im = Array.make (max 0 (n - 1)) 0.0 in
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let off = half - 1 in
      for k = 0 to half - 1 do
        let theta = -2.0 *. pi *. float_of_int k /. float_of_int !len in
        tw_re.(off + k) <- cos theta;
        tw_im.(off + k) <- sin theta
      done;
      len := !len * 2
    done;
    { p_n = n; bitrev; tw_re; tw_im }

  (* In-place table-driven radix-2: no trigonometry, no allocation. *)
  let exec_pow2 p ~inverse (b : Cbuf.t) =
    let n = p.p_n in
    let re = b.Cbuf.re and im = b.Cbuf.im in
    let bitrev = p.bitrev in
    for i = 0 to n - 1 do
      let j = bitrev.(i) in
      if i < j then begin
        let tr = re.(i) and ti = im.(i) in
        re.(i) <- re.(j);
        im.(i) <- im.(j);
        re.(j) <- tr;
        im.(j) <- ti
      end
    done;
    let sign = if inverse then -1.0 else 1.0 in
    let tw_re = p.tw_re and tw_im = p.tw_im in
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let off = half - 1 in
      let i = ref 0 in
      while !i < n do
        for k = 0 to half - 1 do
          let w_re = tw_re.(off + k) in
          let w_im = sign *. tw_im.(off + k) in
          let k1 = !i + k in
          let k2 = k1 + half in
          let tr = (re.(k2) *. w_re) -. (im.(k2) *. w_im) in
          let ti = (re.(k2) *. w_im) +. (im.(k2) *. w_re) in
          re.(k2) <- re.(k1) -. tr;
          im.(k2) <- im.(k1) -. ti;
          re.(k1) <- re.(k1) +. tr;
          im.(k1) <- im.(k1) +. ti
        done;
        i := !i + !len
      done;
      len := !len * 2
    done;
    if inverse then Cbuf.scale b (1.0 /. float_of_int n)
  [@@alloc_free]

  let make_bluestein n =
    let m = next_power_of_two ((2 * n) - 1) in
    let m_plan = make_pow2 m in
    let chirp_re = Array.make n 0. and chirp_im = Array.make n 0. in
    for i = 0 to n - 1 do
      (* i² mod 2n avoids precision loss for large i *)
      let q = float_of_int (i * i mod (2 * n)) in
      let theta = -.pi *. q /. float_of_int n in
      chirp_re.(i) <- cos theta;
      chirp_im.(i) <- sin theta
    done;
    (* Chirp filter spectra.  The forward transform convolves with
       conj(chirp); the inverse transform's chirp is conj(chirp), so its
       filter is the chirp itself. *)
    let filter im_sign =
      let c = Cbuf.create m in
      Cbuf.set c 0 chirp_re.(0) (im_sign *. chirp_im.(0));
      for i = 1 to n - 1 do
        Cbuf.set c i chirp_re.(i) (im_sign *. chirp_im.(i));
        Cbuf.set c (m - i) chirp_re.(i) (im_sign *. chirp_im.(i))
      done;
      exec_pow2 m_plan ~inverse:false c;
      c
    in
    { m_plan; chirp_re; chirp_im; filt_fwd = filter (-1.); filt_inv = filter 1.;
      scratch = Cbuf.create m }

  let create n =
    if n <= 0 then invalid_arg "Fft.Plan.create: size must be positive";
    let kind =
      if is_power_of_two n then Pow2 (make_pow2 n) else Bluestein (make_bluestein n)
    in
    { n; kind }

  let size t = t.n

  let exec_bluestein bt ~inverse n (b : Cbuf.t) =
    (* the inverse chirp is the conjugate of the stored forward chirp *)
    let csign = if inverse then -1.0 else 1.0 in
    let chirp_re = bt.chirp_re and chirp_im = bt.chirp_im in
    let a = bt.scratch in
    let m = Cbuf.length a in
    let are = a.Cbuf.re and aim = a.Cbuf.im in
    let bre = b.Cbuf.re and bim = b.Cbuf.im in
    Array.fill are 0 m 0.;
    Array.fill aim 0 m 0.;
    for i = 0 to n - 1 do
      let xr = bre.(i) and xi = bim.(i) in
      let cr = chirp_re.(i) and ci = csign *. chirp_im.(i) in
      are.(i) <- (xr *. cr) -. (xi *. ci);
      aim.(i) <- (xr *. ci) +. (xi *. cr)
    done;
    exec_pow2 bt.m_plan ~inverse:false a;
    let filt = if inverse then bt.filt_inv else bt.filt_fwd in
    let fre = filt.Cbuf.re and fim = filt.Cbuf.im in
    for i = 0 to m - 1 do
      let ar = are.(i) and ai = aim.(i) in
      are.(i) <- (ar *. fre.(i)) -. (ai *. fim.(i));
      aim.(i) <- (ar *. fim.(i)) +. (ai *. fre.(i))
    done;
    exec_pow2 bt.m_plan ~inverse:true a;
    for i = 0 to n - 1 do
      let ar = are.(i) and ai = aim.(i) in
      let cr = chirp_re.(i) and ci = csign *. chirp_im.(i) in
      bre.(i) <- (ar *. cr) -. (ai *. ci);
      bim.(i) <- (ar *. ci) +. (ai *. cr)
    done;
    if inverse then Cbuf.scale b (1.0 /. float_of_int n)
  [@@alloc_free]

  let execute ?(inverse = false) t (b : Cbuf.t) =
    if Cbuf.length b <> t.n then
      invalid_arg "Fft.Plan.execute: buffer length does not match plan size";
    Nimbus_trace.Span.enter Fft;
    (match t.kind with
    | Pow2 p -> exec_pow2 p ~inverse b
    | Bluestein bt -> exec_bluestein bt ~inverse t.n b);
    Nimbus_trace.Span.leave Fft
  [@@alloc_free]
end

(* Bluestein re-expresses an N-point DFT as a convolution, evaluated with two
   power-of-two FFTs of size >= 2N-1.  Chirp: w(n) = exp(-i·pi·n²/N). *)
let bluestein ?(inverse = false) (b : Cbuf.t) =
  let n = Cbuf.length b in
  if n = 0 then invalid_arg "Fft.bluestein: empty buffer";
  if is_power_of_two n then begin
    let c = Cbuf.copy b in
    radix2 ~inverse c;
    c
  end
  else begin
    let sign = if inverse then 1.0 else -1.0 in
    let m = next_power_of_two ((2 * n) - 1) in
    let chirp_re = Array.make n 0. and chirp_im = Array.make n 0. in
    for i = 0 to n - 1 do
      (* i² mod 2n avoids precision loss for large i *)
      let q = float_of_int (i * i mod (2 * n)) in
      let theta = sign *. pi *. q /. float_of_int n in
      chirp_re.(i) <- cos theta;
      chirp_im.(i) <- sin theta
    done;
    let a = Cbuf.create m in
    for i = 0 to n - 1 do
      let xr = b.Cbuf.re.(i) and xi = b.Cbuf.im.(i) in
      Cbuf.set a i
        ((xr *. chirp_re.(i)) -. (xi *. chirp_im.(i)))
        ((xr *. chirp_im.(i)) +. (xi *. chirp_re.(i)))
    done;
    let c = Cbuf.create m in
    Cbuf.set c 0 chirp_re.(0) (-.chirp_im.(0));
    for i = 1 to n - 1 do
      Cbuf.set c i chirp_re.(i) (-.chirp_im.(i));
      Cbuf.set c (m - i) chirp_re.(i) (-.chirp_im.(i))
    done;
    radix2 a;
    radix2 c;
    for i = 0 to m - 1 do
      Cbuf.mul a i c.Cbuf.re.(i) c.Cbuf.im.(i)
    done;
    radix2 ~inverse:true a;
    let out = Cbuf.create n in
    for i = 0 to n - 1 do
      let ar = a.Cbuf.re.(i) and ai = a.Cbuf.im.(i) in
      Cbuf.set out i
        ((ar *. chirp_re.(i)) -. (ai *. chirp_im.(i)))
        ((ar *. chirp_im.(i)) +. (ai *. chirp_re.(i)))
    done;
    if inverse then Cbuf.scale out (1.0 /. float_of_int n);
    out
  end

let transform ?(inverse = false) b =
  if is_power_of_two (Cbuf.length b) then begin
    let c = Cbuf.copy b in
    radix2 ~inverse c;
    c
  end
  else bluestein ~inverse b

let dft ?(inverse = false) (b : Cbuf.t) =
  let n = Cbuf.length b in
  let sign = if inverse then 1.0 else -1.0 in
  let out = Cbuf.create n in
  for k = 0 to n - 1 do
    let sum_re = ref 0.0 and sum_im = ref 0.0 in
    for i = 0 to n - 1 do
      let theta = sign *. 2.0 *. pi *. float_of_int (k * i) /. float_of_int n in
      let wr = cos theta and wi = sin theta in
      sum_re := !sum_re +. ((b.Cbuf.re.(i) *. wr) -. (b.Cbuf.im.(i) *. wi));
      sum_im := !sum_im +. ((b.Cbuf.re.(i) *. wi) +. (b.Cbuf.im.(i) *. wr))
    done;
    Cbuf.set out k !sum_re !sum_im
  done;
  if inverse then Cbuf.scale out (1.0 /. float_of_int n);
  out

let real_amplitudes xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let spec = transform (Cbuf.of_real xs) in
    Array.init ((n / 2) + 1) (fun k -> Cbuf.magnitude spec k)
  end
