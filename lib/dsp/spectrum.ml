type t = {
  amplitudes : float array;
  sample_rate : float;
  n : int;
}

type detrend =
  [ `None
  | `Mean
  | `Linear
  ]

type state = {
  st_n : int;
  st_detrend : detrend;
  coeffs : float array;
  buf : Cbuf.t;
  plan : Fft.Plan.t;
  result : t;
}

let create_state ?(window = Window.Rectangular) ?(detrend = `Mean) ~n
    ~sample_rate () =
  let rate = Units.Freq.to_hz sample_rate in
  if n <= 0 then invalid_arg "Spectrum.create_state: n <= 0";
  if rate <= 0. then invalid_arg "Spectrum.create_state: sample_rate <= 0";
  {
    st_n = n;
    st_detrend = detrend;
    coeffs = Window.coefficients window n;
    buf = Cbuf.create n;
    plan = Fft.Plan.create n;
    result = { amplitudes = Array.make ((n / 2) + 1) 0.; sample_rate = rate; n };
  }

let state_size st = st.st_n

let analyze_into st xs =
  let n = st.st_n in
  if Array.length xs <> n then
    invalid_arg "Spectrum.analyze_into: signal length <> state size";
  Nimbus_trace.Span.enter Spectrum;
  (* The detrended sample is xs.(i) - intercept - slope*i; computing the two
     coefficients first lets the fill loop below run without a scratch copy. *)
  let intercept = ref 0. and slope = ref 0. in
  (match st.st_detrend with
  | `None -> ()
  | `Mean ->
      let s = ref 0. in
      for i = 0 to n - 1 do
        s := !s +. xs.(i)
      done;
      intercept := !s /. float_of_int n
  | `Linear ->
      if n < 2 then begin
        let s = ref 0. in
        for i = 0 to n - 1 do
          s := !s +. xs.(i)
        done;
        intercept := !s /. float_of_int n
      end
      else begin
        (* least-squares line over index i = 0 .. n-1 *)
        let nf = float_of_int n in
        let sx = nf *. (nf -. 1.) /. 2. in
        let sxx = nf *. (nf -. 1.) *. ((2. *. nf) -. 1.) /. 6. in
        let sy = ref 0. and sxy = ref 0. in
        for i = 0 to n - 1 do
          let y = xs.(i) in
          sy := !sy +. y;
          sxy := !sxy +. (float_of_int i *. y)
        done;
        let denom = (nf *. sxx) -. (sx *. sx) in
        slope := ((nf *. !sxy) -. (sx *. !sy)) /. denom;
        intercept := (!sy -. (!slope *. sx)) /. nf
      end);
  let b = !intercept and a = !slope in
  let re = st.buf.Cbuf.re and im = st.buf.Cbuf.im in
  let coeffs = st.coeffs in
  for i = 0 to n - 1 do
    re.(i) <- (xs.(i) -. b -. (a *. float_of_int i)) *. coeffs.(i);
    im.(i) <- 0.
  done;
  Fft.Plan.execute st.plan st.buf;
  let amps = st.result.amplitudes in
  for k = 0 to n / 2 do
    amps.(k) <- Float.hypot re.(k) im.(k)
  done;
  Nimbus_trace.Span.leave Spectrum;
  st.result
[@@alloc_free]

let analyze ?(window = Window.Rectangular) ?(detrend = `Mean) xs ~sample_rate =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Spectrum.analyze: empty signal";
  if Units.Freq.to_hz sample_rate <= 0. then
    invalid_arg "Spectrum.analyze: sample_rate <= 0";
  let st = create_state ~window ~detrend ~n ~sample_rate () in
  analyze_into st xs

let bin_width s = s.sample_rate /. float_of_int s.n

let bin_of_freq s f =
  let k = int_of_float (Float.round (f /. bin_width s)) in
  let top = Array.length s.amplitudes - 1 in
  if k < 0 then 0 else if k > top then top else k

let freq_of_bin s k = float_of_int k *. bin_width s

let amplitude_at s f = s.amplitudes.(bin_of_freq s f)

let band_max s ~lo ~hi =
  let w = bin_width s in
  let top = Array.length s.amplitudes - 1 in
  let best = ref 0.0 in
  for k = 0 to top do
    let f = float_of_int k *. w in
    if f > lo && f < hi && s.amplitudes.(k) > !best then best := s.amplitudes.(k)
  done;
  !best

let dominant s ~above =
  let w = bin_width s in
  let top = Array.length s.amplitudes - 1 in
  let best_k = ref (-1) and best = ref neg_infinity in
  for k = 0 to top do
    let f = float_of_int k *. w in
    if f > above && s.amplitudes.(k) > !best then begin
      best := s.amplitudes.(k);
      best_k := k
    end
  done;
  if !best_k < 0 then (0., 0.) else (freq_of_bin s !best_k, !best)
