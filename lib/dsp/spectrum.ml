type t = {
  amplitudes : float array;
  sample_rate : float;
  n : int;
}

type detrend =
  [ `None
  | `Mean
  | `Linear
  ]

let remove_mean xs =
  let n = Array.length xs in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  Array.map (fun x -> x -. mean) xs

let remove_line xs =
  let n = Array.length xs in
  if n < 2 then remove_mean xs
  else begin
    (* least-squares line over index i = 0 .. n-1 *)
    let nf = float_of_int n in
    let sx = nf *. (nf -. 1.) /. 2. in
    let sxx = nf *. (nf -. 1.) *. ((2. *. nf) -. 1.) /. 6. in
    let sy = ref 0. and sxy = ref 0. in
    Array.iteri
      (fun i y ->
        sy := !sy +. y;
        sxy := !sxy +. (float_of_int i *. y))
      xs;
    let denom = (nf *. sxx) -. (sx *. sx) in
    let slope = ((nf *. !sxy) -. (sx *. !sy)) /. denom in
    let intercept = (!sy -. (slope *. sx)) /. nf in
    Array.mapi (fun i y -> y -. intercept -. (slope *. float_of_int i)) xs
  end

let analyze ?(window = Window.Rectangular) ?(detrend = `Mean) xs ~sample_rate =
  let sample_rate = Units.Freq.to_hz sample_rate in
  let n = Array.length xs in
  if n = 0 then invalid_arg "Spectrum.analyze: empty signal";
  if sample_rate <= 0. then invalid_arg "Spectrum.analyze: sample_rate <= 0";
  let xs =
    match detrend with
    | `None -> Array.copy xs
    | `Mean -> remove_mean xs
    | `Linear -> remove_line xs
  in
  let xs = Window.apply window xs in
  { amplitudes = Fft.real_amplitudes xs; sample_rate; n }

let bin_width s = s.sample_rate /. float_of_int s.n

let bin_of_freq s f =
  let k = int_of_float (Float.round (f /. bin_width s)) in
  let top = Array.length s.amplitudes - 1 in
  if k < 0 then 0 else if k > top then top else k

let freq_of_bin s k = float_of_int k *. bin_width s

let amplitude_at s f = s.amplitudes.(bin_of_freq s f)

let band_max s ~lo ~hi =
  let w = bin_width s in
  let top = Array.length s.amplitudes - 1 in
  let best = ref 0.0 in
  for k = 0 to top do
    let f = float_of_int k *. w in
    if f > lo && f < hi && s.amplitudes.(k) > !best then best := s.amplitudes.(k)
  done;
  !best

let dominant s ~above =
  let w = bin_width s in
  let top = Array.length s.amplitudes - 1 in
  let best_k = ref (-1) and best = ref neg_infinity in
  for k = 0 to top do
    let f = float_of_int k *. w in
    if f > above && s.amplitudes.(k) > !best then begin
      best := s.amplitudes.(k);
      best_k := k
    end
  done;
  if !best_k < 0 then (0., 0.) else (freq_of_bin s !best_k, !best)
