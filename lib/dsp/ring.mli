(** Fixed-capacity ring buffer of floats.

    Holds the sliding time series the detector transforms: the cross-traffic
    estimate ẑ sampled every 10 ms over the trailing FFT window. *)

type t

(** [create n] holds the most recent [n] samples.
    @raise Invalid_argument if [n <= 0]. *)
val create : int -> t

(** [capacity t]. *)
val capacity : t -> int

(** [count t] is the number of samples currently stored ([<= capacity]). *)
val count : t -> int

(** [is_full t] holds when [count t = capacity t]. *)
val is_full : t -> bool

(** [push t x] appends [x], evicting the oldest sample when full. *)
val push : t -> float -> unit

(** [to_array t] is the stored samples in chronological order. *)
val to_array : t -> float array

(** [blit_to t dst] copies the stored samples in chronological order into
    [dst.(0 .. count t - 1)] without allocating.
    @raise Invalid_argument if [dst] is shorter than [count t]. *)
val blit_to : t -> float array -> unit

(** [sum t] is the sum of the stored samples, without allocating. *)
val sum : t -> float

(** [last t] is the most recent sample. @raise Invalid_argument when empty. *)
val last : t -> float

(** [nth_from_end t k] is the sample pushed [k] steps ago ([k = 0] is the most
    recent). @raise Invalid_argument when out of range. *)
val nth_from_end : t -> int -> float

(** [clear t] discards all samples. *)
val clear : t -> unit

(** [fold t ~init ~f] folds over stored samples in chronological order. *)
val fold : t -> init:'a -> f:('a -> float -> 'a) -> 'a
