type t = {
  re : float array;
  im : float array;
}

let create n = { re = Array.make n 0.; im = Array.make n 0. }

let length b = Array.length b.re

let of_real xs =
  { re = Array.copy xs; im = Array.make (Array.length xs) 0. }

let copy b = { re = Array.copy b.re; im = Array.copy b.im }

let fill_zero b =
  Array.fill b.re 0 (Array.length b.re) 0.;
  Array.fill b.im 0 (Array.length b.im) 0.

let get b i = (b.re.(i), b.im.(i))

let set b i re im =
  b.re.(i) <- re;
  b.im.(i) <- im
[@@alloc_free]

let mul b i re im =
  let br = b.re.(i) and bi = b.im.(i) in
  b.re.(i) <- (br *. re) -. (bi *. im);
  b.im.(i) <- (br *. im) +. (bi *. re)
[@@alloc_free]

let magnitude b i = Float.hypot b.re.(i) b.im.(i)

let magnitudes b = Array.init (length b) (fun i -> magnitude b i)

let scale b k =
  for i = 0 to length b - 1 do
    b.re.(i) <- b.re.(i) *. k;
    b.im.(i) <- b.im.(i) *. k
  done
[@@alloc_free]

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  Array.blit src.re src_pos dst.re dst_pos len;
  Array.blit src.im src_pos dst.im dst_pos len
