(** Fast Fourier transforms.

    Three kernels are provided:
    - an iterative, in-place radix-2 Cooley–Tukey transform for power-of-two
      lengths;
    - a Bluestein (chirp-z) transform for arbitrary lengths, built on the
      radix-2 kernel — the elasticity detector uses 500-point windows so the
      5 Hz pulse frequency lands exactly on a bin;
    - a naive O(n²) DFT used as a test oracle.

    Forward transforms use the usual engineering convention
    [X(k) = Σ x(n)·exp(−2πi·kn/N)]; the inverse divides by [N]. *)

(** [is_power_of_two n] holds iff [n] is a positive power of two. *)
val is_power_of_two : int -> bool

(** [max_power_of_two] is the largest power of two representable as an
    [int] ([max_int/2 + 1]). *)
val max_power_of_two : int

(** [next_power_of_two n] is the least power of two [>= max n 1].
    @raise Invalid_argument if [n > max_power_of_two] (doubling past it
    would overflow and never terminate). *)
val next_power_of_two : int -> int

(** Precomputed transform plans.

    A plan caches everything size-dependent the kernels otherwise recompute
    per call — the bit-reversal permutation, every stage's twiddle factors,
    and (for non-power-of-two sizes) the Bluestein chirp tables, the FFT of
    the chirp filter, and the padded convolution scratch buffer — so that
    {!Plan.execute} performs no allocation and no trigonometry.

    A plan owns mutable scratch state: one plan must not be executed from
    two domains concurrently.  Give each detector (or each domain) its own
    plan. *)
module Plan : sig
  type t

  (** [create n] builds a plan for transforms of [n] complex points.
      @raise Invalid_argument if [n <= 0]. *)
  val create : int -> t

  (** [size t] is the transform length the plan was built for. *)
  val size : t -> int

  (** [execute ?inverse t b] transforms [b] in place (same convention as
      {!transform}), allocation-free.
      @raise Invalid_argument if [Cbuf.length b <> size t]. *)
  val execute : ?inverse:bool -> t -> Cbuf.t -> unit
end

(** [radix2 ?inverse b] transforms [b] in place.
    @raise Invalid_argument if the length of [b] is not a power of two. *)
val radix2 : ?inverse:bool -> Cbuf.t -> unit

(** [bluestein ?inverse b] returns the transform of [b] (any length [>= 1]).
    The input buffer is not modified. *)
val bluestein : ?inverse:bool -> Cbuf.t -> Cbuf.t

(** [transform ?inverse b] picks radix-2 when the length is a power of two
    (operating on a copy) and Bluestein otherwise. *)
val transform : ?inverse:bool -> Cbuf.t -> Cbuf.t

(** [dft ?inverse b] is the quadratic-time reference transform. *)
val dft : ?inverse:bool -> Cbuf.t -> Cbuf.t

(** [real_amplitudes xs] is the single-sided amplitude spectrum of the real
    signal [xs]: bin 0 holds [|mean|·n/n], and each bin [k] of the result is
    [|X(k)|] for [k] in [0 .. n/2]. Length of the result is [n/2 + 1]. *)
val real_amplitudes : float array -> float array
