(** Goertzel's algorithm: the DFT magnitude of one frequency bin in O(n) time
    with O(1) state.

    Watcher flows use this to test whether the pulser is oscillating at the
    competitive-mode frequency or the delay-mode frequency without paying for
    a full FFT. *)

(** [power xs ~sample_rate ~freq] is [|X(f)|²] of the real signal [xs]
    evaluated at the (possibly non-integer) bin corresponding to [freq].
    @raise Invalid_argument if [sample_rate <= 0.] or [xs] is empty. *)
val power : float array -> sample_rate:Units.Freq.t -> freq:float -> float

(** [magnitude xs ~sample_rate ~freq] is [sqrt (power xs ~sample_rate ~freq)],
    directly comparable with the moduli returned by {!Fft.real_amplitudes}
    when [freq] is an exact bin. *)
val magnitude :
  float array -> sample_rate:Units.Freq.t -> freq:float -> float

(** A bank of sliding-DFT recurrences tracking a fixed set of DFT bins of
    the {e windowed, detrended} signal — the amplitudes agree with
    {!Spectrum.analyze_into} over the same window, taper, and detrend mode
    to floating-point rounding (periodic in-place resynchronisation bounds
    recurrence drift).  A push is O(bins) and an amplitude readout is O(1)
    in the window size: this is what makes the elasticity detector's
    steady-state tick O(1) instead of one FFT per tick. *)
module Bank : sig
  type t

  (** [create ~window ~taper ~detrend ~bins ()] tracks the DFT bins [bins]
      (indices into the length-[window] DFT, each in [[0, window/2]]) of
      the last [window] samples, tapered and detrended exactly as
      {!Spectrum.create_state} with the same parameters.  Cost per push:
      [2*order + 1] complex recurrences per bin (order 0 rectangular,
      1 Hann/Hamming, 2 Blackman).
      @raise Invalid_argument if [window <= 0] or a bin is out of range. *)
  val create :
    window:int ->
    taper:Window.kind ->
    detrend:[ `None | `Mean | `Linear ] ->
    bins:int array ->
    unit ->
    t

  (** [push t x] slides the window one sample forward. Allocation-free. *)
  val push : t -> float -> unit

  (** [load t xs] resets the window to [xs] (chronological, length exactly
      [window]) and recomputes all state — used to (re)tune a detector from
      its ring after a pulse-frequency change. *)
  val load : t -> float array -> unit

  (** [filled t] holds once [window] samples are present (pushes before
      that analyse an implicitly zero-padded window). *)
  val filled : t -> bool

  (** [nbins t] is the number of tracked bins. *)
  val nbins : t -> int

  (** [bin t slot] is the DFT bin index tracked at [slot]
      (position in [create]'s [bins] array). *)
  val bin : t -> int -> int

  (** [amplitude t slot] is the current [|X_k|] of the bin at [slot],
      matching [Spectrum.analyze_into]'s amplitude for the same bin up to
      rounding. Allocation-free. *)
  val amplitude : t -> int -> float
end

(** Incremental evaluator over a fixed-size window: push samples one at a
    time, query the magnitude of the configured frequency at any point.
    Recomputes lazily from an internal ring, so pushes are O(1) and queries
    are O(window). *)
module Sliding : sig
  type t

  (** [create ~window ~sample_rate ~freq] watches [freq] (Hz) over the last
      [window] samples taken at [sample_rate] (Hz). *)
  val create : window:int -> sample_rate:Units.Freq.t -> freq:float -> t

  (** [push t x] appends sample [x], evicting the oldest when full. *)
  val push : t -> float -> unit

  (** [filled t] holds once [window] samples have been pushed. *)
  val filled : t -> bool

  (** [magnitude t] is the current single-bin DFT modulus over the window
      contents (zero-padded if not yet filled). *)
  val magnitude : t -> float
end
