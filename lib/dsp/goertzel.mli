(** Goertzel's algorithm: the DFT magnitude of one frequency bin in O(n) time
    with O(1) state.

    Watcher flows use this to test whether the pulser is oscillating at the
    competitive-mode frequency or the delay-mode frequency without paying for
    a full FFT. *)

(** [power xs ~sample_rate ~freq] is [|X(f)|²] of the real signal [xs]
    evaluated at the (possibly non-integer) bin corresponding to [freq].
    @raise Invalid_argument if [sample_rate <= 0.] or [xs] is empty. *)
val power : float array -> sample_rate:Units.Freq.t -> freq:float -> float

(** [magnitude xs ~sample_rate ~freq] is [sqrt (power xs ~sample_rate ~freq)],
    directly comparable with the moduli returned by {!Fft.real_amplitudes}
    when [freq] is an exact bin. *)
val magnitude :
  float array -> sample_rate:Units.Freq.t -> freq:float -> float

(** Incremental evaluator over a fixed-size window: push samples one at a
    time, query the magnitude of the configured frequency at any point.
    Recomputes lazily from an internal ring, so pushes are O(1) and queries
    are O(window). *)
module Sliding : sig
  type t

  (** [create ~window ~sample_rate ~freq] watches [freq] (Hz) over the last
      [window] samples taken at [sample_rate] (Hz). *)
  val create : window:int -> sample_rate:Units.Freq.t -> freq:float -> t

  (** [push t x] appends sample [x], evicting the oldest when full. *)
  val push : t -> float -> unit

  (** [filled t] holds once [window] samples have been pushed. *)
  val filled : t -> bool

  (** [magnitude t] is the current single-bin DFT modulus over the window
      contents (zero-padded if not yet filled). *)
  val magnitude : t -> float
end
