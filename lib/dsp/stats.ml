let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty input";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.

let minimum xs =
  if Array.length xs = 0 then invalid_arg "Stats.minimum: empty input";
  Array.fold_left min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then invalid_arg "Stats.maximum: empty input";
  Array.fold_left max xs.(0) xs

let cdf_points xs ~points =
  if Array.length xs = 0 || points <= 0 then [||]
  else
    Array.init points (fun i ->
        let p = float_of_int (i + 1) /. float_of_int points in
        (percentile xs (p *. 100.), p))

let correlation xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.correlation: length mismatch";
  if n < 2 then invalid_arg "Stats.correlation: need at least 2 samples";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if Float.equal !sxx 0.0 || Float.equal !syy 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

let cross_correlation xs ys ~max_lag =
  let n = min (Array.length xs) (Array.length ys) in
  if n < 2 then invalid_arg "Stats.cross_correlation: need at least 2 samples";
  let lag k =
    let len = n - k in
    if len < 2 then 0.0
    else begin
      let a = Array.sub xs 0 len in
      let b = Array.sub ys k len in
      correlation a b
    end
  in
  Array.init (max_lag + 1) lag

let relative_error ~actual ~expected =
  if Float.equal expected 0.0 then
    if Float.equal actual 0.0 then 0.0 else infinity
  else Float.abs (actual -. expected) /. Float.abs expected
