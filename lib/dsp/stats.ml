(* NaN is the repo-wide "not measured" sentinel, so the descriptive
   statistics treat it as an absent sample rather than letting it poison a
   whole aggregate: [mean]/[variance] skip NaNs (and stay [nan] when nothing
   remains), while the order statistics raise on empty and all-NaN input —
   there is no meaningful percentile of an empty sample. *)

let count_non_nan xs =
  Array.fold_left (fun k x -> if Float.is_nan x then k else k + 1) 0 xs

let mean xs =
  let n = count_non_nan xs in
  if n = 0 then nan
  else
    Array.fold_left (fun a x -> if Float.is_nan x then a else a +. x) 0.0 xs
    /. float_of_int n

let variance xs =
  let n = count_non_nan xs in
  if n = 0 then nan
  else begin
    let m = mean xs in
    let acc =
      Array.fold_left
        (fun a x -> if Float.is_nan x then a else a +. ((x -. m) *. (x -. m)))
        0.0 xs
    in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

(* the non-NaN samples of [xs], sorted ascending; [what] names the caller in
   the error messages *)
let sorted_non_nan what xs =
  if Array.length xs = 0 then invalid_arg (what ^ ": empty input");
  let kept = Array.of_list (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list xs)) in
  if Array.length kept = 0 then invalid_arg (what ^ ": all-NaN input");
  Array.sort compare kept;
  kept

let percentile_sorted sorted p =
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let percentile xs p =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  percentile_sorted (sorted_non_nan "Stats.percentile" xs) p

let median xs = percentile xs 50.

let minimum xs =
  if Array.length xs = 0 then invalid_arg "Stats.minimum: empty input";
  Array.fold_left min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then invalid_arg "Stats.maximum: empty input";
  Array.fold_left max xs.(0) xs

let cdf_points xs ~points =
  if Array.length xs = 0 || count_non_nan xs = 0 || points <= 0 then [||]
  else begin
    let sorted = sorted_non_nan "Stats.cdf_points" xs in
    Array.init points (fun i ->
        let p = float_of_int (i + 1) /. float_of_int points in
        (percentile_sorted sorted (p *. 100.), p))
  end

let correlation xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.correlation: length mismatch";
  if n < 2 then invalid_arg "Stats.correlation: need at least 2 samples";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if Float.equal !sxx 0.0 || Float.equal !syy 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

let cross_correlation xs ys ~max_lag =
  let n = min (Array.length xs) (Array.length ys) in
  if n < 2 then invalid_arg "Stats.cross_correlation: need at least 2 samples";
  let lag k =
    let len = n - k in
    if len < 2 then 0.0
    else begin
      let a = Array.sub xs 0 len in
      let b = Array.sub ys k len in
      correlation a b
    end
  in
  Array.init (max_lag + 1) lag

let relative_error ~actual ~expected =
  if Float.equal expected 0.0 then
    if Float.equal actual 0.0 then 0.0 else infinity
  else Float.abs (actual -. expected) /. Float.abs expected

(* --- streaming accumulators ------------------------------------------------

   The fleet sweep aggregates 10^4..10^5 per-path results without
   materializing them, so its accumulators must be O(1) in sample count and
   bit-for-bit deterministic in insertion order: feeding the same sequence
   always leaves the same state, which is what lets a checkpointed resume
   reproduce an uninterrupted run's table byte-for-byte. *)

module Welford = struct
  type t = {
    mutable n : int;
    mutable mu : float;
    mutable m2 : float; (* sum of squared deviations from the running mean *)
  }

  let create () = { n = 0; mu = 0.; m2 = 0. }

  let add t x =
    if not (Float.is_finite x) then
      invalid_arg "Stats.Welford.add: non-finite sample";
    t.n <- t.n + 1;
    let d = x -. t.mu in
    t.mu <- t.mu +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.mu))

  let count t = t.n

  let mean t = if t.n = 0 then nan else t.mu

  let variance t = if t.n = 0 then nan else t.m2 /. float_of_int t.n

  let stddev t = sqrt (variance t)
end

module P2 = struct
  (* Jain & Chlamtac's P^2 algorithm: one quantile estimated with five
     markers whose heights are nudged toward their ideal positions by a
     piecewise-parabolic formula.  Exact (an order statistic) for the first
     five samples; O(1) memory and deterministic in insertion order after
     that. *)
  type t = {
    p : float; (* target quantile, in (0,1) *)
    q : float array; (* marker heights, ascending *)
    np : int array; (* actual marker positions, 1-based *)
    np' : float array; (* desired marker positions *)
    dn : float array; (* desired-position increments per sample *)
    mutable n : int; (* samples seen *)
  }

  let create p =
    if not (Float.is_finite p) || p <= 0. || p >= 1. then
      invalid_arg "Stats.P2.create: quantile outside (0,1)";
    { p;
      q = Array.make 5 0.;
      np = [| 1; 2; 3; 4; 5 |];
      np' = [| 1.; 1. +. (2. *. p); 1. +. (4. *. p); 3. +. (2. *. p); 5. |];
      dn = [| 0.; p /. 2.; p; (1. +. p) /. 2.; 1. |];
      n = 0 }

  let count t = t.n

  (* parabolic prediction of marker i moved by d (+1 or -1); the linear
     fallback is used when the parabola would leave (q.(i-1), q.(i+1)) *)
  let adjust t i d =
    let q = t.q and np = t.np in
    let fi = float_of_int in
    let qi = q.(i) in
    let parab =
      qi
      +. d
         /. fi (np.(i + 1) - np.(i - 1))
         *. (((fi (np.(i) - np.(i - 1)) +. d)
              *. (q.(i + 1) -. qi)
              /. fi (np.(i + 1) - np.(i)))
            +. ((fi (np.(i + 1) - np.(i)) -. d)
               *. (qi -. q.(i - 1))
               /. fi (np.(i) - np.(i - 1))))
    in
    let next =
      if q.(i - 1) < parab && parab < q.(i + 1) then parab
      else
        (* linear toward the neighbour in the direction of the move *)
        let j = if d > 0. then i + 1 else i - 1 in
        qi +. (d *. (q.(j) -. qi) /. fi (np.(j) - np.(i)))
    in
    q.(i) <- next;
    np.(i) <- np.(i) + int_of_float d

  let add t x =
    if not (Float.is_finite x) then
      invalid_arg "Stats.P2.add: non-finite sample";
    t.n <- t.n + 1;
    if t.n <= 5 then begin
      t.q.(t.n - 1) <- x;
      if t.n = 5 then Array.sort compare t.q
    end
    else begin
      let q = t.q and np = t.np and np' = t.np' in
      (* cell k: the marker interval x falls into, extremes clamped *)
      let k =
        if x < q.(0) then begin
          q.(0) <- x;
          0
        end
        else if x >= q.(4) then begin
          if x > q.(4) then q.(4) <- x;
          3
        end
        else begin
          let rec find i = if x < q.(i + 1) then i else find (i + 1) in
          find 0
        end
      in
      for i = k + 1 to 4 do
        np.(i) <- np.(i) + 1
      done;
      for i = 0 to 4 do
        np'.(i) <- np'.(i) +. t.dn.(i)
      done;
      for i = 1 to 3 do
        let d = np'.(i) -. float_of_int np.(i) in
        if
          (d >= 1. && np.(i + 1) - np.(i) > 1)
          || (d <= -1. && np.(i - 1) - np.(i) < -1)
        then adjust t i (if d >= 1. then 1. else -1.)
      done
    end

  let quantile t =
    if t.n = 0 then nan
    else if t.n <= 5 then begin
      let sorted = Array.sub t.q 0 t.n in
      Array.sort compare sorted;
      percentile_sorted sorted (t.p *. 100.)
    end
    else t.q.(2)
end
