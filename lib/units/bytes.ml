type t = float

let bytes x = x
[@@unit_ctor "bytes"]

let of_int n = float_of_int n
[@@unit_ctor "bytes"]

let of_bits b = b /. 8.
[@@unit_ctor "bytes"]

let kib x = x *. 1024.
[@@unit_ctor "bytes"]

let mib x = x *. 1048576.
[@@unit_ctor "bytes"]

let of_float x = x
[@@unit_ctor "bytes"]

let to_float x = x
[@@unit_accessor "bytes"]

let to_bits x = x *. 8.
[@@unit_accessor "bytes"]

let to_int_trunc x = int_of_float x
[@@unit_accessor "bytes"]

let zero = 0.

let is_finite = Float.is_finite

let add = ( +. )

let sub = ( -. )

let scale k x = k *. x

let ratio a b = a /. b

let min = Float.min

let max = Float.max

let compare = Float.compare

let equal = Float.equal

let ( < ) a b = Float.compare a b < 0

let ( <= ) a b = Float.compare a b <= 0

let ( > ) a b = Float.compare a b > 0

let ( >= ) a b = Float.compare a b >= 0

let pp fmt x = Format.fprintf fmt "%gB" x
