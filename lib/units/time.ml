type t = float

let secs x = x
[@@unit_ctor "time"]

let ms x = x *. 1e-3
[@@unit_ctor "time"]

let us x = x *. 1e-6
[@@unit_ctor "time"]

let mins x = x *. 60.
[@@unit_ctor "time"]

let secs_exn x =
  if not (Float.is_finite x) then
    invalid_arg "Time.secs_exn: non-finite seconds";
  x
[@@unit_ctor "time"]

let of_float x = x
[@@unit_ctor "time"]

let to_secs x = x
[@@unit_accessor "time"]

let to_ms x = x *. 1e3
[@@unit_accessor "time"]

let to_float x = x
[@@unit_accessor "time"]

let zero = 0.

let unknown = Float.nan

let is_known x = not (Float.is_nan x)

let is_finite = Float.is_finite

let add = ( +. )

let sub = ( -. )

let neg x = -.x

let abs = Float.abs

let scale k x = k *. x

let ratio a b = a /. b

let min = Float.min

let max = Float.max

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)

let compare = Float.compare

let equal = Float.equal

let ( < ) a b = Float.compare a b < 0

let ( <= ) a b = Float.compare a b <= 0

let ( > ) a b = Float.compare a b > 0

let ( >= ) a b = Float.compare a b >= 0

let pp fmt x = Format.fprintf fmt "%gs" x
