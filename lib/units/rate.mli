(** Data rates in bits per second — link rates µ, S(t)/R(t), ẑ, pacing.

    Phantom-typed [private float]; see {!Time} for the conventions. Rates
    are signed: pulse modulation (§3.4) adds a signed rate {e offset} to the
    base rate, so no positivity is baked into the type. Use {!bps_exn} where
    a configured rate must be finite and positive (e.g. a link rate).

    The cross-unit operators encode Eq. 2's dimensional structure once, so
    call sites stop hand-rolling [bytes·8/dt]:
    [of_volume v ~per:dt] (a measured rate), [volume r ~over:dt] (credit
    accrual), and [tx_time r v] (serialisation delay). *)

type t = private float

(** {1 Constructors} *)

val bps : float -> t

val kbps : float -> t

val mbps : float -> t

val gbps : float -> t

(** [bps_exn x] is [bps x].
    @raise Invalid_argument if [x] is not finite or [x <= 0.]. *)
val bps_exn : float -> t

val of_float : float -> t

(** {1 Accessors} *)

val to_bps : t -> float

val to_mbps : t -> float

val to_float : t -> float

(** {1 Constants and predicates} *)

val zero : t

(** [unknown] is the NaN sentinel ("no rate measured yet"). *)
val unknown : t

val is_known : t -> bool

val is_finite : t -> bool

(** {1 Arithmetic} *)

val add : t -> t -> t

val sub : t -> t -> t

val neg : t -> t

val scale : float -> t -> t

(** [ratio a b] is the dimensionless quotient [a/b] (e.g. [S/µ]). *)
val ratio : t -> t -> float

val min : t -> t -> t

val max : t -> t -> t

val clamp : lo:t -> hi:t -> t -> t

(** {1 Cross-unit} *)

(** [of_volume v ~per:dt] is the rate moving volume [v] in time [dt]. *)
val of_volume : Bytes.t -> per:Time.t -> t

(** [volume r ~over:dt] is the volume moved at [r] during [dt]. *)
val volume : t -> over:Time.t -> Bytes.t

(** [tx_time r v] is the serialisation delay of [v] at rate [r]. *)
val tx_time : t -> Bytes.t -> Time.t

(** {1 Comparison} *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
