(** Data volumes in bytes.

    Phantom-typed [private float] (volumes turn fractional the moment they
    meet a rate, e.g. pacing credit); see {!Time} for the conventions.
    Integral packet/window byte counts convert in via {!of_int} and out via
    the truncating {!to_int_trunc}. *)

type t = private float

(** {1 Constructors} *)

val bytes : float -> t

val of_int : int -> t

(** [of_bits b] is [b/8] bytes. *)
val of_bits : float -> t

val kib : float -> t

val mib : float -> t

val of_float : float -> t

(** {1 Accessors} *)

val to_float : t -> float

(** [to_bits v] is [8·v]. *)
val to_bits : t -> float

(** [to_int_trunc v] truncates toward zero. *)
val to_int_trunc : t -> int

(** {1 Constants and predicates} *)

val zero : t

val is_finite : t -> bool

(** {1 Arithmetic} *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val ratio : t -> t -> float

val min : t -> t -> t

val max : t -> t -> t

(** {1 Comparison} *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
