(** Durations and absolute simulation timestamps, in seconds.

    [t] is a [private float]: reading one back as a float is a free upcast
    ([(x :> float)]), but every construction must name its unit
    ([Time.secs 5.], [Time.ms 10.]), so a value in milliseconds or hertz can
    never silently flow into an API expecting seconds.

    The codebase's "not yet measured" sentinel is NaN; {!unknown} and
    {!is_known} make that convention explicit. Plain constructors are total
    (NaN is a legal payload); the [_exn] variant rejects non-finite input for
    configuration boundaries. *)

type t = private float

(** {1 Constructors} *)

val secs : float -> t

val ms : float -> t

val us : float -> t

val mins : float -> t

(** [secs_exn x] is [secs x]. @raise Invalid_argument if [x] is not finite. *)
val secs_exn : float -> t

val of_float : float -> t

(** {1 Accessors} *)

val to_secs : t -> float

val to_ms : t -> float

val to_float : t -> float

(** {1 Constants and predicates} *)

val zero : t

(** [unknown] is the NaN sentinel ("no sample yet"). *)
val unknown : t

(** [is_known x] is [not (Float.is_nan (x :> float))]. *)
val is_known : t -> bool

val is_finite : t -> bool

(** {1 Arithmetic} *)

val add : t -> t -> t

val sub : t -> t -> t

val neg : t -> t

val abs : t -> t

(** [scale k x] is the duration [k·x]. *)
val scale : float -> t -> t

(** [ratio a b] is the dimensionless quotient [a/b]. *)
val ratio : t -> t -> float

val min : t -> t -> t

val max : t -> t -> t

val clamp : lo:t -> hi:t -> t -> t

(** {1 Comparison — monomorphic, so the float-compare lint stays quiet} *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
