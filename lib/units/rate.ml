type t = float

let bps x = x
[@@unit_ctor "rate"]

let kbps x = x *. 1e3
[@@unit_ctor "rate"]

let mbps x = x *. 1e6
[@@unit_ctor "rate"]

let gbps x = x *. 1e9
[@@unit_ctor "rate"]

let bps_exn x =
  if not (Float.is_finite x) || Float.compare x 0. <= 0 then
    invalid_arg "Rate.bps_exn: rate must be finite and positive";
  x
[@@unit_ctor "rate"]

let of_float x = x
[@@unit_ctor "rate"]

let to_bps x = x
[@@unit_accessor "rate"]

let to_mbps x = x /. 1e6
[@@unit_accessor "rate"]

let to_float x = x
[@@unit_accessor "rate"]

let zero = 0.

let unknown = Float.nan

let is_known x = not (Float.is_nan x)

let is_finite = Float.is_finite

let add = ( +. )

let sub = ( -. )

let neg x = -.x

let scale k x = k *. x

let ratio a b = a /. b

let min = Float.min

let max = Float.max

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)

let of_volume v ~per = Bytes.to_bits v /. Time.to_secs per
[@@unit_conv "bytes / time = rate"]

let volume r ~over = Bytes.of_bits (r *. Time.to_secs over)
[@@unit_conv "rate x time = bytes"]

let tx_time r v = Time.secs (Bytes.to_bits v /. r)
[@@unit_conv "bytes / rate = time"]

let compare = Float.compare

let equal = Float.equal

let ( < ) a b = Float.compare a b < 0

let ( <= ) a b = Float.compare a b <= 0

let ( > ) a b = Float.compare a b > 0

let ( >= ) a b = Float.compare a b >= 0

let pp fmt x =
  if Float.abs x >= 1e6 then
    Format.fprintf fmt "%gMbit/s" (x /. 1e6)
  else Format.fprintf fmt "%gbit/s" x
