(** Frequencies in hertz — pulse fundamentals, FFT bins, sample rates.

    Phantom-typed [private float]; see {!Time} for the conventions (free
    upcast to [float], NaN as the "unknown" sentinel, [_exn] constructors
    checked for configuration boundaries). *)

type t = private float

(** {1 Constructors} *)

val hz : float -> t

(** [hz_exn x] is [hz x].
    @raise Invalid_argument if [x] is not finite or [x <= 0.]. *)
val hz_exn : float -> t

val of_float : float -> t

(** {1 Accessors} *)

val to_hz : t -> float

val to_float : t -> float

(** {1 Constants and predicates} *)

val unknown : t

val is_known : t -> bool

(** {1 Arithmetic} *)

val scale : float -> t -> t

(** [ratio a b] is the dimensionless quotient [a/b]. *)
val ratio : t -> t -> float

val min : t -> t -> t

val max : t -> t -> t

(** {1 Cross-unit} *)

(** [period f] is [1/f] seconds. *)
val period : t -> Time.t

(** [of_period dt] is [1/dt] Hz. *)
val of_period : Time.t -> t

(** {1 Comparison} *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
