type t = float

let hz x = x
[@@unit_ctor "freq"]

let hz_exn x =
  if not (Float.is_finite x) || Float.compare x 0. <= 0 then
    invalid_arg "Freq.hz_exn: frequency must be finite and positive";
  x
[@@unit_ctor "freq"]

let of_float x = x
[@@unit_ctor "freq"]

let to_hz x = x
[@@unit_accessor "freq"]

let to_float x = x
[@@unit_accessor "freq"]

let unknown = Float.nan

let is_known x = not (Float.is_nan x)

let scale k x = k *. x

let ratio a b = a /. b

let min = Float.min

let max = Float.max

let period f = Time.secs (1. /. f)
[@@unit_conv "1/freq = time"]

let of_period dt = 1. /. Time.to_secs dt
[@@unit_conv "1/time = freq"]

let compare = Float.compare

let equal = Float.equal

let ( < ) a b = Float.compare a b < 0

let ( <= ) a b = Float.compare a b <= 0

let ( > ) a b = Float.compare a b > 0

let ( >= ) a b = Float.compare a b >= 0

let pp fmt x = Format.fprintf fmt "%gHz" x
