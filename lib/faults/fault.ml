module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Time = Units.Time
module Rate = Units.Rate

type event =
  | Burst_loss of {
      at : Time.t;
      p_enter : float;
      p_exit : float;
      loss_good : float;
      loss_bad : float;
    }
  | Loss_off of Time.t
  | Rate_step of {
      at : Time.t;
      rate : Rate.t;
    }
  | Outage of {
      at : Time.t;
      duration : Time.t;
    }
  | Delay_step of {
      at : Time.t;
      extra : Time.t;
    }
  | Delay_jitter of {
      at : Time.t;
      until : Time.t;
      amp : Time.t;
      period : Time.t;
    }
  | Ack_loss of {
      at : Time.t;
      p : float;
    }
  | Ack_loss_off of Time.t
  | Kill_flow of {
      at : Time.t;
      index : int;
    }

type plan = event list

let event_time = function
  | Burst_loss { at; _ }
  | Rate_step { at; _ }
  | Outage { at; _ }
  | Delay_step { at; _ }
  | Delay_jitter { at; _ }
  | Ack_loss { at; _ }
  | Kill_flow { at; _ }
  | Loss_off at
  | Ack_loss_off at ->
    at

let to_string plan =
  let f = Printf.sprintf in
  let clause = function
    | Burst_loss { at; p_enter; p_exit; loss_good; loss_bad } ->
      f "burst@%g:%g/%g/%g/%g" (Time.to_secs at) p_enter p_exit loss_good
        loss_bad
    | Loss_off at -> f "lossoff@%g" (Time.to_secs at)
    | Rate_step { at; rate } ->
      f "step@%g:%g" (Time.to_secs at) (Rate.to_mbps rate)
    | Outage { at; duration } ->
      f "flap@%g:%g" (Time.to_secs at) (Time.to_secs duration)
    | Delay_step { at; extra } ->
      f "delay@%g:%g" (Time.to_secs at) (Time.to_ms extra)
    | Delay_jitter { at; until; amp; period } ->
      f "jitter@%g-%g:%g/%g" (Time.to_secs at) (Time.to_secs until)
        (Time.to_ms amp) (Time.to_ms period)
    | Ack_loss { at; p } -> f "acks@%g:%g" (Time.to_secs at) p
    | Ack_loss_off at -> f "acksoff@%g" (Time.to_secs at)
    | Kill_flow { at; index } -> f "kill@%g:%d" (Time.to_secs at) index
  in
  String.concat ";" (List.map clause plan)

(* --- spec parsing --------------------------------------------------------- *)

let ( let* ) = Result.bind

let float_param clause s =
  match float_of_string_opt (String.trim s) with
  | Some v when Float.is_finite v -> Ok v
  | _ -> Error (Printf.sprintf "fault clause %S: bad number %S" clause s)

let prob_param clause s =
  let* p = float_param clause s in
  if p < 0. || p > 1. then
    Error (Printf.sprintf "fault clause %S: probability %g not in [0,1]" clause p)
  else Ok p

let nonneg_param clause s =
  let* v = float_param clause s in
  if v < 0. then Error (Printf.sprintf "fault clause %S: negative value" clause)
  else Ok v

let parse_clause clause =
  let clause = String.trim clause in
  let* kind, rest =
    match String.index_opt clause '@' with
    | Some i ->
      Ok
        ( String.sub clause 0 i,
          String.sub clause (i + 1) (String.length clause - i - 1) )
    | None -> Error (Printf.sprintf "fault clause %S: missing '@TIME'" clause)
  in
  let time_part, params =
    match String.index_opt rest ':' with
    | Some i ->
      ( String.sub rest 0 i,
        String.split_on_char '/'
          (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, [])
  in
  let* at =
    match String.index_opt time_part '-' with
    | Some _ -> nonneg_param clause (List.hd (String.split_on_char '-' time_part))
    | None -> nonneg_param clause time_part
  in
  let span () =
    match String.split_on_char '-' time_part with
    | [ _; hi ] ->
      let* hi = nonneg_param clause hi in
      if hi <= at then
        Error (Printf.sprintf "fault clause %S: empty time span" clause)
      else Ok hi
    | _ -> Error (Printf.sprintf "fault clause %S: expected TIME-TIME" clause)
  in
  let arity n =
    if List.length params = n then Ok ()
    else
      Error
        (Printf.sprintf "fault clause %S: expected %d parameter(s)" clause n)
  in
  match kind with
  | "burst" ->
    let* probs =
      match params with
      | [ pe; px; lb ] -> Ok (pe, px, "0", lb)
      | [ pe; px; lg; lb ] -> Ok (pe, px, lg, lb)
      | _ ->
        Error
          (Printf.sprintf
             "fault clause %S: burst wants PENTER/PEXIT[/LGOOD]/LBAD" clause)
    in
    let pe, px, lg, lb = probs in
    let* p_enter = prob_param clause pe in
    let* p_exit = prob_param clause px in
    let* loss_good = prob_param clause lg in
    let* loss_bad = prob_param clause lb in
    Ok
      (Burst_loss
         { at = Time.secs at; p_enter; p_exit; loss_good; loss_bad })
  | "lossoff" ->
    let* () = arity 0 in
    Ok (Loss_off (Time.secs at))
  | "step" ->
    let* () = arity 1 in
    let* mbps = nonneg_param clause (List.nth params 0) in
    Ok (Rate_step { at = Time.secs at; rate = Rate.mbps mbps })
  | "flap" ->
    let* () = arity 1 in
    let* dur = nonneg_param clause (List.nth params 0) in
    Ok (Outage { at = Time.secs at; duration = Time.secs dur })
  | "delay" ->
    let* () = arity 1 in
    let* ms = float_param clause (List.nth params 0) in
    Ok (Delay_step { at = Time.secs at; extra = Time.ms ms })
  | "jitter" ->
    let* () = arity 2 in
    let* until = span () in
    let* amp_ms = nonneg_param clause (List.nth params 0) in
    let* period_ms = nonneg_param clause (List.nth params 1) in
    if period_ms <= 0. then
      Error (Printf.sprintf "fault clause %S: period must be > 0" clause)
    else
      Ok
        (Delay_jitter
           { at = Time.secs at; until = Time.secs until; amp = Time.ms amp_ms;
             period = Time.ms period_ms })
  | "acks" ->
    let* () = arity 1 in
    let* p = prob_param clause (List.nth params 0) in
    Ok (Ack_loss { at = Time.secs at; p })
  | "acksoff" ->
    let* () = arity 0 in
    Ok (Ack_loss_off (Time.secs at))
  | "kill" ->
    let* () = arity 1 in
    (match int_of_string_opt (String.trim (List.nth params 0)) with
     | Some index when index >= 0 -> Ok (Kill_flow { at = Time.secs at; index })
     | _ ->
       Error
         (Printf.sprintf "fault clause %S: flow index must be a natural" clause))
  | other ->
    Error
      (Printf.sprintf
         "fault clause %S: unknown kind %S \
          (burst|lossoff|step|flap|delay|jitter|acks|acksoff|kill)"
         clause other)

let parse spec =
  let clauses =
    String.split_on_char ';' spec
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun c -> not (String.equal (String.trim c) ""))
  in
  if clauses = [] then Error "empty fault spec"
  else begin
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest ->
        let* ev = parse_clause c in
        go (ev :: acc) rest
    in
    go [] clauses
  end

(* --- attachment ------------------------------------------------------------ *)

module Trace = Nimbus_trace.Trace
module Tev = Nimbus_trace.Event

let iter_flows flows f = Array.iter f flows

(* every firing is recorded (at fire time, not attach time) through the
   engine's collector, so a traced run shows exactly which injected event
   preceded a detector reaction *)
let fire engine fault ~p1 ~p2 =
  let tr = Engine.trace engine in
  if Trace.want tr Tev.Fault then
    Trace.fault_fired tr
      ~now:(Time.to_secs (Engine.now engine))
      ~fault ~p1 ~p2

let attach ~engine ~bottleneck ?(flows = [||]) ~rng plan =
  List.iter
    (fun ev ->
      let at = event_time ev in
      if not (Time.is_finite at) then
        invalid_arg "Fault.attach: non-finite event time";
      match ev with
      | Kill_flow { index; _ } when index >= Array.length flows ->
        invalid_arg
          (Printf.sprintf "Fault.attach: kill targets flow %d but only %d \
                           flow(s) attached"
             index (Array.length flows))
      | _ -> ())
    plan;
  (* randomness is split off per event at attach time, in plan order, so a
     plan is deterministic for a given rng regardless of event timing *)
  List.iter
    (fun ev ->
      match ev with
      | Burst_loss { at; p_enter; p_exit; loss_good; loss_bad } ->
        let ge_rng = Rng.split rng in
        Engine.schedule_at engine at (fun () ->
            fire engine Tev.F_burst ~p1:p_enter ~p2:loss_bad;
            let ge =
              Gilbert_elliott.create ~rng:ge_rng ~p_enter ~p_exit ~loss_good
                ~loss_bad ()
            in
            Bottleneck.set_loss_model bottleneck
              (Some (fun _pkt -> Gilbert_elliott.drop ge)))
      | Loss_off at ->
        Engine.schedule_at engine at (fun () ->
            fire engine Tev.F_loss_off ~p1:0. ~p2:0.;
            Bottleneck.set_loss_model bottleneck None)
      | Rate_step { at; rate } ->
        Engine.schedule_at engine at (fun () ->
            fire engine Tev.F_rate_step ~p1:(Rate.to_mbps rate) ~p2:0.;
            Bottleneck.set_rate bottleneck rate)
      | Outage { at; duration } ->
        Engine.schedule_at engine at (fun () ->
            fire engine Tev.F_outage ~p1:(Time.to_secs duration) ~p2:0.;
            let restore = Bottleneck.rate bottleneck in
            Bottleneck.set_rate bottleneck Rate.zero;
            Engine.schedule_in engine duration (fun () ->
                Bottleneck.set_rate bottleneck restore))
      | Delay_step { at; extra } ->
        Engine.schedule_at engine at (fun () ->
            fire engine Tev.F_delay_step ~p1:(Time.to_secs extra) ~p2:0.;
            iter_flows flows (fun fl ->
                Flow.apply fl (Flow.Control.Extra_delay extra)))
      | Delay_jitter { at; until; amp; period } ->
        let jrng = Rng.split rng in
        Engine.every engine ~dt:period ~start:at ~until (fun () ->
            fire engine Tev.F_jitter ~p1:(Time.to_secs amp)
              ~p2:(Time.to_secs period);
            iter_flows flows (fun fl ->
                Flow.apply fl
                  (Flow.Control.Extra_delay
                     (Time.secs (Rng.float jrng (Time.to_secs amp))))));
        Engine.schedule_at engine until (fun () ->
            iter_flows flows (fun fl ->
                Flow.apply fl (Flow.Control.Extra_delay Time.zero)))
      | Ack_loss { at; p } ->
        let arng = Rng.split rng in
        Engine.schedule_at engine at (fun () ->
            fire engine Tev.F_ack_loss ~p1:p ~p2:0.;
            iter_flows flows (fun fl ->
                Flow.apply fl
                  (Flow.Control.Ack_loss (Some (fun () -> Rng.bool arng ~p)))))
      | Ack_loss_off at ->
        Engine.schedule_at engine at (fun () ->
            fire engine Tev.F_ack_off ~p1:0. ~p2:0.;
            iter_flows flows (fun fl ->
                Flow.apply fl (Flow.Control.Ack_loss None)))
      | Kill_flow { at; index } ->
        Engine.schedule_at engine at (fun () ->
            fire engine Tev.F_kill ~p1:(float_of_int index) ~p2:0.;
            Flow.apply flows.(index) Flow.Control.Stop))
    plan
