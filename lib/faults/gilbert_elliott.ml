module Rng = Nimbus_sim.Rng

type t = {
  loss_rng : Rng.t;
  state_rng : Rng.t;
  p_enter : float;
  p_exit : float;
  loss_good : float;
  loss_bad : float;
  mutable bad : bool;
  mutable offered : int;
  mutable dropped : int;
}

let check_p name p =
  if not (Float.is_finite p) || p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Gilbert_elliott: %s not in [0, 1]" name)

let create ~rng ?(start_bad = false) ~p_enter ~p_exit ~loss_good ~loss_bad ()
    =
  check_p "p_enter" p_enter;
  check_p "p_exit" p_exit;
  check_p "loss_good" loss_good;
  check_p "loss_bad" loss_bad;
  (* the state chain consumes a separate stream so that when the two states
     have identical loss probabilities the drop decisions are *exactly* the
     Bernoulli stream a uniform random_loss would draw from [rng] *)
  let state_rng = Rng.split rng in
  { loss_rng = rng; state_rng; p_enter; p_exit; loss_good; loss_bad;
    bad = start_bad; offered = 0; dropped = 0 }

let drop t =
  let p = if t.bad then t.loss_bad else t.loss_good in
  let lost = Rng.bool t.loss_rng ~p in
  (if t.bad then begin
     if Rng.bool t.state_rng ~p:t.p_exit then t.bad <- false
   end
   else if Rng.bool t.state_rng ~p:t.p_enter then t.bad <- true);
  t.offered <- t.offered + 1;
  if lost then t.dropped <- t.dropped + 1;
  lost

let in_bad t = t.bad

let offered t = t.offered

let dropped t = t.dropped

let observed_loss t =
  if t.offered = 0 then nan
  else float_of_int t.dropped /. float_of_int t.offered

let stationary_loss ~p_enter ~p_exit ~loss_good ~loss_bad =
  check_p "p_enter" p_enter;
  check_p "p_exit" p_exit;
  check_p "loss_good" loss_good;
  check_p "loss_bad" loss_bad;
  let denom = p_enter +. p_exit in
  if denom <= 0. then
    invalid_arg "Gilbert_elliott.stationary_loss: p_enter + p_exit = 0";
  let pi_bad = p_enter /. denom in
  ((1. -. pi_bad) *. loss_good) +. (pi_bad *. loss_bad)
