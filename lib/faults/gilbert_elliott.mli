(** Gilbert–Elliott two-state burst-loss process.

    A Markov chain alternates between a [good] and a [bad] state; each
    offered packet is dropped with the state's loss probability, then the
    chain takes one transition step ([p_enter]: good→bad, [p_exit]:
    bad→good). The stationary bad-state occupancy is
    [p_enter / (p_enter + p_exit)], so the long-run loss rate converges to
    {!stationary_loss} — a property the test suite checks.

    Degeneracy: with [loss_good = loss_bad = p] the process is uniform loss
    with probability [p]. The state chain draws from a stream [split] off
    [rng] at {!create} time, so in that case the drop decisions are
    bit-for-bit the Bernoulli stream [Rng.bool rng ~p] — identical to the
    bottleneck's existing [random_loss]. *)

type t

(** [create ~rng ~p_enter ~p_exit ~loss_good ~loss_bad ()] builds an
    injector. [rng] is consumed for loss draws; the state chain uses a
    stream split off it. [start_bad] defaults to [false].
    @raise Invalid_argument if any probability is outside [0, 1]. *)
val create :
  rng:Nimbus_sim.Rng.t ->
  ?start_bad:bool ->
  p_enter:float ->
  p_exit:float ->
  loss_good:float ->
  loss_bad:float ->
  unit ->
  t

(** [drop t] decides one packet's fate and advances the chain. *)
val drop : t -> bool

(** [in_bad t] is the current chain state. *)
val in_bad : t -> bool

(** [offered t] / [dropped t] — cumulative decision counts. *)
val offered : t -> int

val dropped : t -> int

(** [observed_loss t] is [dropped / offered] ([nan] before any decision). *)
val observed_loss : t -> float

(** [stationary_loss ~p_enter ~p_exit ~loss_good ~loss_bad] is the long-run
    expected loss rate.
    @raise Invalid_argument if a probability is outside [0, 1] or the chain
    cannot move ([p_enter + p_exit = 0]). *)
val stationary_loss :
  p_enter:float -> p_exit:float -> loss_good:float -> loss_bad:float -> float
