(** Scheduled fault injection for the §8 robustness scenarios.

    A {!plan} is a declarative list of timed fault events; {!attach} wires it
    onto a live engine/bottleneck/flow set by scheduling the state changes,
    so any experiment — or the CLI via [--faults SPEC] — can run under
    adverse conditions: Gilbert–Elliott burst loss, link-rate steps,
    link flaps (µ → 0 outages with restore), propagation-delay steps and
    jitter, ACK-path loss, and flow kills (pulser death).

    Spec syntax, clauses joined with [';'] or [',']; times/durations in
    seconds, delays in milliseconds:
    {v
      burst@T:PENTER/PEXIT[/LGOOD]/LBAD   Gilbert–Elliott loss from T on
      lossoff@T                           remove the loss process
      step@T:MBPS                         set the link rate
      flap@T:DUR                          outage: µ=0 for DUR, then restore
      delay@T:MS                          extra one-way delay step
      jitter@T1-T2:AMPMS/PERIODMS         delay jitter in [0, AMP) per period
      acks@T:P                            drop each ACK with probability P
      acksoff@T                           remove ACK loss
      kill@T:IDX                          stop attached flow number IDX
    v}
    Example: ["burst@30:0.05/0.4/0.3;flap@50:2;kill@20:0"]. *)

type event =
  | Burst_loss of {
      at : Units.Time.t;
      p_enter : float;
      p_exit : float;
      loss_good : float;
      loss_bad : float;
    }  (** install a {!Gilbert_elliott} loss process on the data path *)
  | Loss_off of Units.Time.t
  | Rate_step of {
      at : Units.Time.t;
      rate : Units.Rate.t;
    }
  | Outage of {
      at : Units.Time.t;
      duration : Units.Time.t;
    }  (** µ → 0 at [at]; the rate observed at that instant is restored *)
  | Delay_step of {
      at : Units.Time.t;
      extra : Units.Time.t;
    }
  | Delay_jitter of {
      at : Units.Time.t;
      until : Units.Time.t;
      amp : Units.Time.t;
      period : Units.Time.t;
    }  (** uniform extra delay in [0, amp) re-drawn every [period] *)
  | Ack_loss of {
      at : Units.Time.t;
      p : float;
    }
  | Ack_loss_off of Units.Time.t
  | Kill_flow of {
      at : Units.Time.t;
      index : int;
    }  (** stop the [index]-th attached flow — e.g. the pulser *)

type plan = event list

(** [event_time ev] is when the event fires. *)
val event_time : event -> Units.Time.t

(** [parse spec] reads the CLI syntax above. *)
val parse : string -> (plan, string) result

(** [to_string plan] renders a plan back into spec syntax. *)
val to_string : plan -> string

(** [attach ~engine ~bottleneck ~flows ~rng plan] schedules every event.
    Delay and ACK events apply to every flow in [flows]; [Kill_flow]
    indexes into it. Randomness (burst loss, jitter, ACK loss) is split off
    [rng] per event in plan order, so a plan is deterministic given the rng
    seed. Events must lie at or after the engine's current time.
    @raise Invalid_argument on non-finite event times or a kill index
    outside [flows]. *)
val attach :
  engine:Nimbus_sim.Engine.t ->
  bottleneck:Nimbus_sim.Bottleneck.t ->
  ?flows:Nimbus_cc.Flow.t array ->
  rng:Nimbus_sim.Rng.t ->
  plan ->
  unit
