module Time = Units.Time
module B = Units.Bytes

type t = {
  mss : float;
  alpha : float; (* segments *)
  beta : float; (* segments *)
  mutable cwnd : float; (* bytes *)
  mutable next_update : float;
  mutable in_slow_start : bool;
  mutable ss_grow_toggle : bool;
  mutable last_cut : float;
}

let create ?(mss = 1500) ?(initial_cwnd = 4) ?(alpha = 2.) ?(beta = 4.) () =
  { mss = float_of_int mss; alpha; beta;
    cwnd = float_of_int (mss * initial_cwnd); next_update = 0.;
    in_slow_start = true; ss_grow_toggle = false; last_cut = neg_infinity }

let cwnd_bytes t = B.bytes t.cwnd

let reset_cwnd t bytes =
  t.cwnd <- Float.max (2. *. t.mss) (B.to_float bytes);
  t.in_slow_start <- false

let on_ack t (a : Cc_types.ack) =
  let now = Time.to_secs a.now in
  let srtt = Time.to_secs a.srtt in
  (* slow start doubles every other RTT *)
  if t.in_slow_start && t.ss_grow_toggle then
    t.cwnd <- t.cwnd +. float_of_int a.bytes;
  if now >= t.next_update then begin
    t.next_update <- now +. srtt;
    let rtt = Float.max srtt 1e-4 in
    let base = Float.max (Time.to_secs a.min_rtt) 1e-4 in
    let diff_segments = t.cwnd *. (1. -. (base /. rtt)) /. t.mss in
    if t.in_slow_start then begin
      t.ss_grow_toggle <- not t.ss_grow_toggle;
      if diff_segments > 1. then t.in_slow_start <- false
    end
    else if diff_segments < t.alpha then t.cwnd <- t.cwnd +. t.mss
    else if diff_segments > t.beta then
      t.cwnd <- Float.max (2. *. t.mss) (t.cwnd -. t.mss)
  end

let on_loss t (l : Cc_types.loss) =
  let now = Time.to_secs l.now in
  t.in_slow_start <- false;
  match l.kind with
  | `Timeout -> t.cwnd <- 2. *. t.mss
  | `Dupack ->
    if now > t.last_cut +. 0.1 then begin
      t.cwnd <- Float.max (2. *. t.mss) (t.cwnd /. 2.);
      t.last_cut <- now
    end

let cc t =
  { Cc_types.name = "vegas";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_tick = None;
    cwnd = (fun () -> B.bytes t.cwnd);
    pacing_rate = (fun () -> None) }

let make ?mss ?initial_cwnd ?alpha ?beta () =
  cc (create ?mss ?initial_cwnd ?alpha ?beta ())
