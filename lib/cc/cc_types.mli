(** The interface between the flow engine and congestion-control algorithms.

    An algorithm is a record of closures over its private state. The engine
    feeds it per-ACK and per-loss events plus a 10 ms tick carrying rate
    estimates (mirroring the CCP reporting loop the paper's implementation
    uses), and reads back a congestion window and an optional pacing rate.

    Rates, RTTs, and timestamps cross this boundary as {!Units.Rate.t} /
    {!Units.Time.t}, so an algorithm can never confuse S(t) with a duration
    or feed a window where a rate is expected. "Not yet measured" is
    [Time.unknown] / [Rate.unknown] (NaN), as in the rest of the system. *)

(** Event delivered for every acknowledged packet. *)
type ack = {
  now : Units.Time.t;
  seq : int;  (** sequence number of the acked packet *)
  bytes : int;  (** payload bytes acknowledged *)
  rtt : Units.Time.t;  (** sample from this packet *)
  min_rtt : Units.Time.t;  (** minimum observed so far *)
  srtt : Units.Time.t;  (** smoothed RTT *)
  inflight_bytes : int;  (** after this ack *)
  delivered_bytes : int;  (** cumulative *)
}

(** Loss signal. [`Dupack] approximates fast retransmit; [`Timeout] is an RTO
    where the whole window was declared lost. *)
type loss = {
  now : Units.Time.t;
  seq : int;
  bytes : int;
  inflight_bytes : int;
  kind : [ `Dupack | `Timeout ];
}

(** Periodic report. [send_rate]/[recv_rate] are S(t)/R(t) of Eq. 2: both
    measured over the same trailing window of acknowledged packets;
    [Rate.unknown] until enough packets have been acknowledged. *)
type tick = {
  now : Units.Time.t;
  send_rate : Units.Rate.t;
  recv_rate : Units.Rate.t;
  rtt : Units.Time.t;  (** latest sample; [Time.unknown] before first ack *)
  srtt : Units.Time.t;
  min_rtt : Units.Time.t;
  inflight_bytes : int;
  delivered_bytes : int;
  lost_packets : int;  (** cumulative *)
}

type t = {
  name : string;
  on_ack : ack -> unit;
  on_loss : loss -> unit;
  on_tick : (tick -> unit) option;
  cwnd : unit -> Units.Bytes.t;
      (** current window limit; [Bytes.bytes infinity] for purely rate-paced
          algorithms *)
  pacing_rate : unit -> Units.Rate.t option;
      (** [Some r] paces transmissions at [r]; [None] relies on pure ACK
          clocking against the window *)
}

(** A controller that never restricts sending; used by raw traffic sources. *)
val unconstrained : name:string -> t
