(** TCP NewReno: slow start, AIMD congestion avoidance, fast-recovery-style
    single cut per round trip. The paper's second TCP-competitive option. *)

type t

(** [create ()] is a fresh instance; [cc t] adapts it to the engine
    interface. [t] is exposed so Nimbus can reset the window on a mode
    switch.
    @param mss segment size, bytes (default 1500)
    @param initial_cwnd initial window in segments (default 10) *)
val create : ?mss:int -> ?initial_cwnd:int -> unit -> t

val cc : t -> Cc_types.t

val cwnd_bytes : t -> Units.Bytes.t

(** [reset_cwnd t bytes] forces the window and leaves slow start. *)
val reset_cwnd : t -> Units.Bytes.t -> unit

(** [make ()] is [cc (create ())]. *)
val make : ?mss:int -> ?initial_cwnd:int -> unit -> Cc_types.t
