(** TCP Vegas (Brakmo et al.): keeps the estimated backlog between [alpha]
    and [beta] segments by comparing expected and actual throughput once per
    round trip. A delay-controlling baseline in the paper's evaluation and a
    supported Nimbus delay-mode algorithm. *)

type t

val create :
  ?mss:int -> ?initial_cwnd:int -> ?alpha:float -> ?beta:float -> unit -> t

val cc : t -> Cc_types.t

val cwnd_bytes : t -> Units.Bytes.t

(** [reset_cwnd t bytes] forces the window (mode switching). *)
val reset_cwnd : t -> Units.Bytes.t -> unit

val make :
  ?mss:int -> ?initial_cwnd:int -> ?alpha:float -> ?beta:float -> unit -> Cc_types.t
