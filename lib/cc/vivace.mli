(** PCC-Vivace (Dong et al., NSDI '18), simplified: rate-based online
    learning. The sender alternates paired monitor intervals at rates
    [r·(1+ε)] and [r·(1−ε)], scores each with the Vivace utility
    [u = x^0.9 − b·x·max(0, dRTT/dt) − c·x·loss_rate] (x in Mbit/s), and
    moves the rate along the utility gradient with a confidence amplifier.

    Because updates happen on monitor-interval boundaries rather than per
    ACK, Vivace does not react within an RTT — the property behind the
    paper's Table 1 (classified inelastic at f_p = 5 Hz) and Appendix F
    (classified elastic once the pulse slows to 2 Hz). *)

type t

(** @param initial_rate starting rate (default 1 Mbit/s)
    @param epsilon probe amplitude (default 0.05) *)
val create :
  ?mss:int -> ?initial_rate:Units.Rate.t -> ?epsilon:float -> unit -> t

val cc : t -> Cc_types.t

(** [rate t] is the current base rate. *)
val rate : t -> Units.Rate.t

val make :
  ?mss:int -> ?initial_rate:Units.Rate.t -> ?epsilon:float -> unit -> Cc_types.t
