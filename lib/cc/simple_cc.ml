module Rate = Units.Rate
module B = Units.Bytes

let const_rate ~rate =
  let rate = Rate.bps_exn (Rate.to_bps rate) in
  { Cc_types.name = "cbr";
    on_ack = (fun _ -> ());
    on_loss = (fun _ -> ());
    on_tick = None;
    cwnd = (fun () -> B.bytes infinity);
    pacing_rate = (fun () -> Some rate) }

let fixed_window ?(mss = 1500) ~segments () =
  if segments <= 0 then invalid_arg "Simple_cc.fixed_window: segments <= 0";
  let cwnd = B.of_int (mss * segments) in
  { Cc_types.name = "fixed-window";
    on_ack = (fun _ -> ());
    on_loss = (fun _ -> ());
    on_tick = None;
    cwnd = (fun () -> cwnd);
    pacing_rate = (fun () -> None) }
