module Time = Units.Time
module Rate = Units.Rate
module B = Units.Bytes

type phase =
  | Startup
  | Drain
  | Probe_bw of int (* index into the gain cycle *)
  | Probe_rtt of float * phase (* end time, phase to resume *)

type t = {
  mss : float;
  mutable phase : phase;
  mutable btl_bw : float;  (* bps; windowed max *)
  bw_samples : (float * float) Queue.t; (* (time, bps) over ~10 RTT *)
  mutable rt_prop : float; (* s; windowed min *)
  rtt_samples : (float * float) Queue.t; (* (time, rtt) over 10 s *)
  mutable full_bw : float;
  mutable full_bw_count : int;
  mutable last_full_bw_check : float;
  mutable cycle_start : float;
  mutable last_probe_rtt : float;
  mutable inflight : int;
  mutable srtt : float;
  mutable filters_updated_at : float;
}

let gain_cycle = [| 1.25; 0.75; 1.; 1.; 1.; 1.; 1.; 1. |]

let startup_gain = 2.885

let create ?(mss = 1500) () =
  { mss = float_of_int mss; phase = Startup; btl_bw = 0.;
    bw_samples = Queue.create (); rt_prop = infinity;
    rtt_samples = Queue.create (); full_bw = 0.; full_bw_count = 0;
    last_full_bw_check = 0.; cycle_start = 0.; last_probe_rtt = 0.;
    inflight = 0; srtt = 0.1; filters_updated_at = neg_infinity }

let btl_bw t = Rate.bps t.btl_bw

let bdp_bytes t =
  if t.btl_bw <= 0. || not (Float.is_finite t.rt_prop) then 10. *. t.mss
  else t.btl_bw *. t.rt_prop /. 8.

let prune_before q horizon =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt q with
    | Some (at, _) when at < horizon -> ignore (Queue.pop q)
    | _ -> continue := false
  done

(* folding over the 10 s sample windows on every ACK is quadratic in rate;
   the windowed extrema move slowly, so refresh at most once per 10 ms *)
let update_filters t now =
  if now -. t.filters_updated_at >= 0.01 then begin
    t.filters_updated_at <- now;
    prune_before t.bw_samples (now -. Float.max (10. *. t.srtt) 0.5);
    prune_before t.rtt_samples (now -. 10.);
    t.btl_bw <-
      Queue.fold (fun acc (_, bw) -> Float.max acc bw) 0. t.bw_samples;
    t.rt_prop <-
      Queue.fold (fun acc (_, rtt) -> Float.min acc rtt) infinity t.rtt_samples
  end

let check_full_bw t now =
  if now -. t.last_full_bw_check > t.srtt then begin
    t.last_full_bw_check <- now;
    if t.btl_bw > t.full_bw *. 1.25 then begin
      t.full_bw <- t.btl_bw;
      t.full_bw_count <- 0
    end
    else t.full_bw_count <- t.full_bw_count + 1;
    if t.full_bw_count >= 3 then t.phase <- Drain
  end

let advance t now =
  (match t.phase with
   | Startup -> check_full_bw t now
   | Drain ->
     if float_of_int t.inflight <= bdp_bytes t then begin
       t.phase <- Probe_bw 2;
       t.cycle_start <- now
     end
   | Probe_bw i ->
     let phase_len = if Float.is_finite t.rt_prop then t.rt_prop else 0.1 in
     if now -. t.cycle_start > phase_len then begin
       t.phase <- Probe_bw ((i + 1) mod Array.length gain_cycle);
       t.cycle_start <- now
     end
   | Probe_rtt (until, resume) ->
     if now > until then begin
       t.phase <- resume;
       t.cycle_start <- now
     end);
  (* ProbeRTT every 10 s, except during startup *)
  match t.phase with
  | Startup | Drain | Probe_rtt _ -> ()
  | Probe_bw _ ->
    if now -. t.last_probe_rtt > 10. then begin
      t.last_probe_rtt <- now;
      t.phase <- Probe_rtt (now +. 0.2, t.phase)
    end

let pacing_gain t =
  match t.phase with
  | Startup -> startup_gain
  | Drain -> 1. /. startup_gain
  | Probe_bw i -> gain_cycle.(i)
  | Probe_rtt _ -> 1.

let on_ack t (a : Cc_types.ack) =
  let now = Time.to_secs a.now in
  t.srtt <- Time.to_secs a.srtt;
  t.inflight <- a.inflight_bytes;
  Queue.push (now, Time.to_secs a.rtt) t.rtt_samples;
  update_filters t now;
  advance t now

let on_tick t (tk : Cc_types.tick) =
  let now = Time.to_secs tk.now in
  if Time.is_known tk.srtt then t.srtt <- Time.to_secs tk.srtt;
  t.inflight <- tk.inflight_bytes;
  if Rate.is_known tk.recv_rate then
    Queue.push (now, Rate.to_bps tk.recv_rate) t.bw_samples;
  update_filters t now;
  advance t now

let cwnd t =
  match t.phase with
  | Probe_rtt _ -> 4. *. t.mss
  | Startup | Drain -> Float.max (startup_gain *. bdp_bytes t) (10. *. t.mss)
  | Probe_bw _ -> Float.max (2. *. bdp_bytes t) (4. *. t.mss)

let pacing t =
  if t.btl_bw <= 0. then None
  else Some (Rate.bps (pacing_gain t *. t.btl_bw))

let cc t =
  { Cc_types.name = "bbr";
    on_ack = on_ack t;
    on_loss = (fun _ -> ()); (* BBR v1 ignores individual losses *)
    on_tick = Some (on_tick t);
    cwnd = (fun () -> B.bytes (cwnd t));
    pacing_rate = (fun () -> pacing t) }

let make ?mss () = cc (create ?mss ())
