(** Copa (Arun & Balakrishnan, NSDI '18).

    Default mode targets a sending rate of [1/(δ·d_q)] packets per second,
    where [d_q] is the standing queueing delay, steering the window with a
    doubling velocity parameter. The mode detector expects the queue to
    become nearly empty at least once every 5 RTTs when only Copa flows
    share the link; when that fails it switches to a TCP-competitive mode
    that performs AIMD on [1/δ].

    The paper's §8.2 and Appendix D probe exactly the failure modes of this
    detector (high inelastic load; slowly ramping high-RTT elastic flows), so
    the empty-queue rule is implemented faithfully. *)

type t

(** [create ()] is a fresh Copa instance.
    @param switching enable the competitive-mode detector (default [true]);
           [false] pins Copa to its default mode, the configuration Nimbus
           can adopt as a delay-control algorithm
    @param delta the default-mode δ (default 0.5) *)
val create : ?mss:int -> ?switching:bool -> ?delta:float -> unit -> t

val cc : t -> Cc_types.t

val cwnd_bytes : t -> Units.Bytes.t

(** [in_competitive_mode t] — classification ground signal for the accuracy
    experiments comparing Copa's detector with Nimbus's (§8.2). *)
val in_competitive_mode : t -> bool

(** [reset_cwnd t bytes] forces the window (mode switching support). *)
val reset_cwnd : t -> Units.Bytes.t -> unit

val make : ?mss:int -> ?switching:bool -> ?delta:float -> unit -> Cc_types.t
