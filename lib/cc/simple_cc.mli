(** Degenerate controllers used as cross traffic and in tests. *)

(** [const_rate ~rate] paces at a fixed rate forever — a reliable
    constant-bit-rate stream ("Const. stream" in Table 1).
    @raise Invalid_argument if [rate] is not finite and positive. *)
val const_rate : rate:Units.Rate.t -> Cc_types.t

(** [fixed_window ~segments] keeps a constant window — elastic and
    ACK-clocked without any adaptation ("Fixed window" in Table 1). *)
val fixed_window : ?mss:int -> segments:int -> unit -> Cc_types.t
