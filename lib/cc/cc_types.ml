type ack = {
  now : Units.Time.t;
  seq : int;
  bytes : int;
  rtt : Units.Time.t;
  min_rtt : Units.Time.t;
  srtt : Units.Time.t;
  inflight_bytes : int;
  delivered_bytes : int;
}

type loss = {
  now : Units.Time.t;
  seq : int;
  bytes : int;
  inflight_bytes : int;
  kind : [ `Dupack | `Timeout ];
}

type tick = {
  now : Units.Time.t;
  send_rate : Units.Rate.t;
  recv_rate : Units.Rate.t;
  rtt : Units.Time.t;
  srtt : Units.Time.t;
  min_rtt : Units.Time.t;
  inflight_bytes : int;
  delivered_bytes : int;
  lost_packets : int;
}

type t = {
  name : string;
  on_ack : ack -> unit;
  on_loss : loss -> unit;
  on_tick : (tick -> unit) option;
  cwnd : unit -> Units.Bytes.t;
  pacing_rate : unit -> Units.Rate.t option;
}

let unconstrained ~name =
  { name;
    on_ack = (fun _ -> ());
    on_loss = (fun _ -> ());
    on_tick = None;
    cwnd = (fun () -> Units.Bytes.bytes infinity);
    pacing_rate = (fun () -> None) }
