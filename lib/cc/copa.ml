module Time = Units.Time
module B = Units.Bytes

(* RTT bookkeeping: Copa needs
   - rtt_min: minimum over a long (10 s) window — the propagation delay;
   - rtt_standing: minimum over the last srtt/2 — the current standing queue;
   - rtt_max: maximum over the long window — used by the nearly-empty test. *)

type sample = {
  at : float;
  rtt : float;
}

type t = {
  mss : float;
  switching : bool;
  default_delta : float;
  mutable delta : float;
  mutable cwnd : float; (* bytes *)
  mutable velocity : float;
  mutable direction : int; (* +1 up, -1 down, 0 unknown *)
  mutable last_direction_update : float;
  mutable cwnd_at_last_direction : float;
  mutable competitive : bool;
  mutable last_nearly_empty : float;
  samples : sample Queue.t; (* long window *)
  mutable srtt : float;
  mutable in_slow_start : bool;
  mutable last_loss_reaction : float;
  mutable last_delta_increase : float;
  mutable stats_cached_at : float;
  mutable stats_cache : float * float * float;
}

let long_window = 10.

let create ?(mss = 1500) ?(switching = true) ?(delta = 0.5) () =
  { mss = float_of_int mss; switching; default_delta = delta; delta;
    cwnd = float_of_int (mss * 10); velocity = 1.; direction = 0;
    last_direction_update = 0.; cwnd_at_last_direction = 0.;
    competitive = false; last_nearly_empty = 0.; samples = Queue.create ();
    srtt = 0.1; in_slow_start = true; last_loss_reaction = neg_infinity;
    last_delta_increase = 0.; stats_cached_at = neg_infinity;
    stats_cache = (infinity, 0., infinity) }

let cwnd_bytes t = B.bytes t.cwnd

let in_competitive_mode t = t.competitive

let reset_cwnd t bytes =
  t.cwnd <- Float.max (2. *. t.mss) (B.to_float bytes);
  t.in_slow_start <- false

let prune t now =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.samples with
    | Some s when now -. s.at > long_window -> ignore (Queue.pop t.samples)
    | _ -> continue := false
  done

(* scanning the whole 10 s sample window on every ACK is quadratic in rate;
   the stats move slowly, so recompute at most once per 10 ms *)
let rec rtt_stats t now =
  if now -. t.stats_cached_at < 0.01 then t.stats_cache
  else compute_rtt_stats t now

and compute_rtt_stats t now =
  prune t now;
  let rtt_min = ref infinity and rtt_max = ref 0. and standing = ref infinity in
  let standing_horizon = now -. Float.max (t.srtt /. 2.) 0.005 in
  Queue.iter
    (fun s ->
      if s.rtt < !rtt_min then rtt_min := s.rtt;
      if s.rtt > !rtt_max then rtt_max := s.rtt;
      if s.at >= standing_horizon && s.rtt < !standing then standing := s.rtt)
    t.samples;
  let result = (!rtt_min, !rtt_max, !standing) in
  t.stats_cached_at <- now;
  t.stats_cache <- result;
  result

let update_mode t now =
  if t.switching then begin
    (* queue must be nearly empty at least once every 5 RTTs *)
    let was_competitive = t.competitive in
    t.competitive <- now -. t.last_nearly_empty > 5. *. t.srtt;
    if t.competitive && not was_competitive then begin
      t.delta <- t.default_delta;
      t.last_delta_increase <- now
    end;
    if not t.competitive then t.delta <- t.default_delta
  end

let on_ack t (a : Cc_types.ack) =
  let now = Time.to_secs a.now in
  t.srtt <- Time.to_secs a.srtt;
  Queue.push { at = now; rtt = Time.to_secs a.rtt } t.samples;
  let rtt_min, rtt_max, standing = rtt_stats t now in
  let dq = standing -. rtt_min in
  let max_dq = rtt_max -. rtt_min in
  if max_dq <= 1e-6 || dq < 0.1 *. max_dq then t.last_nearly_empty <- now;
  update_mode t now;
  (* competitive mode: AIMD on 1/delta, one increase per RTT *)
  if t.competitive && now -. t.last_delta_increase > t.srtt then begin
    let inv = (1. /. t.delta) +. 1. in
    t.delta <- 1. /. inv;
    t.last_delta_increase <- now
  end;
  let rtt = Float.max t.srtt 1e-4 in
  let current_rate = t.cwnd /. rtt in
  let target_rate =
    if dq <= 1e-6 then infinity else t.mss /. (t.delta *. dq)
  in
  if t.in_slow_start then begin
    t.cwnd <- t.cwnd +. float_of_int a.bytes;
    if current_rate > target_rate then t.in_slow_start <- false
  end
  else begin
    (* velocity: doubles each RTT the window keeps moving one way *)
    if now -. t.last_direction_update > t.srtt then begin
      let dir = if t.cwnd > t.cwnd_at_last_direction then 1 else -1 in
      if dir = t.direction then t.velocity <- Float.min (t.velocity *. 2.) 1e6
      else begin
        t.velocity <- 1.;
        t.direction <- dir
      end;
      t.last_direction_update <- now;
      t.cwnd_at_last_direction <- t.cwnd
    end;
    let step =
      t.velocity *. t.mss *. float_of_int a.bytes /. (t.delta *. t.cwnd)
    in
    if current_rate < target_rate then t.cwnd <- t.cwnd +. step
    else t.cwnd <- Float.max (2. *. t.mss) (t.cwnd -. step)
  end

let on_loss t (l : Cc_types.loss) =
  let now = Time.to_secs l.now in
  t.in_slow_start <- false;
  match l.kind with
  | `Timeout -> t.cwnd <- 2. *. t.mss
  | `Dupack ->
    if now > t.last_loss_reaction +. t.srtt then begin
      t.last_loss_reaction <- now;
      if t.competitive then begin
        (* competitive mode reacts through delta alone: halve 1/delta
           (double delta, bounded by the default); the window keeps
           following the target-rate rule, so the standing queue persists
           and the detector can stay stuck -- the paper's App. D behaviour *)
        let inv = Float.max 2. (1. /. t.delta /. 2.) in
        t.delta <- Float.min t.default_delta (1. /. inv)
      end
      else t.cwnd <- Float.max (2. *. t.mss) (t.cwnd *. 0.7)
    end

let cc t =
  { Cc_types.name = (if t.switching then "copa" else "copa-default");
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_tick = None;
    cwnd = (fun () -> B.bytes t.cwnd);
    pacing_rate = (fun () -> None) }

let make ?mss ?switching ?delta () = cc (create ?mss ?switching ?delta ())
