(** BBR v1 (Cardwell et al.), simplified: windowed-max bottleneck-bandwidth
    and windowed-min RTT estimation, Startup/Drain/ProbeBW gain cycling,
    periodic ProbeRTT, pacing at [gain·btl_bw] with in-flight capped at
    [2·btl_bw·rt_prop].

    Matches the behaviours the paper relies on: deep buffers make BBR
    CWND-limited (hence ACK-clocked and classified elastic); shallow buffers
    leave it rate-paced and slower-than-RTT reactive (classified inelastic,
    Appendix C). *)

type t

val create : ?mss:int -> unit -> t

val cc : t -> Cc_types.t

(** [btl_bw t] is the current bottleneck-bandwidth estimate. *)
val btl_bw : t -> Units.Rate.t

val make : ?mss:int -> unit -> Cc_types.t
