module Time = Units.Time
module B = Units.Bytes

type t = {
  mss : float;
  c : float;
  beta : float;
  mutable cwnd : float; (* bytes *)
  mutable w_max : float; (* bytes *)
  mutable ssthresh : float; (* bytes *)
  mutable epoch_start : float option;
  mutable k : float;
  mutable origin : float; (* bytes *)
  mutable recovery_until : float;
  mutable srtt : float;
}

let create ?(mss = 1500) ?(initial_cwnd = 10) ?(c = 0.4) ?(beta = 0.7) () =
  let mssf = float_of_int mss in
  { mss = mssf; c; beta; cwnd = mssf *. float_of_int initial_cwnd;
    w_max = 0.; ssthresh = infinity; epoch_start = None; k = 0.; origin = 0.;
    recovery_until = neg_infinity; srtt = 0.1 }

let cwnd_bytes t = B.bytes t.cwnd

let reset_cwnd t bytes =
  t.cwnd <- Float.max (2. *. t.mss) (B.to_float bytes);
  t.w_max <- t.cwnd;
  t.ssthresh <- t.cwnd;
  t.epoch_start <- None

let cbrt x = if x < 0. then -.((-.x) ** (1. /. 3.)) else x ** (1. /. 3.)

let on_ack t (a : Cc_types.ack) =
  let srtt = Time.to_secs a.srtt in
  t.srtt <- srtt;
  if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. float_of_int a.bytes
  else begin
    let now = Time.to_secs a.now in
    (match t.epoch_start with
    | Some _ -> ()
    | None ->
      t.epoch_start <- Some now;
      if t.cwnd < t.w_max then begin
        t.k <- cbrt ((t.w_max -. t.cwnd) /. (t.mss *. t.c));
        t.origin <- t.w_max
      end
      else begin
        t.k <- 0.;
        t.origin <- t.cwnd
      end);
    let epoch = Option.get t.epoch_start in
    (* target window one RTT in the future, per the Linux implementation *)
    let time = now -. epoch +. srtt in
    let dt = time -. t.k in
    let target = t.origin +. (t.c *. dt *. dt *. dt *. t.mss) in
    if target > t.cwnd then
      t.cwnd <-
        t.cwnd +. ((target -. t.cwnd) *. float_of_int a.bytes /. t.cwnd)
    else
      (* plateau: inch upward so the flow is never fully static *)
      t.cwnd <- t.cwnd +. (0.01 *. t.mss *. float_of_int a.bytes /. t.cwnd);
    (* TCP-friendly region *)
    let rtt = Float.max srtt 1e-4 in
    let w_est =
      (t.w_max *. t.beta)
      +. (3. *. (1. -. t.beta) /. (1. +. t.beta) *. (time /. rtt) *. t.mss)
    in
    if w_est > t.cwnd then t.cwnd <- w_est
  end

let on_loss t (l : Cc_types.loss) =
  let now = Time.to_secs l.now in
  match l.kind with
  | `Timeout ->
    t.w_max <- t.cwnd;
    t.ssthresh <- Float.max (t.cwnd *. t.beta) (2. *. t.mss);
    t.cwnd <- 2. *. t.mss;
    t.epoch_start <- None;
    t.recovery_until <- now +. t.srtt
  | `Dupack ->
    if now > t.recovery_until then begin
      (* fast convergence *)
      t.w_max <-
        (if t.cwnd < t.w_max then t.cwnd *. (1. +. t.beta) /. 2. else t.cwnd);
      t.cwnd <- Float.max (t.cwnd *. t.beta) (2. *. t.mss);
      t.ssthresh <- t.cwnd;
      t.epoch_start <- None;
      t.recovery_until <- now +. t.srtt
    end

let cc t =
  { Cc_types.name = "cubic";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_tick = None;
    cwnd = (fun () -> B.bytes t.cwnd);
    pacing_rate = (fun () -> None) }

let make ?mss ?initial_cwnd ?c ?beta () =
  cc (create ?mss ?initial_cwnd ?c ?beta ())
