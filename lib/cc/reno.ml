module Time = Units.Time
module B = Units.Bytes

type t = {
  mss : float;
  mutable cwnd : float; (* bytes *)
  mutable ssthresh : float; (* bytes *)
  mutable recovery_until : float;
  mutable srtt : float;
}

let create ?(mss = 1500) ?(initial_cwnd = 10) () =
  let mssf = float_of_int mss in
  { mss = mssf; cwnd = mssf *. float_of_int initial_cwnd;
    ssthresh = infinity; recovery_until = neg_infinity; srtt = 0.1 }

let cwnd_bytes t = B.bytes t.cwnd

let reset_cwnd t bytes =
  t.cwnd <- Float.max (2. *. t.mss) (B.to_float bytes);
  t.ssthresh <- t.cwnd

let on_ack t (a : Cc_types.ack) =
  t.srtt <- Time.to_secs a.srtt;
  if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. float_of_int a.bytes
  else t.cwnd <- t.cwnd +. (t.mss *. float_of_int a.bytes /. t.cwnd)

let on_loss t (l : Cc_types.loss) =
  let now = Time.to_secs l.now in
  match l.kind with
  | `Timeout ->
    t.ssthresh <- Float.max (t.cwnd /. 2.) (2. *. t.mss);
    t.cwnd <- 2. *. t.mss;
    t.recovery_until <- now +. t.srtt
  | `Dupack ->
    if now > t.recovery_until then begin
      t.ssthresh <- Float.max (t.cwnd /. 2.) (2. *. t.mss);
      t.cwnd <- t.ssthresh;
      t.recovery_until <- now +. t.srtt
    end

let cc t =
  { Cc_types.name = "reno";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_tick = None;
    cwnd = (fun () -> B.bytes t.cwnd);
    pacing_rate = (fun () -> None) }

let make ?mss ?initial_cwnd () = cc (create ?mss ?initial_cwnd ())
