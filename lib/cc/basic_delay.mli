(** BasicDelay, the paper's delay-controlling rule (Eq. 4):

    [rate ← S + α·(µ − S − z) + (β·µ/x)·(x_min + d_t − x)]

    where [S] is the measured send rate, [z = µ·S/R − S] the cross-traffic
    estimate, [x] the current RTT, [x_min] the propagation RTT, and [d_t] a
    target queueing delay that keeps the bottleneck queue from emptying (the
    ẑ estimator needs a busy link). Rate-paced, window-capped at 2·rate·RTT.

    Usable standalone (the "Nimbus delay" scheme of Appendix A) and as
    Nimbus's default delay-mode algorithm. *)

type t

(** @param mu bottleneck link rate
    @param alpha spare-capacity step (default 0.8)
    @param beta delay-correction gain (default 0.5)
    @param delay_target d_t (default 12.5 ms)
    @param initial_rate default µ/10
    @raise Invalid_argument if [mu] is not finite and positive *)
val create :
  mu:Units.Rate.t ->
  ?alpha:float ->
  ?beta:float ->
  ?delay_target:Units.Time.t ->
  ?initial_rate:Units.Rate.t ->
  unit ->
  t

val cc : t -> Cc_types.t

(** [rate t] is the current controlled rate. *)
val rate : t -> Units.Rate.t

(** [set_rate t r] forces the rate (mode-switch initialisation). *)
val set_rate : t -> Units.Rate.t -> unit

(** [set_mu t mu] updates the link-rate estimate the rule uses — needed when
    µ is learned online rather than configured. *)
val set_mu : t -> Units.Rate.t -> unit

(** [update t tick] applies Eq. 4 given a flow tick; exposed so Nimbus can
    drive it directly while owning the pacing. *)
val update : t -> Cc_types.tick -> unit

val make :
  mu:Units.Rate.t ->
  ?alpha:float ->
  ?beta:float ->
  ?delay_target:Units.Time.t ->
  ?initial_rate:Units.Rate.t ->
  unit ->
  Cc_types.t
