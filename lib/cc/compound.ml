module Time = Units.Time
module B = Units.Bytes

type state = {
  mss : float;
  mutable lwnd : float; (* loss window, bytes *)
  mutable dwnd : float; (* delay window, bytes *)
  mutable ssthresh : float;
  mutable next_update : float;
  mutable recovery_until : float;
  mutable srtt : float;
}

(* Standard Compound parameters *)
let alpha = 0.125

let k_exp = 0.75

let zeta = 0.5

let gamma = 30. (* segments of backlog before the delay window backs off *)

let make ?(mss = 1500) () =
  let mssf = float_of_int mss in
  let s =
    { mss = mssf; lwnd = 10. *. mssf; dwnd = 0.; ssthresh = infinity;
      next_update = 0.; recovery_until = neg_infinity; srtt = 0.1 }
  in
  let window () = s.lwnd +. s.dwnd in
  let on_ack (a : Cc_types.ack) =
    let now = Time.to_secs a.now in
    s.srtt <- Time.to_secs a.srtt;
    let win = window () in
    if s.lwnd < s.ssthresh then s.lwnd <- s.lwnd +. float_of_int a.bytes
    else s.lwnd <- s.lwnd +. (s.mss *. float_of_int a.bytes /. win);
    if now >= s.next_update then begin
      s.next_update <- now +. s.srtt;
      let rtt = Float.max s.srtt 1e-4 in
      let base = Float.max (Time.to_secs a.min_rtt) 1e-4 in
      let diff_segments = win *. (1. -. (base /. rtt)) /. s.mss in
      if diff_segments < gamma then begin
        let win_segments = win /. s.mss in
        let grow = Float.max 0. ((alpha *. (win_segments ** k_exp)) -. 1.) in
        s.dwnd <- s.dwnd +. (grow *. s.mss)
      end
      else s.dwnd <- Float.max 0. (s.dwnd -. (zeta *. diff_segments *. s.mss))
    end
  in
  let on_loss (l : Cc_types.loss) =
    match l.kind with
    | `Timeout ->
      s.ssthresh <- Float.max (window () /. 2.) (2. *. s.mss);
      s.lwnd <- 2. *. s.mss;
      s.dwnd <- 0.
    | `Dupack ->
      let now = Time.to_secs l.now in
      if now > s.recovery_until then begin
        s.recovery_until <- now +. s.srtt;
        s.ssthresh <- Float.max (window () /. 2.) (2. *. s.mss);
        s.lwnd <- Float.max (2. *. s.mss) (s.lwnd /. 2.);
        s.dwnd <- s.dwnd /. 2.
      end
  in
  { Cc_types.name = "compound"; on_ack; on_loss; on_tick = None;
    cwnd = (fun () -> B.bytes (window ()));
    pacing_rate = (fun () -> None) }
