module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Packet = Nimbus_sim.Packet
module Topology = Nimbus_topology.Topology
module Time = Units.Time
module Rate = Units.Rate
module B = Units.Bytes

type source =
  | Backlogged
  | Finite of int
  | App_limited

(* Sender bookkeeping stays raw float (seconds / bps / bytes) — the typed
   boundary is the .mli and the Cc_types records built below. *)
type sent_info = {
  si_sent_at : float;
  si_size : int;
  si_retx : bool;
}

(* Ring of acknowledged packets, for the Eq. 2 rate estimators. *)
type acked_record = {
  ar_sent_at : float;
  ar_acked_at : float;
  ar_cum_bytes : int; (* running total including this record *)
}

let reorder_window = 3

let rate_ring_capacity = 2048

type t = {
  engine : Engine.t;
  (* injection point into the network: a bare [Bottleneck.enqueue] for the
     classic dumbbell, or a topology ingress for multi-hop routes.  Mutable
     only because wiring needs the flow's own sink closure ([t] itself) —
     it is set once in [make] and never changes afterwards. *)
  mutable enqueue : Packet.t -> unit;
  cc : Cc_types.t;
  flow_id : int;
  fwd_delay : float;
  rev_delay : float;
  pkt_size : int;
  source : source;
  on_complete : (t -> unit) option;
  tick_interval : float;
  start_time : float;
  (* sender state *)
  mutable next_seq : int;
  outstanding : (int, sent_info) Hashtbl.t;
  send_order : int Queue.t; (* seqs in transmission order; may hold acked *)
  retx_queue : int Queue.t;
  mutable inflight_bytes : int;
  mutable highest_acked : int;
  mutable supplied_bytes : int; (* App_limited budget *)
  mutable sent_app_bytes : int; (* consumed from budget / finite size *)
  mutable acked_bytes : int;
  mutable recv_bytes : int;
  mutable losses : int;
  mutable srtt : float;
  mutable min_rtt : float;
  mutable last_rtt : float;
  mutable last_progress : float;
  acked_ring : acked_record array;
  mutable acked_head : int;
  mutable acked_count : int;
  mutable send_rate : float;
  mutable recv_rate : float;
  mutable pacing_scheduled : bool;
  mutable pace_credit : float; (* bytes the pacer may send right now *)
  mutable last_pace_at : float;
  mutable active : bool;
  mutable completion_time : float option;
  (* fault hooks: extra one-way propagation delay (link delay steps/jitter)
     and a reverse-path loss process (ACK loss) *)
  mutable extra_fwd_delay : float;
  mutable ack_loss : (unit -> bool) option;
}

let now_secs t = Time.to_secs (Engine.now t.engine)
[@@unit_ok "raw-seconds view feeding float trace sinks and hot mutable fields"]

let id t = t.flow_id

let stopped t = not t.active

let received_bytes t = t.recv_bytes

let acked_bytes t = t.acked_bytes

let lost_packets t = t.losses

let inflight_bytes t = t.inflight_bytes

let srtt t = Time.secs t.srtt

let min_rtt t = Time.secs t.min_rtt

let last_rtt t = Time.secs t.last_rtt

let send_rate t = Rate.bps t.send_rate

let recv_rate t = Rate.bps t.recv_rate

let completion_time t = Option.map Time.secs t.completion_time

let start_time t = Time.secs t.start_time

let cc_name t = t.cc.Cc_types.name

let supply t bytes =
  match t.source with
  | App_limited -> t.supplied_bytes <- t.supplied_bytes + bytes
  | Backlogged | Finite _ -> ()

module Control = struct
  type t =
    | Extra_delay of Time.t
    | Ack_loss of (unit -> bool) option
    | Stop
end

(* every control mutation funnels through {!apply}, so this is the single
   audit/trace point for external interference with a flow *)
let trace_control t control ~value =
  let tr = Engine.trace t.engine in
  if Nimbus_trace.Trace.want tr Nimbus_trace.Event.Flow then
    Nimbus_trace.Trace.flow_control tr ~now:(now_secs t) ~flow:t.flow_id
      ~control ~value

let apply t (c : Control.t) =
  match c with
  | Control.Extra_delay extra ->
    let extra = Time.to_secs extra in
    if not (Float.is_finite extra) then
      invalid_arg "Flow.apply: non-finite extra delay";
    if extra +. t.fwd_delay < 0. then
      invalid_arg "Flow.apply: total forward delay would be negative";
    t.extra_fwd_delay <- extra;
    trace_control t Nimbus_trace.Event.C_extra_delay ~value:extra
  | Control.Ack_loss (Some f) ->
    t.ack_loss <- Some f;
    trace_control t Nimbus_trace.Event.C_ack_loss ~value:1.
  | Control.Ack_loss None ->
    t.ack_loss <- None;
    trace_control t Nimbus_trace.Event.C_ack_off ~value:0.
  | Control.Stop ->
    t.active <- false;
    trace_control t Nimbus_trace.Event.C_stop ~value:0.

let extra_delay t = Time.secs t.extra_fwd_delay

(* --- data availability -------------------------------------------------- *)

let new_data_available t =
  match t.source with
  | Backlogged -> true
  | Finite size -> t.sent_app_bytes < size
  | App_limited -> t.sent_app_bytes + t.pkt_size <= t.supplied_bytes

let data_available t = (not (Queue.is_empty t.retx_queue)) || new_data_available t

let window_allows t =
  float_of_int (t.inflight_bytes + t.pkt_size)
  <= B.to_float (t.cc.Cc_types.cwnd ())

(* --- rate estimation (Eq. 2) -------------------------------------------- *)

let push_acked t rec_ =
  t.acked_ring.(t.acked_head) <- rec_;
  t.acked_head <- (t.acked_head + 1) mod rate_ring_capacity;
  if t.acked_count < rate_ring_capacity then t.acked_count <- t.acked_count + 1

let nth_acked_from_end t k =
  (* k = 0 is the newest record *)
  t.acked_ring.(((t.acked_head - 1 - k) mod rate_ring_capacity
                 + rate_ring_capacity) mod rate_ring_capacity)

(* Number of packets forming "one window" for the S/R measurement: the data
   actually in flight, i.e. one RTT's worth of packets at the current rate.
   (Using the controller's window *limit* would smear the estimate over many
   RTTs whenever the limit far exceeds actual usage.) *)
let measurement_window t =
  let n = t.inflight_bytes / t.pkt_size in
  max 8 (min n (rate_ring_capacity - 1))

let update_rates t =
  let n = measurement_window t in
  if t.acked_count >= n + 1 then begin
    let newest = nth_acked_from_end t 0 in
    let oldest = nth_acked_from_end t n in
    let nbytes = newest.ar_cum_bytes - oldest.ar_cum_bytes in
    let send_dt = newest.ar_sent_at -. oldest.ar_sent_at in
    let recv_dt = newest.ar_acked_at -. oldest.ar_acked_at in
    if send_dt > 0. then t.send_rate <- float_of_int (nbytes * 8) /. send_dt;
    if recv_dt > 0. then t.recv_rate <- float_of_int (nbytes * 8) /. recv_dt
  end

(* --- transmission ------------------------------------------------------- *)

let receiver_got t (pkt : Packet.t) =
  t.recv_bytes <- t.recv_bytes + pkt.size;
  match t.source with
  | Finite size when t.completion_time = None && t.recv_bytes >= size ->
    t.completion_time <- Some (now_secs t);
    (match t.on_complete with Some f -> f t | None -> ())
  | _ -> ()

let rec handle_delivery t (pkt : Packet.t) =
  (* packet finished serialising at the bottleneck; receiver sees it after
     the forward leg (plus any injected delay step/jitter), and the ACK lands
     after the reverse leg — unless the ACK-path loss process eats it, in
     which case the sender's dup-ACK / RTO machinery takes over *)
  let fwd = Float.max 0. (t.fwd_delay +. t.extra_fwd_delay) in
  Engine.schedule_in t.engine (Time.secs fwd) (fun () ->
      receiver_got t pkt;
      let ack_dropped =
        match t.ack_loss with Some lost -> lost () | None -> false
      in
      if not ack_dropped then
        Engine.schedule_in t.engine (Time.secs t.rev_delay) (fun () ->
            handle_ack t pkt))

and send_packet t ~seq ~retransmission =
  let now = Engine.now t.engine in
  let pkt =
    Packet.make ~flow:t.flow_id ~seq ~size:t.pkt_size ~now ~retransmission ()
  in
  Hashtbl.replace t.outstanding seq
    { si_sent_at = Time.to_secs now; si_size = t.pkt_size;
      si_retx = retransmission };
  Queue.push seq t.send_order;
  t.inflight_bytes <- t.inflight_bytes + t.pkt_size;
  t.enqueue pkt

and send_next t =
  match Queue.take_opt t.retx_queue with
  | Some seq -> send_packet t ~seq ~retransmission:true
  | None ->
    let seq = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    t.sent_app_bytes <- t.sent_app_bytes + t.pkt_size;
    send_packet t ~seq ~retransmission:false

and try_send t =
  if t.active then begin
    match t.cc.Cc_types.pacing_rate () with
    | Some _ -> ensure_pacing t
    | None ->
      while window_allows t && data_available t do
        send_next t
      done
  end

and ensure_pacing t =
  if not t.pacing_scheduled then begin
    t.pacing_scheduled <- true;
    t.last_pace_at <- now_secs t;
    pace_one t
  end

(* Credit-based pacing.  A naive "sleep one packet time at the current rate"
   pacer aliases badly when the rate is modulated: at a low base rate the
   inter-packet sleep exceeds an entire pulse lobe, so the waveform is never
   sampled.  Instead accumulate send credit at the instantaneous rate and
   wake at least every 2 ms. *)
and pace_one t =
  if not t.active then t.pacing_scheduled <- false
  else begin
    match t.cc.Cc_types.pacing_rate () with
    | None ->
      t.pacing_scheduled <- false;
      try_send t
    | Some rate ->
      let now = now_secs t in
      let rate = Float.max (Rate.to_bps rate) 16_000. in
      let dt = now -. t.last_pace_at in
      t.last_pace_at <- now;
      let burst_cap = float_of_int (2 * t.pkt_size) in
      t.pace_credit <-
        Float.min burst_cap (t.pace_credit +. (rate *. dt /. 8.));
      let pkt = float_of_int t.pkt_size in
      while
        t.pace_credit >= pkt && window_allows t && data_available t
      do
        send_next t;
        t.pace_credit <- t.pace_credit -. pkt
      done;
      let interval =
        Float.max 0.0002 (Float.min 0.002 (pkt *. 8. /. rate))
      in
      Engine.schedule_in t.engine (Time.secs interval) (fun () -> pace_one t)
  end

(* --- acknowledgements and loss detection -------------------------------- *)

and declare_front_losses t =
  (* pop acked entries and declare stragglers behind the reordering window *)
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.send_order with
    | None -> continue := false
    | Some seq ->
      if not (Hashtbl.mem t.outstanding seq) then ignore (Queue.pop t.send_order)
      else if seq <= t.highest_acked - reorder_window then begin
        ignore (Queue.pop t.send_order);
        let info = Hashtbl.find t.outstanding seq in
        Hashtbl.remove t.outstanding seq;
        t.inflight_bytes <- t.inflight_bytes - info.si_size;
        t.losses <- t.losses + 1;
        Queue.push seq t.retx_queue;
        t.cc.Cc_types.on_loss
          { Cc_types.now = Engine.now t.engine; seq; bytes = info.si_size;
            inflight_bytes = t.inflight_bytes; kind = `Dupack }
      end
      else continue := false
  done

and handle_ack t (pkt : Packet.t) =
  match Hashtbl.find_opt t.outstanding pkt.seq with
  | None -> () (* late ACK for a packet already declared lost *)
  | Some info ->
    let now = now_secs t in
    Hashtbl.remove t.outstanding pkt.seq;
    t.inflight_bytes <- t.inflight_bytes - info.si_size;
    t.acked_bytes <- t.acked_bytes + info.si_size;
    t.last_progress <- now;
    (* Karn's algorithm: a retransmitted sequence number gives an ambiguous
       RTT sample (the ACK may be for the original transmission), so skip
       RTT and rate accounting for it *)
    if not info.si_retx then begin
      let rtt = now -. info.si_sent_at in
      t.last_rtt <- rtt;
      if Float.is_nan t.min_rtt || rtt < t.min_rtt then t.min_rtt <- rtt;
      t.srtt <-
        (if Float.is_nan t.srtt then rtt
         else (0.875 *. t.srtt) +. (0.125 *. rtt));
      let prev_cum =
        if t.acked_count = 0 then 0 else (nth_acked_from_end t 0).ar_cum_bytes
      in
      push_acked t
        { ar_sent_at = info.si_sent_at; ar_acked_at = now;
          ar_cum_bytes = prev_cum + info.si_size };
      update_rates t
    end;
    if pkt.seq > t.highest_acked then t.highest_acked <- pkt.seq;
    declare_front_losses t;
    t.cc.Cc_types.on_ack
      { Cc_types.now = Time.secs now; seq = pkt.seq; bytes = info.si_size;
        rtt = Time.secs t.last_rtt; min_rtt = Time.secs t.min_rtt;
        srtt = Time.secs t.srtt; inflight_bytes = t.inflight_bytes;
        delivered_bytes = t.acked_bytes };
    try_send t

(* --- retransmission timeout --------------------------------------------- *)

let rto t =
  if Float.is_nan t.srtt then 1.0 else Float.max 0.4 (3.0 *. t.srtt)

let check_rto t =
  let now = now_secs t in
  if t.inflight_bytes > 0 && now -. t.last_progress > rto t then begin
    (* whole window presumed lost *)
    let lost = Hashtbl.fold (fun seq _ acc -> seq :: acc) t.outstanding [] in
    let lost = List.sort Int.compare lost in
    let bytes = t.inflight_bytes in
    List.iter
      (fun seq ->
        Hashtbl.remove t.outstanding seq;
        t.losses <- t.losses + 1;
        Queue.push seq t.retx_queue)
      lost;
    t.inflight_bytes <- 0;
    Queue.clear t.send_order;
    t.last_progress <- now;
    t.cc.Cc_types.on_loss
      { Cc_types.now = Time.secs now; seq = t.highest_acked + 1; bytes;
        inflight_bytes = 0; kind = `Timeout };
    try_send t
  end

let rec tick_loop t =
  if t.active then begin
    Nimbus_trace.Span.enter Nimbus_trace.Span.Flow_tick;
    check_rto t;
    (match t.cc.Cc_types.on_tick with
    | Some f ->
      f
        { Cc_types.now = Engine.now t.engine;
          send_rate = Rate.bps t.send_rate;
          recv_rate = Rate.bps t.recv_rate; rtt = Time.secs t.last_rtt;
          srtt = Time.secs t.srtt; min_rtt = Time.secs t.min_rtt;
          inflight_bytes = t.inflight_bytes;
          delivered_bytes = t.acked_bytes; lost_packets = t.losses }
    | None -> ());
    try_send t;
    Nimbus_trace.Span.leave Nimbus_trace.Span.Flow_tick;
    Engine.schedule_in t.engine (Time.secs t.tick_interval) (fun () ->
        tick_loop t)
  end

(* [wire flow_id sink] registers [sink] as the flow's delivery callback
   wherever its packets leave the network, and returns the injection
   function — the one seam between the sender engine and the network
   (direct bottleneck or multi-hop topology). *)
let make engine ~wire ~cc ~prop_rtt ~fwd_frac ~pkt_size ~source ~start
    ~on_complete ~tick_interval =
  let prop_rtt = Time.to_secs prop_rtt in
  let tick_interval = Time.to_secs tick_interval in
  if prop_rtt < 0. then invalid_arg "Flow.create: negative prop_rtt";
  let flow_id = Engine.fresh_flow_id engine in
  let start_time =
    match start with
    | Some s -> Time.to_secs s
    | None -> Time.to_secs (Engine.now engine)
  in
  let t =
    { engine; enqueue = ignore; cc; flow_id;
      fwd_delay = prop_rtt *. fwd_frac;
      rev_delay = prop_rtt *. (1. -. fwd_frac);
      pkt_size; source; on_complete; tick_interval; start_time;
      next_seq = 0; outstanding = Hashtbl.create 64;
      send_order = Queue.create (); retx_queue = Queue.create ();
      inflight_bytes = 0; highest_acked = -1; supplied_bytes = 0;
      sent_app_bytes = 0; acked_bytes = 0; recv_bytes = 0; losses = 0;
      srtt = nan; min_rtt = nan; last_rtt = nan; last_progress = start_time;
      acked_ring =
        Array.make rate_ring_capacity
          { ar_sent_at = 0.; ar_acked_at = 0.; ar_cum_bytes = 0 };
      acked_head = 0; acked_count = 0; send_rate = nan; recv_rate = nan;
      pacing_scheduled = false; pace_credit = 0.; last_pace_at = start_time;
      active = true;
      completion_time = None; extra_fwd_delay = 0.; ack_loss = None }
  in
  t.enqueue <- wire flow_id (fun pkt -> handle_delivery t pkt);
  Engine.schedule_at engine (Time.secs start_time) (fun () ->
      try_send t;
      Engine.schedule_in engine (Time.secs tick_interval) (fun () ->
          tick_loop t));
  t

let create engine bottleneck ~cc ~prop_rtt ?(fwd_frac = 0.5)
    ?(pkt_size = Packet.default_data_size) ?(source = Backlogged)
    ?start ?on_complete ?(tick_interval = Time.ms 10.) () =
  make engine
    ~wire:(fun flow sink ->
      Bottleneck.set_sink bottleneck ~flow sink;
      fun pkt -> Bottleneck.enqueue bottleneck pkt)
    ~cc ~prop_rtt ~fwd_frac ~pkt_size ~source ~start ~on_complete
    ~tick_interval

let create_via topo ~route ~cc ~prop_rtt ?(fwd_frac = 0.5)
    ?(pkt_size = Packet.default_data_size) ?(source = Backlogged)
    ?start ?on_complete ?(tick_interval = Time.ms 10.) () =
  make (Topology.engine topo)
    ~wire:(fun flow sink -> Topology.attach topo ~route ~flow ~sink)
    ~cc ~prop_rtt ~fwd_frac ~pkt_size ~source ~start ~on_complete
    ~tick_interval
