module Time = Units.Time
module Rate = Units.Rate
module B = Units.Bytes

type t = {
  mutable mu : float;
  alpha : float;
  beta : float;
  delay_target : float;
  mutable rate : float; (* bps *)
  mutable srtt : float;
}

let create ~mu ?(alpha = 0.8) ?(beta = 0.5)
    ?(delay_target = Time.ms 12.5) ?initial_rate () =
  let mu = Rate.to_bps (Rate.bps_exn (Rate.to_bps mu)) in
  let initial =
    match initial_rate with Some r -> Rate.to_bps r | None -> mu /. 10.
  in
  { mu; alpha; beta; delay_target = Time.to_secs delay_target; rate = initial;
    srtt = 0.1 }

let rate t = Rate.bps t.rate

let set_mu t mu =
  let mu = Rate.to_bps mu in
  if mu > 0. then t.mu <- mu

let set_rate t r =
  t.rate <- Float.max 50_000. (Float.min (1.2 *. t.mu) (Rate.to_bps r))

let update t (tk : Cc_types.tick) =
  if Time.is_known tk.srtt then t.srtt <- Time.to_secs tk.srtt;
  if Rate.is_known tk.send_rate && Rate.is_known tk.recv_rate then begin
    let s = Rate.to_bps tk.send_rate
    and r = Float.max (Rate.to_bps tk.recv_rate) 1e3 in
    let z = Float.max 0. ((t.mu *. s /. r) -. s) in
    let x = Time.to_secs tk.rtt and x_min = Time.to_secs tk.min_rtt in
    if not (Float.is_nan x || Float.is_nan x_min) then begin
      let spare = t.mu -. s -. z in
      let rate =
        s
        +. (t.alpha *. spare)
        +. (t.beta *. t.mu /. x *. (x_min +. t.delay_target -. x))
      in
      set_rate t (Rate.bps rate)
    end
  end

let cc t =
  { Cc_types.name = "basicdelay";
    on_ack = (fun _ -> ());
    on_loss = (fun _ -> ());
    on_tick = Some (update t);
    cwnd =
      (fun () -> B.bytes (Float.max (4. *. 1500.) (2. *. t.rate *. t.srtt /. 8.)));
    pacing_rate = (fun () -> Some (Rate.bps t.rate)) }

let make ~mu ?alpha ?beta ?delay_target ?initial_rate () =
  cc (create ~mu ?alpha ?beta ?delay_target ?initial_rate ())
