(** The flow engine: one sender/receiver pair attached to the bottleneck.

    Responsibilities:
    - transmit data packets, either ACK-clocked against the controller's
      window or paced at its rate (window still caps in-flight data);
    - model the receiver leg as pure delay and feed acknowledgements back;
    - detect losses via a reordering window (dup-ACK analogue) and a
      retransmission timeout, and retransmit reliably;
    - measure S(t) and R(t) over the same trailing window of acknowledged
      packets (Eq. 2 of the paper) and report them to the controller on a
      10 ms tick, mirroring the CCP loop.

    The engine is congestion-control agnostic: all algorithms, including
    Nimbus itself, plug in through {!Cc_types.t}. *)

type source =
  | Backlogged  (** always has data *)
  | Finite of int  (** bytes to transfer; completes when received *)
  | App_limited  (** sends only what {!supply} has provided *)

type t

(** [create engine bottleneck ~cc ~prop_rtt ()] wires a flow up.

    @param prop_rtt two-way propagation delay excluding queueing
    @param fwd_frac fraction of [prop_rtt] after the bottleneck on the
           forward leg (default 0.5)
    @param pkt_size data packet size in bytes (default 1500)
    @param source defaults to [Backlogged]
    @param start absolute start time (default: now)
    @param on_complete invoked once when a [Finite] source finishes
    @param tick_interval controller tick period (default 10 ms) *)
val create :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  cc:Cc_types.t ->
  prop_rtt:Units.Time.t ->
  ?fwd_frac:float ->
  ?pkt_size:int ->
  ?source:source ->
  ?start:Units.Time.t ->
  ?on_complete:(t -> unit) ->
  ?tick_interval:Units.Time.t ->
  unit ->
  t

(** [create_via topo ~route ~cc ~prop_rtt ()] wires a flow across a
    multi-hop {!Nimbus_topology.Topology} route instead of a single
    bottleneck: packets are injected at the route's first link and the
    flow's receiver sink fires after the last hop (per-link propagation
    delays add to the [prop_rtt] end legs). Options are as for {!create};
    the flow lives on the topology's engine. A single-link route with zero
    propagation delay is event-for-event identical to {!create} on that
    link's bottleneck. *)
val create_via :
  Nimbus_topology.Topology.t ->
  route:Nimbus_topology.Topology.Route.t ->
  cc:Cc_types.t ->
  prop_rtt:Units.Time.t ->
  ?fwd_frac:float ->
  ?pkt_size:int ->
  ?source:source ->
  ?start:Units.Time.t ->
  ?on_complete:(t -> unit) ->
  ?tick_interval:Units.Time.t ->
  unit ->
  t

(** [id t] is the flow identifier used at the bottleneck. *)
val id : t -> int

(** [supply t bytes] makes [bytes] more data available to an [App_limited]
    source. No-op for other sources. *)
val supply : t -> int -> unit

(** [stopped t]. *)
val stopped : t -> bool

(** External control actions (flow departure, fault injection).  All
    mutations of a running flow funnel through {!apply} — the single
    audited entry point, traced as [flow_control] events. *)
module Control : sig
  type t =
    | Extra_delay of Units.Time.t
        (** add this to the forward propagation leg of every subsequent
            delivery — a delay step; applied periodically with random
            values it models jitter.  May be negative as long as the
            total leg stays non-negative. *)
    | Ack_loss of (unit -> bool) option
        (** install ([Some f]) or remove ([None]) a reverse-path loss
            process: each ACK is dropped when [f ()] returns [true],
            leaving recovery to the sender's dup-ACK / RTO machinery. *)
    | Stop  (** halt transmission permanently (flow departure) *)
end

(** [apply t c] performs control action [c] on the flow.
    @raise Invalid_argument on a NaN/infinite extra delay or a negative
    total forward delay. *)
val apply : t -> Control.t -> unit

(** [extra_delay t] is the currently injected extra forward delay. *)
val extra_delay : t -> Units.Time.t

(** Telemetry *)

(** [received_bytes t] is the count delivered to the receiver application. *)
val received_bytes : t -> int

(** [acked_bytes t] is the count acknowledged back at the sender. *)
val acked_bytes : t -> int

(** [lost_packets t] is the cumulative loss count (dup-ACK and timeout). *)
val lost_packets : t -> int

(** [inflight_bytes t]. *)
val inflight_bytes : t -> int

(** [srtt t], [min_rtt t], [last_rtt t] — [Time.unknown] before the first
    ACK. *)
val srtt : t -> Units.Time.t

val min_rtt : t -> Units.Time.t

val last_rtt : t -> Units.Time.t

(** [send_rate t] / [recv_rate t] are the current S(t)/R(t) estimates;
    [Rate.unknown] until enough packets are acknowledged. *)
val send_rate : t -> Units.Rate.t

val recv_rate : t -> Units.Rate.t

(** [completion_time t] is when a [Finite] transfer finished. *)
val completion_time : t -> Units.Time.t option

(** [start_time t]. *)
val start_time : t -> Units.Time.t

(** [cc_name t]. *)
val cc_name : t -> string
