(** TCP Cubic (Ha, Rhee, Xu): cubic window growth around the last loss point,
    with the TCP-friendly region and fast convergence. The canonical elastic,
    ACK-clocked cross traffic in the paper, and Nimbus's default
    TCP-competitive mode. *)

type t

(** [create ()] is a fresh instance; [cc t] adapts it to the engine
    interface. Exposing [t] lets Nimbus reach inside to reset the window when
    switching to competitive mode with the rate from 5 s ago (§4.1).
    @param mss segment size, bytes (default 1500)
    @param initial_cwnd initial window in segments (default 10)
    @param c cubic coefficient (default 0.4)
    @param beta multiplicative decrease factor (default 0.7) *)
val create :
  ?mss:int -> ?initial_cwnd:int -> ?c:float -> ?beta:float -> unit -> t

val cc : t -> Cc_types.t

(** [cwnd_bytes t]. *)
val cwnd_bytes : t -> Units.Bytes.t

(** [reset_cwnd t bytes] forces the window and restarts the cubic epoch —
    used by Nimbus's mode switch. *)
val reset_cwnd : t -> Units.Bytes.t -> unit

(** [make ()] is [cc (create ())] for plain flows. *)
val make :
  ?mss:int -> ?initial_cwnd:int -> ?c:float -> ?beta:float -> unit -> Cc_types.t
