module Time = Units.Time
module Rate = Units.Rate
module B = Units.Bytes

type mi = {
  mi_start : float;
  mutable mi_end : float; (* nan while the interval is still open *)
  sign : float;           (* +1 / -1 probe direction *)
  mutable acked_bytes : int;
  mutable lost : int;
  mutable acked : int;
  (* accumulators for the least-squares RTT slope over the interval *)
  mutable n_rtt : int;
  mutable sum_t : float;
  mutable sum_r : float;
  mutable sum_tt : float;
  mutable sum_tr : float;
}

let fresh_mi ~now ~sign =
  { mi_start = now; mi_end = nan; sign; acked_bytes = 0; lost = 0; acked = 0;
    n_rtt = 0; sum_t = 0.; sum_r = 0.; sum_tt = 0.; sum_tr = 0. }

type t = {
  mss : float;
  epsilon : float;
  mutable rate : float; (* bps, the base rate r *)
  mutable current : mi;
  mutable pending : mi list; (* finalized, waiting for their ACKs (oldest first) *)
  mutable utilities : (float * float) list; (* (sign, utility), newest first *)
  mutable srtt : float;
  mutable amplifier : int;
  mutable last_step : float;
  mutable started : bool;
  mutable doubling : bool; (* PCC's startup: double until utility drops *)
  mutable prev_pair_utility : float;
}

(* Vivace utility coefficients from the NSDI paper; x in Mbit/s. *)
let b_coeff = 900.

let c_coeff = 11.35

let exponent = 0.9

let theta0 = 1e5 (* bps step per unit utility gradient *)

let create ?(mss = 1500) ?(initial_rate = Rate.mbps 1.) ?(epsilon = 0.05) () =
  { mss = float_of_int mss; epsilon; rate = Rate.to_bps initial_rate;
    current = fresh_mi ~now:0. ~sign:1.; pending = []; utilities = [];
    srtt = 0.1; amplifier = 0; last_step = 0.; started = false;
    doubling = true; prev_pair_utility = neg_infinity }

let rate t = Rate.bps t.rate

(* Attribute an event to the monitor interval its packet was *sent* in:
   ACKs arrive one RTT after the probe rate that produced them applied. *)
let find_mi t sent_at =
  let matches m =
    sent_at >= m.mi_start && (Float.is_nan m.mi_end || sent_at < m.mi_end)
  in
  if matches t.current then Some t.current
  else List.find_opt matches t.pending

let utility m ~dur =
  let x = float_of_int (m.acked_bytes * 8) /. dur /. 1e6 in
  let loss_rate =
    let total = m.acked + m.lost in
    if total = 0 then 0. else float_of_int m.lost /. float_of_int total
  in
  (* least-squares RTT slope with a deadzone, so serialization quantization
     noise does not read as a delay gradient *)
  let rtt_grad =
    if m.n_rtt < 4 then 0.
    else begin
      let n = float_of_int m.n_rtt in
      let denom = (n *. m.sum_tt) -. (m.sum_t *. m.sum_t) in
      if Float.abs denom < 1e-12 then 0.
      else begin
        let slope = ((n *. m.sum_tr) -. (m.sum_t *. m.sum_r)) /. denom in
        if Float.abs slope < 0.01 then 0. else slope
      end
    end
  in
  (x ** exponent)
  -. (b_coeff *. x *. Float.max 0. rtt_grad)
  -. (c_coeff *. x *. loss_rate)

let apply_pair t ~u_plus ~u_minus =
  let pair_utility = (u_plus +. u_minus) /. 2. in
  if t.doubling then begin
    (* startup: double the rate while utility keeps improving *)
    if pair_utility > t.prev_pair_utility then t.rate <- t.rate *. 2.
    else begin
      t.doubling <- false;
      t.rate <- t.rate /. 2.
    end;
    t.prev_pair_utility <- pair_utility
  end
  else begin
    (* online gradient ascent with confidence amplification and a dynamic
       boundary of 25% of the current rate *)
    let denom = 2. *. t.epsilon *. (t.rate /. 1e6) in
    let gradient = if Float.equal denom 0. then 0. else (u_plus -. u_minus) /. denom in
    let direction = if gradient >= 0. then 1. else -1. in
    if direction = t.last_step then t.amplifier <- min (t.amplifier + 1) 8
    else t.amplifier <- 0;
    t.last_step <- direction;
    let step = theta0 *. float_of_int (1 + t.amplifier) *. gradient in
    let bound = 0.25 *. t.rate in
    let step = Float.max (-.bound) (Float.min bound step) in
    t.rate <- Float.max 100_000. (t.rate +. step)
  end

let score_mi t m =
  let dur = Float.max (m.mi_end -. m.mi_start) 1e-3 in
  t.utilities <- (m.sign, utility m ~dur) :: t.utilities;
  match t.utilities with
  | (s2, u2) :: (s1, u1) :: _ when s1 <> s2 ->
    let u_plus = if s1 > 0. then u1 else u2 in
    let u_minus = if s1 > 0. then u2 else u1 in
    apply_pair t ~u_plus ~u_minus;
    t.utilities <- []
  | _ -> ()

let on_tick t (tk : Cc_types.tick) =
  if t.started then begin
    let now = Time.to_secs tk.now in
    let mi_len = Float.max t.srtt 0.05 in
    (* rotate the current interval *)
    if now -. t.current.mi_start >= mi_len then begin
      t.current.mi_end <- now;
      t.pending <- t.pending @ [ t.current ];
      t.current <- fresh_mi ~now ~sign:(-.t.current.sign)
    end;
    (* score intervals whose ACKs have all had time to arrive *)
    let rec drain () =
      match t.pending with
      | m :: rest when now > m.mi_end +. (1.5 *. t.srtt) ->
        t.pending <- rest;
        score_mi t m;
        drain ()
      | _ -> ()
    in
    drain ()
  end
  else t.current <- fresh_mi ~now:(Time.to_secs tk.now) ~sign:1.

let on_ack t (a : Cc_types.ack) =
  let rtt = Time.to_secs a.rtt in
  t.srtt <- Time.to_secs a.srtt;
  t.started <- true;
  let sent_at = Time.to_secs a.now -. rtt in
  match find_mi t sent_at with
  | None -> ()
  | Some m ->
    m.acked_bytes <- m.acked_bytes + a.bytes;
    m.acked <- m.acked + 1;
    let rel_t = sent_at -. m.mi_start in
    m.n_rtt <- m.n_rtt + 1;
    m.sum_t <- m.sum_t +. rel_t;
    m.sum_r <- m.sum_r +. rtt;
    m.sum_tt <- m.sum_tt +. (rel_t *. rel_t);
    m.sum_tr <- m.sum_tr +. (rel_t *. rtt)

let on_loss t (l : Cc_types.loss) =
  (* losses are detected roughly one RTT after the send *)
  let sent_at = Time.to_secs l.now -. t.srtt in
  match find_mi t sent_at with
  | None -> ()
  | Some m -> m.lost <- m.lost + 1

let cc t =
  { Cc_types.name = "vivace";
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_tick = Some (on_tick t);
    cwnd =
      (fun () ->
        B.bytes (Float.max (3. *. t.rate *. t.srtt /. 8.) (4. *. t.mss)));
    pacing_rate =
      (fun () ->
        Some (Rate.bps (t.rate *. (1. +. (t.current.sign *. t.epsilon))))) }

let make ?mss ?initial_rate ?epsilon () =
  cc (create ?mss ?initial_rate ?epsilon ())
