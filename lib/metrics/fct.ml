let default_buckets = [| 15_000; 150_000; 1_500_000; 15_000_000; 150_000_000 |]

let bucketize ?(buckets = default_buckets) fcts =
  let groups = Array.map (fun _ -> ref []) buckets in
  Array.iter
    (fun (size, fct) ->
      let rec place i =
        if i >= Array.length buckets - 1 || size <= buckets.(i) then i
        else place (i + 1)
      in
      let i = place 0 in
      groups.(i) := Units.Time.to_secs fct :: !(groups.(i)))
    fcts;
  Array.map (fun g -> Array.of_list (List.rev !g)) groups

let p95 per_bucket =
  Array.map
    (fun xs ->
      if Array.length xs = 0 then nan else Nimbus_dsp.Stats.percentile xs 95.)
    per_bucket

let bucket_label bound =
  if bound >= 1_000_000 then Printf.sprintf "%gMB" (float_of_int bound /. 1e6)
  else Printf.sprintf "%gKB" (float_of_int bound /. 1e3)
