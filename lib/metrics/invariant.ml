module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Nimbus = Nimbus_core.Nimbus
module Time = Units.Time
module Rate = Units.Rate

type rule =
  | Conservation
  | Queue_nonneg
  | Finite_signal
  | Mode_hysteresis
  | Custom of string

let rule_to_string = function
  | Conservation -> "packet-conservation"
  | Queue_nonneg -> "queue-nonneg"
  | Finite_signal -> "finite-signal"
  | Mode_hysteresis -> "mode-hysteresis"
  | Custom name -> name

let rule_code = function
  | Conservation -> 0
  | Queue_nonneg -> 1
  | Finite_signal -> 2
  | Mode_hysteresis -> 3
  | Custom _ -> 4

type violation = {
  v_time : Time.t;
  v_rule : rule;
  v_detail : string;
}

(* per-controller mode history for the hysteresis check *)
type watch = {
  w_label : string;
  w_nimbus : Nimbus.t;
  mutable w_mode : Nimbus.mode;
  mutable w_last_switch : float; (* seconds; -inf before any switch *)
}

let max_recorded = 1000

type t = {
  engine : Engine.t;
  (* audited links as (label, bottleneck): one entry for the classic
     dumbbell, one per link for a topology *)
  bottlenecks : (string * Bottleneck.t) list;
  watches : watch list;
  min_dwell : float;
  mutable recorded : violation list; (* newest first, capped *)
  mutable total : int;
  mutable checks : (string * (unit -> string option)) list;
}

let record t rule detail =
  t.total <- t.total + 1;
  (let tr = Engine.trace t.engine in
   if Nimbus_trace.Trace.want tr Nimbus_trace.Event.Invariant then
     Nimbus_trace.Trace.violation tr
       ~now:(Time.to_secs (Engine.now t.engine))
       ~rule:(rule_code rule));
  if t.total <= max_recorded then
    t.recorded <-
      { v_time = Engine.now t.engine; v_rule = rule; v_detail = detail }
      :: t.recorded

let check_bottleneck t (label, bn) =
  let offered = Bottleneck.offered_packets bn in
  let delivered = Bottleneck.delivered_packets bn in
  let queued = Bottleneck.queued_packets bn in
  let drops = Bottleneck.drops bn in
  if offered <> delivered + drops + queued then
    record t Conservation
      (Printf.sprintf "%s: offered %d <> delivered %d + drops %d + queued %d"
         label offered delivered drops queued);
  if queued < 0 || Bottleneck.qlen_bytes bn < 0 then
    record t Queue_nonneg
      (Printf.sprintf "%s: queued %d pkts / %d bytes" label queued
         (Bottleneck.qlen_bytes bn))

let finite_or_unknown x = Float.is_finite x || Float.is_nan x

let check_watch t w =
  let eta = Nimbus.last_eta w.w_nimbus in
  let z = Rate.to_bps (Nimbus.last_z w.w_nimbus) in
  if not (finite_or_unknown eta) then
    record t Finite_signal (Printf.sprintf "%s: eta = %h" w.w_label eta);
  if not (finite_or_unknown z) then
    record t Finite_signal (Printf.sprintf "%s: z = %h" w.w_label z);
  let mode = Nimbus.mode w.w_nimbus in
  if mode <> w.w_mode then begin
    let now = Time.to_secs (Engine.now t.engine) in
    if now -. w.w_last_switch < t.min_dwell then
      record t Mode_hysteresis
        (Printf.sprintf "%s: %s -> %s only %.3f s after the previous switch"
           w.w_label
           (Nimbus.mode_to_string w.w_mode)
           (Nimbus.mode_to_string mode)
           (now -. w.w_last_switch));
    w.w_mode <- mode;
    w.w_last_switch <- now
  end

let tick t () =
  List.iter (check_bottleneck t) t.bottlenecks;
  List.iter (check_watch t) t.watches;
  List.iter
    (fun (name, check) ->
      match check () with
      | Some detail -> record t (Custom name) detail
      | None -> ())
    t.checks

let create engine ?bottleneck ?(bottlenecks = []) ?(nimbus = [])
    ?(min_dwell = Time.ms 250.) ?(interval = Time.ms 10.) ?until () =
  let watches =
    List.map
      (fun (label, nim) ->
        { w_label = label; w_nimbus = nim; w_mode = Nimbus.mode nim;
          w_last_switch = neg_infinity })
      nimbus
  in
  let bottlenecks =
    (match bottleneck with
    | Some bn -> [ ("bottleneck", bn) ]
    | None -> [])
    @ bottlenecks
  in
  let t =
    { engine; bottlenecks; watches; min_dwell = Time.to_secs min_dwell;
      recorded = []; total = 0; checks = [] }
  in
  Engine.every engine ~dt:interval ?until (tick t);
  t

let add_check t ~name check = t.checks <- t.checks @ [ (name, check) ]

let violations t = List.rev t.recorded

let count t = t.total

let ok t = t.total = 0

let report t =
  if t.total = 0 then "invariants: ok (0 violations)"
  else begin
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "invariants: %d violation(s)%s\n" t.total
         (if t.total > max_recorded then
            Printf.sprintf " (first %d recorded)" max_recorded
          else ""));
    List.iter
      (fun v ->
        Buffer.add_string b
          (Printf.sprintf "  [%8.3f s] %-20s %s\n"
             (Time.to_secs v.v_time)
             (rule_to_string v.v_rule)
             v.v_detail))
      (violations t);
    Buffer.contents b
  end
