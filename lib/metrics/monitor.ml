module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Flow = Nimbus_cc.Flow
module Time = Units.Time

let probe engine ~interval ?start ?until f =
  let series = Series.create () in
  Engine.every engine ~dt:interval ?start ?until (fun () ->
      Series.add series ~time:(Engine.now engine) ~value:(f ()));
  series

let throughput engine ~interval ?start ?until counter =
  let series = Series.create () in
  let interval_s = Time.to_secs interval in
  let prev = ref (counter ()) in
  Engine.every engine ~dt:interval ?start ?until (fun () ->
      let cur = counter () in
      let bps = float_of_int ((cur - !prev) * 8) /. interval_s in
      prev := cur;
      Series.add series ~time:(Engine.now engine) ~value:bps);
  series

let flow_throughput engine flow ~interval ?start ?until () =
  throughput engine ~interval ?start ?until (fun () ->
      Flow.received_bytes flow)

let queue_delay engine bottleneck ~interval ?start ?until () =
  probe engine ~interval ?start ?until (fun () ->
      Time.to_secs (Bottleneck.queue_delay bottleneck))

let flow_rtt engine flow ~interval ?start ?until () =
  probe engine ~interval ?start ?until (fun () ->
      Time.to_secs (Flow.last_rtt flow))
