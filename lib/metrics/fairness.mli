(** Fairness indices over per-flow throughputs. *)

(** [jain xs] is Jain's fairness index [(Σx)² / (n·Σx²)] — 1 for perfectly
    equal shares, → 1/n as one flow dominates. [nan] on empty input or all
    zeros. *)
val jain : float array -> float

(** [normalized_share ~achieved ~fair] is [achieved / fair]; [nan] when
    [fair] is not positive. *)
val normalized_share : achieved:Units.Rate.t -> fair:Units.Rate.t -> float
