module Time = Units.Time

type t = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create () = { times = Array.make 64 0.; values = Array.make 64 0.; len = 0 }

let grow t =
  if t.len = Array.length t.times then begin
    let cap = 2 * Array.length t.times in
    let times = Array.make cap 0. and values = Array.make cap 0. in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.values 0 values 0 t.len;
    t.times <- times;
    t.values <- values
  end

let add t ~time ~value =
  grow t;
  t.times.(t.len) <- Time.to_secs time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let length t = t.len

let times t = Array.sub t.times 0 t.len

let values t = Array.sub t.values 0 t.len

let values_between t ~lo ~hi =
  let lo = Time.to_secs lo and hi = Time.to_secs hi in
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    if t.times.(i) >= lo && t.times.(i) < hi then out := t.values.(i) :: !out
  done;
  Array.of_list !out

let mean_between t ~lo ~hi =
  let xs = values_between t ~lo ~hi in
  if Array.length xs = 0 then nan else Nimbus_dsp.Stats.mean xs

let iter t f =
  for i = 0 to t.len - 1 do
    f t.times.(i) t.values.(i)
  done

let last_value t = if t.len = 0 then nan else t.values.(t.len - 1)
