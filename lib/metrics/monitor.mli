(** Periodic probes that turn live simulation state into {!Series.t}. *)

(** [probe engine ~interval ?start ?until f] samples [f ()] every [interval]
    into a fresh series. *)
val probe :
  Nimbus_sim.Engine.t ->
  interval:Units.Time.t ->
  ?start:Units.Time.t ->
  ?until:Units.Time.t ->
  (unit -> float) ->
  Series.t

(** [throughput engine ~interval ?start ?until counter] converts a cumulative
    byte counter into a bits-per-second series (delta per interval). *)
val throughput :
  Nimbus_sim.Engine.t ->
  interval:Units.Time.t ->
  ?start:Units.Time.t ->
  ?until:Units.Time.t ->
  (unit -> int) ->
  Series.t

(** [flow_throughput engine flow ~interval] — receiver goodput of one flow. *)
val flow_throughput :
  Nimbus_sim.Engine.t ->
  Nimbus_cc.Flow.t ->
  interval:Units.Time.t ->
  ?start:Units.Time.t ->
  ?until:Units.Time.t ->
  unit ->
  Series.t

(** [queue_delay engine bottleneck ~interval] — instantaneous bottleneck
    queueing delay in seconds. *)
val queue_delay :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  interval:Units.Time.t ->
  ?start:Units.Time.t ->
  ?until:Units.Time.t ->
  unit ->
  Series.t

(** [flow_rtt engine flow ~interval] — the flow's latest RTT sample in
    seconds ([nan] before traffic). *)
val flow_rtt :
  Nimbus_sim.Engine.t ->
  Nimbus_cc.Flow.t ->
  interval:Units.Time.t ->
  ?start:Units.Time.t ->
  ?until:Units.Time.t ->
  unit ->
  Series.t
