(** Flow-completion-time aggregation by flow-size bucket (Appendix B). *)

(** Bucket upper bounds in bytes, mirroring the paper's Fig. 21 x-axis:
    15 KB, 150 KB, 1.5 MB, 15 MB, 150 MB. *)
val default_buckets : int array

(** [bucketize ?buckets fcts] groups [(size, fct)] pairs by the first bucket
    whose bound is [>= size]; oversized flows land in the last bucket.
    Result has one (possibly empty) array of FCTs in seconds per bucket. *)
val bucketize :
  ?buckets:int array -> (int * Units.Time.t) array -> float array array

(** [p95 per_bucket] maps each bucket to its 95th-percentile FCT
    ([nan] for empty buckets). *)
val p95 : float array array -> float array

(** [bucket_label bound] renders "15KB", "1.5MB", ... *)
val bucket_label : int -> string
