(** Runtime invariant monitor: audits simulation state every tick and
    reports violations instead of letting a fault (or a bug the fault
    uncovers) silently corrupt result tables.

    Built-in rules:
    - {e packet conservation} — at the bottleneck,
      [offered = delivered + drops + queued] at every instant;
    - {e queue non-negativity} — byte and packet queue lengths [>= 0];
    - {e finite signals} — each watched Nimbus controller's ẑ and η are
      finite or NaN (the repo-wide "not yet measured" sentinel), never
      infinite;
    - {e mode-switch hysteresis} — two mode switches of a watched controller
      closer than [min_dwell] mean the asymmetric-hysteresis contract broke
      (a genuine switch needs a ≥ 3-verdict streak, i.e. ≥ 300 ms).

    Additional experiment-specific predicates can be attached with
    {!add_check}. *)

type rule =
  | Conservation
  | Queue_nonneg
  | Finite_signal
  | Mode_hysteresis
  | Custom of string  (** an {!add_check} predicate, by name *)

val rule_to_string : rule -> string

(** [rule_code rule] — stable small-integer code used by the trace layer's
    [violation] event ([Conservation] 0, [Queue_nonneg] 1, [Finite_signal] 2,
    [Mode_hysteresis] 3, any [Custom] 4). *)
val rule_code : rule -> int

type violation = {
  v_time : Units.Time.t;
  v_rule : rule;
  v_detail : string;
}

type t

(** [create engine ?bottleneck ?bottlenecks ?nimbus ()] starts auditing on
    a periodic engine event.
    @param bottleneck link whose conservation ledger and queue to audit
           (labelled ["bottleneck"] in violation details)
    @param bottlenecks further labelled links to audit the same way — pass
           one entry per topology link for per-link conservation (e.g.
           labelled by [Topology.link_label])
    @param nimbus labelled controllers whose signals and mode switches to
           audit
    @param min_dwell minimum legal gap between mode switches (default
           250 ms)
    @param interval audit period (default 10 ms)
    @param until stop auditing after this time *)
val create :
  Nimbus_sim.Engine.t ->
  ?bottleneck:Nimbus_sim.Bottleneck.t ->
  ?bottlenecks:(string * Nimbus_sim.Bottleneck.t) list ->
  ?nimbus:(string * Nimbus_core.Nimbus.t) list ->
  ?min_dwell:Units.Time.t ->
  ?interval:Units.Time.t ->
  ?until:Units.Time.t ->
  unit ->
  t

(** [add_check t ~name check] runs [check ()] every audit tick; [Some
    detail] records a [Custom name] violation. *)
val add_check : t -> name:string -> (unit -> string option) -> unit

(** [violations t] — recorded violations in time order (capped at 1000;
    {!count} keeps counting past the cap). *)
val violations : t -> violation list

(** [count t] is the total number of violations observed. *)
val count : t -> int

(** [ok t] is [count t = 0]. *)
val ok : t -> bool

(** [report t] is a human-readable violation summary (one line per
    violation), used by the CLI fault matrix and CI artifact. *)
val report : t -> string
