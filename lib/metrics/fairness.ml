module Rate = Units.Rate

let jain xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sum = Array.fold_left ( +. ) 0. xs in
    let sumsq = Array.fold_left (fun a x -> a +. (x *. x)) 0. xs in
    if Float.equal sumsq 0. then nan else sum *. sum /. (float_of_int n *. sumsq)
  end

let normalized_share ~achieved ~fair =
  let fair = Rate.to_bps fair in
  if fair <= 0. then nan else Rate.to_bps achieved /. fair
