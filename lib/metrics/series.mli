(** Append-only (time, value) series collected during a simulation run.
    Values are unit-agnostic floats (bps, seconds, η, …); times are typed. *)

type t

val create : unit -> t

(** [add t ~time ~value]. *)
val add : t -> time:Units.Time.t -> value:float -> unit

val length : t -> int

(** [times t], [values t] — chronological copies; times in seconds. *)
val times : t -> float array

val values : t -> float array

(** [values_between t ~lo ~hi] — values with [lo <= time < hi]. *)
val values_between : t -> lo:Units.Time.t -> hi:Units.Time.t -> float array

(** [mean_between t ~lo ~hi] — [nan] when the window is empty. *)
val mean_between : t -> lo:Units.Time.t -> hi:Units.Time.t -> float

(** [iter t f] applies [f time_secs value] in insertion order. *)
val iter : t -> (float -> float -> unit) -> unit

(** [last_value t] — [nan] when empty. *)
val last_value : t -> float
