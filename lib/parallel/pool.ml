(* A work-stealing-free domain pool: each [map] publishes one shared step
   function; every participant (pool workers and the submitting caller alike)
   repeatedly claims the next index from an [Atomic] dispenser until the job
   is exhausted.  The caller always helps drain its own job, so a map issued
   from inside a pool task (nested parallelism) can never deadlock even when
   every worker is busy. *)

type step = unit -> bool

type t = {
  m : Mutex.t;
  c : Condition.t; (* work arrival and shutdown *)
  mutable pending : step list;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  parallelism : int;
}
[@@domain_safe
  "pending/stop are only touched under m; workers is only touched by the \
   owning domain (create before any spawn returns, shutdown after every \
   join)"]

let drain (step : step) = while step () do () done

let rec worker_loop pool =
  Mutex.lock pool.m;
  let rec await () =
    if pool.stop then begin
      Mutex.unlock pool.m;
      None
    end
    else begin
      match pool.pending with
      | [] ->
        Condition.wait pool.c pool.m;
        await ()
      | step :: _ ->
        Mutex.unlock pool.m;
        Some step
    end
  in
  match await () with
  | None -> ()
  | Some step ->
    drain step;
    (* exhausted: retire it so idle workers stop picking it up *)
    Mutex.lock pool.m;
    pool.pending <- List.filter (fun s -> s != step) pool.pending;
    Mutex.unlock pool.m;
    worker_loop pool

let create ?domains () =
  let n =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  if n < 1 then invalid_arg "Pool.create: domains < 1";
  let pool =
    { m = Mutex.create (); c = Condition.create (); pending = []; stop = false;
      workers = []; parallelism = n }
  in
  (* the caller participates in every map, so n-way parallelism needs only
     n - 1 dedicated domains; jobs = 1 spawns none and runs sequentially *)
  pool.workers <-
    List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let parallelism t = t.parallelism

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let submit t step =
  Mutex.lock t.m;
  t.pending <- t.pending @ [ step ];
  Condition.broadcast t.c;
  Mutex.unlock t.m

let retire t step =
  Mutex.lock t.m;
  t.pending <- List.filter (fun s -> s != step) t.pending;
  Mutex.unlock t.m

type job_error = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

let try_map t ~f n =
  if n < 0 then invalid_arg "Pool.try_map: negative size";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let m = Mutex.create () and c = Condition.create () in
    let step () =
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then false
      else begin
        (* a raising job is captured in its own slot, with its backtrace,
           so one crashed index cannot poison the others *)
        (match f i with
        | r -> results.(i) <- Some (Ok r)
        | exception exn ->
          let backtrace = Printexc.get_raw_backtrace () in
          results.(i) <- Some (Error { exn; backtrace }));
        if Atomic.fetch_and_add completed 1 = n - 1 then begin
          (* last index done: wake the submitting caller if it is waiting *)
          Mutex.lock m;
          Condition.broadcast c;
          Mutex.unlock m
        end;
        true
      end
    in
    submit t
      (step
      [@shared_ok
        "closes over this job's own results/next/completed/m/c (index-\
         disjoint slots, atomics, a lock) plus the caller's f, which is \
         capture-checked at the caller's pool site"]);
    drain step;
    Mutex.lock m;
    while Atomic.get completed < n do
      Condition.wait c m
    done;
    Mutex.unlock m;
    retire t step;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* completed = n *))
      results
  end

let map t ~f n =
  Array.map
    (function
      | Ok r -> r
      | Error { exn; backtrace } ->
        Printexc.raise_with_backtrace exn backtrace)
    (try_map t
       ~f:
         (f
         [@shared_ok
           "forwarded unchanged; capture-checked at the original caller's \
            site"])
       n)

let map_reduce t ~f ~reduce ~init n =
  (* results are reduced strictly in index order, so the outcome is
     independent of how indices were scheduled across domains *)
  Array.fold_left reduce init
    (map t
       ~f:
         (f
         [@shared_ok
           "forwarded unchanged; capture-checked at the original caller's \
            site"])
       n)

let run ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
