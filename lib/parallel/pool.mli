(** A small domain pool for index-parallel fan-out, built on stdlib
    [Domain] / [Mutex] / [Condition] only.

    Each {!map} shares one atomic index dispenser between the pool's worker
    domains and the calling domain, which always participates; a map issued
    from inside a pool task therefore drains itself and cannot deadlock.
    Results are stored by index and returned (or reduced) in index order, so
    output is deterministic regardless of scheduling — a pool of
    parallelism 1 runs everything sequentially in the caller.

    Tasks run on arbitrary domains: they must not share non-thread-safe
    mutable state (in this codebase, notably a [Rng.t] or a detector) unless
    they synchronise it themselves. *)

type t

(** [create ?domains ()] spawns a pool of total parallelism [domains]
    (default {!Domain.recommended_domain_count}).  [domains - 1] worker
    domains are spawned; the caller supplies the remaining lane.
    @raise Invalid_argument if [domains < 1]. *)
val create : ?domains:int -> unit -> t

(** [parallelism t] is the pool's total parallelism (workers + caller). *)
val parallelism : t -> int

(** A job that raised: the exception together with the backtrace captured on
    the domain that ran it. *)
type job_error = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

(** [try_map t ~f n] evaluates [f 0 .. f (n-1)] across the pool, capturing
    each raising job as [Error] in its own slot — one crashed index never
    affects the others, and the pool stays fully usable afterwards.
    @raise Invalid_argument if [n < 0]. *)
val try_map : t -> f:(int -> 'a) -> int -> ('a, job_error) result array

(** [map t ~f n] is [[| f 0; ...; f (n-1) |]], evaluated across the pool.
    If any [f i] raises, every index still runs to completion and then the
    lowest-indexed failure is re-raised in the caller with its original
    backtrace.
    @raise Invalid_argument if [n < 0]. *)
val map : t -> f:(int -> 'a) -> int -> 'a array

(** [map_reduce t ~f ~reduce ~init n] folds [reduce] over the results of
    [map t ~f n] strictly in index order. *)
val map_reduce :
  t -> f:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> init:'b -> int -> 'b

(** [shutdown t] stops and joins the worker domains.  Calling {!map} after
    shutdown runs entirely in the caller. *)
val shutdown : t -> unit

(** [run ?domains f] is [f pool] with {!shutdown} guaranteed afterwards. *)
val run : ?domains:int -> (t -> 'a) -> 'a
