module Time = Units.Time
module Rate = Units.Rate
module Freq = Units.Freq

type shape =
  | Asymmetric
  | Symmetric

let pi = 4.0 *. atan 1.0

(* The waveform maths runs on raw floats (bits/s, Hz, seconds); the typed
   boundary is the .mli. *)

let value_raw ~shape ~amplitude ~freq t =
  if freq <= 0. then invalid_arg "Pulse.value: freq <= 0";
  if amplitude < 0. then invalid_arg "Pulse.value: negative amplitude";
  let period = 1. /. freq in
  let phase = Float.rem t period in
  let phase = if phase < 0. then phase +. period else phase in
  match shape with
  | Symmetric -> amplitude *. sin (2. *. pi *. phase /. period)
  | Asymmetric ->
    let quarter = period /. 4. in
    if phase < quarter then
      (* positive half-sine over the first quarter *)
      amplitude *. sin (pi *. phase /. quarter)
    else begin
      (* negative half-sine, one third of the amplitude, over the rest *)
      let rest = period -. quarter in
      -.(amplitude /. 3.) *. sin (pi *. (phase -. quarter) /. rest)
    end

let value ~shape ~amplitude ~freq t =
  Rate.bps
    (value_raw ~shape ~amplitude:(Rate.to_bps amplitude)
       ~freq:(Freq.to_hz freq) (Time.to_secs t))

let min_send_rate ~shape ~amplitude =
  match shape with
  | Symmetric -> amplitude
  | Asymmetric -> Rate.scale (1. /. 3.) amplitude

let mean ~shape ~amplitude ~freq ~samples =
  if samples <= 0 then invalid_arg "Pulse.mean: samples <= 0";
  let amplitude = Rate.to_bps amplitude in
  let freq = Freq.to_hz freq in
  let period = 1. /. freq in
  let dt = period /. float_of_int samples in
  let acc = ref 0. in
  for i = 0 to samples - 1 do
    acc :=
      !acc
      +. value_raw ~shape ~amplitude ~freq ((float_of_int i +. 0.5) *. dt)
  done;
  Rate.bps (!acc /. float_of_int samples)
