(** Nimbus: mode-switching congestion control driven by elasticity detection
    (§4, §6 of the paper).

    A Nimbus flow runs a TCP-competitive algorithm (Cubic or Reno) when the
    elasticity detector reports elastic cross traffic, and a delay-controlling
    algorithm (BasicDelay, Vegas, or Copa's default mode) otherwise. The
    sender modulates its pacing rate with asymmetric sinusoidal pulses and
    reads the cross-traffic response off the FFT of ẑ(t).

    With [multi_flow] enabled, flows coordinate without communicating: one
    *pulser* encodes the current mode in its pulse frequency
    ([fp_competitive] vs [fp_delay]); *watchers* read that frequency out of
    the FFT of their own receive rate, smooth their transmission rate below
    the pulsing band so the pulser sees them as inelastic, and run a
    randomized election when no pulser is audible (Eq. 5). *)

type mode =
  | Delay
  | Competitive

type role =
  | Pulser
  | Watcher

type competitive_alg =
  [ `Cubic
  | `Reno
  ]

type delay_alg =
  [ `Basic_delay
  | `Vegas
  | `Copa_default
  ]

(** What a detection was based on — the failure-recovery state machine made
    observable. Watchers report whether the pulser's tone is currently heard,
    has never been heard / recently faded ([Ev_pulser_quiet]), or has been
    silent for longer than [pulse_timeout] after being heard
    ([Ev_pulser_lost], the orphaned state that boosts the Eq. 5 election). *)
type evidence =
  | Ev_eta of float  (** pulser: its own Eq. 3 verdict *)
  | Ev_pulser_heard of mode  (** watcher: tone audible, following this mode *)
  | Ev_pulser_quiet  (** watcher: no tone, but not (yet) orphaned *)
  | Ev_pulser_lost  (** watcher: tone lost for > [pulse_timeout] *)
  | Ev_elected  (** this flow just won the election and became the pulser *)

(** Detection outcome passed to the [on_detection] hook every detection
    interval once the FFT window is full (plus once, out of cadence, when a
    flow wins the election). *)
type detection = {
  d_time : Units.Time.t;
  d_eta : float;
      (** Eq. 3 at the active pulse frequency; nan for watchers (they track
          the pulser instead) *)
  d_mode : mode;  (** mode after this detection *)
  d_role : role;
  d_evidence : evidence;
}

(** Per-tick raw signals passed to the [on_sample] hook (10 ms period). *)
type sample = {
  s_time : Units.Time.t;
  s_send_rate : Units.Rate.t;  (** S(t) *)
  s_recv_rate : Units.Rate.t;  (** R(t) *)
  s_z : Units.Rate.t;  (** ẑ(t); {!Units.Rate.unknown} before measurable *)
  s_base_rate : Units.Rate.t;  (** inner controller rate, before pulses *)
}

type t

(** Construction parameters.  Start from {!Config.default} (which fixes
    the paper's defaults) and override fields with record-update syntax:
    {[
      Nimbus.create
        { (Nimbus.Config.default ~mu) with multi_flow = true; seed = 42 }
    ]} *)
module Config : sig
  type nonrec t = {
    mu : Z_estimator.Mu.t;
        (** link-rate source (supply {!Z_estimator.Mu.known} in
            emulation, {!Z_estimator.Mu.estimator} on unknown paths) *)
    competitive : competitive_alg;  (** TCP-competitive algorithm *)
    delay : delay_alg;  (** delay-control algorithm *)
    pulse_frac : float;  (** pulse amplitude as a fraction of µ *)
    pulse_shape : Pulse.shape;
    fp_competitive : Units.Freq.t;
        (** pulse frequency in competitive mode *)
    fp_delay : Units.Freq.t;
        (** pulse frequency in delay mode; only used when
            [use_mode_frequencies] is on *)
    use_mode_frequencies : bool option;
        (** encode the mode in the pulse frequency
            ([None]: on iff [multi_flow]) *)
    fft_window : Units.Time.t;  (** duration of ẑ per FFT *)
    sample_interval : Units.Time.t;  (** tick period *)
    detect_interval : Units.Time.t;  (** how often to re-run detection *)
    eta_thresh : float;  (** detection threshold *)
    multi_flow : bool;
        (** enable the pulser/watcher protocol ([false]: this flow
            always pulses) *)
    kappa : float;
        (** election aggressiveness, expected pulsers per FFT window *)
    delay_target : Units.Time.t;
        (** BasicDelay's queueing-delay target *)
    switch_streak : int;
        (** consecutive inelastic detections required before leaving
            competitive mode (default 30, i.e. three seconds at the
            default detection interval); switching into competitive
            mode is immediate.  Set 1 to reproduce the paper's
            memoryless rule. *)
    pulse_timeout : Units.Time.t;
        (** watcher failover latency: once a pulse tone that was heard
            on the fast keep-alive probe (a single-bin Goertzel over
            the trailing ~1 s of the receive rate) has been silent
            this long, the watcher is {e orphaned} — its
            [on_detection] evidence becomes [Ev_pulser_lost] and its
            Eq. 5 election probability is boosted so a replacement
            pulser appears within one FFT window of a pulser death *)
    z_gate_delay : Units.Time.t;
        (** standing-queue threshold: when [rtt − min_rtt] is below it
            the bottleneck has no backlog, Eq. 1 is invalid (and
            nothing elastic can be present), so the ẑ sample is forced
            to 0 *)
    min_z_frac : float;
        (** minimum mean ẑ (as a fraction of µ) over the FFT window
            for an elastic verdict — with no meaningful cross traffic
            Eq. 3 is a ratio of noise bins, so η is forced ≤ 1 below
            this floor *)
    rate_reset : bool;
        (** restore the pre-squeeze rate when entering competitive
            mode ([false] ablates §4.1's reset) *)
    taper : Nimbus_dsp.Window.kind option;
        (** forwarded to {!Elasticity.create} *)
    detrend : Nimbus_dsp.Spectrum.detrend option;
        (** forwarded to {!Elasticity.create} *)
    seed : int;  (** randomness for the election *)
    trace : Nimbus_trace.Trace.t;
        (** collector for [detector]/[spectrum]/[pulse]/[mode]/
            [election] events (default {!Nimbus_trace.Trace.disabled}) *)
    on_detection : (detection -> unit) option;  (** observation hook *)
    on_sample : (sample -> unit) option;  (** observation hook *)
  }

  (** [default ~mu] — the paper's defaults: Cubic/BasicDelay inners,
      0.25 pulse fraction, asymmetric pulses at 5/6 Hz, 5 s FFT window,
      10 ms ticks, 100 ms detection, η threshold 2, single-flow,
      κ = 1, 12.5 ms delay target, 30-streak hysteresis, 1 s pulse
      timeout, 3 ms ẑ gate, 0.05 ẑ floor, rate reset on, tracing
      off. *)
  val default : mu:Z_estimator.Mu.t -> t
end

(** [create config] builds a Nimbus instance; pass [cc t] to
    {!Nimbus_cc.Flow.create} with the same [tick_interval] as
    [config.sample_interval]. *)
val create : Config.t -> t

(** [cc t ~now] is the engine-facing controller. [now] must read the
    simulation clock — the pulse waveform is evaluated at packet-send time,
    not just on ticks. *)
val cc : t -> now:(unit -> Units.Time.t) -> Nimbus_cc.Cc_types.t

(** Current state, for experiment scoring and plots. *)

val mode : t -> mode

val role : t -> role

(** [last_eta t] — [nan] until the first full-window detection. *)
val last_eta : t -> float

(** [last_z t] — most recent ẑ sample; {!Units.Rate.unknown} before any. *)
val last_z : t -> Units.Rate.t

(** [tone_level t] — oscillation amplitude of the fast pulse keep-alive
    probe (single-bin Goertzel over the trailing ~1 s of the receive rate,
    the louder of the two mode frequencies); {!Units.Rate.unknown} until the
    probe window fills. *)
val tone_level : t -> Units.Rate.t

(** [base_rate t] — inner controller rate before pulse modulation. *)
val base_rate : t -> Units.Rate.t

(** [detector t] — the underlying ẑ elasticity detector (spectra etc.). *)
val detector : t -> Elasticity.t

(** [pulse_freq t] — the frequency this flow currently pulses at;
    {!Units.Freq.unknown} for watchers. *)
val pulse_freq : t -> Units.Freq.t

val mode_to_string : mode -> string

val role_to_string : role -> string

val evidence_to_string : evidence -> string
