(** Nimbus: mode-switching congestion control driven by elasticity detection
    (§4, §6 of the paper).

    A Nimbus flow runs a TCP-competitive algorithm (Cubic or Reno) when the
    elasticity detector reports elastic cross traffic, and a delay-controlling
    algorithm (BasicDelay, Vegas, or Copa's default mode) otherwise. The
    sender modulates its pacing rate with asymmetric sinusoidal pulses and
    reads the cross-traffic response off the FFT of ẑ(t).

    With [multi_flow] enabled, flows coordinate without communicating: one
    *pulser* encodes the current mode in its pulse frequency
    ([fp_competitive] vs [fp_delay]); *watchers* read that frequency out of
    the FFT of their own receive rate, smooth their transmission rate below
    the pulsing band so the pulser sees them as inelastic, and run a
    randomized election when no pulser is audible (Eq. 5). *)

type mode =
  | Delay
  | Competitive

type role =
  | Pulser
  | Watcher

type competitive_alg =
  [ `Cubic
  | `Reno
  ]

type delay_alg =
  [ `Basic_delay
  | `Vegas
  | `Copa_default
  ]

(** What a detection was based on — the failure-recovery state machine made
    observable. Watchers report whether the pulser's tone is currently heard,
    has never been heard / recently faded ([Ev_pulser_quiet]), or has been
    silent for longer than [pulse_timeout] after being heard
    ([Ev_pulser_lost], the orphaned state that boosts the Eq. 5 election). *)
type evidence =
  | Ev_eta of float  (** pulser: its own Eq. 3 verdict *)
  | Ev_pulser_heard of mode  (** watcher: tone audible, following this mode *)
  | Ev_pulser_quiet  (** watcher: no tone, but not (yet) orphaned *)
  | Ev_pulser_lost  (** watcher: tone lost for > [pulse_timeout] *)
  | Ev_elected  (** this flow just won the election and became the pulser *)

(** Detection outcome passed to the [on_detection] hook every detection
    interval once the FFT window is full (plus once, out of cadence, when a
    flow wins the election). *)
type detection = {
  d_time : Units.Time.t;
  d_eta : float;
      (** Eq. 3 at the active pulse frequency; nan for watchers (they track
          the pulser instead) *)
  d_mode : mode;  (** mode after this detection *)
  d_role : role;
  d_evidence : evidence;
}

(** Per-tick raw signals passed to the [on_sample] hook (10 ms period). *)
type sample = {
  s_time : Units.Time.t;
  s_send_rate : Units.Rate.t;  (** S(t) *)
  s_recv_rate : Units.Rate.t;  (** R(t) *)
  s_z : Units.Rate.t;  (** ẑ(t); {!Units.Rate.unknown} before measurable *)
  s_base_rate : Units.Rate.t;  (** inner controller rate, before pulses *)
}

type t

(** [create ~mu ()] builds a Nimbus instance; pass [cc t] to
    {!Nimbus_cc.Flow.create} with the same [tick_interval] as
    [sample_interval].

    @param mu link-rate source (supply {!Z_estimator.Mu.known} in emulation,
           {!Z_estimator.Mu.estimator} on unknown paths)
    @param competitive TCP-competitive algorithm (default [`Cubic])
    @param delay delay-control algorithm (default [`Basic_delay])
    @param pulse_frac pulse amplitude as a fraction of µ (default 0.25)
    @param pulse_shape default {!Pulse.Asymmetric}
    @param fp_competitive pulse frequency in competitive mode (default 5 Hz)
    @param fp_delay pulse frequency in delay mode (default 6 Hz); only used
           when [use_mode_frequencies] is on
    @param use_mode_frequencies encode the mode in the pulse frequency
           (default: on iff [multi_flow])
    @param fft_window duration of ẑ per FFT (default 5 s)
    @param sample_interval tick period (default 10 ms)
    @param detect_interval how often to re-run detection (default 100 ms)
    @param eta_thresh detection threshold (default 2)
    @param multi_flow enable the pulser/watcher protocol (default false:
           this flow always pulses)
    @param kappa election aggressiveness, expected pulsers per FFT window
           (default 1)
    @param delay_target BasicDelay's queueing-delay target
    @param z_gate_delay standing-queue threshold: when [rtt − min_rtt] is
           below it the bottleneck has no backlog, Eq. 1 is invalid (and
           nothing elastic can be present), so the ẑ sample is forced to 0
           (default 3 ms)
    @param min_z_frac minimum mean ẑ (as a fraction of µ) over the FFT
           window for an elastic verdict — with no meaningful cross traffic
           Eq. 3 is a ratio of noise bins, so η is forced ≤ 1 below this
           floor (default 0.05)
    @param switch_streak consecutive inelastic detections required before
           leaving competitive mode (default 30, i.e. three seconds at the
           default detection interval); switching into competitive mode is
           immediate. Set 1 to reproduce the paper's memoryless rule.
    @param pulse_timeout watcher failover latency: once a pulse tone that
           was heard on the fast keep-alive probe (a single-bin Goertzel
           over the trailing ~1 s of the receive rate) has been silent this
           long, the watcher is {e orphaned} — its [on_detection] evidence
           becomes [Ev_pulser_lost] and its Eq. 5 election probability is
           boosted so a replacement pulser appears within one FFT window of
           a pulser death (default 1 s)
    @param rate_reset restore the pre-squeeze rate when entering competitive
           mode (default true; false ablates §4.1's reset)
    @param taper / detrend forwarded to {!Elasticity.create}
    @param seed randomness for the election
    @param on_detection observation hook
    @param on_sample observation hook *)
val create :
  mu:Z_estimator.Mu.t ->
  ?competitive:competitive_alg ->
  ?delay:delay_alg ->
  ?pulse_frac:float ->
  ?pulse_shape:Pulse.shape ->
  ?fp_competitive:Units.Freq.t ->
  ?fp_delay:Units.Freq.t ->
  ?use_mode_frequencies:bool ->
  ?fft_window:Units.Time.t ->
  ?sample_interval:Units.Time.t ->
  ?detect_interval:Units.Time.t ->
  ?eta_thresh:float ->
  ?multi_flow:bool ->
  ?kappa:float ->
  ?delay_target:Units.Time.t ->
  ?switch_streak:int ->
  ?pulse_timeout:Units.Time.t ->
  ?z_gate_delay:Units.Time.t ->
  ?min_z_frac:float ->
  ?rate_reset:bool ->
  ?taper:Nimbus_dsp.Window.kind ->
  ?detrend:Nimbus_dsp.Spectrum.detrend ->
  ?seed:int ->
  ?on_detection:(detection -> unit) ->
  ?on_sample:(sample -> unit) ->
  unit ->
  t

(** [cc t ~now] is the engine-facing controller. [now] must read the
    simulation clock — the pulse waveform is evaluated at packet-send time,
    not just on ticks. *)
val cc : t -> now:(unit -> Units.Time.t) -> Nimbus_cc.Cc_types.t

(** Current state, for experiment scoring and plots. *)

val mode : t -> mode

val role : t -> role

(** [last_eta t] — [nan] until the first full-window detection. *)
val last_eta : t -> float

(** [last_z t] — most recent ẑ sample; {!Units.Rate.unknown} before any. *)
val last_z : t -> Units.Rate.t

(** [tone_level t] — oscillation amplitude of the fast pulse keep-alive
    probe (single-bin Goertzel over the trailing ~1 s of the receive rate,
    the louder of the two mode frequencies); {!Units.Rate.unknown} until the
    probe window fills. *)
val tone_level : t -> Units.Rate.t

(** [base_rate t] — inner controller rate before pulse modulation. *)
val base_rate : t -> Units.Rate.t

(** [detector t] — the underlying ẑ elasticity detector (spectra etc.). *)
val detector : t -> Elasticity.t

(** [pulse_freq t] — the frequency this flow currently pulses at;
    {!Units.Freq.unknown} for watchers. *)
val pulse_freq : t -> Units.Freq.t

val mode_to_string : mode -> string

val role_to_string : role -> string

val evidence_to_string : evidence -> string
