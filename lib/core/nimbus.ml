module Cc_types = Nimbus_cc.Cc_types
module Cubic = Nimbus_cc.Cubic
module Reno = Nimbus_cc.Reno
module Vegas = Nimbus_cc.Vegas
module Copa = Nimbus_cc.Copa
module Basic_delay = Nimbus_cc.Basic_delay
module Ring = Nimbus_dsp.Ring
module Spectrum = Nimbus_dsp.Spectrum
module Ewma = Nimbus_dsp.Ewma
module Goertzel = Nimbus_dsp.Goertzel
module Rng = Nimbus_sim.Rng
module Time = Units.Time
module Freq = Units.Freq
module Rate = Units.Rate
module B = Units.Bytes
module Trace = Nimbus_trace.Trace
module Tev = Nimbus_trace.Event
module Span = Nimbus_trace.Span

type mode =
  | Delay
  | Competitive

type role =
  | Pulser
  | Watcher

type competitive_alg =
  [ `Cubic
  | `Reno
  ]

type delay_alg =
  [ `Basic_delay
  | `Vegas
  | `Copa_default
  ]

type evidence =
  | Ev_eta of float
  | Ev_pulser_heard of mode
  | Ev_pulser_quiet
  | Ev_pulser_lost
  | Ev_elected

type detection = {
  d_time : Units.Time.t;
  d_eta : float;
  d_mode : mode;
  d_role : role;
  d_evidence : evidence;
}

type sample = {
  s_time : Units.Time.t;
  s_send_rate : Units.Rate.t;
  s_recv_rate : Units.Rate.t;
  s_z : Units.Rate.t;
  s_base_rate : Units.Rate.t;
}

type comp_inner =
  | C_cubic of Cubic.t
  | C_reno of Reno.t

type delay_inner =
  | D_basic of Basic_delay.t
  | D_vegas of Vegas.t
  | D_copa of Copa.t

(* Internal state stays raw float (bits/s, Hz, seconds) — detection maths and
   the per-tick hot path run unwrapped; the typed boundary is the .mli. *)

(* The per-tick mutable floats live in their own all-float record: OCaml
   stores such a record flat, so these assignments do not box, unlike a
   mutable float field in the mixed record below. *)
type hot = {
  mutable last_eta : float;
  mutable last_z : float;
  mutable srtt : float;
  mutable next_detect : float;
  mutable mu_cache : float;
}

type t = {
  mu : Z_estimator.Mu.t;
  comp : comp_inner;
  delay : delay_inner;
  pulse_frac : float;
  pulse_shape : Pulse.shape;
  fp_competitive : float;
  fp_delay : float;
  use_mode_frequencies : bool;
  sample_interval : float;
  fft_window : float;
  detect_interval : float;
  eta_thresh : float;
  multi_flow : bool;
  kappa : float;
  rng : Rng.t;
  on_detection : (detection -> unit) option;
  on_sample : (sample -> unit) option;
  z_detector : Elasticity.t;   (* ẑ window: the pulser's elasticity source *)
  r_detector : Elasticity.t;   (* own receive rate: watcher / conflict source *)
  (* Pulse keep-alive: single-bin Goertzel evaluators over the trailing
     ~1 s of the receive rate, one per mode frequency.  The full-window
     audibility test needs most of an FFT window to fade after the pulser
     dies; these recent probes go quiet within about a second, which is what
     lets watchers notice a dead pulser within one FFT window. *)
  tone_c : Goertzel.Sliding.t;
  tone_d : Goertzel.Sliding.t;
  (* Same fast probes over ẑ: a pulser's conflict evidence.  The full-window
     spectrum remembers a demoted peer's pulses for up to [fft_window]; these
     clear within about a second of the peer yielding, so one pulser backing
     off does not drag the survivor down with stale evidence. *)
  ztone_c : Goertzel.Sliding.t;
  ztone_d : Goertzel.Sliding.t;
  recent_len : int;            (* tone probe window, in samples *)
  pulse_timeout : float;       (* silence after last tone before "orphaned" *)
  mutable tone_heard_at : float; (* nan until a pulser has ever been heard *)
  mutable follow_target : mode option; (* watcher switch-confirmation streak *)
  mutable follow_streak : int;
  mutable next_conflict_coin : float; (* earliest next demotion coin flip *)
  rate_history : Ring.t;       (* base rates, one per tick, ~fft_window deep *)
  smoothed_rate : Ewma.t;      (* watcher low-pass on the transmitted rate *)
  mutable mode : mode;
  mutable role : role;
  hot : hot;
  switch_streak : int;
  mutable inelastic_streak : int;
  mutable elastic_streak : int;
  z_gate_delay : float;
  min_z_frac : float;
  rate_reset : bool;
  trace : Trace.t;
}

let mode_to_string = function
  | Delay -> "delay"
  | Competitive -> "competitive"

let role_to_string = function
  | Pulser -> "pulser"
  | Watcher -> "watcher"

let evidence_to_string = function
  | Ev_eta eta -> Printf.sprintf "eta=%.3g" eta
  | Ev_pulser_heard m -> "pulser-heard:" ^ mode_to_string m
  | Ev_pulser_quiet -> "pulser-quiet"
  | Ev_pulser_lost -> "pulser-lost"
  | Ev_elected -> "elected"

module Config = struct
  type nonrec t = {
    mu : Z_estimator.Mu.t;
    competitive : competitive_alg;
    delay : delay_alg;
    pulse_frac : float;
    pulse_shape : Pulse.shape;
    fp_competitive : Freq.t;
    fp_delay : Freq.t;
    use_mode_frequencies : bool option;
    fft_window : Time.t;
    sample_interval : Time.t;
    detect_interval : Time.t;
    eta_thresh : float;
    multi_flow : bool;
    kappa : float;
    delay_target : Time.t;
    switch_streak : int;
    pulse_timeout : Time.t;
    z_gate_delay : Time.t;
    min_z_frac : float;
    rate_reset : bool;
    taper : Nimbus_dsp.Window.kind option;
    detrend : Nimbus_dsp.Spectrum.detrend option;
    seed : int;
    trace : Trace.t;
    on_detection : (detection -> unit) option;
    on_sample : (sample -> unit) option;
  }

  let default ~mu =
    {
      mu;
      competitive = `Cubic;
      delay = `Basic_delay;
      pulse_frac = 0.25;
      pulse_shape = Pulse.Asymmetric;
      fp_competitive = Freq.hz 5.;
      fp_delay = Freq.hz 6.;
      use_mode_frequencies = None;
      fft_window = Time.secs 5.;
      sample_interval = Time.ms 10.;
      detect_interval = Time.ms 100.;
      eta_thresh = 2.;
      multi_flow = false;
      kappa = 1.;
      delay_target = Time.ms 12.5;
      switch_streak = 30;
      pulse_timeout = Time.secs 1.;
      z_gate_delay = Time.ms 3.;
      min_z_frac = 0.05;
      rate_reset = true;
      taper = None;
      detrend = None;
      seed = 0xD15EA5E;
      trace = Trace.disabled;
      on_detection = None;
      on_sample = None;
    }
end

let create (cfg : Config.t) =
  let { Config.mu; competitive; delay; pulse_frac; pulse_shape;
        fp_competitive; fp_delay; use_mode_frequencies; fft_window;
        sample_interval; detect_interval; eta_thresh; multi_flow; kappa;
        delay_target; switch_streak; pulse_timeout; z_gate_delay; min_z_frac;
        rate_reset; taper; detrend; seed; trace; on_detection; on_sample } =
    cfg
  in
  let use_mode_frequencies =
    match use_mode_frequencies with Some b -> b | None -> multi_flow
  in
  let mk_detector () =
    Elasticity.create ~sample_interval ~window:fft_window ~eta_thresh ?taper
      ?detrend ()
  in
  let fp_competitive = Freq.to_hz fp_competitive in
  let fp_delay = Freq.to_hz fp_delay in
  let fft_window = Time.to_secs fft_window in
  let sample_interval = Time.to_secs sample_interval in
  let detect_interval = Time.to_secs detect_interval in
  let z_gate_delay = Time.to_secs z_gate_delay in
  let mu_now = Rate.to_bps (Z_estimator.Mu.current mu ~now:Time.zero) in
  let mu_guess = if Float.is_nan mu_now then 10e6 else mu_now in
  let comp =
    match competitive with
    | `Cubic -> C_cubic (Cubic.create ())
    | `Reno -> C_reno (Reno.create ())
  in
  let delay =
    match delay with
    | `Basic_delay ->
      D_basic (Basic_delay.create ~mu:(Rate.bps mu_guess) ~delay_target ())
    | `Vegas -> D_vegas (Vegas.create ())
    | `Copa_default -> D_copa (Copa.create ~switching:false ())
  in
  let hist_len =
    max 2 (int_of_float (Float.round (fft_window /. sample_interval)))
  in
  let pulse_timeout = Time.to_secs pulse_timeout in
  (* trailing ~1 s (never more than half the FFT window) for the tone probe *)
  let recent_len =
    max 2
      (int_of_float
         (Float.round (Float.min 1.0 (fft_window /. 2.) /. sample_interval)))
  in
  let tone_probe freq =
    Goertzel.Sliding.create ~window:recent_len
      ~sample_rate:(Freq.hz (1. /. sample_interval))
      ~freq
  in
  { mu; comp; delay; pulse_frac; pulse_shape; fp_competitive; fp_delay;
    use_mode_frequencies; sample_interval; fft_window; detect_interval;
    eta_thresh; multi_flow; kappa; rng = Rng.create seed; on_detection;
    on_sample; z_detector = mk_detector (); r_detector = mk_detector ();
    tone_c = tone_probe fp_competitive; tone_d = tone_probe fp_delay;
    ztone_c = tone_probe fp_competitive; ztone_d = tone_probe fp_delay;
    recent_len; pulse_timeout; tone_heard_at = nan; follow_target = None;
    follow_streak = 0; next_conflict_coin = 0.;
    rate_history = Ring.create hist_len;
    (* the cutoff must sit well below the pulsing band: the watcher's inner
       controller reacts to the pulser's rate fluctuations within ticks, and
       any residual energy at f_p in the watcher's transmission reads as
       elastic cross traffic at the pulser *)
    smoothed_rate =
      Ewma.create_cutoff
        ~freq:(Float.min fp_competitive fp_delay /. 20.)
        ~dt:sample_interval;
    mode = Delay;
    role = (if multi_flow then Watcher else Pulser);
    hot =
      { last_eta = nan; last_z = nan; srtt = nan; next_detect = fft_window;
        mu_cache = mu_now };
    switch_streak;
    inelastic_streak = 0; elastic_streak = 0; z_gate_delay; min_z_frac;
    rate_reset; trace }

let mode t = t.mode

let role t = t.role

let last_eta t = t.hot.last_eta

let last_z t = Rate.bps t.hot.last_z

let detector t = t.z_detector

(* --- inner-controller plumbing ------------------------------------------ *)

let comp_cwnd t =
  match t.comp with
  | C_cubic c -> Cubic.cwnd_bytes c
  | C_reno r -> Reno.cwnd_bytes r

let comp_reset t bytes =
  match t.comp with
  | C_cubic c -> Cubic.reset_cwnd c bytes
  | C_reno r -> Reno.reset_cwnd r bytes

let comp_cc t =
  match t.comp with
  | C_cubic c -> Cubic.cc c
  | C_reno r -> Reno.cc r

let comp_on_ack t a = (comp_cc t).Cc_types.on_ack a

let comp_on_loss t l = (comp_cc t).Cc_types.on_loss l

let delay_cc t =
  match t.delay with
  | D_basic b -> Basic_delay.cc b
  | D_vegas v -> Vegas.cc v
  | D_copa c -> Copa.cc c

let delay_on_ack t a =
  match t.delay with
  | D_basic _ -> ()
  | D_vegas _ | D_copa _ -> (delay_cc t).Cc_types.on_ack a

let delay_on_loss t l =
  match t.delay with
  | D_basic _ -> ()
  | D_vegas _ | D_copa _ -> (delay_cc t).Cc_types.on_loss l

let srtt_or t default = if Float.is_nan t.hot.srtt then default else t.hot.srtt

(* rate in bits per second of a window-based controller *)
let rate_of_cwnd t cwnd = cwnd *. 8. /. Float.max (srtt_or t 0.1) 1e-3

let delay_rate t =
  match t.delay with
  | D_basic b -> Rate.to_bps (Basic_delay.rate b)
  | D_vegas v -> rate_of_cwnd t (B.to_float (Vegas.cwnd_bytes v))
  | D_copa c -> rate_of_cwnd t (B.to_float (Copa.cwnd_bytes c))

let base_rate_bps t =
  match t.mode with
  | Competitive -> rate_of_cwnd t (B.to_float (comp_cwnd t))
  | Delay -> delay_rate t

let base_rate t = Rate.bps (base_rate_bps t)

(* --- trace plumbing ------------------------------------------------------- *)

let tev_mode = function Delay -> Tev.Delay | Competitive -> Tev.Competitive
let tev_role = function Pulser -> Tev.Pulser | Watcher -> Tev.Watcher

let tev_evidence = function
  | Ev_eta _ -> Tev.Eta
  | Ev_pulser_heard Delay -> Tev.Heard_delay
  | Ev_pulser_heard Competitive -> Tev.Heard_competitive
  | Ev_pulser_quiet -> Tev.Quiet
  | Ev_pulser_lost -> Tev.Lost
  | Ev_elected -> Tev.Won

(* --- mode switching ------------------------------------------------------ *)

let switch_to t target ~now =
  if t.mode <> target then begin
    if Trace.want t.trace Tev.Mode then
      Trace.mode_switch t.trace ~now ~from_mode:(tev_mode t.mode)
        ~to_mode:(tev_mode target) ~role:(tev_role t.role);
    (match target with
     | Competitive ->
       (* restore the pre-squeeze rate (§4.1).  The paper words this as "the
          rate 5 seconds ago", but when detection takes slightly longer than
          the squeeze the sample exactly one window back is already crushed;
          the maximum over the window is the value the reset is after. *)
       let restore =
         if (not t.rate_reset) || Ring.count t.rate_history = 0 then
           base_rate_bps t
         else Ring.fold t.rate_history ~init:0. ~f:Float.max
       in
       let restore =
         if Float.is_nan t.hot.mu_cache then restore else Float.min restore t.hot.mu_cache
       in
       let cwnd = restore *. srtt_or t 0.1 /. 8. in
       comp_reset t (B.bytes cwnd)
     | Delay ->
       let current = rate_of_cwnd t (B.to_float (comp_cwnd t)) in
       (match t.delay with
        | D_basic b -> Basic_delay.set_rate b (Rate.bps current)
        | D_vegas v -> Vegas.reset_cwnd v (comp_cwnd t)
        | D_copa c -> Copa.reset_cwnd c (comp_cwnd t)));
    t.mode <- target
  end

(* --- pulsing -------------------------------------------------------------- *)

let pulse_freq_hz t =
  match t.role with
  | Watcher -> nan
  | Pulser ->
    if t.use_mode_frequencies then
      (match t.mode with
       | Competitive -> t.fp_competitive
       | Delay -> t.fp_delay)
    else t.fp_competitive

let pulse_freq t = Freq.hz (pulse_freq_hz t)

let pulse_value t ~now =
  match t.role with
  | Watcher -> 0.
  | Pulser ->
    if Float.is_nan t.hot.mu_cache then 0.
    else
      Rate.to_bps
        (Pulse.value ~shape:t.pulse_shape
           ~amplitude:(Rate.bps (t.pulse_frac *. t.hot.mu_cache))
           ~freq:(Freq.hz (pulse_freq_hz t))
           now)

let pulse_amplitude t =
  if Float.is_nan t.hot.mu_cache then 0. else t.pulse_frac *. t.hot.mu_cache

(* --- detection ------------------------------------------------------------ *)

let emit_detection t ~now ~eta ~evidence =
  if Trace.want t.trace Tev.Mode then
    Trace.detection t.trace ~now ~eta ~mode:(tev_mode t.mode)
      ~role:(tev_role t.role) ~evidence:(tev_evidence evidence);
  match t.on_detection with
  | Some f ->
    f
      { d_time = Time.secs now; d_eta = eta; d_mode = t.mode; d_role = t.role;
        d_evidence = evidence }
  | None -> ()

let pulser_detect t ~now =
  let fp = pulse_freq_hz t in
  if Elasticity.ready t.z_detector then begin
    let eta = Elasticity.eta t.z_detector ~freq:(Freq.hz fp) in
    (* with (almost) no cross traffic there is nothing whose elasticity the
       ratio could measure -- Eq. 3 on a near-zero signal is noise over
       noise, so require a minimum mean cross-traffic level for an elastic
       verdict.  Likewise, a genuine ACK-clocked reaction to our pulses has
       an amplitude that is a sizeable fraction of the pulse amplitude;
       requiring it suppresses residues such as a smoothed Nimbus watcher's
       low-pass leakage. *)
    let zbar = Elasticity.mean t.z_detector in
    let z_floor =
      if Float.is_nan t.hot.mu_cache then 0. else t.min_z_frac *. t.hot.mu_cache
    in
    let eta = if zbar < z_floor then Float.min eta 1.0 else eta in
    (* Elasticity.eta is +inf when the reference band carries exactly zero
       energy; clamp so consumers (and the finite-signal invariant) always
       see a finite verdict.  nan propagates: min nan x = nan. *)
    let eta = Float.min eta 1e6 in
    t.hot.last_eta <- eta;
    if Trace.want t.trace Tev.Spectrum then begin
      let n = float_of_int t.recent_len in
      let probe_amp p =
        if Goertzel.Sliding.filled p then
          2. /. n *. Goertzel.Sliding.magnitude p *. 1e-6
        else Float.nan
      in
      Trace.window t.trace ~now ~eta ~zbar:(zbar *. 1e-6)
        ~lo:(probe_amp t.ztone_d) ~hi:(probe_amp t.ztone_c)
    end;
    if not (Float.is_nan eta) then begin
      (* asymmetric hysteresis: adopt competitive mode on the first elastic
         verdict (losing throughput to elastic cross traffic is the costly
         error), but require a sustained run of inelastic verdicts before
         dropping back to delay mode, since a single noisy FFT window
         mid-competition would otherwise starve the flow for seconds *)
      if eta >= t.eta_thresh then begin
        t.inelastic_streak <- 0;
        t.elastic_streak <- t.elastic_streak + 1;
        (* a couple of consecutive verdicts (~0.3 s) filter one-window
           transients without materially delaying a genuine switch *)
        if t.elastic_streak >= 3 || t.mode = Competitive then
          switch_to t Competitive ~now
      end
      else begin
        t.inelastic_streak <- t.inelastic_streak + 1;
        t.elastic_streak <- 0;
        if t.mode = Delay || t.inelastic_streak >= t.switch_streak then
          switch_to t Delay ~now
      end
    end;
    (* multiple-pulser conflict: if the cross traffic carries clearly more
       energy at fp than our own receive rate does -- and that energy is of
       genuine pulse magnitude on the *fast* ẑ probe, so the evidence is at
       most ~1 s old -- someone else is pulsing right now.  A solo pulser
       sees the opposite signature (own receive rate dominates ẑ at fp by an
       order of magnitude, fast ẑ tone under half a percent of µ), so both
       gates have a wide margin.  The coin is flipped at most once per 2 s:
       flipping it every detection interval would demote *both* pulsers
       almost surely before either could observe the other yielding. *)
    if t.multi_flow && Elasticity.ready t.r_detector then begin
      let z_amp = Elasticity.peak_amplitude t.z_detector ~freq:(Freq.hz fp) in
      let r_amp = Elasticity.peak_amplitude t.r_detector ~freq:(Freq.hz fp) in
      let z_tone =
        if not (Goertzel.Sliding.filled t.ztone_c) then nan
        else begin
          let n = float_of_int t.recent_len in
          let probe =
            match t.mode with
            | Competitive -> t.ztone_c
            | Delay -> t.ztone_d
          in
          2. /. n *. Goertzel.Sliding.magnitude probe
        end
      in
      let big_enough =
        (not (Float.is_nan t.hot.mu_cache))
        && (not (Float.is_nan z_tone))
        && z_tone >= 0.02 *. t.hot.mu_cache
      in
      if big_enough && z_amp > 1.5 *. r_amp && now >= t.next_conflict_coin
      then begin
        t.next_conflict_coin <- now +. 2.;
        if Rng.bool t.rng ~p:0.5 then begin
          t.role <- Watcher;
          if Trace.want t.trace Tev.Election then Trace.demoted t.trace ~now;
          (* grace period: the demoted pulser must not instantly declare the
             (possibly simultaneously demoted) peer lost and re-elect
             itself *)
          t.tone_heard_at <- now;
          t.follow_target <- None;
          t.follow_streak <- 0
        end
      end
    end;
    emit_detection t ~now ~eta ~evidence:(Ev_eta eta)
  end

(* Reference band for the watcher's pulser search: above both pulse
   frequencies, below the second harmonic of the lower one. *)
let watcher_reference t spectrum =
  let hi_f = Float.max t.fp_competitive t.fp_delay in
  let lo_f = Float.min t.fp_competitive t.fp_delay in
  Spectrum.band_max spectrum ~lo:(hi_f +. 0.8) ~hi:((2. *. lo_f) -. 0.2)

(* A pulser is audible when one of the two mode frequencies dominates its
   neighbourhood (the eta-style ratio) AND carries real energy: the pulses
   have amplitude pulse_frac·µ, so the induced receive-rate oscillation at a
   watcher is a sizeable fraction of µ — a floor of 2% µ rejects noise that
   happens to win the ratio test. *)
let audible_pulser t =
  if not (Elasticity.ready t.r_detector) then None
  else begin
    match Elasticity.spectrum t.r_detector with
    | None -> None
    | Some s ->
      let amp_c = Spectrum.amplitude_at s t.fp_competitive in
      let amp_d = Spectrum.amplitude_at s t.fp_delay in
      let reference = watcher_reference t s in
      let eta_c = if reference > 0. then amp_c /. reference else 0. in
      let eta_d = if reference > 0. then amp_d /. reference else 0. in
      let osc_c =
        Elasticity.oscillation_amplitude t.r_detector
          ~freq:(Freq.hz t.fp_competitive)
      in
      let osc_d =
        Elasticity.oscillation_amplitude t.r_detector
          ~freq:(Freq.hz t.fp_delay)
      in
      let floor_amp =
        if Float.is_nan t.hot.mu_cache then infinity else 0.02 *. t.hot.mu_cache
      in
      let c_ok = eta_c >= t.eta_thresh && osc_c >= floor_amp in
      let d_ok = eta_d >= t.eta_thresh && osc_d >= floor_amp in
      if c_ok && (eta_c >= eta_d || not d_ok) then Some Competitive
      else if d_ok then Some Delay
      else None
  end

(* Oscillation amplitude over the trailing ~1 s of the receive rate at
   whichever mode frequency is louder. *)
let tone_level_bps t =
  if not (Goertzel.Sliding.filled t.tone_c) then nan
  else begin
    let n = float_of_int t.recent_len in
    2. /. n
    *. Float.max
         (Goertzel.Sliding.magnitude t.tone_c)
         (Goertzel.Sliding.magnitude t.tone_d)
  end

(* [tone_heard_at] refresh: does the trailing ~1 s of the receive rate still
   carry pulse-magnitude energy at either mode frequency?  The floor scales
   with the watcher's own receive level, not with µ: a watcher holding
   fraction s of the link sees a pulse oscillation of roughly
   pulse_frac·s·µ, so an absolute floor would go deaf exactly when many
   flows share the link.  A 1%-of-µ backstop keeps dead-air noise out. *)
let recent_tone_alive t =
  let amp = tone_level_bps t in
  (not (Float.is_nan amp))
  && begin
       let own = Elasticity.mean t.r_detector in
       let mu_floor =
         if Float.is_nan t.hot.mu_cache then infinity
         else 0.01 *. t.hot.mu_cache
       in
       (not (Float.is_nan own)) && own >= mu_floor && amp >= 0.025 *. own
     end

let tone_level t = Rate.bps (tone_level_bps t)

let orphaned t ~now =
  (not (Float.is_nan t.tone_heard_at))
  && now -. t.tone_heard_at > t.pulse_timeout

let watcher_detect t ~now =
  if Elasticity.ready t.r_detector then begin
    t.hot.last_eta <- nan;
    let audible = audible_pulser t in
    if Trace.want t.trace Tev.Election then
      Trace.keepalive t.trace ~now ~tone:(tone_level_bps t *. 1e-6)
        ~alive:(recent_tone_alive t);
    (* either probe refreshes the keep-alive: the fast Goertzel catches a
       death quickly, while the full-window test bridges the 1–2 s tone
       dropouts a live pulser produces while resetting rates across a mode
       switch *)
    if recent_tone_alive t || audible <> None then t.tone_heard_at <- now;
    (match audible with
     | Some target when target <> t.mode ->
       (* switch confirmation: follow the pulser only after three
          consecutive identical verdicts (~0.3 s), mirroring the pulser's
          own streak hysteresis so that a loss burst rattling the spectrum
          cannot flap the mode at the detection period *)
       (match t.follow_target with
        | Some m when m = target ->
          t.follow_streak <- t.follow_streak + 1;
          if t.follow_streak >= 3 then begin
            switch_to t target ~now;
            t.follow_target <- None;
            t.follow_streak <- 0
          end
        | Some _ | None ->
          t.follow_target <- Some target;
          t.follow_streak <- 1)
     | Some _ | None ->
       t.follow_target <- None;
       t.follow_streak <- 0);
    let evidence =
      match audible with
      | Some target -> Ev_pulser_heard target
      | None -> if orphaned t ~now then Ev_pulser_lost else Ev_pulser_quiet
    in
    emit_detection t ~now ~eta:nan ~evidence
  end

(* Eq. 5: per-decision probability of becoming the pulser, proportional to
   this flow's share of the link. *)
let election t ~now ~recv_rate =
  if
    t.multi_flow && t.role = Watcher
    && Elasticity.ready t.r_detector
    && not (Float.is_nan t.hot.mu_cache || Float.is_nan recv_rate)
  then begin
    (* Both probes must be silent before a candidacy: the full-window test
       alone lags by most of an FFT window, so a watcher that can already
       hear a freshly elected pulser on the fast keep-alive probe would
       otherwise elect itself against it. *)
    if (not (recent_tone_alive t)) && audible_pulser t = None then begin
      (* Eq. 5, with the share term floored: if every flow is squeezed by
         undetected elastic traffic, all receive rates collapse and the
         pure rate-proportional rule can never bootstrap a pulser *)
      let share = Float.max (recv_rate /. t.hot.mu_cache) 0.05 in
      (* Pulser-failure recovery: once a previously heard pulse tone has
         been silent for pulse_timeout, shorten Eq. 5's horizon from one
         FFT window to ~1.5 s so a replacement pulser appears within one
         window of the failure instead of within one further window.  The
         boosted horizon must stay longer than the ~1 s the keep-alive
         probe needs to acquire the winner's tone, or the losers elect
         themselves before they can possibly hear the winner. *)
      let horizon = if orphaned t ~now then 1.5 else t.fft_window in
      let p = t.kappa *. t.sample_interval /. horizon *. share in
      let p = Float.max 0. (Float.min 1. p) in
      if Rng.bool t.rng ~p then begin
        t.role <- Pulser;
        t.tone_heard_at <- nan;
        t.follow_target <- None;
        t.follow_streak <- 0;
        if Trace.want t.trace Tev.Election then Trace.elected t.trace ~now ~p;
        emit_detection t ~now ~eta:nan ~evidence:Ev_elected
      end
    end
  end

(* --- tick ----------------------------------------------------------------- *)

let on_tick t (tk : Cc_types.tick) =
  Span.enter Detector_tick;
  let now = Time.to_secs tk.now in
  let srtt = Time.to_secs tk.srtt in
  let min_rtt = Time.to_secs tk.min_rtt in
  let recv_rate = Rate.to_bps tk.recv_rate in
  if not (Float.is_nan srtt) then t.hot.srtt <- srtt;
  Z_estimator.Mu.observe t.mu ~now:tk.now ~recv_rate:tk.recv_rate;
  t.hot.mu_cache <- Rate.to_bps (Z_estimator.Mu.current t.mu ~now:tk.now);
  (match t.delay with
   | D_basic b when not (Float.is_nan t.hot.mu_cache) ->
     Basic_delay.set_mu b (Rate.bps t.hot.mu_cache)
   | _ -> ());
  (* ẑ and receive-rate windows.  Eq. 1 requires a busy bottleneck: with no
     standing queue the ratio degenerates to µ − S, which tracks our own
     pulses and would read as elastic cross traffic.  No standing queue also
     means nothing elastic is backlogged, so ẑ = 0 is the truthful sample. *)
  let z =
    if Float.is_nan t.hot.mu_cache then nan
    else if
      (not (Float.is_nan srtt))
      && (not (Float.is_nan min_rtt))
      && srtt -. min_rtt < t.z_gate_delay
    then 0.
    else
      Rate.to_bps
        (Z_estimator.estimate ~mu:(Rate.bps t.hot.mu_cache)
           ~send_rate:tk.send_rate ~recv_rate:tk.recv_rate)
  in
  t.hot.last_z <- z;
  Elasticity.add_sample t.z_detector z;
  let r_sample = if Float.is_nan recv_rate then 0. else recv_rate in
  Elasticity.add_sample t.r_detector r_sample;
  Goertzel.Sliding.push t.tone_c r_sample;
  Goertzel.Sliding.push t.tone_d r_sample;
  let z_sample = if Float.is_nan z then 0. else z in
  Goertzel.Sliding.push t.ztone_c z_sample;
  Goertzel.Sliding.push t.ztone_d z_sample;
  (* delay-mode controller runs on ticks *)
  (match (t.mode, t.delay) with
   | Delay, D_basic b -> Basic_delay.update b tk
   | _ -> ());
  let base = base_rate_bps t in
  Ring.push t.rate_history base;
  ignore (Ewma.update t.smoothed_rate base);
  if Trace.want t.trace Tev.Detector then
    Trace.z_tick t.trace ~now ~z:(z *. 1e-6)
      ~send:(Rate.to_bps tk.send_rate *. 1e-6)
      ~recv:(recv_rate *. 1e-6) ~base:(base *. 1e-6);
  if Trace.want t.trace Tev.Pulse then begin
    match t.role with
    | Pulser ->
      Trace.pulse_phase t.trace ~now ~freq:(pulse_freq_hz t)
        ~value:(pulse_value t ~now:(Time.secs now) *. 1e-6)
    | Watcher -> ()
  end;
  (match t.on_sample with
   | Some f ->
     f
       { s_time = tk.now; s_send_rate = tk.send_rate;
         s_recv_rate = tk.recv_rate; s_z = Rate.bps z;
         s_base_rate = Rate.bps base }
   | None -> ());
  election t ~now ~recv_rate;
  if now >= t.hot.next_detect then begin
    t.hot.next_detect <- now +. t.detect_interval;
    match t.role with
    | Pulser -> pulser_detect t ~now
    | Watcher -> watcher_detect t ~now
  end;
  Span.leave Detector_tick

(* --- the engine-facing controller ----------------------------------------- *)

let on_ack t a =
  match t.mode with
  | Competitive -> comp_on_ack t a
  | Delay -> delay_on_ack t a

let on_loss t l =
  match t.mode with
  | Competitive -> comp_on_loss t l
  | Delay -> delay_on_loss t l

(* Bytes sent in excess of the base rate during one positive pulse lobe:
   the half-sine of amplitude A over T/4 integrates to A·(T/4)·(2/π) bits. *)
let pulse_burst_bytes t =
  let fp = pulse_freq_hz t in
  if Float.is_nan fp then 0.
  else begin
    let period = 1. /. fp in
    pulse_amplitude t *. (period /. 4.) *. (2. /. (4. *. atan 1.)) /. 8.
  end

(* The window must leave room for the positive pulse lobe on top of the base
   rate, or the pulses never reach the wire.  In competitive mode the cap is
   the inner TCP window itself (so Nimbus stays ACK-clock disciplined and
   takes its fair share of drops) plus exactly one pulse burst; in delay mode
   it is a generous anti-runaway bound on the controlled rate. *)
let cwnd_bytes t =
  let srtt = srtt_or t 0.1 in
  match t.mode with
  | Competitive ->
    (match t.role with
     | Pulser -> B.to_float (comp_cwnd t) +. pulse_burst_bytes t
     | Watcher ->
       (* a window-limited watcher would be ACK-clocked -- i.e. genuinely
          elastic cross traffic to the pulser; keep it rate-paced at the
          smoothed rate with a loose anti-runaway cap instead *)
       1.5 *. B.to_float (comp_cwnd t))
  | Delay ->
    let headroom =
      match t.role with Pulser -> pulse_amplitude t | Watcher -> 0.
    in
    Float.max (8. *. 1500.)
      (2. *. (base_rate_bps t +. headroom) *. srtt /. 8.)

let pacing_rate_bps t ~now =
  match t.role with
  | Watcher -> Float.max 100_000. (Ewma.value t.smoothed_rate)
  | Pulser ->
    let base = base_rate_bps t in
    Float.max 100_000. (base +. pulse_value t ~now)

let cc t ~now =
  { Cc_types.name = "nimbus";
    on_ack = (fun a -> on_ack t a);
    on_loss = (fun l -> on_loss t l);
    on_tick = Some (fun tk -> on_tick t tk);
    cwnd = (fun () -> B.bytes (cwnd_bytes t));
    pacing_rate =
      (fun () ->
        Some (Rate.bps (pacing_rate_bps t ~now:(now ())))) }
