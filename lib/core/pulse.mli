(** Rate-modulation pulses (§3.4, Fig. 7).

    The asymmetric sinusoidal pulse adds a half-sine of amplitude [A] for the
    first quarter of the period and subtracts a half-sine of amplitude [A/3]
    for the remaining three quarters, so the two lobes cancel over one period
    while allowing senders with rates as low as [A/3] to pulse. *)

type shape =
  | Asymmetric  (** the paper's pulse: +A for T/4, −A/3 for 3T/4 *)
  | Symmetric  (** plain sinusoid of amplitude A — ablation only *)

(** [value ~shape ~amplitude ~freq t] is the additive (signed) rate offset
    at absolute time [t], for pulses of frequency [freq] phase-locked to
    [t = 0].
    @raise Invalid_argument if [freq <= 0] or [amplitude < 0]. *)
val value :
  shape:shape ->
  amplitude:Units.Rate.t ->
  freq:Units.Freq.t ->
  Units.Time.t ->
  Units.Rate.t

(** [min_send_rate ~shape ~amplitude] is the lowest mean rate that keeps the
    modulated rate non-negative throughout the period: [A/3] for the
    asymmetric pulse, [A] for the symmetric one. *)
val min_send_rate : shape:shape -> amplitude:Units.Rate.t -> Units.Rate.t

(** [mean ~shape ~amplitude ~freq ~samples] numerically averages the pulse
    over one period — a test helper asserting zero mean. *)
val mean :
  shape:shape ->
  amplitude:Units.Rate.t ->
  freq:Units.Freq.t ->
  samples:int ->
  Units.Rate.t
