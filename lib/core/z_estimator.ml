module Time = Units.Time
module Rate = Units.Rate

(* Internals stay raw float (bits/s, seconds) — the typed boundary is the
   .mli; wrap/unwrap happens once per call. *)

let estimate ~mu ~send_rate ~recv_rate =
  let mu = Rate.to_bps mu in
  let send_rate = Rate.to_bps send_rate in
  let recv_rate = Rate.to_bps recv_rate in
  if mu <= 0. then invalid_arg "Z_estimator.estimate: mu <= 0";
  if
    Float.is_nan send_rate || Float.is_nan recv_rate || send_rate <= 0.
    || recv_rate <= 0.
  then Rate.unknown
  else begin
    let z = (mu *. send_rate /. recv_rate) -. send_rate in
    Rate.bps (Float.max 0. (Float.min mu z))
  end

module Mu = struct
  type kind =
    | Known of float
    | Estimated of {
        window : float;
        samples : (float * float) Queue.t; (* (time, rate) *)
        mutable best : float;
      }

  type t = kind ref

  let known rate = ref (Known (Rate.to_bps rate))

  let estimator ?(window = Time.secs 10.) () =
    ref
      (Estimated
         { window = Time.to_secs window; samples = Queue.create ();
           best = nan })

  let prune samples horizon =
    let continue = ref true in
    while !continue do
      match Queue.peek_opt samples with
      | Some (at, _) when at < horizon -> ignore (Queue.pop samples)
      | _ -> continue := false
    done

  let observe t ~now ~recv_rate =
    match !t with
    | Known _ -> ()
    | Estimated e ->
      let now = Time.to_secs now in
      let recv_rate = Rate.to_bps recv_rate in
      (* is_finite, not is_nan: a +inf sample would win the max fold below
         and report an infinite µ for a whole window *)
      if Float.is_finite recv_rate && recv_rate > 0. then begin
        Queue.push (now, recv_rate) e.samples;
        prune e.samples (now -. e.window);
        e.best <-
          Queue.fold (fun acc (_, r) -> Float.max acc r) neg_infinity e.samples
      end

  let current t ~now =
    match !t with
    | Known r -> Rate.bps r
    | Estimated e ->
      prune e.samples (Time.to_secs now -. e.window);
      if Float.is_finite e.best then Rate.bps e.best else Rate.unknown
end
