module Ring = Nimbus_dsp.Ring
module Spectrum = Nimbus_dsp.Spectrum
module Bank = Nimbus_dsp.Goertzel.Bank
module Time = Units.Time
module Freq = Units.Freq

type verdict =
  | Elastic
  | Inelastic

(* Internals stay raw float (Hz, seconds) — the typed boundary is the .mli.
   The record deliberately has no mutable float field: assigning one in a
   mixed record boxes on every write, and this type sits on the per-tick hot
   path. *)
type t = {
  ring : Ring.t;
  sample_rate : float;
  eta_thresh : float;
  band_guard_hz : float;
  taper : Nimbus_dsp.Window.kind;
  detrend : Spectrum.detrend;
  scratch : float array; (* chronological window copy fed to the analyzer *)
  spec_state : Spectrum.state;
  (* the spectrum is recomputed lazily, at most once per new sample;
     [analyze_into] always returns the same physical record, so the [Some]
     cell is allocated once and reused *)
  mutable cached_spectrum : Spectrum.t option;
  mutable dirty : bool;
  (* Streaming η: a sliding-DFT bank tuned to one pulse frequency — slot 0
     is the peak bin, slots 1.. the comparison band — built lazily on the
     first η evaluation at that frequency (the FFT fallback) and re-tuned
     whenever the requested frequency changes (a mode transition).  The
     tuned frequency lives in a one-cell float array: a mutable float field
     in this mixed record would box on every write. *)
  mutable bank : Bank.t option;
  tuned : float array; (* [0] = tuned pulse frequency in Hz; nan = untuned *)
}

let create ?(sample_interval = Time.ms 10.) ?(window = Time.secs 5.0)
    ?(eta_thresh = 2.0) ?(band_guard = Freq.hz 0.5)
    ?(taper = Nimbus_dsp.Window.Hann) ?(detrend = `Linear) () =
  let sample_interval = Time.to_secs sample_interval in
  let window = Time.to_secs window in
  let band_guard_hz = Freq.to_hz band_guard in
  if sample_interval <= 0. then
    invalid_arg "Elasticity.create: sample_interval";
  if window <= sample_interval then invalid_arg "Elasticity.create: window";
  if eta_thresh < 1. then invalid_arg "Elasticity.create: eta_thresh < 1";
  if band_guard_hz < 0. then invalid_arg "Elasticity.create: negative guard";
  let n = int_of_float (Float.round (window /. sample_interval)) in
  let sample_rate = 1. /. sample_interval in
  { ring = Ring.create n; sample_rate; eta_thresh; band_guard_hz; taper;
    detrend;
    scratch = Array.make n 0.;
    spec_state =
      Spectrum.create_state ~window:taper ~detrend ~n
        ~sample_rate:(Freq.hz sample_rate) ();
    cached_spectrum = None; dirty = true;
    bank = None; tuned = [| nan |] }

let add_sample t z =
  let z =
    if Float.is_nan z then
      (if Ring.count t.ring > 0 then Ring.last t.ring else 0.)
    else z
  in
  Ring.push t.ring z;
  t.dirty <- true;
  match t.bank with Some bank -> Bank.push bank z | None -> ()

let ready t = Ring.is_full t.ring

let spectrum t =
  if not (ready t) then None
  else begin
    if t.dirty then begin
      Ring.blit_to t.ring t.scratch;
      let s = Spectrum.analyze_into t.spec_state t.scratch in
      (match t.cached_spectrum with
      | Some _ -> () (* [s] is the same record the option already holds *)
      | None -> t.cached_spectrum <- Some s);
      t.dirty <- false
    end;
    t.cached_spectrum
  end

(* Reference η: the full Plan-FFT evaluation of Eq. 3 over the window. *)
let eta_fft t freq =
  match spectrum t with
  | None -> nan
  | Some s ->
    let peak = Spectrum.amplitude_at s freq in
    let neighbour =
      Spectrum.band_max s ~lo:(freq +. t.band_guard_hz)
        ~hi:((2. *. freq) -. t.band_guard_hz)
    in
    if neighbour <= 0. then if peak > 0. then infinity else nan
    else peak /. neighbour

(* Streaming η from the tuned bank: slot 0 is the peak bin, slots 1.. the
   comparison band in ascending bin order, so the max replicates
   [Spectrum.band_max] over the same bin set. *)
let eta_bank bank =
  let peak = Bank.amplitude bank 0 in
  let neighbour = ref 0. in
  for i = 1 to Bank.nbins bank - 1 do
    let a = Bank.amplitude bank i in
    if a > !neighbour then neighbour := a
  done;
  if !neighbour <= 0. then if peak > 0. then infinity else nan
  else peak /. !neighbour
[@@alloc_free]

(* (Re)tune the streaming bank to pulse frequency [freq]: select exactly the
   bins the FFT path reads — the clamped-round peak bin of
   [Spectrum.bin_of_freq] plus every bin whose centre lies strictly inside
   (freq + guard, 2*freq - guard) as in [Spectrum.band_max] — and prime the
   bank from the current ring contents.  Cold path: runs only on the first η
   evaluation and on pulse-frequency changes (mode transitions). *)
let tune t freq =
  let n = Ring.capacity t.ring in
  let w = t.sample_rate /. float_of_int n in
  let top = n / 2 in
  let kp =
    let k = int_of_float (Float.round (freq /. w)) in
    if k < 0 then 0 else if k > top then top else k
  in
  let lo = freq +. t.band_guard_hz and hi = (2. *. freq) -. t.band_guard_hz in
  let in_band k =
    let f = float_of_int k *. w in
    f > lo && f < hi
  in
  let nband = ref 0 in
  for k = 0 to top do
    if in_band k then incr nband
  done;
  let bins = Array.make (1 + !nband) kp in
  let slot = ref 1 in
  for k = 0 to top do
    if in_band k then begin
      bins.(!slot) <- k;
      incr slot
    end
  done;
  let bank =
    Bank.create ~window:n ~taper:t.taper ~detrend:t.detrend ~bins ()
  in
  Ring.blit_to t.ring t.scratch;
  Bank.load bank t.scratch;
  t.bank <- Some bank;
  t.tuned.(0) <- freq

let eta t ~freq =
  let freq = Freq.to_hz freq in
  if not (ready t) then nan
  else begin
    match t.bank with
    | Some bank when Float.equal t.tuned.(0) freq && Bank.filled bank ->
      eta_bank bank
    | _ ->
      (* fallback: frequency change (or first call) — answer from the FFT
         path, then tune the bank so subsequent ticks stream *)
      let e = eta_fft t freq in
      tune t freq;
      e
  end

let eta_reference t ~freq =
  let freq = Freq.to_hz freq in
  if not (ready t) then nan else eta_fft t freq

let classify t ~freq =
  if not (ready t) then None
  else begin
    let e = eta t ~freq in
    if Float.is_nan e then None
    else Some (if e >= t.eta_thresh then Elastic else Inelastic)
  end

let peak_amplitude t ~freq =
  match spectrum t with
  | None -> nan
  | Some s -> Spectrum.amplitude_at s (Freq.to_hz freq)

(* |FFT(f)| of a windowed sinusoid of amplitude a is a·N·cg/2 where cg is
   the taper's coherent gain; invert that to read the amplitude back. *)
let oscillation_amplitude t ~freq =
  match spectrum t with
  | None -> nan
  | Some s ->
    let n = Ring.capacity t.ring in
    let cg = Nimbus_dsp.Window.coherent_gain t.taper n in
    2. *. Spectrum.amplitude_at s (Freq.to_hz freq) /. (float_of_int n *. cg)

let eta_thresh t = t.eta_thresh

let sample_rate t = Freq.hz t.sample_rate

let samples t = Ring.to_array t.ring

let mean t =
  let c = Ring.count t.ring in
  if c = 0 then 0. else Ring.sum t.ring /. float_of_int c
