module Ring = Nimbus_dsp.Ring
module Spectrum = Nimbus_dsp.Spectrum
module Time = Units.Time
module Freq = Units.Freq

type verdict =
  | Elastic
  | Inelastic

(* Internals stay raw float (Hz, seconds) — the typed boundary is the .mli.
   The record deliberately has no mutable float field: assigning one in a
   mixed record boxes on every write, and this type sits on the per-tick hot
   path. *)
type t = {
  ring : Ring.t;
  sample_rate : float;
  eta_thresh : float;
  band_guard_hz : float;
  taper : Nimbus_dsp.Window.kind;
  scratch : float array; (* chronological window copy fed to the analyzer *)
  spec_state : Spectrum.state;
  (* the spectrum is recomputed lazily, at most once per new sample;
     [analyze_into] always returns the same physical record, so the [Some]
     cell is allocated once and reused *)
  mutable cached_spectrum : Spectrum.t option;
  mutable dirty : bool;
}

let create ?(sample_interval = Time.ms 10.) ?(window = Time.secs 5.0)
    ?(eta_thresh = 2.0) ?(band_guard = Freq.hz 0.5)
    ?(taper = Nimbus_dsp.Window.Hann) ?(detrend = `Linear) () =
  let sample_interval = Time.to_secs sample_interval in
  let window = Time.to_secs window in
  let band_guard_hz = Freq.to_hz band_guard in
  if sample_interval <= 0. then
    invalid_arg "Elasticity.create: sample_interval";
  if window <= sample_interval then invalid_arg "Elasticity.create: window";
  if eta_thresh < 1. then invalid_arg "Elasticity.create: eta_thresh < 1";
  if band_guard_hz < 0. then invalid_arg "Elasticity.create: negative guard";
  let n = int_of_float (Float.round (window /. sample_interval)) in
  let sample_rate = 1. /. sample_interval in
  { ring = Ring.create n; sample_rate; eta_thresh; band_guard_hz; taper;
    scratch = Array.make n 0.;
    spec_state =
      Spectrum.create_state ~window:taper ~detrend ~n
        ~sample_rate:(Freq.hz sample_rate) ();
    cached_spectrum = None; dirty = true }

let add_sample t z =
  let z =
    if Float.is_nan z then
      (if Ring.count t.ring > 0 then Ring.last t.ring else 0.)
    else z
  in
  Ring.push t.ring z;
  t.dirty <- true

let ready t = Ring.is_full t.ring

let spectrum t =
  if not (ready t) then None
  else begin
    if t.dirty then begin
      Ring.blit_to t.ring t.scratch;
      let s = Spectrum.analyze_into t.spec_state t.scratch in
      (match t.cached_spectrum with
      | Some _ -> () (* [s] is the same record the option already holds *)
      | None -> t.cached_spectrum <- Some s);
      t.dirty <- false
    end;
    t.cached_spectrum
  end

let eta t ~freq =
  let freq = Freq.to_hz freq in
  match spectrum t with
  | None -> nan
  | Some s ->
    let peak = Spectrum.amplitude_at s freq in
    let neighbour =
      Spectrum.band_max s ~lo:(freq +. t.band_guard_hz)
        ~hi:((2. *. freq) -. t.band_guard_hz)
    in
    if neighbour <= 0. then if peak > 0. then infinity else nan
    else peak /. neighbour

let classify t ~freq =
  if not (ready t) then None
  else begin
    let e = eta t ~freq in
    if Float.is_nan e then None
    else Some (if e >= t.eta_thresh then Elastic else Inelastic)
  end

let peak_amplitude t ~freq =
  match spectrum t with
  | None -> nan
  | Some s -> Spectrum.amplitude_at s (Freq.to_hz freq)

(* |FFT(f)| of a windowed sinusoid of amplitude a is a·N·cg/2 where cg is
   the taper's coherent gain; invert that to read the amplitude back. *)
let oscillation_amplitude t ~freq =
  match spectrum t with
  | None -> nan
  | Some s ->
    let n = Ring.capacity t.ring in
    let cg = Nimbus_dsp.Window.coherent_gain t.taper n in
    2. *. Spectrum.amplitude_at s (Freq.to_hz freq) /. (float_of_int n *. cg)

let eta_thresh t = t.eta_thresh

let sample_rate t = Freq.hz t.sample_rate

let samples t = Ring.to_array t.ring

let mean t =
  let c = Ring.count t.ring in
  if c = 0 then 0. else Ring.sum t.ring /. float_of_int c
