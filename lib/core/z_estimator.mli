(** Cross-traffic rate estimation (Eq. 1):

    [ẑ(t) = µ·S(t)/R(t) − S(t)]

    Valid while the bottleneck queue is non-empty and the router serves all
    traffic FIFO: the receive share [R/µ] then equals the arrival share
    [S/(S+z)]. *)

(** [estimate ~mu ~send_rate ~recv_rate] is ẑ, clamped to [[0, mu]].

    Unknown-input contract: the result is {!Units.Rate.unknown} — i.e. [nan],
    never [+inf] — whenever either rate is unknown ([nan]) or non-positive.
    In particular a zero [recv_rate] (silent receiver, Eq. 1's denominator)
    yields [nan], not the [+inf] a literal reading of Eq. 1 would produce;
    downstream consumers test {!Units.Rate.is_known}, and an infinity would
    silently survive that test and poison max filters.
    @raise Invalid_argument if [mu <= 0]. *)
val estimate :
  mu:Units.Rate.t ->
  send_rate:Units.Rate.t ->
  recv_rate:Units.Rate.t ->
  Units.Rate.t

(** Bottleneck-rate tracker in the style the paper's implementation uses:
    the maximum receive rate observed over a sliding window (BBR-like),
    robust to idle periods via a slow decay. *)
module Mu : sig
  type t

  (** [known rate] always reports [rate] — emulation experiments supply the
      true link rate (§8.2). *)
  val known : Units.Rate.t -> t

  (** [estimator ()] learns µ from receive-rate samples.
      @param window history depth of the max filter (default 10 s) *)
  val estimator : ?window:Units.Time.t -> unit -> t

  (** [observe t ~now ~recv_rate] feeds a sample (no-op for [known]).
      Non-finite samples — [nan] {e and} [±inf] — are discarded: the max
      filter keeps the largest sample in its window, so a single [+inf]
      observation would otherwise poison the estimate for a full window. *)
  val observe : t -> now:Units.Time.t -> recv_rate:Units.Rate.t -> unit

  (** [current t ~now] is the µ estimate; {!Units.Rate.unknown} if nothing
      observed yet. *)
  val current : t -> now:Units.Time.t -> Units.Rate.t
end
