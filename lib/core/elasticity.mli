(** The elasticity detector (§3.3–3.4) — the paper's building block.

    Feed it the cross-traffic estimate ẑ sampled at a fixed interval; it
    maintains the trailing FFT window and computes the elasticity metric

    [η = |FFT_z(f_p)| / max_{f ∈ (f_p, 2·f_p)} |FFT_z(f)|]   (Eq. 3)

    Cross traffic is declared elastic when [η ≥ η_thresh] (default 2). *)

type verdict =
  | Elastic
  | Inelastic

type t

(** [create ()] builds a detector.
    @param sample_interval period between ẑ samples (default 10 ms)
    @param window FFT duration (default 5 s); the window holds
           [window / sample_interval] samples (500 by default, transformed
           with the Bluestein FFT so a 5 Hz pulse lands exactly on a bin)
    @param eta_thresh decision threshold (default 2.0)
    @param band_guard guard margin excluded at both edges of the
           comparison band, i.e. the neighbour maximum is taken over
           (f_p + g, 2·f_p − g) instead of the paper's open (f_p, 2·f_p)
           (default 0.5 Hz). The pulse fundamental and its second harmonic
           are non-stationary, so their spectral leakage spills a few bins
           past the band edges; without the guard that leakage — not cross
           traffic — dominates the neighbour maximum and deflates η.
    @param taper analysis window (default Hann: the pulse response is
           non-stationary, and with the paper's raw rectangular FFT its
           leakage floods the comparison band during transitions; the
           rectangular option remains for the ablation bench)
    @param detrend default [`Linear]: cross-traffic transitions put large
           ramps in the window whose broadband leakage otherwise swamps the
           comparison band *)
val create :
  ?sample_interval:Units.Time.t ->
  ?window:Units.Time.t ->
  ?eta_thresh:float ->
  ?band_guard:Units.Freq.t ->
  ?taper:Nimbus_dsp.Window.kind ->
  ?detrend:Nimbus_dsp.Spectrum.detrend ->
  unit ->
  t

(** [add_sample t z] appends one sample of the unit-agnostic analysis signal
    (ẑ in bits/s for the pulser's window, R(t) for a watcher's). [nan]
    samples are replaced by the previous sample so transient estimator gaps
    do not poison the window. *)
val add_sample : t -> float -> unit

(** [ready t] holds once a full window has accumulated. *)
val ready : t -> bool

(** [eta t ~freq] evaluates Eq. 3 at pulse frequency [freq]; [nan] until
    {!ready}.

    Steady state is O(1) in the window size: a sliding-DFT bank
    ({!Nimbus_dsp.Goertzel.Bank}) tracks the peak bin and the comparison
    band incrementally as samples arrive.  The first evaluation at a given
    frequency — and any evaluation after the frequency changes, i.e. a mode
    transition — answers from the full Plan-FFT path and re-tunes the bank.
    The two paths agree to floating-point rounding (QCheck-gated, see
    {!eta_reference}). *)
val eta : t -> freq:Units.Freq.t -> float

(** [eta_reference t ~freq] is Eq. 3 evaluated via the full Plan-FFT path,
    bypassing the streaming bank — the agreement oracle for tests and
    diagnostics. *)
val eta_reference : t -> freq:Units.Freq.t -> float

(** [classify t ~freq] applies the threshold rule; [None] until {!ready}. *)
val classify : t -> freq:Units.Freq.t -> verdict option

(** [spectrum t] is the current amplitude spectrum of the window (mean
    removed), for diagnostics and the Fig. 5 reproduction; [None] until
    {!ready}. *)
val spectrum : t -> Nimbus_dsp.Spectrum.t option

(** [peak_amplitude t ~freq] is the spectrum amplitude at [freq]; [nan]
    until {!ready}. Watchers use this on their receive-rate window to find
    the pulser's frequency. *)
val peak_amplitude : t -> freq:Units.Freq.t -> float

(** [oscillation_amplitude t ~freq] estimates the time-domain amplitude of
    a sinusoidal component at [freq] in the window (inverting the taper's
    coherent gain) — watchers compare this against a fraction of µ to decide
    whether a pulser is genuinely audible; [nan] until {!ready}. *)
val oscillation_amplitude : t -> freq:Units.Freq.t -> float

(** [eta_thresh t]. *)
val eta_thresh : t -> float

(** [sample_rate t]. *)
val sample_rate : t -> Units.Freq.t

(** [samples t] is the current window contents in chronological order. *)
val samples : t -> float array

(** [mean t] is the mean of the current window contents ([0.] when empty),
    computed without allocating. *)
val mean : t -> float
