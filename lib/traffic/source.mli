(** Raw, open-loop packet injectors — the inelastic cross traffic of the
    paper's experiments. They push packets straight into the bottleneck with
    no acknowledgements and no congestion response. *)

type t

(** [poisson engine bottleneck ~rng ~rate ()] injects packets with
    exponential inter-arrival times averaging [rate].
    @param pkt_size bytes (default 1500)
    @param start absolute start time (default now)
    @param stop absolute stop time (default never) *)
val poisson :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  rng:Nimbus_sim.Rng.t ->
  rate:Units.Rate.t ->
  ?pkt_size:int ->
  ?start:Units.Time.t ->
  ?stop:Units.Time.t ->
  unit ->
  t

(** [cbr engine bottleneck ~rate ()] injects packets with deterministic
    spacing — a constant-bit-rate stream. *)
val cbr :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  rate:Units.Rate.t ->
  ?pkt_size:int ->
  ?start:Units.Time.t ->
  ?stop:Units.Time.t ->
  unit ->
  t

(** [poisson_via topo ~route ~rng ~rate ()] is {!poisson} injected along a
    {!Nimbus_topology.Topology} route: packets traverse every hop (loading
    each link's queue) and evaporate after the last one — open-loop traffic
    has no receiver — while counting into the fabric conservation
    ledger. *)
val poisson_via :
  Nimbus_topology.Topology.t ->
  route:Nimbus_topology.Topology.Route.t ->
  rng:Nimbus_sim.Rng.t ->
  rate:Units.Rate.t ->
  ?pkt_size:int ->
  ?start:Units.Time.t ->
  ?stop:Units.Time.t ->
  unit ->
  t

(** [cbr_via topo ~route ~rate ()] is {!cbr} injected along a route. *)
val cbr_via :
  Nimbus_topology.Topology.t ->
  route:Nimbus_topology.Topology.Route.t ->
  rate:Units.Rate.t ->
  ?pkt_size:int ->
  ?start:Units.Time.t ->
  ?stop:Units.Time.t ->
  unit ->
  t

(** [flow_id t] — for per-flow accounting at the bottleneck. *)
val flow_id : t -> int

(** [set_rate t rate] changes the injection rate ({!Units.Rate.zero}
    pauses); scripted scenarios use this to vary the inelastic load. *)
val set_rate : t -> Units.Rate.t -> unit

(** [rate t]. *)
val rate : t -> Units.Rate.t

(** [halt t] stops the source permanently. *)
val halt : t -> unit
