module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Packet = Nimbus_sim.Packet
module Rng = Nimbus_sim.Rng
module Topology = Nimbus_topology.Topology
module Time = Units.Time
module Rate = Units.Rate

type kind =
  | Poisson of Rng.t
  | Cbr

(* Rate and stop time stay raw float (bits/s, seconds) internally — the
   typed boundary is the .mli. *)
type t = {
  engine : Engine.t;
  enqueue : Packet.t -> unit;
  kind : kind;
  flow_id : int;
  pkt_size : int;
  stop : float option;
  mutable rate : float;
  mutable seq : int;
  mutable active : bool;
}

let flow_id t = t.flow_id

let rate t = Rate.bps t.rate

let set_rate t rate = t.rate <- Float.max 0. (Rate.to_bps rate)

let halt t = t.active <- false

let interval t =
  let bits = float_of_int (t.pkt_size * 8) in
  match t.kind with
  | Cbr -> bits /. t.rate
  | Poisson rng -> Rng.exponential rng ~mean:(bits /. t.rate)

let rec step t =
  let now = Engine.now t.engine in
  let expired =
    match t.stop with Some s -> Time.to_secs now >= s | None -> false
  in
  if t.active && not expired then begin
    if t.rate > 0. then begin
      let pkt =
        Packet.make ~flow:t.flow_id ~seq:t.seq ~size:t.pkt_size ~now ()
      in
      t.seq <- t.seq + 1;
      t.enqueue pkt;
      Engine.schedule_in t.engine (Time.secs (interval t)) (fun () -> step t)
    end
    else
      (* paused: poll for a rate change *)
      Engine.schedule_in t.engine (Time.ms 10.) (fun () -> step t)
  end

(* [wire flow_id] is the injection function — a bare [Bottleneck.enqueue]
   or a topology ingress.  Open-loop sources never receive, so unlike
   [Flow] no sink is registered. *)
let make engine ~wire kind ~rate ~pkt_size ~start ~stop =
  let rate = Rate.to_bps rate in
  if rate < 0. then invalid_arg "Source: negative rate";
  let flow_id = Engine.fresh_flow_id engine in
  let t =
    { engine; enqueue = wire flow_id; kind; flow_id; pkt_size;
      stop = Option.map Time.to_secs stop; rate; seq = 0; active = true }
  in
  let start = match start with Some s -> s | None -> Engine.now engine in
  Engine.schedule_at engine start (fun () -> step t);
  t

let direct bottleneck _flow pkt = Bottleneck.enqueue bottleneck pkt

let poisson engine bottleneck ~rng ~rate ?(pkt_size = 1500) ?start ?stop () =
  make engine ~wire:(direct bottleneck) (Poisson rng) ~rate ~pkt_size ~start
    ~stop

let cbr engine bottleneck ~rate ?(pkt_size = 1500) ?start ?stop () =
  make engine ~wire:(direct bottleneck) Cbr ~rate ~pkt_size ~start ~stop

(* Routed variants: packets traverse every hop of [route] and are dropped
   on the floor after the last one (open-loop traffic has no receiver),
   while still counting into the fabric conservation ledger. *)
let via topo ~route flow =
  Topology.attach topo ~route ~flow ~sink:ignore

let poisson_via topo ~route ~rng ~rate ?(pkt_size = 1500) ?start ?stop () =
  make (Topology.engine topo) ~wire:(via topo ~route) (Poisson rng) ~rate
    ~pkt_size ~start ~stop

let cbr_via topo ~route ~rate ?(pkt_size = 1500) ?start ?stop () =
  make (Topology.engine topo) ~wire:(via topo ~route) Cbr ~rate ~pkt_size
    ~start ~stop
