(** Synthetic wide-area cross traffic.

    Substitute for the CAIDA 2016 packet trace the paper replays: Cubic
    cross-flows whose sizes are drawn from a heavy-tailed mixture (lognormal
    body, Pareto tail) and whose arrivals form a Poisson process tuned to an
    offered load. Because the size distribution is heavy-tailed, the traffic
    alternates organically between periods dominated by long elastic flows
    and periods of short, effectively inelastic ones — the property the
    paper's trace-driven experiments rely on.

    Ground truth follows the paper's §8.1 definition: a cross-flow is
    *elastic* when it outlives the initial congestion window (10 packets),
    guaranteeing ACK-clocked transmissions. *)

type t

(** Size-mixture regimes, both heavy-tailed:
    [`Churny] (default) — many overlapping mid-size flows, the paper's
    throughput/delay/FCT workload; [`Elephant] — bytes concentrated in a
    sparse stream of multi-second flows, so elastic-dominated and mice-only
    periods alternate (the Fig. 12 regime). *)
type profile =
  [ `Churny
  | `Elephant
  ]

(** [create engine bottleneck ~rng ~load ()] starts the generator.
    @param load offered load (arrival rate × mean flow size)
    @param profile size mixture (default [`Churny])
    @param prop_rtt cross-flow propagation RTT (default 50 ms)
    @param rtt_jitter_frac uniform per-flow RTT jitter, ± fraction
           (default 0.2)
    @param start default now
    @param stop stop generating new arrivals (existing flows finish)
    @param max_concurrent cap on simultaneously active cross-flows; arrivals
           beyond it are skipped and counted (default 512) *)
val create :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  rng:Nimbus_sim.Rng.t ->
  load:Units.Rate.t ->
  ?profile:profile ->
  ?prop_rtt:Units.Time.t ->
  ?rtt_jitter_frac:float ->
  ?start:Units.Time.t ->
  ?stop:Units.Time.t ->
  ?max_concurrent:int ->
  unit ->
  t

(** [elastic_threshold_bytes] — flows strictly larger than this are counted
    elastic (10 packets of 1500 B). *)
val elastic_threshold_bytes : int

(** [bytes_split t] is [(elastic, total)] cumulative bytes received by
    cross-flow receivers — sampled periodically, the ratio of deltas is the
    ground-truth elastic byte fraction of Fig. 12. *)
val bytes_split : t -> int * int

(** [elastic_active t] holds while at least one elastic-sized cross-flow is
    still transferring. *)
val elastic_active : t -> bool

(** [persistent_elastic_active t ~now ~min_age ~min_size] holds while some
    elastic cross-flow of at least [min_size] bytes has been running for at
    least [min_age] — the detector's actual design target (§3.2: it needs
    the elastic traffic to persist across the FFT window), used as an
    alternative ground truth in the Fig. 12 reproduction. *)
val persistent_elastic_active :
  t -> now:Units.Time.t -> min_age:Units.Time.t -> min_size:int -> bool

(** [fcts t] is the completed transfers as [(size_bytes, fct)] pairs
    (Appendix B). *)
val fcts : t -> (int * Units.Time.t) array

(** [arrivals t], [skipped t] — generator accounting. *)
val arrivals : t -> int

val skipped : t -> int

(** [active_count t]. *)
val active_count : t -> int

(** [mean_flow_size t] — analytic mean of the configured size distribution;
    exposed to compute arrival rate from load. *)
val mean_flow_size : t -> Units.Bytes.t
