module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Cubic = Nimbus_cc.Cubic
module Time = Units.Time
module Rate = Units.Rate
module B = Units.Bytes

let elastic_threshold_bytes = 10 * 1500

(* Two heavy-tailed size mixtures (lognormal "mice" body + Pareto "elephant"
   tail), both calibrated against wide-area measurements but emphasising
   different regimes of the same reality:

   - [`Churny]: 90% mice (median ~6 KB) + 10% elephants from 30 KB, shape
     1.3.  High flow-arrival churn with many overlapping mid-size flows --
     the regime behind the paper's throughput/delay/FCT comparisons.
   - [`Elephant]: 99.5% small mice (median ~4 KB) + 0.5% elephants from
     2 MB, shape 1.05.  Almost all bytes ride in a sparse stream of
     multi-second flows, so the trace alternates between elastic-dominated
     and mice-only periods -- the regime behind the paper's Fig. 12
     detector-vs-ground-truth experiment. *)
type profile =
  [ `Churny
  | `Elephant
  ]

type mixture = {
  mice_prob : float;
  lognormal_mu : float;
  lognormal_sigma : float;
  pareto_scale : float;
  pareto_shape : float;
  size_cap : float;
}

let mixture_of_profile = function
  | `Churny ->
    { mice_prob = 0.9; lognormal_mu = log 6000.; lognormal_sigma = 1.2;
      pareto_scale = 30_000.; pareto_shape = 1.3; size_cap = 50_000_000. }
  | `Elephant ->
    { mice_prob = 0.995; lognormal_mu = log 4000.; lognormal_sigma = 0.8;
      pareto_scale = 2_000_000.; pareto_shape = 1.05;
      size_cap = 500_000_000. }

type record = {
  flow : Flow.t;
  size : int;
  elastic : bool;
  started : float;
}

(* Internal timekeeping stays raw float seconds — the typed boundary is the
   .mli. *)
type t = {
  engine : Engine.t;
  bottleneck : Bottleneck.t;
  rng : Rng.t;
  mixture : mixture;
  prop_rtt : float;
  rtt_jitter_frac : float;
  stop : float option;
  max_concurrent : int;
  mean_size : float;
  arrival_mean : float; (* seconds between arrivals *)
  mutable active : record list;
  mutable completed_elastic_bytes : int;
  mutable completed_total_bytes : int;
  mutable fcts : (int * float) list;
  mutable arrivals : int;
  mutable skipped : int;
}

let analytic_mean_size m =
  let lognormal_mean =
    exp (m.lognormal_mu +. (m.lognormal_sigma *. m.lognormal_sigma /. 2.))
  in
  (* E[min(X, cap)] for Pareto(shape, scale): with tails this heavy the cap
     dominates the mean, so the truncation must be accounted for *)
  let a = m.pareto_shape and s = m.pareto_scale and c = m.size_cap in
  let pareto_mean =
    (a *. s /. (a -. 1.)) -. ((s ** a) *. (c ** (1. -. a)) /. (a -. 1.))
  in
  (m.mice_prob *. lognormal_mean) +. ((1. -. m.mice_prob) *. pareto_mean)

let draw_size t =
  let m = t.mixture in
  let raw =
    if Rng.bool t.rng ~p:m.mice_prob then
      Rng.lognormal t.rng ~mu:m.lognormal_mu ~sigma:m.lognormal_sigma
    else Rng.pareto t.rng ~shape:m.pareto_shape ~scale:m.pareto_scale
  in
  let raw = Float.min raw m.size_cap in
  max 400 (int_of_float raw)

let retire t record =
  t.active <- List.filter (fun r -> r != record) t.active;
  t.completed_total_bytes <- t.completed_total_bytes + record.size;
  if record.elastic then
    t.completed_elastic_bytes <- t.completed_elastic_bytes + record.size

let launch t size =
  let jitter =
    1. +. Rng.range t.rng ~lo:(-.t.rtt_jitter_frac) ~hi:t.rtt_jitter_frac
  in
  let prop_rtt = Float.max 0.002 (t.prop_rtt *. jitter) in
  let elastic = size > elastic_threshold_bytes in
  let record = ref None in
  let on_complete (flow : Flow.t) =
    match !record with
    | Some r ->
      (match Flow.completion_time flow with
       | Some fct_end ->
         let fct = Time.to_secs fct_end -. Time.to_secs (Flow.start_time flow) in
         t.fcts <- (size, fct) :: t.fcts
       | None -> ());
      retire t r
    | None -> ()
  in
  let flow =
    (* cross-flows have no tick-driven controller; a coarse tick (RTO checks
       only) keeps the per-flow overhead low at high arrival rates *)
    Flow.create t.engine t.bottleneck ~cc:(Cubic.make ())
      ~prop_rtt:(Time.secs prop_rtt) ~source:(Flow.Finite size) ~on_complete
      ~tick_interval:(Time.ms 100.) ()
  in
  let r =
    { flow; size; elastic; started = Time.to_secs (Engine.now t.engine) }
  in
  record := Some r;
  t.active <- r :: t.active

let rec schedule_arrival t =
  let gap = Rng.exponential t.rng ~mean:t.arrival_mean in
  Engine.schedule_in t.engine (Time.secs gap) (fun () ->
      let now = Time.to_secs (Engine.now t.engine) in
      let expired = match t.stop with Some s -> now >= s | None -> false in
      if not expired then begin
        t.arrivals <- t.arrivals + 1;
        if List.length t.active >= t.max_concurrent then
          t.skipped <- t.skipped + 1
        else launch t (draw_size t);
        schedule_arrival t
      end)

let create engine bottleneck ~rng ~load ?(profile = `Churny)
    ?(prop_rtt = Time.ms 50.) ?(rtt_jitter_frac = 0.2) ?start ?stop
    ?(max_concurrent = 512) () =
  let load = Rate.to_bps load in
  if load <= 0. then invalid_arg "Wan.create: load <= 0";
  let mixture = mixture_of_profile profile in
  let mean_size = analytic_mean_size mixture in
  let arrival_rate = load /. 8. /. mean_size in
  let t =
    { engine; bottleneck; rng; mixture; prop_rtt = Time.to_secs prop_rtt;
      rtt_jitter_frac; stop = Option.map Time.to_secs stop; max_concurrent;
      mean_size; arrival_mean = 1. /. arrival_rate; active = [];
      completed_elastic_bytes = 0; completed_total_bytes = 0; fcts = [];
      arrivals = 0; skipped = 0 }
  in
  let start = match start with Some s -> s | None -> Engine.now engine in
  Engine.schedule_at engine start (fun () -> schedule_arrival t);
  t

let bytes_split t =
  let elastic = ref t.completed_elastic_bytes in
  let total = ref t.completed_total_bytes in
  List.iter
    (fun r ->
      let got = Flow.received_bytes r.flow in
      total := !total + got;
      if r.elastic then elastic := !elastic + got)
    t.active;
  (!elastic, !total)

let elastic_active t = List.exists (fun r -> r.elastic) t.active

let persistent_elastic_active t ~now ~min_age ~min_size =
  let now = Time.to_secs now in
  let min_age = Time.to_secs min_age in
  List.exists
    (fun r ->
      r.elastic && r.size >= min_size && now -. r.started >= min_age)
    t.active

let fcts t =
  Array.of_list
    (List.rev_map (fun (size, fct) -> (size, Time.secs fct)) t.fcts)

let arrivals t = t.arrivals

let skipped t = t.skipped

let active_count t = List.length t.active

let mean_flow_size t = B.bytes t.mean_size
