(** Scripted cross-traffic scenarios — the phase headers of Fig. 1 and
    Fig. 8 ("16M/1T → 32M/2T → …"): each phase offers a given inelastic rate
    plus a number of long-running elastic (Cubic) flows. *)

type phase = {
  p_start : Units.Time.t;
  p_end : Units.Time.t;
  inelastic : Units.Rate.t; (* offered rate of the open-loop source *)
  elastic_flows : int; (* backlogged Cubic cross-flows during the phase *)
}

(** [phase ~start ~stop ~inelastic ~elastic_flows] builds one entry. *)
val phase :
  start:Units.Time.t ->
  stop:Units.Time.t ->
  inelastic:Units.Rate.t ->
  elastic_flows:int ->
  phase

type t

(** [install engine bottleneck ~rng ~phases ()] arms the scenario: an
    open-loop source whose rate follows the script, and per-phase Cubic
    flows started/stopped at the boundaries.
    @param inelastic [`Poisson] (default) or [`Cbr]
    @param prop_rtt RTT of the elastic cross-flows (default 50 ms)
    @param elastic_cc controller factory for the elastic flows (default
           Cubic) *)
val install :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  rng:Nimbus_sim.Rng.t ->
  phases:phase list ->
  ?inelastic:[ `Poisson | `Cbr ] ->
  ?prop_rtt:Units.Time.t ->
  ?elastic_cc:(unit -> Nimbus_cc.Cc_types.t) ->
  unit ->
  t

(** Ground truth for scoring the detector. *)

(** [elastic_present t ~now] — does the script place elastic flows on the
    link at [now]? *)
val elastic_present : t -> now:Units.Time.t -> bool

(** [inelastic_rate t ~now] — scripted open-loop rate at [now]. *)
val inelastic_rate : t -> now:Units.Time.t -> Units.Rate.t

(** [fair_share t ~now ~mu ~primary_flows] — the throughput each of the
    [primary_flows] measured flows should get: the link capacity left after
    the inelastic traffic, split evenly with the elastic cross-flows. *)
val fair_share :
  t -> now:Units.Time.t -> mu:Units.Rate.t -> primary_flows:int -> Units.Rate.t

(** [elastic_cross_flows t] — every elastic flow the scenario created (for
    per-flow accounting). *)
val elastic_cross_flows : t -> Nimbus_cc.Flow.t list
