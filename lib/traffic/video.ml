module Engine = Nimbus_sim.Engine
module Flow = Nimbus_cc.Flow
module Cubic = Nimbus_cc.Cubic
module Ewma = Nimbus_dsp.Ewma
module Time = Units.Time
module Rate = Units.Rate

let ladder_4k = Array.map Rate.bps [| 10e6; 15e6; 20e6; 25e6; 32e6 |]

let ladder_1080p = Array.map Rate.bps [| 1.5e6; 3e6; 4.5e6; 6e6; 8e6 |]

let poll_interval = 0.05

(* Internal state stays raw float (bits/s, seconds) — the typed boundary is
   the .mli. *)
type t = {
  engine : Engine.t;
  flow : Flow.t;
  ladder : float array;
  chunk_duration : float;
  buffer_low : float;
  buffer_high : float;
  tput : Ewma.t; (* throughput estimate, bps *)
  mutable buffer : float; (* buffered media seconds *)
  mutable playing : bool;
  mutable bitrate : float;
  mutable chunk_target : int; (* received_bytes threshold ending the chunk *)
  mutable chunk_started : float;
  mutable chunk_bytes : int;
  mutable downloading : bool;
  mutable chunks : int;
  mutable rebuffer : float;
  mutable last_poll : float;
}

let buffer t = Time.secs t.buffer

let current_bitrate t = Rate.bps t.bitrate

let chunks_fetched t = t.chunks

let rebuffer t = Time.secs t.rebuffer

let flow_id t = Flow.id t.flow

(* Hybrid rate selection: highest rung under 80% of the throughput estimate,
   clamped by buffer state. *)
let choose_bitrate t =
  let est = Ewma.value t.tput in
  let safe = if Ewma.initialized t.tput then 0.8 *. est else t.ladder.(0) in
  let pick = ref t.ladder.(0) in
  Array.iter (fun r -> if r <= safe then pick := r) t.ladder;
  if t.buffer < t.buffer_low then t.ladder.(0) else !pick

let request_chunk t =
  let now = Time.to_secs (Engine.now t.engine) in
  t.bitrate <- choose_bitrate t;
  (* whole packets: the transport sends 1500-byte segments, and a partial
     trailing packet would strand bytes below the send threshold forever *)
  let raw = int_of_float (t.bitrate *. t.chunk_duration /. 8.) in
  t.chunk_bytes <- (raw + 1499) / 1500 * 1500;
  t.chunk_target <- Flow.received_bytes t.flow + t.chunk_bytes;
  t.chunk_started <- now;
  t.downloading <- true;
  Flow.supply t.flow t.chunk_bytes

let rec poll t =
  let now = Time.to_secs (Engine.now t.engine) in
  let dt = now -. t.last_poll in
  t.last_poll <- now;
  (* playback drains the buffer; an empty buffer is a stall *)
  if t.playing then begin
    if t.buffer > 0. then t.buffer <- Float.max 0. (t.buffer -. dt)
    else t.rebuffer <- t.rebuffer +. dt
  end;
  if t.downloading && Flow.received_bytes t.flow >= t.chunk_target then begin
    let elapsed = Float.max (now -. t.chunk_started) 1e-3 in
    ignore (Ewma.update t.tput (float_of_int (t.chunk_bytes * 8) /. elapsed));
    t.buffer <- t.buffer +. t.chunk_duration;
    t.chunks <- t.chunks + 1;
    t.downloading <- false;
    if not t.playing && t.buffer >= 2. *. t.chunk_duration then
      t.playing <- true
  end;
  if (not t.downloading) && t.buffer < t.buffer_high then request_chunk t;
  Engine.schedule_in t.engine (Time.secs poll_interval) (fun () -> poll t)

let create engine bottleneck ~ladder ?(chunk_duration = Time.secs 4.)
    ?(prop_rtt = Time.ms 50.) ?(buffer_low = Time.secs 8.)
    ?(buffer_high = Time.secs 20.) ?start () =
  if Array.length ladder = 0 then invalid_arg "Video.create: empty ladder";
  let start = match start with Some s -> s | None -> Engine.now engine in
  let flow =
    Flow.create engine bottleneck ~cc:(Cubic.make ()) ~prop_rtt
      ~source:Flow.App_limited ~start ()
  in
  let ladder = Array.map Rate.to_bps ladder in
  let start_s = Time.to_secs start in
  let t =
    { engine; flow; ladder; chunk_duration = Time.to_secs chunk_duration;
      buffer_low = Time.to_secs buffer_low;
      buffer_high = Time.to_secs buffer_high; tput = Ewma.create ~alpha:0.3;
      buffer = 0.; playing = false; bitrate = ladder.(0); chunk_target = 0;
      chunk_started = start_s; chunk_bytes = 0; downloading = false;
      chunks = 0; rebuffer = 0.; last_poll = start_s }
  in
  Engine.schedule_at engine start (fun () ->
      request_chunk t;
      Engine.schedule_in engine (Time.secs poll_interval) (fun () -> poll t));
  t
