(** DASH-style adaptive video client, used as cross traffic (§8.1, Fig. 11).

    The client downloads fixed-duration chunks over a Cubic transport,
    choosing a bitrate from its ladder with a standard hybrid rule
    (throughput estimate scaled by a safety factor, overridden near buffer
    limits). Whether such a stream behaves as elastic or inelastic cross
    traffic depends on where the ladder tops out relative to the fair share:
    a 4K ladder is network-limited (elastic), a 1080p ladder leaves the
    client idle between chunks (application-limited, inelastic). *)

type t

(** Bitrate ladders. *)
val ladder_4k : Units.Rate.t array

val ladder_1080p : Units.Rate.t array

(** [create engine bottleneck ~ladder ()] starts a client.
    @param chunk_duration media time per chunk (default 4 s)
    @param prop_rtt transport propagation RTT (default 50 ms)
    @param buffer_low start panicking below this much buffered media
           (default 8 s)
    @param buffer_high stop requesting above this (default 20 s)
    @param start absolute start time *)
val create :
  Nimbus_sim.Engine.t ->
  Nimbus_sim.Bottleneck.t ->
  ladder:Units.Rate.t array ->
  ?chunk_duration:Units.Time.t ->
  ?prop_rtt:Units.Time.t ->
  ?buffer_low:Units.Time.t ->
  ?buffer_high:Units.Time.t ->
  ?start:Units.Time.t ->
  unit ->
  t

(** [buffer t] — current playback buffer, in media time. *)
val buffer : t -> Units.Time.t

(** [current_bitrate t] — ladder rung of the chunk in flight (or last
    completed). *)
val current_bitrate : t -> Units.Rate.t

(** [chunks_fetched t]. *)
val chunks_fetched : t -> int

(** [rebuffer t] — cumulative stall time. *)
val rebuffer : t -> Units.Time.t

(** [flow_id t] — bottleneck accounting id of the transport flow. *)
val flow_id : t -> int
