module Engine = Nimbus_sim.Engine
module Flow = Nimbus_cc.Flow
module Cubic = Nimbus_cc.Cubic
module Time = Units.Time
module Rate = Units.Rate

type phase = {
  p_start : Units.Time.t;
  p_end : Units.Time.t;
  inelastic : Units.Rate.t;
  elastic_flows : int;
}

let phase ~start ~stop ~inelastic ~elastic_flows =
  if Time.(stop <= start) then invalid_arg "Schedule.phase: stop <= start";
  if elastic_flows < 0 then invalid_arg "Schedule.phase: negative flow count";
  { p_start = start; p_end = stop; inelastic; elastic_flows }

type t = {
  phases : phase list;
  mutable created : Flow.t list;
}

let phase_at t now =
  List.find_opt (fun p -> Time.(now >= p.p_start && now < p.p_end)) t.phases

let install engine bottleneck ~rng ~phases ?(inelastic = `Poisson)
    ?(prop_rtt = Time.ms 50.) ?elastic_cc () =
  if phases = [] then invalid_arg "Schedule.install: no phases";
  let make_cc =
    match elastic_cc with Some f -> f | None -> fun () -> Cubic.make ()
  in
  let source =
    match inelastic with
    | `Poisson -> Source.poisson engine bottleneck ~rng ~rate:Rate.zero ()
    | `Cbr -> Source.cbr engine bottleneck ~rate:Rate.zero ()
  in
  let t = { phases; created = [] } in
  List.iter
    (fun p ->
      Engine.schedule_at engine p.p_start (fun () ->
          Source.set_rate source p.inelastic;
          let flows =
            List.init p.elastic_flows (fun _ ->
                Flow.create engine bottleneck ~cc:(make_cc ()) ~prop_rtt ())
          in
          t.created <- t.created @ flows;
          Engine.schedule_at engine p.p_end (fun () ->
              List.iter (fun fl -> Flow.apply fl Flow.Control.Stop) flows)))
    phases;
  (* silence the source after the last phase *)
  let last_end =
    List.fold_left
      (fun acc p -> Time.max acc p.p_end)
      (Time.secs neg_infinity) phases
  in
  Engine.schedule_at engine last_end (fun () ->
      Source.set_rate source Rate.zero);
  t

let elastic_present t ~now =
  match phase_at t now with
  | Some p -> p.elastic_flows > 0
  | None -> false

let inelastic_rate t ~now =
  match phase_at t now with
  | Some p -> p.inelastic
  | None -> Rate.zero

let fair_share t ~now ~mu ~primary_flows =
  match phase_at t now with
  | None -> Rate.scale (1. /. float_of_int (max 1 primary_flows)) mu
  | Some p ->
    let remaining = Rate.max Rate.zero (Rate.sub mu p.inelastic) in
    Rate.scale
      (1. /. float_of_int (max 1 (p.elastic_flows + primary_flows)))
      remaining

let elastic_cross_flows t = t.created
