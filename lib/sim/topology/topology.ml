module Time = Units.Time
module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Packet = Nimbus_sim.Packet

type node = {
  node_id : int;
  name : string;
}

type link = {
  src : node;
  dst : node;
  bn : Bottleneck.t;
  prop_delay : float; (* seconds; the typed boundary is the .mli *)
}

type t = {
  engine : Engine.t;
  (* reverse creation order; accessors re-reverse.  Plain lists keep the
     module free of Hashtbl iteration (determinism pass) — topologies are
     tens of links, not thousands. *)
  mutable nodes_rev : node list;
  mutable links_rev : link list;
  mutable next_node : int;
  (* fabric-level conservation ledger, complementing each link's own
     offered/delivered/drops/queued counters *)
  mutable injected : int;
  mutable completed : int;
  mutable in_transit : int;
}

module Link = struct
  module Config = struct
    type t = {
      bottleneck : Bottleneck.Config.t;
      prop_delay : Time.t;
    }

    let default ~rate ~qdisc =
      { bottleneck = Bottleneck.Config.default ~rate ~qdisc;
        prop_delay = Time.zero }
  end
end

module Route = struct
  type nonrec t = link list

  let of_links links =
    (match links with [] -> invalid_arg "Route.of_links: empty" | _ -> ());
    let rec check = function
      | a :: (b :: _ as rest) ->
        if a.dst.node_id <> b.src.node_id then
          invalid_arg
            (Printf.sprintf
               "Route.of_links: link %s->%s does not end where %s->%s starts"
               a.src.name a.dst.name b.src.name b.dst.name);
        check rest
      | [ _ ] | [] -> ()
    in
    check links;
    links

  let links t = t

  let hops t = List.length t
end

let create engine =
  { engine; nodes_rev = []; links_rev = []; next_node = 0; injected = 0;
    completed = 0; in_transit = 0 }

let engine t = t.engine

let add_node t name =
  let n = { node_id = t.next_node; name } in
  t.next_node <- t.next_node + 1;
  t.nodes_rev <- n :: t.nodes_rev;
  n

let node_name n = n.name

let nodes t = List.rev t.nodes_rev

let add_link t ~src ~dst (c : Link.Config.t) =
  if src.node_id = dst.node_id then
    invalid_arg "Topology.add_link: self-loop";
  let prop = Time.to_secs c.prop_delay in
  if not (Float.is_finite prop) || prop < 0. then
    invalid_arg "Topology.add_link: prop_delay must be finite and >= 0";
  let bn = Bottleneck.create t.engine c.bottleneck in
  let l = { src; dst; bn; prop_delay = prop } in
  t.links_rev <- l :: t.links_rev;
  l

let links t = List.rev t.links_rev

let link_src l = l.src

let link_dst l = l.dst

let link_label l = l.src.name ^ "->" ^ l.dst.name

let link_bottleneck l = l.bn

let link_prop_delay l = Time.secs l.prop_delay

(* BFS over links in creation order: minimum hop count, deterministic tie
   break (first-created links win). *)
let find_route t ~src ~dst =
  if src.node_id = dst.node_id then None
  else begin
    let all = links t in
    let visited = ref [ src.node_id ] in
    (* frontier entries carry the reversed link path that reached them *)
    let frontier = ref [ (src, []) ] in
    let found = ref None in
    while Option.is_none !found && not (List.is_empty !frontier) do
      let next_frontier = ref [] in
      List.iter
        (fun (n, path_rev) ->
          List.iter
            (fun l ->
              if
                Option.is_none !found
                && l.src.node_id = n.node_id
                && not (List.mem l.dst.node_id !visited)
              then begin
                let path_rev = l :: path_rev in
                if l.dst.node_id = dst.node_id then
                  found := Some (List.rev path_rev)
                else begin
                  visited := l.dst.node_id :: !visited;
                  next_frontier := (l.dst, path_rev) :: !next_frontier
                end
              end)
            all)
        !frontier;
      frontier := List.rev !next_frontier
    done;
    Option.map Route.of_links !found
  end

(* Run [k pkt] once the packet has crossed [l]'s propagation delay.  A
   zero-delay link forwards with a direct call — no scheduled event — which
   is what keeps the degenerate dumbbell byte-identical to direct wiring. *)
let after_prop t (l : link) k (pkt : Packet.t) =
  if l.prop_delay <= 0. then k pkt
  else begin
    t.in_transit <- t.in_transit + 1;
    Engine.schedule_in t.engine (Time.secs l.prop_delay) (fun () ->
        t.in_transit <- t.in_transit - 1;
        k pkt)
  end

let attach t ~route ~flow ~sink =
  let rl = Route.links route in
  List.iter
    (fun (l : link) ->
      if not (List.memq l t.links_rev) then
        invalid_arg
          (Printf.sprintf "Topology.attach: link %s is not in this topology"
             (link_label l)))
    rl;
  List.iteri
    (fun i (l : link) ->
      let arrive =
        match List.nth_opt rl (i + 1) with
        | Some next ->
          fun (pkt : Packet.t) ->
            pkt.Packet.hop <- i + 1;
            Bottleneck.enqueue next.bn pkt
        | None ->
          fun (pkt : Packet.t) ->
            t.completed <- t.completed + 1;
            sink pkt
      in
      Bottleneck.set_sink l.bn ~flow (fun pkt -> after_prop t l arrive pkt))
    rl;
  let first = List.hd rl in
  fun (pkt : Packet.t) ->
    pkt.Packet.hop <- 0;
    t.injected <- t.injected + 1;
    Bottleneck.enqueue first.bn pkt

let injected_packets t = t.injected

let completed_packets t = t.completed

let in_transit_packets t = t.in_transit

let conservation_check t =
  let bad_link =
    List.find_opt
      (fun l ->
        let off = Bottleneck.offered_packets l.bn in
        let del = Bottleneck.delivered_packets l.bn in
        let drops = Bottleneck.drops l.bn in
        let queued = Bottleneck.queued_packets l.bn in
        off <> del + drops + queued)
      (links t)
  in
  match bad_link with
  | Some l ->
    Some
      (Printf.sprintf
         "link %s: offered=%d <> delivered=%d + drops=%d + queued=%d"
         (link_label l)
         (Bottleneck.offered_packets l.bn)
         (Bottleneck.delivered_packets l.bn)
         (Bottleneck.drops l.bn)
         (Bottleneck.queued_packets l.bn))
  | None ->
    if t.in_transit < 0 then
      Some (Printf.sprintf "in_transit=%d < 0" t.in_transit)
    else begin
      let sum_off, sum_del =
        List.fold_left
          (fun (o, d) l ->
            ( o + Bottleneck.offered_packets l.bn,
              d + Bottleneck.delivered_packets l.bn ))
          (0, 0) (links t)
      in
      (* every offered packet is either an ingress injection or a forward
         of a delivered one; deliveries either forward, sit in transit, or
         complete — so the two sums cancel against the fabric counters *)
      let residue =
        sum_off - t.injected - sum_del + t.completed + t.in_transit
      in
      if residue <> 0 then
        Some
          (Printf.sprintf
             "fabric ledger off by %d (offered=%d injected=%d delivered=%d \
              completed=%d in_transit=%d)"
             residue sum_off t.injected sum_del t.completed t.in_transit)
      else None
    end

let dumbbell engine (c : Link.Config.t) =
  let t = create engine in
  let src = add_node t "src" in
  let dst = add_node t "dst" in
  let l = add_link t ~src ~dst c in
  (t, Route.of_links [ l ])
