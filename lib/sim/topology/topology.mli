(** Multi-bottleneck network fabric: a directed graph of nodes and links,
    each link owning its own {!Nimbus_sim.Bottleneck} (rate, qdisc, buffer)
    plus a propagation delay, with per-flow routes as link lists.

    This replaces ad-hoc [Engine] + [Bottleneck] + [set_sink] plumbing with
    a declarative builder: create a topology, add nodes and links, build a
    {!Route.t}, then {!attach} a flow's packet sink to the route and inject
    packets through the returned ingress function. Packets carry a hop
    cursor ([Packet.hop]) and are forwarded link-to-link through the shared
    calendar-queue engine: after finishing serialisation at link [i] and
    crossing its propagation delay, a packet is enqueued at link [i+1], or
    delivered to the flow's sink after the last hop.

    The paper's dumbbell is the degenerate case — two nodes, one link, zero
    propagation delay — and takes the exact same code path as the old
    direct wiring: the ingress is a plain [Bottleneck.enqueue] and the
    terminal delivery a direct call, with no extra scheduled events, so
    dumbbell traces are byte-identical to pre-topology runs. That identity
    is the migration-safety oracle for the experiment layer.

    Conservation: each link keeps its own offered/delivered/drops/queued
    ledger (see {!Nimbus_sim.Bottleneck}); the topology adds fabric-level
    counters — packets injected at ingresses, completed at terminal sinks,
    and in flight between links — tied together by {!conservation_check}.
    The fabric-level identity assumes all traffic enters through {!attach}
    ingresses; traffic enqueued directly at a link's bottleneck is counted
    by that link's ledger only. *)

type t

type node

type link

module Link : sig
  (** Construction parameters for one directed link, in the same
      Config-record style as [Bottleneck.Config]. *)
  module Config : sig
    type t = {
      bottleneck : Nimbus_sim.Bottleneck.Config.t;
          (** the link's queue: rate, qdisc, loss, policer, trace *)
      prop_delay : Units.Time.t;
          (** one-way propagation latency crossed after serialisation,
              before the packet reaches the link's [dst] node (default
              {!Units.Time.zero}: forwarding is a direct call with no
              scheduled event) *)
    }

    (** [default ~rate ~qdisc] — zero propagation delay, and
        [Bottleneck.Config.default] for everything else. *)
    val default : rate:Units.Rate.t -> qdisc:Nimbus_sim.Qdisc.t -> t
  end
end

module Route : sig
  (** A forward path: a non-empty list of contiguous links (each link's
      destination node is the next link's source). *)
  type t

  (** [of_links links] validates and builds a route.
      @raise Invalid_argument if [links] is empty or not contiguous. *)
  val of_links : link list -> t

  val links : t -> link list

  (** [hops r] is the number of links. *)
  val hops : t -> int
end

(** [create engine] is an empty topology whose links and forwarding events
    all live on [engine]. *)
val create : Nimbus_sim.Engine.t -> t

val engine : t -> Nimbus_sim.Engine.t

(** [add_node t name] adds a node. Names are labels for humans (link labels
    are ["src->dst"]); they need not be unique. *)
val add_node : t -> string -> node

val node_name : node -> string

(** [nodes t] in creation order. *)
val nodes : t -> node list

(** [add_link t ~src ~dst config] adds a directed link owning a fresh
    bottleneck built from [config.bottleneck].
    @raise Invalid_argument on a self-loop or a negative/non-finite
    propagation delay. *)
val add_link : t -> src:node -> dst:node -> Link.Config.t -> link

(** [links t] in creation order. *)
val links : t -> link list

val link_src : link -> node

val link_dst : link -> node

(** [link_label l] is ["src->dst"]. *)
val link_label : link -> string

(** [link_bottleneck l] is the queue the link owns — for cross traffic
    enqueued directly at one hop, fault injection, and per-link stats. *)
val link_bottleneck : link -> Nimbus_sim.Bottleneck.t

val link_prop_delay : link -> Units.Time.t

(** [find_route t ~src ~dst] is a minimum-hop route (BFS over links in
    creation order, so ties break deterministically), or [None] if [dst]
    is unreachable. *)
val find_route : t -> src:node -> dst:node -> Route.t option

(** [attach t ~route ~flow ~sink] wires [flow]'s packets along [route]:
    every hop forwards to the next link, and packets leaving the last hop
    are handed to [sink]. Returns the ingress function that injects a
    packet at the route's first link (resetting its hop cursor and
    counting it into the fabric ledger).

    Attaching the same flow id again — to this or an overlapping route —
    replaces the per-link sinks, mirroring [Bottleneck.set_sink].
    @raise Invalid_argument if some link of [route] is not part of [t]. *)
val attach :
  t ->
  route:Route.t ->
  flow:int ->
  sink:(Nimbus_sim.Packet.t -> unit) ->
  Nimbus_sim.Packet.t ->
  unit

(** Fabric-level conservation counters. *)

(** [injected_packets t] counts packets entered through attach ingresses. *)
val injected_packets : t -> int

(** [completed_packets t] counts packets delivered past a terminal hop. *)
val completed_packets : t -> int

(** [in_transit_packets t] counts packets currently crossing a propagation
    delay between links (or before terminal delivery). *)
val in_transit_packets : t -> int

(** [conservation_check t] is [None] when every ledger balances:
    per link [offered = delivered + drops + queued], and across the fabric
    [Σ offered − injected − Σ delivered + completed + in_transit = 0]
    with [in_transit ≥ 0]. Otherwise [Some detail] describing the first
    violation. The fabric identity only holds when all traffic enters via
    {!attach} ingresses — pass it to [Invariant.add_check] in experiments
    that respect that discipline. *)
val conservation_check : t -> string option

(** [dumbbell engine config] is the two-node degenerate case: nodes
    ["src"] and ["dst"] joined by one link, returned with its single-hop
    route. *)
val dumbbell : Nimbus_sim.Engine.t -> Link.Config.t -> t * Route.t
