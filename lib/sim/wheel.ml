(* Calendar-queue event core: a 1024-slot timer wheel for near-future events
   with a binary-heap overflow for far timers.

   Push and pop of a near-future event (within [nslots * width] of the
   cursor, which covers packet serialisation, pacing, and RTT-scale timers
   at the default 64 µs slot width) cost O(slot occupancy) instead of the
   heap's O(log n), and nothing is boxed on the way in: every slot stores
   its entries in parallel arrays (flat float keys / int seqs / values),
   exactly like {!Heap} after the unboxed-key rework.

   Determinism: entries carry sequence numbers from one shared counter, and
   the pop rule is the global lexicographic (key, seq) minimum across both
   structures — slots are min-scanned, not kept sorted — so the pop order is
   *identical* to a single FIFO-tie-breaking heap's.  The slot min-scan is
   what keeps ties deterministic under any push pattern.

   Occupancy is tracked in a two-level bitmap (32 words x 32 bits, one
   summary word), so finding the next non-empty slot is a handful of mask
   and count-trailing-zero steps, never a 1024-slot walk.

   Keys must be finite and non-negative (the engine validates before
   pushing).  All wheel entries lie in absolute slots [cur, cur + nslots):
   physical slot p = abs land (nslots - 1) therefore holds entries of exactly
   one absolute slot, and the wrapped bitmap scan from the cursor's physical
   slot visits slots in absolute order.  The cursor only advances to the
   slot of a popped global minimum, which every remaining entry is >= by
   construction, so the invariant is maintained without migration sweeps. *)

let nslots = 1024
let slot_mask = nslots - 1
let word_bits = 32
let nwords = nslots / word_bits (* 32: level-1 summary fits one int *)

type 'a t = {
  width : float; (* slot width, seconds *)
  slot_keys : float array array;
  slot_seqs : int array array;
  slot_vals : 'a array array;
  slot_len : int array;
  level0 : int array; (* occupancy bit per physical slot, 32 per word *)
  mutable level1 : int; (* bit w set iff level0.(w) <> 0 *)
  mutable cur : int; (* absolute slot index of the cursor *)
  mutable wheel_count : int;
  far : 'a Heap.t; (* events at or beyond the wheel horizon *)
  mutable next_seq : int;
  (* cached location of the global minimum, invalidated by pops: -1 = none,
     0 = wheel (cache_slot/cache_idx), 1 = heap top.  Ints only — a mutable
     float field in this mixed record would box on every write. *)
  mutable cache_where : int;
  mutable cache_slot : int;
  mutable cache_idx : int;
}

let default_width = 64e-6

let create ?(width = default_width) () =
  if not (Float.is_finite width && width > 0.) then
    invalid_arg "Wheel.create: width must be finite and positive";
  {
    width;
    slot_keys = Array.make nslots [||];
    slot_seqs = Array.make nslots [||];
    slot_vals = Array.make nslots [||];
    slot_len = Array.make nslots 0;
    level0 = Array.make nwords 0;
    level1 = 0;
    cur = 0;
    wheel_count = 0;
    far = Heap.create ();
    next_seq = 0;
    cache_where = -1;
    cache_slot = 0;
    cache_idx = 0;
  }

let size t = t.wheel_count + Heap.size t.far

let is_empty t = size t = 0

(* count-trailing-zeros of a nonzero 32-bit value, by binary search *)
let ctz32 x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n
[@@alloc_free]

let mark_slot t p =
  let w = p lsr 5 and b = p land 31 in
  t.level0.(w) <- t.level0.(w) lor (1 lsl b);
  t.level1 <- t.level1 lor (1 lsl w)
[@@alloc_free]

let unmark_slot t p =
  let w = p lsr 5 and b = p land 31 in
  t.level0.(w) <- t.level0.(w) land lnot (1 lsl b);
  if t.level0.(w) = 0 then t.level1 <- t.level1 land lnot (1 lsl w)
[@@alloc_free]

(* First occupied physical slot at or after [p0] in wrapped absolute order
   (p0 = cursor's physical slot).  Requires wheel_count > 0. *)
let first_occupied_from t p0 =
  let w0 = p0 lsr 5 and b0 = p0 land 31 in
  let high = t.level0.(w0) land lnot ((1 lsl b0) - 1) in
  if high <> 0 then (w0 lsl 5) lor ctz32 high
  else begin
    let later = t.level1 land lnot ((1 lsl (w0 + 1)) - 1) in
    if later <> 0 then begin
      let w = ctz32 later in
      (w lsl 5) lor ctz32 t.level0.(w)
    end
    else begin
      let earlier = t.level1 land ((1 lsl w0) - 1) in
      if earlier <> 0 then begin
        let w = ctz32 earlier in
        (w lsl 5) lor ctz32 t.level0.(w)
      end
      else
        (* the wrapped remainder of the cursor word *)
        (w0 lsl 5) lor ctz32 (t.level0.(w0) land ((1 lsl b0) - 1))
    end
  end
[@@alloc_free]

let grow_slot t p ~key ~seq v =
  let cap = Array.length t.slot_keys.(p) in
  let ncap = max 4 (2 * cap) in
  let keys = Array.make ncap key in
  let seqs = Array.make ncap seq in
  let vals = Array.make ncap v in
  Array.blit t.slot_keys.(p) 0 keys 0 t.slot_len.(p);
  Array.blit t.slot_seqs.(p) 0 seqs 0 t.slot_len.(p);
  Array.blit t.slot_vals.(p) 0 vals 0 t.slot_len.(p);
  t.slot_keys.(p) <- keys;
  t.slot_seqs.(p) <- seqs;
  t.slot_vals.(p) <- vals

(* Is (key, seq) strictly before the cached global minimum? *)
let beats_cache t key seq =
  if t.cache_where = 0 then begin
    let ck = t.slot_keys.(t.cache_slot).(t.cache_idx) in
    key < ck
    || (Float.equal key ck && seq < t.slot_seqs.(t.cache_slot).(t.cache_idx))
  end
  else begin
    let ck = Heap.top_key t.far in
    key < ck || (Float.equal key ck && seq < Heap.top_seq t.far)
  end
[@@alloc_free]

let push t ~key v =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if key /. t.width -. float_of_int t.cur >= float_of_int nslots then begin
    (* far timer: spill to the heap, same shared sequence numbering *)
    Heap.push_seq t.far ~key ~seq v;
    (* if it became the global minimum, the cached location "heap top"
       remains valid by re-reading the top; otherwise the cache still points
       at the unchanged minimum *)
    if t.cache_where >= 0 && beats_cache t key seq then t.cache_where <- 1
  end
  else begin
    let p = int_of_float (key /. t.width) land slot_mask in
    let len = t.slot_len.(p) in
    if len = Array.length t.slot_keys.(p) then
      (grow_slot t p ~key ~seq v
      [@alloc_ok "amortized per-slot capacity doubling"]);
    t.slot_keys.(p).(len) <- key;
    t.slot_seqs.(p).(len) <- seq;
    t.slot_vals.(p).(len) <- v;
    t.slot_len.(p) <- len + 1;
    if len = 0 then mark_slot t p;
    t.wheel_count <- t.wheel_count + 1;
    if t.cache_where >= 0 && beats_cache t key seq then begin
      t.cache_where <- 0;
      t.cache_slot <- p;
      t.cache_idx <- len
    end
  end
[@@alloc_free]

(* Locate the global (key, seq) minimum and cache it.  Requires a non-empty
   wheel (unchecked, like Heap.top_key). *)
let locate t =
  if t.cache_where < 0 then begin
    if t.wheel_count = 0 then t.cache_where <- 1
    else begin
      let p = first_occupied_from t (t.cur land slot_mask) in
      (* min-scan the slot: entries are unsorted, ties break by seq *)
      let len = t.slot_len.(p) in
      let keys = t.slot_keys.(p) and seqs = t.slot_seqs.(p) in
      let best = ref 0 in
      for i = 1 to len - 1 do
        if
          keys.(i) < keys.(!best)
          || (Float.equal keys.(i) keys.(!best) && seqs.(i) < seqs.(!best))
        then best := i
      done;
      (* slot minimum vs. heap top: all other slots hold larger keys, so
         this comparison decides the global minimum *)
      if
        Heap.is_empty t.far
        || keys.(!best) < Heap.top_key t.far
        || (Float.equal keys.(!best) (Heap.top_key t.far)
           && seqs.(!best) < Heap.top_seq t.far)
      then begin
        t.cache_where <- 0;
        t.cache_slot <- p;
        t.cache_idx <- !best
      end
      else t.cache_where <- 1
    end
  end
[@@alloc_free]

let top_key t =
  locate t;
  if t.cache_where = 0 then t.slot_keys.(t.cache_slot).(t.cache_idx)
  else Heap.top_key t.far
[@@alloc_free]

(* Advance the cursor to the absolute slot of a popped minimum: every
   remaining entry is >= the minimum, hence lands at or after that slot. *)
let advance_to_key t key =
  let s_real = key /. t.width in
  (* int_of_float is undefined past the int range; a key that far out can
     only come from the heap and needs no cursor movement anyway *)
  if s_real < 4.0e18 then begin
    let s = int_of_float s_real in
    if s > t.cur then t.cur <- s
  end
[@@alloc_free]

let pop_top t =
  locate t;
  if t.cache_where = 0 then begin
    let p = t.cache_slot and i = t.cache_idx in
    let v = t.slot_vals.(p).(i) in
    advance_to_key t t.slot_keys.(p).(i);
    let last = t.slot_len.(p) - 1 in
    if i < last then begin
      t.slot_keys.(p).(i) <- t.slot_keys.(p).(last);
      t.slot_seqs.(p).(i) <- t.slot_seqs.(p).(last);
      t.slot_vals.(p).(i) <- t.slot_vals.(p).(last)
    end;
    t.slot_len.(p) <- last;
    if last = 0 then unmark_slot t p;
    t.wheel_count <- t.wheel_count - 1;
    t.cache_where <- -1;
    v
  end
  else begin
    advance_to_key t (Heap.top_key t.far);
    t.cache_where <- -1;
    Heap.pop_top t.far
  end
[@@alloc_free]
