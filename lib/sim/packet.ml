module Time = Units.Time

type t = {
  flow : int;
  seq : int;
  size : int;
  mutable sent_at : Time.t;
  mutable enqueued_at : Time.t;
  mutable dequeued_at : Time.t;
  retransmission : bool;
  mutable hop : int;
  mutable ecn : bool;
}

let default_data_size = 1500

let ack_size = 40

let make ~flow ~seq ~size ~now ?(retransmission = false) () =
  { flow; seq; size; sent_at = now; enqueued_at = Time.unknown;
    dequeued_at = Time.unknown; retransmission; hop = 0; ecn = false }

let queueing_delay p =
  if not (Time.is_known p.dequeued_at) then Time.unknown
  else Time.sub p.dequeued_at p.enqueued_at
