(** Calendar-queue event core: a 1024-slot timer wheel for near-future
    events with a binary-heap ({!Heap}) overflow for far timers.

    Scheduling a near-future event — within [1024 x width] of the cursor,
    which at the default 64 µs slot width is a ~65 ms horizon covering
    packet serialisation times, pacing ticks, and RTT-scale timers — is
    O(1), and popping costs the occupancy of one slot rather than log of
    the whole queue.  Events beyond the horizon spill into the heap and
    migrate implicitly: by the time they are due, the cursor has advanced
    and they pop straight from the heap.

    Pop order is the global lexicographic (key, sequence) minimum across
    the slots and the heap, with sequence numbers drawn from one shared
    counter at push time — exactly the order a single FIFO-tie-breaking
    {!Heap} would produce, so switching {!Engine} between the two cannot
    change a trace byte.

    Keys must be finite and non-negative ({!Engine} validates its
    timestamps before scheduling). *)

type 'a t

(** [create ?width ()] is an empty queue with the given slot width in
    seconds (default 64 µs).  @raise Invalid_argument if [width] is not
    finite and positive. *)
val create : ?width:float -> unit -> 'a t

(** [size t] is the number of pending events (slots + overflow heap). *)
val size : 'a t -> int

(** [is_empty t]. *)
val is_empty : 'a t -> bool

(** [push t ~key v] schedules [v] at time [key], assigning the next
    sequence number (FIFO among equal keys, across both structures). *)
val push : 'a t -> key:float -> 'a -> unit

(** [top_key t] is the minimum key.  The queue must be non-empty
    (unchecked, like {!Heap.top_key}); allocates nothing. *)
val top_key : 'a t -> float

(** [pop_top t] removes and returns the value with the minimum
    (key, sequence).  The queue must be non-empty (unchecked). *)
val pop_top : 'a t -> 'a
