(** Binary min-heap keyed by float, with FIFO order among equal keys.

    Backs the far-timer side of the event queue ({!Wheel} holds the
    near-future side): keys are simulated timestamps, and FIFO tie-breaking
    keeps same-instant events in the order they were scheduled, which makes
    simulations deterministic.

    Entries are stored in parallel arrays — a flat (unboxed) float array of
    keys, an int array of sequence numbers, and a value array — so a push
    allocates nothing beyond the amortized capacity doublings. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [size h]. *)
val size : 'a t -> int

(** [is_empty h]. *)
val is_empty : 'a t -> bool

(** [push h ~key v] inserts [v] with priority [key], assigning the next
    internal sequence number (FIFO among equal keys). *)
val push : 'a t -> key:float -> 'a -> unit

(** [push_seq h ~key ~seq v] inserts with a caller-supplied sequence number.
    {!Wheel} uses this to keep one global FIFO order across the calendar
    slots and the overflow heap; do not mix with {!push} on the same heap
    unless the caller's numbers and the internal counter are disjoint. *)
val push_seq : 'a t -> key:float -> seq:int -> 'a -> unit

(** [pop h] removes and returns the minimum-key entry, or [None] when empty. *)
val pop : 'a t -> (float * 'a) option

(** [top_key h] is the minimum key.  The heap must be non-empty (unchecked);
    unlike {!peek_key} it allocates nothing, which is what the engine drain
    loop needs. *)
val top_key : 'a t -> float

(** [top_seq h] is the sequence number of the minimum entry (non-empty,
    unchecked) — {!Wheel} compares it against slot entries to order
    same-instant events across the two structures. *)
val top_seq : 'a t -> int

(** [pop_top h] removes and returns the minimum-key value.  The heap must be
    non-empty (unchecked); the allocation-free counterpart of {!pop}. *)
val pop_top : 'a t -> 'a

(** [peek_key h] is the minimum key without removing it. *)
val peek_key : 'a t -> float option

(** [clear h] removes all entries. *)
val clear : 'a t -> unit
