(** Binary min-heap keyed by float, with FIFO order among equal keys.

    Backs the event queue: keys are simulated timestamps, and FIFO
    tie-breaking keeps same-instant events in the order they were scheduled,
    which makes simulations deterministic. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [size h]. *)
val size : 'a t -> int

(** [is_empty h]. *)
val is_empty : 'a t -> bool

(** [push h ~key v] inserts [v] with priority [key]. *)
val push : 'a t -> key:float -> 'a -> unit

(** [pop h] removes and returns the minimum-key entry, or [None] when empty. *)
val pop : 'a t -> (float * 'a) option

(** [top_key h] is the minimum key.  The heap must be non-empty (unchecked);
    unlike {!peek_key} it allocates nothing, which is what the engine drain
    loop needs. *)
val top_key : 'a t -> float

(** [pop_top h] removes and returns the minimum-key value.  The heap must be
    non-empty (unchecked); the allocation-free counterpart of {!pop}. *)
val pop_top : 'a t -> 'a

(** [peek_key h] is the minimum key without removing it. *)
val peek_key : 'a t -> float option

(** [clear h] removes all entries. *)
val clear : 'a t -> unit
