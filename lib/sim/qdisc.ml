module Time = Units.Time
module Rate = Units.Rate

(* AQM state stays raw float internally; the .mli is the typed boundary. *)
type decision =
  | Admit
  | Mark
  | Drop

type pie_state = {
  target_delay : float; (* seconds *)
  link_rate_bps : float;
  rng : Rng.t;
  ecn : bool;
  mutable drop_prob : float;
  mutable last_update : float;
  mutable old_delay : float;
}

type kind =
  | Droptail
  | Pie of pie_state

type t = {
  kind : kind;
  capacity_bytes : int;
}

let droptail ~capacity_bytes =
  if capacity_bytes <= 0 then invalid_arg "Qdisc.droptail: capacity <= 0";
  { kind = Droptail; capacity_bytes }

let pie ?(ecn = false) ~capacity_bytes ~target_delay ~link_rate ~rng () =
  let target_delay = Time.to_secs target_delay in
  let link_rate_bps = Rate.to_bps link_rate in
  if capacity_bytes <= 0 then invalid_arg "Qdisc.pie: capacity <= 0";
  if target_delay <= 0. then invalid_arg "Qdisc.pie: target_delay <= 0";
  { kind =
      Pie
        { target_delay; link_rate_bps; rng; ecn; drop_prob = 0.;
          last_update = 0.; old_delay = 0. };
    capacity_bytes }

let capacity_bytes t = t.capacity_bytes

let pie_update_interval = 0.015

let pie_alpha = 0.125

let pie_beta = 1.25

(* RFC 8033 scales alpha/beta down while drop_prob is small so the controller
   stays stable near zero. *)
let pie_scale p =
  if p < 0.000001 then 1. /. 2048.
  else if p < 0.00001 then 1. /. 512.
  else if p < 0.0001 then 1. /. 128.
  else if p < 0.001 then 1. /. 32.
  else if p < 0.01 then 1. /. 8.
  else if p < 0.1 then 1. /. 2.
  else 1.

(* RFC 8033 §5.1: while drop probability is at most this, an ECN-enabled
   PIE marks instead of dropping; past it congestion is severe enough that
   marking alone cannot clear the standing queue. *)
let pie_mark_ecnth = 0.1

let pie_decide s ~now ~qlen_bytes ~pkt_size ~capacity =
  if qlen_bytes + pkt_size > capacity then Drop
  else begin
    let qdelay = float_of_int (qlen_bytes * 8) /. s.link_rate_bps in
    if now -. s.last_update >= pie_update_interval then begin
      let scale = pie_scale s.drop_prob in
      let dp =
        (pie_alpha *. (qdelay -. s.target_delay))
        +. (pie_beta *. (qdelay -. s.old_delay))
      in
      s.drop_prob <- Float.max 0. (Float.min 1. (s.drop_prob +. (dp *. scale)));
      (* decay when the queue is idle-ish *)
      if qdelay < s.target_delay /. 2. && s.old_delay < s.target_delay /. 2.
      then s.drop_prob <- s.drop_prob *. 0.98;
      s.old_delay <- qdelay;
      s.last_update <- now
    end;
    (* burst protection: never drop when the queue is nearly empty.  The
       random draw happens on exactly the same state trajectory whether ECN
       is on or off, so enabling ECN changes the verdict (Mark vs Drop) but
       never the RNG stream. *)
    if qdelay < s.target_delay /. 2. && s.drop_prob < 0.2 then Admit
    else if Rng.bool s.rng ~p:s.drop_prob then
      if s.ecn && s.drop_prob <= pie_mark_ecnth then Mark else Drop
    else Admit
  end

let decide t ~now ~qlen_bytes ~pkt_size =
  match t.kind with
  | Droptail ->
    if qlen_bytes + pkt_size <= t.capacity_bytes then Admit else Drop
  | Pie s ->
    pie_decide s ~now:(Time.to_secs now) ~qlen_bytes ~pkt_size
      ~capacity:t.capacity_bytes

let admit t ~now ~qlen_bytes ~pkt_size =
  match decide t ~now ~qlen_bytes ~pkt_size with
  | Admit | Mark -> true
  | Drop -> false

let name t =
  match t.kind with
  | Droptail -> "droptail"
  | Pie _ -> "pie"
