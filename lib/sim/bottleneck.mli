(** The shared bottleneck link: a FIFO buffer drained at a fixed rate.

    Matches the paper's network model (Fig. 2): all senders' packets converge
    on one queue of rate µ; per-flow propagation happens outside this module.
    Optionally applies uniform random loss (lossy Internet paths) and a
    token-bucket policer (policed paths), both used by the §8.4 path-profile
    experiments. *)

type t

(** Construction parameters.  Start from {!Config.default} and override
    fields with record-update syntax:
    {[
      Bottleneck.create engine
        { (Bottleneck.Config.default ~rate ~qdisc) with
          policer = Some (rate, 30_000) }
    ]} *)
module Config : sig
  type t = {
    rate : Units.Rate.t;  (** drain rate µ; finite and positive *)
    qdisc : Qdisc.t;
    random_loss : (float * Rng.t) option;
        (** drop each admitted packet with this probability *)
    policer : (Units.Rate.t * int) option;
        (** token bucket of (rate, burst bytes); violating packets are
            dropped instead of queued *)
    trace : Nimbus_trace.Trace.t;
        (** collector for [packet]/[bottleneck] events (default
            {!Nimbus_trace.Trace.disabled}) *)
    pkt_sample : int;
        (** trace every [pkt_sample]-th enqueue/delivery (default 64;
            drops are always traced) *)
  }

  (** [default ~rate ~qdisc] — no loss, no policer, tracing off. *)
  val default : rate:Units.Rate.t -> qdisc:Qdisc.t -> t
end

(** [create engine config] builds an idle bottleneck.
    @raise Invalid_argument if [config.rate] is not finite and positive
    or [config.pkt_sample < 1]. *)
val create : Engine.t -> Config.t -> t

(** [set_sink t ~flow f] registers the delivery callback for [flow]'s packets
    (invoked when a packet finishes serialisation at the link head). *)
val set_sink : t -> flow:int -> (Packet.t -> unit) -> unit

(** [enqueue t pkt] submits [pkt]; it is either queued or dropped. *)
val enqueue : t -> Packet.t -> unit

(** Fault hooks (driven by [lib/faults]) *)

(** [set_rate t rate] changes the drain rate µ mid-run. [Rate.zero] stalls
    the link (an outage): queued packets are held, not dropped, and drain
    resumes when a positive rate is restored. A packet already being
    serialised keeps its old completion time.
    @raise Invalid_argument if [rate] is NaN, infinite, or negative. *)
val set_rate : t -> Units.Rate.t -> unit

(** [set_loss_model t f] installs ([Some f]) or removes ([None]) a stateful
    loss process consulted per offered packet after the policer and the
    uniform [random_loss]; [f pkt = true] drops the packet (e.g. a
    Gilbert–Elliott burst-loss injector). *)
val set_loss_model : t -> (Packet.t -> bool) option -> unit

(** Observability *)

(** [trace t] is the collector this link emits to. *)
val trace : t -> Nimbus_trace.Trace.t

(** [rate t] is the current drain rate µ. *)
val rate : t -> Units.Rate.t

(** [qlen_bytes t] includes the packet currently being serialised. *)
val qlen_bytes : t -> int

(** [queue_delay t] is the drain-time estimate [qlen·8/rate]; during an
    outage ([rate = 0]) the last positive rate is used so the estimate stays
    finite. *)
val queue_delay : t -> Units.Time.t

(** [drops t] is the cumulative count of dropped packets. *)
val drops : t -> int

(** [marks t] is the cumulative count of packets ECN-marked by the qdisc
    ({!Qdisc.decision} [Mark]); always [0] unless the discipline was built
    with ECN enabled. Marked packets are admitted, so they appear in the
    conservation ledger as delivered/queued, never as drops. *)
val marks : t -> int

(** [drops_for t ~flow] is the cumulative drops of one flow. *)
val drops_for : t -> flow:int -> int

(** [delivered_bytes t ~flow] is the cumulative bytes serialised for
    [flow]. *)
val delivered_bytes : t -> flow:int -> int

(** [busy_time t] is the cumulative time the link spent transmitting —
    divide by elapsed time for utilisation. *)
val busy_time : t -> Units.Time.t

(** [capacity_bytes t] is the buffer size. *)
val capacity_bytes : t -> int

(** Packet-conservation ledger, audited by the invariant monitor: at any
    instant [offered = delivered + drops + queued]. *)

(** [offered_packets t] counts every packet ever submitted via {!enqueue}. *)
val offered_packets : t -> int

(** [delivered_packets t] counts packets that finished serialisation. *)
val delivered_packets : t -> int

(** [queued_packets t] is the number buffered right now, including the one
    being serialised. *)
val queued_packets : t -> int
