(** The shared bottleneck link: a FIFO buffer drained at a fixed rate.

    Matches the paper's network model (Fig. 2): all senders' packets converge
    on one queue of rate µ; per-flow propagation happens outside this module.
    Optionally applies uniform random loss (lossy Internet paths) and a
    token-bucket policer (policed paths), both used by the §8.4 path-profile
    experiments. *)

type t

(** [create engine ~rate ~qdisc ()] builds an idle bottleneck.
    [random_loss] drops each admitted packet with the given probability;
    [policer] drops packets exceeding a token bucket of the given rate and
    [burst_bytes] instead of queueing them.
    @raise Invalid_argument if [rate] is not finite and positive. *)
val create :
  Engine.t ->
  rate:Units.Rate.t ->
  qdisc:Qdisc.t ->
  ?random_loss:float * Rng.t ->
  ?policer:Units.Rate.t * int ->
  unit ->
  t

(** [set_sink t ~flow f] registers the delivery callback for [flow]'s packets
    (invoked when a packet finishes serialisation at the link head). *)
val set_sink : t -> flow:int -> (Packet.t -> unit) -> unit

(** [enqueue t pkt] submits [pkt]; it is either queued or dropped. *)
val enqueue : t -> Packet.t -> unit

(** Observability *)

(** [rate t] is the configured drain rate µ. *)
val rate : t -> Units.Rate.t

(** [qlen_bytes t] includes the packet currently being serialised. *)
val qlen_bytes : t -> int

(** [queue_delay t] is the drain-time estimate [qlen·8/rate]. *)
val queue_delay : t -> Units.Time.t

(** [drops t] is the cumulative count of dropped packets. *)
val drops : t -> int

(** [drops_for t ~flow] is the cumulative drops of one flow. *)
val drops_for : t -> flow:int -> int

(** [delivered_bytes t ~flow] is the cumulative bytes serialised for
    [flow]. *)
val delivered_bytes : t -> flow:int -> int

(** [busy_time t] is the cumulative time the link spent transmitting —
    divide by elapsed time for utilisation. *)
val busy_time : t -> Units.Time.t

(** [capacity_bytes t] is the buffer size. *)
val capacity_bytes : t -> int
