module Time = Units.Time
module Rate = Units.Rate
module B = Units.Bytes

type policer = {
  p_rate : Rate.t;
  p_burst : int; (* bytes *)
  mutable tokens : float; (* bytes *)
  mutable last_refill : Time.t;
}

type t = {
  engine : Engine.t;
  rate : Rate.t;
  qdisc : Qdisc.t;
  random_loss : (float * Rng.t) option;
  policer : policer option;
  fifo : Packet.t Queue.t;
  sinks : (int, Packet.t -> unit) Hashtbl.t;
  mutable qlen : int;
  mutable busy : bool;
  mutable drops : int;
  drops_by_flow : (int, int) Hashtbl.t;
  delivered_by_flow : (int, int) Hashtbl.t;
  mutable busy_secs : float;
}

let create engine ~rate ~qdisc ?random_loss ?policer () =
  let rate = Rate.bps_exn (Rate.to_bps rate) in
  let policer =
    Option.map
      (fun (prate, burst) ->
        { p_rate = prate; p_burst = burst; tokens = float_of_int burst;
          last_refill = Engine.now engine })
      policer
  in
  { engine; rate; qdisc; random_loss; policer; fifo = Queue.create ();
    sinks = Hashtbl.create 16; qlen = 0; busy = false; drops = 0;
    drops_by_flow = Hashtbl.create 16; delivered_by_flow = Hashtbl.create 16;
    busy_secs = 0. }

let set_sink t ~flow f = Hashtbl.replace t.sinks flow f

let bump tbl key n =
  let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (cur + n)

let record_drop t (pkt : Packet.t) =
  t.drops <- t.drops + 1;
  bump t.drops_by_flow pkt.flow 1

let deliver t (pkt : Packet.t) =
  bump t.delivered_by_flow pkt.flow pkt.size;
  match Hashtbl.find_opt t.sinks pkt.flow with
  | Some f -> f pkt
  | None -> ()

let rec start_next t =
  match Queue.take_opt t.fifo with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    let tx = Rate.tx_time t.rate (B.of_int pkt.size) in
    t.busy_secs <- t.busy_secs +. Time.to_secs tx;
    Engine.schedule_in t.engine tx (fun () ->
        pkt.Packet.dequeued_at <- Engine.now t.engine;
        t.qlen <- t.qlen - pkt.size;
        deliver t pkt;
        start_next t)

let policer_admits t (pkt : Packet.t) =
  match t.policer with
  | None -> true
  | Some p ->
    let now = Engine.now t.engine in
    let elapsed = Time.sub now p.last_refill in
    let refill = B.to_float (Rate.volume p.p_rate ~over:elapsed) in
    p.tokens <- Float.min (float_of_int p.p_burst) (p.tokens +. refill);
    p.last_refill <- now;
    if p.tokens >= float_of_int pkt.size then begin
      p.tokens <- p.tokens -. float_of_int pkt.size;
      true
    end
    else false

let random_loss_admits t =
  match t.random_loss with
  | None -> true
  | Some (p, rng) -> not (Rng.bool rng ~p)

let enqueue t pkt =
  let now = Engine.now t.engine in
  if not (policer_admits t pkt) then record_drop t pkt
  else if not (random_loss_admits t) then record_drop t pkt
  else if Qdisc.admit t.qdisc ~now ~qlen_bytes:t.qlen ~pkt_size:pkt.Packet.size
  then begin
    pkt.Packet.enqueued_at <- now;
    t.qlen <- t.qlen + pkt.Packet.size;
    Queue.push pkt t.fifo;
    if not t.busy then start_next t
  end
  else record_drop t pkt

let rate t = t.rate

let qlen_bytes t = t.qlen

let queue_delay t = Rate.tx_time t.rate (B.of_int t.qlen)

let drops t = t.drops

let drops_for t ~flow =
  Option.value ~default:0 (Hashtbl.find_opt t.drops_by_flow flow)

let delivered_bytes t ~flow =
  Option.value ~default:0 (Hashtbl.find_opt t.delivered_by_flow flow)

let busy_time t = Time.secs t.busy_secs

let capacity_bytes t = Qdisc.capacity_bytes t.qdisc
