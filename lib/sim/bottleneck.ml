module Time = Units.Time
module Rate = Units.Rate
module B = Units.Bytes
module Trace = Nimbus_trace.Trace
module Tev = Nimbus_trace.Event

type policer = {
  p_rate : Rate.t;
  p_burst : int; (* bytes *)
  mutable tokens : float; (* bytes *)
  mutable last_refill : Time.t;
}

type t = {
  engine : Engine.t;
  mutable rate : Rate.t;
  mutable drain_rate_hint : Rate.t; (* last positive rate, for queue_delay *)
  qdisc : Qdisc.t;
  random_loss : (float * Rng.t) option;
  mutable loss_model : (Packet.t -> bool) option;
  policer : policer option;
  fifo : Packet.t Queue.t;
  sinks : (int, Packet.t -> unit) Hashtbl.t;
  mutable qlen : int;
  mutable busy : bool;
  mutable drops : int;
  mutable marks : int;
  drops_by_flow : (int, int) Hashtbl.t;
  delivered_by_flow : (int, int) Hashtbl.t;
  mutable busy_secs : float;
  (* packet-conservation ledger: every offered packet must end up delivered,
     dropped, or still queued.  The invariant monitor audits
     [offered = delivered + drops + queued] every tick. *)
  mutable offered_pkts : int;
  mutable delivered_pkts : int;
  mutable queued_pkts : int;
  trace : Trace.t;
  pkt_sample : int;
  mutable enq_count : int;
  mutable del_count : int;
}

module Config = struct
  type t = {
    rate : Rate.t;
    qdisc : Qdisc.t;
    random_loss : (float * Rng.t) option;
    policer : (Rate.t * int) option;
    trace : Trace.t;
    pkt_sample : int;
  }

  let default ~rate ~qdisc =
    { rate; qdisc; random_loss = None; policer = None;
      trace = Trace.disabled; pkt_sample = 64 }
end

let create engine (c : Config.t) =
  let rate = Rate.bps_exn (Rate.to_bps c.rate) in
  if c.pkt_sample < 1 then
    invalid_arg "Bottleneck.create: pkt_sample must be >= 1";
  let policer =
    Option.map
      (fun (prate, burst) ->
        { p_rate = prate; p_burst = burst; tokens = float_of_int burst;
          last_refill = Engine.now engine })
      c.policer
  in
  { engine; rate; drain_rate_hint = rate; qdisc = c.qdisc;
    random_loss = c.random_loss; loss_model = None; policer;
    fifo = Queue.create (); sinks = Hashtbl.create 16; qlen = 0;
    busy = false; drops = 0; marks = 0;
    drops_by_flow = Hashtbl.create 16;
    delivered_by_flow = Hashtbl.create 16; busy_secs = 0.; offered_pkts = 0;
    delivered_pkts = 0; queued_pkts = 0; trace = c.trace;
    pkt_sample = c.pkt_sample; enq_count = 0; del_count = 0 }

let set_sink t ~flow f = Hashtbl.replace t.sinks flow f

let trace t = t.trace

let now_s t = Time.to_secs (Engine.now t.engine)
[@@unit_ok "raw-seconds view feeding float trace sinks"]

let set_loss_model t f =
  t.loss_model <- f;
  if Trace.want t.trace Tev.Bottleneck then
    Trace.loss_model t.trace ~now:(now_s t) ~installed:(Option.is_some f)

let bump tbl key n =
  let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (cur + n)

let record_drop t (pkt : Packet.t) ~reason =
  t.drops <- t.drops + 1;
  bump t.drops_by_flow pkt.flow 1;
  (* drops are rare and diagnostic gold, so they are never sampled out *)
  if Trace.want t.trace Tev.Packet then
    Trace.pkt_drop t.trace ~now:(now_s t) ~flow:pkt.flow ~seq:pkt.seq ~reason

let deliver t (pkt : Packet.t) =
  bump t.delivered_by_flow pkt.flow pkt.size;
  t.delivered_pkts <- t.delivered_pkts + 1;
  t.queued_pkts <- t.queued_pkts - 1;
  if Trace.want t.trace Tev.Packet then begin
    t.del_count <- t.del_count + 1;
    if t.del_count mod t.pkt_sample = 0 then
      Trace.pkt_deliver t.trace ~now:(now_s t) ~flow:pkt.flow ~seq:pkt.seq
        ~qdelay:(Time.to_secs (Packet.queueing_delay pkt))
  end;
  match Hashtbl.find_opt t.sinks pkt.flow with
  | Some f -> f pkt
  | None -> ()

(* The head packet is only committed (taken off the FIFO and scheduled) when
   the link has a positive rate; during an outage (µ = 0, see {!set_rate})
   packets stay queued and the link idles until the rate is restored. *)
let rec start_next t =
  if Rate.(t.rate <= Rate.zero) then t.busy <- false
  else begin
    match Queue.take_opt t.fifo with
    | None -> t.busy <- false
    | Some pkt ->
      t.busy <- true;
      let tx = Rate.tx_time t.rate (B.of_int pkt.size) in
      t.busy_secs <- t.busy_secs +. Time.to_secs tx;
      Engine.schedule_in t.engine tx (fun () ->
          pkt.Packet.dequeued_at <- Engine.now t.engine;
          t.qlen <- t.qlen - pkt.size;
          deliver t pkt;
          start_next t)
  end

let set_rate t rate =
  let r = Rate.to_bps rate in
  if not (Float.is_finite r) || r < 0. then
    invalid_arg "Bottleneck.set_rate: rate must be finite and >= 0";
  if Trace.want t.trace Tev.Bottleneck then
    Trace.rate_set t.trace ~now:(now_s t) ~before:(Rate.to_mbps t.rate)
      ~after:(Rate.to_mbps rate);
  t.rate <- rate;
  if Rate.(rate > Rate.zero) then begin
    t.drain_rate_hint <- rate;
    (* coming out of an outage: resume draining whatever queued meanwhile
       (a packet already being serialised keeps its old completion time) *)
    if not t.busy then start_next t
  end

let policer_admits t (pkt : Packet.t) =
  match t.policer with
  | None -> true
  | Some p ->
    let now = Engine.now t.engine in
    let elapsed = Time.sub now p.last_refill in
    let refill = B.to_float (Rate.volume p.p_rate ~over:elapsed) in
    p.tokens <- Float.min (float_of_int p.p_burst) (p.tokens +. refill);
    p.last_refill <- now;
    if p.tokens >= float_of_int pkt.size then begin
      p.tokens <- p.tokens -. float_of_int pkt.size;
      true
    end
    else false

let random_loss_admits t =
  match t.random_loss with
  | None -> true
  | Some (p, rng) -> not (Rng.bool rng ~p)

let loss_model_admits t pkt =
  match t.loss_model with None -> true | Some drop -> not (drop pkt)

let enqueue t pkt =
  let now = Engine.now t.engine in
  t.offered_pkts <- t.offered_pkts + 1;
  if not (policer_admits t pkt) then record_drop t pkt ~reason:Tev.Policer
  else if not (random_loss_admits t) then
    record_drop t pkt ~reason:Tev.Random_loss
  else if not (loss_model_admits t pkt) then
    record_drop t pkt ~reason:Tev.Modeled_loss
  else begin
    match
      Qdisc.decide t.qdisc ~now ~qlen_bytes:t.qlen ~pkt_size:pkt.Packet.size
    with
    | Qdisc.Drop -> record_drop t pkt ~reason:Tev.Queue_full
    | (Qdisc.Admit | Qdisc.Mark) as d ->
    if d = Qdisc.Mark then begin
      pkt.Packet.ecn <- true;
      t.marks <- t.marks + 1
    end;
    pkt.Packet.enqueued_at <- now;
    t.qlen <- t.qlen + pkt.Packet.size;
    t.queued_pkts <- t.queued_pkts + 1;
    if Trace.want t.trace Tev.Packet then begin
      t.enq_count <- t.enq_count + 1;
      if t.enq_count mod t.pkt_sample = 0 then
        Trace.pkt_enqueue t.trace ~now:(Time.to_secs now) ~flow:pkt.Packet.flow
          ~seq:pkt.Packet.seq ~qlen:t.qlen
    end;
    Queue.push pkt t.fifo;
    if not t.busy then start_next t
  end

let rate t = t.rate

let qlen_bytes t = t.qlen

let queue_delay t =
  (* during an outage the true drain time is unbounded; estimate against the
     last positive rate so monitors keep producing finite samples *)
  let r =
    if Rate.(t.rate > Rate.zero) then t.rate else t.drain_rate_hint
  in
  Rate.tx_time r (B.of_int t.qlen)

let drops t = t.drops

let marks t = t.marks

let drops_for t ~flow =
  Option.value ~default:0 (Hashtbl.find_opt t.drops_by_flow flow)

let delivered_bytes t ~flow =
  Option.value ~default:0 (Hashtbl.find_opt t.delivered_by_flow flow)

let busy_time t = Time.secs t.busy_secs

let capacity_bytes t = Qdisc.capacity_bytes t.qdisc

let offered_packets t = t.offered_pkts

let delivered_packets t = t.delivered_pkts

let queued_packets t = t.queued_pkts
