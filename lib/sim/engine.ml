module Time = Units.Time
module Trace = Nimbus_trace.Trace
module Span = Nimbus_trace.Span

(* The clock and queue keys stay raw float internally — the typed boundary is
   the .mli; unwrapping once on entry keeps the hot event loop allocation- and
   indirection-free.  The queue itself is the calendar-queue {!Wheel}: O(1)
   pushes for near-future (packet-scale) events, heap spill for far timers,
   and a pop order identical to the old pure-heap engine's. *)
type t = {
  mutable clock : float;
  events : (unit -> unit) Wheel.t;
  trace : Trace.t;
  mutable scheds : int;
  mutable flow_ids : int;
}

module Config = struct
  type t = { trace : Trace.t }

  let default =
    { trace = Trace.disabled }
  [@@shared_ok
    "Trace.disabled is the inert zero-capacity collector (empty rings, \
     mask 0): every emit is a no-op, so sharing it across domains is \
     write-free"]
end

(* scheduler events are high-volume and low-information individually, so only
   every [sched_sample]-th one is traced *)
let sched_sample = 256

let create (c : Config.t) =
  { clock = 0.; events = Wheel.create (); trace = c.Config.trace; scheds = 0;
    flow_ids = 0 }

let trace t = t.trace

(* flow ids are engine-scoped, not process-global: every run of the same
   scenario numbers its flows identically, which is what makes traced runs
   byte-identical across repeats and across --jobs fan-out *)
let fresh_flow_id t =
  let id = t.flow_ids in
  t.flow_ids <- id + 1;
  id

let now t = Time.secs t.clock

(* A NaN or infinite key would silently corrupt the heap order (every
   comparison against NaN is false), so both entry points reject non-finite
   times before they reach the queue. *)
let schedule_at t time f =
  let time = Time.to_secs time in
  if not (Float.is_finite time) then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: non-finite time (%h)" time);
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %.9f is before now (%.9f)" time
         t.clock);
  if Trace.want t.trace Nimbus_trace.Event.Engine then begin
    t.scheds <- t.scheds + 1;
    if t.scheds mod sched_sample = 0 then
      Trace.sched t.trace ~now:t.clock ~at:time
        ~pending:(Wheel.size t.events)
  end;
  Wheel.push t.events ~key:time f

let schedule_in t delay f =
  let delay = Time.to_secs delay in
  if not (Float.is_finite delay) then
    invalid_arg
      (Printf.sprintf "Engine.schedule_in: non-finite delay (%h)" delay);
  if delay < 0. then invalid_arg "Engine.schedule_in: negative delay";
  Wheel.push t.events ~key:(t.clock +. delay) f

let every t ~dt ?start ?until f =
  let dt = Time.to_secs dt in
  if not (Float.is_finite dt) then
    invalid_arg (Printf.sprintf "Engine.every: non-finite dt (%h)" dt);
  if dt <= 0. then invalid_arg "Engine.every: dt <= 0";
  let first =
    match start with Some s -> Time.to_secs s | None -> t.clock +. dt
  in
  let until = Option.map Time.to_secs until in
  let rec tick () =
    f ();
    let next = t.clock +. dt in
    match until with
    | Some stop when next > stop -> ()
    | _ -> schedule_at t (Time.secs next) tick
  in
  schedule_at t (Time.secs first) tick

(* The drain loop runs once per event, so it uses the raw queue primitives
   (top_key/pop_top) instead of option/tuple-returning wrappers: verified
   allocation-free by tool/analyze.  The handler call itself is opaque to
   the checker ([@alloc_ok]); handlers allocate on their own budget, the
   loop machinery must not. *)
let rec drain t ~horizon =
  if not (Wheel.is_empty t.events) then begin
    (* bound once: each cross-module float return is a fresh box, so the
       key is read a single time per event *)
    let key = Wheel.top_key t.events in
    if key <= horizon then begin
      t.clock <- key;
      let f = Wheel.pop_top t.events in
      (f () [@alloc_ok "opaque event callback; staying allocation-free is \
                        part of the handler author's contract"]);
      drain t ~horizon
    end
  end
[@@alloc_free]

let run_until t horizon =
  let horizon = Time.to_secs horizon in
  Span.enter Engine_drain;
  drain t ~horizon;
  if t.clock < horizon then t.clock <- horizon;
  Span.leave Engine_drain

let pending t = Wheel.size t.events
