(* Entries live in three parallel arrays instead of an array of
   {key; seq; value} records: [keys] is a flat float array (unboxed storage),
   so a push allocates nothing — the old representation boxed one entry
   record plus one float per push, which at simulator packet rates dominated
   the minor-word budget of [Engine].  [seqs] carries the FIFO tie-break:
   (key, seq) is a total order, which is what makes event delivery — and
   therefore traces — deterministic. *)
type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let size h = h.size

let is_empty h = h.size = 0

(* strict (key, seq) lexicographic order between slots [i] and [j] *)
let less h i j =
  h.keys.(i) < h.keys.(j)
  || (Float.equal h.keys.(i) h.keys.(j) && h.seqs.(i) < h.seqs.(j))
[@@alloc_free]

(* Doubling growth, filling the fresh arrays with the entry being pushed so
   no dummy element is ever needed.  Cold: runs O(log n) times total. *)
let grow h ~key ~seq v =
  let ncap = max 16 (2 * Array.length h.keys) in
  let keys = Array.make ncap key in
  let seqs = Array.make ncap seq in
  let vals = Array.make ncap v in
  Array.blit h.keys 0 keys 0 h.size;
  Array.blit h.seqs 0 seqs 0 h.size;
  Array.blit h.vals 0 vals 0 h.size;
  h.keys <- keys;
  h.seqs <- seqs;
  h.vals <- vals

let push_seq h ~key ~seq v =
  if h.size = Array.length h.keys then
    (grow h ~key ~seq v [@alloc_ok "amortized capacity doubling"]);
  (* sift up *)
  let i = ref h.size in
  h.size <- h.size + 1;
  h.keys.(!i) <- key;
  h.seqs.(!i) <- seq;
  h.vals.(!i) <- v;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if
      key < h.keys.(parent)
      || (Float.equal key h.keys.(parent) && seq < h.seqs.(parent))
    then begin
      h.keys.(!i) <- h.keys.(parent);
      h.seqs.(!i) <- h.seqs.(parent);
      h.vals.(!i) <- h.vals.(parent);
      h.keys.(parent) <- key;
      h.seqs.(parent) <- seq;
      h.vals.(parent) <- v;
      i := parent
    end
    else continue := false
  done
[@@alloc_free]

let push h ~key v =
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  push_seq h ~key ~seq v

(* top_key/top_seq/pop_top are the raw drain-loop primitives: no option or
   tuple wrapping, so the engine event loop stays allocation-free.  All
   require a non-empty heap (unchecked: callers test [is_empty] first). *)
let top_key h = h.keys.(0) [@@alloc_free]

let top_seq h = h.seqs.(0) [@@alloc_free]

let swap h i j =
  let k = h.keys.(i) and s = h.seqs.(i) and v = h.vals.(i) in
  h.keys.(i) <- h.keys.(j);
  h.seqs.(i) <- h.seqs.(j);
  h.vals.(i) <- h.vals.(j);
  h.keys.(j) <- k;
  h.seqs.(j) <- s;
  h.vals.(j) <- v
[@@alloc_free]

let pop_top h =
  let top = h.vals.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.keys.(0) <- h.keys.(h.size);
    h.seqs.(0) <- h.seqs.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && less h l !smallest then smallest := l;
      if r < h.size && less h r !smallest then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done
  end;
  top
[@@alloc_free]

let pop h =
  if h.size = 0 then None
  else begin
    let key = top_key h in
    let value = pop_top h in
    Some (key, value)
  end

let peek_key h = if h.size = 0 then None else Some h.keys.(0)

let clear h = h.size <- 0
