type 'a entry = {
  key : float;
  seq : int;
  value : 'a;
}

type 'a t = {
  mutable data : 'a entry array; (* slot 0 unused when empty *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let size h = h.size

let is_empty h = h.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = max 16 (cap * 2) in
    let data = Array.make ncap entry in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let push h ~key value =
  let entry = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  (* sift up *)
  let i = ref h.size in
  h.size <- h.size + 1;
  h.data.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less entry h.data.(parent) then begin
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

(* top_key/pop_top are the raw drain-loop primitives: no option or tuple
   wrapping, so Engine.run_until stays allocation-free.  Both require a
   non-empty heap (unchecked: callers test [is_empty] first). *)
let top_key h = h.data.(0).key [@@alloc_free]

let pop_top h =
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    let last = h.data.(h.size) in
    h.data.(0) <- last;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.data.(!i) in
        h.data.(!i) <- h.data.(!smallest);
        h.data.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  top.value
[@@alloc_free]

let pop h =
  if h.size = 0 then None
  else begin
    let key = top_key h in
    let value = pop_top h in
    Some (key, value)
  end

let peek_key h = if h.size = 0 then None else Some h.data.(0).key

let clear h = h.size <- 0
