(** Packets as they traverse the bottleneck.

    A packet belongs to one flow, carries its payload size, and collects
    {!Units.Time.t} timestamps at each stage. ACKs are not materialised as
    packets on a reverse queue: the receiver leg is modelled as a pure delay
    (the paper's single-bottleneck network model, Fig. 2), so
    acknowledgements are scheduled callbacks carrying the metadata a real
    ACK would. *)

type t = {
  flow : int;  (** flow identifier *)
  seq : int;  (** per-flow sequence number *)
  size : int;  (** bytes on the wire *)
  mutable sent_at : Units.Time.t;
      (** handed to the network by the sender *)
  mutable enqueued_at : Units.Time.t;
      (** arrival at the bottleneck queue; [Time.unknown] until then *)
  mutable dequeued_at : Units.Time.t;
      (** finished serialisation at the bottleneck; [Time.unknown] until
          then *)
  retransmission : bool;
  mutable hop : int;
      (** index of the route link the packet is on (or has reached), for
          multi-hop topologies; starts at [0] and is advanced by the
          forwarding layer. Single-bottleneck wiring leaves it at [0]. *)
  mutable ecn : bool;
      (** congestion-experienced mark — set by an ECN-enabled AQM instead
          of dropping. Cleared at creation; never cleared in flight. *)
}

(** Conventional sizes, in bytes. *)
val default_data_size : int

val ack_size : int

(** [make ~flow ~seq ~size ~now ?retransmission ()] is a fresh packet with
    [sent_at = now], unset downstream timestamps, [hop = 0] and no ECN
    mark. *)
val make :
  flow:int ->
  seq:int ->
  size:int ->
  now:Units.Time.t ->
  ?retransmission:bool ->
  unit ->
  t

(** [queueing_delay p] is the time [p] spent at the bottleneck (enqueue to
    end of serialisation); [Time.unknown] before dequeue. *)
val queueing_delay : t -> Units.Time.t
