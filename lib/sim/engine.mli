(** Discrete-event simulation engine.

    A single mutable clock plus an event queue of thunks — a calendar-queue
    {!Wheel} (O(1) near-future pushes, heap spill for far timers, FIFO order
    among equal timestamps). All network elements, congestion controllers,
    and traffic sources advance by scheduling callbacks on the shared
    engine.

    All clock readings and delays are {!Units.Time.t} — the engine is the
    root of the time dimension, so a hertz or Mbit/s value can never reach
    the scheduler. *)

type t

(** Construction parameters, in the same Config-record style as
    [Bottleneck.Config] and [Nimbus.Config]: start from {!Config.default}
    and override fields with record-update syntax.  The trace collector is
    fixed for the engine's lifetime — mid-run collector swapping (the old
    [set_trace] escape hatch) is gone; build the engine with the collector
    the run needs. *)
module Config : sig
  type t = {
    trace : Nimbus_trace.Trace.t;
        (** the run's trace collector (default
            {!Nimbus_trace.Trace.disabled}); every [256]-th scheduled event
            is recorded under the [engine] category, and {!run_until}
            drains inside an [engine_drain] profiling span *)
  }

  (** [default] — tracing off. *)
  val default : t
end

(** [create config] is a fresh engine with the clock at [Time.zero]. *)
val create : Config.t -> t

(** [trace t] is the run's trace collector — network elements created on
    this engine and control hooks such as [Flow.apply] emit through it. *)
val trace : t -> Nimbus_trace.Trace.t

(** [fresh_flow_id t] allocates the next engine-scoped flow id (0, 1, …).
    Ids are per-engine rather than process-global so that repeated runs of
    the same scenario — sequentially or on different domains — number their
    flows, and therefore their traces, identically. *)
val fresh_flow_id : t -> int

(** [now t] is the current simulated time. *)
val now : t -> Units.Time.t

(** [schedule_at t time f] runs [f] when the clock reaches [time]. Scheduling
    in the past — or at a NaN/infinite time, which would silently corrupt the
    queue order — raises [Invalid_argument]. *)
val schedule_at : t -> Units.Time.t -> (unit -> unit) -> unit

(** [schedule_in t delay f] runs [f] after [delay] ([delay >= Time.zero] and
    finite; NaN/infinite delays raise [Invalid_argument]). *)
val schedule_in : t -> Units.Time.t -> (unit -> unit) -> unit

(** [every t ~dt ?start ?until f] runs [f] at [start] (default: [now + dt])
    and every [dt] thereafter, stopping after [until] when given. *)
val every :
  t ->
  dt:Units.Time.t ->
  ?start:Units.Time.t ->
  ?until:Units.Time.t ->
  (unit -> unit) ->
  unit

(** [run_until t horizon] processes events in timestamp order until the queue
    empties or the next event lies beyond [horizon]; the clock ends at
    [horizon] (or at the last event if the queue drained early and no event
    reached the horizon). *)
val run_until : t -> Units.Time.t -> unit

(** [pending t] is the number of queued events (of use to tests). *)
val pending : t -> int
