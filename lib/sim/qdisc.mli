(** Queue disciplines for the bottleneck buffer.

    Drop-tail is the paper's default; PIE is used by the §8.2 AQM robustness
    experiments. The discipline decides admission; the bottleneck owns the
    actual FIFO. *)

type t

(** [droptail ~capacity_bytes] drops arrivals that would overflow the
    buffer. *)
val droptail : capacity_bytes:int -> t

(** [pie ~capacity_bytes ~target_delay ~link_rate ~rng] implements the PIE
    AQM (RFC 8033, simplified): a drop probability is updated every 15 ms
    from the estimated queueing delay [qlen·8/rate] against [target_delay],
    and arrivals are dropped randomly with that probability (plus tail drop
    at [capacity_bytes]). *)
val pie :
  capacity_bytes:int ->
  target_delay:Units.Time.t ->
  link_rate:Units.Rate.t ->
  rng:Rng.t ->
  t

(** [capacity_bytes t]. *)
val capacity_bytes : t -> int

(** [admit t ~now ~qlen_bytes ~pkt_size] decides whether an arriving packet
    is admitted given the current backlog. Advances internal AQM state. *)
val admit : t -> now:Units.Time.t -> qlen_bytes:int -> pkt_size:int -> bool

(** [name t] is ["droptail"] or ["pie"]. *)
val name : t -> string
