(** Queue disciplines for the bottleneck buffer.

    Drop-tail is the paper's default; PIE is used by the §8.2 AQM robustness
    experiments. The discipline decides admission; the bottleneck owns the
    actual FIFO. *)

type t

(** The discipline's verdict on an arriving packet. [Mark] means "admit,
    but set the packet's ECN congestion-experienced bit" — only an
    ECN-enabled AQM ever returns it. *)
type decision =
  | Admit
  | Mark
  | Drop

(** [droptail ~capacity_bytes] drops arrivals that would overflow the
    buffer. *)
val droptail : capacity_bytes:int -> t

(** [pie ?ecn ~capacity_bytes ~target_delay ~link_rate ~rng] implements the
    PIE AQM (RFC 8033, simplified): a drop probability is updated every
    15 ms from the estimated queueing delay [qlen·8/rate] against
    [target_delay], and arrivals are dropped randomly with that probability
    (plus tail drop at [capacity_bytes]).

    With [ecn = true] (default false), random early decisions while the
    drop probability is ≤ 10% (RFC 8033 §5.1) become {!Mark} instead of
    {!Drop}; tail overflow always drops. The RNG stream is identical
    either way, so turning ECN off reproduces the exact pre-ECN
    behaviour. *)
val pie :
  ?ecn:bool ->
  capacity_bytes:int ->
  target_delay:Units.Time.t ->
  link_rate:Units.Rate.t ->
  rng:Rng.t ->
  unit ->
  t

(** [capacity_bytes t]. *)
val capacity_bytes : t -> int

(** [decide t ~now ~qlen_bytes ~pkt_size] is the discipline's verdict on an
    arriving packet given the current backlog. Advances internal AQM
    state. *)
val decide :
  t -> now:Units.Time.t -> qlen_bytes:int -> pkt_size:int -> decision

(** [admit t ~now ~qlen_bytes ~pkt_size] is [decide _ <> Drop] — kept for
    callers that do not distinguish marking from plain admission. Advances
    internal AQM state. *)
val admit : t -> now:Units.Time.t -> qlen_bytes:int -> pkt_size:int -> bool

(** [name t] is ["droptail"] or ["pie"]. *)
val name : t -> string
