(** Preallocated ring-buffer trace collector.

    Events are buffered in parallel [int]/[float] arrays (structure of
    arrays), so recording an event performs only scalar stores: {b
    zero minor words} are allocated per event.  When the collector is
    {!disabled} every emitter is a single masked branch, and call
    sites additionally guard with {!want} so float arguments are never
    even materialized — preserving the repo's steady-tick
    0-minor-word guarantee.

    The buffer is a true ring: once [capacity] events are pending the
    oldest pending event is overwritten and counted in {!dropped}.
    {!flush} drains pending events (oldest first) to the attached
    {!Sink.t}, away from the hot path. *)

type t

(** [create ?capacity ~mask ()] — a collector recording only the
    categories in [mask] (see {!Event.cat_bit}, {!parse_filter}).
    [capacity] defaults to 65536 events (~3.5 MB). *)
val create : ?capacity:int -> mask:int -> unit -> t

(** A shared always-off collector; every emitter is a no-op.  Use this
    as the default for [~trace] config slots. *)
val disabled : t

(** [enabled t] — does [t] record anything at all? *)
val enabled : t -> bool

(** [want t cat] — would an event in [cat] be recorded?  Guard hot
    call sites with this so disabled tracing stays allocation-free. *)
val want : t -> Event.cat -> bool

(** Bitmask covering every category. *)
val mask_all : int

(** [parse_filter spec] — comma-separated category names (or ["all"])
    to a mask, e.g. ["detector,mode"]. *)
val parse_filter : string -> (int, string) result

(** {1 Buffer state} *)

(** [recorded t] — events currently pending in the ring. *)
val recorded : t -> int

(** [dropped t] — events overwritten before they could be flushed
    (cumulative). *)
val dropped : t -> int

(** [total t] — events recorded since creation, including dropped
    ones (cumulative). *)
val total : t -> int

(** [clear t] discards pending events (keeps cumulative counters). *)
val clear : t -> unit

(** [iter t f] decodes pending events oldest-first without draining. *)
val iter : t -> (time:float -> Event.t -> unit) -> unit

(** {1 Sinks} *)

val attach : t -> Sink.t -> unit

(** [flush t] drains pending events to the attached sink (no-op
    without one, keeping them pending). *)
val flush : t -> unit

(** [close t] flushes, closes and detaches the sink. *)
val close : t -> unit

(** {1 Emitters}

    One per {!Event.t} kind.  All are cheap masked no-ops when the
    category is filtered out, but wrap hot-path calls in
    [if Trace.want t cat then ...] anyway: OCaml boxes float arguments
    at non-inlined call boundaries, and the guard keeps the disabled
    path allocation-free without relying on the inliner.  [~now] is
    simulation time in seconds; rates are in Mbit/s. *)

val sched : t -> now:float -> at:float -> pending:int -> unit
val pkt_enqueue : t -> now:float -> flow:int -> seq:int -> qlen:int -> unit
val pkt_deliver : t -> now:float -> flow:int -> seq:int -> qdelay:float -> unit

val pkt_drop :
  t -> now:float -> flow:int -> seq:int -> reason:Event.drop_reason -> unit

val rate_set : t -> now:float -> before:float -> after:float -> unit
val loss_model : t -> now:float -> installed:bool -> unit

val fault_fired :
  t -> now:float -> fault:Event.fault_kind -> p1:float -> p2:float -> unit

val flow_control :
  t -> now:float -> flow:int -> control:Event.control_kind -> value:float ->
  unit

val z_tick :
  t -> now:float -> z:float -> send:float -> recv:float -> base:float -> unit

val window :
  t -> now:float -> eta:float -> zbar:float -> lo:float -> hi:float -> unit

val pulse_phase : t -> now:float -> freq:float -> value:float -> unit

val detection :
  t ->
  now:float ->
  eta:float ->
  mode:Event.mode ->
  role:Event.role ->
  evidence:Event.evidence ->
  unit

val mode_switch :
  t ->
  now:float ->
  from_mode:Event.mode ->
  to_mode:Event.mode ->
  role:Event.role ->
  unit

val elected : t -> now:float -> p:float -> unit
val demoted : t -> now:float -> unit
val keepalive : t -> now:float -> tone:float -> alive:bool -> unit
val violation : t -> now:float -> rule:int -> unit
