(* Event payloads live in two strided arrays rather than one array per
   field: slot [i] owns floats[5i .. 5i+4] (time, a, b, c, d) and
   ints[4i .. 4i+3] (kind, i1, i2, i3).  A record therefore touches two
   cache lines instead of nine, which is what keeps full-mask tracing of
   the 10 ms controller tick inside its overhead budget. *)
let fstride = 5

let istride = 4

type t = {
  mask : int;
  cap : int;
  floats : float array;
  ints : int array;
  mutable head : int;  (* index of oldest pending event *)
  mutable len : int;
  mutable dropped : int;
  mutable total : int;
  mutable sink : Sink.t option;
}

let create ?(capacity = 65536) ~mask () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  {
    mask;
    cap = capacity;
    floats = Array.make (capacity * fstride) 0.;
    ints = Array.make (capacity * istride) 0;
    head = 0;
    len = 0;
    dropped = 0;
    total = 0;
    sink = None;
  }

let disabled =
  {
    mask = 0;
    cap = 0;
    floats = [||];
    ints = [||];
    head = 0;
    len = 0;
    dropped = 0;
    total = 0;
    sink = None;
  }

let enabled t = t.mask <> 0
let[@inline] want t cat = t.mask land Event.cat_bit cat <> 0

let mask_all =
  List.fold_left (fun acc c -> acc lor Event.cat_bit c) 0 Event.cats

let parse_filter spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> not (String.equal s ""))
  in
  if parts = [] then Error "empty trace filter"
  else
    List.fold_left
      (fun acc part ->
        Result.bind acc (fun mask ->
            if String.equal (String.lowercase_ascii part) "all" then
              Ok mask_all
            else
              match Event.cat_of_string part with
              | Some c -> Ok (mask lor Event.cat_bit c)
              | None ->
                Error
                  (Printf.sprintf
                     "unknown trace category %S (expected one of %s, or all)"
                     part
                     (String.concat ", "
                        (List.map Event.cat_to_string Event.cats)))))
      (Ok 0) parts

(* --- recording ------------------------------------------------------------- *)

(* One slot write per event; a full ring overwrites the oldest pending
   event and counts it as dropped.  Only scalar stores — no allocation. *)
let[@inline] record t bit ~kind ~now ~a ~b ~c ~d ~i1 ~i2 ~i3 =
  if t.mask land bit <> 0 then begin
    t.total <- t.total + 1;
    let i =
      if t.len < t.cap then begin
        let i = t.head + t.len in
        let i = if i >= t.cap then i - t.cap else i in
        t.len <- t.len + 1;
        i
      end
      else begin
        (* full: overwrite the oldest *)
        let i = t.head in
        t.head <- (if t.head + 1 >= t.cap then 0 else t.head + 1);
        t.dropped <- t.dropped + 1;
        i
      end
    in
    let fi = i * fstride and ii = i * istride in
    Array.unsafe_set t.floats fi now;
    Array.unsafe_set t.floats (fi + 1) a;
    Array.unsafe_set t.floats (fi + 2) b;
    Array.unsafe_set t.floats (fi + 3) c;
    Array.unsafe_set t.floats (fi + 4) d;
    Array.unsafe_set t.ints ii kind;
    Array.unsafe_set t.ints (ii + 1) i1;
    Array.unsafe_set t.ints (ii + 2) i2;
    Array.unsafe_set t.ints (ii + 3) i3
  end
[@@alloc_free]

let bit_engine = Event.cat_bit Event.Engine
let bit_packet = Event.cat_bit Event.Packet
let bit_bottleneck = Event.cat_bit Event.Bottleneck
let bit_fault = Event.cat_bit Event.Fault
let bit_flow = Event.cat_bit Event.Flow
let bit_detector = Event.cat_bit Event.Detector
let bit_spectrum = Event.cat_bit Event.Spectrum
let bit_pulse = Event.cat_bit Event.Pulse
let bit_mode = Event.cat_bit Event.Mode
let bit_election = Event.cat_bit Event.Election
let bit_invariant = Event.cat_bit Event.Invariant

let sched t ~now ~at ~pending =
  record t bit_engine ~kind:0 ~now ~a:at ~b:0. ~c:0. ~d:0. ~i1:pending ~i2:0
    ~i3:0
[@@alloc_free]

let pkt_enqueue t ~now ~flow ~seq ~qlen =
  record t bit_packet ~kind:1 ~now ~a:0. ~b:0. ~c:0. ~d:0. ~i1:flow ~i2:seq
    ~i3:qlen

let pkt_deliver t ~now ~flow ~seq ~qdelay =
  record t bit_packet ~kind:2 ~now ~a:qdelay ~b:0. ~c:0. ~d:0. ~i1:flow
    ~i2:seq ~i3:0

let pkt_drop t ~now ~flow ~seq ~reason =
  record t bit_packet ~kind:3 ~now ~a:0. ~b:0. ~c:0. ~d:0. ~i1:flow ~i2:seq
    ~i3:(Event.drop_reason_code reason)

let rate_set t ~now ~before ~after =
  record t bit_bottleneck ~kind:4 ~now ~a:before ~b:after ~c:0. ~d:0. ~i1:0
    ~i2:0 ~i3:0

let loss_model t ~now ~installed =
  record t bit_bottleneck ~kind:5 ~now ~a:0. ~b:0. ~c:0. ~d:0.
    ~i1:(if installed then 1 else 0)
    ~i2:0 ~i3:0

let fault_fired t ~now ~fault ~p1 ~p2 =
  record t bit_fault ~kind:6 ~now ~a:p1 ~b:p2 ~c:0. ~d:0.
    ~i1:(Event.fault_kind_code fault)
    ~i2:0 ~i3:0

let flow_control t ~now ~flow ~control ~value =
  record t bit_flow ~kind:7 ~now ~a:value ~b:0. ~c:0. ~d:0. ~i1:flow
    ~i2:(Event.control_kind_code control)
    ~i3:0

let z_tick t ~now ~z ~send ~recv ~base =
  record t bit_detector ~kind:8 ~now ~a:z ~b:send ~c:recv ~d:base ~i1:0 ~i2:0
    ~i3:0

let window t ~now ~eta ~zbar ~lo ~hi =
  record t bit_spectrum ~kind:9 ~now ~a:eta ~b:zbar ~c:lo ~d:hi ~i1:0 ~i2:0
    ~i3:0

let pulse_phase t ~now ~freq ~value =
  record t bit_pulse ~kind:10 ~now ~a:freq ~b:value ~c:0. ~d:0. ~i1:0 ~i2:0
    ~i3:0

let detection t ~now ~eta ~mode ~role ~evidence =
  record t bit_mode ~kind:11 ~now ~a:eta ~b:0. ~c:0. ~d:0.
    ~i1:(Event.mode_code mode) ~i2:(Event.role_code role)
    ~i3:(Event.evidence_code evidence)

let mode_switch t ~now ~from_mode ~to_mode ~role =
  record t bit_mode ~kind:12 ~now ~a:0. ~b:0. ~c:0. ~d:0.
    ~i1:(Event.mode_code from_mode) ~i2:(Event.mode_code to_mode)
    ~i3:(Event.role_code role)

let elected t ~now ~p =
  record t bit_election ~kind:13 ~now ~a:p ~b:0. ~c:0. ~d:0. ~i1:0 ~i2:0 ~i3:0

let demoted t ~now =
  record t bit_election ~kind:14 ~now ~a:0. ~b:0. ~c:0. ~d:0. ~i1:0 ~i2:0
    ~i3:0

let keepalive t ~now ~tone ~alive =
  record t bit_election ~kind:15 ~now ~a:tone ~b:0. ~c:0. ~d:0.
    ~i1:(if alive then 1 else 0)
    ~i2:0 ~i3:0

let violation t ~now ~rule =
  record t bit_invariant ~kind:16 ~now ~a:0. ~b:0. ~c:0. ~d:0. ~i1:rule ~i2:0
    ~i3:0

(* --- draining -------------------------------------------------------------- *)

let recorded t = t.len
let dropped t = t.dropped
let total t = t.total

let clear t =
  t.head <- 0;
  t.len <- 0

let iter t f =
  for k = 0 to t.len - 1 do
    let i = t.head + k in
    let i = if i >= t.cap then i - t.cap else i in
    let fi = i * fstride and ii = i * istride in
    match
      Event.decode ~kind:t.ints.(ii) ~a:t.floats.(fi + 1)
        ~b:t.floats.(fi + 2) ~c:t.floats.(fi + 3) ~d:t.floats.(fi + 4)
        ~i1:t.ints.(ii + 1) ~i2:t.ints.(ii + 2) ~i3:t.ints.(ii + 3)
    with
    | Some ev -> f ~time:t.floats.(fi) ev
    | None -> ()
  done

let attach t sink = t.sink <- Some sink

let flush t =
  match t.sink with
  | None -> ()
  | Some sink ->
    iter t (fun ~time ev -> sink.Sink.emit ~time ev);
    clear t

let close t =
  flush t;
  (match t.sink with Some sink -> sink.Sink.close () | None -> ());
  t.sink <- None
