(** Lightweight profiling scopes for hot pipeline stages.

    Instrumented code brackets a stage with [Span.enter id] /
    [Span.leave id]; when profiling is enabled each pair accumulates
    count / total / max wall time into preallocated per-id slots.
    When disabled (the default) both calls are branch-only, so
    instrumentation can stay in production paths.

    The aggregation state is global and {b not domain-safe}: enable it
    only for single-domain profiling runs (e.g. [bench --micro]). *)

type id =
  | Fft  (** one FFT plan execution *)
  | Spectrum  (** one spectrum analysis window *)
  | Detector_tick  (** one Nimbus 10 ms tick *)
  | Engine_drain  (** one [Engine.run_until] drain *)
  | Flow_tick  (** one congestion-control flow tick *)

val id_to_string : id -> string

(** Enable aggregation (and reset nothing — see {!reset}). *)
val enable : unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [set_clock f] replaces the time source (default [Sys.time]); used
    by tests for deterministic reports. *)
val set_clock : (unit -> float) -> unit

val enter : id -> unit

(** [leave id] accrues the time since the matching {!enter}.
    Unbalanced leaves are ignored. *)
val leave : id -> unit

(** Zero all accumulated statistics. *)
val reset : unit -> unit

type stat = {
  s_id : id;
  s_count : int;
  s_total : float;  (** seconds *)
  s_max : float;  (** seconds *)
}

(** [stats ()] — one entry per id with a nonzero count. *)
val stats : unit -> stat list

(** [report ()] — aligned table of {!stats} (empty string if no spans
    fired). *)
val report : unit -> string
