(** Pluggable trace sinks.

    A sink consumes decoded {!Event.t}s on the flush path (never on
    the hot path) and serializes them somewhere: a channel as JSONL,
    CSV or compact binary, a caller-owned {!Buffer.t}, or an
    in-memory list for tests. *)

type t = {
  emit : time:float -> Event.t -> unit;
  close : unit -> unit;  (** flush and release; idempotent *)
}

(** [jsonl oc] writes one JSON object per line; [close] closes [oc]. *)
val jsonl : out_channel -> t

(** [csv oc] writes {!Event.csv_header} then one row per event;
    [close] closes [oc]. *)
val csv : out_channel -> t

(** [binary oc] writes {!Event.binary_magic} then fixed-width records;
    [close] closes [oc]. *)
val binary : out_channel -> t

(** [jsonl_buffer buf] appends JSONL lines to a caller-owned buffer;
    [close] is a no-op (the caller owns [buf]). *)
val jsonl_buffer : Buffer.t -> t

(** [memory ()] is an in-memory sink plus a function returning the
    events collected so far, oldest first. *)
val memory : unit -> t * (unit -> (float * Event.t) list)

(** [null] discards everything. *)
val null : t

(** [summarize_file path] reads a JSONL or binary trace file (sniffed
    by magic) and renders a human-readable summary: event counts by
    kind, the time range, and every mode-switch / election / violation
    line in order. *)
val summarize_file : string -> (string, string) result
