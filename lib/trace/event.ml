type cat =
  | Engine
  | Packet
  | Bottleneck
  | Fault
  | Flow
  | Detector
  | Spectrum
  | Pulse
  | Mode
  | Election
  | Invariant

let cats =
  [
    Engine;
    Packet;
    Bottleneck;
    Fault;
    Flow;
    Detector;
    Spectrum;
    Pulse;
    Mode;
    Election;
    Invariant;
  ]

let cat_index = function
  | Engine -> 0
  | Packet -> 1
  | Bottleneck -> 2
  | Fault -> 3
  | Flow -> 4
  | Detector -> 5
  | Spectrum -> 6
  | Pulse -> 7
  | Mode -> 8
  | Election -> 9
  | Invariant -> 10

let cat_bit c = 1 lsl cat_index c

let cat_to_string = function
  | Engine -> "engine"
  | Packet -> "packet"
  | Bottleneck -> "bottleneck"
  | Fault -> "fault"
  | Flow -> "flow"
  | Detector -> "detector"
  | Spectrum -> "spectrum"
  | Pulse -> "pulse"
  | Mode -> "mode"
  | Election -> "election"
  | Invariant -> "invariant"

let cat_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "engine" -> Some Engine
  | "packet" -> Some Packet
  | "bottleneck" -> Some Bottleneck
  | "fault" -> Some Fault
  | "flow" -> Some Flow
  | "detector" -> Some Detector
  | "spectrum" -> Some Spectrum
  | "pulse" -> Some Pulse
  | "mode" -> Some Mode
  | "election" -> Some Election
  | "invariant" -> Some Invariant
  | _ -> None

(* --- enumerations ---------------------------------------------------------- *)

type mode =
  | Delay
  | Competitive

type role =
  | Pulser
  | Watcher

type evidence =
  | Eta
  | Heard_delay
  | Heard_competitive
  | Quiet
  | Lost
  | Won

type drop_reason =
  | Queue_full
  | Policer
  | Random_loss
  | Modeled_loss

type fault_kind =
  | F_burst
  | F_loss_off
  | F_rate_step
  | F_outage
  | F_delay_step
  | F_jitter
  | F_ack_loss
  | F_ack_off
  | F_kill

type control_kind =
  | C_extra_delay
  | C_ack_loss
  | C_ack_off
  | C_stop

let mode_code = function Delay -> 0 | Competitive -> 1
let mode_of_code = function 0 -> Some Delay | 1 -> Some Competitive | _ -> None
let mode_str = function Delay -> "delay" | Competitive -> "competitive"
let role_code = function Pulser -> 0 | Watcher -> 1
let role_of_code = function 0 -> Some Pulser | 1 -> Some Watcher | _ -> None
let role_str = function Pulser -> "pulser" | Watcher -> "watcher"

let evidence_code = function
  | Eta -> 0
  | Heard_delay -> 1
  | Heard_competitive -> 2
  | Quiet -> 3
  | Lost -> 4
  | Won -> 5

let evidence_of_code = function
  | 0 -> Some Eta
  | 1 -> Some Heard_delay
  | 2 -> Some Heard_competitive
  | 3 -> Some Quiet
  | 4 -> Some Lost
  | 5 -> Some Won
  | _ -> None

let evidence_str = function
  | Eta -> "eta"
  | Heard_delay -> "heard_delay"
  | Heard_competitive -> "heard_competitive"
  | Quiet -> "quiet"
  | Lost -> "lost"
  | Won -> "won"

let drop_reason_code = function
  | Queue_full -> 0
  | Policer -> 1
  | Random_loss -> 2
  | Modeled_loss -> 3

let drop_reason_of_code = function
  | 0 -> Some Queue_full
  | 1 -> Some Policer
  | 2 -> Some Random_loss
  | 3 -> Some Modeled_loss
  | _ -> None

let drop_reason_str = function
  | Queue_full -> "queue"
  | Policer -> "policer"
  | Random_loss -> "random"
  | Modeled_loss -> "model"

let fault_kind_code = function
  | F_burst -> 0
  | F_loss_off -> 1
  | F_rate_step -> 2
  | F_outage -> 3
  | F_delay_step -> 4
  | F_jitter -> 5
  | F_ack_loss -> 6
  | F_ack_off -> 7
  | F_kill -> 8

let fault_kind_of_code = function
  | 0 -> Some F_burst
  | 1 -> Some F_loss_off
  | 2 -> Some F_rate_step
  | 3 -> Some F_outage
  | 4 -> Some F_delay_step
  | 5 -> Some F_jitter
  | 6 -> Some F_ack_loss
  | 7 -> Some F_ack_off
  | 8 -> Some F_kill
  | _ -> None

let fault_kind_str = function
  | F_burst -> "burst"
  | F_loss_off -> "lossoff"
  | F_rate_step -> "step"
  | F_outage -> "flap"
  | F_delay_step -> "delay"
  | F_jitter -> "jitter"
  | F_ack_loss -> "acks"
  | F_ack_off -> "acksoff"
  | F_kill -> "kill"

let control_kind_code = function
  | C_extra_delay -> 0
  | C_ack_loss -> 1
  | C_ack_off -> 2
  | C_stop -> 3

let control_kind_of_code = function
  | 0 -> Some C_extra_delay
  | 1 -> Some C_ack_loss
  | 2 -> Some C_ack_off
  | 3 -> Some C_stop
  | _ -> None

let control_kind_str = function
  | C_extra_delay -> "extra_delay"
  | C_ack_loss -> "ack_loss"
  | C_ack_off -> "ack_off"
  | C_stop -> "stop"

(* --- events ---------------------------------------------------------------- *)

type t =
  | Sched of {
      at : float;
      pending : int;
    }
  | Pkt_enqueue of {
      flow : int;
      seq : int;
      qlen : int;
    }
  | Pkt_deliver of {
      flow : int;
      seq : int;
      qdelay : float;
    }
  | Pkt_drop of {
      flow : int;
      seq : int;
      reason : drop_reason;
    }
  | Rate_set of {
      before_mbps : float;
      after_mbps : float;
    }
  | Loss_model of { installed : bool }
  | Fault_fired of {
      fault : fault_kind;
      p1 : float;
      p2 : float;
    }
  | Flow_control of {
      flow : int;
      control : control_kind;
      value : float;
    }
  | Z_tick of {
      z_mbps : float;
      send_mbps : float;
      recv_mbps : float;
      base_mbps : float;
    }
  | Window of {
      eta : float;
      zbar : float;
      tone_lo : float;
      tone_hi : float;
    }
  | Pulse_phase of {
      freq_hz : float;
      value : float;
    }
  | Detection of {
      eta : float;
      mode : mode;
      role : role;
      evidence : evidence;
    }
  | Mode_switch of {
      from_mode : mode;
      to_mode : mode;
      role : role;
    }
  | Elected of { p : float }
  | Demoted
  | Keepalive of {
      tone : float;
      alive : bool;
    }
  | Violation of { rule : int }

let category = function
  | Sched _ -> Engine
  | Pkt_enqueue _ | Pkt_deliver _ | Pkt_drop _ -> Packet
  | Rate_set _ | Loss_model _ -> Bottleneck
  | Fault_fired _ -> Fault
  | Flow_control _ -> Flow
  | Z_tick _ -> Detector
  | Window _ -> Spectrum
  | Pulse_phase _ -> Pulse
  | Detection _ | Mode_switch _ -> Mode
  | Elected _ | Demoted | Keepalive _ -> Election
  | Violation _ -> Invariant

let name = function
  | Sched _ -> "sched"
  | Pkt_enqueue _ -> "pkt_enqueue"
  | Pkt_deliver _ -> "pkt_deliver"
  | Pkt_drop _ -> "pkt_drop"
  | Rate_set _ -> "rate_set"
  | Loss_model _ -> "loss_model"
  | Fault_fired _ -> "fault_fired"
  | Flow_control _ -> "flow_control"
  | Z_tick _ -> "z_tick"
  | Window _ -> "window"
  | Pulse_phase _ -> "pulse_phase"
  | Detection _ -> "detection"
  | Mode_switch _ -> "mode_switch"
  | Elected _ -> "elected"
  | Demoted -> "demoted"
  | Keepalive _ -> "keepalive"
  | Violation _ -> "violation"

(* --- flat slots ------------------------------------------------------------ *)

(* kind codes; keep in sync with Trace's emitters *)

let decode ~kind ~a ~b ~c ~d ~i1 ~i2 ~i3 =
  ignore d;
  match kind with
  | 0 -> Some (Sched { at = a; pending = i1 })
  | 1 -> Some (Pkt_enqueue { flow = i1; seq = i2; qlen = i3 })
  | 2 -> Some (Pkt_deliver { flow = i1; seq = i2; qdelay = a })
  | 3 ->
    Option.map
      (fun reason -> Pkt_drop { flow = i1; seq = i2; reason })
      (drop_reason_of_code i3)
  | 4 -> Some (Rate_set { before_mbps = a; after_mbps = b })
  | 5 -> Some (Loss_model { installed = i1 <> 0 })
  | 6 ->
    Option.map
      (fun fault -> Fault_fired { fault; p1 = a; p2 = b })
      (fault_kind_of_code i1)
  | 7 ->
    Option.map
      (fun control -> Flow_control { flow = i1; control; value = a })
      (control_kind_of_code i2)
  | 8 ->
    Some (Z_tick { z_mbps = a; send_mbps = b; recv_mbps = c; base_mbps = d })
  | 9 -> Some (Window { eta = a; zbar = b; tone_lo = c; tone_hi = d })
  | 10 -> Some (Pulse_phase { freq_hz = a; value = b })
  | 11 -> begin
    match (mode_of_code i1, role_of_code i2, evidence_of_code i3) with
    | Some mode, Some role, Some evidence ->
      Some (Detection { eta = a; mode; role; evidence })
    | _ -> None
  end
  | 12 -> begin
    match (mode_of_code i1, mode_of_code i2, role_of_code i3) with
    | Some from_mode, Some to_mode, Some role ->
      Some (Mode_switch { from_mode; to_mode; role })
    | _ -> None
  end
  | 13 -> Some (Elected { p = a })
  | 14 -> Some Demoted
  | 15 -> Some (Keepalive { tone = a; alive = i1 <> 0 })
  | 16 -> Some (Violation { rule = i1 })
  | _ -> None

(* [slots ev] is the inverse of {!decode}: (kind, a, b, c, d, i1, i2, i3). *)
let slots = function
  | Sched { at; pending } -> (0, at, 0., 0., 0., pending, 0, 0)
  | Pkt_enqueue { flow; seq; qlen } -> (1, 0., 0., 0., 0., flow, seq, qlen)
  | Pkt_deliver { flow; seq; qdelay } -> (2, qdelay, 0., 0., 0., flow, seq, 0)
  | Pkt_drop { flow; seq; reason } ->
    (3, 0., 0., 0., 0., flow, seq, drop_reason_code reason)
  | Rate_set { before_mbps; after_mbps } ->
    (4, before_mbps, after_mbps, 0., 0., 0, 0, 0)
  | Loss_model { installed } ->
    (5, 0., 0., 0., 0., (if installed then 1 else 0), 0, 0)
  | Fault_fired { fault; p1; p2 } ->
    (6, p1, p2, 0., 0., fault_kind_code fault, 0, 0)
  | Flow_control { flow; control; value } ->
    (7, value, 0., 0., 0., flow, control_kind_code control, 0)
  | Z_tick { z_mbps; send_mbps; recv_mbps; base_mbps } ->
    (8, z_mbps, send_mbps, recv_mbps, base_mbps, 0, 0, 0)
  | Window { eta; zbar; tone_lo; tone_hi } ->
    (9, eta, zbar, tone_lo, tone_hi, 0, 0, 0)
  | Pulse_phase { freq_hz; value } -> (10, freq_hz, value, 0., 0., 0, 0, 0)
  | Detection { eta; mode; role; evidence } ->
    (11, eta, 0., 0., 0., mode_code mode, role_code role,
     evidence_code evidence)
  | Mode_switch { from_mode; to_mode; role } ->
    (12, 0., 0., 0., 0., mode_code from_mode, mode_code to_mode,
     role_code role)
  | Elected { p } -> (13, p, 0., 0., 0., 0, 0, 0)
  | Demoted -> (14, 0., 0., 0., 0., 0, 0, 0)
  | Keepalive { tone; alive } ->
    (15, tone, 0., 0., 0., (if alive then 1 else 0), 0, 0)
  | Violation { rule } -> (16, 0., 0., 0., 0., rule, 0, 0)

(* --- serialization --------------------------------------------------------- *)

let float_str x =
  match Float.classify_float x with
  | FP_nan -> "nan"
  | FP_infinite -> if x > 0. then "inf" else "-inf"
  | FP_zero | FP_subnormal | FP_normal ->
    let s = Printf.sprintf "%.15g" x in
    if Float.equal (float_of_string s) x then s else Printf.sprintf "%.17g" x

let bpf = Printf.bprintf

let to_json buf ~time ev =
  let fs = float_str in
  bpf buf {|{"t":%s,"ev":"%s"|} (fs time) (name ev);
  begin
    match ev with
    | Sched { at; pending } -> bpf buf {|,"at":%s,"pending":%d|} (fs at) pending
    | Pkt_enqueue { flow; seq; qlen } ->
      bpf buf {|,"flow":%d,"seq":%d,"qlen":%d|} flow seq qlen
    | Pkt_deliver { flow; seq; qdelay } ->
      bpf buf {|,"flow":%d,"seq":%d,"qdelay":%s|} flow seq (fs qdelay)
    | Pkt_drop { flow; seq; reason } ->
      bpf buf {|,"flow":%d,"seq":%d,"reason":"%s"|} flow seq
        (drop_reason_str reason)
    | Rate_set { before_mbps; after_mbps } ->
      bpf buf {|,"before":%s,"after":%s|} (fs before_mbps) (fs after_mbps)
    | Loss_model { installed } ->
      bpf buf {|,"installed":%b|} installed
    | Fault_fired { fault; p1; p2 } ->
      bpf buf {|,"fault":"%s","p1":%s,"p2":%s|} (fault_kind_str fault) (fs p1)
        (fs p2)
    | Flow_control { flow; control; value } ->
      bpf buf {|,"flow":%d,"control":"%s","value":%s|} flow
        (control_kind_str control) (fs value)
    | Z_tick { z_mbps; send_mbps; recv_mbps; base_mbps } ->
      bpf buf {|,"z":%s,"send":%s,"recv":%s,"base":%s|} (fs z_mbps)
        (fs send_mbps) (fs recv_mbps) (fs base_mbps)
    | Window { eta; zbar; tone_lo; tone_hi } ->
      bpf buf {|,"eta":%s,"zbar":%s,"lo":%s,"hi":%s|} (fs eta) (fs zbar)
        (fs tone_lo) (fs tone_hi)
    | Pulse_phase { freq_hz; value } ->
      bpf buf {|,"freq":%s,"value":%s|} (fs freq_hz) (fs value)
    | Detection { eta; mode; role; evidence } ->
      bpf buf {|,"eta":%s,"mode":"%s","role":"%s","evidence":"%s"|} (fs eta)
        (mode_str mode) (role_str role) (evidence_str evidence)
    | Mode_switch { from_mode; to_mode; role } ->
      bpf buf {|,"from":"%s","to":"%s","role":"%s"|} (mode_str from_mode)
        (mode_str to_mode) (role_str role)
    | Elected { p } -> bpf buf {|,"p":%s|} (fs p)
    | Demoted -> ()
    | Keepalive { tone; alive } ->
      bpf buf {|,"tone":%s,"alive":%b|} (fs tone) alive
    | Violation { rule } -> bpf buf {|,"rule":%d|} rule
  end;
  Buffer.add_char buf '}'

let csv_header = "time,ev,a,b,c,d,i1,i2,i3"

let to_csv buf ~time ev =
  let kind, a, b, c, d, i1, i2, i3 = slots ev in
  ignore kind;
  bpf buf "%s,%s,%s,%s,%s,%s,%d,%d,%d" (float_str time) (name ev)
    (float_str a) (float_str b) (float_str c) (float_str d) i1 i2 i3

let binary_magic = "NIMTRC01"
let binary_record_size = 1 + (5 * 8) + (3 * 4)

let to_binary buf ~time ev =
  let kind, a, b, c, d, i1, i2, i3 = slots ev in
  Buffer.add_uint8 buf kind;
  Buffer.add_int64_le buf (Int64.bits_of_float time);
  Buffer.add_int64_le buf (Int64.bits_of_float a);
  Buffer.add_int64_le buf (Int64.bits_of_float b);
  Buffer.add_int64_le buf (Int64.bits_of_float c);
  Buffer.add_int64_le buf (Int64.bits_of_float d);
  Buffer.add_int32_le buf (Int32.of_int i1);
  Buffer.add_int32_le buf (Int32.of_int i2);
  Buffer.add_int32_le buf (Int32.of_int i3)

let of_binary s ~pos =
  if pos < 0 || pos + binary_record_size > String.length s then None
  else begin
    let f off = Int64.float_of_bits (String.get_int64_le s (pos + 1 + (8 * off))) in
    let i off = Int32.to_int (String.get_int32_le s (pos + 41 + (4 * off))) in
    let kind = Char.code s.[pos] in
    let time = f 0 in
    match
      decode ~kind ~a:(f 1) ~b:(f 2) ~c:(f 3) ~d:(f 4) ~i1:(i 0) ~i2:(i 1)
        ~i3:(i 2)
    with
    | Some ev -> Some (time, ev)
    | None -> None
  end
