type id =
  | Fft
  | Spectrum
  | Detector_tick
  | Engine_drain
  | Flow_tick

let id_to_string = function
  | Fft -> "fft"
  | Spectrum -> "spectrum"
  | Detector_tick -> "detector_tick"
  | Engine_drain -> "engine_drain"
  | Flow_tick -> "flow_tick"

let nids = 5

let index = function
  | Fft -> 0
  | Spectrum -> 1
  | Detector_tick -> 2
  | Engine_drain -> 3
  | Flow_tick -> 4

let all = [ Fft; Spectrum; Detector_tick; Engine_drain; Flow_tick ]
let on = ref false
let clock = ref Sys.time
let counts = Array.make nids 0
let totals = Array.make nids 0.
let maxes = Array.make nids 0.

(* start < 0. means "no open enter for this id" *)
let starts = Array.make nids (-1.)
let enable () = on := true
let disable () = on := false
let enabled () = !on
let set_clock f = clock := f

(* enter/leave are called from [@@alloc_free] hot paths.  The disabled path
   is one load and a branch with zero allocation; when enabled, the indirect
   [!clock ()] call may box its float result, which the static alloc pass
   cannot see through — hence assumed-safe ([@@alloc_ok]) rather than
   verified ([@@alloc_free]). *)
let enter id =
  if !on then starts.(index id) <- !clock ()
[@@alloc_ok "indirect clock call; the disabled path is allocation-free"]

let leave id =
  if !on then begin
    let i = index id in
    let t0 = starts.(i) in
    if t0 >= 0. then begin
      let dt = !clock () -. t0 in
      starts.(i) <- -1.;
      counts.(i) <- counts.(i) + 1;
      totals.(i) <- totals.(i) +. dt;
      if dt > maxes.(i) then maxes.(i) <- dt
    end
  end
[@@alloc_ok "indirect clock call; the disabled path is allocation-free"]

let reset () =
  Array.fill counts 0 nids 0;
  Array.fill totals 0 nids 0.;
  Array.fill maxes 0 nids 0.;
  Array.fill starts 0 nids (-1.)

type stat = {
  s_id : id;
  s_count : int;
  s_total : float;
  s_max : float;
}

let stats () =
  List.filter_map
    (fun id ->
      let i = index id in
      if counts.(i) = 0 then None
      else
        Some
          { s_id = id; s_count = counts.(i); s_total = totals.(i);
            s_max = maxes.(i) })
    all

let report () =
  match stats () with
  | [] -> ""
  | sts ->
    let b = Buffer.create 256 in
    Printf.bprintf b "%-14s %10s %12s %12s %12s\n" "span" "count"
      "total_ms" "mean_us" "max_us";
    List.iter
      (fun s ->
        Printf.bprintf b "%-14s %10d %12.3f %12.2f %12.2f\n"
          (id_to_string s.s_id) s.s_count (1e3 *. s.s_total)
          (1e6 *. s.s_total /. float_of_int s.s_count)
          (1e6 *. s.s_max))
      sts;
    Buffer.contents b
