type t = {
  emit : time:float -> Event.t -> unit;
  close : unit -> unit;
}

let null = { emit = (fun ~time:_ _ -> ()); close = (fun () -> ()) }

let buffered_channel oc =
  (* share one scratch buffer per sink; flushed to the channel whenever it
     grows past a page so flush cost stays off the per-event path *)
  let buf = Buffer.create 4096 in
  let spill () =
    Buffer.output_buffer oc buf;
    Buffer.clear buf
  in
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      spill ();
      close_out oc
    end
  in
  (buf, spill, close)

let jsonl oc =
  let buf, spill, close = buffered_channel oc in
  let emit ~time ev =
    Event.to_json buf ~time ev;
    Buffer.add_char buf '\n';
    if Buffer.length buf > 4096 then spill ()
  in
  { emit; close }

let csv oc =
  let buf, spill, close = buffered_channel oc in
  Buffer.add_string buf Event.csv_header;
  Buffer.add_char buf '\n';
  let emit ~time ev =
    Event.to_csv buf ~time ev;
    Buffer.add_char buf '\n';
    if Buffer.length buf > 4096 then spill ()
  in
  { emit; close }

let binary oc =
  let buf, spill, close = buffered_channel oc in
  Buffer.add_string buf Event.binary_magic;
  let emit ~time ev =
    Event.to_binary buf ~time ev;
    if Buffer.length buf > 4096 then spill ()
  in
  { emit; close }

let jsonl_buffer buf =
  let emit ~time ev =
    Event.to_json buf ~time ev;
    Buffer.add_char buf '\n'
  in
  { emit; close = (fun () -> ()) }

let memory () =
  let events = ref [] in
  let emit ~time ev = events := (time, ev) :: !events in
  ({ emit; close = (fun () -> ()) }, fun () -> List.rev !events)

(* --- summaries ------------------------------------------------------------- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let events_of_binary s =
  let n = (String.length s - String.length Event.binary_magic)
          / Event.binary_record_size
  in
  List.filter_map
    (fun i ->
      Event.of_binary s
        ~pos:(String.length Event.binary_magic + (i * Event.binary_record_size)))
    (List.init (max 0 n) Fun.id)

(* A deliberately small JSONL reader: we only ever parse trace files we
   wrote ourselves, so a field scanner beats a JSON dependency. *)
let json_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let len = String.length line in
  let rec find i =
    if i + plen > len then None
    else if String.equal (String.sub line i plen) pat then Some (i + plen)
    else find (i + 1)
  in
  Option.map
    (fun start ->
      let stop = ref start in
      while
        !stop < len && (match line.[!stop] with ',' | '}' -> false | _ -> true)
      do
        incr stop
      done;
      String.sub line start (!stop - start))
    (find 0)

let strip_quotes s =
  let n = String.length s in
  if n >= 2 && Char.equal s.[0] '"' && Char.equal s.[n - 1] '"' then
    String.sub s 1 (n - 2)
  else s

let summarize_lines ~total ~t0 ~t1 ~counts ~notable =
  let b = Buffer.create 1024 in
  Printf.bprintf b "events: %d\n" total;
  if total > 0 then
    Printf.bprintf b "span: %s .. %s s\n" (Event.float_str t0)
      (Event.float_str t1);
  List.iter
    (fun (name, n) -> Printf.bprintf b "  %-14s %d\n" name n)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) counts);
  if notable <> [] then begin
    Buffer.add_string b "notable:\n";
    List.iter (fun line -> Printf.bprintf b "  %s\n" line) (List.rev notable)
  end;
  Buffer.contents b

let summarize_events evs =
  let counts = Hashtbl.create 17 in
  let notable = ref [] in
  let total = ref 0 in
  let t0 = ref Float.nan and t1 = ref Float.nan in
  let line_buf = Buffer.create 256 in
  List.iter
    (fun (time, ev) ->
      incr total;
      if Float.is_nan !t0 then t0 := time;
      t1 := time;
      let name = Event.name ev in
      Hashtbl.replace counts name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts name));
      (match ev with
       | Event.Mode_switch _ | Event.Detection _ | Event.Elected _
       | Event.Demoted | Event.Violation _ | Event.Fault_fired _ ->
         Buffer.clear line_buf;
         Event.to_json line_buf ~time ev;
         notable := Buffer.contents line_buf :: !notable
       | _ -> ()))
    evs;
  summarize_lines ~total:!total ~t0:!t0 ~t1:!t1
    ~counts:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
    ~notable:!notable

let summarize_jsonl s =
  let counts = Hashtbl.create 17 in
  let notable = ref [] in
  let total = ref 0 in
  let t0 = ref Float.nan and t1 = ref Float.nan in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         if not (String.equal (String.trim line) "") then begin
           incr total;
           (match Option.bind (json_field line "t") float_of_string_opt with
            | Some t ->
              if Float.is_nan !t0 then t0 := t;
              t1 := t
            | None -> ());
           let name =
             match json_field line "ev" with
             | Some v -> strip_quotes v
             | None -> "?"
           in
           Hashtbl.replace counts name
             (1 + Option.value ~default:0 (Hashtbl.find_opt counts name));
           match name with
           | "mode_switch" | "detection" | "elected" | "demoted" | "violation"
           | "fault_fired" ->
             notable := line :: !notable
           | _ -> ()
         end);
  summarize_lines ~total:!total ~t0:!t0 ~t1:!t1
    ~counts:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
    ~notable:!notable

let summarize_file path =
  match read_file path with
  | Error _ as e -> e
  | Ok s ->
    let is_binary =
      String.length s >= String.length Event.binary_magic
      && String.equal
           (String.sub s 0 (String.length Event.binary_magic))
           Event.binary_magic
    in
    if is_binary then Ok (summarize_events (events_of_binary s))
    else Ok (summarize_jsonl s)
