(** Typed trace events and their wire codecs.

    Every event flattens to a fixed-width slot record — one kind byte,
    a timestamp, four floats and three ints — so the collector
    ({!Trace}) can buffer events in preallocated parallel arrays
    without allocating.  The structured {!t} view only exists on the
    flush path, where sinks serialize it to JSONL, CSV or the compact
    binary format.

    Floats are serialized with shortest-round-trip formatting so a
    JSONL trace is byte-identical for identical runs regardless of how
    results were scheduled across domains. *)

(** {1 Categories} *)

(** Filterable event category, one bit each (see [--trace-filter]). *)
type cat =
  | Engine  (** scheduler events (sampled) *)
  | Packet  (** sampled packet lifecycle at the bottleneck *)
  | Bottleneck  (** rate changes and loss-model installs *)
  | Fault  (** fault-plan firings *)
  | Flow  (** {!Nimbus_cc.Flow.apply} control mutations *)
  | Detector  (** ẑ estimator ticks (Eq. 1) *)
  | Spectrum  (** per-window η and tone magnitudes (Eq. 3) *)
  | Pulse  (** pulse phase *)
  | Mode  (** detections and mode switches with evidence *)
  | Election  (** pulser election, demotion and keep-alive *)
  | Invariant  (** runtime invariant violations *)

val cats : cat list

(** [cat_bit c] is the category's bit in a trace mask. *)
val cat_bit : cat -> int

val cat_to_string : cat -> string
val cat_of_string : string -> cat option

(** {1 Enumerations carried by events} *)

type mode =
  | Delay
  | Competitive

type role =
  | Pulser
  | Watcher

type evidence =
  | Eta
  | Heard_delay
  | Heard_competitive
  | Quiet
  | Lost
  | Won

type drop_reason =
  | Queue_full
  | Policer
  | Random_loss
  | Modeled_loss

type fault_kind =
  | F_burst
  | F_loss_off
  | F_rate_step
  | F_outage
  | F_delay_step
  | F_jitter
  | F_ack_loss
  | F_ack_off
  | F_kill

type control_kind =
  | C_extra_delay
  | C_ack_loss
  | C_ack_off
  | C_stop

val mode_code : mode -> int
val role_code : role -> int
val evidence_code : evidence -> int
val drop_reason_code : drop_reason -> int
val fault_kind_code : fault_kind -> int
val control_kind_code : control_kind -> int

(** {1 Events} *)

type t =
  | Sched of {
      at : float;  (** scheduled fire time, seconds *)
      pending : int;
    }
  | Pkt_enqueue of {
      flow : int;
      seq : int;
      qlen : int;
    }
  | Pkt_deliver of {
      flow : int;
      seq : int;
      qdelay : float;  (** queueing delay, seconds *)
    }
  | Pkt_drop of {
      flow : int;
      seq : int;
      reason : drop_reason;
    }
  | Rate_set of {
      before_mbps : float;
      after_mbps : float;
    }
  | Loss_model of { installed : bool }
  | Fault_fired of {
      fault : fault_kind;
      p1 : float;
      p2 : float;
    }
  | Flow_control of {
      flow : int;
      control : control_kind;
      value : float;
    }
  | Z_tick of {
      z_mbps : float;
      send_mbps : float;
      recv_mbps : float;
      base_mbps : float;
    }
  | Window of {
      eta : float;
      zbar : float;
      tone_lo : float;
      tone_hi : float;
    }
  | Pulse_phase of {
      freq_hz : float;
      value : float;
    }
  | Detection of {
      eta : float;
      mode : mode;
      role : role;
      evidence : evidence;
    }
  | Mode_switch of {
      from_mode : mode;
      to_mode : mode;
      role : role;
    }
  | Elected of { p : float }
  | Demoted
  | Keepalive of {
      tone : float;
      alive : bool;
    }
  | Violation of { rule : int  (** {!Nimbus_metrics.Invariant} rule code *) }

(** [category ev] is the category [ev] is filtered under. *)
val category : t -> cat

(** [name ev] is the short event name used in JSONL/CSV output. *)
val name : t -> string

(** {1 Codecs} *)

(** [decode ~kind ~a ~b ~c ~d ~i1 ~i2 ~i3] rebuilds the structured
    event from its flat slots; [None] on an unknown kind or enum
    code. *)
val decode :
  kind:int ->
  a:float ->
  b:float ->
  c:float ->
  d:float ->
  i1:int ->
  i2:int ->
  i3:int ->
  t option

(** [float_str x] is the shortest decimal string that round-trips to
    [x] ([nan]/[inf]/[-inf] for non-finite values). *)
val float_str : float -> string

(** [to_json buf ~time ev] appends one JSONL object (no trailing
    newline). *)
val to_json : Buffer.t -> time:float -> t -> unit

val csv_header : string

(** [to_csv buf ~time ev] appends one CSV row (no trailing newline)
    under {!csv_header}. *)
val to_csv : Buffer.t -> time:float -> t -> unit

(** Compact binary format: an 8-byte magic header {!binary_magic}
    followed by fixed 53-byte little-endian records. *)
val binary_magic : string

(** [to_binary buf ~time ev] appends one binary record. *)
val to_binary : Buffer.t -> time:float -> t -> unit

(** [of_binary s ~pos] decodes the record at byte offset [pos];
    [None] if truncated or unknown. *)
val of_binary : string -> pos:int -> (float * t) option

val binary_record_size : int
