(** Fig 15: accuracy vs cross-traffic RTT *)

val id : string

val title : string

val run : Common.profile -> Table.t list
