(* Parking lot: K bottleneck links in a chain, each carrying its own Nimbus
   population, interfering through shared cross traffic — elastic (cubic)
   flows and inelastic (poisson) sources spanning adjacent link pairs.  The
   first multi-bottleneck experiment: everything rides the topology fabric
   (routes via Topology.attach), so the invariant monitor audits packet
   conservation per link AND across the fabric, and the whole thing scales
   to thousands of flows (the CI topology-smoke job and the
   sim.parking_lot.pkts_per_wall_sec leaderboard both run through
   [run_custom]). *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Rng = Nimbus_sim.Rng
module Topology = Nimbus_topology.Topology
module Flow = Nimbus_cc.Flow
module Source = Nimbus_traffic.Source
module Invariant = Nimbus_metrics.Invariant
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Time = Units.Time
module Rate = Units.Rate

let id = "parking_lot"

let title = "Parking lot: Nimbus populations on chained bottlenecks"

type params = {
  links : int;
  mbps : float;
  rtt_ms : float;
  prop_ms : float;
  buffer_bdp : float;
  nimbus_per_link : int;
  elastic_cross : int;
  inelastic_frac : float;
  duration : float;
  seed : int;
}

let default_params =
  { links = 3; mbps = 48.; rtt_ms = 50.; prop_ms = 2.; buffer_bdp = 2.0;
    nimbus_per_link = 2; elastic_cross = 2; inelastic_frac = 0.15;
    duration = 60.; seed = 42 }

(* CLI / CI / leaderboard entry point: [flows] is the total congestion-
   controlled flow count (one Nimbus per link, the rest elastic cross
   traffic); rates stay per-link so the per-flow share shrinks as the fleet
   grows — the stress is queue contention, not byte volume *)
let scaled_params ?(mbps = 48.) ?(duration = 5.) ?(seed = 42) ~links ~flows ()
    =
  if links < 2 then invalid_arg "Exp_parking_lot: links must be >= 2";
  if flows < links then invalid_arg "Exp_parking_lot: flows must be >= links";
  { default_params with
    links; mbps; duration; seed; nimbus_per_link = 1;
    elastic_cross = (flows - links + (links - 1) - 1) / (links - 1) }

let total_flows p =
  (p.links * p.nimbus_per_link) + ((p.links - 1) * p.elastic_cross)

type outcome = {
  tables : Table.t list;
  violations : int;
  report : string;
  delivered : int;
  flows : int;
}

let run_custom ?(trace = Nimbus_trace.Trace.disabled) p =
  if p.links < 2 then invalid_arg "Exp_parking_lot: links must be >= 2";
  if p.nimbus_per_link < 1 then
    invalid_arg "Exp_parking_lot: nimbus_per_link must be >= 1";
  let engine = Engine.create { trace } in
  let rng = Rng.create p.seed in
  let mu = Rate.mbps p.mbps in
  let prop_rtt = Time.ms p.rtt_ms in
  let capacity_bytes =
    max (4 * 1500)
      (int_of_float
         (Rate.to_bps mu *. Time.to_secs prop_rtt *. p.buffer_bdp /. 8.))
  in
  (* the chain: n0 -> n1 -> ... -> nK, one bottleneck per hop *)
  let topo = Topology.create engine in
  let nodes =
    List.init (p.links + 1) (fun i ->
        Topology.add_node topo (Printf.sprintf "n%d" i))
  in
  let node i = List.nth nodes i in
  let links =
    List.init p.links (fun i ->
        Topology.add_link topo ~src:(node i) ~dst:(node (i + 1))
          { bottleneck =
              { (Bottleneck.Config.default ~rate:mu
                   ~qdisc:(Qdisc.droptail ~capacity_bytes))
                with trace };
            prop_delay = Time.ms p.prop_ms })
  in
  let link i = List.nth links i in
  let hop_route i = Topology.Route.of_links [ link i ] in
  let pair_route i = Topology.Route.of_links [ link i; link (i + 1) ] in
  (* per-link Nimbus populations, each confined to its own hop *)
  let nims =
    List.concat
      (List.init p.links (fun i ->
           List.init p.nimbus_per_link (fun j ->
               let multi = p.nimbus_per_link > 1 in
               let nim =
                 Nimbus.create
                   { (Nimbus.Config.default ~mu:(Z.Mu.known mu)) with
                     delay = (if multi then `Copa_default else `Basic_delay);
                     multi_flow = multi;
                     seed = 100 + (i * 17) + (j * 7);
                     trace }
               in
               let flow =
                 Flow.create_via topo ~route:(hop_route i)
                   ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now engine))
                   ~prop_rtt
                   ~start:(Time.ms (float_of_int ((i + j) * 10)))
                   ()
               in
               (i, nim, flow))))
  in
  (* elastic cross traffic: cubic flows spanning adjacent link pairs, with
     staggered starts so the fleet does not slow-start in lockstep *)
  let cubics =
    List.concat
      (List.init (p.links - 1) (fun i ->
           List.init p.elastic_cross (fun j ->
               let flow =
                 Flow.create_via topo ~route:(pair_route i)
                   ~cc:(Nimbus_cc.Cubic.make ()) ~prop_rtt
                   ~start:
                     (Time.ms (float_of_int (((j mod 50) * 10) + (i * 3))))
                   ()
               in
               (i, flow))))
  in
  (* inelastic cross traffic: one poisson source per pair *)
  List.iteri
    (fun i () ->
      ignore
        (Source.poisson_via topo ~route:(pair_route i) ~rng:(Rng.split rng)
           ~rate:(Rate.bps (Rate.to_bps mu *. p.inelastic_frac))
           ()))
    (List.init (p.links - 1) (fun _ -> ()));
  (* invariant monitor: per-link conservation ledgers plus the fabric-level
     identity (everything here enters through attach, so it must balance) *)
  let monitor =
    Invariant.create engine
      ~bottlenecks:
        (List.map
           (fun l -> (Topology.link_label l, Topology.link_bottleneck l))
           links)
      ()
  in
  Invariant.add_check monitor ~name:"topology-conservation" (fun () ->
      Topology.conservation_check topo);
  (* per-link queue-delay means, sampled on a 100 ms tick *)
  let qd_sum = Array.make p.links 0. in
  let qd_n = ref 0 in
  Engine.every engine ~dt:(Time.ms 100.) (fun () ->
      incr qd_n;
      List.iteri
        (fun i l ->
          qd_sum.(i) <-
            qd_sum.(i)
            +. Time.to_secs
                 (Bottleneck.queue_delay (Topology.link_bottleneck l)))
        links);
  Engine.run_until engine (Time.secs p.duration);
  let bn i = Topology.link_bottleneck (link i) in
  let link_rows =
    List.init p.links (fun i ->
        let b = bn i in
        let util =
          Time.to_secs (Bottleneck.busy_time b) /. p.duration
        in
        let nim_tput =
          8.
          *. float_of_int
               (List.fold_left
                  (fun acc (li, _, f) ->
                    if li = i then acc + Flow.received_bytes f else acc)
                  0 nims)
          /. p.duration
        in
        let delay_mode =
          List.length
            (List.filter
               (fun (li, nim, _) -> li = i && Nimbus.mode nim = Nimbus.Delay)
               nims)
        in
        [ Topology.link_label (link i);
          Table.fmt_pct util;
          Table.fmt_ms (qd_sum.(i) /. float_of_int (max 1 !qd_n));
          string_of_int (Bottleneck.drops b);
          string_of_int (Bottleneck.marks b);
          string_of_int (Bottleneck.offered_packets b);
          string_of_int (Bottleneck.delivered_packets b);
          string_of_int (Bottleneck.queued_packets b);
          Table.fmt_mbps nim_tput;
          Printf.sprintf "%d/%d" delay_mode p.nimbus_per_link ])
  in
  let elastic_bytes =
    List.fold_left (fun acc (_, f) -> acc + Flow.received_bytes f) 0 cubics
  in
  let delivered =
    List.fold_left
      (fun acc l ->
        acc + Bottleneck.delivered_packets (Topology.link_bottleneck l))
      0 links
  in
  let conservation =
    match Topology.conservation_check topo with
    | None -> "ok"
    | Some detail -> detail
  in
  let tables =
    [ Table.make ~title:(title ^ " — per link")
        ~header:
          [ "link"; "util"; "qdelay"; "drops"; "marks"; "offered";
            "delivered"; "queued"; "nimbus tput"; "delay-mode" ]
        ~notes:
          [ "each link carries its own Nimbus population; cubic+poisson \
             cross traffic spans adjacent link pairs, so neighbouring \
             populations interfere through shared queues" ]
        link_rows;
      Table.make ~title:(title ^ " — fabric")
        ~header:[ "metric"; "value" ]
        ~notes:
          [ "conservation: per link offered = delivered + drops + queued, \
             and fabric-wide injected/completed/in-transit balance \
             (audited every 10 ms by the invariant monitor)" ]
        [ [ "links"; string_of_int p.links ];
          [ "flows"; string_of_int (total_flows p) ];
          [ "injected pkts"; string_of_int (Topology.injected_packets topo) ];
          [ "completed pkts";
            string_of_int (Topology.completed_packets topo) ];
          [ "in transit"; string_of_int (Topology.in_transit_packets topo) ];
          [ "elastic cross tput";
            Table.fmt_mbps (8. *. float_of_int elastic_bytes /. p.duration) ];
          [ "conservation"; conservation ];
          [ "invariant violations"; string_of_int (Invariant.count monitor) ]
        ] ]
  in
  { tables; violations = Invariant.count monitor;
    report = Invariant.report monitor; delivered; flows = total_flows p }

let run (p : Common.profile) =
  (run_custom
     { default_params with duration = Common.scaled p 60. })
    .tables
