(* Fig. 14: classification accuracy, Nimbus vs Copa.
   Left: purely inelastic cross traffic (CBR and Poisson) occupying 30-90% of
   the link — Copa's empty-queue test fails above ~80% because the queue can
   no longer drain within 5 RTTs; Nimbus stays accurate.
   Right: one backlogged NewReno cross-flow with 1-4x the flow's RTT — the
   slow ramp lets Copa drain its queue on schedule and misclassify; Nimbus
   reads the reaction off the FFT regardless. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Source = Nimbus_traffic.Source
module Accuracy = Nimbus_metrics.Accuracy
module Time = Units.Time
module Rate = Units.Rate

let id = "fig14"

let title = "Fig 14: classification accuracy vs Copa"

let measure_accuracy engine running ~truth_elastic ~from_t ~until =
  let accuracy = Accuracy.create () in
  (match running.Common.in_competitive with
   | Some mode ->
     Engine.every engine ~dt:(Time.ms 100.) ~start:from_t ~until (fun () ->
         Accuracy.record accuracy ~predicted_elastic:(mode ())
           ~truth_elastic)
   | None -> ());
  accuracy

let inelastic_case (p : Common.profile) ~kind ~share ~seed (sch : Common.scheme) =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 60. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let rate = Rate.scale share l.Common.mu in
  (match kind with
   | `Cbr -> ignore (Source.cbr engine bn ~rate ())
   | `Poisson ->
     ignore (Source.poisson engine bn ~rng:(Rng.split rng) ~rate ()));
  let running = sch.Common.start_flow net () in
  let accuracy =
    measure_accuracy engine running ~truth_elastic:false
      ~from_t:(Time.secs 10.) ~until:(Time.secs horizon)
  in
  Engine.run_until engine (Time.secs horizon);
  Accuracy.accuracy accuracy

let rtt_ratio_case (p : Common.profile) ~ratio ~seed (sch : Common.scheme) =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 60. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  ignore
    (Flow.create engine bn ~cc:(Nimbus_cc.Reno.make ())
       ~prop_rtt:(Time.scale ratio l.Common.prop_rtt) ());
  let running = sch.Common.start_flow net () in
  let accuracy =
    measure_accuracy engine running ~truth_elastic:true ~from_t:(Time.secs 10.)
      ~until:(Time.secs horizon)
  in
  Engine.run_until engine (Time.secs horizon);
  Accuracy.accuracy accuracy

let run (p : Common.profile) =
  let schemes = [ Common.nimbus (); Common.copa ] in
  let shares = [ 0.3; 0.5; 0.7; 0.8; 0.9 ] in
  let left =
    List.concat_map
      (fun kind ->
        List.map
          (fun share ->
            let cells =
              List.map
                (fun sch ->
                  Table.fmt_pct
                    (inelastic_case p ~kind ~share ~seed:14 sch))
                schemes
            in
            ((match kind with `Cbr -> "CBR" | `Poisson -> "Poisson")
             :: Table.fmt_pct share :: cells))
          shares)
      [ `Cbr; `Poisson ]
  in
  let ratios = [ 1.; 2.; 3.; 4. ] in
  let right =
    List.map
      (fun ratio ->
        let cells =
          List.map
            (fun sch -> Table.fmt_pct (rtt_ratio_case p ~ratio ~seed:15 sch))
            schemes
        in
        Table.fmt_float ~digits:1 ratio :: cells)
      ratios
  in
  [ Table.make
      ~title:"Fig 14 left: accuracy vs inelastic cross traffic share"
      ~header:[ "kind"; "share"; "nimbus"; "copa" ]
      ~notes:
        [ "shape: nimbus high accuracy throughout; copa collapses when the \
           inelastic share exceeds ~0.8" ]
      left;
    Table.make
      ~title:"Fig 14 right: accuracy vs elastic cross-flow RTT ratio"
      ~header:[ "rtt ratio"; "nimbus"; "copa" ]
      ~notes:
        [ "shape: copa's accuracy degrades as the cross RTT grows; nimbus \
           drops only slightly at 4x" ]
      right ]
