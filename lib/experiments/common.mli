(** Shared experiment plumbing: link setup, scheme registry, run profiles. *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Rng = Nimbus_sim.Rng
module Topology = Nimbus_topology.Topology
module Flow = Nimbus_cc.Flow

(** Quick profiles shrink durations/repetitions while preserving shapes;
    full profiles use the paper's parameters. *)
type profile = {
  time_scale : float; (* multiply experiment durations *)
  seeds : int; (* repetitions for averaged results *)
}

val quick : profile

val full : profile

(** [scaled profile seconds] is the effective duration in seconds. *)
val scaled : profile -> float -> float

(** Emulated bottleneck description (Mahimahi-equivalent). *)
type link = {
  mu : Units.Rate.t;
  prop_rtt : Units.Time.t;
  buffer_bdp : float; (* buffer as a multiple of mu·prop_rtt *)
  aqm : [ `Droptail | `Pie of Units.Time.t ]; (* PIE target delay *)
}

(** [link ~mbps ~rtt_ms ~buffer_bdp ()] — convenience constructor. *)
val link :
  mbps:float ->
  rtt_ms:float ->
  ?buffer_bdp:float ->
  ?aqm:[ `Droptail | `Pie of Units.Time.t ] ->
  unit ->
  link

(** The wired-up network a dumbbell experiment runs on: a degenerate
    two-node topology whose single link is the bottleneck, plus the route
    primary flows take across it. Experiments that want more hops build
    their own {!Topology.t} directly (see [Exp_parking_lot]). *)
type net = {
  engine : Engine.t;
  topo : Topology.t;
  route : Topology.Route.t;  (** the one-link forward path *)
  bottleneck : Bottleneck.t;  (** the route's link, for stats and faults *)
  rng : Rng.t;
  net_link : link;  (** the description [setup] built from *)
}

(** [setup ?trace ~seed l] builds the dumbbell network.  When [trace] is
    given it becomes the run's shared collector: it is installed on the
    engine (where flows, faults, and invariant monitors find it) and on the
    bottleneck, and scheme constructors pick it up via [Engine.trace]. *)
val setup : ?trace:Nimbus_trace.Trace.t -> seed:int -> link -> net

(** A scheme is a named congestion-control configuration a primary flow can
    run, paired with optional introspection for mode-switching schemes. *)
type running = {
  flow : Flow.t;
  in_competitive : (unit -> bool) option;
      (** for Nimbus/Copa: current mode, for accuracy scoring *)
  nimbus : Nimbus_core.Nimbus.t option;
}

type scheme = {
  scheme_name : string;
  start_flow : net -> ?start:Units.Time.t -> unit -> running;
}

val nimbus :
  ?name:string ->
  ?delay:Nimbus_core.Nimbus.delay_alg ->
  ?competitive:Nimbus_core.Nimbus.competitive_alg ->
  ?pulse_frac:float ->
  ?fp:Units.Freq.t ->
  ?multi_flow:bool ->
  ?seed:int ->
  ?estimate_mu:bool ->
  unit ->
  scheme

(** BasicDelay without mode switching — "Nimbus delay" in Appendix A. *)
val nimbus_delay_only : scheme

val cubic : scheme

val reno : scheme

val vegas : scheme

val copa : scheme

val bbr : scheme

val vivace : scheme

val compound : scheme

(** [all_baselines] — the fixed algorithms compared throughout §5/§8. *)
val all_baselines : scheme list

(** Measurement helpers *)

type run_stats = {
  tput_series : Nimbus_metrics.Series.t; (* 1 s bins, bps *)
  qdelay_series : Nimbus_metrics.Series.t; (* 100 ms samples, seconds *)
  rtt_series : Nimbus_metrics.Series.t; (* 100 ms samples, seconds *)
}

(** [instrument engine bottleneck running ~until] attaches the standard
    monitors. *)
val instrument :
  Engine.t -> Bottleneck.t -> running -> until:Units.Time.t -> run_stats

(** [mean s ~lo ~hi] / [pct s ~lo ~hi p] over a series window given in
    seconds, ignoring NaNs. *)
val mean : Nimbus_metrics.Series.t -> lo:float -> hi:float -> float

val pct : Nimbus_metrics.Series.t -> lo:float -> hi:float -> float -> float

(** Parallel fan-out

    Experiments fan independent cases (scenarios, seeds) out over an ambient
    {!Nimbus_parallel.Pool.t} installed by the harness.  Each case must build
    its own engine, RNG, and flows from its inputs — cases run on arbitrary
    domains and must share no mutable state.  Results always come back in
    input order, so tables are byte-identical whatever the pool size. *)

(** [set_pool p] installs (or, with [None], removes) the ambient pool. *)
val set_pool : Nimbus_parallel.Pool.t option -> unit

(** [map_cases ~f cases] is [List.map f cases], evaluated across the ambient
    pool when one is installed. *)
val map_cases : f:('a -> 'b) -> 'a list -> 'b list

(** [run_seeds p ~base f] runs [f ~seed] for [p.seeds] consecutive seeds
    starting at [base] (so quick profiles, with one seed, behave exactly like
    a fixed-seed run) and returns the results in seed order. *)
val run_seeds : profile -> base:int -> (seed:int -> 'a) -> 'a list

(** Crash isolation

    A case that raises (or produces a result its [check] rejects, e.g. a
    non-finite statistic) must cost one table cell, not the whole run. *)

type crash = {
  crash_label : string;
  crash_seed : int;  (** the original seed, before any retry rekey *)
  crash_exn : string;
  crash_backtrace : string;
  crash_recovered : bool;  (** a retry on a rekeyed seed succeeded *)
  crash_attempts : int;  (** attempts consumed (including the success) *)
  crash_raw : exn;
      (** the captured exception itself (recovered: the first failure;
          exhausted: the last), so callers can classify typed failures —
          e.g. the sweep's watchdog timeout vs a genuine crash *)
}

(** [run_case ~label ~seed f] runs [f ~seed], capturing any exception (with
    its backtrace) instead of propagating it.  A failed case is retried on a
    fresh deterministic RNG stream ([seed] rekeyed once per retry) until it
    succeeds or [attempts] (default 2, i.e. one retry) are exhausted, at
    which point the case is reported as [Error].  Both outcomes are appended
    to the {!crashes} log.  Deterministic: identical inputs give identical
    results whatever pool runs them.
    @param check result validation — [Some msg] marks the result invalid and
           is treated exactly like a raise
    @param attempts total tries (>= 1)
    @param backoff called before retry attempt [k] (2-based) — the sweep's
           capped exponential sleep; must be domain-safe *)
val run_case :
  ?check:('a -> string option) ->
  ?attempts:int ->
  ?backoff:(attempt:int -> unit) ->
  label:string ->
  seed:int ->
  (seed:int -> 'a) ->
  ('a, crash) result

(** [crash_cell c] — short marker for the table cell of a crashed case. *)
val crash_cell : crash -> string

(** [crashes ()] — all crashes recorded since {!clear_crashes}, sorted by
    (label, seed) so reports are stable across pool sizes. *)
val crashes : unit -> crash list

val clear_crashes : unit -> unit

(** [set_crash_hook h] installs (or clears) a test-only hook consulted before
    each {!run_case} attempt; returning [true] forces that attempt to raise.
    The retry runs under a rekeyed seed, so a hook matching only the original
    seed exercises the recovery path. *)
val set_crash_hook : (label:string -> seed:int -> bool) option -> unit
