(** Table 1: per-protocol classification *)

val id : string

val title : string

val run : Common.profile -> Table.t list
