(** §3.1: cross-traffic rate estimator accuracy *)

val id : string

val title : string

val run : Common.profile -> Table.t list
