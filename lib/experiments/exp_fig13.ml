(* Fig. 13: sensitivity to offered load and pulse size.  WAN cross traffic at
   50% and 90% of the link; Nimbus with pulse amplitudes 0.125µ and 0.25µ,
   against Cubic and Vegas anchors.  Nimbus should keep Cubic-like
   throughput with lower delay, benefits shrinking as load grows and with
   the smaller pulse. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Wan = Nimbus_traffic.Wan
module Time = Units.Time
module Rate = Units.Rate

let id = "fig13"

let title = "Fig 13: WAN load x pulse size"

let run_one (p : Common.profile) ~load_frac ~seed (sch : Common.scheme) =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 120. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let _wan =
    Wan.create engine bn ~rng:(Rng.split rng)
      ~load:(Rate.scale load_frac l.Common.mu) ()
  in
  let running = sch.Common.start_flow net () in
  let stats = Common.instrument engine bn running ~until:(Time.secs horizon) in
  Engine.run_until engine (Time.secs horizon);
  let lo = 10. and hi = horizon in
  ( Common.pct stats.Common.tput_series ~lo ~hi 50.,
    Common.pct stats.Common.rtt_series ~lo ~hi 50. )

let run (p : Common.profile) =
  let cases load =
    [ Common.nimbus ~name:"nimbus(0.25)" ~pulse_frac:0.25 ();
      Common.nimbus ~name:"nimbus(0.125)" ~pulse_frac:0.125 ();
      Common.cubic; Common.vegas ]
    |> List.map (fun sch ->
           let tput, rtt = run_one p ~load_frac:load ~seed:13 sch in
           [ Table.fmt_pct load; sch.Common.scheme_name; Table.fmt_mbps tput;
             Table.fmt_ms rtt ])
  in
  [ Table.make ~title
      ~header:[ "load"; "scheme"; "tput p50(Mbps)"; "rtt p50(ms)" ]
      ~notes:
        [ "shape: at both loads nimbus ~cubic tput at lower rtt; delay \
           advantage shrinks at 90% load; the larger pulse switches more \
           reliably" ]
      (cases 0.5 @ cases 0.9) ]
