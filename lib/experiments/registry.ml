type experiment = {
  id : string;
  title : string;
  run : Common.profile -> Table.t list;
}

let exp id title run = { id; title; run }

let all =
  [ exp Exp_fig1.id Exp_fig1.title Exp_fig1.run;
    exp Exp_fig3.id Exp_fig3.title Exp_fig3.run;
    exp Exp_fig45.id Exp_fig45.title Exp_fig45.run;
    exp Exp_fig6.id Exp_fig6.title Exp_fig6.run;
    exp Exp_fig7.id Exp_fig7.title Exp_fig7.run;
    exp Exp_fig8.id Exp_fig8.title Exp_fig8.run;
    exp Exp_wan.id Exp_wan.title Exp_wan.run;
    exp Exp_fig11.id Exp_fig11.title Exp_fig11.run;
    exp Exp_fig12.id Exp_fig12.title Exp_fig12.run;
    exp Exp_fig13.id Exp_fig13.title Exp_fig13.run;
    exp Exp_fig14.id Exp_fig14.title Exp_fig14.run;
    exp Exp_fig15.id Exp_fig15.title Exp_fig15.run;
    exp Exp_fig16.id Exp_fig16.title Exp_fig16.run;
    exp Exp_fig17.id Exp_fig17.title Exp_fig17.run;
    exp Exp_internet_paths.id Exp_internet_paths.title Exp_internet_paths.run;
    exp Exp_appendix_c.id Exp_appendix_c.title Exp_appendix_c.run;
    exp Exp_appendix_d.id Exp_appendix_d.title Exp_appendix_d.run;
    exp Exp_appendix_e.id Exp_appendix_e.title Exp_appendix_e.run;
    exp Exp_appendix_f.id Exp_appendix_f.title Exp_appendix_f.run;
    exp Exp_table1.id Exp_table1.title Exp_table1.run;
    exp Exp_faults.id Exp_faults.title Exp_faults.run;
    exp Exp_zest.id Exp_zest.title Exp_zest.run;
    exp Exp_parking_lot.id Exp_parking_lot.title Exp_parking_lot.run;
    exp Exp_ablation.id Exp_ablation.title Exp_ablation.run ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all
