(** Fig 12: eta vs ground-truth elastic byte fraction (WAN trace) *)

val id : string

val title : string

val run : Common.profile -> Table.t list
