(** Fault matrix: multi-flow Nimbus under injected faults (burst loss, link
    flap, pulser kill), audited by {!Nimbus_metrics.Invariant} throughout.
    The CLI's [faults] subcommand uses {!run_matrix} to gate CI on the
    violation count. *)

val id : string

val title : string

type outcome = {
  tables : Table.t list;
  violations : int;  (** total invariant violations across the matrix *)
  report : string;  (** per-case violation / crash details *)
  traces : string;
      (** JSONL trace of every case, concatenated in (case, seed) input
          order — byte-identical for a given profile whatever the pool
          size; [""] when [trace_mask] is 0 *)
}

(** [run_matrix ?trace_mask p] runs every (fault spec × seed) cell, each
    crash-isolated via {!Common.run_case}.
    @param trace_mask category mask (see {!Nimbus_trace.Trace.parse_filter})
           enabling per-case trace collection into [traces]; default 0
           (off) *)
val run_matrix : ?trace_mask:int -> Common.profile -> outcome

val run : Common.profile -> Table.t list
