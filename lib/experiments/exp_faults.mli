(** Fault matrix: multi-flow Nimbus under injected faults (burst loss, link
    flap, pulser kill), audited by {!Nimbus_metrics.Invariant} throughout.
    The CLI's [faults] subcommand uses {!run_matrix} to gate CI on the
    violation count. *)

val id : string

val title : string

type outcome = {
  tables : Table.t list;
  violations : int;  (** total invariant violations across the matrix *)
  report : string;  (** per-case violation / crash details *)
}

(** [run_matrix p] runs every (fault spec × seed) cell, each crash-isolated
    via {!Common.run_case}. *)
val run_matrix : Common.profile -> outcome

val run : Common.profile -> Table.t list
