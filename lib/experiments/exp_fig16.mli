(** Fig 16: multiple Nimbus flows, staggered arrivals *)

val id : string

val title : string

val run : Common.profile -> Table.t list
