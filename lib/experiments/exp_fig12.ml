(* Fig. 12: does η track the true elastic share of the cross traffic?
   Ground truth follows the paper: the byte fraction delivered by cross-flows
   large enough to be ACK-clocked (> 10 packets).  The detector's mode should
   match "elastic fraction above ~0.3" over 90% of the time. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Wan = Nimbus_traffic.Wan
module Accuracy = Nimbus_metrics.Accuracy
module Time = Units.Time
module Rate = Units.Rate

let id = "fig12"

let title = "Fig 12: eta vs ground-truth elastic byte fraction (WAN trace)"

let truth_threshold = 0.3

let run (p : Common.profile) =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 300. in
  let net = Common.setup ~seed:12 l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let wan =
    Wan.create engine bn ~rng:(Rng.split rng) ~profile:`Elephant
      ~load:(Rate.scale 0.5 l.Common.mu) ()
  in
  let nim = Nimbus.create (Nimbus.Config.default ~mu:(Z.Mu.known l.Common.mu)) in
  ignore
    (Flow.create engine bn
       ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now engine))
       ~prop_rtt:l.Common.prop_rtt ());
  let byte_truth = Accuracy.create () in
  let persistent_truth = Accuracy.create () in
  let prev_elastic = ref 0 and prev_total = ref 0 in
  let fractions = ref [] in
  Engine.every engine ~dt:(Time.secs 1.0) ~start:(Time.secs 10.)
    ~until:(Time.secs horizon) (fun () ->
      let now = Engine.now engine in
      let predicted = Nimbus.mode nim = Nimbus.Competitive in
      let elastic, total = Wan.bytes_split wan in
      let de = elastic - !prev_elastic and dt = total - !prev_total in
      prev_elastic := elastic;
      prev_total := total;
      if dt > 0 then begin
        let frac = float_of_int de /. float_of_int dt in
        fractions := frac :: !fractions;
        Accuracy.record byte_truth ~predicted_elastic:predicted
          ~truth_elastic:(frac > truth_threshold)
      end;
      Accuracy.record persistent_truth ~predicted_elastic:predicted
        ~truth_elastic:
          (Wan.persistent_elastic_active wan ~now ~min_age:(Time.secs 2.)
             ~min_size:1_000_000));
  Engine.run_until engine (Time.secs horizon);
  let fr = Array.of_list !fractions in
  [ Table.make ~title
      ~header:[ "metric"; "value" ]
      ~notes:
        [ "paper: >90% accuracy against the byte-fraction truth on the CAIDA \
           trace";
          "partial reproduction: our synthetic trace is churnier than the \
           paper's -- freshly arriving flows in slow start put broadband \
           energy exactly into the (f_p, 2f_p) comparison band, so the \
           detector (by design, par. 3.2) only fires on flows that persist \
           across its FFT window; see the persistent-flow truth row and \
           DESIGN.md" ]
      [ [ "samples"; string_of_int (Accuracy.samples byte_truth) ];
        [ "mean elastic byte fraction";
          Table.fmt_pct (Nimbus_dsp.Stats.mean fr) ];
        [ "accuracy vs byte-fraction truth (>0.3)";
          Table.fmt_pct (Accuracy.accuracy byte_truth) ];
        [ "accuracy vs persistent-flow truth (>=1MB, >=2s old)";
          Table.fmt_pct (Accuracy.accuracy persistent_truth) ];
        [ "recall elastic (persistent truth)";
          Table.fmt_pct (Accuracy.true_positive_rate persistent_truth) ];
        [ "recall inelastic (persistent truth)";
          Table.fmt_pct (Accuracy.true_negative_rate persistent_truth) ] ] ]
