(* Fig. 18/19 (+ Appendix A, Fig. 20): Internet paths.  Substitution: 25
   synthetic path profiles sampled over realistic ranges of rate, RTT,
   buffering, random loss, policing, and background WAN traffic (the paper's
   claim is about the *distribution* of outcomes across path diversity; see
   DESIGN.md).  The population and the per-path runner live in Path_model,
   shared with the fleet-scale sweep (`nimbus_cli sweep`), which draws the
   same distribution at 10^4+ paths.

   Fig. 18/19: per-path and aggregate throughput/delay for Nimbus, Cubic,
   BBR, Vegas — Nimbus should match Cubic-or-better throughput nearly
   everywhere, at BBR-level-or-better delay, and beat Cubic outright on
   lossy/policed paths.

   Fig. 20: on one buffered path, repeated runs of Cubic vs the pure
   delay-control scheme — the delay-mode cluster sits at far lower delay at
   similar throughput, the paper's motivation appendix. *)

module Stats = Nimbus_dsp.Stats

let id = "paths"

let title = "Fig 18/19/20: synthetic Internet path profiles"

let run_path p path ~seed sch =
  let o = Path_model.run p path sch ~seed in
  (o.Path_model.o_tput, o.Path_model.o_rtt)

let run (p : Common.profile) =
  let paths = Path_model.sample ~count:25 ~seed:1819 in
  let schemes =
    [ Common.nimbus ~estimate_mu:true (); Common.cubic; Common.bbr;
      Common.vegas ]
  in
  let results =
    Common.map_cases
      ~f:(fun path ->
        ( path,
          List.map
            (fun sch ->
              run_path p path ~seed:(500 + path.Path_model.p_id) sch)
            (schemes
            [@shared_ok
              "immutable scheme list built before the fan-out; each \
               start_flow closure builds flows inside the fresh per-run \
               engine it is handed"]) ))
      paths
  in
  let per_path =
    List.map
      (fun (path, outs) ->
        Printf.sprintf "%d" path.Path_model.p_id
        :: Path_model.describe path
        :: List.concat_map
             (fun (tput, rtt) -> [ Table.fmt_mbps tput; Table.fmt_ms rtt ])
             outs)
      results
  in
  let header =
    "path" :: "profile"
    :: List.concat_map
         (fun sch ->
           [ sch.Common.scheme_name ^ " tput"; sch.Common.scheme_name ^ " rtt" ])
         schemes
  in
  let fig18 =
    Table.make ~title:"Fig 18: per-path throughput (Mbps) and mean RTT (ms)"
      ~header
      ~notes:
        [ "shape: nimbus >= ~cubic tput on buffered paths, beats cubic on \
           lossy ones; rtt below cubic/bbr on most paths" ]
      per_path
  in
  (* aggregate: ratios vs cubic/bbr over paths *)
  let nth_outs i = List.map (fun (_, outs) -> List.nth outs i) results in
  let nimbus_res = nth_outs 0 and cubic_res = nth_outs 1 and bbr_res = nth_outs 2 in
  let ratio a b = List.map2 (fun (ta, _) (tb, _) -> ta /. tb) a b in
  let delay_diff a b =
    List.map2 (fun (_, da) (_, db) -> (da -. db) *. 1e3) a b
  in
  let arr = Array.of_list in
  let lower_delay_frac a b =
    let diffs = delay_diff a b in
    float_of_int (List.length (List.filter (fun d -> d < -5.) diffs))
    /. float_of_int (List.length diffs)
  in
  let fig19 =
    Table.make ~title:"Fig 19: aggregate over the 25 paths"
      ~header:[ "metric"; "value" ]
      ~notes:
        [ "paper: nimbus ~cubic tput, ~10% below bbr, 40-50 ms lower delay \
           than bbr; lower delay than cubic on ~60% of paths" ]
      [ [ "median nimbus/cubic tput ratio";
          Table.fmt_float (Stats.median (arr (ratio nimbus_res cubic_res))) ];
        [ "median nimbus/bbr tput ratio";
          Table.fmt_float (Stats.median (arr (ratio nimbus_res bbr_res))) ];
        [ "median nimbus-bbr delay (ms)";
          Table.fmt_float (Stats.median (arr (delay_diff nimbus_res bbr_res))) ];
        [ "median nimbus-cubic delay (ms)";
          Table.fmt_float (Stats.median (arr (delay_diff nimbus_res cubic_res))) ];
        [ "paths where nimbus delay < cubic - 5ms";
          Table.fmt_pct (lower_delay_frac nimbus_res cubic_res) ] ]
  in
  (* Appendix A: repeated Cubic vs pure delay-mode runs on one buffered path *)
  let base_path =
    { Path_model.p_id = 99; mbps = 48.; rtt_ms = 50.; buffer_bdp = 2.;
      loss = 0.; policed = false; wan_load = 0.35 }
  in
  let runs = max 4 (p.Common.seeds * 4) in
  let collect sch =
    Common.map_cases
      ~f:(fun k ->
        run_path p base_path ~seed:(900 + k)
          (sch
          [@shared_ok
            "immutable scheme record; its start_flow closure builds flows \
             inside the fresh per-run engine it is handed"]))
      (List.init runs (fun k -> k))
  in
  let cubic_runs = collect Common.cubic in
  let delay_runs = collect Common.nimbus_delay_only in
  let summarize rs =
    let t = arr (List.map fst rs) and d = arr (List.map snd rs) in
    (Stats.mean t, Stats.mean d)
  in
  let ct, cd = summarize cubic_runs in
  let dt, dd = summarize delay_runs in
  let fig20 =
    Table.make
      ~title:"Fig 20 (App A): Cubic vs pure delay-control, repeated runs"
      ~header:[ "scheme"; "runs"; "mean tput(Mbps)"; "mean rtt(ms)" ]
      ~notes:
        [ "shape: delay-control cluster at similar tput but much lower \
           delay -- inelastic cross traffic is common, so the opportunity \
           is real" ]
      [ [ "cubic"; string_of_int runs; Table.fmt_mbps ct; Table.fmt_ms cd ];
        [ "nimbus-delay"; string_of_int runs; Table.fmt_mbps dt;
          Table.fmt_ms dd ] ]
  in
  [ fig18; fig19; fig20 ]
