(* Fig. 18/19 (+ Appendix A, Fig. 20): Internet paths.  Substitution: 25
   synthetic path profiles sampled over realistic ranges of rate, RTT,
   buffering, random loss, policing, and background WAN traffic (the paper's
   claim is about the *distribution* of outcomes across path diversity; see
   DESIGN.md).

   Fig. 18/19: per-path and aggregate throughput/delay for Nimbus, Cubic,
   BBR, Vegas — Nimbus should match Cubic-or-better throughput nearly
   everywhere, at BBR-level-or-better delay, and beat Cubic outright on
   lossy/policed paths.

   Fig. 20: on one buffered path, repeated runs of Cubic vs the pure
   delay-control scheme — the delay-mode cluster sits at far lower delay at
   similar throughput, the paper's motivation appendix. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Wan = Nimbus_traffic.Wan
module Stats = Nimbus_dsp.Stats
module Time = Units.Time
module Rate = Units.Rate

let id = "paths"

let title = "Fig 18/19/20: synthetic Internet path profiles"

type path = {
  p_id : int;
  mbps : float;
  rtt_ms : float;
  buffer_bdp : float;
  loss : float;        (* random loss probability *)
  policed : bool;
  wan_load : float;    (* background traffic as a fraction of the link *)
}

let sample_paths ~count ~seed =
  let rng = Rng.create seed in
  List.init count (fun i ->
      let lossy = Rng.uniform rng < 0.2 in
      let policed = (not lossy) && Rng.uniform rng < 0.12 in
      { p_id = i;
        mbps = Rng.range rng ~lo:20. ~hi:100.;
        rtt_ms = Rng.range rng ~lo:20. ~hi:120.;
        buffer_bdp = Rng.range rng ~lo:0.5 ~hi:3.;
        loss = (if lossy then Rng.range rng ~lo:0.001 ~hi:0.01 else 0.);
        policed;
        wan_load = Rng.range rng ~lo:0.1 ~hi:0.5 })

let setup_path path ~seed =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let mu = path.mbps *. 1e6 in
  let prop_rtt = path.rtt_ms /. 1e3 in
  let capacity_bytes =
    max (4 * 1500) (int_of_float (mu *. prop_rtt *. path.buffer_bdp /. 8.))
  in
  let qdisc = Qdisc.droptail ~capacity_bytes in
  let random_loss =
    if path.loss > 0. then Some (path.loss, Rng.split rng) else None
  in
  let policer =
    if path.policed then Some (Rate.bps (mu *. 0.85), 50 * 1500) else None
  in
  let bn =
    Bottleneck.create engine
      { (Bottleneck.Config.default ~rate:(Rate.bps mu) ~qdisc) with
        random_loss; policer }
  in
  (engine, bn, rng, mu, prop_rtt)

let run_path (p : Common.profile) path ~seed (sch : Common.scheme) =
  let engine, bn, rng, mu, prop_rtt = setup_path path ~seed in
  let horizon = Common.scaled p 60. in
  if path.wan_load > 0. then
    ignore
      (Wan.create engine bn ~rng:(Rng.split rng) ~prop_rtt:(Time.secs prop_rtt)
         ~load:(Rate.bps (path.wan_load *. mu)) ());
  let l =
    { Common.mu = Rate.bps mu;
      prop_rtt = Time.secs prop_rtt;
      buffer_bdp = path.buffer_bdp;
      aqm = `Droptail }
  in
  let running = sch.Common.start_flow engine bn l () in
  let stats = Common.instrument engine bn running ~until:(Time.secs horizon) in
  Engine.run_until engine (Time.secs horizon);
  ( Common.mean stats.Common.tput_series ~lo:8. ~hi:horizon,
    Common.mean stats.Common.rtt_series ~lo:8. ~hi:horizon )

let run (p : Common.profile) =
  let paths = sample_paths ~count:25 ~seed:1819 in
  let schemes =
    [ Common.nimbus ~estimate_mu:true (); Common.cubic; Common.bbr;
      Common.vegas ]
  in
  let results =
    Common.map_cases
      ~f:(fun path ->
        ( path,
          List.map
            (fun sch -> run_path p path ~seed:(500 + path.p_id) sch)
            (schemes
            [@shared_ok
              "immutable scheme list built before the fan-out; each \
               start_flow closure builds flows inside the fresh per-run \
               engine it is handed"]) ))
      paths
  in
  let per_path =
    List.map
      (fun (path, outs) ->
        let kind =
          if path.loss > 0. then "lossy"
          else if path.policed then "policed"
          else "buffered"
        in
        Printf.sprintf "%d" path.p_id
        :: Printf.sprintf "%.0fM/%.0fms/%s" path.mbps path.rtt_ms kind
        :: List.concat_map
             (fun (tput, rtt) -> [ Table.fmt_mbps tput; Table.fmt_ms rtt ])
             outs)
      results
  in
  let header =
    "path" :: "profile"
    :: List.concat_map
         (fun sch ->
           [ sch.Common.scheme_name ^ " tput"; sch.Common.scheme_name ^ " rtt" ])
         schemes
  in
  let fig18 =
    Table.make ~title:"Fig 18: per-path throughput (Mbps) and mean RTT (ms)"
      ~header
      ~notes:
        [ "shape: nimbus >= ~cubic tput on buffered paths, beats cubic on \
           lossy ones; rtt below cubic/bbr on most paths" ]
      per_path
  in
  (* aggregate: ratios vs cubic/bbr over paths *)
  let nth_outs i = List.map (fun (_, outs) -> List.nth outs i) results in
  let nimbus_res = nth_outs 0 and cubic_res = nth_outs 1 and bbr_res = nth_outs 2 in
  let ratio a b = List.map2 (fun (ta, _) (tb, _) -> ta /. tb) a b in
  let delay_diff a b =
    List.map2 (fun (_, da) (_, db) -> (da -. db) *. 1e3) a b
  in
  let arr = Array.of_list in
  let lower_delay_frac a b =
    let diffs = delay_diff a b in
    float_of_int (List.length (List.filter (fun d -> d < -5.) diffs))
    /. float_of_int (List.length diffs)
  in
  let fig19 =
    Table.make ~title:"Fig 19: aggregate over the 25 paths"
      ~header:[ "metric"; "value" ]
      ~notes:
        [ "paper: nimbus ~cubic tput, ~10% below bbr, 40-50 ms lower delay \
           than bbr; lower delay than cubic on ~60% of paths" ]
      [ [ "median nimbus/cubic tput ratio";
          Table.fmt_float (Stats.median (arr (ratio nimbus_res cubic_res))) ];
        [ "median nimbus/bbr tput ratio";
          Table.fmt_float (Stats.median (arr (ratio nimbus_res bbr_res))) ];
        [ "median nimbus-bbr delay (ms)";
          Table.fmt_float (Stats.median (arr (delay_diff nimbus_res bbr_res))) ];
        [ "median nimbus-cubic delay (ms)";
          Table.fmt_float (Stats.median (arr (delay_diff nimbus_res cubic_res))) ];
        [ "paths where nimbus delay < cubic - 5ms";
          Table.fmt_pct (lower_delay_frac nimbus_res cubic_res) ] ]
  in
  (* Appendix A: repeated Cubic vs pure delay-mode runs on one buffered path *)
  let base_path =
    { p_id = 99; mbps = 48.; rtt_ms = 50.; buffer_bdp = 2.; loss = 0.;
      policed = false; wan_load = 0.35 }
  in
  let runs = max 4 (p.Common.seeds * 4) in
  let collect sch =
    Common.map_cases
      ~f:(fun k ->
        run_path p base_path ~seed:(900 + k)
          (sch
          [@shared_ok
            "immutable scheme record; its start_flow closure builds flows \
             inside the fresh per-run engine it is handed"]))
      (List.init runs (fun k -> k))
  in
  let cubic_runs = collect Common.cubic in
  let delay_runs = collect Common.nimbus_delay_only in
  let summarize rs =
    let t = arr (List.map fst rs) and d = arr (List.map snd rs) in
    (Stats.mean t, Stats.mean d)
  in
  let ct, cd = summarize cubic_runs in
  let dt, dd = summarize delay_runs in
  let fig20 =
    Table.make
      ~title:"Fig 20 (App A): Cubic vs pure delay-control, repeated runs"
      ~header:[ "scheme"; "runs"; "mean tput(Mbps)"; "mean rtt(ms)" ]
      ~notes:
        [ "shape: delay-control cluster at similar tput but much lower \
           delay -- inelastic cross traffic is common, so the opportunity \
           is real" ]
      [ [ "cubic"; string_of_int runs; Table.fmt_mbps ct; Table.fmt_ms cd ];
        [ "nimbus-delay"; string_of_int runs; Table.fmt_mbps dt;
          Table.fmt_ms dd ] ]
  in
  [ fig18; fig19; fig20 ]
