(* Fig. 7: the asymmetric sinusoidal pulse itself — +µ/4 half-sine for a
   quarter period, −µ/12 half-sine for the rest, zero mean, and a third of
   the minimum send rate a symmetric pulse would need. *)

module Pulse = Nimbus_core.Pulse
module Time = Units.Time
module Freq = Units.Freq
module Rate = Units.Rate

let id = "fig7"

let title = "Fig 7: asymmetric sinusoidal pulse waveform"

let run (_ : Common.profile) =
  let mu = 96e6 in
  let amplitude = Rate.bps (mu /. 4.) in
  let freq = Freq.hz 5. in
  let sample t =
    Rate.to_bps (Pulse.value ~shape:Pulse.Asymmetric ~amplitude ~freq (Time.secs t))
    /. 1e6
  in
  let period = Time.to_secs (Freq.period freq) in
  let points = List.init 9 (fun i -> float_of_int i /. 8. *. period) in
  let waveform_row =
    "waveform (Mbps)"
    :: List.map (fun t -> Table.fmt_float ~digits:1 (sample t)) points
  in
  let header =
    "t/T" :: List.map (fun t -> Table.fmt_float ~digits:3 (t /. period)) points
  in
  let mean =
    Pulse.mean ~shape:Pulse.Asymmetric ~amplitude ~freq ~samples:10_000
  in
  let min_asym = Pulse.min_send_rate ~shape:Pulse.Asymmetric ~amplitude in
  let min_sym = Pulse.min_send_rate ~shape:Pulse.Symmetric ~amplitude in
  [ Table.make ~title ~header
      ~notes:
        [ Printf.sprintf "mean over period = %.3g Mbps (target 0)"
            (Rate.to_mbps mean);
          Printf.sprintf
            "min sender rate: asymmetric %.1f Mbps (mu/12) vs symmetric %.1f \
             Mbps (mu/4)"
            (Rate.to_mbps min_asym) (Rate.to_mbps min_sym) ]
      [ waveform_row ] ]
