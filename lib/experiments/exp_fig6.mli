(** Fig 6: eta distribution vs elastic fraction of cross traffic *)

val id : string

val title : string

val run : Common.profile -> Table.t list
