(* Fig. 16: multiple Nimbus flows with no other cross traffic.  Flows arrive
   staggered and leave; with the pulser/watcher protocol they share the link
   fairly, keep at most one pulser, and hold delay-control mode (low RTTs)
   nearly all the time.  Pulser hand-off happens via the randomized
   election when the current pulser departs. *)

module Engine = Nimbus_sim.Engine
module Nimbus = Nimbus_core.Nimbus
module Flow = Nimbus_cc.Flow
module Fairness = Nimbus_metrics.Fairness
module Time = Units.Time

let id = "fig16"

let title = "Fig 16: multiple Nimbus flows, staggered arrivals"

let run (p : Common.profile) =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let stagger = Common.scaled p 120. in
  let life = 4. *. stagger in
  let n = 4 in
  let horizon = (float_of_int n *. stagger) +. life in
  let net = Common.setup ~seed:16 l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  (* Copa's default mode as the delay-control algorithm: its target rate
     1/(delta*d_q) is the same for every flow sharing the queue, so shares
     equalize -- BasicDelay's rate rule is satisfied by any split, and a
     late-joining Vegas converges too slowly at this scale *)
  let sch i =
    Common.nimbus ~name:(Printf.sprintf "nimbus%d" i) ~delay:`Copa_default
      ~multi_flow:true ~seed:(100 + (i * 7)) ()
  in
  let started =
    List.init n (fun i ->
        let start = float_of_int i *. stagger in
        let running =
          (sch i).Common.start_flow net ~start:(Time.secs start) ()
        in
        Engine.schedule_at engine (Time.secs (start +. life)) (fun () ->
            Flow.apply running.Common.flow Flow.Control.Stop);
        (i, start, running))
  in
  (* sample: pulser count, delay-mode fraction, queue delay *)
  let pulser_excess = ref 0 and samples = ref 0 and delay_mode = ref 0 in
  let qdelays = ref [] in
  Engine.every engine ~dt:(Time.ms 500.) ~start:(Time.secs 10.)
    ~until:(Time.secs horizon) (fun () ->
      let now = Time.to_secs (Engine.now engine) in
      let active =
        List.filter
          (fun (_, start, r) ->
            now >= start +. 10. && not (Flow.stopped r.Common.flow))
          started
      in
      if active <> [] then begin
        incr samples;
        let pulsers =
          List.length
            (List.filter
               (fun (_, _, r) ->
                 match r.Common.nimbus with
                 | Some nim -> Nimbus.role nim = Nimbus.Pulser
                 | None -> false)
               active)
        in
        if pulsers > 1 then incr pulser_excess;
        let in_delay =
          List.for_all
            (fun (_, _, r) ->
              match r.Common.nimbus with
              | Some nim -> Nimbus.mode nim = Nimbus.Delay
              | None -> false)
            active
        in
        if in_delay then incr delay_mode;
        qdelays :=
          Time.to_secs (Nimbus_sim.Bottleneck.queue_delay bn) :: !qdelays
      end);
  (* per-flow throughput measured over the window where all four are live *)
  let all_live_lo = (float_of_int (n - 1) *. stagger) +. 10. in
  let all_live_hi = float_of_int n *. stagger in
  let tput_series =
    List.map
      (fun (i, _, r) ->
        ( i,
          Nimbus_metrics.Monitor.flow_throughput engine r.Common.flow
            ~interval:(Time.secs 1.0) ~until:(Time.secs horizon) () ))
      started
  in
  Engine.run_until engine (Time.secs horizon);
  let shares =
    List.map
      (fun (_, s) -> Common.mean s ~lo:all_live_lo ~hi:all_live_hi)
      tput_series
  in
  let qd = Array.of_list !qdelays in
  let frac a b = if b = 0 then nan else float_of_int a /. float_of_int b in
  [ Table.make ~title
      ~header:[ "metric"; "value" ]
      ~notes:
        [ "paper: near-equal shares, <=1 pulser, delay mode most of the \
           time";
          "partial: shares equalize only roughly (Jain ~0.7-0.8) and \
           pulser conflicts persist longer than the paper's -- see \
           EXPERIMENTS.md" ]
      ([ [ "flows"; string_of_int n ];
         [ "jain index (all live)";
           Table.fmt_float (Fairness.jain (Array.of_list shares)) ];
         [ "multi-pulser sample fraction";
           Table.fmt_pct (frac !pulser_excess !samples) ];
         [ "all-in-delay-mode fraction"; Table.fmt_pct (frac !delay_mode !samples) ];
         [ "mean queue delay (ms)";
           Table.fmt_ms (Nimbus_dsp.Stats.mean qd) ] ]
      @ List.mapi
          (fun i share ->
            [ Printf.sprintf "flow %d tput all-live (Mbps)" i;
              Table.fmt_mbps share ])
          shares) ]
