(* Table 1: classification of each cross-traffic class by the elasticity
   detector.  One Nimbus flow shares the link with a single representative
   of each class; the detector's majority verdict should match the table:
   ACK-clocked protocols read elastic, rate-based and application-limited
   traffic reads inelastic, and BBR flips with buffer depth. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Source = Nimbus_traffic.Source
module Time = Units.Time
module Rate = Units.Rate

let id = "table1"

let title = "Table 1: per-protocol classification"

type case = {
  label : string;
  expected : string;
  buffer_bdp : float;
  install : Engine.t -> Nimbus_sim.Bottleneck.t -> Common.link -> Rng.t -> unit;
}

let flow cc engine bn (l : Common.link) _rng =
  ignore (Flow.create engine bn ~cc ~prop_rtt:l.Common.prop_rtt ())

let cases =
  [ { label = "Cubic"; expected = "Elastic"; buffer_bdp = 2.;
      install = (fun e b l r -> flow (Nimbus_cc.Cubic.make ()) e b l r) };
    { label = "Reno"; expected = "Elastic"; buffer_bdp = 2.;
      install = (fun e b l r -> flow (Nimbus_cc.Reno.make ()) e b l r) };
    { label = "Copa"; expected = "Elastic"; buffer_bdp = 2.;
      install = (fun e b l r -> flow (Nimbus_cc.Copa.make ()) e b l r) };
    { label = "Vegas"; expected = "Elastic"; buffer_bdp = 2.;
      install = (fun e b l r -> flow (Nimbus_cc.Vegas.make ()) e b l r) };
    { label = "BBR (deep buffer)"; expected = "Elastic"; buffer_bdp = 2.;
      install = (fun e b l r -> flow (Nimbus_cc.Bbr.make ()) e b l r) };
    { label = "BBR (shallow buffer)"; expected = "Inelastic"; buffer_bdp = 0.5;
      install = (fun e b l r -> flow (Nimbus_cc.Bbr.make ()) e b l r) };
    { label = "PCC-Vivace"; expected = "Inelastic"; buffer_bdp = 2.;
      install = (fun e b l r -> flow (Nimbus_cc.Vivace.make ()) e b l r) };
    { label = "Fixed window"; expected = "Elastic"; buffer_bdp = 2.;
      install =
        (fun e b l r ->
          flow (Nimbus_cc.Simple_cc.fixed_window ~segments:200 ()) e b l r) };
    { label = "App-limited"; expected = "Inelastic"; buffer_bdp = 2.;
      install =
        (fun engine bn l _ ->
          (* a windowed transport trickle-fed by its application *)
          let f =
            Flow.create engine bn ~cc:(Nimbus_cc.Cubic.make ())
              ~prop_rtt:l.Common.prop_rtt ~source:Flow.App_limited ()
          in
          Engine.every engine ~dt:(Time.ms 10.) (fun () -> Flow.supply f 30_000)) };
    { label = "Const. stream"; expected = "Inelastic"; buffer_bdp = 2.;
      install =
        (fun engine bn _ _ ->
          ignore (Source.cbr engine bn ~rate:(Rate.bps 48e6) ())) } ]

let classify (p : Common.profile) case ~seed =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:case.buffer_bdp () in
  let horizon = Common.scaled p 120. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  case.install engine bn l rng;
  let running = (Common.nimbus ()).Common.start_flow net () in
  let elastic_samples = ref 0 and samples = ref 0 in
  (match running.Common.in_competitive with
   | Some mode ->
     Engine.every engine ~dt:(Time.ms 100.) ~start:(Time.secs 10.)
       ~until:(Time.secs horizon) (fun () ->
         incr samples;
         if mode () then incr elastic_samples)
   | None -> ());
  Engine.run_until engine (Time.secs horizon);
  if !samples = 0 then ("?", nan)
  else begin
    let frac = float_of_int !elastic_samples /. float_of_int !samples in
    ((if frac >= 0.5 then "Elastic" else "Inelastic"), frac)
  end

let run (p : Common.profile) =
  let rows =
    Common.map_cases
      ~f:(fun case ->
        (* full profiles average the elastic-time fraction over the seed
           repetitions; the quick profile's single seed reproduces the
           historical fixed-seed run exactly *)
        let outcomes =
          Common.run_seeds p ~base:100 (fun ~seed ->
              Common.run_case ~label:case.label ~seed
                (classify p
                   (case
                   [@shared_ok
                     "immutable cross-traffic case spec built before the \
                      fan-out; its install closure populates the fresh \
                      per-run engine it is handed"])))
        in
        (* a crashed seed costs its own cell, not the whole table: verdicts
           average over the surviving seeds and the row is marked *)
        let survived = List.filter_map Result.to_option outcomes in
        let crashed =
          List.filter_map
            (function Ok _ -> None | Error c -> Some c)
            outcomes
        in
        let fracs =
          List.filter (fun f -> not (Float.is_nan f)) (List.map snd survived)
        in
        let frac =
          match fracs with
          | [] -> nan
          | _ ->
            List.fold_left ( +. ) 0. fracs /. float_of_int (List.length fracs)
        in
        let verdict =
          if Float.is_nan frac then "?"
          else if frac >= 0.5 then "Elastic"
          else "Inelastic"
        in
        let status =
          match crashed with
          | c :: _ when survived = [] -> Common.crash_cell c
          | c :: _ ->
            (if verdict = case.expected then "ok" else "MISMATCH")
            ^ " " ^ Common.crash_cell c
          | [] -> if verdict = case.expected then "ok" else "MISMATCH"
        in
        [ case.label; case.expected; verdict; Table.fmt_pct frac; status ])
      cases
  in
  [ Table.make ~title
      ~header:[ "cross traffic"; "paper"; "measured"; "elastic time"; "" ]
      ~notes:
        [ "BBR's verdict flips with buffer depth because only deep buffers \
           make it CWND-limited (ACK-clocked)" ]
      rows ]
