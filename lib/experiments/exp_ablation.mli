(** Ablations of the detector/controller design choices *)

val id : string

val title : string

val run : Common.profile -> Table.t list
