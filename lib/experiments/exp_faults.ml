(* Fault matrix: the robustness scenarios of §8 run under the invariant
   monitor.  Three multi-flow Nimbus flows share the link while a fault plan
   injects burst loss, a link flap (µ → 0 and back), and a pulser kill; the
   run passes when every invariant (packet conservation, non-negative queue,
   finite signals, mode-switch hysteresis) holds throughout and, after the
   kill, a surviving watcher takes over the pulser role within one FFT
   window. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Fault = Nimbus_faults.Fault
module Invariant = Nimbus_metrics.Invariant
module Monitor = Nimbus_metrics.Monitor
module Time = Units.Time

let id = "faults"

let title = "Fault matrix: invariant audit under injected faults"

type case = {
  fname : string;
  spec : float -> string; (* horizon -> fault spec; "" = no faults *)
  kill_pulser : bool;
}

let cases =
  [ { fname = "none"; spec = (fun _ -> ""); kill_pulser = false };
    { fname = "burst";
      spec = (fun h -> Printf.sprintf "burst@%g:0.05/0.4/0.3" (0.35 *. h));
      kill_pulser = false };
    { fname = "flap";
      spec = (fun h -> Printf.sprintf "flap@%g:2" (0.6 *. h));
      kill_pulser = false };
    { fname = "burst+flap+kill";
      spec =
        (fun h ->
          Printf.sprintf "burst@%g:0.05/0.4/0.2;flap@%g:2" (0.35 *. h)
            (0.7 *. h));
      kill_pulser = true } ]

type one = {
  o_tput : float; (* summed mean throughput, bps *)
  o_q95 : float; (* p95 queue delay, seconds *)
  o_failover : float; (* seconds from pulser kill to a live pulser; nan: n/a *)
  o_viol : int;
  o_report : string;
  o_trace : string; (* JSONL, "" when tracing is off *)
}

let run_one (p : Common.profile) ~trace_mask case ~seed =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let h = Common.scaled p 60. in
  (* each case owns its collector and buffer, so cases stay shareable across
     pool domains; the matrix concatenates buffers in input order *)
  let tbuf = Buffer.create (if trace_mask = 0 then 16 else 65536) in
  let trace =
    if trace_mask = 0 then Nimbus_trace.Trace.disabled
    else begin
      let tr = Nimbus_trace.Trace.create ~mask:trace_mask () in
      Nimbus_trace.Trace.attach tr (Nimbus_trace.Sink.jsonl_buffer tbuf);
      tr
    end
  in
  let net = Common.setup ~trace ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let n = 3 in
  let runnings =
    List.init n (fun i ->
        let sch =
          Common.nimbus
            ~name:(Printf.sprintf "nimbus%d" i)
            ~delay:`Copa_default ~multi_flow:true
            ~seed:(seed + (i * 7919))
            ()
        in
        sch.Common.start_flow net
          ~start:(Time.secs (float_of_int i *. 1.5))
          ())
  in
  let flows =
    Array.of_list (List.map (fun r -> r.Common.flow) runnings)
  in
  let spec = case.spec h in
  if not (String.equal spec "") then begin
    match Fault.parse spec with
    | Ok plan ->
      Fault.attach ~engine ~bottleneck:bn ~flows ~rng:(Rng.split rng) plan
    | Error msg -> invalid_arg ("exp_faults: bad fault spec: " ^ msg)
  end;
  let monitor =
    Invariant.create engine ~bottleneck:bn
      ~nimbus:
        (List.mapi
           (fun i r ->
             match r.Common.nimbus with
             | Some nim -> (Printf.sprintf "nimbus%d" i, nim)
             | None -> assert false)
           runnings)
      ()
  in
  let kill_at = 0.5 *. h in
  let failover = ref nan in
  if case.kill_pulser then begin
    Engine.schedule_at engine (Time.secs kill_at) (fun () ->
        let victim =
          match
            List.find_opt
              (fun r ->
                (not (Flow.stopped r.Common.flow))
                && match r.Common.nimbus with
                   | Some nim -> Nimbus.role nim = Nimbus.Pulser
                   | None -> false)
              runnings
          with
          | Some r -> r.Common.flow
          | None -> flows.(0)
        in
        Flow.apply victim Flow.Control.Stop);
    (* the probe must start strictly after the kill event: two events at the
       same timestamp run in unspecified order, and sampling first would
       count the victim itself as the recovered pulser *)
    Engine.every engine ~dt:(Time.ms 50.) ~start:(Time.secs (kill_at +. 0.05))
      ~until:(Time.secs h) (fun () ->
        if Float.is_nan !failover then begin
          let live_pulser =
            List.exists
              (fun r ->
                (not (Flow.stopped r.Common.flow))
                && match r.Common.nimbus with
                   | Some nim -> Nimbus.role nim = Nimbus.Pulser
                   | None -> false)
              runnings
          in
          if live_pulser then
            failover := Time.to_secs (Engine.now engine) -. kill_at
        end)
  end;
  let tputs =
    List.map
      (fun r ->
        Monitor.flow_throughput engine r.Common.flow ~interval:(Time.secs 1.0)
          ~until:(Time.secs h) ())
      runnings
  in
  let qdelay =
    Monitor.queue_delay engine bn ~interval:(Time.ms 100.)
      ~until:(Time.secs h) ()
  in
  Engine.run_until engine (Time.secs h);
  Nimbus_trace.Trace.close trace;
  let tput =
    List.fold_left
      (fun acc s ->
        let m = Common.mean s ~lo:10. ~hi:h in
        if Float.is_nan m then acc else acc +. m)
      0. tputs
  in
  { o_tput = tput;
    o_q95 = Common.pct qdelay ~lo:10. ~hi:h 95.;
    o_failover = !failover;
    o_viol = Invariant.count monitor;
    o_report = Invariant.report monitor;
    o_trace = Buffer.contents tbuf }

type outcome = {
  tables : Table.t list;
  violations : int;
  report : string;
  traces : string;
}

let run_matrix ?(trace_mask = 0) (p : Common.profile) =
  let results =
    Common.map_cases cases ~f:(fun case ->
        Common.run_seeds p ~base:7000 (fun ~seed ->
            ( seed,
              Common.run_case
                ~label:("faults/" ^ case.fname)
                ~seed
                ~check:(fun o ->
                  if Float.is_finite o.o_tput then None
                  else Some "non-finite throughput")
                (run_one p ~trace_mask
                   (case
                   [@shared_ok
                     "immutable fault-case spec built before the fan-out; \
                      its spec closure installs faults into the fresh \
                      per-run engine it is handed"])) ))
        |> List.map (fun (seed, r) -> (case, seed, r)))
  in
  let results = List.concat results in
  let rows =
    List.map
      (fun (case, seed, r) ->
        match r with
        | Ok o ->
          [ case.fname; string_of_int seed; Table.fmt_mbps o.o_tput;
            Table.fmt_ms o.o_q95;
            (if Float.is_nan o.o_failover then "-"
             else Printf.sprintf "%.2f s" o.o_failover);
            string_of_int o.o_viol;
            (if o.o_viol = 0 then "ok" else "VIOLATIONS") ]
        | Error c ->
          [ case.fname; string_of_int seed; "-"; "-"; "-"; "-";
            Common.crash_cell c ])
      results
  in
  let violations =
    List.fold_left
      (fun acc (_, _, r) ->
        match r with Ok o -> acc + o.o_viol | Error _ -> acc)
      0 results
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (case, seed, r) ->
      match r with
      | Ok o when o.o_viol > 0 ->
        Buffer.add_string buf
          (Printf.sprintf "%s seed=%d:\n%s" case.fname seed o.o_report)
      | Ok _ -> ()
      | Error c ->
        Buffer.add_string buf
          (Printf.sprintf "%s seed=%d: crashed: %s\n" case.fname seed
             c.Common.crash_exn))
    results;
  let report =
    if Buffer.length buf = 0 then "fault matrix: all invariants held\n"
    else Buffer.contents buf
  in
  (* per-case buffers concatenated in input order: byte-identical whatever
     the pool size *)
  let traces =
    String.concat ""
      (List.map
         (fun (_, _, r) ->
           match r with Ok o -> o.o_trace | Error _ -> "")
         results)
  in
  { tables =
      [ Table.make ~title
          ~header:
            [ "faults"; "seed"; "tput"; "p95 qdelay"; "failover";
              "violations"; "" ]
          ~notes:
            [ "failover: pulser killed mid-run; time for a surviving \
               watcher to win the boosted election (one 5 s FFT window on \
               a clean kill -- concurrent burst loss can stretch it)" ]
          rows ];
    violations;
    report;
    traces }

let run p = (run_matrix p).tables
