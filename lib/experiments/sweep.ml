(* Fleet-scale Monte-Carlo path sweep (DESIGN.md §16): the Fig. 18/19
   population from Path_model run at 10^4+ paths × a protocol matrix,
   sharded over the ambient domain pool and hardened end-to-end:

   - checkpoint/resume: completed shards are appended to a versioned
     checkpoint file via atomic tmp-write+rename, so a sweep killed at any
     point restarts from its last completed shard and produces a
     byte-identical final table to an uninterrupted run, at any --jobs;
   - watchdog + retry: each case gets a wall-clock budget (polled once per
     simulated second — cooperative, there is no safe cross-domain
     preemption) and crashes/timeouts are retried on rekeyed seeds under
     capped exponential backoff before being recorded as typed failure
     cells, never aborting the sweep;
   - streaming aggregation: P² quantile estimators and Welford accumulators
     (lib/dsp Stats) fed in deterministic shard order, so aggregator memory
     is O(1) in path count — no per-path row is ever materialized;
   - auto-triage: the worst-k outlier paths are re-run with tracing and the
     invariant monitor enabled and their traces archived.

   Everything printed into the result tables is derived from checkpoint
   cells alone; wall-clock progress goes through [sw_log] (stderr in the
   CLI) so stdout diffs cleanly across interrupted/resumed runs. *)

module Stats = Nimbus_dsp.Stats
module Event = Nimbus_trace.Event
module Trace = Nimbus_trace.Trace
module Sink = Nimbus_trace.Sink

exception Case_timeout

exception Checkpoint_incompatible of string

exception Checkpoint_incomplete of string

type failure =
  | F_timeout of int (* attempts consumed *)
  | F_crash of int

type cell = (float * float, failure) result (* tput bps, mean rtt secs *)

type config = {
  sw_paths : int;
  sw_seed : int;
  sw_schemes : Common.scheme list;
  sw_profile : Common.profile;
  sw_shard : int;
  sw_budget : float; (* wall secs per case attempt; <= 0 disables *)
  sw_retries : int; (* retries after the first attempt *)
  sw_backoff : float; (* base retry delay, secs; doubles, capped at 1 s *)
  sw_checkpoint : string option;
  sw_resume : bool;
  sw_stop_after : int option; (* stop once this many shards are done *)
  sw_triage_k : int;
  sw_triage_dir : string option;
  sw_triage_only : bool; (* skip the shards: triage from the checkpoint *)
  sw_clock : unit -> float; (* wall clock for the watchdog *)
  sw_sleep : float -> unit; (* backoff sleep *)
  sw_log : string -> unit; (* progress; never part of the tables *)
}

let default_schemes () =
  [ Common.nimbus ~estimate_mu:true (); Common.cubic; Common.bbr;
    Common.vegas ]

let scheme_of_name name =
  match name with
  | "nimbus" -> Some (Common.nimbus ~estimate_mu:true ())
  | "nimbus-delay" -> Some Common.nimbus_delay_only
  | "cubic" -> Some Common.cubic
  | "reno" -> Some Common.reno
  | "vegas" -> Some Common.vegas
  | "copa" -> Some Common.copa
  | "bbr" -> Some Common.bbr
  | "vivace" -> Some Common.vivace
  | "compound" -> Some Common.compound
  | _ -> None

let config ?(paths = 100) ?(seed = 1819) ?schemes ?(profile = Common.quick)
    ?(shard_size = 32) ?(budget = 0.) ?(retries = 2) ?(backoff = 0.05)
    ?checkpoint ?(resume = false) ?stop_after ?(triage_k = 0) ?triage_dir
    ?(triage_only = false) ?(clock = Unix.gettimeofday)
    ?(sleep = Unix.sleepf) ?(log = fun _ -> ()) () =
  if paths < 1 then invalid_arg "Sweep.config: paths must be >= 1";
  if shard_size < 1 then invalid_arg "Sweep.config: shard_size must be >= 1";
  if retries < 0 then invalid_arg "Sweep.config: retries must be >= 0";
  let schemes = match schemes with Some s -> s | None -> default_schemes () in
  if schemes = [] then invalid_arg "Sweep.config: no schemes";
  if triage_only && checkpoint = None then
    invalid_arg "Sweep.config: --triage-only requires --checkpoint";
  if triage_only && triage_k < 1 then
    invalid_arg "Sweep.config: --triage-only requires --triage-k >= 1";
  { sw_paths = paths; sw_seed = seed; sw_schemes = schemes;
    sw_profile = profile; sw_shard = shard_size; sw_budget = budget;
    sw_retries = retries; sw_backoff = backoff; sw_checkpoint = checkpoint;
    (* triage-only must never truncate the checkpoint it feeds on *)
    sw_resume = resume || triage_only; sw_stop_after = stop_after;
    sw_triage_k = triage_k; sw_triage_dir = triage_dir;
    sw_triage_only = triage_only; sw_clock = clock; sw_sleep = sleep;
    sw_log = log }

(* --- checkpoint format -----------------------------------------------------

   Line-oriented text, one header plus one line per completed shard:

     NIMSWP01 paths=N seed=N shard=N scale=F seeds=N budget=F retries=N schemes=a,b,c
     S <idx> <base> <ncells> <cell>... #<fnv64-hex>

   Cells are path-major ("o:<tput>:<rtt>", "t:<attempts>", "c:<attempts>"),
   floats printed with the trace layer's shortest-round-trip formatter so a
   resumed aggregation folds bit-identical values.  Every shard line carries
   an FNV-1a checksum of its body; a torn or corrupted line (and everything
   after it) is dropped on resume, and the file is rewritten to its validated
   prefix.  Updates go through tmp-write+rename, so the file on disk is
   always a complete prefix of the sweep. *)

let magic = "NIMSWP01"

let header_line cfg =
  Printf.sprintf "%s paths=%d seed=%d shard=%d scale=%s seeds=%d budget=%s \
                  retries=%d schemes=%s"
    magic cfg.sw_paths cfg.sw_seed cfg.sw_shard
    (Event.float_str cfg.sw_profile.Common.time_scale)
    cfg.sw_profile.Common.seeds
    (Event.float_str cfg.sw_budget)
    cfg.sw_retries
    (String.concat "," (List.map (fun s -> s.Common.scheme_name) cfg.sw_schemes))

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let cell_to_string = function
  | Ok (tput, rtt) ->
    Printf.sprintf "o:%s:%s" (Event.float_str tput) (Event.float_str rtt)
  | Error (F_timeout k) -> Printf.sprintf "t:%d" k
  | Error (F_crash k) -> Printf.sprintf "c:%d" k

let cell_of_string s =
  match String.split_on_char ':' s with
  | [ "o"; t; r ] -> Ok (float_of_string t, float_of_string r)
  | [ "t"; k ] -> Error (F_timeout (int_of_string k))
  | [ "c"; k ] -> Error (F_crash (int_of_string k))
  | _ -> failwith "bad cell"

let shard_line ~idx ~base cells =
  let body =
    Printf.sprintf "S %d %d %d %s" idx base (List.length cells)
      (String.concat " " (List.map cell_to_string cells))
  in
  body ^ " #" ^ fnv64 body

(* [parse_shard_line line] is [Some (idx, base, cells)] iff the line is
   complete and its checksum matches. *)
let parse_shard_line line =
  match String.rindex_opt line '#' with
  | None -> None
  | Some hash_at ->
    if hash_at < 1 || line.[hash_at - 1] <> ' ' then None
    else begin
      let body = String.sub line 0 (hash_at - 1) in
      let crc = String.sub line (hash_at + 1) (String.length line - hash_at - 1) in
      if not (String.equal (fnv64 body) crc) then None
      else
        match String.split_on_char ' ' body with
        | "S" :: idx :: base :: ncells :: cells -> (
          match
            let idx = int_of_string idx in
            let base = int_of_string base in
            let n = int_of_string ncells in
            if n <> List.length cells then failwith "cell count mismatch";
            (idx, base, List.map cell_of_string cells)
          with
          | parsed -> Some parsed
          | exception _ -> None)
        | _ -> None
    end

(* Atomic checkpoint update: stream-copy the current file plus the new line
   into <file>.tmp (64 KiB chunks, O(1) memory) and rename it into place. *)
let atomic_append path ~header line =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match open_in_bin path with
   | ic ->
     let buf = Bytes.create 65536 in
     let rec copy () =
       let k = input ic buf 0 (Bytes.length buf) in
       if k > 0 then begin
         output oc buf 0 k;
         copy ()
       end
     in
     copy ();
     close_in ic
   | exception Sys_error _ ->
     output_string oc header;
     output_string oc "\n");
  output_string oc line;
  output_string oc "\n";
  close_out oc;
  Sys.rename tmp path

let write_fresh path ~header =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc header;
  output_string oc "\n";
  close_out oc;
  Sys.rename tmp path

(* [load_checkpoint path ~header ~accept] validates the header, then feeds
   each complete, checksum-clean, in-order shard line to [accept] until one
   is rejected (or the file ends / corrupts), rewrites the file to exactly
   the accepted prefix (tmp-write+rename), and returns the number of shards
   accepted.  A missing file is an empty checkpoint.
   @raise Checkpoint_incompatible when the header does not match [header]
   (different sweep parameters — resuming would silently mix populations) *)
let load_checkpoint path ~header ~accept =
  match open_in_bin path with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    (match input_line ic with
     | exception End_of_file ->
       raise (Checkpoint_incompatible (path ^ ": empty checkpoint file"))
     | first ->
       if not (String.equal first header) then
         raise
           (Checkpoint_incompatible
              (Printf.sprintf
                 "%s: checkpoint header does not match this sweep's \
                  parameters\n  file:   %s\n  sweep:  %s"
                 path first header)));
    let kept = Buffer.create 4096 in
    Buffer.add_string kept header;
    Buffer.add_char kept '\n';
    let shards = ref 0 in
    (try
       let stop = ref false in
       while not !stop do
         match input_line ic with
         | exception End_of_file -> stop := true
         | line -> (
           match parse_shard_line line with
           | Some (idx, base, cells) when idx = !shards && accept ~base cells ->
             incr shards;
             Buffer.add_string kept line;
             Buffer.add_char kept '\n'
           | Some _ | None ->
             (* out-of-order, truncated, or corrupt: drop this line and
                everything after it *)
             stop := true)
       done
     with e -> raise e);
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Buffer.output_buffer oc kept;
    close_out oc;
    Sys.rename tmp path;
    !shards

(* --- streaming aggregation ------------------------------------------------- *)

type scheme_agg = {
  ag_name : string;
  ag_tput : Stats.Welford.t;
  ag_rtt : Stats.Welford.t;
  ag_tput_p10 : Stats.P2.t;
  ag_tput_p50 : Stats.P2.t;
  ag_tput_p90 : Stats.P2.t;
  ag_rtt_p50 : Stats.P2.t;
  ag_rtt_p95 : Stats.P2.t;
  mutable ag_timeouts : int;
  mutable ag_crashes : int;
}

(* scheme 0 vs scheme i: the distributional claims of Fig. 19 *)
type pair_agg = {
  pr_name : string;
  pr_ratio_p50 : Stats.P2.t; (* tput(scheme0) / tput(scheme_i) *)
  pr_ddiff_p50 : Stats.P2.t; (* rtt(scheme0) - rtt(scheme_i), ms *)
  mutable pr_n : int;
  mutable pr_ratio_low : int; (* ratio < 0.9 *)
  mutable pr_delay_better : int; (* delay diff < -5 ms *)
}

type worst = {
  w_score : float;
  w_path : Path_model.t;
  w_cells : cell list;
}

type agg = {
  per_scheme : scheme_agg array;
  pairs : pair_agg array;
  mutable paths_done : int;
  mutable failures : int;
  mutable worst : worst list; (* descending score, length <= sw_triage_k *)
}

let create_agg cfg =
  let mk name =
    { ag_name = name; ag_tput = Stats.Welford.create ();
      ag_rtt = Stats.Welford.create (); ag_tput_p10 = Stats.P2.create 0.1;
      ag_tput_p50 = Stats.P2.create 0.5; ag_tput_p90 = Stats.P2.create 0.9;
      ag_rtt_p50 = Stats.P2.create 0.5; ag_rtt_p95 = Stats.P2.create 0.95;
      ag_timeouts = 0; ag_crashes = 0 }
  in
  let names = List.map (fun s -> s.Common.scheme_name) cfg.sw_schemes in
  { per_scheme = Array.of_list (List.map mk names);
    pairs =
      (match names with
       | [] | [ _ ] -> [||]
       | s0 :: rest ->
         Array.of_list
           (List.map
              (fun si ->
                { pr_name = s0 ^ "/" ^ si;
                  pr_ratio_p50 = Stats.P2.create 0.5;
                  pr_ddiff_p50 = Stats.P2.create 0.5; pr_n = 0;
                  pr_ratio_low = 0; pr_delay_better = 0 })
              rest));
    paths_done = 0;
    failures = 0;
    worst = [] }

(* Outlier score, higher = worse: a failed case dominates everything; with
   two or more schemes, the paper's headline anomaly is scheme0
   underperforming scheme1 (nimbus vs cubic by default), so the score is the
   relative throughput deficit 1 - t0/t1; with a single scheme, the weakest
   absolute throughput. *)
let score_path cells =
  if List.exists (function Error _ -> true | Ok _ -> false) cells then
    infinity
  else
    match cells with
    | Ok (t0, _) :: Ok (t1, _) :: _ ->
      if t1 > 0. then 1. -. (t0 /. t1) else 0.
    | [ Ok (t0, _) ] -> -.t0
    | _ -> neg_infinity

(* keep the k worst, descending score, ties broken toward the lower path id
   (which insertion order provides: paths arrive in id order) *)
let note_worst agg ~k w =
  if k > 0 then begin
    let rec insert = function
      | [] -> [ w ]
      | x :: rest ->
        if w.w_score > x.w_score then w :: x :: rest else x :: insert rest
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    agg.worst <- take k (insert agg.worst)
  end

(* the one feed path shared by live shards and checkpoint resume: identical
   call sequence => bit-identical accumulator state *)
let feed_path cfg agg path cells =
  List.iteri
    (fun i cell ->
      let sa = agg.per_scheme.(i) in
      match cell with
      | Ok (tput, rtt) ->
        Stats.Welford.add sa.ag_tput tput;
        Stats.Welford.add sa.ag_rtt rtt;
        Stats.P2.add sa.ag_tput_p10 tput;
        Stats.P2.add sa.ag_tput_p50 tput;
        Stats.P2.add sa.ag_tput_p90 tput;
        Stats.P2.add sa.ag_rtt_p50 rtt;
        Stats.P2.add sa.ag_rtt_p95 rtt;
        (if i > 0 then
           match (List.nth cells 0, cell) with
           | Ok (t0, r0), Ok (ti, ri) ->
             let pr = agg.pairs.(i - 1) in
             pr.pr_n <- pr.pr_n + 1;
             if ti > 0. then begin
               let ratio = t0 /. ti in
               Stats.P2.add pr.pr_ratio_p50 ratio;
               if ratio < 0.9 then pr.pr_ratio_low <- pr.pr_ratio_low + 1
             end;
             let ddiff_ms = (r0 -. ri) *. 1e3 in
             Stats.P2.add pr.pr_ddiff_p50 ddiff_ms;
             if ddiff_ms < -5. then
               pr.pr_delay_better <- pr.pr_delay_better + 1
           | _ -> ())
      | Error (F_timeout _) ->
        sa.ag_timeouts <- sa.ag_timeouts + 1;
        agg.failures <- agg.failures + 1
      | Error (F_crash _) ->
        sa.ag_crashes <- sa.ag_crashes + 1;
        agg.failures <- agg.failures + 1)
    cells;
  agg.paths_done <- agg.paths_done + 1;
  note_worst agg ~k:cfg.sw_triage_k
    { w_score = score_path cells; w_path = path; w_cells = cells }

(* --- running one case ------------------------------------------------------ *)

(* per-case run seeds follow the Fig. 18 convention (500 + path id), so the
   first 25 nimbus cells of a sweep are exactly the figure's runs *)
let case_seed path = 500 + path.Path_model.p_id

let run_cell cfg path sch : cell =
  let label =
    Printf.sprintf "sweep/p%d/%s" path.Path_model.p_id sch.Common.scheme_name
  in
  let backoff ~attempt =
    if cfg.sw_backoff > 0. then
      cfg.sw_sleep
        (Float.min 1. (cfg.sw_backoff *. (2. ** float_of_int (attempt - 2))))
  in
  let f ~seed =
    let watchdog =
      if cfg.sw_budget > 0. then begin
        let deadline = cfg.sw_clock () +. cfg.sw_budget in
        Some
          (fun () -> if cfg.sw_clock () > deadline then raise Case_timeout)
      end
      else None
    in
    let o = Path_model.run ?watchdog cfg.sw_profile path sch ~seed in
    (o.Path_model.o_tput, o.Path_model.o_rtt)
  in
  match
    Common.run_case
      ~check:(fun (t, r) ->
        if Float.is_finite t && Float.is_finite r then None
        else Some "non-finite sweep statistic")
      ~attempts:(cfg.sw_retries + 1) ~backoff ~label ~seed:(case_seed path) f
  with
  | Ok cell -> Ok cell
  | Error c -> (
    match c.Common.crash_raw with
    | Case_timeout -> Error (F_timeout c.Common.crash_attempts)
    | _ -> Error (F_crash c.Common.crash_attempts))

(* one shard: the (path × scheme) matrix fanned over the ambient pool,
   results in input order *)
let run_shard cfg paths =
  let cases =
    List.concat_map
      (fun path -> List.map (fun sch -> (path, sch)) cfg.sw_schemes)
      paths
  in
  Common.map_cases
    ~f:(fun (path, sch) ->
      run_cell
        (cfg
        [@shared_ok
          "immutable sweep configuration built before the fan-out; its \
           clock/sleep closures are stateless wall-clock primitives"])
        path sch)
    cases

(* regroup a shard's path-major cell list into per-path rows *)
let rec chunk n = function
  | [] -> []
  | cells ->
    let rec split k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> invalid_arg "Sweep: short shard"
        | c :: tl -> split (k - 1) (c :: acc) tl
    in
    let row, rest = split n [] cells in
    row :: chunk n rest

(* --- tables ---------------------------------------------------------------- *)

let fmt_cell = function
  | Ok (tput, rtt) ->
    Printf.sprintf "%s Mb/%s ms" (Table.fmt_mbps tput) (Table.fmt_ms rtt)
  | Error (F_timeout k) -> Printf.sprintf "!timeout(%d att)" k
  | Error (F_crash k) -> Printf.sprintf "!crash(%d att)" k

let tables cfg agg ~triage_rows =
  let q p2 = Stats.P2.quantile p2 in
  let per_scheme =
    Table.make ~title:"Fleet sweep: per-scheme aggregate over sampled paths"
      ~header:
        [ "scheme"; "ok"; "timeout"; "crash"; "mean tput"; "sd"; "p10"; "p50";
          "p90"; "p50 rtt"; "p95 rtt" ]
      ~notes:
        [ Printf.sprintf
            "population: %d paths, seed %d, schemes %s; streaming P2/Welford \
             aggregation (O(1) memory, deterministic in shard order)"
            cfg.sw_paths cfg.sw_seed
            (String.concat ","
               (List.map (fun s -> s.Common.scheme_name) cfg.sw_schemes)) ]
      (Array.to_list
         (Array.map
            (fun sa ->
              [ sa.ag_name;
                string_of_int (Stats.Welford.count sa.ag_tput);
                string_of_int sa.ag_timeouts;
                string_of_int sa.ag_crashes;
                Table.fmt_mbps (Stats.Welford.mean sa.ag_tput);
                Table.fmt_mbps (Stats.Welford.stddev sa.ag_tput);
                Table.fmt_mbps (q sa.ag_tput_p10);
                Table.fmt_mbps (q sa.ag_tput_p50);
                Table.fmt_mbps (q sa.ag_tput_p90);
                Table.fmt_ms (q sa.ag_rtt_p50);
                Table.fmt_ms (q sa.ag_rtt_p95) ])
            agg.per_scheme))
  in
  let pair_tables =
    if Array.length agg.pairs = 0 then []
    else
      [ Table.make
          ~title:
            (Printf.sprintf "Fleet sweep: %s vs baselines (paired per path)"
               agg.per_scheme.(0).ag_name)
          ~header:
            [ "pair"; "paths"; "p50 tput ratio"; "ratio<0.9"; "p50 delay \
               diff (ms)"; "delay<-5ms" ]
          ~notes:
            [ "Fig 19 at fleet scale: tput ratio ~1 and delay diff <= 0 \
               nearly everywhere is the paper's distributional claim" ]
          (Array.to_list
             (Array.map
                (fun pr ->
                  let frac k =
                    if pr.pr_n = 0 then "-"
                    else Table.fmt_pct (float_of_int k /. float_of_int pr.pr_n)
                  in
                  [ pr.pr_name;
                    string_of_int pr.pr_n;
                    Table.fmt_float (q pr.pr_ratio_p50);
                    frac pr.pr_ratio_low;
                    Table.fmt_float (q pr.pr_ddiff_p50);
                    frac pr.pr_delay_better ])
                agg.pairs)) ]
  in
  let worst_table =
    if cfg.sw_triage_k = 0 then []
    else
      [ Table.make
          ~title:
            (Printf.sprintf "Fleet sweep: worst-%d outlier paths"
               cfg.sw_triage_k)
          ~header:
            ([ "path"; "profile"; "score" ]
            @ List.map (fun s -> s.Common.scheme_name) cfg.sw_schemes)
          ~notes:
            [ "score: failed case = inf; else relative tput deficit of \
               scheme0 vs scheme1 (1 - t0/t1); these paths are re-run by \
               the triage pass with tracing + invariants" ]
          (List.map
             (fun w ->
               [ string_of_int w.w_path.Path_model.p_id;
                 Path_model.describe w.w_path;
                 (if Float.is_finite w.w_score then
                    Table.fmt_float ~digits:3 w.w_score
                  else "inf") ]
               @ List.map fmt_cell w.w_cells)
             agg.worst) ]
  in
  ([ per_scheme ] @ pair_tables @ worst_table, triage_rows)

(* --- triage ---------------------------------------------------------------- *)

(* everything except per-packet lifecycle and engine sampling: small enough
   to archive per case, detailed enough to diagnose a detector anomaly *)
let triage_filter =
  "bottleneck,fault,flow,detector,spectrum,pulse,mode,election,invariant"

type triage_row = {
  tr_path : Path_model.t;
  tr_scheme : string;
  tr_result : (float * float * int, string) result;
      (* tput, rtt, violations | crash marker *)
  tr_trace : string; (* JSONL *)
}

let run_triage cfg agg =
  if cfg.sw_triage_k = 0 || agg.worst = [] then []
  else begin
    let mask =
      match Trace.parse_filter triage_filter with
      | Ok m -> m
      | Error msg -> invalid_arg ("Sweep: triage filter: " ^ msg)
    in
    let cases =
      List.concat_map
        (fun w ->
          List.map (fun sch -> (w.w_path, sch)) cfg.sw_schemes)
        agg.worst
    in
    let rows =
      Common.map_cases
        ~f:(fun (path, sch) ->
          let tbuf = Buffer.create 65536 in
          let tr = Trace.create ~mask () in
          Trace.attach tr (Sink.jsonl_buffer tbuf);
          let result =
            match
              Common.run_case ~attempts:1
                ~label:
                  (Printf.sprintf "triage/p%d/%s" path.Path_model.p_id
                     sch.Common.scheme_name)
                ~seed:(case_seed path)
                (fun ~seed ->
                  Fun.protect
                    ~finally:(fun () -> Trace.close tr)
                    (fun () ->
                      Path_model.run ~trace:tr ~invariants:true
                        (cfg
                        [@shared_ok
                          "immutable sweep configuration built before the \
                           fan-out"])
                          .sw_profile path sch ~seed))
            with
            | Ok o ->
              Ok (o.Path_model.o_tput, o.Path_model.o_rtt,
                  o.Path_model.o_violations)
            | Error c -> Error (Common.crash_cell c)
          in
          { tr_path = path; tr_scheme = sch.Common.scheme_name;
            tr_result = result; tr_trace = Buffer.contents tbuf })
        cases
    in
    (* archive in input order, in the coordinator: file set and contents are
       deterministic whatever the pool size *)
    (match cfg.sw_triage_dir with
     | None -> ()
     | Some dir ->
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       List.iter
         (fun row ->
           let file =
             Filename.concat dir
               (Printf.sprintf "path%d_%s.jsonl" row.tr_path.Path_model.p_id
                  row.tr_scheme)
           in
           let oc = open_out_bin file in
           output_string oc row.tr_trace;
           close_out oc)
         rows);
    rows
  end

let triage_table cfg rows =
  if rows = [] then []
  else
    [ Table.make ~title:"Fleet sweep: triage re-runs (traced, invariants on)"
        ~header:[ "path"; "profile"; "scheme"; "tput"; "rtt"; "violations";
                  "trace" ]
        ~notes:
          [ "worst-k outliers re-run with the invariant monitor and a \
             detector-focused trace; traces archived under --triage-dir" ]
        (List.map
           (fun row ->
             let tput, rtt, viol =
               match row.tr_result with
               | Ok (t, r, v) ->
                 (Table.fmt_mbps t, Table.fmt_ms r, string_of_int v)
               | Error marker -> ("-", "-", marker)
             in
             [ string_of_int row.tr_path.Path_model.p_id;
               Path_model.describe row.tr_path;
               row.tr_scheme; tput; rtt; viol;
               (match cfg.sw_triage_dir with
                | None -> "-"
                | Some dir ->
                  Filename.concat dir
                    (Printf.sprintf "path%d_%s.jsonl"
                       row.tr_path.Path_model.p_id row.tr_scheme)) ])
           rows) ]

(* --- the sweep ------------------------------------------------------------- *)

type outcome = {
  tables : Table.t list;
  interrupted : bool; (* sw_stop_after fired; tables are empty *)
  completed_shards : int;
  total_shards : int;
  paths_done : int;
  failures : int;
}

let run cfg =
  let nschemes = List.length cfg.sw_schemes in
  let total_shards = (cfg.sw_paths + cfg.sw_shard - 1) / cfg.sw_shard in
  let shard_paths idx =
    let base = idx * cfg.sw_shard in
    (base, min cfg.sw_shard (cfg.sw_paths - base))
  in
  let agg = create_agg cfg in
  let sampler = Path_model.sampler ~seed:cfg.sw_seed in
  let header = header_line cfg in
  (* resume: fold checkpointed shards through the same feed path a live
     shard takes, regenerating each shard's paths from the sampler so the
     stream stays aligned and triage still knows every path's profile *)
  let resumed =
    match cfg.sw_checkpoint with
    | Some path when cfg.sw_resume ->
      let loaded = ref 0 in
      let n =
        load_checkpoint path ~header ~accept:(fun ~base cells ->
            let exp_base, nb = shard_paths !loaded in
            if base <> exp_base || List.length cells <> nb * nschemes then
              false
            else begin
              let paths = List.init nb (fun _ -> Path_model.next sampler) in
              List.iter2 (feed_path cfg agg) paths (chunk nschemes cells);
              incr loaded;
              true
            end)
      in
      cfg.sw_log
        (Printf.sprintf "resume: %d/%d shard(s) restored from %s" n
           total_shards path);
      if cfg.sw_triage_only && n < total_shards then
        raise
          (Checkpoint_incomplete
             (Printf.sprintf
                "%s: --triage-only needs a complete checkpoint, but only \
                 %d/%d shard(s) are present — run the sweep (with --resume) \
                 to completion first"
                path n total_shards));
      n
    | Some path ->
      (* fresh sweep: truncate whatever was there *)
      write_fresh path ~header;
      0
    | None -> 0
  in
  let interrupted = ref false in
  let shard = ref resumed in
  while (not !interrupted) && !shard < total_shards do
    let idx = !shard in
    let base, nb = shard_paths idx in
    let paths = List.init nb (fun _ -> Path_model.next sampler) in
    let cells = run_shard cfg paths in
    (match cfg.sw_checkpoint with
     | Some path -> atomic_append path ~header (shard_line ~idx ~base cells)
     | None -> ());
    List.iter2 (feed_path cfg agg) paths (chunk nschemes cells);
    shard := idx + 1;
    cfg.sw_log
      (Printf.sprintf "shard %d/%d: %d case(s), %d failure(s) so far" (idx + 1)
         total_shards (nb * nschemes) agg.failures);
    match cfg.sw_stop_after with
    | Some n when !shard >= n ->
      interrupted := !shard < total_shards;
      if !interrupted then
        cfg.sw_log
          (Printf.sprintf "stopping after %d shard(s) (--stop-after)" !shard)
    | _ -> ()
  done;
  if !interrupted then
    { tables = []; interrupted = true; completed_shards = !shard;
      total_shards; paths_done = agg.paths_done; failures = agg.failures }
  else begin
    let triage_rows = run_triage cfg agg in
    let tables, triage_rows = tables cfg agg ~triage_rows in
    { tables = tables @ triage_table cfg triage_rows;
      interrupted = false; completed_shards = !shard; total_shards;
      paths_done = agg.paths_done; failures = agg.failures }
  end
