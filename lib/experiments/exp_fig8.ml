(* Fig. 8: eight schemes on a 96 Mbit/s link, 50 ms RTT, 2 BDP buffer, under
   the paper's scripted cross traffic ("xM" = x Mbit/s Poisson, "yT" = y
   long-running Cubic flows):

     16M/1T  32M/2T  0M/4T  0M/3T  0M/1T  16M/0T  32M/0T  48M/0T  16M/0T

   Mode-switching schemes should track the fair share with low delay in the
   inelastic phases; Cubic pays full-buffer delay everywhere; Vegas starves
   against elastic phases; BBR overshoots. *)

module Engine = Nimbus_sim.Engine
module Schedule = Nimbus_traffic.Schedule
module Accuracy = Nimbus_metrics.Accuracy
module Time = Units.Time
module Rate = Units.Rate

let id = "fig8"

let title = "Fig 8: scheme comparison under scripted cross traffic (96M/50ms/2BDP)"

let script = [ (16., 1); (32., 2); (0., 4); (0., 3); (0., 1);
               (16., 0); (32., 0); (48., 0); (16., 0) ]

let phase_len = 20.

let run_scheme (sch : Common.scheme) =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let net = Common.setup ~seed:8 l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let phases =
    List.mapi
      (fun i (m, t) ->
        Schedule.phase
          ~start:(Time.secs (float_of_int i *. phase_len))
          ~stop:(Time.secs (float_of_int (i + 1) *. phase_len))
          ~inelastic:(Rate.bps (m *. 1e6)) ~elastic_flows:t)
      script
  in
  let horizon = phase_len *. float_of_int (List.length script) in
  let sched = Schedule.install engine bn ~rng ~phases () in
  let running = sch.Common.start_flow net () in
  let stats = Common.instrument engine bn running ~until:(Time.secs horizon) in
  let accuracy = Accuracy.create () in
  (match running.Common.in_competitive with
   | Some mode ->
     Engine.every engine ~dt:(Time.ms 100.) ~start:(Time.secs 5.)
       ~until:(Time.secs horizon) (fun () ->
         let now = Engine.now engine in
         Accuracy.record accuracy ~predicted_elastic:(mode ())
           ~truth_elastic:(Schedule.elastic_present sched ~now))
   | None -> ());
  Engine.run_until engine (Time.secs horizon);
  let err_acc = ref 0. and err_n = ref 0 in
  let phase_rows =
    List.mapi
      (fun i (m, t) ->
        let lo = (float_of_int i *. phase_len) +. 5. in
        let hi = float_of_int (i + 1) *. phase_len in
        let fair = (Rate.to_bps l.Common.mu -. (m *. 1e6)) /. float_of_int (t + 1) in
        let tput = Common.mean stats.Common.tput_series ~lo ~hi in
        if not (Float.is_nan tput) then begin
          err_acc := !err_acc +. Float.abs (tput -. fair) /. fair;
          incr err_n
        end;
        (Printf.sprintf "%.0fM/%dT" m t, fair, tput,
         Common.mean stats.Common.qdelay_series ~lo ~hi))
      script
  in
  let mean_err = if !err_n = 0 then nan else !err_acc /. float_of_int !err_n in
  let qdelay = Common.mean stats.Common.qdelay_series ~lo:5. ~hi:horizon in
  let qdelay_inelastic =
    (* phases with no elastic flows: where low delay is achievable *)
    let acc = ref 0. and n = ref 0 in
    List.iteri
      (fun i (_, t) ->
        if t = 0 then begin
          let lo = (float_of_int i *. phase_len) +. 5. in
          let hi = float_of_int (i + 1) *. phase_len in
          let v = Common.mean stats.Common.qdelay_series ~lo ~hi in
          if not (Float.is_nan v) then begin
            acc := !acc +. v;
            incr n
          end
        end)
      script;
    if !n = 0 then nan else !acc /. float_of_int !n
  in
  let acc_cell =
    if Accuracy.samples accuracy = 0 then "-"
    else Table.fmt_pct (Accuracy.accuracy accuracy)
  in
  ( [ sch.Common.scheme_name;
      Table.fmt_pct mean_err;
      Table.fmt_ms qdelay;
      Table.fmt_ms qdelay_inelastic;
      acc_cell ],
    phase_rows )

let run (_ : Common.profile) =
  let schemes =
    [ Common.nimbus ();
      Common.nimbus ~name:"nimbus(copa)" ~delay:`Copa_default ();
      Common.cubic; Common.bbr; Common.vegas; Common.compound; Common.copa;
      Common.vivace ]
  in
  let results = List.map (fun s -> (s, run_scheme s)) schemes in
  let summary =
    Table.make ~title
      ~header:
        [ "scheme"; "mean |tput-fair|/fair"; "qdelay(ms)";
          "qdelay inelastic phases(ms)"; "mode accuracy" ]
      ~notes:
        [ "shape: nimbus variants have low fair-share error AND low delay in \
           inelastic phases; cubic/compound high delay everywhere; vegas \
           large error (starved) in elastic phases; copa switches but \
           flaps; bbr unfair" ]
      (List.map (fun (_, (row, _)) -> row) results)
  in
  let nimbus_phases =
    match results with
    | (_, (_, rows)) :: _ ->
      [ Table.make ~title:"Fig 8 detail: Nimbus per-phase tracking"
          ~header:[ "phase"; "fair(Mbps)"; "tput(Mbps)"; "qdelay(ms)" ]
          ~notes:[ "shape: tput tracks fair share within ~25% per phase" ]
          (List.map
             (fun (label, fair, tput, qd) ->
               [ label; Table.fmt_mbps fair; Table.fmt_mbps tput;
                 Table.fmt_ms qd ])
             rows) ]
    | [] -> []
  in
  summary :: nimbus_phases
