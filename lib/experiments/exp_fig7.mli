(** Fig 7: asymmetric sinusoidal pulse waveform *)

val id : string

val title : string

val run : Common.profile -> Table.t list
