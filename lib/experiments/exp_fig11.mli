(** Fig 11: throughput/delay against DASH video cross traffic *)

val id : string

val title : string

val run : Common.profile -> Table.t list
