(** Fig 14: classification accuracy vs Copa *)

val id : string

val title : string

val run : Common.profile -> Table.t list
