(* Fig. 15 (+ the mixed-RTT paragraph of §8.2): detection accuracy as the
   cross traffic's RTT varies from 0.2x to 4x the flow's, for purely elastic,
   purely inelastic, and mixed cross traffic; plus heterogeneous-RTT elastic
   mixes.  Accuracy should stay ≥ ~98% for the pure cases and ≥ ~80-85% for
   mixes at every ratio. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Source = Nimbus_traffic.Source
module Accuracy = Nimbus_metrics.Accuracy
module Time = Units.Time
module Rate = Units.Rate

let id = "fig15"

let title = "Fig 15: accuracy vs cross-traffic RTT"

type mix =
  | Elastic
  | Inelastic
  | Mixed

let case (p : Common.profile) ~mix ~ratio ~seed =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 120. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let cross_rtt = Time.scale ratio l.Common.prop_rtt in
  let truth_elastic =
    match mix with
    | Elastic | Mixed -> true
    | Inelastic -> false
  in
  (match mix with
   | Elastic ->
     ignore
       (Flow.create engine bn ~cc:(Nimbus_cc.Reno.make ()) ~prop_rtt:cross_rtt ());
     ignore
       (Flow.create engine bn ~cc:(Nimbus_cc.Reno.make ()) ~prop_rtt:cross_rtt ())
   | Inelastic ->
     ignore
       (Source.poisson engine bn ~rng:(Rng.split rng)
          ~rate:(Rate.scale 0.5 l.Common.mu) ())
   | Mixed ->
     ignore
       (Flow.create engine bn ~cc:(Nimbus_cc.Reno.make ()) ~prop_rtt:cross_rtt ());
     ignore
       (Source.poisson engine bn ~rng:(Rng.split rng)
          ~rate:(Rate.scale 0.25 l.Common.mu) ()));
  let running = (Common.nimbus ()).Common.start_flow net () in
  let accuracy = Accuracy.create () in
  (match running.Common.in_competitive with
   | Some mode ->
     Engine.every engine ~dt:(Time.ms 100.) ~start:(Time.secs 10.)
       ~until:(Time.secs horizon) (fun () ->
         Accuracy.record accuracy ~predicted_elastic:(mode ()) ~truth_elastic)
   | None -> ());
  Engine.run_until engine (Time.secs horizon);
  Accuracy.accuracy accuracy

let heterogeneous (p : Common.profile) ~flows ~seed =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 120. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  for n = 1 to flows do
    ignore
      (Flow.create engine bn ~cc:(Nimbus_cc.Reno.make ())
         ~prop_rtt:(Time.secs (0.02 *. float_of_int n)) ())
  done;
  let running = (Common.nimbus ()).Common.start_flow net () in
  let accuracy = Accuracy.create () in
  (match running.Common.in_competitive with
   | Some mode ->
     Engine.every engine ~dt:(Time.ms 100.) ~start:(Time.secs 10.)
       ~until:(Time.secs horizon) (fun () ->
         Accuracy.record accuracy ~predicted_elastic:(mode ())
           ~truth_elastic:true)
   | None -> ());
  Engine.run_until engine (Time.secs horizon);
  Accuracy.accuracy accuracy

let run (p : Common.profile) =
  let ratios = [ 0.2; 0.5; 1.; 2.; 4. ] in
  let sweep =
    Common.map_cases
      ~f:(fun (ratio, mix) -> case p ~mix ~ratio ~seed:15)
      (List.concat_map
         (fun ratio -> [ (ratio, Elastic); (ratio, Mixed); (ratio, Inelastic) ])
         ratios)
  in
  let sweep =
    List.mapi
      (fun i ratio ->
        [ Table.fmt_float ~digits:1 ratio;
          Table.fmt_pct (List.nth sweep (3 * i));
          Table.fmt_pct (List.nth sweep ((3 * i) + 1));
          Table.fmt_pct (List.nth sweep ((3 * i) + 2)) ])
      ratios
  in
  let hetero =
    Common.map_cases
      ~f:(fun flows ->
        [ string_of_int flows;
          Table.fmt_pct (heterogeneous p ~flows ~seed:16) ])
      [ 1; 2; 3; 4; 5 ]
  in
  [ Table.make ~title:"Fig 15: accuracy vs cross-traffic RTT ratio"
      ~header:[ "rtt ratio"; "elastic"; "mix"; "inelastic" ]
      ~notes:
        [ "shape: pure elastic/inelastic >= ~95% everywhere; mixes >= ~80%" ]
      sweep;
    Table.make
      ~title:"§8.2: heterogeneous cross-flow RTTs (n flows, RTT = 20n ms)"
      ~header:[ "elastic flows"; "accuracy" ]
      ~notes:[ "shape: RTT heterogeneity does not break detection (>= ~90%)" ]
      hetero ]
