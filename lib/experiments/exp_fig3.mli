(** Fig 3: self-inflicted delay does not reveal elasticity *)

val id : string

val title : string

val run : Common.profile -> Table.t list
