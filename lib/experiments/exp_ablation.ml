(* Ablations of the design choices DESIGN.md calls out:
   1. Eq. 3's relative band rule vs an absolute peak threshold — the peak
      height scales with cross-traffic volume, so no single absolute cut
      separates elastic from inelastic across volumes; the ratio does.
   2. Asymmetric vs symmetric pulses at a small link share — the symmetric
      pulse's negative lobe clips when S < A, weakening the signal.
   3. FFT window duration — short windows false-alarm on inelastic noise,
      long windows detect slowly.
   4. Time-domain cross-correlation (the paper's rejected strawman) vs the
      FFT — the strawman needs the unknown cross RTT for alignment and
      degrades when it differs from the flow's.
   5. Rate reset on switching to competitive mode — without it, recovery
      from the detection-window squeeze is slow.
   6. Memoryless switching (paper rule) vs hysteresis.
   7. Rectangular vs Hann analysis taper. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Source = Nimbus_traffic.Source
module Stats = Nimbus_dsp.Stats
module Accuracy = Nimbus_metrics.Accuracy
module Time = Units.Time
module Rate = Units.Rate

let id = "ablation"

let title = "Ablations of the detector/controller design choices"

(* shared runner: Nimbus vs configurable cross traffic, harvesting z samples,
   eta stream, mode stream *)
type obs = {
  etas : float array;
  peak_amps : float array; (* |FFT_z(fp)| at detections *)
  accuracy : float;
  z_samples : float array;
  s_samples : float array;
  tput_after : float; (* Mbps in a designated window *)
}

let observe (p : Common.profile) ?(share = 0.5) ?(pulse_shape = Nimbus_core.Pulse.Asymmetric)
    ?(fft_window = 5.) ?(switch_streak = 30) ?(rate_reset = true)
    ?(taper = Nimbus_dsp.Window.Hann) ~cross ~truth_elastic ~seed () =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 90. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  (match cross with
   | `Poisson rate ->
     ignore
       (Source.poisson engine bn ~rng:(Rng.split rng) ~rate:(Rate.bps rate) ())
   | `Cubic n ->
     for _ = 1 to n do
       ignore
         (Flow.create engine bn ~cc:(Nimbus_cc.Cubic.make ())
            ~prop_rtt:l.Common.prop_rtt ())
     done
   | `Cubic_rtt ratio ->
     ignore
       (Flow.create engine bn ~cc:(Nimbus_cc.Cubic.make ())
          ~prop_rtt:(Time.scale ratio l.Common.prop_rtt) ())
   | `Cubic_late at ->
     Engine.schedule_at engine (Time.secs at) (fun () ->
         ignore
           (Flow.create engine bn ~cc:(Nimbus_cc.Cubic.make ())
              ~prop_rtt:l.Common.prop_rtt ()))
   | `Mixed_for_share ->
     ignore
       (Source.poisson engine bn ~rng:(Rng.split rng)
          ~rate:(Rate.scale (1. -. share) l.Common.mu) ()));
  let etas = ref [] and amps = ref [] in
  let zs = ref [] and ss = ref [] in
  let nim =
    Nimbus.create
      { (Nimbus.Config.default ~mu:(Z.Mu.known l.Common.mu)) with
        pulse_shape; fft_window = Time.secs fft_window; switch_streak;
        rate_reset; taper = Some taper; seed = seed + 1;
        on_detection =
          Some
            (fun d ->
              if not (Float.is_nan d.Nimbus.d_eta) then
                etas := d.Nimbus.d_eta :: !etas);
        on_sample =
          Some
            (fun s ->
              let z = Rate.to_bps s.Nimbus.s_z in
              zs := (if Float.is_nan z then 0. else z) :: !zs;
              ss := Rate.to_bps s.Nimbus.s_send_rate :: !ss) }
  in
  let flow =
    Flow.create engine bn
      ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now engine))
      ~prop_rtt:l.Common.prop_rtt ()
  in
  Engine.every engine ~dt:(Time.ms 100.) ~start:(Time.secs 10.)
    ~until:(Time.secs horizon) (fun () ->
      amps :=
        Nimbus_core.Elasticity.peak_amplitude (Nimbus.detector nim)
          ~freq:(Nimbus.pulse_freq nim)
        :: !amps);
  let accuracy = Accuracy.create () in
  Engine.every engine ~dt:(Time.ms 100.) ~start:(Time.secs 10.)
    ~until:(Time.secs horizon) (fun () ->
      Accuracy.record accuracy
        ~predicted_elastic:(Nimbus.mode nim = Nimbus.Competitive)
        ~truth_elastic:(truth_elastic (Time.to_secs (Engine.now engine))));
  (* throughput over the last third *)
  let tput_lo = horizon *. 2. /. 3. in
  let bytes_at_lo = ref 0 in
  Engine.schedule_at engine (Time.secs tput_lo) (fun () ->
      bytes_at_lo := Flow.received_bytes flow);
  Engine.run_until engine (Time.secs horizon);
  let tput_after =
    float_of_int ((Flow.received_bytes flow - !bytes_at_lo) * 8)
    /. (horizon -. tput_lo) /. 1e6
  in
  { etas = Array.of_list !etas;
    peak_amps =
      Array.of_list (List.filter (fun a -> not (Float.is_nan a)) !amps);
    accuracy = Accuracy.accuracy accuracy;
    z_samples = Array.of_list (List.rev !zs);
    s_samples = Array.of_list (List.rev !ss);
    tput_after }

let always b _ = b

let median_or_nan a = if Array.length a = 0 then nan else Stats.median a

(* 1: relative vs absolute rule *)
let ablation_relative p =
  let run cross truth seed = observe p ~cross ~truth_elastic:(always truth) ~seed () in
  let cases =
    [ ("elastic, 1 cubic", run (`Cubic 1) true 41);
      ("elastic, 3 cubic", run (`Cubic 3) true 42);
      ("inelastic 24M", run (`Poisson 24e6) false 43);
      ("inelastic 72M", run (`Poisson 72e6) false 44) ]
  in
  Table.make
    ~title:"Ablation 1: Eq. 3 ratio vs absolute |FFT(fp)| threshold"
    ~header:[ "cross traffic"; "median |FFT(fp)| (Mbps)"; "median eta" ]
    ~notes:
      [ "shape: absolute peak heights of inelastic-72M overlap elastic \
         cases (volume-dependent), so no absolute threshold works; eta \
         separates cleanly" ]
    (List.map
       (fun (label, o) ->
         [ label;
           Table.fmt_float ~digits:1 (median_or_nan o.peak_amps /. 1e6);
           Table.fmt_float (median_or_nan o.etas) ])
       cases)

(* 2: pulse shape at small share *)
let ablation_shape p =
  let run shape seed =
    observe p ~share:0.125 ~pulse_shape:shape ~cross:`Mixed_for_share
      ~truth_elastic:(always false) ~seed ()
  in
  (* also against elastic cross traffic at low share *)
  let run_elastic shape seed =
    observe p ~pulse_shape:shape ~cross:(`Cubic 7)
      ~truth_elastic:(always true) ~seed ()
  in
  let a_i = run Nimbus_core.Pulse.Asymmetric 45 in
  let s_i = run Nimbus_core.Pulse.Symmetric 45 in
  let a_e = run_elastic Nimbus_core.Pulse.Asymmetric 46 in
  let s_e = run_elastic Nimbus_core.Pulse.Symmetric 46 in
  Table.make ~title:"Ablation 2: asymmetric vs symmetric pulse at small share"
    ~header:[ "pulse"; "acc inelastic(share 1/8)"; "acc elastic(share 1/8)" ]
    ~notes:
      [ "shape: the symmetric pulse clips when S < A = mu/4, degrading \
         detection at small shares; the asymmetric pulse only needs mu/12" ]
    [ [ "asymmetric"; Table.fmt_pct a_i.accuracy; Table.fmt_pct a_e.accuracy ];
      [ "symmetric"; Table.fmt_pct s_i.accuracy; Table.fmt_pct s_e.accuracy ] ]

(* 3: FFT window duration *)
let ablation_window p =
  let rows =
    List.map
      (fun w ->
        let inelastic =
          observe p ~fft_window:w ~cross:(`Poisson 48e6)
            ~truth_elastic:(always false) ~seed:47 ()
        in
        let arrival = 30. in
        let late =
          observe p ~fft_window:w ~cross:(`Cubic_late arrival)
            ~truth_elastic:(fun now -> now > arrival) ~seed:48 ()
        in
        [ Printf.sprintf "%.1f s" w;
          Table.fmt_pct inelastic.accuracy;
          Table.fmt_pct late.accuracy ])
      [ 2.5; 5.; 10. ]
  in
  Table.make ~title:"Ablation 3: FFT window duration"
    ~header:[ "window"; "acc pure inelastic"; "acc elastic arrival @30s" ]
    ~notes:
      [ "shape: short windows false-alarm on inelastic noise; long windows \
         react slowly to the elastic arrival; 5 s balances both" ]
    rows

(* 4: time-domain cross-correlation strawman *)
let xcorr_detects z s ~max_lag =
  if Array.length z < 100 then false
  else begin
    let s = Array.map (fun x -> if Float.is_nan x then 0. else x) s in
    let corr = Stats.cross_correlation s z ~max_lag in
    Array.exists (fun c -> Float.abs c > 0.25) corr
  end

let ablation_xcorr p =
  let rows =
    List.map
      (fun ratio ->
        let o =
          observe p ~cross:(`Cubic_rtt ratio) ~truth_elastic:(always true)
            ~seed:49 ()
        in
        (* strawman looks for correlation at lags up to 2x OWN rtt *)
        let n = Array.length o.z_samples in
        let tail k a = Array.sub a (max 0 (Array.length a - k)) (min k (Array.length a)) in
        let z = tail (min n 2000) o.z_samples in
        let s = tail (min n 2000) o.s_samples in
        let detected = xcorr_detects z s ~max_lag:20 in
        [ Table.fmt_float ~digits:1 ratio;
          (if detected then "elastic" else "inelastic");
          Table.fmt_pct o.accuracy ])
      [ 1.; 3. ]
  in
  Table.make
    ~title:"Ablation 4: time-domain cross-correlation strawman vs FFT"
    ~header:[ "cross RTT ratio"; "xcorr verdict"; "FFT detector accuracy" ]
    ~notes:
      [ "shape: the strawman needs S/z alignment at the (unknown) cross \
         RTT and degrades as it grows; the frequency-domain detector does \
         not" ]
    rows

(* 5/6: rate reset and hysteresis *)
let ablation_control p =
  let arrival = 30. in
  let run ~rate_reset ~switch_streak seed =
    observe p ~rate_reset ~switch_streak ~cross:(`Cubic_late arrival)
      ~truth_elastic:(fun now -> now > arrival) ~seed ()
  in
  let base = run ~rate_reset:true ~switch_streak:30 50 in
  let no_reset = run ~rate_reset:false ~switch_streak:30 50 in
  let memoryless = run ~rate_reset:true ~switch_streak:1 50 in
  Table.make ~title:"Ablation 5/6: rate reset and switching hysteresis"
    ~header:[ "variant"; "mode accuracy"; "tput last-third (Mbps)" ]
    ~notes:
      [ "shape: disabling the rate reset slows recovery after the \
         detection-window squeeze; memoryless switching (the paper's rule \
         verbatim) flaps under marginal eta and loses throughput" ]
    [ [ "reset + hysteresis (default)"; Table.fmt_pct base.accuracy;
        Table.fmt_float ~digits:1 base.tput_after ];
      [ "no rate reset"; Table.fmt_pct no_reset.accuracy;
        Table.fmt_float ~digits:1 no_reset.tput_after ];
      [ "memoryless switching"; Table.fmt_pct memoryless.accuracy;
        Table.fmt_float ~digits:1 memoryless.tput_after ] ]

(* 7: taper *)
let ablation_taper p =
  let run taper seed =
    ( observe p ~taper ~cross:(`Cubic 1) ~truth_elastic:(always true) ~seed (),
      observe p ~taper ~cross:(`Poisson 48e6) ~truth_elastic:(always false)
        ~seed () )
  in
  let h_e, h_i = run Nimbus_dsp.Window.Hann 51 in
  let r_e, r_i = run Nimbus_dsp.Window.Rectangular 51 in
  Table.make ~title:"Ablation 7: analysis taper (Hann vs rectangular)"
    ~header:[ "taper"; "acc elastic"; "acc inelastic"; "median eta elastic" ]
    ~notes:
      [ "shape: the rectangular window leaks the non-stationary pulse \
         harmonics into the comparison band, deflating eta on elastic \
         traffic" ]
    [ [ "hann"; Table.fmt_pct h_e.accuracy; Table.fmt_pct h_i.accuracy;
        Table.fmt_float (median_or_nan h_e.etas) ];
      [ "rectangular"; Table.fmt_pct r_e.accuracy; Table.fmt_pct r_i.accuracy;
        Table.fmt_float (median_or_nan r_e.etas) ] ]

let run (p : Common.profile) =
  [ ablation_relative p; ablation_shape p; ablation_window p;
    ablation_xcorr p; ablation_control p; ablation_taper p ]
