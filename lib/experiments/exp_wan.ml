(* Fig. 9 / Fig. 10 / Appendix B (Fig. 21): trace-driven evaluation with
   heavy-tailed WAN cross traffic at 50% load on a 96 Mbit/s, 50 ms, 100 ms
   buffer link (our synthetic CAIDA substitute; see DESIGN.md).

   Fig. 9:  throughput and RTT distributions per scheme.
   Fig. 10: low-percentile throughput — Copa's drops against elastic flows.
   Fig. 21: p95 FCT of the cross-flows by flow size, normalized to Nimbus. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Wan = Nimbus_traffic.Wan
module Fct = Nimbus_metrics.Fct
module Stats = Nimbus_dsp.Stats
module Time = Units.Time
module Rate = Units.Rate

let id = "wan"

let title = "Fig 9/10/21: WAN cross-traffic workload"

type result = {
  name : string;
  tput : Nimbus_metrics.Series.t;
  rtt : Nimbus_metrics.Series.t;
  fcts : (int * Units.Time.t) array;
}

let run_scheme (p : Common.profile) ~seed ~load_frac (sch : Common.scheme) =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 120. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let wan =
    Wan.create engine bn ~rng:(Rng.split rng)
      ~load:(Rate.scale load_frac l.Common.mu) ()
  in
  let running = sch.Common.start_flow net () in
  let stats = Common.instrument engine bn running ~until:(Time.secs horizon) in
  Engine.run_until engine (Time.secs horizon);
  { name = sch.Common.scheme_name;
    tput = stats.Common.tput_series;
    rtt = stats.Common.rtt_series;
    fcts = Wan.fcts wan }

let run (p : Common.profile) =
  let schemes =
    Common.nimbus () :: Common.cubic :: Common.bbr :: Common.vegas
    :: Common.copa :: Common.vivace :: []
  in
  let results = List.map (run_scheme p ~seed:9 ~load_frac:0.5) schemes in
  let horizon = Common.scaled p 120. in
  let lo = 10. and hi = horizon in
  let fig9 =
    Table.make
      ~title:"Fig 9: throughput and RTT distributions under WAN cross traffic"
      ~header:
        [ "scheme"; "tput p25"; "p50"; "p75"; "rtt p50(ms)"; "rtt p95(ms)" ]
      ~notes:
        [ "shape: nimbus p50 tput ~cubic/bbr; nimbus p50 rtt well below \
           cubic/bbr, near vegas; vegas/copa lose throughput" ]
      (List.map
         (fun r ->
           [ r.name;
             Table.fmt_mbps (Common.pct r.tput ~lo ~hi 25.);
             Table.fmt_mbps (Common.pct r.tput ~lo ~hi 50.);
             Table.fmt_mbps (Common.pct r.tput ~lo ~hi 75.);
             Table.fmt_ms (Common.pct r.rtt ~lo ~hi 50.);
             Table.fmt_ms (Common.pct r.rtt ~lo ~hi 95.) ])
         results)
  in
  let fig10 =
    let interesting =
      List.filter (fun r -> r.name = "nimbus" || r.name = "copa") results
    in
    Table.make ~title:"Fig 10: low-percentile throughput (starvation periods)"
      ~header:[ "scheme"; "tput p5"; "p10"; "p20" ]
      ~notes:
        [ "shape: copa's low percentiles collapse (incorrect mode against \
           elastic flows); nimbus holds its share" ]
      (List.map
         (fun r ->
           [ r.name;
             Table.fmt_mbps (Common.pct r.tput ~lo ~hi 5.);
             Table.fmt_mbps (Common.pct r.tput ~lo ~hi 10.);
             Table.fmt_mbps (Common.pct r.tput ~lo ~hi 20.) ])
         interesting)
  in
  let nimbus_p95 =
    match results with
    | r :: _ -> Fct.p95 (Fct.bucketize r.fcts)
    | [] -> [||]
  in
  let fig21 =
    Table.make
      ~title:
        "Fig 21 (App B): p95 cross-flow FCT by size, normalized to Nimbus"
      ~header:
        ("scheme"
        :: Array.to_list (Array.map Fct.bucket_label Fct.default_buckets))
      ~notes:
        [ "shape: bbr/vivace inflate cross-flow FCTs at all sizes; nimbus \
           comparable to cubic, slightly better for short flows; vegas \
           gentlest" ]
      (List.map
         (fun r ->
           let p95 = Fct.p95 (Fct.bucketize r.fcts) in
           r.name
           :: Array.to_list
                (Array.mapi
                   (fun i v ->
                     if
                       i < Array.length nimbus_p95
                       && (not (Float.is_nan nimbus_p95.(i)))
                       && nimbus_p95.(i) > 0.
                     then Table.fmt_float (v /. nimbus_p95.(i))
                     else "-")
                   p95))
         results)
  in
  ignore Stats.mean;
  [ fig9; fig10; fig21 ]
