(* §3.1: accuracy of the cross-traffic rate estimator ẑ = µ·S/R − S.
   Ground truth is the cross traffic's departure rate measured at the
   bottleneck over matching one-second windows.  Paper: relative error
   p50 ≈ 1.3%, p95 ≈ 7.5%. *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Source = Nimbus_traffic.Source
module Stats = Nimbus_dsp.Stats
module Time = Units.Time
module Rate = Units.Rate

let id = "zest"

let title = "§3.1: cross-traffic rate estimator accuracy"

let case (p : Common.profile) ~label ~seed ~install =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 60. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let cross_ids = install engine bn l rng in
  let z_acc = ref 0. and z_n = ref 0 in
  let nim =
    Nimbus.create
      { (Nimbus.Config.default ~mu:(Z.Mu.known l.Common.mu)) with
        on_sample =
          Some
            (fun s ->
              let z = Rate.to_bps s.Nimbus.s_z in
              if not (Float.is_nan z) then begin
                z_acc := !z_acc +. z;
                incr z_n
              end) }
  in
  ignore
    (Flow.create engine bn
       ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now engine))
       ~prop_rtt:l.Common.prop_rtt ());
  let errors = ref [] in
  let prev = ref 0 in
  Engine.every engine ~dt:(Time.secs 1.0) ~start:(Time.secs 10.)
    ~until:(Time.secs horizon) (fun () ->
      let delivered =
        List.fold_left
          (fun acc fid -> acc + Bottleneck.delivered_bytes bn ~flow:fid)
          0 cross_ids
      in
      let truth = float_of_int ((delivered - !prev) * 8) /. 1.0 in
      prev := delivered;
      if !z_n > 0 && truth > 1e6 then begin
        let z_mean = !z_acc /. float_of_int !z_n in
        errors :=
          Stats.relative_error ~actual:z_mean ~expected:truth :: !errors
      end;
      z_acc := 0.;
      z_n := 0);
  Engine.run_until engine (Time.secs horizon);
  let errs = Array.of_list !errors in
  (label, errs)

let run (p : Common.profile) =
  (* each (pattern, seed) pair is an independent simulation; full profiles
     pool the error samples of [p.seeds] consecutive seeds per pattern *)
  let specs =
    [ ( "Poisson 24M", 31,
        fun e b _ r ->
          [ Source.flow_id
              (Source.poisson e b ~rng:(Rng.split r) ~rate:(Rate.bps 24e6) ())
          ] );
      ( "CBR 48M", 32,
        fun e b _ _ ->
          [ Source.flow_id (Source.cbr e b ~rate:(Rate.bps 48e6) ()) ] );
      ( "1 Cubic", 33,
        fun e b l _ ->
          [ Flow.id
              (Flow.create e b ~cc:(Nimbus_cc.Cubic.make ())
                 ~prop_rtt:l.Common.prop_rtt ()) ] );
      ( "2 Cubic + Poisson 16M", 34,
        fun e b l r ->
          let f1 =
            Flow.create e b ~cc:(Nimbus_cc.Cubic.make ())
              ~prop_rtt:l.Common.prop_rtt ()
          in
          let f2 =
            Flow.create e b ~cc:(Nimbus_cc.Cubic.make ())
              ~prop_rtt:(Time.scale 1.5 l.Common.prop_rtt) ()
          in
          let s =
            Source.poisson e b ~rng:(Rng.split r) ~rate:(Rate.bps 16e6) ()
          in
          [ Flow.id f1; Flow.id f2; Source.flow_id s ] ) ]
  in
  let cases =
    Common.map_cases
      ~f:(fun (label, base, install) ->
        let per_seed =
          Common.run_seeds p ~base (fun ~seed ->
              case p ~label ~seed
                ~install:
                  (install
                  [@shared_ok
                    "immutable scenario installer from the spec list; it \
                     populates the fresh per-run engine it is handed"]))
        in
        (label, Array.concat (List.map snd per_seed)))
      specs
  in
  let rows =
    List.map
      (fun (label, errs) ->
        if Array.length errs = 0 then [ label; "-"; "-"; "-" ]
        else
          [ label;
            string_of_int (Array.length errs);
            Table.fmt_pct (Stats.percentile errs 50.);
            Table.fmt_pct (Stats.percentile errs 95.) ])
      cases
  in
  [ Table.make ~title
      ~header:[ "cross traffic"; "windows"; "rel err p50"; "rel err p95" ]
      ~notes:
        [ "paper: p50 = 1.3%, p95 = 7.5% -- expect single-digit p50 and \
           p95 within a few tens of percent across patterns" ]
      rows ]
