(** The synthetic Internet-path population behind Fig. 18/19 and the fleet
    sweep (see DESIGN.md §16).

    One sequential splitmix64 stream, a fixed number of draws per path: the
    first [k] paths of any sample are identical whatever the total count, so
    the 25-path figure and a 10^5-path sweep describe the same population. *)

type t = {
  p_id : int;  (** index in the sampled population *)
  mbps : float;
  rtt_ms : float;
  buffer_bdp : float;  (** buffer as a multiple of the BDP *)
  loss : float;  (** random loss probability; [0.] on non-lossy paths *)
  policed : bool;
  wan_load : float;  (** background traffic as a fraction of the link *)
}

(** A stateful sequential generator producing paths [0, 1, 2, ...]. *)
type sampler

val sampler : seed:int -> sampler

(** [next s] draws the next path; O(1), six RNG draws. *)
val next : sampler -> t

(** [skip s n] discards the next [n] paths (resume: the stream must still
    advance through checkpointed shards). *)
val skip : sampler -> int -> unit

(** [sample ~count ~seed] is the first [count] paths of the stream. *)
val sample : count:int -> seed:int -> t list

(** [kind path] is ["lossy"], ["policed"] or ["buffered"]. *)
val kind : t -> string

(** [describe path] — the figure/table profile cell, e.g. ["48M/50ms/lossy"]. *)
val describe : t -> string

type outcome = {
  o_tput : float;  (** mean throughput over [8 s, horizon], bps *)
  o_rtt : float;  (** mean RTT over the same window, seconds *)
  o_violations : int;  (** invariant violations; [0] when not monitored *)
}

(** [run p path scheme ~seed] simulates one scheme over one path: the
    bottleneck is built from the path profile (droptail buffer, optional
    random loss and policing), background WAN load is attached, and the
    scheme's flow runs to the profile-scaled horizon.

    @param trace the run's collector (installed on engine and bottleneck)
    @param watchdog polled once per simulated second; raise to abort the
           case (the sweep's wall-clock budget)
    @param invariants run the {!Nimbus_metrics.Invariant} monitor and report
           its violation count (default off) *)
val run :
  ?trace:Nimbus_trace.Trace.t ->
  ?watchdog:(unit -> unit) ->
  ?invariants:bool ->
  Common.profile ->
  t ->
  Common.scheme ->
  seed:int ->
  outcome
