(* The synthetic Internet-path population behind Fig. 18/19 and the fleet
   sweep.  Factored out of exp_internet_paths so the 25-path figure and the
   10^4+-path Monte-Carlo sweep draw from the *same* distribution: one
   sequential splitmix64 stream, six draws per path, so the first [k] paths
   of any sample are identical whatever the total count.

   Ranges follow the paper's testbed diversity: 20-100 Mbit/s, 20-120 ms,
   0.5-3 BDP of buffering, 20% of paths lossy (0.1-1% random loss), 12% of
   the rest policed at 85% of line rate, plus 10-50% background WAN load. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Topology = Nimbus_topology.Topology
module Wan = Nimbus_traffic.Wan
module Invariant = Nimbus_metrics.Invariant
module Time = Units.Time
module Rate = Units.Rate

type t = {
  p_id : int;
  mbps : float;
  rtt_ms : float;
  buffer_bdp : float;
  loss : float; (* random loss probability *)
  policed : bool;
  wan_load : float; (* background traffic as a fraction of the link *)
}

type sampler = {
  rng : Rng.t;
  mutable next_id : int;
}

let sampler ~seed = { rng = Rng.create seed; next_id = 0 }

let next s =
  let rng = s.rng in
  let i = s.next_id in
  s.next_id <- i + 1;
  (* draw order is part of the format: six draws per path, lossy/policed
     coins first — changing it would silently resample every figure *)
  let lossy = Rng.uniform rng < 0.2 in
  let policed = (not lossy) && Rng.uniform rng < 0.12 in
  { p_id = i;
    mbps = Rng.range rng ~lo:20. ~hi:100.;
    rtt_ms = Rng.range rng ~lo:20. ~hi:120.;
    buffer_bdp = Rng.range rng ~lo:0.5 ~hi:3.;
    loss = (if lossy then Rng.range rng ~lo:0.001 ~hi:0.01 else 0.);
    policed;
    wan_load = Rng.range rng ~lo:0.1 ~hi:0.5 }

let skip s n =
  for _ = 1 to n do
    ignore (next s)
  done

let sample ~count ~seed =
  let s = sampler ~seed in
  (* explicit loop: the stream is sequential, so paths must be drawn in id
     order whatever List.init's evaluation order is *)
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (next s :: acc) in
  go count []

let kind path =
  if path.loss > 0. then "lossy"
  else if path.policed then "policed"
  else "buffered"

let describe path =
  Printf.sprintf "%.0fM/%.0fms/%s" path.mbps path.rtt_ms (kind path)

let setup ?(trace = Nimbus_trace.Trace.disabled) path ~seed =
  let engine = Engine.create { trace } in
  let rng = Rng.create seed in
  let mu = path.mbps *. 1e6 in
  let prop_rtt = path.rtt_ms /. 1e3 in
  let capacity_bytes =
    max (4 * 1500) (int_of_float (mu *. prop_rtt *. path.buffer_bdp /. 8.))
  in
  let qdisc = Qdisc.droptail ~capacity_bytes in
  let random_loss =
    if path.loss > 0. then Some (path.loss, Rng.split rng) else None
  in
  let policer =
    if path.policed then Some (Rate.bps (mu *. 0.85), 50 * 1500) else None
  in
  let topo, route =
    Topology.dumbbell engine
      { bottleneck =
          { (Bottleneck.Config.default ~rate:(Rate.bps mu) ~qdisc) with
            random_loss; policer; trace };
        prop_delay = Time.zero }
  in
  let bn = Topology.link_bottleneck (List.hd (Topology.Route.links route)) in
  let l =
    { Common.mu = Rate.bps mu;
      prop_rtt = Time.secs prop_rtt;
      buffer_bdp = path.buffer_bdp;
      aqm = `Droptail }
  in
  let net =
    { Common.engine; topo; route; bottleneck = bn; rng; net_link = l }
  in
  (net, mu, prop_rtt)

type outcome = {
  o_tput : float; (* mean throughput over [8 s, horizon], bps *)
  o_rtt : float; (* mean RTT over the same window, seconds *)
  o_violations : int; (* 0 when [invariants] was off *)
}

let run ?trace ?watchdog ?(invariants = false) (p : Common.profile) path
    (sch : Common.scheme) ~seed =
  let net, mu, prop_rtt = setup ?trace path ~seed in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let horizon = Common.scaled p 60. in
  if path.wan_load > 0. then
    ignore
      (Wan.create engine bn ~rng:(Rng.split rng) ~prop_rtt:(Time.secs prop_rtt)
         ~load:(Rate.bps (path.wan_load *. mu)) ());
  let running = sch.Common.start_flow net () in
  let monitor =
    if invariants then
      Some
        (Invariant.create engine ~bottleneck:bn
           ~nimbus:
             (match running.Common.nimbus with
              | Some nim -> [ (sch.Common.scheme_name, nim) ]
              | None -> [])
           ())
    else None
  in
  (* cooperative watchdog: polled once per simulated second so a case that
     blows its wall-clock budget raises out of [Engine.run_until] instead of
     hanging its pool domain (a callback that never returns is out of scope —
     there is no safe preemption across domains) *)
  (match watchdog with
   | None -> ()
   | Some check -> Engine.every engine ~dt:(Time.secs 1.0) check);
  let stats = Common.instrument engine bn running ~until:(Time.secs horizon) in
  Engine.run_until engine (Time.secs horizon);
  { o_tput = Common.mean stats.Common.tput_series ~lo:8. ~hi:horizon;
    o_rtt = Common.mean stats.Common.rtt_series ~lo:8. ~hi:horizon;
    o_violations =
      (match monitor with None -> 0 | Some m -> Invariant.count m) }
