(** Fig 17: multiple Nimbus flows + elastic then inelastic cross traffic *)

val id : string

val title : string

val run : Common.profile -> Table.t list
