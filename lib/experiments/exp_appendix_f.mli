(** Fig 26 (App F): detecting PCC-Vivace by lowering the pulse frequency *)

val id : string

val title : string

val run : Common.profile -> Table.t list
