(* Appendix F (Fig. 26): detecting non-ACK-clocked elastic traffic by slowing
   the pulse.  PCC-Vivace reacts on monitor-interval timescales, invisible to
   5 Hz pulses but visible at 2 Hz. *)

module Engine = Nimbus_sim.Engine
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Stats = Nimbus_dsp.Stats
module Time = Units.Time
module Freq = Units.Freq

let id = "appf"

let title = "Fig 26 (App F): detecting PCC-Vivace by lowering the pulse frequency"

let case (p : Common.profile) ~fp ~seed =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 120. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  ignore
    (Flow.create engine bn ~cc:(Nimbus_cc.Vivace.make ())
       ~prop_rtt:l.Common.prop_rtt ());
  let etas = ref [] in
  let nim =
    Nimbus.create
      { (Nimbus.Config.default ~mu:(Z.Mu.known l.Common.mu)) with
        fp_competitive = Freq.hz fp;
        on_detection =
          Some
            (fun d ->
              if not (Float.is_nan d.Nimbus.d_eta) then
                etas := d.Nimbus.d_eta :: !etas) }
  in
  ignore
    (Flow.create engine bn
       ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now engine))
       ~prop_rtt:l.Common.prop_rtt ());
  Engine.run_until engine (Time.secs horizon);
  Array.of_list !etas

let run (p : Common.profile) =
  let rows =
    List.map
      (fun fp ->
        let etas = case p ~fp ~seed:26 in
        let frac_elastic =
          if Array.length etas = 0 then nan
          else begin
            let k =
              Array.fold_left (fun a e -> if e >= 2. then a + 1 else a) 0 etas
            in
            float_of_int k /. float_of_int (Array.length etas)
          end
        in
        [ Printf.sprintf "%.0f Hz" fp;
          Table.fmt_float (if Array.length etas = 0 then nan else Stats.median etas);
          Table.fmt_pct frac_elastic ])
      [ 5.; 2. ]
  in
  [ Table.make ~title
      ~header:[ "pulse freq"; "median eta"; "classified elastic" ]
      ~notes:
        [ "shape: at 5 Hz vivace reads inelastic (eta mostly < 2); at 2 Hz \
           the longer pulses catch its monitor-interval reaction" ]
      rows ]
