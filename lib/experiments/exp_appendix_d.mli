(** Fig 23/24 (App D): Copa failure modes vs Nimbus *)

val id : string

val title : string

val run : Common.profile -> Table.t list
