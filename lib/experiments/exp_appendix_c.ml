(* Appendix C (Fig. 22): competing with BBR across buffer sizes.  In shallow
   buffers BBR is rate-based and over-aggressive (both Nimbus and Cubic get
   little); in deep buffers BBR becomes CWND-limited/ACK-clocked, Nimbus
   classifies it elastic and competes like Cubic.  The claim: Nimbus ≈ Cubic
   at every buffer size. *)

module Engine = Nimbus_sim.Engine
module Flow = Nimbus_cc.Flow
module Time = Units.Time

let id = "appc"

let title = "Fig 22 (App C): throughput vs one BBR flow across buffer sizes"

let case (p : Common.profile) ~buffer_bdp ~seed (sch : Common.scheme) =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp () in
  let horizon = Common.scaled p 120. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  ignore
    (Flow.create engine bn ~cc:(Nimbus_cc.Bbr.make ())
       ~prop_rtt:l.Common.prop_rtt ());
  let running = sch.Common.start_flow net () in
  let stats = Common.instrument engine bn running ~until:(Time.secs horizon) in
  Engine.run_until engine (Time.secs horizon);
  Common.mean stats.Common.tput_series ~lo:10. ~hi:horizon

let run (p : Common.profile) =
  let buffers = [ 0.5; 1.; 2.; 4. ] in
  let rows =
    List.map
      (fun buffer_bdp ->
        let nim = case p ~buffer_bdp ~seed:22 (Common.nimbus ()) in
        let cub = case p ~buffer_bdp ~seed:22 Common.cubic in
        [ Table.fmt_float ~digits:1 buffer_bdp; Table.fmt_mbps nim;
          Table.fmt_mbps cub ])
      buffers
  in
  [ Table.make ~title
      ~header:[ "buffer (BDP)"; "nimbus tput(Mbps)"; "cubic tput(Mbps)" ]
      ~notes:
        [ "shape: nimbus ~cubic at every buffer size; both small in shallow \
           buffers (BBR over-aggressive), larger in deep buffers" ]
      rows ]
