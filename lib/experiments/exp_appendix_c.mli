(** Fig 22 (App C): throughput vs one BBR flow across buffer sizes *)

val id : string

val title : string

val run : Common.profile -> Table.t list
