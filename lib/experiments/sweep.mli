(** Fleet-scale Monte-Carlo path sweep (DESIGN.md §16).

    Runs the {!Path_model} population at 10^4+ paths over a protocol matrix,
    sharded across the ambient pool, with checkpointed resume, a per-case
    wall-clock watchdog with seed-rekeyed retries, O(1)-memory streaming
    aggregation (P² quantiles + Welford moments), and automatic triage
    re-runs of the worst-k outlier paths. *)

(** Raised (by the watchdog closure, inside the engine loop) when a case
    exceeds its per-attempt wall-clock budget. *)
exception Case_timeout

(** Raised when [sw_resume] finds a checkpoint whose header was written by a
    sweep with different parameters. *)
exception Checkpoint_incompatible of string

(** Raised when [sw_triage_only] is set but the checkpoint does not cover
    every shard: triage can only be replayed from a complete sweep. *)
exception Checkpoint_incomplete of string

type failure =
  | F_timeout of int  (** attempts consumed *)
  | F_crash of int

(** One (path, scheme) result: throughput (bps) and mean RTT (secs), or a
    typed failure after retries were exhausted. *)
type cell = (float * float, failure) result

type config = {
  sw_paths : int;
  sw_seed : int;  (** {!Path_model.sampler} seed *)
  sw_schemes : Common.scheme list;
  sw_profile : Common.profile;
  sw_shard : int;  (** paths per shard (checkpoint granularity) *)
  sw_budget : float;  (** wall secs per case attempt; [<= 0.] disables *)
  sw_retries : int;  (** retries after the first attempt *)
  sw_backoff : float;  (** base retry delay, secs; doubles, capped at 1 s *)
  sw_checkpoint : string option;
  sw_resume : bool;
  sw_stop_after : int option;
      (** stop once this many shards are complete (interrupt injection for
          tests/CI; the outcome is flagged [interrupted]) *)
  sw_triage_k : int;
  sw_triage_dir : string option;
  sw_triage_only : bool;
      (** skip the shard loop entirely: restore every shard from the
          checkpoint (implies [sw_resume]) and go straight to the worst-k
          triage re-runs — the final tables are byte-identical to the full
          run that wrote the checkpoint.
          @raise Checkpoint_incomplete if any shard is missing *)
  sw_clock : unit -> float;  (** watchdog wall clock (tests inject a fake) *)
  sw_sleep : float -> unit;  (** backoff sleep (tests inject a no-op) *)
  sw_log : string -> unit;  (** progress; never part of the tables *)
}

(** [config ()] with the defaults described above; raises [Invalid_argument]
    on nonsensical sizes.  [schemes] defaults to nimbus/cubic/bbr/vegas —
    the Fig. 18 matrix. *)
val config :
  ?paths:int ->
  ?seed:int ->
  ?schemes:Common.scheme list ->
  ?profile:Common.profile ->
  ?shard_size:int ->
  ?budget:float ->
  ?retries:int ->
  ?backoff:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?stop_after:int ->
  ?triage_k:int ->
  ?triage_dir:string ->
  ?triage_only:bool ->
  ?clock:(unit -> float) ->
  ?sleep:(float -> unit) ->
  ?log:(string -> unit) ->
  unit ->
  config

(** [scheme_of_name "cubic"] — the CLI's scheme registry. *)
val scheme_of_name : string -> Common.scheme option

val default_schemes : unit -> Common.scheme list

type outcome = {
  tables : Table.t list;  (** empty when [interrupted] *)
  interrupted : bool;  (** [sw_stop_after] fired before the sweep finished *)
  completed_shards : int;
  total_shards : int;
  paths_done : int;
  failures : int;  (** timeout + crash cells, across all schemes *)
}

(** [run cfg] executes (or resumes) the sweep.  Deterministic given
    [sw_budget <= 0]: the final tables are byte-identical whatever the pool
    size and however many times the sweep was interrupted and resumed.
    @raise Checkpoint_incompatible see {!exception-Checkpoint_incompatible} *)
val run : config -> outcome

(** {1 Checkpoint internals} — exposed for the test suite. *)

val header_line : config -> string

val shard_line : idx:int -> base:int -> cell list -> string

val parse_shard_line : string -> (int * int * cell list) option

val cell_to_string : cell -> string

val cell_of_string : string -> cell
