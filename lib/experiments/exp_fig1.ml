(* Fig. 1: a flow on a 48 Mbit/s link faces one long-running Cubic cross-flow
   for a minute, then 24 Mbit/s of inelastic Poisson traffic.  Cubic keeps
   delay high everywhere; the delay-controlling scheme starves against Cubic;
   Nimbus tracks the fair share in both phases and keeps delay low against
   inelastic traffic. *)

module Engine = Nimbus_sim.Engine
module Schedule = Nimbus_traffic.Schedule
module Time = Units.Time
module Rate = Units.Rate

let id = "fig1"

let title = "Fig 1: Cubic vs delay-control vs Nimbus under phase-switching cross traffic"

let run (p : Common.profile) =
  let l = Common.link ~mbps:48. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let t1 = Common.scaled p 30. in
  let te = t1 +. Common.scaled p 60. in
  let ti = te +. Common.scaled p 60. in
  let schemes =
    [ Common.cubic; Common.nimbus_delay_only; Common.nimbus () ]
  in
  let run_scheme (sch : Common.scheme) =
    let net = Common.setup ~seed:11 l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
    let running = sch.Common.start_flow net () in
    let _sched =
      Schedule.install engine bn ~rng
        ~phases:
          [ Schedule.phase ~start:(Time.secs t1) ~stop:(Time.secs te)
              ~inelastic:Rate.zero ~elastic_flows:1;
            Schedule.phase ~start:(Time.secs te) ~stop:(Time.secs ti)
              ~inelastic:(Rate.bps 24e6) ~elastic_flows:0 ]
        ()
    in
    let stats = Common.instrument engine bn running ~until:(Time.secs ti) in
    Engine.run_until engine (Time.secs ti);
    let row label lo hi fair =
      [ sch.Common.scheme_name; label;
        Table.fmt_mbps (Common.mean stats.Common.tput_series ~lo ~hi);
        Table.fmt_mbps fair;
        Table.fmt_ms (Common.mean stats.Common.qdelay_series ~lo ~hi);
        Table.fmt_ms (Common.pct stats.Common.qdelay_series ~lo ~hi 95.) ]
    in
    (* skip 5 s of transition at each phase boundary *)
    [ row "solo" 5. t1 48e6;
      row "elastic (1 Cubic)" (t1 +. 5.) te 24e6;
      row "inelastic (24M)" (te +. 5.) ti 24e6 ]
  in
  let rows = List.concat_map run_scheme schemes in
  [ Table.make ~title
      ~header:
        [ "scheme"; "phase"; "tput(Mbps)"; "fair"; "qdelay(ms)"; "q-p95(ms)" ]
      ~notes:
        [ "shape: cubic holds fair share but ~full-buffer delay in all phases";
          "shape: nimbus-delay starves (<25% fair) vs the Cubic cross-flow";
          "shape: nimbus ~fair everywhere with low delay in solo/inelastic \
           phases (paper Fig 1c)" ]
      rows ]
