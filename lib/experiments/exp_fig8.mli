(** Fig 8: scheme comparison under scripted cross traffic (96M/50ms/2BDP) *)

val id : string

val title : string

val run : Common.profile -> Table.t list
