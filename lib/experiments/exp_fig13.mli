(** Fig 13: WAN load x pulse size *)

val id : string

val title : string

val run : Common.profile -> Table.t list
