(** Parking lot: K bottleneck links in a chain, each carrying its own Nimbus
    population, interfering through elastic (cubic) and inelastic (poisson)
    cross traffic that spans adjacent link pairs.  The first experiment
    built entirely on the {!Nimbus_topology.Topology} fabric: per-link AND
    fabric-wide packet conservation are audited by the invariant monitor,
    and the scenario scales to thousands of flows ([scaled_params] is the
    CI topology-smoke and leaderboard entry point). *)

val id : string

val title : string

type params = {
  links : int;  (** K >= 2 chained bottlenecks *)
  mbps : float;  (** per-link drain rate *)
  rtt_ms : float;  (** per-flow two-way propagation (end legs) *)
  prop_ms : float;  (** per-link one-way propagation delay *)
  buffer_bdp : float;  (** per-link buffer as a multiple of mu x rtt *)
  nimbus_per_link : int;
  elastic_cross : int;  (** cubic flows per adjacent link pair *)
  inelastic_frac : float;  (** poisson rate per pair, as a fraction of mu *)
  duration : float;  (** simulated seconds *)
  seed : int;
}

val default_params : params

(** [scaled_params ~links ~flows ()] sizes the scenario to a total of
    [flows] congestion-controlled flows (one Nimbus per link, the rest
    elastic cross traffic spread over the adjacent pairs — rounded up, so
    the realized {!total_flows} may slightly exceed [flows]).
    @raise Invalid_argument if [links < 2] or [flows < links]. *)
val scaled_params :
  ?mbps:float ->
  ?duration:float ->
  ?seed:int ->
  links:int ->
  flows:int ->
  unit ->
  params

(** [total_flows p] is the congestion-controlled flow count (Nimbus +
    elastic cross; poisson sources are open-loop and not counted). *)
val total_flows : params -> int

type outcome = {
  tables : Table.t list;
  violations : int;  (** invariant-monitor violations (0 = healthy) *)
  report : string;  (** the monitor's violation report (CI artifact) *)
  delivered : int;  (** packets that finished serialisation, all links *)
  flows : int;  (** {!total_flows} of the params actually run *)
}

(** [run_custom p] builds the chain topology, runs it to [p.duration], and
    returns tables plus the machine-checkable outcome. *)
val run_custom : ?trace:Nimbus_trace.Trace.t -> params -> outcome

(** Registry entry: {!default_params} at the profile-scaled duration. *)
val run : Common.profile -> Table.t list
