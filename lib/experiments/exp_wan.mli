(** Fig 9/10/21: WAN cross-traffic workload *)

val id : string

val title : string

val run : Common.profile -> Table.t list
