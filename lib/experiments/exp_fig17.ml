(* Fig. 17: three Nimbus flows plus scripted cross traffic on a 192 Mbit/s
   link — elastic (3 Cubic flows) for a minute, then a 96 Mbit/s CBR stream.
   The aggregate should track the fair share in both phases and the delays
   should fall once the elastic flows leave. *)

module Engine = Nimbus_sim.Engine
module Schedule = Nimbus_traffic.Schedule
module Time = Units.Time
module Rate = Units.Rate

let id = "fig17"

let title = "Fig 17: multiple Nimbus flows + elastic then inelastic cross traffic"

let run (p : Common.profile) =
  let l = Common.link ~mbps:192. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let t1 = Common.scaled p 30. in
  let te = t1 +. Common.scaled p 60. in
  let ti = te +. Common.scaled p 60. in
  let net = Common.setup ~seed:17 l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let runnings =
    List.init 3 (fun i ->
        (Common.nimbus
           ~name:(Printf.sprintf "nimbus%d" i)
           ~multi_flow:true ~seed:(300 + (13 * i)) ())
          .Common.start_flow net ())
  in
  let _sched =
    Schedule.install engine bn ~rng
      ~phases:
        [ Schedule.phase ~start:(Time.secs t1) ~stop:(Time.secs te)
            ~inelastic:Rate.zero ~elastic_flows:3;
          Schedule.phase ~start:(Time.secs te) ~stop:(Time.secs ti)
            ~inelastic:(Rate.bps 96e6) ~elastic_flows:0 ]
      ~inelastic:`Cbr ()
  in
  let tputs =
    List.map
      (fun r ->
        Nimbus_metrics.Monitor.flow_throughput engine r.Common.flow
          ~interval:(Time.secs 1.0) ~until:(Time.secs ti) ())
      runnings
  in
  let qdelay =
    Nimbus_metrics.Monitor.queue_delay engine bn ~interval:(Time.ms 100.)
      ~until:(Time.secs ti) ()
  in
  Engine.run_until engine (Time.secs ti);
  let aggregate lo hi =
    List.fold_left
      (fun acc s ->
        let v = Common.mean s ~lo ~hi in
        if Float.is_nan v then acc else acc +. v)
      0. tputs
  in
  let row label lo hi fair =
    [ label; Table.fmt_mbps (aggregate lo hi); Table.fmt_mbps fair;
      Table.fmt_ms (Common.mean qdelay ~lo ~hi) ]
  in
  [ Table.make ~title
      ~header:[ "phase"; "aggregate tput(Mbps)"; "fair"; "qdelay(ms)" ]
      ~notes:
        [ "shape: aggregate near fair share in both phases; low queueing \
           delay in the solo and inelastic phases" ]
      [ row "solo" 10. t1 192e6;
        row "elastic (3 Cubic)" (t1 +. 8.) te 96e6;
        row "inelastic (96M CBR)" (te +. 8.) ti 96e6 ] ]
