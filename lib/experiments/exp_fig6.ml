(* Fig. 6: distribution of the elasticity metric η as the elastic fraction of
   the cross traffic varies.  As in the paper, the cross traffic is an
   unconstrained Cubic flow plus Poisson traffic at different average rates;
   the elastic byte fraction is whatever mix that produces, measured at the
   bottleneck.  Fully inelastic mixes sit near η = 1, fully elastic near
   η ≈ 10, and mixes with a meaningful elastic component mostly exceed the
   η = 2 threshold. *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Source = Nimbus_traffic.Source
module Stats = Nimbus_dsp.Stats
module Time = Units.Time
module Rate = Units.Rate

let id = "fig6"

let title = "Fig 6: eta distribution vs elastic fraction of cross traffic"

(* With an unconstrained Cubic sharing the residual bandwidth with Nimbus,
   a Poisson rate of µ·(1-f)/(1+f) yields an elastic byte fraction ≈ f. *)
let poisson_rate_for_fraction ~mu f = Rate.scale ((1. -. f) /. (1. +. f)) mu

let run_mix (p : Common.profile) ~target_frac ~seed =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 120. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let etas = ref [] in
  let nim =
    Nimbus.create
      { (Nimbus.Config.default ~mu:(Z.Mu.known l.Common.mu)) with
        on_detection =
          Some
            (fun d ->
              if not (Float.is_nan d.Nimbus.d_eta) then
                etas := d.Nimbus.d_eta :: !etas) }
  in
  ignore
    (Flow.create engine bn
       ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now engine))
       ~prop_rtt:l.Common.prop_rtt ());
  let cubic_id =
    if target_frac > 0. then begin
      let f =
        Flow.create engine bn ~cc:(Nimbus_cc.Cubic.make ())
          ~prop_rtt:l.Common.prop_rtt ()
      in
      Some (Flow.id f)
    end
    else None
  in
  let poisson_rate = poisson_rate_for_fraction ~mu:l.Common.mu target_frac in
  let poisson_id =
    if Rate.to_bps poisson_rate > 1e5 then
      Some
        (Source.flow_id
           (Source.poisson engine bn ~rng:(Rng.split rng) ~rate:poisson_rate ()))
    else None
  in
  Engine.run_until engine (Time.secs horizon);
  let delivered = function
    | Some fid -> Bottleneck.delivered_bytes bn ~flow:fid
    | None -> 0
  in
  let elastic_bytes = delivered cubic_id in
  let total_bytes = elastic_bytes + delivered poisson_id in
  let realized =
    if total_bytes = 0 then nan
    else float_of_int elastic_bytes /. float_of_int total_bytes
  in
  (Array.of_list (List.rev !etas), realized)

let run (p : Common.profile) =
  let fracs = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let rows =
    Common.map_cases
      ~f:(fun f ->
        let etas, realized =
          run_mix p ~target_frac:f ~seed:(60 + int_of_float (f *. 10.))
        in
        let q pctl =
          if Array.length etas = 0 then nan else Stats.percentile etas pctl
        in
        let above =
          if Array.length etas = 0 then nan
          else begin
            let k =
              Array.fold_left (fun a e -> if e >= 2. then a + 1 else a) 0 etas
            in
            float_of_int k /. float_of_int (Array.length etas)
          end
        in
        [ Table.fmt_pct f; Table.fmt_pct realized; Table.fmt_float (q 25.);
          Table.fmt_float (q 50.); Table.fmt_float (q 75.);
          Table.fmt_pct above ])
      fracs
  in
  [ Table.make ~title
      ~header:
        [ "target frac"; "realized"; "eta p25"; "eta p50"; "eta p75";
          "eta>=2" ]
      ~notes:
        [ "shape: median eta ~1 at 0% elastic rising to >>2 at 100%; mixes \
           with >=25% elastic classified elastic most of the time (paper: \
           ~75% at 25%)" ]
      rows ]
