(* Fig. 11: DASH video streams as cross traffic on a 48 Mbit/s link.  The 4K
   ladder exceeds the fair share, so the stream is network-limited and
   elastic; the 1080p ladder tops out below it, so the client idles between
   chunks and the stream is inelastic.  Nimbus should match Cubic's
   throughput in both cases while cutting delay against 1080p; Copa/Vegas
   starve against the 4K stream. *)

module Engine = Nimbus_sim.Engine
module Video = Nimbus_traffic.Video
module Time = Units.Time

let id = "fig11"

let title = "Fig 11: throughput/delay against DASH video cross traffic"

let run_case (p : Common.profile) ~ladder ~seed (sch : Common.scheme) =
  let l = Common.link ~mbps:48. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 120. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let _video = Video.create engine bn ~ladder () in
  let running = sch.Common.start_flow net () in
  let stats = Common.instrument engine bn running ~until:(Time.secs horizon) in
  Engine.run_until engine (Time.secs horizon);
  let lo = 15. and hi = horizon in
  ( Common.mean stats.Common.tput_series ~lo ~hi,
    Common.mean stats.Common.rtt_series ~lo ~hi )

let run (p : Common.profile) =
  let schemes = Common.nimbus () :: Common.all_baselines in
  let table ~name ~ladder ~seed ~notes =
    Table.make ~title:(Printf.sprintf "Fig 11 (%s video cross traffic)" name)
      ~header:[ "scheme"; "tput(Mbps)"; "mean rtt(ms)" ]
      ~notes
      (List.map
         (fun sch ->
           let tput, rtt = run_case p ~ladder ~seed sch in
           [ sch.Common.scheme_name; Table.fmt_mbps tput; Table.fmt_ms rtt ])
         schemes)
  in
  [ table ~name:"4K (elastic)" ~ladder:Video.ladder_4k ~seed:41
      ~notes:
        [ "shape: nimbus ~cubic tput; copa/vegas starve against the \
           aggressive stream" ];
    table ~name:"1080p (inelastic)" ~ladder:Video.ladder_1080p ~seed:42
      ~notes:
        [ "shape: all schemes get ~similar tput; nimbus/vegas/copa at \
           much lower rtt than cubic" ] ]
