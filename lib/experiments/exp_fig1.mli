(** Fig 1: Cubic vs delay-control vs Nimbus under phase-switching cross traffic *)

val id : string

val title : string

val run : Common.profile -> Table.t list
