(* Fig. 3: the strawman detector.  A Cubic flow's self-inflicted queueing
   delay (its share of the queue, proportional to its throughput share) looks
   identical whether the competing traffic is elastic or inelastic —
   instantaneous delay measurements cannot reveal elasticity. *)

module Engine = Nimbus_sim.Engine
module Schedule = Nimbus_traffic.Schedule
module Time = Units.Time
module Rate = Units.Rate

let id = "fig3"

let title = "Fig 3: self-inflicted delay does not reveal elasticity"

let run (p : Common.profile) =
  let l = Common.link ~mbps:48. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let t1 = Common.scaled p 30. in
  let te = t1 +. Common.scaled p 60. in
  let ti = te +. Common.scaled p 60. in
  let net = Common.setup ~seed:3 l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let running = Common.cubic.Common.start_flow net () in
  let _sched =
    Schedule.install engine bn ~rng
      ~phases:
        [ Schedule.phase ~start:(Time.secs t1) ~stop:(Time.secs te)
            ~inelastic:Rate.zero ~elastic_flows:1;
          Schedule.phase ~start:(Time.secs te) ~stop:(Time.secs ti)
            ~inelastic:(Rate.bps 24e6) ~elastic_flows:0 ]
      ()
  in
  let stats = Common.instrument engine bn running ~until:(Time.secs ti) in
  Engine.run_until engine (Time.secs ti);
  let row label lo hi =
    let tput = Common.mean stats.Common.tput_series ~lo ~hi in
    let total = Common.mean stats.Common.qdelay_series ~lo ~hi in
    let share = tput /. Rate.to_bps l.Common.mu in
    let self_inflicted = total *. share in
    [ label; Table.fmt_mbps tput; Table.fmt_ms total;
      Table.fmt_ms self_inflicted; Table.fmt_pct share ]
  in
  let rows =
    [ row "elastic (1 Cubic)" (t1 +. 5.) te;
      row "inelastic (24M)" (te +. 5.) ti ]
  in
  [ Table.make ~title
      ~header:
        [ "phase"; "tput(Mbps)"; "total qdelay(ms)"; "self-inflicted(ms)";
          "share" ]
      ~notes:
        [ "shape: the flow's share (and so its self-inflicted delay fraction) \
           is ~50% in both phases -- the signal is uninformative" ]
      rows ]
