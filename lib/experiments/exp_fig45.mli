(** Fig 4/5: cross-traffic reaction to pulses, time and frequency domain *)

val id : string

val title : string

val run : Common.profile -> Table.t list
