(** Fig 25 (App E): multi-factor detection robustness *)

val id : string

val title : string

val run : Common.profile -> Table.t list
