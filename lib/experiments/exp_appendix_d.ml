(* Appendix D (Fig. 23/24): where Copa's mode detection goes wrong.

   Fig. 23: CBR cross traffic at 24 vs 80 Mbit/s on a 96 Mbit/s link.  At
   80 Mbit/s the queue cannot drain within 5 RTTs (max drain rate µ−z), so
   Copa sticks in competitive mode and drives delay up; Nimbus classifies
   the CBR as inelastic and keeps the queue short in both cases.

   Fig. 24: one NewReno cross-flow at 1x vs 4x the flow's RTT.  The slowly
   ramping 4x flow lets Copa drain its queue on schedule, so Copa stays in
   default mode and surrenders throughput; Nimbus detects the elasticity and
   takes its share. *)

module Engine = Nimbus_sim.Engine
module Flow = Nimbus_cc.Flow
module Source = Nimbus_traffic.Source
module Time = Units.Time
module Rate = Units.Rate

let id = "appd"

let title = "Fig 23/24 (App D): Copa failure modes vs Nimbus"

let cbr_case (p : Common.profile) ~rate ~seed (sch : Common.scheme) =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 60. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  ignore (Source.cbr engine bn ~rate:(Rate.bps rate) ());
  let running = sch.Common.start_flow net () in
  let stats = Common.instrument engine bn running ~until:(Time.secs horizon) in
  Engine.run_until engine (Time.secs horizon);
  ( Common.mean stats.Common.tput_series ~lo:10. ~hi:horizon,
    Common.mean stats.Common.qdelay_series ~lo:10. ~hi:horizon )

let reno_case (p : Common.profile) ~ratio ~seed (sch : Common.scheme) =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 60. in
  let net = Common.setup ~seed l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  ignore
    (Flow.create engine bn ~cc:(Nimbus_cc.Reno.make ())
       ~prop_rtt:(Time.scale ratio l.Common.prop_rtt) ());
  let running = sch.Common.start_flow net () in
  let stats = Common.instrument engine bn running ~until:(Time.secs horizon) in
  Engine.run_until engine (Time.secs horizon);
  Common.mean stats.Common.tput_series ~lo:10. ~hi:horizon

let run (p : Common.profile) =
  let schemes = [ Common.nimbus (); Common.copa ] in
  let fig23 =
    List.concat_map
      (fun rate_m ->
        List.map
          (fun sch ->
            let tput, qd = cbr_case p ~rate:(rate_m *. 1e6) ~seed:23 sch in
            [ Printf.sprintf "%.0fM CBR" rate_m; sch.Common.scheme_name;
              Table.fmt_mbps tput; Table.fmt_ms qd ])
          schemes)
      [ 24.; 80. ]
  in
  let fig24 =
    List.concat_map
      (fun ratio ->
        List.map
          (fun sch ->
            let tput = reno_case p ~ratio ~seed:24 sch in
            [ Printf.sprintf "%.0fx RTT NewReno" ratio;
              sch.Common.scheme_name; Table.fmt_mbps tput ])
          schemes)
      [ 1.; 4. ]
  in
  [ Table.make ~title:"Fig 23 (App D.1): CBR cross traffic"
      ~header:[ "cross"; "scheme"; "tput(Mbps)"; "qdelay(ms)" ]
      ~notes:
        [ "shape: at 80M CBR copa sticks in competitive mode (high delay); \
           nimbus keeps delay low in both cases" ]
      fig23;
    Table.make ~title:"Fig 24 (App D.2): NewReno cross-flow RTT"
      ~header:[ "cross"; "scheme"; "tput(Mbps)" ]
      ~notes:
        [ "shape: at 4x RTT copa loses its share (misclassifies as \
           non-buffer-filling); nimbus holds an RTT-biased fair share" ]
      fig24 ]
