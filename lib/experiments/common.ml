module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Rng = Nimbus_sim.Rng
module Topology = Nimbus_topology.Topology
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Series = Nimbus_metrics.Series
module Monitor = Nimbus_metrics.Monitor
module Stats = Nimbus_dsp.Stats
module Time = Units.Time
module Freq = Units.Freq
module Rate = Units.Rate

type profile = {
  time_scale : float;
  seeds : int;
}

let quick = { time_scale = 0.4; seeds = 1 }

let full = { time_scale = 1.0; seeds = 3 }

let scaled p seconds = Float.max 20. (p.time_scale *. seconds)

type link = {
  mu : Units.Rate.t;
  prop_rtt : Units.Time.t;
  buffer_bdp : float;
  aqm : [ `Droptail | `Pie of Units.Time.t ];
}

let link ~mbps ~rtt_ms ?(buffer_bdp = 2.0) ?(aqm = `Droptail) () =
  { mu = Rate.mbps mbps; prop_rtt = Time.ms rtt_ms; buffer_bdp; aqm }

type net = {
  engine : Engine.t;
  topo : Topology.t;
  route : Topology.Route.t;
  bottleneck : Bottleneck.t;
  rng : Rng.t;
  net_link : link;
}

(* the qdisc rng split happens before the topology is built, exactly where
   the pre-topology setup split it — preserving the draw order is part of
   the byte-identical-trace contract *)
let qdisc_of ~rng l =
  let capacity_bytes =
    max (4 * 1500)
      (int_of_float
         (Rate.to_bps l.mu *. Time.to_secs l.prop_rtt *. l.buffer_bdp /. 8.))
  in
  match l.aqm with
  | `Droptail -> Qdisc.droptail ~capacity_bytes
  | `Pie target ->
    Qdisc.pie ~capacity_bytes ~target_delay:target ~link_rate:l.mu
      ~rng:(Rng.split rng) ()

let setup ?(trace = Nimbus_trace.Trace.disabled) ~seed l =
  let engine = Engine.create { trace } in
  let rng = Rng.create seed in
  let qdisc = qdisc_of ~rng l in
  let topo, route =
    Topology.dumbbell engine
      { bottleneck =
          { (Bottleneck.Config.default ~rate:l.mu ~qdisc) with trace };
        prop_delay = Time.zero }
  in
  let bottleneck =
    Topology.link_bottleneck (List.hd (Topology.Route.links route))
  in
  { engine; topo; route; bottleneck; rng; net_link = l }

type running = {
  flow : Flow.t;
  in_competitive : (unit -> bool) option;
  nimbus : Nimbus_core.Nimbus.t option;
}

type scheme = {
  scheme_name : string;
  start_flow : net -> ?start:Units.Time.t -> unit -> running;
}

let plain name make_cc =
  { scheme_name = name;
    start_flow =
      (fun net ?start () ->
        let l = net.net_link in
        let flow =
          Flow.create_via net.topo ~route:net.route ~cc:(make_cc l)
            ~prop_rtt:l.prop_rtt ?start ()
        in
        { flow; in_competitive = None; nimbus = None }) }

let nimbus ?name ?(delay = `Basic_delay) ?(competitive = `Cubic)
    ?(pulse_frac = 0.25) ?(fp = Freq.hz 5.) ?(multi_flow = false) ?(seed = 1)
    ?(estimate_mu = false) () =
  let scheme_name = match name with Some n -> n | None -> "nimbus" in
  { scheme_name;
    start_flow =
      (fun net ?start () ->
        let l = net.net_link in
        let engine = net.engine in
        let mu =
          if estimate_mu then Z.Mu.estimator () else Z.Mu.known l.mu
        in
        let nim =
          Nimbus.create
            { (Nimbus.Config.default ~mu) with
              delay; competitive; pulse_frac; fp_competitive = fp;
              fp_delay = Freq.hz (Freq.to_hz fp +. 1.); multi_flow; seed;
              trace = Engine.trace engine }
        in
        let flow =
          Flow.create_via net.topo ~route:net.route
            ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now engine))
            ~prop_rtt:l.prop_rtt ?start ()
        in
        { flow;
          in_competitive =
            Some (fun () -> Nimbus.mode nim = Nimbus.Competitive);
          nimbus = Some nim }) }

let nimbus_delay_only =
  { scheme_name = "nimbus-delay";
    start_flow =
      (fun net ?start () ->
        let l = net.net_link in
        let cc = Nimbus_cc.Basic_delay.make ~mu:l.mu () in
        let flow =
          Flow.create_via net.topo ~route:net.route ~cc ~prop_rtt:l.prop_rtt
            ?start ()
        in
        { flow; in_competitive = None; nimbus = None }) }

let cubic = plain "cubic" (fun _ -> Nimbus_cc.Cubic.make ())

let reno = plain "reno" (fun _ -> Nimbus_cc.Reno.make ())

let vegas = plain "vegas" (fun _ -> Nimbus_cc.Vegas.make ())

let copa =
  { scheme_name = "copa";
    start_flow =
      (fun net ?start () ->
        let c = Nimbus_cc.Copa.create ~switching:true () in
        let flow =
          Flow.create_via net.topo ~route:net.route ~cc:(Nimbus_cc.Copa.cc c)
            ~prop_rtt:net.net_link.prop_rtt ?start ()
        in
        { flow;
          in_competitive =
            Some (fun () -> Nimbus_cc.Copa.in_competitive_mode c);
          nimbus = None }) }

let bbr = plain "bbr" (fun _ -> Nimbus_cc.Bbr.make ())

let vivace = plain "vivace" (fun _ -> Nimbus_cc.Vivace.make ())

let compound = plain "compound" (fun _ -> Nimbus_cc.Compound.make ())

let all_baselines = [ cubic; bbr; vegas; copa; vivace ]

type run_stats = {
  tput_series : Series.t;
  qdelay_series : Series.t;
  rtt_series : Series.t;
}

let instrument engine bottleneck running ~until =
  { tput_series =
      Monitor.flow_throughput engine running.flow ~interval:(Time.secs 1.0)
        ~until ();
    qdelay_series =
      Monitor.queue_delay engine bottleneck ~interval:(Time.ms 100.) ~until ();
    rtt_series =
      Monitor.flow_rtt engine running.flow ~interval:(Time.ms 100.) ~until ()
  }

let window_values s ~lo ~hi =
  let xs = Series.values_between s ~lo:(Time.secs lo) ~hi:(Time.secs hi) in
  Array.of_list
    (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list xs))

let mean s ~lo ~hi =
  let xs = window_values s ~lo ~hi in
  if Array.length xs = 0 then nan else Stats.mean xs

let pct s ~lo ~hi p =
  let xs = window_values s ~lo ~hi in
  if Array.length xs = 0 then nan else Stats.percentile xs p

(* --- parallel fan-out ----------------------------------------------------- *)

let pool : Nimbus_parallel.Pool.t option ref = ref None

let set_pool p = pool := p

let map_cases ~f cases =
  match !pool with
  | Some p when Nimbus_parallel.Pool.parallelism p > 1 ->
    let arr = Array.of_list cases in
    let n = Array.length arr in
    if n <= 1 then List.map f cases
    else
      Array.to_list
        (Nimbus_parallel.Pool.map p
           ~f:(fun i ->
             (f
             [@shared_ok
               "the caller's case function; map_cases' contract is that it \
                is safe to run on any domain"])
               (arr
               [@shared_ok
                 "frozen before the fan-out; workers read disjoint indices \
                  and never write"])
                 .(i))
           n)
  | _ -> List.map f cases

let run_seeds p ~base f =
  map_cases
    ~f:(fun seed ->
      (f
      [@shared_ok
        "the caller's per-seed function; run_seeds' contract is that it is \
         safe to run on any domain"])
        ~seed)
    (List.init p.seeds (fun k -> base + k))

(* --- crash isolation ------------------------------------------------------- *)

type crash = {
  crash_label : string;
  crash_seed : int;
  crash_exn : string;
  crash_backtrace : string;
  crash_recovered : bool;
  crash_attempts : int;
  crash_raw : exn;
}

(* cases run on arbitrary pool domains, so the log needs a lock and the test
   hook must be an atomic *)
let crash_mutex = Mutex.create ()

let crash_log : crash list ref = ref []

let record_crash c =
  Mutex.lock crash_mutex;
  (crash_log := c :: !crash_log)
  [@shared_ok "crash_log is only ever touched under crash_mutex"];
  Mutex.unlock crash_mutex
[@@domain_safe
  "called from pool tasks on arbitrary domains; the only shared state it \
   touches is crash_log, under crash_mutex"]

let crashes () =
  Mutex.lock crash_mutex;
  let cs = !crash_log in
  Mutex.unlock crash_mutex;
  (* domain scheduling makes the log order nondeterministic; sort so crash
     reports are stable across pool sizes *)
  List.sort
    (fun a b ->
      match String.compare a.crash_label b.crash_label with
      | 0 -> Int.compare a.crash_seed b.crash_seed
      | c -> c)
    cs

let clear_crashes () =
  Mutex.lock crash_mutex;
  crash_log := [];
  Mutex.unlock crash_mutex

let crash_hook : (label:string -> seed:int -> bool) option Atomic.t =
  Atomic.make None

let set_crash_hook h = Atomic.set crash_hook h

let rekey seed = seed lxor 0x9E3779B9 [@@domain_safe "pure integer mixing"]

let run_case ?check ?(attempts = 2) ?backoff ~label ~seed f =
  if attempts < 1 then invalid_arg "Common.run_case: attempts must be >= 1";
  let attempt seed =
    (match
       Atomic.get
         (crash_hook
         [@shared_ok
           "test-only fault hook, read atomically once per attempt; \
            installed before the fan-out starts"])
     with
     | Some hook when hook ~label ~seed ->
       failwith
         (Printf.sprintf "forced crash (test hook): %s seed=%d" label seed)
     | _ -> ());
    let r = f ~seed in
    (match check with
     | Some chk ->
       (match chk r with
        | Some msg -> failwith (Printf.sprintf "invalid result: %s" msg)
        | None -> ())
     | None -> ());
    r
  in
  (* attempt [k] (1-based) runs on seed rekeyed [k-1] times: each retry gets
     a fresh deterministic rng stream, so results stay reproducible whatever
     pool domain retries them *)
  let rec go k seed_k e1 bt1 =
    match attempt seed_k with
    | r ->
      if k > 1 then
        record_crash
          { crash_label = label; crash_seed = seed;
            crash_exn = Printexc.to_string e1; crash_backtrace = bt1;
            crash_recovered = true; crash_attempts = k; crash_raw = e1 };
      Ok r
    | exception e ->
      let bt = Printexc.get_backtrace () in
      if k >= attempts then begin
        let c =
          { crash_label = label; crash_seed = seed;
            crash_exn = Printexc.to_string e; crash_backtrace = bt;
            crash_recovered = false; crash_attempts = k; crash_raw = e }
        in
        record_crash c;
        Error c
      end
      else begin
        (match backoff with None -> () | Some wait -> wait ~attempt:(k + 1));
        go (k + 1) (rekey seed_k) e bt
      end
  in
  go 1 seed (Failure "unreached") ""
[@@domain_safe
  "runs inside pool tasks; shared state is limited to the atomic crash \
   hook and the mutex-guarded crash log (via record_crash)"]

let crash_cell c = Printf.sprintf "!crash(seed %d)" c.crash_seed
