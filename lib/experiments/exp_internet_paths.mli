(** Fig 18/19/20: synthetic Internet path profiles *)

val id : string

val title : string

val run : Common.profile -> Table.t list
