(* Appendix E (Fig. 25) + the buffer/RTT/AQM sweep of §8.2: multi-factor
   robustness of elasticity detection.

   Factors: pulse amplitude (fraction of µ), Nimbus's fair share of the
   link, link rate, buffer depth, propagation RTT, and AQM.  Accuracy should
   rise with pulse size and link rate, fall slightly with Nimbus's share,
   and survive PIE and buffer variation except the documented shallow-buffer
   caveat. *)

module Engine = Nimbus_sim.Engine
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Source = Nimbus_traffic.Source
module Accuracy = Nimbus_metrics.Accuracy
module Time = Units.Time
module Rate = Units.Rate

let id = "appe"

let title = "Fig 25 (App E): multi-factor detection robustness"

type mix =
  | Elastic
  | Inelastic
  | Mixed

(* Nimbus's fair share f is arranged by giving the cross traffic (1-f) of
   the link: inelastic via Poisson, elastic via enough Reno flows, mixed
   half-and-half. *)
let case (p : Common.profile) ~link ~mix ~share ~pulse ~seed =
  let horizon = Common.scaled p 120. in
  let net = Common.setup ~seed link in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let mu = link.Common.mu in
  let truth_elastic =
    match mix with
    | Elastic | Mixed -> true
    | Inelastic -> false
  in
  (match mix with
   | Inelastic ->
     ignore
       (Source.poisson engine bn ~rng:(Rng.split rng)
          ~rate:(Rate.scale (1. -. share) mu) ())
   | Elastic ->
     let n = max 1 (int_of_float (Float.round ((1. /. share) -. 1.))) in
     for _ = 1 to n do
       ignore
         (Flow.create engine bn ~cc:(Nimbus_cc.Reno.make ())
            ~prop_rtt:link.Common.prop_rtt ())
     done
   | Mixed ->
     ignore
       (Source.poisson engine bn ~rng:(Rng.split rng)
          ~rate:(Rate.scale ((1. -. share) /. 2.) mu) ());
     ignore
       (Flow.create engine bn ~cc:(Nimbus_cc.Reno.make ())
          ~prop_rtt:link.Common.prop_rtt ()));
  let running =
    (Common.nimbus ~pulse_frac:pulse ()).Common.start_flow net ()
  in
  let accuracy = Accuracy.create () in
  (match running.Common.in_competitive with
   | Some mode ->
     Engine.every engine ~dt:(Time.ms 100.) ~start:(Time.secs 10.)
       ~until:(Time.secs horizon) (fun () ->
         Accuracy.record accuracy ~predicted_elastic:(mode ()) ~truth_elastic)
   | None -> ());
  Engine.run_until engine (Time.secs horizon);
  Accuracy.accuracy accuracy

let run (p : Common.profile) =
  let fullp = p.Common.time_scale >= 1.0 in
  let pulses = if fullp then [ 0.0625; 0.125; 0.25; 0.5 ] else [ 0.125; 0.25 ] in
  let shares = if fullp then [ 0.125; 0.25; 0.5; 0.75 ] else [ 0.25; 0.5 ] in
  let rates = if fullp then [ 96.; 192.; 384. ] else [ 96.; 192. ] in
  let grid =
    List.concat_map
      (fun mbps ->
        List.concat_map
          (fun pulse -> List.map (fun share -> (mbps, pulse, share)) shares)
          pulses)
      rates
  in
  let sweep =
    Common.map_cases
      ~f:(fun (mbps, pulse, share) ->
        let link = Common.link ~mbps ~rtt_ms:50. ~buffer_bdp:2.0 () in
        let acc mix = case p ~link ~mix ~share ~pulse ~seed:25 in
        [ Printf.sprintf "%.0fM" mbps; Table.fmt_float pulse;
          Table.fmt_pct share;
          Table.fmt_pct (acc Elastic);
          Table.fmt_pct (acc Inelastic);
          Table.fmt_pct (acc Mixed) ])
      grid
  in
  let fig25 =
    Table.make ~title:"Fig 25: pulse size x Nimbus share x link rate"
      ~header:[ "link"; "pulse"; "share"; "elastic"; "inelastic"; "mix" ]
      ~notes:
        [ "shape: accuracy rises with pulse size and link rate, falls \
           as nimbus's share grows; elastic >= ~95% broadly" ]
      sweep
  in
  (* §8.2: buffer, RTT, AQM *)
  let env_cases =
    let mk label link = (label, link) in
    [ mk "buffer 0.25 BDP" (Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:0.25 ());
      mk "buffer 1 BDP" (Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:1. ());
      mk "buffer 4 BDP" (Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:4. ());
      mk "RTT 25 ms" (Common.link ~mbps:96. ~rtt_ms:25. ~buffer_bdp:2. ());
      mk "RTT 75 ms" (Common.link ~mbps:96. ~rtt_ms:75. ~buffer_bdp:2. ());
      mk "PIE (1 BDP target)"
        (Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:4. ~aqm:(`Pie (Time.ms 50.))
           ());
      mk "PIE (0.25 BDP target)"
        (Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:4.
           ~aqm:(`Pie (Time.ms 12.5)) ()) ]
  in
  let env =
    Common.map_cases
      ~f:(fun (label, link) ->
        let acc mix = case p ~link ~mix ~share:0.5 ~pulse:0.25 ~seed:26 in
        [ label;
          Table.fmt_pct (acc Elastic);
          Table.fmt_pct (acc Inelastic);
          Table.fmt_pct (acc Mixed) ])
      env_cases
  in
  let env_table =
    Table.make ~title:"§8.2: buffer depth, RTT, and AQM robustness"
      ~header:[ "environment"; "elastic"; "inelastic"; "mix" ]
      ~notes:
        [ "shape: pure traffic >= ~95% except the documented shallow-buffer \
           and small-target-PIE caveats (losses corrupt the estimator in \
           delay mode); mixes >= ~80%" ]
      env
  in
  [ fig25; env_table ]
