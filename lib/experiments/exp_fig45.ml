(* Fig. 4 + Fig. 5: the mechanism itself.  A pulsing Nimbus sender shares the
   link with either one long-running Cubic flow (elastic) or a constant-rate
   stream (inelastic).

   Fig. 4: the elastic cross traffic's estimated rate ẑ(t) reacts to the
   pulses one cross-RTT later (negative lagged correlation with S); the
   inelastic stream is oblivious.

   Fig. 5: the FFT of ẑ shows a pronounced peak at f_p only for elastic
   cross traffic. *)

module Engine = Nimbus_sim.Engine
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z = Nimbus_core.Z_estimator
module Source = Nimbus_traffic.Source
module Stats = Nimbus_dsp.Stats
module Spectrum = Nimbus_dsp.Spectrum
module Time = Units.Time
module Rate = Units.Rate
module Freq = Units.Freq

let id = "fig45"

let title = "Fig 4/5: cross-traffic reaction to pulses, time and frequency domain"

type capture = {
  s_samples : float list ref;
  z_samples : float list ref;
}

let run_case (p : Common.profile) ~elastic =
  let l = Common.link ~mbps:96. ~rtt_ms:50. ~buffer_bdp:2.0 () in
  let horizon = Common.scaled p 60. in
  let net = Common.setup ~seed:45 l in
  let engine = net.Common.engine and bn = net.Common.bottleneck in
  let rng = net.Common.rng in
  let cap = { s_samples = ref []; z_samples = ref [] } in
  let collect_from = horizon -. 10. in
  let nim =
    Nimbus.create
      { (Nimbus.Config.default ~mu:(Z.Mu.known l.Common.mu)) with
        on_sample =
          Some
            (fun s ->
              if Time.(s.Nimbus.s_time >= secs collect_from) then begin
                cap.s_samples :=
                  Rate.to_bps s.Nimbus.s_send_rate :: !(cap.s_samples);
                cap.z_samples := Rate.to_bps s.Nimbus.s_z :: !(cap.z_samples)
              end) }
  in
  ignore
    (Flow.create engine bn
       ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now engine))
       ~prop_rtt:l.Common.prop_rtt ());
  if elastic then
    ignore
      (Flow.create engine bn ~cc:(Nimbus_cc.Cubic.make ())
         ~prop_rtt:l.Common.prop_rtt ())
  else
    ignore (Source.cbr engine bn ~rate:(Rate.bps 48e6) ());
  ignore rng;
  Engine.run_until engine (Time.secs horizon);
  let arr r = Array.of_list (List.rev !r) in
  let s = arr cap.s_samples and z = arr cap.z_samples in
  let z = Array.map (fun x -> if Float.is_nan x then 0. else x) z in
  (* lag sweep: 0 .. 2 RTT in 10 ms steps *)
  let max_lag = int_of_float (2. *. Time.to_secs l.Common.prop_rtt /. 0.01) in
  let corr = Stats.cross_correlation s z ~max_lag in
  let min_corr = Array.fold_left Float.min corr.(0) corr in
  let min_lag =
    let best = ref 0 in
    Array.iteri (fun i c -> if c = min_corr then best := i) corr;
    float_of_int !best *. 0.01
  in
  let spectrum = Spectrum.analyze z ~sample_rate:(Freq.hz 100.) ~detrend:`Linear in
  let eta = Nimbus.last_eta nim in
  (min_corr, min_lag, spectrum, eta)

let run (p : Common.profile) =
  let e_corr, e_lag, e_spec, e_eta = run_case p ~elastic:true in
  let i_corr, i_lag, i_spec, i_eta = run_case p ~elastic:false in
  let fig4 =
    Table.make ~title:"Fig 4: lagged correlation of S(t) against z(t + lag)"
      ~header:[ "cross traffic"; "min corr"; "at lag(ms)" ]
      ~notes:
        [ "shape: elastic cross traffic anti-correlates with the pulses \
           about one cross-RTT later; inelastic stays near zero" ]
      [ [ "elastic (Cubic)"; Table.fmt_float e_corr; Table.fmt_ms e_lag ];
        [ "inelastic (CBR)"; Table.fmt_float i_corr; Table.fmt_ms i_lag ] ]
  in
  let amp s f = Spectrum.amplitude_at s f /. 1e6 in
  let freqs = [ 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. ] in
  let spec_row label s eta =
    label
    :: List.map (fun f -> Table.fmt_float ~digits:1 (amp s f)) freqs
    @ [ Table.fmt_float eta ]
  in
  let fig5 =
    Table.make ~title:"Fig 5: FFT amplitude of z(t) (Mbps-scale, by frequency)"
      ~header:
        ("cross traffic"
        :: List.map (fun f -> Printf.sprintf "%.0fHz" f) freqs
        @ [ "eta" ])
      ~notes:
        [ "shape: pronounced peak at f_p = 5 Hz only for elastic cross \
           traffic; eta >> 2 elastic, < 2 inelastic" ]
      [ spec_row "elastic (Cubic)" e_spec e_eta;
        spec_row "inelastic (CBR)" i_spec i_eta ]
  in
  [ fig4; fig5 ]
