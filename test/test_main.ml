let () =
  Alcotest.run "nimbus"
    (Test_units.suite @ Test_dsp.suite @ Test_sim.suite @ Test_topology.suite
    @ Test_cc.suite
    @ Test_core.suite @ Test_traffic.suite @ Test_metrics.suite
    @ Test_faults.suite @ Test_experiments.suite @ Test_sweep.suite
    @ Test_parallel.suite
    @ Test_trace.suite @ Test_lint.suite @ Test_analyze.suite)
