(* Algebraic laws for the lib/units carriers: constructors and accessors are
   exact inverses (the types are zero-cost wrappers, so no rounding may
   sneak in), arithmetic coincides with float arithmetic on the payload, and
   the cross-unit operators honour their dimensional identities. *)

module Time = Units.Time
module Rate = Units.Rate
module Freq = Units.Freq
module B = Units.Bytes

let finite = QCheck.float_range (-1e9) 1e9

let positive = QCheck.float_range 1e-6 1e9

(* --- round trips: accessor ∘ constructor = id, exactly ------------------- *)

let prop_time_secs_roundtrip =
  QCheck.Test.make ~count:500 ~name:"units: to_secs (secs x) = x" finite
    (fun x -> Float.equal (Time.to_secs (Time.secs x)) x)

let prop_rate_bps_roundtrip =
  QCheck.Test.make ~count:500 ~name:"units: to_bps (bps x) = x" finite
    (fun x -> Float.equal (Rate.to_bps (Rate.bps x)) x)

let prop_freq_hz_roundtrip =
  QCheck.Test.make ~count:500 ~name:"units: to_hz (hz x) = x" finite (fun x ->
      Float.equal (Freq.to_hz (Freq.hz x)) x)

let prop_bytes_roundtrip =
  QCheck.Test.make ~count:500 ~name:"units: to_float (bytes x) = x" finite
    (fun x -> Float.equal (B.to_float (B.bytes x)) x)

let prop_of_float_roundtrip =
  QCheck.Test.make ~count:500 ~name:"units: to_float (of_float x) = x, all four"
    finite (fun x ->
      Float.equal (Time.to_float (Time.of_float x)) x
      && Float.equal (Rate.to_float (Rate.of_float x)) x
      && Float.equal (Freq.to_float (Freq.of_float x)) x
      && Float.equal (B.to_float (B.of_float x)) x)

(* --- scaled constructors --------------------------------------------------- *)

let prop_time_ms_scaling =
  QCheck.Test.make ~count:500 ~name:"units: secs (x*1e-3) = ms x" finite
    (fun x -> Time.equal (Time.secs (x *. 1e-3)) (Time.ms x))

let prop_rate_mbps_scaling =
  QCheck.Test.make ~count:500 ~name:"units: bps (x*1e6) = mbps x" finite
    (fun x -> Rate.equal (Rate.bps (x *. 1e6)) (Rate.mbps x))

let prop_bytes_bits_roundtrip =
  QCheck.Test.make ~count:500 ~name:"units: to_bits (of_bits b) = b" finite
    (fun b -> Float.equal (B.to_bits (B.of_bits b)) b)

let prop_time_us_mins_scaling =
  QCheck.Test.make ~count:500
    ~name:"units: secs (x*1e-6) = us x, secs (60x) = mins x" finite (fun x ->
      Time.equal (Time.secs (x *. 1e-6)) (Time.us x)
      && Time.equal (Time.secs (x *. 60.)) (Time.mins x))

let prop_rate_kbps_gbps_scaling =
  QCheck.Test.make ~count:500
    ~name:"units: bps (x*1e3) = kbps x, bps (x*1e9) = gbps x" finite (fun x ->
      Rate.equal (Rate.bps (x *. 1e3)) (Rate.kbps x)
      && Rate.equal (Rate.bps (x *. 1e9)) (Rate.gbps x))

let prop_bytes_kib_mib_scaling =
  QCheck.Test.make ~count:500
    ~name:"units: bytes (1024x) = kib x, bytes (2^20 x) = mib x" finite
    (fun x ->
      B.equal (B.bytes (x *. 1024.)) (B.kib x)
      && B.equal (B.bytes (x *. 1048576.)) (B.mib x))

(* powers of two scale exactly, so the kib/mib round trips are lossless *)
let prop_bytes_pow2_roundtrip =
  QCheck.Test.make ~count:500 ~name:"units: kib/mib round-trip is exact" finite
    (fun x ->
      Float.equal (B.to_float (B.kib x) /. 1024.) x
      && Float.equal (B.to_float (B.mib x) /. 1048576.) x)

let prop_bytes_int_roundtrip =
  QCheck.Test.make ~count:500 ~name:"units: to_int_trunc (of_int n) = n"
    (QCheck.int_range (-1_099_511_627_776) 1_099_511_627_776) (fun n ->
      B.to_int_trunc (B.of_int n) = n)

(* --- arithmetic is payload arithmetic -------------------------------------- *)

let prop_time_add_is_float_add =
  QCheck.Test.make ~count:500 ~name:"units: add = payload +"
    QCheck.(pair finite finite) (fun (a, b) ->
      Float.equal (Time.to_secs (Time.add (Time.secs a) (Time.secs b))) (a +. b)
      && Float.equal (Rate.to_bps (Rate.add (Rate.bps a) (Rate.bps b))) (a +. b))

let prop_scale_is_float_mul =
  QCheck.Test.make ~count:500 ~name:"units: scale k = payload k*"
    QCheck.(pair finite finite) (fun (k, x) ->
      Float.equal (Time.to_secs (Time.scale k (Time.secs x))) (k *. x)
      && Float.equal (Rate.to_bps (Rate.scale k (Rate.bps x))) (k *. x)
      && Float.equal (Freq.to_hz (Freq.scale k (Freq.hz x))) (k *. x)
      && Float.equal (B.to_float (B.scale k (B.bytes x))) (k *. x))

let prop_compare_agrees_with_float =
  QCheck.Test.make ~count:500 ~name:"units: compare = Float.compare on payload"
    QCheck.(pair finite finite) (fun (a, b) ->
      Time.compare (Time.secs a) (Time.secs b) = Float.compare a b
      && Rate.compare (Rate.bps a) (Rate.bps b) = Float.compare a b)

(* --- cross-unit identities ------------------------------------------------- *)

let close ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol *. Float.max 1. (Float.abs b)

(* scaled accessors: exact against their defining expression, and the
   scaled-constructor round trips land within float rounding *)
let prop_time_ms_accessor =
  QCheck.Test.make ~count:500 ~name:"units: to_ms laws" finite (fun x ->
      Float.equal (Time.to_ms (Time.secs x)) (x *. 1e3)
      && close (Time.to_ms (Time.ms x)) x)

let prop_rate_mbps_accessor =
  QCheck.Test.make ~count:500 ~name:"units: to_mbps laws" finite (fun x ->
      Float.equal (Rate.to_mbps (Rate.bps x)) (x /. 1e6)
      && close (Rate.to_mbps (Rate.mbps x)) x)

let prop_freq_period_involution =
  QCheck.Test.make ~count:500 ~name:"units: of_period (period f) = f" positive
    (fun f ->
      close (Freq.to_hz (Freq.of_period (Freq.period (Freq.hz f)))) f)

let prop_rate_volume_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"units: of_volume (volume r ~over:dt) ~per:dt = r"
    QCheck.(pair positive positive) (fun (r, dt) ->
      let rate = Rate.bps r and dt = Time.secs dt in
      close (Rate.to_bps (Rate.of_volume (Rate.volume rate ~over:dt) ~per:dt)) r)

let prop_rate_tx_time =
  QCheck.Test.make ~count:500 ~name:"units: tx_time r v = 8v/r seconds"
    QCheck.(pair positive positive) (fun (r, v) ->
      close (Time.to_secs (Rate.tx_time (Rate.bps r) (B.bytes v))) (8. *. v /. r))

(* --- sentinel contract ----------------------------------------------------- *)

let test_unknown_sentinel () =
  Alcotest.(check bool) "Time.unknown is unknown" false (Time.is_known Time.unknown);
  Alcotest.(check bool) "Rate.unknown is unknown" false (Rate.is_known Rate.unknown);
  Alcotest.(check bool) "Freq.unknown is unknown" false (Freq.is_known Freq.unknown);
  Alcotest.(check bool) "Time.zero is known" true (Time.is_known Time.zero);
  Alcotest.(check bool) "Rate.zero is known" true (Rate.is_known Rate.zero)

let test_exn_constructors () =
  let raises f = match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "secs_exn nan raises" true
    (raises (fun () -> Time.secs_exn Float.nan));
  Alcotest.(check bool) "bps_exn 0 raises" true
    (raises (fun () -> Rate.bps_exn 0.));
  Alcotest.(check bool) "bps_exn inf raises" true
    (raises (fun () -> Rate.bps_exn Float.infinity));
  Alcotest.(check bool) "hz_exn -1 raises" true
    (raises (fun () -> Freq.hz_exn (-1.)));
  Alcotest.(check bool) "bps_exn accepts finite positive" true
    (Float.equal (Rate.to_bps (Rate.bps_exn 5.)) 5.)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "units",
      [
        qtest prop_time_secs_roundtrip;
        qtest prop_rate_bps_roundtrip;
        qtest prop_freq_hz_roundtrip;
        qtest prop_bytes_roundtrip;
        qtest prop_of_float_roundtrip;
        qtest prop_time_ms_scaling;
        qtest prop_rate_mbps_scaling;
        qtest prop_bytes_bits_roundtrip;
        qtest prop_time_us_mins_scaling;
        qtest prop_rate_kbps_gbps_scaling;
        qtest prop_bytes_kib_mib_scaling;
        qtest prop_bytes_pow2_roundtrip;
        qtest prop_bytes_int_roundtrip;
        qtest prop_time_ms_accessor;
        qtest prop_rate_mbps_accessor;
        qtest prop_time_add_is_float_add;
        qtest prop_scale_is_float_mul;
        qtest prop_compare_agrees_with_float;
        qtest prop_freq_period_involution;
        qtest prop_rate_volume_roundtrip;
        qtest prop_rate_tx_time;
        Alcotest.test_case "unknown/zero sentinels" `Quick test_unknown_sentinel;
        Alcotest.test_case "_exn constructors reject" `Quick test_exn_constructors;
      ] );
  ]
