(* The parsetree rules (tool/analyze, migrated from tool/lint) must actually
   reject the patterns they document; otherwise @lint passing means nothing.
   Each rule gets a minimal offending fixture (checked as source strings, so
   nothing here trips the real tree-wide lint) and a clean twin that must
   pass. *)

module Rules = Nimbus_analyze.Rules
module Finding = Nimbus_analyze.Finding

let rules_of findings = List.map (fun f -> f.Finding.rule) findings

let check_rules msg expected actual =
  Alcotest.(check (list string)) msg expected (rules_of actual)

(* --- obj-magic ------------------------------------------------------------- *)

let test_obj_magic () =
  check_rules "Obj.magic flagged" [ "obj-magic" ]
    (Rules.check_ml ~path:"fixture.ml" "let f x = Obj.magic x");
  check_rules "Obj.repr not flagged" []
    (Rules.check_ml ~path:"fixture.ml" "let f x = Obj.repr x");
  check_rules "unrelated magic not flagged" []
    (Rules.check_ml ~path:"fixture.ml" "let magic x = x + 1")

(* --- float-compare --------------------------------------------------------- *)

let test_float_compare () =
  check_rules "= against float literal flagged" [ "float-compare" ]
    (Rules.check_ml ~path:"fixture.ml" "let f x = x = 0.5");
  check_rules "compare against float literal flagged" [ "float-compare" ]
    (Rules.check_ml ~path:"fixture.ml" "let f x = compare x 1.0");
  check_rules "<> against float literal flagged" [ "float-compare" ]
    (Rules.check_ml ~path:"fixture.ml" "let f x = x <> 3.14");
  check_rules "Float.equal not flagged" []
    (Rules.check_ml ~path:"fixture.ml" "let f x = Float.equal x 0.5");
  check_rules "int comparison not flagged" []
    (Rules.check_ml ~path:"fixture.ml" "let f x = x = 5");
  check_rules "float arithmetic not flagged" []
    (Rules.check_ml ~path:"fixture.ml" "let f x = x +. 0.5")

(* --- raw-float-param ------------------------------------------------------- *)

let test_raw_float_param () =
  check_rules "~link_rate:float in mli flagged" [ "raw-float-param" ]
    (Rules.check_mli ~path:"lib/sim/thing.mli"
       "val create : link_rate:float -> unit");
  check_rules "?sample_hz:float in mli flagged" [ "raw-float-param" ]
    (Rules.check_mli ~path:"lib/dsp/thing.mli"
       "val analyze : ?sample_hz:float -> unit -> unit");
  check_rules "typed rate param not flagged" []
    (Rules.check_mli ~path:"lib/sim/thing.mli"
       "val create : link_rate:Units.Rate.t -> unit");
  check_rules "non-suffixed float label not flagged" []
    (Rules.check_mli ~path:"lib/sim/thing.mli"
       "val create : gain:float -> unit");
  check_rules "lib/units itself exempt" []
    (Rules.check_mli ~path:"lib/units/rate.mli"
       "val weird : raw_rate:float -> unit")

(* --- parse errors surface as violations ------------------------------------ *)

let test_parse_error () =
  check_rules "syntax error reported, not raised" [ "parse-error" ]
    (Rules.check_ml ~path:"fixture.ml" "let let let")

(* --- missing-mli (filesystem rule, exercised in a temp tree) ---------------- *)

let test_missing_mli () =
  let root = Filename.temp_dir "lint_fixture" "" in
  let lib = Filename.concat root "lib" in
  Sys.mkdir lib 0o755;
  let write name contents =
    let oc = open_out (Filename.concat lib name) in
    output_string oc contents;
    close_out oc
  in
  write "covered.ml" "let x = 1";
  write "covered.mli" "val x : int";
  write "naked.ml" "let y = 2";
  let violations = Rules.check_missing_mli ~lib_root:lib in
  check_rules "exactly one missing-mli" [ "missing-mli" ] violations;
  (match violations with
  | [ v ] ->
    Alcotest.(check bool)
      "points at the uncovered module" true
      (Filename.basename v.Finding.file = "naked.ml")
  | _ -> Alcotest.fail "expected exactly one violation");
  List.iter
    (fun name -> Sys.remove (Filename.concat lib name))
    [ "covered.ml"; "covered.mli"; "naked.ml" ];
  Sys.rmdir lib;
  Sys.rmdir root

(* --- CRLF / BOM normalization ---------------------------------------------- *)

(* Windows-style sources used to shift reported line numbers (the lexer saw
   the \r as part of the line) and a UTF-8 BOM broke parsing entirely; both
   must now be normalized away before lexing, with positions matching the
   on-disk file. *)
let test_crlf_bom () =
  let src = "\xEF\xBB\xBFlet a = 1\r\nlet b = 2\r\nlet f x = Obj.magic x\r\n" in
  let findings = Rules.check_ml ~path:"fixture.ml" src in
  check_rules "BOM+CRLF source still linted" [ "obj-magic" ] findings;
  (match findings with
  | [ f ] ->
    Alcotest.(check int) "line number matches the on-disk file" 3 f.Finding.line
  | _ -> Alcotest.fail "expected exactly one finding");
  check_rules "clean BOM+CRLF source parses clean" []
    (Rules.check_ml ~path:"fixture.ml" "\xEF\xBB\xBFlet a = 1\r\nlet b = 2\r\n");
  check_rules "lone-CR line endings parse clean" []
    (Rules.check_ml ~path:"fixture.ml" "let a = 1\rlet b = 2\r")

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "obj-magic" `Quick test_obj_magic;
        Alcotest.test_case "float-compare" `Quick test_float_compare;
        Alcotest.test_case "raw-float-param" `Quick test_raw_float_param;
        Alcotest.test_case "parse error" `Quick test_parse_error;
        Alcotest.test_case "missing-mli" `Quick test_missing_mli;
        Alcotest.test_case "crlf/bom normalization" `Quick test_crlf_bom;
      ] );
  ]
