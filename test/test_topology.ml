(* lib/sim/topology: the multi-bottleneck fabric.  The headline property is
   the migration-safety oracle — a dumbbell run through the topology API
   produces byte-identical traces to the old direct Engine+Bottleneck wiring
   — plus multi-hop forwarding order, propagation timing, route validation,
   per-link/fabric conservation (qcheck over random chains), ECN marking,
   and the parking-lot experiment at the 1000-flow acceptance scale. *)

module Trace = Nimbus_trace.Trace
module Sink = Nimbus_trace.Sink
module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Packet = Nimbus_sim.Packet
module Rng = Nimbus_sim.Rng
module Topology = Nimbus_topology.Topology
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z_estimator = Nimbus_core.Z_estimator
module Source = Nimbus_traffic.Source
module E = Nimbus_experiments
module Time = Units.Time
module Rate = Units.Rate

(* --- dumbbell byte-identity (the migration-safety oracle) ------------------ *)

let bn_config ~trace =
  { (Bottleneck.Config.default ~rate:(Rate.bps 48e6)
       ~qdisc:(Qdisc.droptail ~capacity_bytes:600_000))
    with trace }

(* the Fig. 7 shape at test scale: one Nimbus flow, a Cubic flow joining
   mid-run; [wire] is either the old direct wiring or the topology dumbbell *)
let traced_scenario ~wire =
  let buf = Buffer.create 65536 in
  let tr = Trace.create ~mask:Trace.mask_all () in
  Trace.attach tr (Sink.jsonl_buffer buf);
  let engine = Engine.create { trace = tr } in
  let start_flow = wire engine tr in
  let nim =
    Nimbus.create
      { (Nimbus.Config.default ~mu:(Z_estimator.Mu.known (Rate.bps 48e6)))
        with seed = 11; trace = tr }
  in
  ignore (start_flow ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now engine)));
  Engine.schedule_at engine (Time.secs 8.) (fun () ->
      ignore (start_flow ~cc:(Nimbus_cc.Cubic.make ())));
  Engine.run_until engine (Time.secs 14.);
  Trace.close tr;
  Buffer.contents buf

let wire_direct engine tr =
  let bn = Bottleneck.create engine (bn_config ~trace:tr) in
  fun ~cc -> Flow.create engine bn ~cc ~prop_rtt:(Time.ms 50.) ()

let wire_topology engine tr =
  let topo, route =
    Topology.dumbbell engine
      { bottleneck = bn_config ~trace:tr; prop_delay = Time.zero }
  in
  fun ~cc -> Flow.create_via topo ~route ~cc ~prop_rtt:(Time.ms 50.) ()

let test_dumbbell_byte_identical () =
  let direct = traced_scenario ~wire:wire_direct in
  let via = traced_scenario ~wire:wire_topology in
  Alcotest.(check bool) "trace is non-trivial" true
    (String.length direct > 1000);
  Alcotest.(check bool)
    "topology dumbbell trace byte-identical to direct wiring" true
    (String.equal direct via)

(* --- builders -------------------------------------------------------------- *)

let chain engine n ~rate ~prop =
  let topo = Topology.create engine in
  let nodes =
    List.init (n + 1) (fun i ->
        Topology.add_node topo (Printf.sprintf "n%d" i))
  in
  let links =
    List.init n (fun i ->
        Topology.add_link topo
          ~src:(List.nth nodes i)
          ~dst:(List.nth nodes (i + 1))
          { bottleneck =
              Bottleneck.Config.default ~rate
                ~qdisc:(Qdisc.droptail ~capacity_bytes:1_000_000);
            prop_delay = prop })
  in
  (topo, nodes, links)

(* --- forwarding ------------------------------------------------------------ *)

let test_two_hop_fifo () =
  let engine = Engine.create Engine.Config.default in
  (* 12 Mbit/s: 1 ms per 1500 B packet *)
  let topo, _, links = chain engine 2 ~rate:(Rate.mbps 12.) ~prop:(Time.ms 2.) in
  let route = Topology.Route.of_links links in
  Alcotest.(check int) "two hops" 2 (Topology.Route.hops route);
  let seqs = ref [] in
  let ingress =
    Topology.attach topo ~route ~flow:5 ~sink:(fun pkt ->
        seqs := pkt.Packet.seq :: !seqs)
  in
  for seq = 0 to 19 do
    ingress
      (Packet.make ~flow:5 ~seq ~size:1500 ~now:(Engine.now engine) ())
  done;
  Engine.run_until engine (Time.secs 1.);
  Alcotest.(check (list int)) "FIFO across both hops"
    (List.init 20 (fun i -> i))
    (List.rev !seqs);
  Alcotest.(check int) "fabric counted every ingress" 20
    (Topology.injected_packets topo);
  Alcotest.(check int) "fabric counted every terminal delivery" 20
    (Topology.completed_packets topo);
  Alcotest.(check int) "nothing left in transit" 0
    (Topology.in_transit_packets topo);
  Alcotest.(check (option string)) "conservation holds" None
    (Topology.conservation_check topo)

let test_prop_delay_timing () =
  let engine = Engine.create Engine.Config.default in
  let topo, _, links =
    chain engine 1 ~rate:(Rate.mbps 12.) ~prop:(Time.ms 10.)
  in
  let route = Topology.Route.of_links links in
  let arrival = ref Time.zero in
  let ingress =
    Topology.attach topo ~route ~flow:0 ~sink:(fun _ ->
        arrival := Engine.now engine)
  in
  ingress (Packet.make ~flow:0 ~seq:0 ~size:1500 ~now:(Engine.now engine) ());
  Engine.run_until engine (Time.secs 1.);
  (* 1 ms serialisation at 12 Mbit/s + 10 ms propagation *)
  Alcotest.(check (float 1e-9)) "serialisation + propagation" 0.011
    (Time.to_secs !arrival)

(* --- construction and route validation ------------------------------------- *)

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

let test_route_validation () =
  let engine = Engine.create Engine.Config.default in
  let topo = Topology.create engine in
  let a = Topology.add_node topo "a" in
  let b = Topology.add_node topo "b" in
  let c = Topology.add_node topo "c" in
  let d = Topology.add_node topo "d" in
  let cfg =
    { Topology.Link.Config.bottleneck =
        Bottleneck.Config.default ~rate:(Rate.mbps 10.)
          ~qdisc:(Qdisc.droptail ~capacity_bytes:100_000);
      prop_delay = Time.zero }
  in
  let ab = Topology.add_link topo ~src:a ~dst:b cfg in
  let cd = Topology.add_link topo ~src:c ~dst:d cfg in
  Alcotest.(check bool) "empty route rejected" true
    (raises_invalid (fun () -> Topology.Route.of_links []));
  Alcotest.(check bool) "non-contiguous route rejected" true
    (raises_invalid (fun () -> Topology.Route.of_links [ ab; cd ]));
  Alcotest.(check bool) "self-loop link rejected" true
    (raises_invalid (fun () -> Topology.add_link topo ~src:a ~dst:a cfg));
  Alcotest.(check bool) "negative prop delay rejected" true
    (raises_invalid (fun () ->
         Topology.add_link topo ~src:b ~dst:c
           { cfg with prop_delay = Time.secs (-1.) }));
  (* a route made of another topology's links must not attach here *)
  let engine2 = Engine.create Engine.Config.default in
  let _, _, links2 = chain engine2 1 ~rate:(Rate.mbps 10.) ~prop:Time.zero in
  let foreign = Topology.Route.of_links links2 in
  Alcotest.(check bool) "foreign route rejected" true
    (raises_invalid (fun () ->
         Topology.attach topo ~route:foreign ~flow:0 ~sink:ignore));
  Alcotest.(check string) "link label" "a->b" (Topology.link_label ab)

let test_find_route () =
  let engine = Engine.create Engine.Config.default in
  let topo = Topology.create engine in
  let n = Array.init 4 (fun i -> Topology.add_node topo (string_of_int i)) in
  let cfg =
    { Topology.Link.Config.bottleneck =
        Bottleneck.Config.default ~rate:(Rate.mbps 10.)
          ~qdisc:(Qdisc.droptail ~capacity_bytes:100_000);
      prop_delay = Time.zero }
  in
  (* diamond 0->1->3 and 0->2->3, plus a direct shortcut 0->3 *)
  ignore (Topology.add_link topo ~src:n.(0) ~dst:n.(1) cfg);
  ignore (Topology.add_link topo ~src:n.(1) ~dst:n.(3) cfg);
  ignore (Topology.add_link topo ~src:n.(0) ~dst:n.(2) cfg);
  ignore (Topology.add_link topo ~src:n.(2) ~dst:n.(3) cfg);
  let direct = Topology.add_link topo ~src:n.(0) ~dst:n.(3) cfg in
  (match Topology.find_route topo ~src:n.(0) ~dst:n.(3) with
   | None -> Alcotest.fail "route exists"
   | Some r ->
     Alcotest.(check int) "BFS finds the min-hop route" 1
       (Topology.Route.hops r);
     Alcotest.(check bool) "via the shortcut" true
       (List.memq direct (Topology.Route.links r)));
  Alcotest.(check bool) "unreachable is None" true
    (Topology.find_route topo ~src:n.(3) ~dst:n.(0) = None)

(* --- conservation over random chains (qcheck) ------------------------------ *)

(* random small chains under mixed attached traffic: after any run, every
   per-link ledger and the fabric identity must balance.  All traffic goes
   through attach, so the fabric check applies. *)
let conservation_prop (nlinks, nsrc, seed) =
  let engine = Engine.create Engine.Config.default in
  let topo, _, links =
    chain engine nlinks
      ~rate:(Rate.mbps (6. +. float_of_int (seed mod 5)))
      ~prop:(Time.ms (float_of_int (seed mod 3)))
  in
  let rng = Rng.create seed in
  let full_route = Topology.Route.of_links links in
  (* one closed-loop flow end to end *)
  ignore
    (Flow.create_via topo ~route:full_route ~cc:(Nimbus_cc.Cubic.make ())
       ~prop_rtt:(Time.ms 20.) ());
  (* open-loop sources over random sub-routes *)
  for s = 0 to nsrc - 1 do
    let start = (seed + s) mod nlinks in
    let len = 1 + ((seed + s) mod (nlinks - start)) in
    let sub =
      Topology.Route.of_links
        (List.filteri (fun i _ -> i >= start && i < start + len) links)
    in
    if s mod 2 = 0 then
      ignore
        (Source.poisson_via topo ~route:sub ~rng:(Rng.split rng)
           ~rate:(Rate.mbps 4.) ())
    else ignore (Source.cbr_via topo ~route:sub ~rate:(Rate.mbps 4.) ())
  done;
  Engine.run_until engine (Time.secs 1.);
  (match Topology.conservation_check topo with
   | None -> ()
   | Some detail -> QCheck.Test.fail_reportf "conservation: %s" detail);
  List.for_all
    (fun l ->
      let b = Topology.link_bottleneck l in
      Bottleneck.offered_packets b
      = Bottleneck.delivered_packets b + Bottleneck.drops b
        + Bottleneck.queued_packets b)
    links

let test_conservation_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"topology: per-link + fabric conservation on random chains"
       QCheck.(
         triple (int_range 1 5) (int_range 0 4) (int_range 0 10_000))
       conservation_prop)

(* --- ECN ------------------------------------------------------------------- *)

(* overload a PIE queue and watch the decision split: with ECN on, early
   congestion becomes marks (and the mark travels on the packet); with ECN
   off (the default), the same pressure is drops only *)
let pie_bottleneck ~ecn engine ~seed =
  Bottleneck.create engine
    (Bottleneck.Config.default ~rate:(Rate.mbps 12.)
       ~qdisc:
         (Qdisc.pie ~ecn ~capacity_bytes:1_000_000
            ~target_delay:(Time.ms 5.) ~link_rate:(Rate.mbps 12.)
            ~rng:(Rng.create seed) ()))

let overload engine bn =
  let src = Source.cbr engine bn ~rate:(Rate.mbps 24.) () in
  let marked = ref 0 in
  Bottleneck.set_sink bn ~flow:(Source.flow_id src) (fun pkt ->
      if pkt.Packet.ecn then incr marked);
  Engine.run_until engine (Time.secs 3.);
  !marked

let test_pie_ecn_marks () =
  let engine = Engine.create Engine.Config.default in
  let bn = pie_bottleneck ~ecn:true engine ~seed:3 in
  let marked = overload engine bn in
  Alcotest.(check bool) "ECN-enabled PIE marks under load" true
    (Bottleneck.marks bn > 0);
  Alcotest.(check bool) "marks ride the packets" true (marked > 0);
  Alcotest.(check int) "ledger counts marked packets as admitted"
    (Bottleneck.offered_packets bn)
    (Bottleneck.delivered_packets bn + Bottleneck.drops bn
    + Bottleneck.queued_packets bn)

let test_pie_ecn_off_by_default () =
  let engine = Engine.create Engine.Config.default in
  let bn = pie_bottleneck ~ecn:false engine ~seed:3 in
  let marked = overload engine bn in
  Alcotest.(check int) "no marks with ECN off" 0 (Bottleneck.marks bn);
  Alcotest.(check int) "no marked packets with ECN off" 0 marked;
  Alcotest.(check bool) "pressure shows up as drops instead" true
    (Bottleneck.drops bn > 0)

let test_droptail_never_marks () =
  let engine = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create engine
      (Bottleneck.Config.default ~rate:(Rate.mbps 12.)
         ~qdisc:(Qdisc.droptail ~capacity_bytes:30_000))
  in
  let marked = overload engine bn in
  Alcotest.(check int) "droptail never marks" 0 (Bottleneck.marks bn);
  Alcotest.(check int) "no marked packets" 0 marked

(* --- parking lot at acceptance scale --------------------------------------- *)

let test_parking_lot_scale () =
  let p = E.Exp_parking_lot.scaled_params ~links:3 ~flows:1000 ~duration:2. () in
  let o = E.Exp_parking_lot.run_custom p in
  Alcotest.(check bool) "at least 1000 flows" true
    (o.E.Exp_parking_lot.flows >= 1000);
  Alcotest.(check int) "per-link + fabric conservation clean" 0
    o.E.Exp_parking_lot.violations;
  Alcotest.(check bool) "traffic actually flowed" true
    (o.E.Exp_parking_lot.delivered > 0);
  Alcotest.(check int) "two tables" 2
    (List.length o.E.Exp_parking_lot.tables)

let test_parking_lot_registered () =
  Alcotest.(check bool) "parking_lot is in the registry" true
    (E.Registry.find "parking_lot" <> None)

let suite =
  [ ( "topology.dumbbell",
      [ Alcotest.test_case "byte-identical to direct wiring" `Quick
          test_dumbbell_byte_identical ] );
    ( "topology.forwarding",
      [ Alcotest.test_case "two-hop FIFO" `Quick test_two_hop_fifo;
        Alcotest.test_case "propagation timing" `Quick test_prop_delay_timing
      ] );
    ( "topology.routes",
      [ Alcotest.test_case "validation" `Quick test_route_validation;
        Alcotest.test_case "find_route BFS" `Quick test_find_route ] );
    ( "topology.conservation", [ test_conservation_qcheck ] );
    ( "topology.ecn",
      [ Alcotest.test_case "pie marks when enabled" `Quick test_pie_ecn_marks;
        Alcotest.test_case "pie off by default" `Quick
          test_pie_ecn_off_by_default;
        Alcotest.test_case "droptail never marks" `Quick
          test_droptail_never_marks ] );
    ( "topology.parking_lot",
      [ Alcotest.test_case "1000 flows, conservation" `Quick
          test_parking_lot_scale;
        Alcotest.test_case "registered" `Quick test_parking_lot_registered ]
    ) ]
