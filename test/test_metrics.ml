(* Tests for the measurement layer. *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
open Nimbus_metrics
module Time = Units.Time
module Rate = Units.Rate

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- series --------------------------------------------------------------- *)

let test_series_basics () =
  let s = Series.create () in
  Alcotest.(check int) "empty" 0 (Series.length s);
  Alcotest.(check bool) "last nan" true (Float.is_nan (Series.last_value s));
  for i = 0 to 99 do
    Series.add s ~time:(Time.secs (float_of_int i)) ~value:(float_of_int (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Series.length s);
  check_close "last" 198. (Series.last_value s);
  check_close "times" 42. (Series.times s).(42);
  check_close "values" 84. (Series.values s).(42)

let test_series_windows () =
  let s = Series.create () in
  for i = 0 to 9 do
    Series.add s ~time:(Time.secs (float_of_int i)) ~value:(float_of_int i)
  done;
  let w = Series.values_between s ~lo:(Time.secs 3.) ~hi:(Time.secs 6.) in
  Alcotest.(check (array (float 0.))) "half-open window" [| 3.; 4.; 5. |] w;
  check_close "mean over window" 4. (Series.mean_between s ~lo:(Time.secs 3.) ~hi:(Time.secs 6.));
  Alcotest.(check bool) "empty window nan" true
    (Float.is_nan (Series.mean_between s ~lo:(Time.secs 100.) ~hi:(Time.secs 200.)))

let test_series_iter_order () =
  let s = Series.create () in
  Series.add s ~time:(Time.secs 1.) ~value:10.;
  Series.add s ~time:(Time.secs 2.) ~value:20.;
  let acc = ref [] in
  Series.iter s (fun t v -> acc := (t, v) :: !acc);
  Alcotest.(check bool) "insertion order" true
    (List.rev !acc = [ (1., 10.); (2., 20.) ])

(* --- monitor -------------------------------------------------------------- *)

let test_monitor_throughput_math () =
  let e = Engine.create Engine.Config.default in
  let counter = ref 0 in
  (* grow the counter by 1250 bytes every 100 ms = 100 kbit/s *)
  Engine.every e ~dt:(Time.ms 100.) (fun () -> counter := !counter + 1250);
  let series = Monitor.throughput e ~interval:(Time.secs 1.0) (fun () -> !counter) in
  Engine.run_until e (Time.secs 10.);
  let values = Series.values series in
  Alcotest.(check bool) "some samples" true (Array.length values >= 9);
  (* skip the first sample (partial interval alignment) *)
  check_close ~eps:1e-6 "rate" 100_000. values.(5)

let test_monitor_queue_delay () =
  let e = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create e
      (Bottleneck.Config.default ~rate:(Rate.bps 12e6)
         ~qdisc:(Qdisc.droptail ~capacity_bytes:1_000_000))
  in
  let series = Monitor.queue_delay e bn ~interval:(Time.ms 10.) () in
  (* enqueue 100 packets at t=0; queue drains at 1 ms/packet *)
  for seq = 0 to 99 do
    Bottleneck.enqueue bn
      (Nimbus_sim.Packet.make ~flow:0 ~seq ~size:1500 ~now:Time.zero ())
  done;
  Engine.run_until e (Time.secs 0.2);
  let first = (Series.values series).(0) in
  (* after 10 ms, ~90 packets remain = ~90 ms of drain time *)
  Alcotest.(check bool) "tracks backlog" true (first > 0.08 && first < 0.1)

(* --- accuracy ------------------------------------------------------------- *)

let test_accuracy_counts () =
  let a = Accuracy.create () in
  Alcotest.(check bool) "empty nan" true (Float.is_nan (Accuracy.accuracy a));
  Accuracy.record a ~predicted_elastic:true ~truth_elastic:true;
  Accuracy.record a ~predicted_elastic:false ~truth_elastic:false;
  Accuracy.record a ~predicted_elastic:true ~truth_elastic:false;
  Accuracy.record a ~predicted_elastic:false ~truth_elastic:true;
  Alcotest.(check int) "samples" 4 (Accuracy.samples a);
  check_close "accuracy" 0.5 (Accuracy.accuracy a);
  check_close "tpr" 0.5 (Accuracy.true_positive_rate a);
  check_close "tnr" 0.5 (Accuracy.true_negative_rate a)

let test_accuracy_one_sided () =
  let a = Accuracy.create () in
  Accuracy.record a ~predicted_elastic:true ~truth_elastic:true;
  Alcotest.(check bool) "tnr undefined" true
    (Float.is_nan (Accuracy.true_negative_rate a));
  check_close "tpr" 1. (Accuracy.true_positive_rate a)

(* --- fairness ------------------------------------------------------------- *)

let test_jain () =
  check_close "equal shares" 1. (Fairness.jain [| 5.; 5.; 5.; 5. |]);
  check_close "one hog" 0.25 (Fairness.jain [| 1.; 0.; 0.; 0. |]);
  Alcotest.(check bool) "empty nan" true (Float.is_nan (Fairness.jain [||]))

let test_normalized_share () =
  check_close "half" 0.5 (Fairness.normalized_share ~achieved:(Rate.bps 12.) ~fair:(Rate.bps 24.));
  Alcotest.(check bool) "zero fair nan" true
    (Float.is_nan (Fairness.normalized_share ~achieved:(Rate.bps 1.) ~fair:Rate.zero))

(* --- fct ------------------------------------------------------------------ *)

let test_fct_bucketize () =
  let fcts =
    Array.map
      (fun (size, fct) -> (size, Time.secs fct))
      [| (10_000, 0.1); (14_000, 0.2); (100_000, 1.0); (2_000_000, 3.0);
         (999_000_000, 60.0) |]
  in
  let buckets = Fct.bucketize fcts in
  Alcotest.(check int) "bucket count" 5 (Array.length buckets);
  Alcotest.(check int) "small flows" 2 (Array.length buckets.(0));
  Alcotest.(check int) "150KB bucket" 1 (Array.length buckets.(1));
  Alcotest.(check int) "2MB lands in the 15MB bucket" 1
    (Array.length buckets.(3));
  Alcotest.(check int) "oversized lands in last" 1 (Array.length buckets.(4));
  let p95 = Fct.p95 buckets in
  Alcotest.(check bool) "empty bucket nan" true (Float.is_nan p95.(2));
  check_close ~eps:0.02 "p95 of 2-elem bucket" 0.195 p95.(0)

let test_fct_labels () =
  Alcotest.(check string) "KB" "15KB" (Fct.bucket_label 15_000);
  Alcotest.(check string) "MB" "1.5MB" (Fct.bucket_label 1_500_000)

let prop_jain_bounds =
  QCheck.Test.make ~count:200 ~name:"fairness: jain within [1/n, 1]"
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.01 1e6))
    (fun xs ->
      let a = Array.of_list xs in
      let j = Fairness.jain a in
      let n = float_of_int (Array.length a) in
      j >= (1. /. n) -. 1e-9 && j <= 1. +. 1e-9)

let prop_series_window_subset =
  QCheck.Test.make ~count:100 ~name:"series: window values are a subset"
    QCheck.(list (pair (float_range 0. 100.) (float_bound_exclusive 1000.)))
    (fun pts ->
      let s = Series.create () in
      List.iter (fun (t, v) -> Series.add s ~time:(Time.secs t) ~value:v) pts;
      let w = Series.values_between s ~lo:(Time.secs 25.) ~hi:(Time.secs 75.) in
      let all = Array.to_list (Series.values s) in
      Array.for_all (fun v -> List.mem v all) w)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "metrics.series",
      [ Alcotest.test_case "basics" `Quick test_series_basics;
        Alcotest.test_case "windows" `Quick test_series_windows;
        Alcotest.test_case "iter order" `Quick test_series_iter_order;
        qtest prop_series_window_subset ] );
    ( "metrics.monitor",
      [ Alcotest.test_case "throughput math" `Quick test_monitor_throughput_math;
        Alcotest.test_case "queue delay" `Quick test_monitor_queue_delay ] );
    ( "metrics.accuracy",
      [ Alcotest.test_case "counts" `Quick test_accuracy_counts;
        Alcotest.test_case "one-sided" `Quick test_accuracy_one_sided ] );
    ( "metrics.fairness",
      [ Alcotest.test_case "jain" `Quick test_jain;
        Alcotest.test_case "normalized share" `Quick test_normalized_share;
        qtest prop_jain_bounds ] );
    ( "metrics.fct",
      [ Alcotest.test_case "bucketize" `Quick test_fct_bucketize;
        Alcotest.test_case "labels" `Quick test_fct_labels ] ) ]
