(* lib/trace: ring semantics, codecs, sinks, spans, and the end-to-end
   guarantees the tracing layer advertises — deterministic byte-identical
   JSONL for a given seed (whatever the pool size) and an allocation-free
   disabled path. *)

module Trace = Nimbus_trace.Trace
module Event = Nimbus_trace.Event
module Sink = Nimbus_trace.Sink
module Span = Nimbus_trace.Span
module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z_estimator = Nimbus_core.Z_estimator
module Time = Units.Time
module Rate = Units.Rate

let contains_sub haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl
    && (String.equal (String.sub haystack i nl) needle || go (i + 1))
  in
  nl = 0 || go 0

(* --- ring buffer ----------------------------------------------------------- *)

let test_ring_wraparound () =
  let tr = Trace.create ~capacity:4 ~mask:Trace.mask_all () in
  for i = 0 to 9 do
    Trace.z_tick tr ~now:(float_of_int i) ~z:1. ~send:2. ~recv:3. ~base:4.
  done;
  Alcotest.(check int) "recorded caps at capacity" 4 (Trace.recorded tr);
  Alcotest.(check int) "overwritten events counted" 6 (Trace.dropped tr);
  Alcotest.(check int) "total counts everything" 10 (Trace.total tr);
  let times = ref [] in
  Trace.iter tr (fun ~time _ -> times := time :: !times);
  Alcotest.(check (list (float 0.)))
    "keeps the newest events, oldest first" [ 6.; 7.; 8.; 9. ]
    (List.rev !times)

let test_clear_keeps_counters () =
  let tr = Trace.create ~capacity:4 ~mask:Trace.mask_all () in
  for i = 0 to 5 do
    Trace.demoted tr ~now:(float_of_int i)
  done;
  Trace.clear tr;
  Alcotest.(check int) "ring empty" 0 (Trace.recorded tr);
  Alcotest.(check int) "dropped survives clear" 2 (Trace.dropped tr);
  Alcotest.(check int) "total survives clear" 6 (Trace.total tr)

let test_category_filter () =
  let mask = Event.cat_bit Event.Mode in
  let tr = Trace.create ~mask () in
  Alcotest.(check bool) "wants mode" true (Trace.want tr Event.Mode);
  Alcotest.(check bool) "filters detector" false
    (Trace.want tr Event.Detector);
  Trace.z_tick tr ~now:0. ~z:1. ~send:1. ~recv:1. ~base:1.;
  Trace.mode_switch tr ~now:1. ~from_mode:Event.Delay
    ~to_mode:Event.Competitive ~role:Event.Pulser;
  Alcotest.(check int) "only the mode event recorded" 1 (Trace.recorded tr);
  Alcotest.(check bool) "disabled records nothing" false
    (Trace.enabled Trace.disabled);
  Trace.elected Trace.disabled ~now:0. ~p:1.;
  Alcotest.(check int) "disabled stays empty" 0 (Trace.recorded Trace.disabled)

let test_parse_filter () =
  (match Trace.parse_filter "detector,mode" with
   | Ok mask ->
     Alcotest.(check int) "two categories"
       (Event.cat_bit Event.Detector lor Event.cat_bit Event.Mode)
       mask
   | Error e -> Alcotest.fail e);
  (match Trace.parse_filter "all" with
   | Ok mask -> Alcotest.(check int) "all" Trace.mask_all mask
   | Error e -> Alcotest.fail e);
  match Trace.parse_filter "detector,bogus" with
  | Ok _ -> Alcotest.fail "bogus category accepted"
  | Error _ -> ()

(* --- codecs ---------------------------------------------------------------- *)

let sample_events : (float * Event.t) list =
  [ (0.5, Event.Sched { at = 0.75; pending = 12 });
    (1., Event.Pkt_enqueue { flow = 1; seq = 42; qlen = 3000 });
    (1.1, Event.Pkt_deliver { flow = 1; seq = 42; qdelay = 0.0125 });
    (1.2, Event.Pkt_drop { flow = 2; seq = 7; reason = Event.Policer });
    (2., Event.Rate_set { before_mbps = 48.; after_mbps = 0. });
    (2.1, Event.Loss_model { installed = true });
    (3., Event.Fault_fired { fault = Event.F_burst; p1 = 0.05; p2 = 0.4 });
    (3.5, Event.Flow_control { flow = 0; control = Event.C_stop; value = 0. });
    (4., Event.Z_tick
           { z_mbps = 23.75; send_mbps = 48.; recv_mbps = 47.5;
             base_mbps = 24. });
    (5., Event.Window { eta = 2.25; zbar = 20.; tone_lo = 0.5; tone_hi = 3. });
    (5.1, Event.Pulse_phase { freq_hz = 5.; value = 6. });
    (6., Event.Detection
           { eta = 0.75; mode = Event.Delay; role = Event.Watcher;
             evidence = Event.Quiet });
    (6.5, Event.Mode_switch
            { from_mode = Event.Delay; to_mode = Event.Competitive;
              role = Event.Pulser });
    (7., Event.Elected { p = 0.125 });
    (7.5, Event.Demoted);
    (8., Event.Keepalive { tone = 1.5; alive = true });
    (9., Event.Violation { rule = 3 }) ]

let test_binary_roundtrip () =
  let buf = Buffer.create 1024 in
  List.iter (fun (time, ev) -> Event.to_binary buf ~time ev) sample_events;
  let s = Buffer.contents buf in
  Alcotest.(check int) "record size"
    (List.length sample_events * Event.binary_record_size)
    (String.length s);
  List.iteri
    (fun i (time, ev) ->
      match Event.of_binary s ~pos:(i * Event.binary_record_size) with
      | None -> Alcotest.failf "record %d did not decode" i
      | Some (time', ev') ->
        Alcotest.(check (float 0.)) "time round-trips" time time';
        if ev' <> ev then
          Alcotest.failf "event %d did not round-trip (%s)" i
            (Event.name ev))
    sample_events

let test_float_str () =
  Alcotest.(check string) "short decimal" "0.1" (Event.float_str 0.1);
  Alcotest.(check string) "integer" "48" (Event.float_str 48.);
  Alcotest.(check string) "nan" "nan" (Event.float_str nan);
  Alcotest.(check string) "inf" "inf" (Event.float_str infinity);
  Alcotest.(check string) "-inf" "-inf" (Event.float_str neg_infinity);
  (* shortest-round-trip means parsing the output recovers the bits *)
  List.iter
    (fun x ->
      let s = Event.float_str x in
      if not (Float.equal (float_of_string s) x) then
        Alcotest.failf "%h does not round-trip through %S" x s)
    [ 0.1; 1. /. 3.; 1e-300; 6.02e23; -0.0125; Float.pi ]

let test_json_shape () =
  let buf = Buffer.create 256 in
  Event.to_json buf ~time:6.5
    (Event.Mode_switch
       { from_mode = Event.Delay; to_mode = Event.Competitive;
         role = Event.Pulser });
  Alcotest.(check string) "mode_switch line"
    {|{"t":6.5,"ev":"mode_switch","from":"delay","to":"competitive","role":"pulser"}|}
    (Buffer.contents buf)

(* --- sinks ----------------------------------------------------------------- *)

let test_memory_sink_flush () =
  let tr = Trace.create ~capacity:8 ~mask:Trace.mask_all () in
  let sink, collected = Sink.memory () in
  Trace.attach tr sink;
  Trace.elected tr ~now:1. ~p:0.5;
  Trace.demoted tr ~now:2.;
  Trace.flush tr;
  Alcotest.(check int) "ring drained" 0 (Trace.recorded tr);
  (match collected () with
   | [ (t1, Event.Elected { p }); (t2, Event.Demoted) ] ->
     Alcotest.(check (float 0.)) "first time" 1. t1;
     Alcotest.(check (float 0.)) "second time" 2. t2;
     Alcotest.(check (float 0.)) "payload" 0.5 p
   | evs -> Alcotest.failf "unexpected events (%d)" (List.length evs));
  Trace.elected tr ~now:3. ~p:1.;
  Trace.close tr;
  Alcotest.(check int) "close flushes the rest" 3
    (List.length (collected ()))

let test_summarize_file () =
  let path = Filename.temp_file "nimtrace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let tr = Trace.create ~mask:Trace.mask_all () in
  let oc = open_out_bin path in
  Trace.attach tr (Sink.jsonl oc);
  Trace.z_tick tr ~now:0.01 ~z:10. ~send:48. ~recv:47. ~base:24.;
  Trace.z_tick tr ~now:0.02 ~z:11. ~send:48. ~recv:47. ~base:24.;
  Trace.mode_switch tr ~now:0.03 ~from_mode:Event.Delay
    ~to_mode:Event.Competitive ~role:Event.Pulser;
  Trace.close tr;
  match Sink.summarize_file path with
  | Error e -> Alcotest.fail e
  | Ok summary ->
    Alcotest.(check bool) "counts z ticks" true (contains_sub summary "z_tick");
    Alcotest.(check bool) "counts the switch" true
      (contains_sub summary "mode_switch")

let test_summarize_binary_file () =
  let path = Filename.temp_file "nimtrace" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let tr = Trace.create ~mask:Trace.mask_all () in
  let oc = open_out_bin path in
  Trace.attach tr (Sink.binary oc);
  Trace.elected tr ~now:1.5 ~p:0.25;
  Trace.close tr;
  match Sink.summarize_file path with
  | Error e -> Alcotest.fail e
  | Ok summary ->
    Alcotest.(check bool) "decodes the election" true
      (contains_sub summary "elected")

(* --- Flow.apply ------------------------------------------------------------ *)

let make_link ?(trace = Trace.disabled) () =
  let e = Engine.create { trace } in
  let bn =
    Bottleneck.create e
      { (Bottleneck.Config.default ~rate:(Rate.bps 48e6)
           ~qdisc:(Qdisc.droptail ~capacity_bytes:600_000))
        with trace }
  in
  (e, bn)

let test_flow_apply () =
  let tr = Trace.create ~mask:Trace.mask_all () in
  let e, bn = make_link ~trace:tr () in
  let f =
    Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ()) ~prop_rtt:(Time.ms 50.) ()
  in
  Flow.apply f (Flow.Control.Extra_delay (Time.ms 20.));
  Alcotest.(check (float 1e-9)) "extra delay applied" 0.02
    (Time.to_secs (Flow.extra_delay f));
  (try
     Flow.apply f (Flow.Control.Extra_delay (Time.secs nan));
     Alcotest.fail "non-finite extra delay accepted"
   with Invalid_argument _ -> ());
  Flow.apply f (Flow.Control.Ack_loss (Some (fun () -> false)));
  Flow.apply f (Flow.Control.Ack_loss None);
  Alcotest.(check bool) "running" false (Flow.stopped f);
  Flow.apply f Flow.Control.Stop;
  Alcotest.(check bool) "stopped" true (Flow.stopped f);
  (* each successful mutation left a flow_control event *)
  let controls = ref [] in
  Trace.iter tr (fun ~time:_ ev ->
      match ev with
      | Event.Flow_control { control; _ } -> controls := control :: !controls
      | _ -> ());
  Alcotest.(check int) "four control events" 4 (List.length !controls);
  Alcotest.(check bool) "kinds in order" true
    (List.rev !controls
    = [ Event.C_extra_delay; Event.C_ack_loss; Event.C_ack_off; Event.C_stop ])

(* --- spans ----------------------------------------------------------------- *)

let test_span_aggregation () =
  let now = ref 0. in
  Span.reset ();
  Span.set_clock (fun () -> !now);
  Span.enable ();
  Fun.protect
    ~finally:(fun () ->
      Span.disable ();
      Span.set_clock Sys.time;
      Span.reset ())
  @@ fun () ->
  Span.enter Span.Fft;
  now := 0.25;
  Span.leave Span.Fft;
  Span.enter Span.Fft;
  now := 0.35;
  Span.leave Span.Fft;
  (* unbalanced leave: ignored *)
  Span.leave Span.Spectrum;
  match Span.stats () with
  | [ { Span.s_id = Span.Fft; s_count; s_total; s_max } ] ->
    Alcotest.(check int) "count" 2 s_count;
    Alcotest.(check (float 1e-9)) "total" 0.35 s_total;
    Alcotest.(check (float 1e-9)) "max" 0.25 s_max;
    let report = Span.report () in
    Alcotest.(check bool) "report names the span" true
      (contains_sub report "fft")
  | stats -> Alcotest.failf "unexpected stats (%d entries)" (List.length stats)

let test_span_disabled_noop () =
  Span.reset ();
  Span.enter Span.Fft;
  Span.leave Span.Fft;
  Alcotest.(check int) "nothing accrued while disabled" 0
    (List.length (Span.stats ()))

(* --- allocation ------------------------------------------------------------ *)

(* the acceptance bar: with tracing disabled the emit path allocates zero
   minor words.  Measured as a slope — the per-iteration delta between a
   1k-iteration and an 11k-iteration loop must be exactly zero, which
   cancels the constant cost of the Gc counter reads themselves. *)
let measure_disabled_emits n =
  let tr = Trace.disabled in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    if Trace.want tr Event.Detector then
      Trace.z_tick tr ~now:0. ~z:1. ~send:2. ~recv:3. ~base:4.;
    if Trace.want tr Event.Mode then
      Trace.mode_switch tr ~now:0. ~from_mode:Event.Delay
        ~to_mode:Event.Competitive ~role:Event.Pulser
  done;
  Gc.minor_words () -. w0

let test_disabled_zero_alloc () =
  ignore (measure_disabled_emits 1);
  let d1 = measure_disabled_emits 1_000 in
  let d2 = measure_disabled_emits 11_000 in
  Alcotest.(check (float 0.)) "0 minor words per disabled emit" 0. (d2 -. d1)

(* the enabled path stores into preallocated arrays: recording 10k events
   into a big ring must not grow with the event count either (the guard +
   emitter calls may box a bounded number of floats per call site, so this
   is asserted as a slope too, with the same tolerance: exactly equal) *)
let measure_enabled_emits tr n =
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    if Trace.want tr Event.Detector then
      Trace.z_tick tr ~now:0. ~z:1. ~send:2. ~recv:3. ~base:4.
  done;
  Gc.minor_words () -. w0

let test_enabled_steady_alloc () =
  let tr = Trace.create ~capacity:32768 ~mask:Trace.mask_all () in
  ignore (measure_enabled_emits tr 1);
  let d1 = measure_enabled_emits tr 1_000 in
  let d2 = measure_enabled_emits tr 1_000 in
  Alcotest.(check (float 0.)) "steady enabled emits don't grow the heap" 0.
    (d2 -. d1)

(* --- end-to-end determinism ------------------------------------------------ *)

(* the Fig. 7 scenario: one Nimbus flow on a 48 Mbit/s link, a Cubic flow
   joining at t = 20 s; the detector must switch delay -> competitive *)
let traced_scenario ~mask ~seed =
  let buf = Buffer.create 65536 in
  let tr = Trace.create ~mask () in
  Trace.attach tr (Sink.jsonl_buffer buf);
  let e, bn = make_link ~trace:tr () in
  let nim =
    Nimbus.create
      { (Nimbus.Config.default ~mu:(Z_estimator.Mu.known (Rate.bps 48e6)))
        with seed; trace = tr }
  in
  let _flow =
    Flow.create e bn
      ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now e))
      ~prop_rtt:(Time.ms 50.) ()
  in
  Engine.schedule_at e (Time.secs 20.) (fun () ->
      ignore
        (Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ())
           ~prop_rtt:(Time.ms 50.) ()));
  Engine.run_until e (Time.secs 32.);
  Trace.close tr;
  Buffer.contents buf

let test_trace_deterministic () =
  let run () = traced_scenario ~mask:Trace.mask_all ~seed:11 in
  let a = run () and b = run () in
  Alcotest.(check bool) "trace is non-trivial" true
    (String.length a > 1000);
  Alcotest.(check bool) "same seed, byte-identical JSONL" true
    (String.equal a b)

let test_golden_mode_switch () =
  let mask = Event.cat_bit Event.Mode in
  let jsonl = traced_scenario ~mask ~seed:11 in
  let lines =
    List.filter
      (fun l -> not (String.equal l ""))
      (String.split_on_char '\n' jsonl)
  in
  let switches =
    List.filter (fun l -> contains_sub l {|"ev":"mode_switch"|}) lines
  in
  (* golden shape: the run contains exactly one switch, delay->competitive,
     as the pulser, after the Cubic flow joins at t = 20 s *)
  (match switches with
   | [ line ] ->
     Alcotest.(check bool) "delay -> competitive as pulser" true
       (contains_sub line
          {|"ev":"mode_switch","from":"delay","to":"competitive","role":"pulser"}|});
     Scanf.sscanf line {|{"t":%f,|} (fun t ->
         Alcotest.(check bool) "switch happens after the join" true
           (t > 20. && t < 32.))
   | _ ->
     Alcotest.failf "expected exactly one mode switch, got %d"
       (List.length switches));
  (* every mode-category line carries a detection or switch *)
  List.iter
    (fun l ->
      if
        not
          (contains_sub l {|"ev":"detection"|}
          || contains_sub l {|"ev":"mode_switch"|})
      then Alcotest.failf "unexpected event in mode filter: %s" l)
    lines

(* the fault matrix collects per-case buffers and concatenates them in input
   order, so the trace bytes cannot depend on how many domains ran it *)
let test_matrix_trace_jobs_independent () =
  let trace_mask =
    Event.cat_bit Event.Mode lor Event.cat_bit Event.Fault
    lor Event.cat_bit Event.Invariant
  in
  let matrix_with_domains domains =
    Nimbus_parallel.Pool.run ~domains (fun pool ->
        Nimbus_experiments.Common.set_pool (Some pool);
        Fun.protect
          ~finally:(fun () -> Nimbus_experiments.Common.set_pool None)
          (fun () ->
            Nimbus_experiments.Exp_faults.run_matrix ~trace_mask
              Nimbus_experiments.Common.quick))
  in
  let seq = matrix_with_domains 1 in
  let par = matrix_with_domains 3 in
  Alcotest.(check bool) "traces are non-trivial" true
    (String.length seq.Nimbus_experiments.Exp_faults.traces > 100);
  Alcotest.(check bool) "--jobs 1 and --jobs 3 byte-identical" true
    (String.equal seq.Nimbus_experiments.Exp_faults.traces
       par.Nimbus_experiments.Exp_faults.traces)

let suite =
  [ ( "trace",
      [ Alcotest.test_case "ring wraparound + drop counting" `Quick
          test_ring_wraparound;
        Alcotest.test_case "clear keeps cumulative counters" `Quick
          test_clear_keeps_counters;
        Alcotest.test_case "category filtering" `Quick test_category_filter;
        Alcotest.test_case "parse_filter" `Quick test_parse_filter;
        Alcotest.test_case "binary codec round-trips" `Quick
          test_binary_roundtrip;
        Alcotest.test_case "float_str shortest round-trip" `Quick
          test_float_str;
        Alcotest.test_case "json line shape" `Quick test_json_shape;
        Alcotest.test_case "memory sink + flush" `Quick test_memory_sink_flush;
        Alcotest.test_case "summarize jsonl file" `Quick test_summarize_file;
        Alcotest.test_case "summarize binary file" `Quick
          test_summarize_binary_file;
        Alcotest.test_case "Flow.apply controls + validation" `Quick
          test_flow_apply;
        Alcotest.test_case "span aggregation (fake clock)" `Quick
          test_span_aggregation;
        Alcotest.test_case "span disabled is a no-op" `Quick
          test_span_disabled_noop;
        Alcotest.test_case "disabled tracing allocates 0 minor words" `Quick
          test_disabled_zero_alloc;
        Alcotest.test_case "enabled steady path allocation-flat" `Quick
          test_enabled_steady_alloc;
        Alcotest.test_case "same seed, byte-identical JSONL" `Slow
          test_trace_deterministic;
        Alcotest.test_case "golden mode-switch trace (Fig. 7 join)" `Slow
          test_golden_mode_switch;
        Alcotest.test_case "fault-matrix trace independent of --jobs" `Slow
          test_matrix_trace_jobs_independent ] ) ]
