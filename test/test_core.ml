(* Tests for the paper's core contribution: pulses, the ẑ estimator, the
   elasticity detector, and the Nimbus controller (short closed-loop sims). *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Time = Units.Time
module Rate = Units.Rate
module Freq = Units.Freq
open Nimbus_core

let pi = 4.0 *. atan 1.0

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let f5 = Freq.hz 5.

(* --- pulse ---------------------------------------------------------------- *)

let test_pulse_zero_mean () =
  List.iter
    (fun shape ->
      let m =
        Rate.to_bps
          (Pulse.mean ~shape ~amplitude:(Rate.bps 12e6) ~freq:f5
             ~samples:100_000)
      in
      if Float.abs m > 12e6 *. 1e-3 then
        Alcotest.failf "pulse mean %.3g not ~0" m)
    [ Pulse.Asymmetric; Pulse.Symmetric ]

let test_pulse_asymmetric_profile () =
  let amplitude = 24e6 in
  let v t =
    Rate.to_bps
      (Pulse.value ~shape:Pulse.Asymmetric ~amplitude:(Rate.bps amplitude)
         ~freq:f5 (Time.secs t))
  in
  (* peak of the positive lobe at T/8 *)
  check_close ~eps:1. "positive peak" amplitude (v 0.025);
  (* trough of the negative lobe at T/4 + 3T/8 = 0.125 *)
  check_close ~eps:1. "negative trough" (-.amplitude /. 3.) (v 0.125);
  check_close ~eps:1e-3 "zero at boundary" 0. (v 0.05);
  (* periodicity *)
  check_close ~eps:1. "periodic" (v 0.01) (v 0.21);
  (* negative time wraps cleanly *)
  check_close ~eps:1. "negative time" (v 0.19) (v (-0.01))

let test_pulse_min_send_rate () =
  check_close "asym mu/12" 8e6
    (Rate.to_bps
       (Pulse.min_send_rate ~shape:Pulse.Asymmetric ~amplitude:(Rate.bps 24e6)));
  check_close "sym mu/4" 24e6
    (Rate.to_bps
       (Pulse.min_send_rate ~shape:Pulse.Symmetric ~amplitude:(Rate.bps 24e6)))

let test_pulse_validation () =
  Alcotest.(check bool) "freq <= 0" true
    (try
       ignore
         (Pulse.value ~shape:Pulse.Symmetric ~amplitude:(Rate.bps 1.)
            ~freq:(Freq.hz 0.) Time.zero);
       false
     with Invalid_argument _ -> true)

(* --- z estimator ---------------------------------------------------------- *)

let estimate ~mu ~send_rate ~recv_rate =
  Rate.to_bps
    (Z_estimator.estimate ~mu:(Rate.bps mu) ~send_rate:(Rate.bps send_rate)
       ~recv_rate:(Rate.bps recv_rate))

let test_z_estimator_exact () =
  (* S = 24M, cross = 48M on a 96M busy link: R = mu*S/(S+z) = 32M *)
  check_close "recovers z" 48e6
    (estimate ~mu:96e6 ~send_rate:24e6 ~recv_rate:32e6);
  (* no cross traffic: R = S -> z = mu - S... clamped by queue-busy caveat *)
  check_close "alone gives mu - S" 72e6
    (estimate ~mu:96e6 ~send_rate:24e6 ~recv_rate:24e6)

let test_z_estimator_clamps () =
  (* R > S (draining faster than sending) would give negative z *)
  check_close "clamps at 0" 0. (estimate ~mu:96e6 ~send_rate:24e6 ~recv_rate:96e6);
  check_close "clamps at mu" 96e6
    (estimate ~mu:96e6 ~send_rate:50e6 ~recv_rate:1e6)

let test_z_estimator_nan () =
  Alcotest.(check bool) "nan send" true
    (Float.is_nan (estimate ~mu:96e6 ~send_rate:nan ~recv_rate:1e6));
  (* recv_rate = 0 must yield nan (unknown), not the +inf a literal reading
     of Eq. 1 gives: an infinity would survive an is_known test and poison
     downstream max filters. *)
  Alcotest.(check bool) "zero recv" true
    (Float.is_nan (estimate ~mu:96e6 ~send_rate:1e6 ~recv_rate:0.));
  Alcotest.(check bool) "zero recv is not +inf" false
    (Float.equal (estimate ~mu:96e6 ~send_rate:1e6 ~recv_rate:0.)
       Float.infinity);
  Alcotest.(check bool) "unknown, not merely infinite" false
    (Rate.is_known
       (Z_estimator.estimate ~mu:(Rate.bps 96e6) ~send_rate:(Rate.bps 1e6)
          ~recv_rate:Rate.zero))

let test_mu_known () =
  let mu = Z_estimator.Mu.known (Rate.bps 48e6) in
  check_close "known" 48e6
    (Rate.to_bps (Z_estimator.Mu.current mu ~now:Time.zero));
  Z_estimator.Mu.observe mu ~now:(Time.secs 1.) ~recv_rate:(Rate.bps 99e6);
  check_close "known ignores observations" 48e6
    (Rate.to_bps (Z_estimator.Mu.current mu ~now:(Time.secs 1.)))

let test_mu_estimator_tracks_max () =
  let mu = Z_estimator.Mu.estimator ~window:(Time.secs 5.) () in
  Alcotest.(check bool) "starts nan" true
    (not (Rate.is_known (Z_estimator.Mu.current mu ~now:Time.zero)));
  Z_estimator.Mu.observe mu ~now:(Time.secs 1.) ~recv_rate:(Rate.bps 10e6);
  Z_estimator.Mu.observe mu ~now:(Time.secs 2.) ~recv_rate:(Rate.bps 40e6);
  Z_estimator.Mu.observe mu ~now:(Time.secs 3.) ~recv_rate:(Rate.bps 20e6);
  check_close "max" 40e6
    (Rate.to_bps (Z_estimator.Mu.current mu ~now:(Time.secs 3.)));
  (* the 40M sample ages out of the window *)
  Z_estimator.Mu.observe mu ~now:(Time.secs 8.) ~recv_rate:(Rate.bps 20e6);
  check_close "window expiry" 20e6
    (Rate.to_bps (Z_estimator.Mu.current mu ~now:(Time.secs 8.)))

let test_mu_estimator_ignores_non_finite () =
  (* non-finite samples must not enter the max filter: a single +inf or nan
     observation would otherwise stick as "the bottleneck rate" *)
  let mu = Z_estimator.Mu.estimator ~window:(Time.secs 5.) () in
  Z_estimator.Mu.observe mu ~now:(Time.secs 1.) ~recv_rate:(Rate.bps 10e6);
  Z_estimator.Mu.observe mu ~now:(Time.secs 2.) ~recv_rate:(Rate.bps infinity);
  Z_estimator.Mu.observe mu ~now:(Time.secs 3.) ~recv_rate:(Rate.bps nan);
  check_close "non-finite samples dropped" 10e6
    (Rate.to_bps (Z_estimator.Mu.current mu ~now:(Time.secs 3.)))

(* --- elasticity detector -------------------------------------------------- *)

let feed det f =
  for i = 0 to 499 do
    Elasticity.add_sample det (f (float_of_int i *. 0.01))
  done

let test_detector_needs_full_window () =
  let det = Elasticity.create () in
  Alcotest.(check bool) "not ready" false (Elasticity.ready det);
  Alcotest.(check bool) "eta nan" true
    (Float.is_nan (Elasticity.eta det ~freq:f5));
  Alcotest.(check (option reject)) "no verdict" None
    (Elasticity.classify det ~freq:f5);
  feed det (fun _ -> 1.);
  Alcotest.(check bool) "ready" true (Elasticity.ready det)

let test_detector_elastic_signal () =
  let det = Elasticity.create () in
  feed det (fun t -> 24e6 +. (4e6 *. sin (2. *. pi *. 5. *. t)));
  Alcotest.(check bool) "high eta" true (Elasticity.eta det ~freq:f5 > 10.);
  Alcotest.(check (option (of_pp Fmt.nop))) "elastic"
    (Some Elasticity.Elastic)
    (Elasticity.classify det ~freq:f5)

let test_detector_inelastic_noise () =
  let rng = Rng.create 11 in
  let det = Elasticity.create () in
  feed det (fun _ -> 24e6 +. (4e6 *. (Rng.uniform rng -. 0.5)));
  Alcotest.(check (option (of_pp Fmt.nop))) "inelastic"
    (Some Elasticity.Inelastic)
    (Elasticity.classify det ~freq:f5)

let test_detector_off_frequency () =
  let det = Elasticity.create () in
  (* strong oscillation inside the comparison band, none at f_p *)
  feed det (fun t -> 24e6 +. (4e6 *. sin (2. *. pi *. 7.4 *. t)));
  Alcotest.(check bool) "eta < 1" true (Elasticity.eta det ~freq:f5 < 1.)

let test_detector_handles_nan_samples () =
  let det = Elasticity.create () in
  for i = 0 to 499 do
    let t = float_of_int i *. 0.01 in
    Elasticity.add_sample det
      (if i mod 7 = 0 then nan else 24e6 +. (4e6 *. sin (2. *. pi *. 5. *. t)))
  done;
  Alcotest.(check bool) "still elastic despite gaps" true
    (Elasticity.eta det ~freq:f5 > 2.)

let test_detector_sliding () =
  (* after a full window of noise, an elastic signal must flip the verdict
     within roughly one window *)
  let rng = Rng.create 12 in
  let det = Elasticity.create () in
  feed det (fun _ -> 24e6 +. (2e6 *. (Rng.uniform rng -. 0.5)));
  Alcotest.(check (option (of_pp Fmt.nop))) "starts inelastic"
    (Some Elasticity.Inelastic)
    (Elasticity.classify det ~freq:f5);
  feed det (fun t -> 24e6 +. (6e6 *. sin (2. *. pi *. 5. *. t)));
  Alcotest.(check (option (of_pp Fmt.nop))) "flips to elastic"
    (Some Elasticity.Elastic)
    (Elasticity.classify det ~freq:f5)

let test_detector_spectrum_access () =
  let det = Elasticity.create () in
  feed det (fun t -> 10e6 *. sin (2. *. pi *. 5. *. t));
  match Elasticity.spectrum det with
  | None -> Alcotest.fail "spectrum missing"
  | Some s ->
    let f, _ = Nimbus_dsp.Spectrum.dominant s ~above:1. in
    check_close "dominant at 5Hz" 5. f

let test_detector_oscillation_amplitude () =
  (* a sinusoid of amplitude 3e6 must be read back through the taper's
     coherent-gain inversion *)
  let det = Elasticity.create () in
  feed det (fun t -> 24e6 +. (3e6 *. sin (2. *. pi *. 5. *. t)));
  let a = Elasticity.oscillation_amplitude det ~freq:f5 in
  if Float.abs (a -. 3e6) > 0.15e6 then
    Alcotest.failf "amplitude %.3g != 3e6" a

let test_detector_validation () =
  Alcotest.(check bool) "bad threshold" true
    (try ignore (Elasticity.create ~eta_thresh:0.5 ()); false
     with Invalid_argument _ -> true)

(* --- streaming eta vs the Plan-FFT reference ------------------------------ *)

let eta_agrees streaming reference =
  match Float.classify_float reference with
  | FP_nan -> Float.is_nan streaming
  | FP_infinite -> Float.equal streaming reference
  | _ ->
    Float.abs (streaming -. reference)
    <= 1e-6 *. Float.max 1. (Float.abs reference)

let prop_eta_streaming_agrees =
  (* the tentpole's agreement contract: across random window sizes, pulse
     frequencies, and signal contents, the sliding-bank η tracks the FFT η
     as the window keeps sliding after the initial tune *)
  QCheck.Test.make ~count:25
    ~name:"elasticity: streaming eta = FFT eta over random windows/freqs"
    QCheck.(triple (int_range 0 100_000) (int_range 2 8) (int_range 50 150))
    (fun (seed, fi, nwin) ->
      let rng = Rng.create seed in
      let freq_hz = float_of_int fi /. 2. in
      let freq = Freq.hz freq_hz in
      let det =
        Elasticity.create ~window:(Time.secs (float_of_int nwin *. 0.01)) ()
      in
      let idx = ref 0 in
      let push () =
        let t = float_of_int !idx *. 0.01 in
        incr idx;
        Elasticity.add_sample det
          (24e6
          +. (4e6 *. sin (2. *. pi *. freq_hz *. t))
          +. (1e6 *. Rng.range rng ~lo:(-1.) ~hi:1.))
      in
      for _ = 1 to nwin do
        push ()
      done;
      (* the first evaluation is the FFT fallback and tunes the bank *)
      let ok =
        ref (eta_agrees (Elasticity.eta det ~freq)
               (Elasticity.eta_reference det ~freq))
      in
      for _ = 1 to 10 do
        for _ = 1 to 7 do
          push ()
        done;
        if
          not
            (eta_agrees (Elasticity.eta det ~freq)
               (Elasticity.eta_reference det ~freq))
        then ok := false
      done;
      !ok)

let test_eta_retune_on_freq_change () =
  (* a pulse-frequency change (mode transition) must answer from the FFT
     fallback — exactly the reference — then stream at the new frequency *)
  let det = Elasticity.create () in
  let idx = ref 0 in
  let push_n n =
    for _ = 1 to n do
      let t = float_of_int !idx *. 0.01 in
      incr idx;
      Elasticity.add_sample det (24e6 +. (4e6 *. sin (2. *. pi *. 5. *. t)))
    done
  in
  push_n 500;
  let r5 = Elasticity.eta_reference det ~freq:f5 in
  let e5 = Elasticity.eta det ~freq:f5 in
  Alcotest.(check bool) "first call equals reference" true (Float.equal e5 r5);
  push_n 30;
  Alcotest.(check bool) "streams at 5 Hz" true
    (eta_agrees (Elasticity.eta det ~freq:f5)
       (Elasticity.eta_reference det ~freq:f5));
  let f6 = Freq.hz 6.25 in
  let r6 = Elasticity.eta_reference det ~freq:f6 in
  let e6 = Elasticity.eta det ~freq:f6 in
  Alcotest.(check bool) "fallback equals reference at new freq" true
    (Float.equal e6 r6);
  push_n 30;
  Alcotest.(check bool) "streams at new freq" true
    (eta_agrees (Elasticity.eta det ~freq:f6)
       (Elasticity.eta_reference det ~freq:f6))

let test_eta_streaming_long_run () =
  (* n = 500, so 5000 pushes cross the 8n = 4000-push resync; the streaming
     η must stay glued to the reference throughout *)
  let rng = Rng.create 21 in
  let det = Elasticity.create () in
  let idx = ref 0 in
  let push_n n =
    for _ = 1 to n do
      let t = float_of_int !idx *. 0.01 in
      incr idx;
      Elasticity.add_sample det
        (24e6
        +. (4e6 *. sin (2. *. pi *. 5. *. t))
        +. (2e6 *. Rng.range rng ~lo:(-1.) ~hi:1.))
    done
  in
  push_n 500;
  ignore (Elasticity.eta det ~freq:f5);
  for _ = 1 to 9 do
    push_n 500;
    Alcotest.(check bool) "agrees" true
      (eta_agrees (Elasticity.eta det ~freq:f5)
         (Elasticity.eta_reference det ~freq:f5))
  done

(* --- nimbus closed loop --------------------------------------------------- *)

let make_link ?(rate_bps = 48e6) () =
  let e = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create e
      (Bottleneck.Config.default ~rate:(Rate.bps rate_bps)
         ~qdisc:
           (Qdisc.droptail
              ~capacity_bytes:(int_of_float (rate_bps *. 0.1 /. 8.))))
  in
  (e, bn)

let start_nimbus ?(multi_flow = false) ?(seed = 1) e bn ~mu =
  let nim =
    Nimbus.create
      { (Nimbus.Config.default ~mu:(Z_estimator.Mu.known (Rate.bps mu))) with
        multi_flow; seed }
  in
  let flow =
    Flow.create e bn
      ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now e))
      ~prop_rtt:(Time.ms 50.) ()
  in
  (nim, flow)

let test_nimbus_solo_delay_mode () =
  let e, bn = make_link () in
  let nim, flow = start_nimbus e bn ~mu:48e6 in
  Engine.run_until e (Time.secs 30.);
  Alcotest.(check string) "delay mode" "delay"
    (Nimbus.mode_to_string (Nimbus.mode nim));
  Alcotest.(check bool) "fills link" true
    (float_of_int (Flow.received_bytes flow * 8) /. 30. > 0.9 *. 48e6);
  Alcotest.(check bool) "short queue" true
    (Time.to_secs (Bottleneck.queue_delay bn) < 0.03)

let test_nimbus_detects_cubic () =
  let e, bn = make_link () in
  let nim, flow = start_nimbus e bn ~mu:48e6 in
  ignore
    (Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ()) ~prop_rtt:(Time.ms 50.) ());
  let competitive = ref 0 and samples = ref 0 in
  Engine.every e ~dt:(Time.ms 100.) ~start:(Time.secs 10.)
    ~until:(Time.secs 60.) (fun () ->
      incr samples;
      if Nimbus.mode nim = Nimbus.Competitive then incr competitive);
  Engine.run_until e (Time.secs 60.);
  let frac = float_of_int !competitive /. float_of_int !samples in
  Alcotest.(check bool) "mostly competitive" true (frac > 0.8);
  Alcotest.(check bool) "gets a useful share" true
    (float_of_int (Flow.received_bytes flow * 8) /. 60. > 0.25 *. 48e6)

let test_nimbus_stays_delay_on_poisson () =
  let e, bn = make_link () in
  let nim, flow = start_nimbus e bn ~mu:48e6 in
  ignore
    (Nimbus_traffic.Source.poisson e bn ~rng:(Rng.create 5)
       ~rate:(Rate.bps 24e6) ());
  let delay = ref 0 and samples = ref 0 in
  Engine.every e ~dt:(Time.ms 100.) ~start:(Time.secs 10.)
    ~until:(Time.secs 60.) (fun () ->
      incr samples;
      if Nimbus.mode nim = Nimbus.Delay then incr delay);
  Engine.run_until e (Time.secs 60.);
  Alcotest.(check bool) "mostly delay mode" true
    (float_of_int !delay /. float_of_int !samples > 0.9);
  let tput = float_of_int (Flow.received_bytes flow * 8) /. 60. in
  Alcotest.(check bool) "takes the residual fair share" true (tput > 0.85 *. 24e6)

let test_nimbus_mode_transition () =
  (* cubic joins at t=20: nimbus must be competitive within ~10 s *)
  let e, bn = make_link () in
  let nim, _ = start_nimbus e bn ~mu:48e6 in
  Engine.schedule_at e (Time.secs 20.) (fun () ->
      ignore
        (Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ())
           ~prop_rtt:(Time.ms 50.) ()));
  Engine.run_until e (Time.secs 19.);
  Alcotest.(check string) "delay before" "delay"
    (Nimbus.mode_to_string (Nimbus.mode nim));
  Engine.run_until e (Time.secs 32.);
  Alcotest.(check string) "competitive after" "competitive"
    (Nimbus.mode_to_string (Nimbus.mode nim))

let test_nimbus_single_flow_is_pulser () =
  let e, bn = make_link () in
  let nim, _ = start_nimbus e bn ~mu:48e6 in
  Engine.run_until e (Time.secs 1.);
  Alcotest.(check string) "pulser" "pulser"
    (Nimbus.role_to_string (Nimbus.role nim));
  Alcotest.(check bool) "pulses at 5Hz" true
    (Float.equal (Freq.to_hz (Nimbus.pulse_freq nim)) 5.)

let test_nimbus_multiflow_election () =
  (* two multi-flow Nimbus flows: exactly one should end up pulsing, and
     both should sit in delay mode with a short queue *)
  let e, bn = make_link ~rate_bps:96e6 () in
  let nim1, f1 = start_nimbus ~multi_flow:true ~seed:21 e bn ~mu:96e6 in
  let nim2, f2 = start_nimbus ~multi_flow:true ~seed:77 e bn ~mu:96e6 in
  Engine.run_until e (Time.secs 60.);
  let pulsers =
    List.length
      (List.filter
         (fun n -> Nimbus.role n = Nimbus.Pulser)
         [ nim1; nim2 ])
  in
  Alcotest.(check int) "exactly one pulser" 1 pulsers;
  let t1 = float_of_int (Flow.received_bytes f1 * 8) /. 60. in
  let t2 = float_of_int (Flow.received_bytes f2 * 8) /. 60. in
  Alcotest.(check bool) "both flows get real throughput" true
    (Float.min t1 t2 > 0.2 *. 96e6);
  Alcotest.(check bool) "high combined utilization" true
    (t1 +. t2 > 0.8 *. 96e6)

let test_nimbus_base_rate_positive () =
  let e, bn = make_link () in
  let nim, _ = start_nimbus e bn ~mu:48e6 in
  Engine.run_until e (Time.secs 10.);
  Alcotest.(check bool) "positive base rate" true
    (Rate.to_bps (Nimbus.base_rate nim) > 0.)

(* --- property tests -------------------------------------------------------- *)

let prop_pulse_bounded =
  QCheck.Test.make ~count:200 ~name:"pulse: |value| <= amplitude, any phase"
    QCheck.(triple (float_range 1e3 1e8) (float_range 0.5 20.) (float_range (-10.) 10.))
    (fun (amplitude, freq, t) ->
      let v =
        Rate.to_bps
          (Pulse.value ~shape:Pulse.Asymmetric ~amplitude:(Rate.bps amplitude)
             ~freq:(Freq.hz freq) (Time.secs t))
      in
      Float.abs v <= amplitude +. 1e-6)

let prop_pulse_zero_mean =
  QCheck.Test.make ~count:50 ~name:"pulse: zero mean for any amplitude/freq"
    QCheck.(pair (float_range 1e3 1e8) (float_range 0.5 20.))
    (fun (amplitude, freq) ->
      let m =
        Rate.to_bps
          (Pulse.mean ~shape:Pulse.Asymmetric ~amplitude:(Rate.bps amplitude)
             ~freq:(Freq.hz freq) ~samples:4000)
      in
      Float.abs m < amplitude *. 2e-3)

let prop_z_estimate_clamped =
  QCheck.Test.make ~count:200 ~name:"z: estimate always within [0, mu]"
    QCheck.(triple (float_range 1e6 1e9) (float_range 1e3 1e9) (float_range 1e3 1e9))
    (fun (mu, s, r) ->
      let z = estimate ~mu ~send_rate:s ~recv_rate:r in
      z >= 0. && z <= mu)

let prop_z_estimate_inverts =
  (* construct R from (mu, S, z) via the busy-link identity and recover z *)
  QCheck.Test.make ~count:200 ~name:"z: inverts the FIFO share identity"
    QCheck.(pair (float_range 1e6 9e7) (float_range 1e5 9e7))
    (fun (s, z) ->
      let mu = 1e8 in
      QCheck.assume (s +. z > mu);
      let r = mu *. s /. (s +. z) in
      let zhat = estimate ~mu ~send_rate:s ~recv_rate:r in
      Float.abs (zhat -. z) < 1e-3 *. z +. 1.)

let prop_detector_sinusoid_always_elastic =
  QCheck.Test.make ~count:30
    ~name:"elasticity: clean on-bin sinusoid is always elastic"
    QCheck.(pair (float_range 1e6 2e7) (float_range 0. 6.28))
    (fun (amp, phase) ->
      let det = Elasticity.create () in
      for i = 0 to 499 do
        let t = float_of_int i *. 0.01 in
        Elasticity.add_sample det
          (3e7 +. (amp *. sin ((2. *. pi *. 5. *. t) +. phase)))
      done;
      Elasticity.classify det ~freq:f5 = Some Elasticity.Elastic)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "core.pulse",
      [ Alcotest.test_case "zero mean" `Quick test_pulse_zero_mean;
        Alcotest.test_case "asymmetric profile" `Quick
          test_pulse_asymmetric_profile;
        Alcotest.test_case "min send rate" `Quick test_pulse_min_send_rate;
        Alcotest.test_case "validation" `Quick test_pulse_validation;
        qtest prop_pulse_bounded;
        qtest prop_pulse_zero_mean ] );
    ( "core.z_estimator",
      [ Alcotest.test_case "exact" `Quick test_z_estimator_exact;
        Alcotest.test_case "clamps" `Quick test_z_estimator_clamps;
        Alcotest.test_case "nan handling" `Quick test_z_estimator_nan;
        Alcotest.test_case "mu known" `Quick test_mu_known;
        Alcotest.test_case "mu estimator" `Quick test_mu_estimator_tracks_max;
        Alcotest.test_case "mu ignores non-finite" `Quick
          test_mu_estimator_ignores_non_finite;
        qtest prop_z_estimate_clamped;
        qtest prop_z_estimate_inverts ] );
    ( "core.elasticity",
      [ Alcotest.test_case "needs full window" `Quick
          test_detector_needs_full_window;
        Alcotest.test_case "elastic signal" `Quick test_detector_elastic_signal;
        Alcotest.test_case "inelastic noise" `Quick
          test_detector_inelastic_noise;
        Alcotest.test_case "off-frequency" `Quick test_detector_off_frequency;
        Alcotest.test_case "nan samples" `Quick
          test_detector_handles_nan_samples;
        Alcotest.test_case "sliding verdict" `Quick test_detector_sliding;
        Alcotest.test_case "spectrum access" `Quick
          test_detector_spectrum_access;
        Alcotest.test_case "oscillation amplitude" `Quick
          test_detector_oscillation_amplitude;
        Alcotest.test_case "validation" `Quick test_detector_validation;
        Alcotest.test_case "retune on freq change" `Quick
          test_eta_retune_on_freq_change;
        Alcotest.test_case "streaming long run" `Quick
          test_eta_streaming_long_run;
        qtest prop_detector_sinusoid_always_elastic;
        qtest prop_eta_streaming_agrees ] );
    ( "core.nimbus",
      [ Alcotest.test_case "solo delay mode" `Quick test_nimbus_solo_delay_mode;
        Alcotest.test_case "detects cubic" `Quick test_nimbus_detects_cubic;
        Alcotest.test_case "stays delay on poisson" `Quick
          test_nimbus_stays_delay_on_poisson;
        Alcotest.test_case "mode transition" `Quick test_nimbus_mode_transition;
        Alcotest.test_case "single flow pulses" `Quick
          test_nimbus_single_flow_is_pulser;
        Alcotest.test_case "multiflow election" `Quick
          test_nimbus_multiflow_election;
        Alcotest.test_case "base rate positive" `Quick
          test_nimbus_base_rate_positive ] ) ]
