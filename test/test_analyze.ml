(* Self-tests for the typedtree passes (tool/analyze), driven against the
   compiled fixture libraries under tool/analyze/fixtures: each pass must
   flag its bad fixture with the expected rule ids and stay silent on the
   clean one.  A final group runs the passes over the real lib/ cmts with
   the shipped contract, so the suite fails the moment the repo itself
   regresses. *)

module A = Nimbus_analyze

let fixtures_root = "../tool/analyze/fixtures"
let lib_root = "../lib"
let layers_file = "../tool/analyze/layers.sexp"

let scan root =
  let units, errors = A.Cmt_scan.scan [ root ] in
  Alcotest.(check (list string))
    (Printf.sprintf "no cmt read errors under %s" root)
    []
    (List.map (fun f -> f.A.Finding.message) errors);
  units

let rules_of findings =
  List.sort String.compare (List.map (fun f -> f.A.Finding.rule) findings)

(* --- determinism pass ------------------------------------------------------- *)

let test_det_bad () =
  let units = scan fixtures_root in
  let aliases = A.Cmt_scan.alias_mods units in
  let defs = A.Defs.collect aliases units in
  let findings = A.Determinism.check ~scope:[ "af_det_bad" ] defs units in
  Alcotest.(check (list string))
    "expected rule ids, in order"
    [
      "det-hashtbl-order"; "det-poly-compare"; "det-poly-compare";
      "det-poly-compare"; "det-global-random"; "det-global-random";
      "det-wall-clock";
    ]
    (List.map (fun f -> f.A.Finding.rule) findings);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        "finding points into the fixture" true
        (String.length f.A.Finding.file > 0
        && Filename.dirname f.A.Finding.file <> ""))
    findings

let test_det_clean () =
  let units = scan fixtures_root in
  let aliases = A.Cmt_scan.alias_mods units in
  let defs = A.Defs.collect aliases units in
  Alcotest.(check (list string))
    "clean fixture passes (including the [@det_ok] suppression)" []
    (rules_of (A.Determinism.check ~scope:[ "af_det_clean" ] defs units))

(* --- layering pass ---------------------------------------------------------- *)

let layers_of_string s =
  match A.Layering.parse_layers (A.Sexp.parse_string s) with
  | Ok layers -> layers
  | Error msg -> Alcotest.fail msg

let all_fixture_libs_above =
  (* af_layer_low strictly below af_layer_high: the recorded edge is legal *)
  "((af_layer_low) (af_layer_high af_det_bad af_det_clean af_alloc \
   af_race_bad af_race_clean af_unit_bad af_unit_clean))"

let same_layer =
  "((af_layer_low af_layer_high af_det_bad af_det_clean af_alloc af_race_bad \
   af_race_clean af_unit_bad af_unit_clean))"

let inverted =
  "((af_layer_high af_det_bad af_det_clean af_alloc af_race_bad \
   af_race_clean af_unit_bad af_unit_clean) (af_layer_low))"

let test_layering () =
  let units = scan fixtures_root in
  let check_contract contract expected =
    let findings, _ = A.Layering.check (layers_of_string contract) units in
    Alcotest.(check (list string)) contract expected (rules_of findings)
  in
  check_contract all_fixture_libs_above [];
  check_contract same_layer [ "layer-upward-dep" ];
  check_contract inverted [ "layer-upward-dep" ];
  (* a scanned library missing from the contract is itself a finding *)
  let findings, _ =
    A.Layering.check (layers_of_string "((af_layer_low) (af_layer_high))") units
  in
  Alcotest.(check (list string))
    "undeclared fixture libs flagged"
    [
      "layer-undeclared-lib"; "layer-undeclared-lib"; "layer-undeclared-lib";
      "layer-undeclared-lib"; "layer-undeclared-lib"; "layer-undeclared-lib";
      "layer-undeclared-lib";
    ]
    (rules_of findings)

let test_layering_dot () =
  let units = scan fixtures_root in
  let layers = layers_of_string all_fixture_libs_above in
  let _, edges = A.Layering.check layers units in
  let dot = A.Layering.to_dot layers edges in
  Alcotest.(check bool)
    "dot contains the recorded edge" true
    (let needle = "af_layer_high -> af_layer_low" in
     let rec contains i =
       i + String.length needle <= String.length dot
       && (String.sub dot i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)

(* --- allocation pass -------------------------------------------------------- *)

let test_alloc_fixtures () =
  let units = scan fixtures_root in
  let aliases = A.Cmt_scan.alias_mods units in
  let defs = A.Defs.collect aliases units in
  let { A.Alloc.findings; verified } = A.Alloc.check defs in
  Alcotest.(check (list string))
    "exactly the clean definitions verify"
    [
      "Af_alloc__Alloc_cases.clean_caller";
      "Af_alloc__Alloc_cases.clean_sum";
      "Af_alloc__Alloc_cases.clean_suppressed";
    ]
    (List.sort String.compare verified);
  let rules = rules_of findings in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "%s reported" expected)
        true (List.mem expected rules))
    [
      "alloc-tuple"; "alloc-closure"; "alloc-call"; "alloc-construct";
      "alloc-ref-escape"; "alloc-callee";
    ];
  List.iter
    (fun f ->
      Alcotest.(check string)
        "all alloc findings point into the fixture"
        "alloc_cases.ml"
        (Filename.basename f.A.Finding.file))
    findings

(* --- race pass -------------------------------------------------------------- *)

let race_check ~scope units =
  let aliases = A.Cmt_scan.alias_mods units in
  let defs = A.Defs.collect aliases units in
  let sup = A.Suppress.create () in
  (A.Race.check ~sup ~scope defs units, sup)

let in_file base findings =
  List.filter (fun f -> Filename.basename f.A.Finding.file = base) findings

let test_race_bad () =
  let units = scan fixtures_root in
  let { A.Race.findings; certified = _; sites }, sup =
    race_check ~scope:[ "af_race_bad" ] units
  in
  Alcotest.(check (list string))
    "expected rule multiset from the bad fixture"
    [
      "race-bare-suppression"; "race-callee"; "race-global-access";
      "race-mutable-global"; "race-opaque-task"; "race-unsafe-capture";
      "race-unsafe-capture";
    ]
    (rules_of (in_file "race_cases.ml" findings));
  Alcotest.(check (list string))
    "no findings outside the bad fixture" []
    (List.filter
       (fun r -> Filename.basename r <> "race_cases.ml")
       (List.map (fun f -> f.A.Finding.file) findings));
  Alcotest.(check bool)
    (Printf.sprintf "pool/spawn sites were discovered (got %d)" sites)
    true (sites >= 7);
  (* the deliberately pointless [@shared_ok] on an int must come back stale *)
  Alcotest.(check (list string))
    "stale suppression reported" [ "suppress-stale" ]
    (rules_of (in_file "race_cases.ml" (A.Suppress.stale sup)))

let test_race_clean () =
  let units = scan fixtures_root in
  let { A.Race.findings; certified; _ }, sup =
    race_check ~scope:[ "af_race_clean" ] units
  in
  Alcotest.(check (list string))
    "clean fixture passes (captures, wrapper type, reasoned suppression)" []
    (rules_of (in_file "clean_cases.ml" findings));
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s certified" name)
        true (List.mem name certified))
    [
      "Af_race_clean__Clean_cases.clean_pure";
      "Af_race_clean__Clean_cases.clean_calls";
    ];
  Alcotest.(check (list string))
    "the reasoned suppression is used, not stale" []
    (rules_of (in_file "clean_cases.ml" (A.Suppress.stale sup)))

(* --- units pass ------------------------------------------------------------- *)

let units_check ~scope units =
  let aliases = A.Cmt_scan.alias_mods units in
  let defs = A.Defs.collect aliases units in
  let api, registry_findings = A.Unit_api.create defs in
  Alcotest.(check (list string))
    "registry attributes parse" [] (rules_of registry_findings);
  let sup = A.Suppress.create () in
  let flow = A.Units_flow.check ~sup ~scope api defs in
  let boundary = A.Units_boundary.check ~sup ~scope api defs in
  (flow, boundary, sup)

let test_units_bad () =
  let units = scan fixtures_root in
  let flow, boundary, sup = units_check ~scope:[ "af_unit_bad" ] units in
  Alcotest.(check (list string))
    "flow rule multiset from the bad fixture"
    [
      "unit-bare-suppression"; "unit-mix"; "unit-mix"; "unit-mix";
      "unit-mix"; "unit-mix"; "unit-rewrap"; "unit-rewrap"; "unit-rewrap";
    ]
    (rules_of flow.A.Units_flow.findings);
  Alcotest.(check (list string))
    "boundary rule multiset"
    [ "unit-raw-boundary"; "unit-raw-boundary" ]
    (rules_of boundary);
  Alcotest.(check bool)
    (Printf.sprintf "enough definitions unit-checked (got %d)"
       flow.A.Units_flow.checked)
    true
    (flow.A.Units_flow.checked >= 15);
  List.iter
    (fun f ->
      Alcotest.(check string)
        "units findings point into the fixture" "unit_cases.ml"
        (Filename.basename f.A.Finding.file))
    (flow.A.Units_flow.findings @ boundary);
  (* the deliberately pointless reasoned [@unit_ok] must come back stale *)
  Alcotest.(check (list string))
    "stale [@unit_ok] reported" [ "suppress-stale" ]
    (rules_of (in_file "unit_cases.ml" (A.Suppress.stale sup)))

let test_units_clean () =
  let units = scan fixtures_root in
  let flow, boundary, sup = units_check ~scope:[ "af_unit_clean" ] units in
  Alcotest.(check (list string))
    "clean fixture passes the dataflow" []
    (rules_of flow.A.Units_flow.findings);
  Alcotest.(check (list string))
    "clean fixture passes the boundary rule" [] (rules_of boundary);
  Alcotest.(check (list string))
    "the reasoned suppression is used, not stale" []
    (rules_of (in_file "clean_cases.ml" (A.Suppress.stale sup)))

(* --- baseline matching ------------------------------------------------------ *)

let test_baseline () =
  let f ~line rule =
    A.Finding.v ~pass_:"alloc" ~rule ~file:"lib/x/y.ml" ~line "msg"
  in
  let entry rule =
    {
      A.Baseline.key = "alloc|" ^ rule ^ "|lib/x/y.ml";
      raw = "{\"pass\":\"alloc\"}";
    }
  in
  let { A.Baseline.fresh; accepted; stale } =
    A.Baseline.apply
      [ entry "alloc-tuple"; entry "alloc-record" ]
      [ f ~line:10 "alloc-tuple"; f ~line:99 "alloc-closure" ]
  in
  Alcotest.(check (list string))
    "unbaselined finding stays fresh" [ "alloc-closure" ] (rules_of fresh);
  (* line number differs from wherever the entry was recorded: still accepted *)
  Alcotest.(check (list string))
    "baselined finding accepted line-insensitively" [ "alloc-tuple" ]
    (rules_of accepted);
  Alcotest.(check (list string))
    "unused entry reported stale"
    [ "alloc|alloc-record|lib/x/y.ml" ]
    (List.map (fun (e : A.Baseline.entry) -> e.key) stale)

(* --- the real repo stays clean ---------------------------------------------- *)

let test_repo_clean () =
  let units = scan lib_root in
  let aliases = A.Cmt_scan.alias_mods units in
  let defs = A.Defs.collect aliases units in
  Alcotest.(check (list string))
    "determinism: simulation-reachable libs clean" []
    (rules_of
       (A.Determinism.check ~scope:A.Determinism.default_scope defs units));
  (match A.Layering.parse_layers (A.Sexp.load layers_file) with
  | Error msg -> Alcotest.fail msg
  | Ok layers ->
    let findings, _ = A.Layering.check layers units in
    Alcotest.(check (list string))
      "layering: real DAG matches layers.sexp" [] (rules_of findings));
  let { A.Alloc.findings; verified } = A.Alloc.check defs in
  Alcotest.(check (list string))
    "alloc: all [@@alloc_free] bodies verify" [] (rules_of findings);
  Alcotest.(check bool)
    (Printf.sprintf "at least 5 verified hot-path functions (got %d)"
       (List.length verified))
    true
    (List.length verified >= 5);
  (* the tentpole hot paths of the streaming detector and the calendar-queue
     event core must stay on the verified list by name *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s verified alloc-free" name)
        true (List.mem name verified))
    [
      "Nimbus_sim__Wheel.push"; "Nimbus_sim__Wheel.top_key";
      "Nimbus_sim__Wheel.pop_top"; "Nimbus_sim__Heap.push_seq";
      "Nimbus_sim__Heap.pop_top"; "Nimbus_sim__Engine.drain";
      "Nimbus_dsp__Goertzel.Bank.push"; "Nimbus_dsp__Goertzel.Bank.amplitude";
      "Nimbus_core__Elasticity.eta_bank";
    ];
  let sup = A.Suppress.create () in
  let { A.Race.findings = race_findings; certified; sites } =
    A.Race.check ~sup ~scope:A.Race.default_scope defs units
  in
  Alcotest.(check (list string))
    "race: every pool boundary certified clean or reasoned" []
    (rules_of race_findings);
  Alcotest.(check bool)
    (Printf.sprintf "at least 3 certified domain-safe functions (got %d)"
       (List.length certified))
    true
    (List.length certified >= 3);
  Alcotest.(check bool)
    (Printf.sprintf "pool call sites were actually checked (got %d)" sites)
    true (sites >= 10);
  let api, registry_findings = A.Unit_api.create defs in
  Alcotest.(check (list string))
    "units: registry attributes in lib/units parse" []
    (rules_of registry_findings);
  let uflow =
    A.Units_flow.check ~sup ~scope:A.Units_flow.default_scope api defs
  in
  Alcotest.(check (list string))
    "units: lib/ dataflow clean (every mix fixed or reasoned)" []
    (rules_of uflow.A.Units_flow.findings);
  Alcotest.(check (list string))
    "units: no raw-float boundaries left in the exported surface" []
    (rules_of
       (A.Units_boundary.check ~sup ~scope:A.Units_boundary.default_scope
          api defs));
  Alcotest.(check bool)
    (Printf.sprintf "units: definitions were actually checked (got %d)"
       uflow.A.Units_flow.checked)
    true
    (uflow.A.Units_flow.checked >= 100);
  Alcotest.(check (list string))
    "suppress: no stale suppressions in lib/" []
    (rules_of (A.Suppress.stale sup))

let suite =
  [
    ( "analyze",
      [
        Alcotest.test_case "determinism: bad fixture" `Quick test_det_bad;
        Alcotest.test_case "determinism: clean fixture" `Quick test_det_clean;
        Alcotest.test_case "layering: contracts" `Quick test_layering;
        Alcotest.test_case "layering: dot output" `Quick test_layering_dot;
        Alcotest.test_case "alloc: fixtures" `Quick test_alloc_fixtures;
        Alcotest.test_case "race: bad fixture" `Quick test_race_bad;
        Alcotest.test_case "race: clean fixture" `Quick test_race_clean;
        Alcotest.test_case "units: bad fixture" `Quick test_units_bad;
        Alcotest.test_case "units: clean fixture" `Quick test_units_clean;
        Alcotest.test_case "baseline matching" `Quick test_baseline;
        Alcotest.test_case "repo passes its own gates" `Quick test_repo_clean;
      ] );
  ]
