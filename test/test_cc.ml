(* Tests for the flow engine and every congestion-control algorithm.  These
   run short real simulations, so each assertion targets a coarse behavioural
   invariant rather than an exact number. *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Rng = Nimbus_sim.Rng
module Time = Units.Time
module Rate = Units.Rate
module B = Units.Bytes
open Nimbus_cc

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let make_link ?(rate_bps = 24e6) ?(buffer_s = 0.1) () =
  let e = Engine.create Engine.Config.default in
  let capacity = int_of_float (rate_bps *. buffer_s /. 8.) in
  let bn =
    Bottleneck.create e
      (Bottleneck.Config.default ~rate:(Rate.bps rate_bps)
         ~qdisc:(Qdisc.droptail ~capacity_bytes:capacity))
  in
  (e, bn)

let rtt50 = Time.ms 50.

let throughput flow ~seconds =
  float_of_int (Flow.received_bytes flow * 8) /. seconds

(* --- flow engine --------------------------------------------------------- *)

let test_flow_fills_link () =
  let e, bn = make_link () in
  let f = Flow.create e bn ~cc:(Cubic.make ()) ~prop_rtt:rtt50 () in
  Engine.run_until e (Time.secs 20.);
  let tput = throughput f ~seconds:20. in
  Alcotest.(check bool) "utilizes >90%" true (tput > 0.9 *. 24e6);
  Alcotest.(check bool) "not above link" true (tput <= 24e6 *. 1.01)

let test_flow_min_rtt_is_propagation () =
  let e, bn = make_link () in
  let f = Flow.create e bn ~cc:(Cubic.make ()) ~prop_rtt:rtt50 () in
  Engine.run_until e (Time.secs 10.);
  (* min RTT = propagation + one serialization *)
  let expected = 0.05 +. (1500. *. 8. /. 24e6) in
  check_close ~eps:1e-4 "min rtt" expected (Time.to_secs (Flow.min_rtt f))

let test_finite_flow_completes () =
  let e, bn = make_link () in
  let completed = ref None in
  let f =
    Flow.create e bn ~cc:(Cubic.make ()) ~prop_rtt:rtt50
      ~source:(Flow.Finite 150_000)
      ~on_complete:(fun fl -> completed := Flow.completion_time fl)
      ()
  in
  Engine.run_until e (Time.secs 10.);
  Alcotest.(check bool) "completed" true (!completed <> None);
  Alcotest.(check bool) "received full size" true
    (Flow.received_bytes f >= 150_000);
  (* 100 packets at 24 Mbps with 50 ms RTT: at least a couple RTTs *)
  let fct = Time.to_secs (Option.get !completed) in
  Alcotest.(check bool) "fct sane" true (fct > 0.05 && fct < 5.)

let test_app_limited_respects_supply () =
  let e, bn = make_link () in
  let f =
    Flow.create e bn ~cc:(Cubic.make ()) ~prop_rtt:rtt50
      ~source:Flow.App_limited ()
  in
  Flow.supply f 30_000;
  Engine.run_until e (Time.secs 5.);
  Alcotest.(check int) "sends exactly the supplied bytes" 30_000
    (Flow.received_bytes f)

let test_loss_detection_and_retransmit () =
  (* tiny buffer forces drops; the finite transfer must still complete *)
  let e, bn = make_link ~buffer_s:0.01 () in
  let f =
    Flow.create e bn ~cc:(Reno.make ()) ~prop_rtt:rtt50
      ~source:(Flow.Finite 600_000) ()
  in
  Engine.run_until e (Time.secs 30.);
  Alcotest.(check bool) "losses happened" true (Flow.lost_packets f > 0);
  Alcotest.(check bool) "still completed" true
    (Flow.completion_time f <> None)

let test_rate_measurement_tracks_pacing () =
  (* a CBR flow paced at 8 Mbps must measure S ~ R ~ 8 Mbps *)
  let e, bn = make_link () in
  let f =
    Flow.create e bn
      ~cc:(Simple_cc.const_rate ~rate:(Rate.bps 8e6))
      ~prop_rtt:rtt50 ()
  in
  Engine.run_until e (Time.secs 10.);
  let s = Rate.to_bps (Flow.send_rate f)
  and r = Rate.to_bps (Flow.recv_rate f) in
  Alcotest.(check bool) "S close to 8M" true (Float.abs (s -. 8e6) < 0.8e6);
  Alcotest.(check bool) "R close to 8M" true (Float.abs (r -. 8e6) < 0.8e6)

let test_flow_stop () =
  let e, bn = make_link () in
  let f = Flow.create e bn ~cc:(Cubic.make ()) ~prop_rtt:rtt50 () in
  Engine.schedule_at e (Time.secs 5.) (fun () -> Flow.apply f Flow.Control.Stop);
  Engine.run_until e (Time.secs 6.);
  let bytes_at_6 = Flow.received_bytes f in
  Engine.run_until e (Time.secs 10.);
  Alcotest.(check bool) "stopped flow sends (almost) nothing more" true
    (Flow.received_bytes f - bytes_at_6 < 20 * 1500);
  Alcotest.(check bool) "stopped" true (Flow.stopped f)

let test_delayed_start () =
  let e, bn = make_link () in
  let f =
    Flow.create e bn ~cc:(Cubic.make ()) ~prop_rtt:rtt50
      ~start:(Time.secs 5.) ()
  in
  Engine.run_until e (Time.secs 4.);
  Alcotest.(check int) "nothing before start" 0 (Flow.received_bytes f);
  Engine.run_until e (Time.secs 10.);
  Alcotest.(check bool) "transfers after start" true
    (Flow.received_bytes f > 100_000)

let test_two_flows_share () =
  let e, bn = make_link ~rate_bps:48e6 () in
  let f1 = Flow.create e bn ~cc:(Cubic.make ()) ~prop_rtt:rtt50 () in
  let f2 = Flow.create e bn ~cc:(Cubic.make ()) ~prop_rtt:rtt50 () in
  Engine.run_until e (Time.secs 60.);
  let t1 = throughput f1 ~seconds:60. and t2 = throughput f2 ~seconds:60. in
  let jain = Nimbus_metrics.Fairness.jain [| t1; t2 |] in
  Alcotest.(check bool) "jain > 0.9" true (jain > 0.9);
  Alcotest.(check bool) "link filled" true (t1 +. t2 > 0.9 *. 48e6)

let test_fresh_ids_unique () =
  let e = Engine.create Engine.Config.default in
  let a = Engine.fresh_flow_id e in
  let b = Engine.fresh_flow_id e in
  Alcotest.(check int) "distinct, dense" (a + 1) b;
  (* engine-scoped, not process-global: a fresh engine restarts at the same
     id, which is what keeps traced runs byte-identical across repeats *)
  let e2 = Engine.create Engine.Config.default in
  Alcotest.(check int) "fresh engine restarts the namespace" a
    (Engine.fresh_flow_id e2)

(* --- individual algorithms ----------------------------------------------- *)

let test_reno_halves_on_loss () =
  let r = Reno.create ~mss:1500 ~initial_cwnd:10 () in
  let cc = Reno.cc r in
  (* leave slow start by faking a loss, then grow in CA *)
  cc.Cc_types.on_loss
    { Cc_types.now = Time.secs 1.; seq = 0; bytes = 1500; inflight_bytes = 0;
      kind = `Dupack };
  let after_first = B.to_float (Reno.cwnd_bytes r) in
  cc.Cc_types.on_loss
    { Cc_types.now = Time.secs 10.; seq = 0; bytes = 1500; inflight_bytes = 0;
      kind = `Dupack };
  check_close "halves"
    (Float.max (after_first /. 2.) 3000.)
    (B.to_float (Reno.cwnd_bytes r))

let test_reno_slow_start_doubles () =
  let r = Reno.create ~mss:1500 ~initial_cwnd:2 () in
  let cc = Reno.cc r in
  let ack now =
    cc.Cc_types.on_ack
      { Cc_types.now = Time.secs now; seq = 0; bytes = 1500; rtt = rtt50;
        min_rtt = rtt50; srtt = rtt50; inflight_bytes = 0;
        delivered_bytes = 0 }
  in
  ack 0.1;
  ack 0.2;
  check_close "2 acks add 2 mss" 6000. (B.to_float (Reno.cwnd_bytes r))

let test_reno_timeout_resets () =
  let r = Reno.create ~mss:1500 ~initial_cwnd:20 () in
  (Reno.cc r).Cc_types.on_loss
    { Cc_types.now = Time.secs 1.; seq = 0; bytes = 1500; inflight_bytes = 0;
      kind = `Timeout };
  check_close "collapses to 2 mss" 3000. (B.to_float (Reno.cwnd_bytes r))

let test_cubic_reduces_by_beta () =
  let c = Cubic.create ~mss:1500 ~initial_cwnd:100 () in
  (Cubic.cc c).Cc_types.on_loss
    { Cc_types.now = Time.secs 5.; seq = 0; bytes = 1500; inflight_bytes = 0;
      kind = `Dupack };
  check_close "beta cut" (150_000. *. 0.7) (B.to_float (Cubic.cwnd_bytes c))

let test_cubic_grows_toward_wmax () =
  let c = Cubic.create ~mss:1500 ~initial_cwnd:100 () in
  let cc = Cubic.cc c in
  cc.Cc_types.on_loss
    { Cc_types.now = Time.zero; seq = 0; bytes = 1500; inflight_bytes = 0;
      kind = `Dupack };
  let low = B.to_float (Cubic.cwnd_bytes c) in
  (* feed acks over simulated seconds; window must recover toward w_max *)
  for i = 1 to 2000 do
    cc.Cc_types.on_ack
      { Cc_types.now = Time.secs (float_of_int i /. 100.); seq = i;
        bytes = 1500; rtt = rtt50; min_rtt = rtt50; srtt = rtt50;
        inflight_bytes = 0; delivered_bytes = 0 }
  done;
  Alcotest.(check bool) "recovers above the cut" true
    (B.to_float (Cubic.cwnd_bytes c) > low);
  Alcotest.(check bool) "reaches w_max region" true
    (B.to_float (Cubic.cwnd_bytes c) > 140_000.)

let test_cubic_reset_cwnd () =
  let c = Cubic.create () in
  Cubic.reset_cwnd c (B.bytes 99_000.);
  check_close "reset" 99_000. (B.to_float (Cubic.cwnd_bytes c))

let test_vegas_keeps_small_queue () =
  let e, bn = make_link () in
  let f = Flow.create e bn ~cc:(Vegas.make ()) ~prop_rtt:rtt50 () in
  Engine.run_until e (Time.secs 30.);
  (* alpha..beta packets of backlog: at 24 Mbps that is < 10 ms of queue *)
  Alcotest.(check bool) "throughput high" true
    (throughput f ~seconds:30. > 0.85 *. 24e6);
  Alcotest.(check bool) "queue short" true
    (Time.to_secs (Bottleneck.queue_delay bn) < 0.012)

let test_vegas_starves_against_cubic () =
  let e, bn = make_link ~rate_bps:48e6 () in
  let v = Flow.create e bn ~cc:(Vegas.make ()) ~prop_rtt:rtt50 () in
  let c = Flow.create e bn ~cc:(Cubic.make ()) ~prop_rtt:rtt50 () in
  Engine.run_until e (Time.secs 40.);
  let tv = throughput v ~seconds:40. and tc = throughput c ~seconds:40. in
  Alcotest.(check bool) "vegas gets far less than cubic" true (tv < tc /. 2.)

let test_copa_default_mode_low_delay () =
  let e, bn = make_link () in
  let f =
    Flow.create e bn ~cc:(Copa.make ~switching:false ()) ~prop_rtt:rtt50 ()
  in
  Engine.run_until e (Time.secs 30.);
  Alcotest.(check bool) "throughput decent" true
    (throughput f ~seconds:30. > 0.7 *. 24e6);
  Alcotest.(check bool) "queue moderate" true
    (Time.to_secs (Bottleneck.queue_delay bn) < 0.05)

let copa_competitive_fraction ~cbr_rate =
  let e, bn = make_link ~rate_bps:96e6 () in
  let copa = Copa.create ~switching:true () in
  ignore (Flow.create e bn ~cc:(Copa.cc copa) ~prop_rtt:rtt50 ());
  ignore (Nimbus_traffic.Source.cbr e bn ~rate:(Rate.bps cbr_rate) ());
  let competitive_samples = ref 0 and samples = ref 0 in
  Engine.every e ~dt:(Time.ms 100.) ~start:(Time.secs 10.)
    ~until:(Time.secs 90.) (fun () ->
      incr samples;
      if Copa.in_competitive_mode copa then incr competitive_samples);
  Engine.run_until e (Time.secs 90.);
  float_of_int !competitive_samples /. float_of_int !samples

let test_copa_sticks_competitive_under_heavy_cbr () =
  (* Appendix D failure mode: at a high inelastic share the queue cannot
     drain within 5 RTTs, so Copa's detector misfires into competitive mode.
     Our Copa shows the directional effect (misclassification episodes grow
     sharply with the inelastic share) though it recovers more often than
     the paper's Linux Copa did. *)
  let high = copa_competitive_fraction ~cbr_rate:80e6 in
  let low = copa_competitive_fraction ~cbr_rate:24e6 in
  Alcotest.(check bool) "misclassifies much more at 80M than 24M" true
    (high > 0.05 && high > 4. *. low)

let test_copa_default_under_light_cbr () =
  let e, bn = make_link ~rate_bps:96e6 () in
  let copa = Copa.create ~switching:true () in
  ignore (Flow.create e bn ~cc:(Copa.cc copa) ~prop_rtt:rtt50 ());
  ignore (Nimbus_traffic.Source.cbr e bn ~rate:(Rate.bps 24e6) ());
  let competitive_samples = ref 0 and samples = ref 0 in
  Engine.every e ~dt:(Time.ms 100.) ~start:(Time.secs 20.)
    ~until:(Time.secs 60.) (fun () ->
      incr samples;
      if Copa.in_competitive_mode copa then incr competitive_samples);
  Engine.run_until e (Time.secs 60.);
  let frac = float_of_int !competitive_samples /. float_of_int !samples in
  Alcotest.(check bool) "mostly default mode" true (frac < 0.4)

let test_bbr_estimates_bandwidth () =
  let e, bn = make_link ~rate_bps:24e6 () in
  let b = Bbr.create () in
  let f = Flow.create e bn ~cc:(Bbr.cc b) ~prop_rtt:rtt50 () in
  Engine.run_until e (Time.secs 20.);
  let est = Rate.to_bps (Bbr.btl_bw b) in
  Alcotest.(check bool) "btl_bw within 25% of the link" true
    (Float.abs (est -. 24e6) < 6e6);
  Alcotest.(check bool) "throughput near link" true
    (throughput f ~seconds:20. > 0.8 *. 24e6)

let test_vivace_fills_link_solo () =
  let e, bn = make_link ~rate_bps:24e6 () in
  let f = Flow.create e bn ~cc:(Vivace.make ()) ~prop_rtt:rtt50 () in
  Engine.run_until e (Time.secs 40.);
  Alcotest.(check bool) "ramps to a useful rate" true
    (throughput f ~seconds:40. > 0.4 *. 24e6)

let test_compound_ramps_fast_when_idle () =
  let e, bn = make_link ~rate_bps:48e6 () in
  let f = Flow.create e bn ~cc:(Compound.make ()) ~prop_rtt:rtt50 () in
  Engine.run_until e (Time.secs 20.);
  Alcotest.(check bool) "good utilization" true
    (throughput f ~seconds:20. > 0.8 *. 48e6)

let test_basic_delay_targets_queue () =
  let e, bn = make_link ~rate_bps:48e6 () in
  let f =
    Flow.create e bn
      ~cc:(Basic_delay.make ~mu:(Rate.bps 48e6) ())
      ~prop_rtt:rtt50 ()
  in
  let qsum = ref 0. and qn = ref 0 in
  Engine.every e ~dt:(Time.ms 100.) ~start:(Time.secs 10.)
    ~until:(Time.secs 40.) (fun () ->
      qsum := !qsum +. Time.to_secs (Bottleneck.queue_delay bn);
      incr qn);
  Engine.run_until e (Time.secs 40.);
  let mean_q = !qsum /. float_of_int !qn in
  Alcotest.(check bool) "fills link" true
    (throughput f ~seconds:40. > 0.9 *. 48e6);
  (* queue should hover near the 12.5 ms target *)
  Alcotest.(check bool) "queue near target" true
    (mean_q > 0.004 && mean_q < 0.03)

let test_const_rate_paces_exactly () =
  let e, bn = make_link () in
  let f =
    Flow.create e bn
      ~cc:(Simple_cc.const_rate ~rate:(Rate.bps 4e6))
      ~prop_rtt:rtt50 ()
  in
  Engine.run_until e (Time.secs 10.);
  let tput = throughput f ~seconds:10. in
  Alcotest.(check bool) "4 Mbps +-10%" true (Float.abs (tput -. 4e6) < 0.4e6)

let test_fixed_window_is_capped () =
  let e, bn = make_link () in
  let f =
    Flow.create e bn
      ~cc:(Simple_cc.fixed_window ~segments:10 ())
      ~prop_rtt:(Time.ms 100.) ()
  in
  Engine.run_until e (Time.secs 10.);
  (* 10 segments per ~100 ms RTT = ~1.2 Mbps *)
  let tput = throughput f ~seconds:10. in
  Alcotest.(check bool) "window-limited" true (tput < 2e6)

let test_validation_errors () =
  Alcotest.(check bool) "const_rate rejects 0" true
    (try ignore (Simple_cc.const_rate ~rate:Rate.zero); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "fixed_window rejects 0" true
    (try ignore (Simple_cc.fixed_window ~segments:0 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "basic_delay rejects mu<=0" true
    (try ignore (Basic_delay.create ~mu:Rate.zero ()); false
     with Invalid_argument _ -> true)

let suite =
  [ ( "cc.flow",
      [ Alcotest.test_case "fills link" `Quick test_flow_fills_link;
        Alcotest.test_case "min rtt" `Quick test_flow_min_rtt_is_propagation;
        Alcotest.test_case "finite completes" `Quick test_finite_flow_completes;
        Alcotest.test_case "app-limited supply" `Quick
          test_app_limited_respects_supply;
        Alcotest.test_case "loss + retransmit" `Quick
          test_loss_detection_and_retransmit;
        Alcotest.test_case "rate measurement" `Quick
          test_rate_measurement_tracks_pacing;
        Alcotest.test_case "stop" `Quick test_flow_stop;
        Alcotest.test_case "delayed start" `Quick test_delayed_start;
        Alcotest.test_case "two flows share" `Quick test_two_flows_share;
        Alcotest.test_case "fresh ids" `Quick test_fresh_ids_unique ] );
    ( "cc.reno",
      [ Alcotest.test_case "halves on loss" `Quick test_reno_halves_on_loss;
        Alcotest.test_case "slow start" `Quick test_reno_slow_start_doubles;
        Alcotest.test_case "timeout reset" `Quick test_reno_timeout_resets ] );
    ( "cc.cubic",
      [ Alcotest.test_case "beta cut" `Quick test_cubic_reduces_by_beta;
        Alcotest.test_case "grows toward w_max" `Quick
          test_cubic_grows_toward_wmax;
        Alcotest.test_case "reset_cwnd" `Quick test_cubic_reset_cwnd ] );
    ( "cc.vegas",
      [ Alcotest.test_case "small queue solo" `Quick test_vegas_keeps_small_queue;
        Alcotest.test_case "starves vs cubic" `Quick
          test_vegas_starves_against_cubic ] );
    ( "cc.copa",
      [ Alcotest.test_case "default mode low delay" `Quick
          test_copa_default_mode_low_delay;
        Alcotest.test_case "stuck competitive at 80M CBR" `Quick
          test_copa_sticks_competitive_under_heavy_cbr;
        Alcotest.test_case "default at 24M CBR" `Quick
          test_copa_default_under_light_cbr ] );
    ( "cc.bbr",
      [ Alcotest.test_case "estimates bandwidth" `Quick
          test_bbr_estimates_bandwidth ] );
    ( "cc.vivace",
      [ Alcotest.test_case "fills link solo" `Quick test_vivace_fills_link_solo ] );
    ( "cc.compound",
      [ Alcotest.test_case "fast ramp when idle" `Quick
          test_compound_ramps_fast_when_idle ] );
    ( "cc.basic_delay",
      [ Alcotest.test_case "targets queue delay" `Quick
          test_basic_delay_targets_queue ] );
    ( "cc.simple",
      [ Alcotest.test_case "const rate" `Quick test_const_rate_paces_exactly;
        Alcotest.test_case "fixed window" `Quick test_fixed_window_is_capped;
        Alcotest.test_case "validation" `Quick test_validation_errors ] ) ]
