(* Tests for the fault-injection subsystem: the Gilbert–Elliott burst-loss
   process, the fault-plan parser and attacher, the runtime invariant
   monitor, Nimbus pulser-failure recovery, and the crash-isolating
   experiment runner. *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Rng = Nimbus_sim.Rng
module Flow = Nimbus_cc.Flow
module Nimbus = Nimbus_core.Nimbus
module Z_estimator = Nimbus_core.Z_estimator
module Source = Nimbus_traffic.Source
module Ge = Nimbus_faults.Gilbert_elliott
module Fault = Nimbus_faults.Fault
module Invariant = Nimbus_metrics.Invariant
module Common = Nimbus_experiments.Common
module Pool = Nimbus_parallel.Pool
module Time = Units.Time
module Rate = Units.Rate

let raises name f =
  Alcotest.(check bool) name true
    (try
       f ();
       false
     with Invalid_argument _ -> true)

(* --- Gilbert–Elliott ------------------------------------------------------ *)

let test_ge_validation () =
  raises "p_enter > 1" (fun () ->
      ignore
        (Ge.create ~rng:(Rng.create 1) ~p_enter:1.5 ~p_exit:0.1 ~loss_good:0.
           ~loss_bad:0.5 ()));
  raises "nan loss" (fun () ->
      ignore
        (Ge.create ~rng:(Rng.create 1) ~p_enter:0.1 ~p_exit:0.1 ~loss_good:nan
           ~loss_bad:0.5 ()));
  raises "frozen chain" (fun () ->
      ignore
        (Ge.stationary_loss ~p_enter:0. ~p_exit:0. ~loss_good:0. ~loss_bad:1.))

(* with identical state losses the injector must reproduce, draw for draw,
   the Bernoulli stream a uniform random_loss would take off the same rng *)
let test_ge_degenerates_to_uniform () =
  let p = 0.2 in
  let rng = Rng.create 42 in
  let ge =
    Ge.create ~rng ~p_enter:0.1 ~p_exit:0.3 ~loss_good:p ~loss_bad:p ()
  in
  let uniform = Rng.create 42 in
  ignore (Rng.split uniform);
  (* create's state-chain split *)
  for i = 0 to 9_999 do
    let expected = Rng.bool uniform ~p in
    if Ge.drop ge <> expected then
      Alcotest.failf "draw %d diverged from uniform loss" i
  done;
  Alcotest.(check int) "offered counts draws" 10_000 (Ge.offered ge)

let prop_ge_stationary =
  QCheck.Test.make ~count:25
    ~name:"gilbert-elliott: long-run loss converges to stationary"
    QCheck.(
      quad (int_range 5 50) (int_range 5 50) (int_range 0 20) (int_range 50 100))
    (fun (enter_pct, exit_pct, good_pct, bad_pct) ->
      let p_enter = float_of_int enter_pct /. 100. in
      let p_exit = float_of_int exit_pct /. 100. in
      let loss_good = float_of_int good_pct /. 100. in
      let loss_bad = float_of_int bad_pct /. 100. in
      let ge =
        Ge.create
          ~rng:(Rng.create (enter_pct + (100 * exit_pct)))
          ~p_enter ~p_exit ~loss_good ~loss_bad ()
      in
      let n = 60_000 in
      for _ = 1 to n do
        ignore (Ge.drop ge)
      done;
      let expected = Ge.stationary_loss ~p_enter ~p_exit ~loss_good ~loss_bad in
      (* the chain decorrelates within 1/(p_enter+p_exit) <= 10 draws, so
         60k draws put ~4 sigma inside this tolerance *)
      Float.abs (Ge.observed_loss ge -. expected) < 0.03)

(* --- Fault plan parsing --------------------------------------------------- *)

let test_parse_roundtrip () =
  let spec = "burst@30:0.05/0.4/0.3;flap@50:2;kill@20:0" in
  match Fault.parse spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
    Alcotest.(check int) "three events" 3 (List.length plan);
    let rendered = Fault.to_string plan in
    (match Fault.parse rendered with
     | Error e -> Alcotest.failf "reparse failed: %s" e
     | Ok plan2 ->
       Alcotest.(check string) "round trip" rendered (Fault.to_string plan2))

let test_parse_all_clauses () =
  let spec =
    "burst@1:0.1/0.4/0.8;lossoff@2;step@3:24;flap@4:1.5;delay@5:20;\
     jitter@6-8:10/100;acks@9:0.3;acksoff@10;kill@11:1"
  in
  match Fault.parse spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan -> Alcotest.(check int) "nine events" 9 (List.length plan)

let test_parse_rejects_garbage () =
  let bad = [ "bogus@1"; "burst@x:0.1/0.2"; "kill@1"; "step@1:"; "@3:2" ] in
  List.iter
    (fun spec ->
      match Fault.parse spec with
      | Ok _ -> Alcotest.failf "accepted garbage %S" spec
      | Error _ -> ())
    bad

(* --- attach: link faults -------------------------------------------------- *)

let make_link ?(rate_bps = 48e6) () =
  let e = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create e
      (Bottleneck.Config.default ~rate:(Rate.bps rate_bps)
         ~qdisc:
           (Qdisc.droptail
              ~capacity_bytes:(int_of_float (rate_bps *. 0.1 /. 8.))))
  in
  (e, bn)

let attach_spec ~engine ~bottleneck ?flows ~seed spec =
  match Fault.parse spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
    Fault.attach ~engine ~bottleneck ?flows ~rng:(Rng.create seed) plan

let test_attach_rate_step_and_outage () =
  let e, bn = make_link () in
  ignore (Source.cbr e bn ~rate:(Rate.bps 40e6) ());
  attach_spec ~engine:e ~bottleneck:bn ~seed:3 "step@1:24;flap@2:1";
  Engine.run_until e (Time.secs 1.5);
  Alcotest.(check (float 1.)) "stepped to 24 Mbit/s" 24e6
    (Rate.to_bps (Bottleneck.rate bn));
  Engine.run_until e (Time.secs 2.5);
  Alcotest.(check (float 1.)) "outage: rate 0" 0.
    (Rate.to_bps (Bottleneck.rate bn));
  let delivered_mid = Bottleneck.delivered_packets bn in
  Engine.run_until e (Time.secs 2.9);
  Alcotest.(check int) "nothing delivered during outage" delivered_mid
    (Bottleneck.delivered_packets bn);
  Engine.run_until e (Time.secs 4.);
  Alcotest.(check (float 1.)) "restored after outage" 24e6
    (Rate.to_bps (Bottleneck.rate bn));
  (* packet conservation across the whole faulted run *)
  Alcotest.(check int) "conservation"
    (Bottleneck.offered_packets bn)
    (Bottleneck.delivered_packets bn + Bottleneck.drops bn
    + Bottleneck.queued_packets bn)

let test_attach_burst_loss () =
  let e, bn = make_link () in
  (* paced CBR below the link rate: every drop is the injector's *)
  ignore (Source.cbr e bn ~rate:(Rate.bps 40e6) ());
  attach_spec ~engine:e ~bottleneck:bn ~seed:5 "burst@1:1/0/0/0.4;lossoff@3";
  Engine.run_until e (Time.secs 1.) ;
  Alcotest.(check int) "clean before onset" 0 (Bottleneck.drops bn);
  Engine.run_until e (Time.secs 3.);
  let d3 = Bottleneck.drops bn in
  Alcotest.(check bool) "bursty loss observed" true (d3 > 0);
  Engine.run_until e (Time.secs 6.);
  Alcotest.(check int) "lossoff freezes drops" d3 (Bottleneck.drops bn)

let test_attach_ack_loss () =
  let throughput spec =
    let e, bn = make_link () in
    let f =
      Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ()) ~prop_rtt:(Time.ms 50.) ()
    in
    if not (String.equal spec "") then
      attach_spec ~engine:e ~bottleneck:bn ~flows:[| f |] ~seed:7 spec;
    Engine.run_until e (Time.secs 10.);
    Flow.received_bytes f
  in
  let clean = throughput "" in
  let faulted = throughput "acks@0.5:1" in
  Alcotest.(check bool) "total ACK loss stalls the flow" true
    (float_of_int faulted < 0.3 *. float_of_int clean)

let test_attach_kill_and_validation () =
  let e, bn = make_link () in
  let f =
    Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ()) ~prop_rtt:(Time.ms 50.) ()
  in
  attach_spec ~engine:e ~bottleneck:bn ~flows:[| f |] ~seed:9 "kill@1:0";
  Alcotest.(check bool) "running before" false (Flow.stopped f);
  Engine.run_until e (Time.secs 2.);
  Alcotest.(check bool) "stopped after kill" true (Flow.stopped f);
  raises "kill index out of range" (fun () ->
      attach_spec ~engine:e ~bottleneck:bn ~flows:[| f |] ~seed:9 "kill@3:5");
  raises "non-finite event time" (fun () ->
      Fault.attach ~engine:e ~bottleneck:bn ~rng:(Rng.create 1)
        [ Fault.Rate_step { at = Time.secs nan; rate = Rate.bps 1e6 } ])

(* --- invariant monitor ---------------------------------------------------- *)

let test_invariant_benign_run () =
  let e, bn = make_link () in
  ignore
    (Flow.create e bn ~cc:(Nimbus_cc.Cubic.make ()) ~prop_rtt:(Time.ms 50.) ());
  (* delay jitter stresses the reorder/timing paths while the monitor
     watches: a benign (if bumpy) run must produce zero violations *)
  attach_spec ~engine:e ~bottleneck:bn ~seed:11 "delay@1:10;jitter@2-4:5/100";
  let m = Invariant.create e ~bottleneck:bn () in
  Engine.run_until e (Time.secs 5.);
  Alcotest.(check int) "no violations" 0 (Invariant.count m);
  Alcotest.(check bool) "ok" true (Invariant.ok m)

let test_invariant_custom_check_fires () =
  let e, bn = make_link () in
  let m = Invariant.create e ~bottleneck:bn () in
  Invariant.add_check m ~name:"always-bad" (fun () -> Some "boom");
  Engine.run_until e (Time.secs 0.5);
  Alcotest.(check bool) "violations recorded" true (Invariant.count m > 0);
  Alcotest.(check bool) "not ok" true (not (Invariant.ok m));
  let report = Invariant.report m in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "report names the check" true
    (contains report "always-bad")

(* --- pulser-failure recovery ---------------------------------------------- *)

let test_pulser_death_failover () =
  let e, bn = make_link ~rate_bps:96e6 () in
  let start seed =
    let nim =
      Nimbus.create
        { (Nimbus.Config.default ~mu:(Z_estimator.Mu.known (Rate.bps 96e6)))
          with multi_flow = true; seed }
    in
    let flow =
      Flow.create e bn
        ~cc:(Nimbus.cc nim ~now:(fun () -> Engine.now e))
        ~prop_rtt:(Time.ms 50.) ()
    in
    (nim, flow)
  in
  let flows = [ start 21; start 77 ] in
  let kill_at = 20. in
  let mode_at_kill = ref Nimbus.Delay in
  let takeover = ref nan in
  let takeover_mode = ref Nimbus.Delay in
  Engine.schedule_at e (Time.secs kill_at) (fun () ->
      match
        List.find_opt (fun (n, _) -> Nimbus.role n = Nimbus.Pulser) flows
      with
      | None -> Alcotest.fail "no pulser to kill at t=20"
      | Some (n, f) ->
        mode_at_kill := Nimbus.mode n;
        Flow.apply f Flow.Control.Stop);
  (* strictly after the kill: same-timestamp events run in unspecified
     order, and sampling first would see the victim still in the role *)
  Engine.every e ~dt:(Time.ms 50.) ~start:(Time.secs (kill_at +. 0.05))
    (fun () ->
      if Float.is_nan !takeover then
        match
          List.find_opt
            (fun (n, f) ->
              (not (Flow.stopped f)) && Nimbus.role n = Nimbus.Pulser)
            flows
        with
        | Some (n, _) ->
          takeover := Time.to_secs (Engine.now e) -. kill_at;
          takeover_mode := Nimbus.mode n
        | None -> ());
  Engine.run_until e (Time.secs 30.);
  Alcotest.(check bool) "a watcher took over" true
    (not (Float.is_nan !takeover));
  (* one 5 s FFT window is the recovery budget: ~1 s for the keep-alive
     probe to go quiet, pulse_timeout of silence, then the boosted Eq. 5
     election *)
  Alcotest.(check bool) "within one FFT window" true (!takeover <= 5.);
  Alcotest.(check bool) "mode survives the handoff" true
    (!takeover_mode = !mode_at_kill);
  let live =
    List.filter
      (fun (n, f) -> (not (Flow.stopped f)) && Nimbus.role n = Nimbus.Pulser)
      flows
  in
  Alcotest.(check int) "exactly one live pulser at the end" 1
    (List.length live)

(* --- crash-isolating runner ----------------------------------------------- *)

let test_run_case_ok () =
  Common.clear_crashes ();
  (match Common.run_case ~label:"ok" ~seed:5 (fun ~seed -> seed + 1) with
   | Ok v -> Alcotest.(check int) "result" 6 v
   | Error _ -> Alcotest.fail "unexpected crash");
  Alcotest.(check int) "no crashes logged" 0 (List.length (Common.crashes ()))

let test_run_case_retries_on_fresh_stream () =
  Common.clear_crashes ();
  (* the hook fails only the original seed; the retry's rekeyed stream
     passes, exercising the recovery path *)
  Common.set_crash_hook (Some (fun ~label:_ ~seed -> seed = 42));
  let r = Common.run_case ~label:"retry" ~seed:42 (fun ~seed -> seed * 2) in
  Common.set_crash_hook None;
  (match r with
   | Ok v -> Alcotest.(check bool) "retried under a rekeyed seed" true (v <> 84)
   | Error _ -> Alcotest.fail "retry should have recovered");
  (match Common.crashes () with
   | [ c ] ->
     Alcotest.(check string) "label" "retry" c.Common.crash_label;
     Alcotest.(check int) "original seed" 42 c.Common.crash_seed;
     Alcotest.(check bool) "recovered" true c.Common.crash_recovered
   | l -> Alcotest.failf "expected one crash record, got %d" (List.length l));
  Common.clear_crashes ()

let test_run_case_double_failure () =
  Common.clear_crashes ();
  let r =
    Common.run_case ~label:"fatal" ~seed:7 (fun ~seed:_ -> failwith "boom")
  in
  (match r with
   | Ok _ -> Alcotest.fail "should have crashed"
   | Error c ->
     Alcotest.(check bool) "not recovered" false c.Common.crash_recovered;
     Alcotest.(check bool) "captures the exception" true
       (String.length c.Common.crash_exn > 0);
     Alcotest.(check string) "table marker" "!crash(seed 7)"
       (Common.crash_cell c));
  Common.clear_crashes ()

let test_run_case_check_rejects () =
  Common.clear_crashes ();
  let r =
    Common.run_case ~label:"invalid" ~seed:3
      ~check:(fun v -> if Float.is_nan v then Some "nan result" else None)
      (fun ~seed:_ -> nan)
  in
  (match r with
   | Ok _ -> Alcotest.fail "check should have rejected"
   | Error c ->
     Alcotest.(check bool) "reason mentions the check" true
       (String.length c.Common.crash_exn > 0));
  Common.clear_crashes ()

(* a forced crash in one case must leave every other case's output
   byte-identical between a serial run and a pooled one *)
let test_crash_isolated_rows_identical () =
  Common.clear_crashes ();
  let cases = [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ] in
  let row (label, seed) =
    match
      Common.run_case ~label ~seed (fun ~seed -> Printf.sprintf "r%d" (seed * 11))
    with
    | Ok v -> v
    | Error c -> Common.crash_cell c
  in
  Common.set_crash_hook
    (Some (fun ~label ~seed:_ -> String.equal label "b"));
  let serial = Common.map_cases cases ~f:row in
  Common.clear_crashes ();
  let pooled =
    Pool.run ~domains:4 (fun pool ->
        Common.set_pool (Some pool);
        Fun.protect
          ~finally:(fun () -> Common.set_pool None)
          (fun () -> Common.map_cases cases ~f:row))
  in
  Common.set_crash_hook None;
  Common.clear_crashes ();
  Alcotest.(check (list string)) "serial = pooled" serial pooled;
  Alcotest.(check (list string)) "crash marked, others intact"
    [ "r11"; "!crash(seed 2)"; "r33"; "r44" ]
    serial

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "faults.gilbert-elliott",
      [ Alcotest.test_case "validation" `Quick test_ge_validation;
        Alcotest.test_case "degenerates to uniform" `Quick
          test_ge_degenerates_to_uniform;
        qtest prop_ge_stationary ] );
    ( "faults.plan",
      [ Alcotest.test_case "parse round trip" `Quick test_parse_roundtrip;
        Alcotest.test_case "all clauses" `Quick test_parse_all_clauses;
        Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage ]
    );
    ( "faults.attach",
      [ Alcotest.test_case "rate step and outage" `Quick
          test_attach_rate_step_and_outage;
        Alcotest.test_case "burst loss" `Quick test_attach_burst_loss;
        Alcotest.test_case "ack loss" `Quick test_attach_ack_loss;
        Alcotest.test_case "kill and validation" `Quick
          test_attach_kill_and_validation ] );
    ( "faults.invariant",
      [ Alcotest.test_case "benign run" `Quick test_invariant_benign_run;
        Alcotest.test_case "custom check fires" `Quick
          test_invariant_custom_check_fires ] );
    ( "faults.failover",
      [ Alcotest.test_case "pulser death" `Slow test_pulser_death_failover ] );
    ( "faults.crash-isolation",
      [ Alcotest.test_case "ok case" `Quick test_run_case_ok;
        Alcotest.test_case "retry on fresh stream" `Quick
          test_run_case_retries_on_fresh_stream;
        Alcotest.test_case "double failure" `Quick test_run_case_double_failure;
        Alcotest.test_case "check rejects" `Quick test_run_case_check_rejects;
        Alcotest.test_case "rows identical under pool" `Quick
          test_crash_isolated_rows_identical ] ) ]
