(* Tests for the domain pool and the parallel experiment harness: result
   ordering, exception propagation, nested maps (the caller-helps invariant),
   and byte-identical experiment tables at --jobs 1 vs --jobs 4. *)

module Pool = Nimbus_parallel.Pool
module Common = Nimbus_experiments.Common
module Registry = Nimbus_experiments.Registry
module Table = Nimbus_experiments.Table

let test_create_invalid () =
  Alcotest.check_raises "domains 0"
    (Invalid_argument "Pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()))

let test_map_order () =
  Pool.run ~domains:4 (fun p ->
      Alcotest.(check (array int))
        "index order"
        (Array.init 100 (fun i -> i * i))
        (Pool.map p ~f:(fun i -> i * i) 100))

let test_map_sequential () =
  (* parallelism 1: no worker domains, everything runs in the caller *)
  Pool.run ~domains:1 (fun p ->
      Alcotest.(check int) "parallelism" 1 (Pool.parallelism p);
      Alcotest.(check (array int))
        "index order" (Array.init 10 (fun i -> i + 1))
        (Pool.map p ~f:(fun i -> i + 1) 10))

let test_map_empty () =
  Pool.run ~domains:2 (fun p ->
      Alcotest.(check int) "empty" 0 (Array.length (Pool.map p ~f:(fun i -> i) 0)))

let test_map_exception () =
  Pool.run ~domains:4 (fun p ->
      Alcotest.check_raises "re-raised in caller" (Failure "boom") (fun () ->
          ignore
            (Pool.map p ~f:(fun i -> if i = 37 then failwith "boom" else i) 64));
      (* the pool survives a failed map *)
      Alcotest.(check (array int)) "still usable" [| 0; 1; 2 |]
        (Pool.map p ~f:(fun i -> i) 3))

let test_nested_map () =
  (* inner maps issued from pool tasks drain themselves: no deadlock even
     when every worker is inside an outer task *)
  Pool.run ~domains:2 (fun p ->
      let sums =
        Pool.map p
          ~f:(fun i ->
            Array.fold_left ( + ) 0 (Pool.map p ~f:(fun j -> (10 * i) + j) 8))
          6
      in
      Alcotest.(check (array int))
        "nested results"
        (Array.init 6 (fun i -> (80 * i) + 28))
        sums)

let test_map_reduce () =
  Pool.run ~domains:4 (fun p ->
      Alcotest.(check int) "sum 0..999" 499500
        (Pool.map_reduce p ~f:(fun i -> i) ~reduce:( + ) ~init:0 1000);
      (* non-commutative reduce still sees index order *)
      Alcotest.(check string) "concat in order" "0123456789"
        (Pool.map_reduce p ~f:string_of_int ~reduce:( ^ ) ~init:"" 10))

let test_shutdown_idempotent () =
  let p = Pool.create ~domains:3 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* maps after shutdown degrade to running in the caller *)
  Alcotest.(check (array int)) "post-shutdown map" [| 0; 2; 4 |]
    (Pool.map p ~f:(fun i -> 2 * i) 3)

let test_try_map_isolation () =
  (* one raising job lands in its own Error slot; every other index still
     completes and the pool stays fully usable afterwards *)
  Pool.run ~domains:4 (fun p ->
      let results =
        Pool.try_map p
          ~f:(fun i -> if i = 13 then failwith "boom13" else 2 * i)
          32
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (2 * i) v
          | Error { Pool.exn; _ } ->
            Alcotest.(check int) "only index 13 fails" 13 i;
            Alcotest.(check string) "captured exception" "boom13"
              (match exn with Failure m -> m | _ -> "<unexpected>"))
        results;
      Alcotest.(check int) "exactly one failed slot" 1
        (Array.fold_left
           (fun n r -> match r with Error _ -> n + 1 | Ok _ -> n)
           0 results);
      Alcotest.(check (array int)) "pool reusable" [| 0; 1; 2; 3 |]
        (Pool.map p ~f:(fun i -> i) 4))

(* --- domain-safety property ------------------------------------------------- *)

(* a mutation-heavy task whose mutable state (bytes buffer, refs, array) is
   all created inside the task body — exactly the discipline the static race
   pass certifies; the property pins down that it really is domain-count
   independent at runtime *)
let churn seed i =
  let b = Bytes.make 64 '\000' in
  let acc = ref (seed lxor (i * 0x9E37)) in
  let arr = Array.make 16 0 in
  for k = 0 to 999 do
    let j = k land 63 in
    Bytes.set b j (Char.chr ((!acc lxor k) land 0xff));
    arr.(k land 15) <- arr.(k land 15) + Char.code (Bytes.get b j);
    acc := ((!acc * 1103515245) + 12345) land 0x3FFFFFFF
  done;
  Array.fold_left ( + ) !acc arr

let prop_mutation_determinism =
  QCheck.Test.make ~count:15
    ~name:"pool: mutation-heavy map identical across domains 1/2/4"
    QCheck.(pair (int_range 1 64) (int_range 0 10_000))
    (fun (n, seed) ->
      let run domains =
        Pool.run ~domains (fun p -> Pool.map p ~f:(fun i -> churn seed i) n)
      in
      let r1 = run 1 in
      r1 = run 2 && r1 = run 4)

(* --- harness determinism --------------------------------------------------- *)

let run_experiment_with_jobs id jobs =
  let e =
    match Registry.find id with
    | Some e -> e
    | None -> Alcotest.failf "experiment %s not registered" id
  in
  Pool.run ~domains:jobs (fun pool ->
      Common.set_pool (Some pool);
      Fun.protect
        ~finally:(fun () -> Common.set_pool None)
        (fun () -> e.Registry.run Common.quick))

let test_jobs_determinism () =
  (* zest goes through both map_cases and run_seeds; its rendered tables and
     CSV must be byte-identical whatever the pool size *)
  let render tables =
    String.concat "\n"
      (List.concat_map (fun t -> [ Table.render t; Table.to_csv t ]) tables)
  in
  let sequential = render (run_experiment_with_jobs "zest" 1) in
  let parallel = render (run_experiment_with_jobs "zest" 4) in
  Alcotest.(check string) "jobs 1 = jobs 4" sequential parallel

let suite =
  [ ( "parallel.pool",
      [ Alcotest.test_case "create validation" `Quick test_create_invalid;
        Alcotest.test_case "map order" `Quick test_map_order;
        Alcotest.test_case "sequential pool" `Quick test_map_sequential;
        Alcotest.test_case "empty map" `Quick test_map_empty;
        Alcotest.test_case "exception propagation" `Quick test_map_exception;
        Alcotest.test_case "nested maps" `Quick test_nested_map;
        Alcotest.test_case "map_reduce" `Quick test_map_reduce;
        Alcotest.test_case "shutdown" `Quick test_shutdown_idempotent;
        Alcotest.test_case "try_map isolation" `Quick test_try_map_isolation;
        QCheck_alcotest.to_alcotest prop_mutation_determinism ] );
    ( "parallel.harness",
      [ Alcotest.test_case "jobs 1 = jobs 4 tables" `Slow test_jobs_determinism
      ] ) ]
