(* Tests for the traffic generators: open-loop sources, the synthetic WAN
   workload, the DASH video client, and scripted scenarios. *)

module Engine = Nimbus_sim.Engine
module Bottleneck = Nimbus_sim.Bottleneck
module Qdisc = Nimbus_sim.Qdisc
module Rng = Nimbus_sim.Rng
open Nimbus_traffic
module Time = Units.Time
module Rate = Units.Rate

let make_link ?(rate_bps = 96e6) () =
  let e = Engine.create Engine.Config.default in
  let bn =
    Bottleneck.create e
      (Bottleneck.Config.default ~rate:(Rate.bps rate_bps)
         ~qdisc:
           (Qdisc.droptail
              ~capacity_bytes:(int_of_float (rate_bps *. 0.1 /. 8.))))
  in
  (e, bn)

let delivered bn source =
  Bottleneck.delivered_bytes bn ~flow:(Source.flow_id source)

(* --- open-loop sources ---------------------------------------------------- *)

let test_cbr_rate () =
  let e, bn = make_link () in
  let s = Source.cbr e bn ~rate:(Rate.bps 12e6) () in
  Engine.run_until e (Time.secs 10.);
  let rate = float_of_int (delivered bn s * 8) /. 10. in
  if Float.abs (rate -. 12e6) > 0.2e6 then
    Alcotest.failf "cbr rate %.2fM != 12M" (rate /. 1e6)

let test_poisson_mean_rate () =
  let e, bn = make_link () in
  let s = Source.poisson e bn ~rng:(Rng.create 2) ~rate:(Rate.bps 24e6) () in
  Engine.run_until e (Time.secs 30.);
  let rate = float_of_int (delivered bn s * 8) /. 30. in
  if Float.abs (rate -. 24e6) > 1.5e6 then
    Alcotest.failf "poisson rate %.2fM != ~24M" (rate /. 1e6)

let test_source_start_stop () =
  let e, bn = make_link () in
  let s = Source.cbr e bn ~rate:(Rate.bps 12e6) ~start:(Time.secs 5.) ~stop:(Time.secs 10.) () in
  Engine.run_until e (Time.secs 4.);
  Alcotest.(check int) "silent before start" 0 (delivered bn s);
  Engine.run_until e (Time.secs 20.);
  let total = float_of_int (delivered bn s * 8) in
  (* ~5 s of traffic *)
  Alcotest.(check bool) "stops at stop time" true
    (total > 0.8 *. 5. *. 12e6 && total < 1.2 *. 5. *. 12e6)

let test_source_set_rate () =
  let e, bn = make_link () in
  let s = Source.cbr e bn ~rate:(Rate.bps 12e6) () in
  Engine.schedule_at e (Time.secs 5.) (fun () -> Source.set_rate s Rate.zero);
  Engine.run_until e (Time.secs 5.);
  let at_5 = delivered bn s in
  Engine.run_until e (Time.secs 10.);
  Alcotest.(check bool) "paused" true (delivered bn s - at_5 < 3 * 1500);
  Engine.schedule_at e (Time.secs 10.) (fun () -> Source.set_rate s (Rate.bps 24e6));
  Engine.run_until e (Time.secs 15.);
  Alcotest.(check bool) "resumed at new rate" true
    (delivered bn s - at_5 > 10_000_000)

let test_source_halt () =
  let e, bn = make_link () in
  let s = Source.cbr e bn ~rate:(Rate.bps 12e6) () in
  Engine.schedule_at e (Time.secs 2.) (fun () -> Source.halt s);
  Engine.run_until e (Time.secs 10.);
  let total = delivered bn s in
  Alcotest.(check bool) "halted" true
    (total < int_of_float (3. *. 12e6 /. 8.))

(* --- wan ------------------------------------------------------------------ *)

let test_wan_offered_load () =
  let e, bn = make_link () in
  let wan = Wan.create e bn ~rng:(Rng.create 3) ~load:(Rate.bps 48e6) () in
  Engine.run_until e (Time.secs 60.);
  let _, total = Wan.bytes_split wan in
  let rate = float_of_int (total * 8) /. 60. in
  (* offered 48M on a 96M link: delivered should be in the right ballpark
     (heavy-tailed sizes make this noisy) *)
  Alcotest.(check bool) "load ballpark" true (rate > 24e6 && rate < 72e6);
  Alcotest.(check bool) "many arrivals" true (Wan.arrivals wan > 500)

let test_wan_elastic_split_consistent () =
  let e, bn = make_link () in
  let wan = Wan.create e bn ~rng:(Rng.create 4) ~load:(Rate.bps 48e6) () in
  Engine.run_until e (Time.secs 30.);
  let elastic, total = Wan.bytes_split wan in
  Alcotest.(check bool) "elastic <= total" true (elastic <= total);
  Alcotest.(check bool) "both kinds present" true
    (elastic > 0 && total - elastic > 0)

let test_wan_fcts_recorded () =
  let e, bn = make_link () in
  let wan = Wan.create e bn ~rng:(Rng.create 5) ~load:(Rate.bps 24e6) () in
  Engine.run_until e (Time.secs 30.);
  let fcts = Wan.fcts wan in
  Alcotest.(check bool) "completions recorded" true (Array.length fcts > 100);
  Array.iter
    (fun (size, fct) ->
      if size <= 0 || Time.to_secs fct <= 0. then Alcotest.fail "nonsense FCT record")
    fcts

let test_wan_concurrency_cap () =
  let e, bn = make_link ~rate_bps:5e6 () in
  (* oversubscribed link: flows pile up until the cap kicks in *)
  let wan =
    Wan.create e bn ~rng:(Rng.create 6) ~load:(Rate.bps 20e6) ~max_concurrent:32 ()
  in
  Engine.run_until e (Time.secs 60.);
  Alcotest.(check bool) "never exceeds cap" true (Wan.active_count wan <= 32);
  Alcotest.(check bool) "skips counted" true (Wan.skipped wan > 0)

let test_wan_profiles_differ () =
  let e, bn = make_link () in
  let churny = Wan.create e bn ~rng:(Rng.create 10) ~load:(Rate.bps 24e6) () in
  let elephant =
    Wan.create e bn ~rng:(Rng.create 10) ~profile:`Elephant ~load:(Rate.bps 24e6) ()
  in
  (* the elephant mixture concentrates bytes in far larger flows *)
  Alcotest.(check bool) "elephant mean > 2x churny mean" true
    Units.Bytes.(Wan.mean_flow_size elephant
    > scale 2. (Wan.mean_flow_size churny))

let test_wan_persistent_elastic () =
  let e, bn = make_link () in
  let wan =
    Wan.create e bn ~rng:(Rng.create 11) ~profile:`Elephant ~load:(Rate.bps 48e6) ()
  in
  (* nothing is persistent at t=0 *)
  Alcotest.(check bool) "initially false" false
    (Wan.persistent_elastic_active wan ~now:Time.zero ~min_age:(Time.secs 2.) ~min_size:1_000_000);
  Engine.run_until e (Time.secs 60.);
  (* over a minute of elephant-profile traffic, persistent flows must have
     appeared at some point; we just check the query is consistent now *)
  let now = Engine.now e in
  let strict =
    Wan.persistent_elastic_active wan ~now ~min_age:(Time.secs 2.) ~min_size:1_000_000
  in
  let loose = Wan.persistent_elastic_active wan ~now ~min_age:Time.zero ~min_size:0 in
  Alcotest.(check bool) "strict implies loose" true ((not strict) || loose)

let test_wan_mean_size_positive () =
  let e, bn = make_link () in
  let wan = Wan.create e bn ~rng:(Rng.create 7) ~load:(Rate.bps 24e6) () in
  Alcotest.(check bool) "sane analytic mean" true
    (Units.Bytes.to_float (Wan.mean_flow_size wan) > 5_000.
    && Units.Bytes.to_float (Wan.mean_flow_size wan) < 100_000.)

(* --- video ---------------------------------------------------------------- *)

let test_video_1080p_app_limited () =
  let e, bn = make_link ~rate_bps:48e6 () in
  let v = Video.create e bn ~ladder:Video.ladder_1080p () in
  Engine.run_until e (Time.secs 60.);
  Alcotest.(check bool) "fetched chunks" true (Video.chunks_fetched v > 5);
  Alcotest.(check bool) "no stalls on an idle link" true
    (Time.to_secs (Video.rebuffer v) < 1.);
  (* on an otherwise idle 48M link, a 1080p stream must be app-limited:
     delivered rate well under the link rate *)
  let rate =
    float_of_int (Bottleneck.delivered_bytes bn ~flow:(Video.flow_id v) * 8)
    /. 60.
  in
  Alcotest.(check bool) "app-limited" true (rate < 15e6);
  Alcotest.(check bool) "keeps playing" true (Time.to_secs (Video.buffer v) > 2.)

let test_video_4k_network_limited () =
  let e, bn = make_link ~rate_bps:24e6 () in
  (* top 4K rung (32 Mbps) exceeds this link: the client stays busy *)
  let v = Video.create e bn ~ladder:Video.ladder_4k () in
  Engine.run_until e (Time.secs 60.);
  let rate =
    float_of_int (Bottleneck.delivered_bytes bn ~flow:(Video.flow_id v) * 8)
    /. 60.
  in
  Alcotest.(check bool) "uses most of the link" true (rate > 0.5 *. 24e6);
  Alcotest.(check bool) "bitrate adapts below the link" true
    (Rate.to_bps (Video.current_bitrate v) <= 24e6)

let test_video_validation () =
  let e, bn = make_link () in
  Alcotest.(check bool) "empty ladder" true
    (try ignore (Video.create e bn ~ladder:[||] ()); false
     with Invalid_argument _ -> true)

(* --- schedule ------------------------------------------------------------- *)

let test_schedule_phases () =
  let e, bn = make_link () in
  let sched =
    Schedule.install e bn ~rng:(Rng.create 8)
      ~phases:
        [ Schedule.phase ~start:Time.zero ~stop:(Time.secs 10.)
            ~inelastic:(Rate.bps 24e6) ~elastic_flows:0;
          Schedule.phase ~start:(Time.secs 10.) ~stop:(Time.secs 20.)
            ~inelastic:Rate.zero ~elastic_flows:2 ]
      ()
  in
  Alcotest.(check bool) "phase 1 inelastic" false
    (Schedule.elastic_present sched ~now:(Time.secs 5.));
  Alcotest.(check bool) "phase 2 elastic" true
    (Schedule.elastic_present sched ~now:(Time.secs 15.));
  Alcotest.(check bool) "after end" false
    (Schedule.elastic_present sched ~now:(Time.secs 25.));
  Alcotest.(check (float 0.001)) "phase 1 rate" 24e6
    (Rate.to_bps (Schedule.inelastic_rate sched ~now:(Time.secs 5.)));
  Alcotest.(check (float 0.001)) "fair share phase 1" 72e6
    (Rate.to_bps
       (Schedule.fair_share sched ~now:(Time.secs 5.) ~mu:(Rate.bps 96e6)
          ~primary_flows:1));
  Alcotest.(check (float 0.001)) "fair share phase 2" 32e6
    (Rate.to_bps
       (Schedule.fair_share sched ~now:(Time.secs 15.) ~mu:(Rate.bps 96e6)
          ~primary_flows:1));
  Engine.run_until e (Time.secs 20.);
  Alcotest.(check int) "created the elastic flows" 2
    (List.length (Schedule.elastic_cross_flows sched))

let test_schedule_drives_traffic () =
  let e, bn = make_link () in
  let _sched =
    Schedule.install e bn ~rng:(Rng.create 9)
      ~phases:
        [ Schedule.phase ~start:Time.zero ~stop:(Time.secs 10.)
            ~inelastic:(Rate.bps 24e6) ~elastic_flows:1 ]
      ()
  in
  Engine.run_until e (Time.secs 15.);
  (* the elastic flow should have consumed the remaining ~72M *)
  Alcotest.(check bool) "link was substantially used" true
    (Time.to_secs (Bottleneck.busy_time bn) > 5.)

let test_schedule_validation () =
  Alcotest.(check bool) "bad phase" true
    (try
       ignore
         (Schedule.phase ~start:(Time.secs 5.) ~stop:(Time.secs 5.)
            ~inelastic:Rate.zero ~elastic_flows:0);
       false
     with Invalid_argument _ -> true)

let suite =
  [ ( "traffic.source",
      [ Alcotest.test_case "cbr rate" `Quick test_cbr_rate;
        Alcotest.test_case "poisson mean" `Quick test_poisson_mean_rate;
        Alcotest.test_case "start/stop" `Quick test_source_start_stop;
        Alcotest.test_case "set_rate" `Quick test_source_set_rate;
        Alcotest.test_case "halt" `Quick test_source_halt ] );
    ( "traffic.wan",
      [ Alcotest.test_case "offered load" `Quick test_wan_offered_load;
        Alcotest.test_case "elastic split" `Quick
          test_wan_elastic_split_consistent;
        Alcotest.test_case "fcts" `Quick test_wan_fcts_recorded;
        Alcotest.test_case "concurrency cap" `Quick test_wan_concurrency_cap;
        Alcotest.test_case "mean size" `Quick test_wan_mean_size_positive;
        Alcotest.test_case "profiles differ" `Quick test_wan_profiles_differ;
        Alcotest.test_case "persistent elastic" `Quick
          test_wan_persistent_elastic ] );
    ( "traffic.video",
      [ Alcotest.test_case "1080p app-limited" `Quick
          test_video_1080p_app_limited;
        Alcotest.test_case "4k network-limited" `Quick
          test_video_4k_network_limited;
        Alcotest.test_case "validation" `Quick test_video_validation ] );
    ( "traffic.schedule",
      [ Alcotest.test_case "phases" `Quick test_schedule_phases;
        Alcotest.test_case "drives traffic" `Quick test_schedule_drives_traffic;
        Alcotest.test_case "validation" `Quick test_schedule_validation ] ) ]
